# lint is the style/determinism gate: gofmt, go vet, and the simlint
# static-analysis suite (internal/analysis; see DESIGN.md §5). simlint
# exits nonzero on any finding, so `make check` cannot pass with one.
# The findings cache in .lintcache makes reruns on an unchanged tree
# near-instant; lint-cold bypasses it (authoritative full analysis).
lint:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt -l:"; echo "$$fmt"; exit 1; fi
	go vet ./...
	go run ./cmd/simlint -json -cache-dir .lintcache

lint-cold:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt -l:"; echo "$$fmt"; exit 1; fi
	go vet ./...
	go run ./cmd/simlint -json

check: lint
	sh check.sh

# End-to-end smoke test of the simd daemon: ephemeral port, cheap job
# submitted twice, 200 + byte-identical cache hit on the resubmit,
# graceful SIGTERM drain. check.sh runs this too.
serve-smoke:
	sh scripts/serve_smoke.sh

# Crash-safety smoke test: simd with -state-dir answers a job, is
# killed with SIGKILL, and the restarted daemon serves the same spec
# byte-identically from its recovered journal. check.sh runs this too.
crash-smoke:
	sh scripts/crash_smoke.sh

# Cluster smoke test: three simd shards behind simrouter on real
# sockets. A routed sweep must be byte-identical to single-node simd,
# a second pass must be all cache hits, a shard killed with SIGKILL
# mid-batch must not lose the batch (hedged failover, zero determinism
# probe mismatches), and the restarted shard must be re-admitted.
# check.sh runs this too.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Chaos gate: the deterministic fault matrix (every injection site ×
# {fail, delay} under fixed seeds), the budget watchdog tests (abort
# without goroutine leaks), and the simserve self-healing tests (retry,
# hedge, WAL recovery), all under the race detector.
chaos:
	go test -count=1 -race ./internal/faults/
	go test -count=1 -race -run 'TestFault|TestBudget' ./internal/experiments/
	go test -count=1 -race -run 'TestTransient|TestRetry|TestBudget|TestHedge|TestWAL' ./internal/simserve/

# Micro-benchmark suite (LPN engine incremental-vs-reference, simbricks
# channel) at a stable sampling time, a smoke pass over every other
# registered benchmark, then the full paper experiment run with a JSON
# report. BENCH_pr3.json is committed as the perf baseline for the
# incremental enabled-set engine; BENCH_pr10.json is the current
# wall-time baseline, recorded at -intra 4 (GOMAXPROCS pinned so the
# stepper lanes are real on single-core CI) and consumed by bench-gate.
bench:
	go test -run xxx -bench . -benchtime 100ms ./internal/lpn/ ./internal/simbricks/
	go test -run xxx -bench . -benchtime 1x ./...
	GOMAXPROCS=4 go run ./cmd/paperbench -exp all -parallel 1 -intra 4 -checkpoints -json BENCH_pr10.json

# Wall-time regression gate against the committed benchmark baseline:
# re-runs every table in BENCH_pr8.json and fails on any >1.5x slowdown
# (knobs: BASELINE/TOL/PARALLEL/INTRA). Opt-in — wall times are too
# machine-dependent for `make check`.
bench-gate:
	sh scripts/bench_gate.sh

# Conservative-parallel determinism smoke: -intra 1 vs -intra 4 tables
# and chrome traces byte-identical. check.sh runs this too.
intra-smoke:
	sh scripts/intra_smoke.sh

.PHONY: lint check bench bench-gate intra-smoke serve-smoke crash-smoke cluster-smoke chaos
