check:
	sh check.sh

bench:
	go test -bench . -benchtime 1x ./...

.PHONY: check bench
