// Package nexsim is a from-scratch Go implementation of NEX + DSim, the
// minimalist full-stack performance simulator for accelerated
// hardware-software stacks (SOSP 2025). The public entry points are the
// commands (cmd/nexsim, cmd/paperbench), the runnable examples
// (examples/...), and the benchmark targets in bench_test.go; the
// simulator library lives under internal/ (see DESIGN.md for the map).
package nexsim
