module nexsim

go 1.22
