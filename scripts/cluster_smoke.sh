#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the cluster tier over real
# TCP sockets (the in-process coverage lives in internal/cluster). It
# proves the four headline claims of the sharded serving layer:
#
#   1. Routing is transparent: a sweep through simrouter returns bodies
#      byte-identical to the same sweep against a single simd, because
#      content-addressed specs make results self-certifying on any shard.
#   2. Placement is sticky: a second pass through the router lands every
#      spec on the shard that already holds its result — zero new engine
#      runs, all cache hits, proved by the shards' own counters.
#   3. The cluster survives a shard lost mid-run: after kill -9 on the
#      busiest shard, an in-flight batch still completes via hedged
#      failover, the dead shard is marked down by health probes, and the
#      duplicate-answer determinism probe records zero mismatches.
#   4. A restarted shard is re-admitted through probation automatically.
#
# Run as `make cluster-smoke`.
set -eu

TMPDIR_SMOKE="$(mktemp -d)"
SOLO_PID="" S0_PID="" S1_PID="" S2_PID="" ROUTER_PID=""
cleanup() {
    status=$?
    for pid in "$ROUTER_PID" "$S0_PID" "$S1_PID" "$S2_PID" "$SOLO_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMPDIR_SMOKE"
    exit "$status"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: FAIL $1" >&2
    shift
    for f in "$@"; do
        echo "--- $f" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# wait_portfile <file> <pid> <what>: wait up to ~5s for a daemon to
# write its bound address.
wait_portfile() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "$3 never wrote $1" "$TMPDIR_SMOKE"/*.log
        kill -0 "$2" 2>/dev/null || fail "$3 exited early" "$TMPDIR_SMOKE"/*.log
        sleep 0.05
    done
}

echo "cluster-smoke: building simd and simrouter"
go build -o "$TMPDIR_SMOKE/simd" ./cmd/simd
go build -o "$TMPDIR_SMOKE/simrouter" ./cmd/simrouter

# A single-node simd is the reference for byte-identical routed results.
"$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -portfile "$TMPDIR_SMOKE/solo.addr" \
    2>"$TMPDIR_SMOKE/solo.log" &
SOLO_PID=$!

# Three shards, each announcing its identity on /metrics.
"$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -shard-id shard0 \
    -portfile "$TMPDIR_SMOKE/s0.addr" 2>"$TMPDIR_SMOKE/s0.log" &
S0_PID=$!
"$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -shard-id shard1 \
    -portfile "$TMPDIR_SMOKE/s1.addr" 2>"$TMPDIR_SMOKE/s1.log" &
S1_PID=$!
"$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -shard-id shard2 \
    -portfile "$TMPDIR_SMOKE/s2.addr" 2>"$TMPDIR_SMOKE/s2.log" &
S2_PID=$!

wait_portfile "$TMPDIR_SMOKE/solo.addr" "$SOLO_PID" solo
wait_portfile "$TMPDIR_SMOKE/s0.addr" "$S0_PID" shard0
wait_portfile "$TMPDIR_SMOKE/s1.addr" "$S1_PID" shard1
wait_portfile "$TMPDIR_SMOKE/s2.addr" "$S2_PID" shard2
SOLO_ADDR="$(cat "$TMPDIR_SMOKE/solo.addr")"
ADDR0="$(cat "$TMPDIR_SMOKE/s0.addr")"
ADDR1="$(cat "$TMPDIR_SMOKE/s1.addr")"
ADDR2="$(cat "$TMPDIR_SMOKE/s2.addr")"

# Aggressive probe/hedge timings so mark-down and re-admit are visible
# within the smoke's patience instead of the production defaults.
"$TMPDIR_SMOKE/simrouter" -addr 127.0.0.1:0 \
    -shards "$ADDR0,$ADDR1,$ADDR2" \
    -hedge-after 100ms -probe-interval 200ms \
    -fail-threshold 2 -readmit-oks 2 \
    -portfile "$TMPDIR_SMOKE/router.addr" 2>"$TMPDIR_SMOKE/router.log" &
ROUTER_PID=$!
wait_portfile "$TMPDIR_SMOKE/router.addr" "$ROUTER_PID" simrouter
ROUTER_ADDR="$(cat "$TMPDIR_SMOKE/router.addr")"
echo "cluster-smoke: router on $ROUTER_ADDR fronting $ADDR0 $ADDR1 $ADDR2"

curl -fsS "http://$ROUTER_ADDR/healthz" >/dev/null

# router_metric <name>: one unlabeled counter off the router's /metrics.
router_metric() {
    curl -fsS "http://$ROUTER_ADDR/metrics" |
        awk -v n="$1" '$1 == n { print $2 }'
}

# shards_sum <name>: an unlabeled counter summed across all live shards.
shards_sum() {
    total=0
    for a in $ADDR0 $ADDR1 $ADDR2; do
        v="$(curl -fsS "http://$a/metrics" | awk -v n="$1" '$1 == n { print $2 }')"
        total=$((total + ${v:-0}))
    done
    echo "$total"
}

SEEDS="1 2 3 4 5 6"
spec_body() {
    printf '{"specs":[{"bench":"npb-ep.8","seed":%d,"epoch_ns":1000}],"wait":true}' "$1"
}

# --- 1. routed sweep is byte-identical to the single-node reference ---
for seed in $SEEDS; do
    spec_body "$seed" | curl -fsS -X POST -H 'Content-Type: application/json' \
        -d @- "http://$SOLO_ADDR/jobs" >"$TMPDIR_SMOKE/solo_$seed.json"
    spec_body "$seed" | curl -fsS -X POST -H 'Content-Type: application/json' \
        -d @- "http://$ROUTER_ADDR/jobs" >"$TMPDIR_SMOKE/pass1_$seed.json"
    cmp -s "$TMPDIR_SMOKE/solo_$seed.json" "$TMPDIR_SMOKE/pass1_$seed.json" ||
        fail "routed result for seed $seed differs from single-node simd" \
            "$TMPDIR_SMOKE/solo_$seed.json" "$TMPDIR_SMOKE/pass1_$seed.json"
done
echo "cluster-smoke: routed sweep byte-identical to single-node simd"

SUB1="$(shards_sum simserve_jobs_submitted)"
HITS1="$(shards_sum simserve_cache_hits)"

# --- 2. second pass: sticky placement means all cache hits -----------
for seed in $SEEDS; do
    spec_body "$seed" | curl -fsS -X POST -H 'Content-Type: application/json' \
        -d @- "http://$ROUTER_ADDR/jobs" >"$TMPDIR_SMOKE/pass2_$seed.json"
    cmp -s "$TMPDIR_SMOKE/pass1_$seed.json" "$TMPDIR_SMOKE/pass2_$seed.json" ||
        fail "second routed pass for seed $seed differs from first" \
            "$TMPDIR_SMOKE/pass1_$seed.json" "$TMPDIR_SMOKE/pass2_$seed.json"
done
SUB2="$(shards_sum simserve_jobs_submitted)"
HITS2="$(shards_sum simserve_cache_hits)"
[ "$SUB2" -eq "$SUB1" ] ||
    fail "second pass ran new engine jobs: submitted $SUB1 -> $SUB2"
[ $((HITS2 - HITS1)) -ge 6 ] ||
    fail "second pass hit the shard caches only $((HITS2 - HITS1)) times, want >= 6"
echo "cluster-smoke: second pass all cache hits ($((HITS2 - HITS1)) hits, 0 new runs)"

# --- 3. kill -9 the busiest shard mid-batch --------------------------
VICTIM_ADDR="$(curl -fsS "http://$ROUTER_ADDR/metrics" |
    awk -F'"' '/^simrouter_shard_forwards\{/ {
        split($3, a, " ");
        if (a[2] + 0 >= best) { best = a[2] + 0; victim = $2 }
    } END { print victim }')"
case "$VICTIM_ADDR" in
"$ADDR0") VICTIM_PID=$S0_PID VICTIM_SID=shard0 ;;
"$ADDR1") VICTIM_PID=$S1_PID VICTIM_SID=shard1 ;;
"$ADDR2") VICTIM_PID=$S2_PID VICTIM_SID=shard2 ;;
*) fail "could not identify the busiest shard (got '$VICTIM_ADDR')" ;;
esac

BATCH='{"specs":['
sep=''
for seed in $SEEDS; do
    BATCH="$BATCH$sep{\"bench\":\"npb-ep.8\",\"seed\":$seed,\"epoch_ns\":1000}"
    sep=','
done
BATCH="$BATCH],\"wait\":true}"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$BATCH" \
    "http://$SOLO_ADDR/jobs" >"$TMPDIR_SMOKE/solo_batch.json"

echo "cluster-smoke: kill -9 $VICTIM_SID ($VICTIM_ADDR) with a batch in flight"
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
# Submit immediately: the router has not yet probed the corpse, so the
# victim's sub-batch is forwarded, fails, and must fail over or hedge.
curl -fsS -X POST -H 'Content-Type: application/json' -d "$BATCH" \
    "http://$ROUTER_ADDR/jobs" >"$TMPDIR_SMOKE/router_batch.json" ||
    fail "batch did not complete after shard kill" "$TMPDIR_SMOKE/router.log"
cmp -s "$TMPDIR_SMOKE/solo_batch.json" "$TMPDIR_SMOKE/router_batch.json" ||
    fail "post-kill batch differs from single-node reference" \
        "$TMPDIR_SMOKE/solo_batch.json" "$TMPDIR_SMOKE/router_batch.json"

FAILOVERS="$(router_metric simrouter_failovers)"
HEDGES_WON="$(router_metric simrouter_hedges_won)"
[ $((${FAILOVERS:-0} + ${HEDGES_WON:-0})) -ge 1 ] ||
    fail "batch completed but neither failover nor hedge fired (failovers=$FAILOVERS hedges_won=$HEDGES_WON)"
echo "cluster-smoke: batch completed via hedged failover (failovers=$FAILOVERS hedges_won=$HEDGES_WON)"

# Health probes must mark the corpse down within a few intervals.
i=0
while [ "$(router_metric simrouter_marks_down)" -lt 1 ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "dead shard never marked down" "$TMPDIR_SMOKE/router.log"
    sleep 0.05
done
MISMATCHES="$(router_metric simrouter_probe_mismatches)"
[ "$MISMATCHES" -eq 0 ] ||
    fail "determinism probe saw $MISMATCHES cross-shard mismatches, want 0"
echo "cluster-smoke: dead shard marked down, determinism probe mismatches = 0"

# --- 4. restart the shard: probation, then automatic re-admission ----
"$TMPDIR_SMOKE/simd" -addr "$VICTIM_ADDR" -shard-id "$VICTIM_SID" \
    2>"$TMPDIR_SMOKE/${VICTIM_SID}_restart.log" &
VICTIM_PID=$!
case "$VICTIM_SID" in
shard0) S0_PID=$VICTIM_PID ;;
shard1) S1_PID=$VICTIM_PID ;;
shard2) S2_PID=$VICTIM_PID ;;
esac
i=0
until curl -fsS "http://$VICTIM_ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted $VICTIM_SID never became healthy" \
        "$TMPDIR_SMOKE/${VICTIM_SID}_restart.log"
    sleep 0.05
done
i=0
until curl -fsS "http://$ROUTER_ADDR/metrics" |
    grep -q "^simrouter_shard_up{shard=\"$VICTIM_ADDR\"} 1$"; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted shard never re-admitted" "$TMPDIR_SMOKE/router.log"
    sleep 0.05
done
[ "$(router_metric simrouter_readmits)" -ge 1 ] ||
    fail "shard is live again but readmits counter is 0"
echo "cluster-smoke: restarted shard re-admitted through probation"

# Graceful shutdown: SIGTERM must drain the router and remove its portfile.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || fail "simrouter exited nonzero on SIGTERM" "$TMPDIR_SMOKE/router.log"
ROUTER_PID=""
[ ! -e "$TMPDIR_SMOKE/router.addr" ] || fail "router portfile not removed on drain"
echo "cluster-smoke: PASS"
