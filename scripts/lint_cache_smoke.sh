#!/bin/sh
# lint_cache_smoke.sh — the simlint findings-cache gate (DESIGN.md
# §5.5). Populates a fresh cache with a cold run, replays it warm, and
# asserts (a) the warm run actually served from cache, (b) both runs
# report identical findings, and (c) the warm run is at least 3x faster
# than the cold one — the whole point of the cache is that a warm lint
# is cheap enough for a pre-commit hook, so a regression that quietly
# re-type-checks the module on every run must fail loudly here.
set -eu

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Compile once so both timings measure analysis, not `go run` overhead.
go build -o "$tmp/simlint" ./cmd/simlint

now_ns() { date +%s%N; }

start=$(now_ns)
"$tmp/simlint" -json -cache-dir "$tmp/cache" >"$tmp/cold.json"
cold=$(( $(now_ns) - start ))

start=$(now_ns)
"$tmp/simlint" -json -cache-dir "$tmp/cache" >"$tmp/warm.json" 2>"$tmp/warm.err"
warm=$(( $(now_ns) - start ))

grep -q "warm cache" "$tmp/warm.err" || {
    echo "lint_cache_smoke: second run did not hit the cache" >&2
    exit 1
}
cmp "$tmp/cold.json" "$tmp/warm.json" || {
    echo "lint_cache_smoke: warm findings differ from cold findings" >&2
    exit 1
}
if [ $(( warm * 3 )) -gt "$cold" ]; then
    echo "lint_cache_smoke: warm run not >=3x faster (cold=${cold}ns warm=${warm}ns)" >&2
    exit 1
fi
echo "lint cache ok: cold=${cold}ns warm=${warm}ns"
