#!/bin/sh
# bench_gate.sh — wall-time regression gate: re-run the full experiment
# suite the way the committed baseline (paperbench -json format) was
# produced and fail if any table got slower than its baseline wall time
# by more than the tolerance factor. Opt-in via `make bench-gate` —
# wall times are too machine- and load-dependent for the tier-1
# check.sh gate, but a >TOL-factor regression on the same machine is a
# real signal.
#
# The gate runs `-exp all` in ONE process, exactly like `make bench`
# writes the baseline: per-experiment processes would charge each small
# table the cold-start cost (pool/slab warmup) that the baseline's
# earlier experiments absorbed, and drown the signal.
#
# Environment knobs:
#   BASELINE  baseline JSON (default BENCH_pr10.json)
#   TOL       allowed slowdown factor per table (default 1.5)
#   MINWALL   skip tables whose baseline wall is below this many ms
#             (default 200): sub-200ms tables are dominated by
#             scheduler/GC noise, not by the code under test
#   PARALLEL  -parallel workers for the gate run (default: the value
#             recorded in the baseline, so the gate reproduces the
#             baseline's own conditions)
#   INTRA     -intra workers for the gate run (default: the baseline's
#             recorded intra count, GOMAXPROCS raised to 4 when it is
#             >1 so stepper lanes are real on single-core CI)
set -eu

BASELINE="${BASELINE:-BENCH_pr10.json}"
TOL="${TOL:-1.5}"
MINWALL="${MINWALL:-200}"
PARALLEL="${PARALLEL:-}"
INTRA="${INTRA:-}"

test -f "$BASELINE" || {
    echo "bench-gate: baseline $BASELINE not found" >&2
    exit 1
}

TMPDIR_GATE="$(mktemp -d)"
cleanup() {
    status=$?
    rm -rf "$TMPDIR_GATE"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "bench-gate: building paperbench"
go build -o "$TMPDIR_GATE/paperbench" ./cmd/paperbench

# field FILE ID KEY — extract one numeric/string field from the entry
# with the given id in a paperbench -json report (MarshalIndent puts
# every field on its own line, so entry-scoped sed is enough).
field() {
    awk -v id="$2" -v key="$3" '
        $0 ~ "\"id\": \"" id "\"" { inentry = 1 }
        inentry && $0 ~ "\"" key "\":" {
            v = $2
            gsub(/[",]/, "", v)
            print v
            exit
        }' "$1"
}

ids="$(sed -n 's/^ *"id": "\([a-z0-9-]*\)",$/\1/p' "$BASELINE")"
test -n "$ids" || {
    echo "bench-gate: no experiment ids in $BASELINE" >&2
    exit 1
}

# Reproduce the baseline's run conditions unless the caller pinned
# PARALLEL/INTRA explicitly (the baseline records them per entry; they
# are uniform across one `make bench` run, so read the first).
first_id="$(echo "$ids" | head -1)"
par="$PARALLEL"
[ -n "$par" ] || par="$(field "$BASELINE" "$first_id" parallel)"
[ -n "$par" ] || par=1
intra="$INTRA"
[ -n "$intra" ] || intra="$(field "$BASELINE" "$first_id" intra)"
[ -n "$intra" ] || intra=1
gmp="${GOMAXPROCS:-}"
if [ -z "$gmp" ] && [ "$intra" -gt 1 ]; then
    gmp=4
fi

echo "bench-gate: running -exp all -parallel $par -intra $intra (GOMAXPROCS=${gmp:-default})"
GOMAXPROCS="$gmp" "$TMPDIR_GATE/paperbench" -exp all -checkpoints \
    -parallel "$par" -intra "$intra" -json "$TMPDIR_GATE/now.json" >/dev/null

fail=0
for id in $ids; do
    base_ms="$(field "$BASELINE" "$id" wall_ms)"
    now_ms="$(field "$TMPDIR_GATE/now.json" "$id" wall_ms)"
    if [ -z "$now_ms" ]; then
        printf 'bench-gate: %-14s baseline %10.1fms  now     MISSING  REGRESSED\n' \
            "$id" "$base_ms"
        fail=1
        continue
    fi
    verdict="$(awk -v now="$now_ms" -v base="$base_ms" -v tol="$TOL" -v minw="$MINWALL" \
        'BEGIN {
            if (base < minw) { printf "skipped (<%sms)", minw }
            else if (now > base * tol) { printf "REGRESSED" }
            else { printf "ok" }
        }')"
    printf 'bench-gate: %-14s baseline %10.1fms  now %10.1fms  (tol %sx)  %s\n' \
        "$id" "$base_ms" "$now_ms" "$TOL" "$verdict"
    [ "$verdict" = "REGRESSED" ] && fail=1 || true
done

if [ "$fail" -ne 0 ]; then
    echo "bench-gate: FAIL — table(s) regressed beyond ${TOL}x of $BASELINE" >&2
    exit 1
fi
echo "bench-gate: PASS (all tables within ${TOL}x of $BASELINE)"
