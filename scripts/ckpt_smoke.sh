#!/bin/sh
# ckpt_smoke.sh — checkpoint determinism smoke: the same experiment run
# with and without `-checkpoints` must print byte-identical output.
# Forked runs restore engine snapshots and replay the NEX journal, so
# any divergence (a missed field in a snapshot section, a replay that
# drifts) shows up as a byte diff here before it can corrupt a real
# sweep. table4 exercises the NEX engine paths the snapshots serialize
# and prints no wall-clock-dependent lines. Run as part of check.sh.
set -eu

TMPDIR_SMOKE="$(mktemp -d)"
cleanup() {
    status=$?
    rm -rf "$TMPDIR_SMOKE"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "ckpt-smoke: building paperbench"
go build -o "$TMPDIR_SMOKE/paperbench" ./cmd/paperbench

# The per-experiment "(table4 in Nms)" footer is host wall-clock time
# and varies run to run; every simulated number above it must not.
strip_wall() { sed '/^([a-z0-9-]* in [0-9.]*[a-zµ]*s)$/d'; }

echo "ckpt-smoke: running table4 without checkpoints"
"$TMPDIR_SMOKE/paperbench" -exp table4 -parallel 1 | strip_wall >"$TMPDIR_SMOKE/plain.txt"
echo "ckpt-smoke: running table4 with checkpoints"
"$TMPDIR_SMOKE/paperbench" -exp table4 -parallel 1 -checkpoints | strip_wall >"$TMPDIR_SMOKE/ckpt.txt"

if ! diff -u "$TMPDIR_SMOKE/plain.txt" "$TMPDIR_SMOKE/ckpt.txt"; then
    echo "ckpt-smoke: FAIL -checkpoints changed experiment output" >&2
    exit 1
fi

# Checkpoints must also compose with intra-run parallelism: forked runs
# resume with stepper lanes live, and the result must still match the
# serial no-checkpoint baseline byte for byte. GOMAXPROCS is raised so
# the intra clamp does not quietly serialize the run on single-core CI.
echo "ckpt-smoke: running table4 with checkpoints and -intra 2"
GOMAXPROCS=4 "$TMPDIR_SMOKE/paperbench" -exp table4 -parallel 1 -checkpoints -intra 2 |
    strip_wall >"$TMPDIR_SMOKE/ckpt_intra.txt"
if ! diff -u "$TMPDIR_SMOKE/plain.txt" "$TMPDIR_SMOKE/ckpt_intra.txt"; then
    echo "ckpt-smoke: FAIL -checkpoints -intra 2 changed experiment output" >&2
    exit 1
fi
echo "ckpt-smoke: PASS (outputs byte-identical, with and without -intra)"
