#!/bin/sh
# crash_smoke.sh — crash-safety smoke test of the simd daemon: start
# simd with -state-dir, answer a job, kill the process with SIGKILL (no
# drain, no cleanup — the crash case), restart on the same state
# directory, and assert the new incarnation serves the same spec
# byte-identically from its recovered journal without re-running the
# engine. Run as `make crash-smoke`; check.sh runs it too.
set -eu

TMPDIR_SMOKE="$(mktemp -d)"
SIMD_PID=""
cleanup() {
    status=$?
    if [ -n "$SIMD_PID" ] && kill -0 "$SIMD_PID" 2>/dev/null; then
        kill -9 "$SIMD_PID" 2>/dev/null || true
        wait "$SIMD_PID" 2>/dev/null || true
    fi
    rm -rf "$TMPDIR_SMOKE"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "crash-smoke: building simd"
go build -o "$TMPDIR_SMOKE/simd" ./cmd/simd

STATEDIR="$TMPDIR_SMOKE/state"
PORTFILE="$TMPDIR_SMOKE/addr"

# start_simd: launch a daemon incarnation and wait for its address.
# -intra 2 runs each simulation with a device stepper lane (GOMAXPROCS
# raised past the clamp's single-core budget), proving WAL recovery and
# byte-identical replay compose with intra-run parallelism.
start_simd() {
    : >"$PORTFILE"
    GOMAXPROCS=4 "$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
        -state-dir "$STATEDIR" -checkpoints -workers 2 -intra 2 \
        2>>"$TMPDIR_SMOKE/simd.log" &
    SIMD_PID=$!
    i=0
    while [ ! -s "$PORTFILE" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "crash-smoke: simd never wrote $PORTFILE" >&2
            cat "$TMPDIR_SMOKE/simd.log" >&2 || true
            exit 1
        fi
        if ! kill -0 "$SIMD_PID" 2>/dev/null; then
            echo "crash-smoke: simd exited early" >&2
            cat "$TMPDIR_SMOKE/simd.log" >&2 || true
            exit 1
        fi
        sleep 0.05
    done
    ADDR="$(cat "$PORTFILE")"
}

start_simd
echo "crash-smoke: simd up on $ADDR (state dir $STATEDIR)"

BODY='{"specs":[{"bench":"npb-ep.8","epoch_ns":1000}],"wait":true}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "http://$ADDR/jobs" >"$TMPDIR_SMOKE/before.json"

# Submit a second, distinct spec asynchronously and kill immediately:
# it is journaled as submitted, and depending on timing dies queued,
# running, or just-answered. All three must converge after restart —
# recovery either replays its done record or re-runs it.
ASYNC='{"specs":[{"bench":"jpeg-mt.8","epoch_ns":1000,"seed":7}]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$ASYNC" \
    "http://$ADDR/jobs" >"$TMPDIR_SMOKE/async.json"
ASYNC_ID="$(sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p' "$TMPDIR_SMOKE/async.json")"
test -n "$ASYNC_ID" || {
    echo "crash-smoke: FAIL no job id in async response" >&2
    cat "$TMPDIR_SMOKE/async.json" >&2
    exit 1
}
echo "crash-smoke: first job answered, second in flight; killing simd with SIGKILL"

# The crash: no drain, no WAL close, no portfile cleanup.
kill -9 "$SIMD_PID"
wait "$SIMD_PID" 2>/dev/null || true
SIMD_PID=""

test -s "$STATEDIR/results.wal" || {
    echo "crash-smoke: FAIL no journal survived the crash" >&2
    exit 1
}

start_simd
echo "crash-smoke: restarted on $ADDR"

curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "http://$ADDR/jobs" >"$TMPDIR_SMOKE/after.json"

if ! cmp -s "$TMPDIR_SMOKE/before.json" "$TMPDIR_SMOKE/after.json"; then
    echo "crash-smoke: FAIL recovered response differs from pre-crash run" >&2
    diff "$TMPDIR_SMOKE/before.json" "$TMPDIR_SMOKE/after.json" >&2 || true
    exit 1
fi
echo "crash-smoke: recovered response byte-identical to pre-crash run"

# The in-flight job must converge to done: either its result was
# journaled before the kill and replayed, or its submit record made the
# new incarnation re-run it.
i=0
while :; do
    STATUS="$(curl -fsS "http://$ADDR/jobs/$ASYNC_ID" |
        sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')"
    [ "$STATUS" = "done" ] && break
    if [ "$STATUS" = "failed" ]; then
        echo "crash-smoke: FAIL recovered in-flight job failed" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "crash-smoke: FAIL in-flight job never recovered (status '$STATUS')" >&2
        exit 1
    fi
    sleep 0.05
done
echo "crash-smoke: in-flight job recovered to done after restart"

# Journal accounting: both pre-crash jobs were recovered — each either
# as a replayed result or as a re-run pending submit (the in-flight one
# dies queued, running, or answered depending on timing; all converge).
# The answered spec's resubmit above must have been a cache hit, not a
# fresh engine run.
curl -fsS "http://$ADDR/metrics" >"$TMPDIR_SMOKE/metrics.txt"
metric() { sed -n "s/^$1 \([0-9][0-9]*\)\$/\1/p" "$TMPDIR_SMOKE/metrics.txt"; }
RESULTS="$(metric simserve_wal_recovered_results)"
PENDING="$(metric simserve_wal_recovered_pending)"
if [ "$((RESULTS + PENDING))" -ne 2 ] || [ "$RESULTS" -lt 1 ]; then
    echo "crash-smoke: FAIL journal recovered $RESULTS results + $PENDING pending, want 2 total" >&2
    cat "$TMPDIR_SMOKE/metrics.txt" >&2
    exit 1
fi
if [ "$(metric simserve_cache_hits)" -lt 1 ]; then
    echo "crash-smoke: FAIL resubmit of the answered spec missed the recovered cache" >&2
    cat "$TMPDIR_SMOKE/metrics.txt" >&2
    exit 1
fi
echo "crash-smoke: journal recovered $RESULTS result(s) + $PENDING pending job(s)"

# Graceful exit of the recovered daemon still works.
kill -TERM "$SIMD_PID"
if ! wait "$SIMD_PID"; then
    echo "crash-smoke: FAIL recovered simd exited nonzero on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/simd.log" >&2 || true
    exit 1
fi
SIMD_PID=""
echo "crash-smoke: PASS"
