#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the simd daemon over a real
# TCP socket (the in-process httptest coverage lives in
# internal/simserve). It proves the acceptance loop of the serving
# layer: start simd on an ephemeral port, submit a cheap job twice,
# assert both responses are 200 and byte-identical (the second served
# from cache, per /metrics), then shut down gracefully via SIGTERM and
# assert a clean exit. Run as `make serve-smoke`.
set -eu

TMPDIR_SMOKE="$(mktemp -d)"
SIMD_PID=""
cleanup() {
    status=$?
    if [ -n "$SIMD_PID" ] && kill -0 "$SIMD_PID" 2>/dev/null; then
        kill "$SIMD_PID" 2>/dev/null || true
        wait "$SIMD_PID" 2>/dev/null || true
    fi
    rm -rf "$TMPDIR_SMOKE"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building simd"
go build -o "$TMPDIR_SMOKE/simd" ./cmd/simd

PORTFILE="$TMPDIR_SMOKE/addr"
"$TMPDIR_SMOKE/simd" -addr 127.0.0.1:0 -portfile "$PORTFILE" \
    2>"$TMPDIR_SMOKE/simd.log" &
SIMD_PID=$!

# Wait (up to ~5s) for the daemon to write its bound address.
i=0
while [ ! -s "$PORTFILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: simd never wrote $PORTFILE" >&2
        cat "$TMPDIR_SMOKE/simd.log" >&2 || true
        exit 1
    fi
    if ! kill -0 "$SIMD_PID" 2>/dev/null; then
        echo "serve-smoke: simd exited early" >&2
        cat "$TMPDIR_SMOKE/simd.log" >&2 || true
        exit 1
    fi
    sleep 0.05
done
ADDR="$(cat "$PORTFILE")"
echo "serve-smoke: simd up on $ADDR"

curl -fsS "http://$ADDR/healthz" >/dev/null

# Submit the same cheap spec twice with wait=true. The first run is a
# cache miss that executes the engine; the second must be a cache hit
# with a byte-identical body (determinism makes the spec's content
# address a true key for its result).
BODY='{"specs":[{"bench":"npb-ep.8","epoch_ns":1000}],"wait":true}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "http://$ADDR/jobs" >"$TMPDIR_SMOKE/run1.json"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "http://$ADDR/jobs" >"$TMPDIR_SMOKE/run2.json"

if ! cmp -s "$TMPDIR_SMOKE/run1.json" "$TMPDIR_SMOKE/run2.json"; then
    echo "serve-smoke: FAIL cached response differs from fresh run" >&2
    diff "$TMPDIR_SMOKE/run1.json" "$TMPDIR_SMOKE/run2.json" >&2 || true
    exit 1
fi
echo "serve-smoke: resubmitted spec byte-identical to fresh run"

curl -fsS "http://$ADDR/metrics" >"$TMPDIR_SMOKE/metrics.txt"
grep -q '^simserve_cache_hits 1$' "$TMPDIR_SMOKE/metrics.txt" || {
    echo "serve-smoke: FAIL expected exactly one cache hit" >&2
    cat "$TMPDIR_SMOKE/metrics.txt" >&2
    exit 1
}
grep -q '^simserve_cache_misses 1$' "$TMPDIR_SMOKE/metrics.txt" || {
    echo "serve-smoke: FAIL expected exactly one cache miss" >&2
    cat "$TMPDIR_SMOKE/metrics.txt" >&2
    exit 1
}
echo "serve-smoke: /metrics shows 1 miss (engine run) + 1 hit (cache)"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SIMD_PID"
if ! wait "$SIMD_PID"; then
    echo "serve-smoke: FAIL simd exited nonzero on SIGTERM" >&2
    cat "$TMPDIR_SMOKE/simd.log" >&2 || true
    exit 1
fi
SIMD_PID=""
if [ -e "$PORTFILE" ]; then
    echo "serve-smoke: FAIL portfile not removed on graceful shutdown" >&2
    exit 1
fi
echo "serve-smoke: portfile removed on drain"
echo "serve-smoke: PASS"
