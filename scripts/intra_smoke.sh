#!/bin/sh
# intra_smoke.sh — conservative-parallel determinism smoke: the same
# experiment table and the same chrome trace must be byte-identical
# between -intra 1 (serial schedule) and -intra 4 (host + device
# stepper goroutines). Any horizon bug — a device advanced past an
# observation point, a grant reordering completions — shows up as a
# byte diff here before it can corrupt a real run. GOMAXPROCS is pinned
# above 1 so the stepper lanes are real even on single-core CI (the
# sweep.ClampIntra budget would otherwise keep the run serial and the
# comparison vacuous). Run as part of check.sh.
set -eu

TMPDIR_SMOKE="$(mktemp -d)"
cleanup() {
    status=$?
    rm -rf "$TMPDIR_SMOKE"
    exit "$status"
}
trap cleanup EXIT INT TERM

export GOMAXPROCS=4

echo "intra-smoke: building paperbench + nexsim"
go build -o "$TMPDIR_SMOKE/paperbench" ./cmd/paperbench
go build -o "$TMPDIR_SMOKE/nexsim" ./cmd/nexsim

# The per-experiment "(table4 in Nms)" footer is host wall-clock time
# and varies run to run; every simulated number above it must not.
strip_wall() { sed '/^([a-z0-9-]* in [0-9.]*[a-zµ]*s)$/d'; }

echo "intra-smoke: table4 with -intra 1"
"$TMPDIR_SMOKE/paperbench" -exp table4 -parallel 1 -intra 1 | strip_wall \
    >"$TMPDIR_SMOKE/serial.txt"
echo "intra-smoke: table4 with -intra 4"
"$TMPDIR_SMOKE/paperbench" -exp table4 -parallel 1 -intra 4 | strip_wall \
    >"$TMPDIR_SMOKE/intra.txt"
if ! diff -u "$TMPDIR_SMOKE/serial.txt" "$TMPDIR_SMOKE/intra.txt"; then
    echo "intra-smoke: FAIL -intra 4 changed table4 output" >&2
    exit 1
fi
echo "intra-smoke: table4 byte-identical"

# Chrome trace byte-identity on a multi-device accelerator benchmark:
# trace spans record (component, virtual-time) tuples in emission
# order, so any schedule divergence reorders or changes them.
"$TMPDIR_SMOKE/nexsim" -bench jpeg-mt.4 -host nex -accel dsim \
    -intra 1 -chrome-trace "$TMPDIR_SMOKE/serial.trace" >/dev/null
"$TMPDIR_SMOKE/nexsim" -bench jpeg-mt.4 -host nex -accel dsim \
    -intra 4 -chrome-trace "$TMPDIR_SMOKE/intra.trace" >/dev/null
if ! cmp -s "$TMPDIR_SMOKE/serial.trace" "$TMPDIR_SMOKE/intra.trace"; then
    echo "intra-smoke: FAIL chrome trace differs between -intra 1 and -intra 4" >&2
    exit 1
fi
echo "intra-smoke: chrome trace byte-identical"
echo "intra-smoke: PASS"
