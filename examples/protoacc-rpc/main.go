// protoacc-rpc simulates an RPC server's serialization path on the
// Protoacc accelerator: the CPU builds message objects and launches
// serialization tasks asynchronously in batches; the accelerator walks
// the object graphs with DMAs and writes wire-format bytes back.
//
// Beyond end-to-end latency, the di-simulated accelerator exposes
// per-task latencies, so tail behaviour (§6.8) and the memory-latency
// sensitivity of pointer chasing (§6.4) are directly observable.
//
// Run: go run ./examples/protoacc-rpc
package main

import (
	"fmt"

	"nexsim/internal/accel/protoacc"
	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/stats"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

func main() {
	bench, err := workloads.ByName("protoacc-bench0")
	if err != nil {
		panic(err)
	}

	fmt.Println("Protoacc serialization batch (HyperProtoBench-style bench0)")
	fmt.Printf("%-28s %12s %12s %12s\n", "attachment", "batch e2e", "p50 task", "p90 task")
	for _, lat := range []vclock.Duration{
		4 * vclock.Nanosecond, 64 * vclock.Nanosecond, 400 * vclock.Nanosecond,
	} {
		fab := interconnect.OnChip4.WithLatency(lat)
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: bench.Model, Devices: 1, Cores: 16, Seed: 42,
			Fabric: &fab,
		})
		r := sys.Run(bench.Build(&sys.Ctx))

		dev := sys.Ctx.Devices[0].(*protoacc.Device)
		var lats []vclock.Duration
		for _, s := range dev.Latencies() {
			lats = append(lats, s.Done.Sub(s.Submit))
		}
		fmt.Printf("%-28s %12v %12v %12v\n",
			fmt.Sprintf("memory latency %v", lat), r.SimTime,
			stats.Percentile(lats, 50), stats.Percentile(lats, 90))
	}

	// The CPU baseline for the same batch.
	pb, _ := workloads.ProtoBenchByName("protoacc-bench0")
	sysCPU := core.Build(core.Config{Host: core.HostNEX, Cores: 16, Seed: 42})
	cpu := sysCPU.Run(workloads.CPUSerializeProgram(pb, &sysCPU.Ctx))
	fmt.Printf("%-28s %12v\n", "CPU-only Marshal", cpu.SimTime)
	fmt.Println("\nPointer chasing makes Protoacc memory-latency bound: it only")
	fmt.Println("beats the CPU when its memory path is very low latency (§6.4).")
}
