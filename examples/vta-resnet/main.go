// vta-resnet reproduces the paper's §6.4 interactive co-design session:
// "should I offload ResNet-50 inference to VTA, and how should VTA be
// attached?" Each simulation completes in well under a minute, so the
// hardware design space is explored interactively.
//
// Run: go run ./examples/vta-resnet
package main

import (
	"fmt"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

func main() {
	vcfg := workloads.VTAConfig{Network: "resnet50", Seed: 13, ChannelScale: 2}

	runVTA := func(label string, fab interconnect.Config, dma core.DMALevel) {
		start := time.Now()
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: core.AccelVTA, Cores: 16, Seed: 42,
			Fabric: &fab, DMATarget: dma,
		})
		r := sys.Run(workloads.VTAProgram(vcfg, &sys.Ctx))
		fmt.Printf("%-36s inference %10v   (simulated in %v)\n",
			label, r.SimTime, time.Since(start).Round(time.Millisecond))
	}

	// Q1/Q2: does offloading help at all?
	start := time.Now()
	sysCPU := core.Build(core.Config{Host: core.HostNEX, Cores: 16, Seed: 42})
	cpu := sysCPU.Run(workloads.CPUInferenceProgram(vcfg, &sysCPU.Ctx))
	fmt.Println("Q1/Q2: end-to-end ResNet-50 inference latency")
	fmt.Printf("%-36s inference %10v   (simulated in %v)\n",
		"CPU only (Xeon, int8 GEMM)", cpu.SimTime, time.Since(start).Round(time.Millisecond))
	runVTA("VTA @ PCIe 400ns, DMA via LLC", interconnect.PCIe400, core.DMALLC)

	// Q3/Q4: where is the bottleneck, and does a better attachment fix it?
	fmt.Println("\nQ3/Q4: interconnect and DMA-path exploration")
	runVTA("VTA @ PCIe 100ns, DMA via LLC",
		interconnect.PCIe400.WithLatency(100*vclock.Nanosecond), core.DMALLC)
	runVTA("VTA on-chip (4ns), DMA via LLC", interconnect.OnChip4, core.DMALLC)
	runVTA("VTA on-chip (4ns), DMA via L2", interconnect.OnChip4, core.DMAL2)

	fmt.Println("\nEach line above is one full-stack simulation — this design loop")
	fmt.Println("is the interactive development the paper enables (§6.4).")
}
