// sketch-accel demonstrates the paper's second development use case
// (§6.4, "Sketching accelerator design with DSim"): after the
// jpeg-pipeline what-if analysis suggested a matrix_filter_2d
// accelerator is worth building, the developer sketches its
// microarchitecture as a Latency Petri Net — no RTL — writes a trivial
// functional model, couples the two with dsim.Base, and simulates the
// full stack with the sketched accelerator actually doing the work.
//
// The sketch: a 3x3 convolution engine with a line-buffer loader, four
// parallel MAC lanes, and a writeback unit, fed by descriptor + doorbell
// like the other devices. Running it end to end answers whether the
// CompressT estimate from the what-if phase holds once DMA traffic and
// queueing are modeled.
//
// Run: go run ./examples/sketch-accel
package main

import (
	"encoding/binary"
	"fmt"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/dsim"
	"nexsim/internal/lpn"
	"nexsim/internal/lpnlang"
	"nexsim/internal/mem"
	"nexsim/internal/nex"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// ---- The sketched device -------------------------------------------------

// filterDesc is the task descriptor: src (8) | dst (8) | w (4) | h (4).
const filterDescSize = 24

// filterDevice is a DSim model sketched entirely with lpnlang: it
// convolves an RGB raster with a fixed 3x3 kernel.
type filterDevice struct {
	dsim.Base
	completed uint32

	taskQ      *lpn.Place
	rowPlans   []rowPlan
	planHead   int
	tokScratch []lpn.Token // reused by dispatch; consumed synchronously
}

type rowPlan struct {
	rows     int
	rowBytes int64
}

// rowTag labels the per-row DMA queues.
const (
	tagDesc = "DESC"
	tagIn   = "ROWS_IN"
	tagOut  = "ROWS_OUT"
)

func newFilterDevice(clk vclock.Hz, lanes int64) *filterDevice {
	d := &filterDevice{}
	b := lpnlang.NewBuilder("filter2d", clk)

	d.taskQ = b.Queue("tasks", 0)
	descResp := b.Queue("descResp", 0)
	rowQ := b.Queue("rows", 0)
	fetched := b.Queue("fetched", 0)
	convolved := b.Queue("convolved", 0)
	stored := b.Queue("stored", 0)

	// Descriptor fetch.
	b.Stage("desc", d.taskQ, nil, b.Cycles(8),
		lpnlang.Effect(d.EmitDMA(tagDesc, descResp)))

	// Dispatch one token per image row (attrs: [rowBytes, lastRow]).
	b.Stage("dispatch", descResp, rowQ, b.Cycles(2),
		lpnlang.OutTokens(func(f *lpn.Firing, done vclock.Time) []lpn.Token {
			plan := d.rowPlans[d.planHead]
			d.planHead++
			if d.planHead == len(d.rowPlans) {
				d.rowPlans, d.planHead = d.rowPlans[:0], 0
			}
			out := d.tokScratch[:0]
			for i := 0; i < plan.rows; i++ {
				last := int64(0)
				if i == plan.rows-1 {
					last = 1
				}
				out = append(out, lpn.Tok(done, plan.rowBytes, last))
			}
			d.tokScratch = out
			return out
		}))

	// Line-buffer loader: one DMA per row, 16 bytes/cycle fill.
	b.Stage("load", rowQ, nil, b.CyclesAttr(4, 0, 0),
		lpnlang.Effect(d.EmitDMA(tagIn, fetched)))

	// Convolution: `lanes` parallel MAC lanes, 9 MACs per output byte.
	b.Stage("conv", fetched, convolved, b.CyclesFunc(func(f *lpn.Firing) int64 {
		return 8 + f.Tok(0).Attrs[0]*9/lanes
	}))

	// Writeback.
	b.Stage("store", convolved, nil, b.CyclesAttr(4, 0, 0),
		lpnlang.Effect(d.EmitDMA(tagOut, stored)))

	// Completion: the last row of a task bumps the status counter.
	b.Stage("finish", stored, nil, nil,
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			if f.Tok(0).Attrs[1] == 1 {
				d.completed++
				d.TaskCompleted(f.Time)
			}
		}))

	d.Init("filter2d", nil, b.MustBuild())
	return d
}

func (d *filterDevice) SetHost(h accel.Host) { d.Host = h }

func (d *filterDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	return d.completed
}

func (d *filterDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	if off != 0 {
		return
	}
	d.TaskStarted(at)
	rec := d.Recorder()
	descBytes := rec.ReadDMA(tagDesc, mem.Addr(v), filterDescSize)
	src := mem.Addr(binary.LittleEndian.Uint64(descBytes[0:]))
	dst := mem.Addr(binary.LittleEndian.Uint64(descBytes[8:]))
	w := int(binary.LittleEndian.Uint32(descBytes[16:]))
	h := int(binary.LittleEndian.Uint32(descBytes[20:]))

	// Functionality track: 3x3 box-ish convolution over RGB, row by row,
	// recording the DMA trace for the LPN to replay.
	rowBytes := w * 3
	img := make([][]byte, h)
	for y := 0; y < h; y++ {
		img[y] = rec.ReadDMA(tagIn, src+mem.Addr(y*rowBytes), rowBytes)
	}
	kernel := [3][3]int32{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}} // /16
	for y := 0; y < h; y++ {
		out := make([]byte, rowBytes)
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				var sum int32
				for ky := -1; ky <= 1; ky++ {
					for kx := -1; kx <= 1; kx++ {
						yy, xx := y+ky, x+kx
						if yy < 0 {
							yy = 0
						}
						if yy >= h {
							yy = h - 1
						}
						if xx < 0 {
							xx = 0
						}
						if xx >= w {
							xx = w - 1
						}
						sum += int32(img[yy][xx*3+c]) * kernel[ky+1][kx+1]
					}
				}
				out[x*3+c] = byte(sum / 16)
			}
		}
		rec.WriteDMA(tagOut, dst+mem.Addr(y*rowBytes), out)
	}

	d.rowPlans = append(d.rowPlans, rowPlan{rows: h, rowBytes: int64(rowBytes)})
	d.Net.Inject(d.taskQ, lpn.Tok(at, int64(h)))
}

// ---- The experiment ------------------------------------------------------

func main() {
	const (
		imgW, imgH = 96, 96
		images     = 16
	)

	// Baseline: the filter on the CPU (~8 MACs/cycle), as in the
	// jpeg-pipeline what-if.
	macs := int64(imgW) * imgH * 3 * 9
	cpuPerImage := (3 * vclock.GHz).CyclesDur(macs / 8)

	runWithSketch := func(lanes int64) (vclock.Duration, time.Duration) {
		dev := newFilterDevice(2*vclock.GHz, lanes)
		sys := core.Build(core.Config{Host: core.HostNEX, Cores: 8, Seed: 42})
		// Attach the sketched device by hand (it is not one of the
		// catalogued models): an MMIO window and the default memory path.
		eng := sys.NEXEngine()
		mmio := mem.Addr(0x9000_0000)
		tb := sys.Ctx.Mem.Alloc("filter-taskbuf", 4096)
		db := &nex.DeviceBinding{Device: dev, MMIOBase: mmio, MMIOSize: 0x1000}
		dev.SetHost(eng.HostFor(db))
		eng.Attach(db)

		start := time.Now()
		res := sys.Run(app.Program{Main: func(e app.Env) {
			rng := xrand.New(1)
			src := sys.Ctx.Arena
			raster := make([]byte, imgW*imgH*3)
			for i := range raster {
				raster[i] = byte(rng.Intn(256))
			}
			e.Mem().WriteAt(src, raster)
			for i := 0; i < images; i++ {
				dst := src + mem.Addr(1+i)<<20
				var desc [filterDescSize]byte
				binary.LittleEndian.PutUint64(desc[0:], uint64(src))
				binary.LittleEndian.PutUint64(desc[8:], uint64(dst))
				binary.LittleEndian.PutUint32(desc[16:], imgW)
				binary.LittleEndian.PutUint32(desc[20:], imgH)
				e.TaskWrite(tb.Base, desc[:])
				e.MMIOWrite(mmio, uint32(tb.Base))
				for e.MMIORead(mmio) != uint32(i+1) {
				}
			}
		}})
		return res.SimTime, time.Since(start)
	}

	cpuTotal := cpuPerImage * images
	fmt.Printf("matrix_filter_2d, %d images of %dx%d\n\n", images, imgW, imgH)
	fmt.Printf("CPU (native, 8 MACs/cycle):          %v\n", cpuTotal)

	// Sketch v1: 4 MAC lanes. The full-stack simulation immediately
	// shows it LOSES to the CPU — the what-if bound is unreachable with
	// this datapath.
	v1, wall1 := runWithSketch(4)
	fmt.Printf("sketch v1 (4 MAC lanes):             %v  (%.2fx; simulated in %v)\n",
		v1, float64(cpuTotal)/float64(v1), wall1.Round(time.Millisecond))

	// Sketch v2: widen to 32 lanes — one edit to the LPN, another
	// sub-second simulation.
	v2, wall2 := runWithSketch(32)
	fmt.Printf("sketch v2 (32 MAC lanes):            %v  (%.2fx; simulated in %v)\n",
		v2, float64(cpuTotal)/float64(v2), wall2.Round(time.Millisecond))

	fmt.Println("\nEach iteration is one LPN edit plus a sub-second full-stack")
	fmt.Println("simulation: the interactive co-design loop of §6.4, with DMA")
	fmt.Println("traffic, driver overhead and pipeline queueing actually modeled —")
	fmt.Println("no RTL written. The jpeg-pipeline example's JumpT probe supplies")
	fmt.Println("the upper bound these sketches are measured against.")
}
