// jpeg-pipeline reproduces the paper's §6.4 early-stage what-if
// analysis. A multithreaded application feeds images from a shared queue
// to eight JPEG decoder accelerators; profiling shows the CPU-side
// matrix_filter_2d() post-processing dominates. Before building a filter
// accelerator, the developer asks NEX:
//
//  1. CompressT: what if matrix_filter_2d ran 10x faster?
//  2. JumpT: what acceleration is actually achievable, given the
//     filter's memory-access floor? (The probe runs instrumented code
//     outside virtual time and feeds the derived factor to CompressT.)
//
// Run: go run ./examples/jpeg-pipeline
package main

import (
	"fmt"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/workloads"
)

func main() {
	base := workloads.JPEGConfig{
		Images: 32, Threads: 8, FilterPasses: 16, Seed: 777,
	}

	run := func(label string, cfg workloads.JPEGConfig) core.Result {
		start := time.Now()
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: core.AccelJPEG, Devices: cfg.Threads, Cores: 16, Seed: 42,
		})
		r := sys.Run(workloads.JPEGProgram(cfg, &sys.Ctx))
		fmt.Printf("%-46s %10v   (simulated in %v)\n",
			label, r.SimTime, time.Since(start).Round(time.Millisecond))
		return r
	}

	fmt.Println("8 JPEG decoders + heavy matrix_filter_2d post-processing")
	baseline := run("baseline", base)

	comp := base
	comp.Compress = 10
	compressed := run("CompressT: hypothetical 10x filter offload", comp)

	probe := base
	probe.ProbeRealistic = true
	probed := run("JumpT probe: memory-bound realistic factor", probe)

	fmt.Printf("\nhypothetical 10x offload  => %.2fx end-to-end\n",
		float64(baseline.SimTime)/float64(compressed.SimTime))
	fmt.Printf("realistic (memory-bound)  => %.2fx end-to-end\n",
		float64(baseline.SimTime)/float64(probed.SimTime))
	fmt.Println("\nIf the realistic bound justifies the effort, sketch the filter")
	fmt.Println("accelerator as an LPN next (package lpnlang) — no RTL needed yet.")
}
