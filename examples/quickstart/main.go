// Quickstart: simulate a JPEG-decoding hardware-software stack end to
// end with NEX+DSim, in a few dozen lines.
//
// The application stages a JPEG bitstream in simulated memory, submits a
// decode task to the accelerator through its driver (task-buffer
// descriptor + MMIO doorbell), polls for completion, and post-processes
// the pixels on the CPU. The same program would run unmodified under the
// gem5-style or reference engines — switch core.Config.Host to compare.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"nexsim/internal/accel/jpeg"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/mem"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
)

func main() {
	rec := trace.New()

	// Assemble the full stack: NEX host engine + DSim JPEG accelerator
	// behind the default PCIe fabric and LLC-served DMAs.
	sys := core.Build(core.Config{
		Host:  core.HostNEX,
		Accel: core.AccelDSim,
		Model: core.AccelJPEG,
		Cores: 8,
		Trace: rec,
		Seed:  1,
	})

	// Prepare an image and its JPEG bitstream (this is test input
	// generation, not part of the simulated application).
	img := jpeg.NewImage(96, 64)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			i := (y*img.W + x) * 3
			img.Pix[i] = byte(x * 255 / img.W)
			img.Pix[i+1] = byte(y * 255 / img.H)
			img.Pix[i+2] = 128
		}
	}
	bitstream := jpeg.Encode(img, 85, jpeg.Sub420)

	srcAddr := sys.Ctx.Arena
	dstAddr := sys.Ctx.Arena + 1<<20

	// The simulated application: driver + polling + CPU post-processing.
	prog := app.Program{
		Name: "quickstart",
		Main: func(e app.Env) {
			e.Mem().WriteAt(srcAddr, bitstream)

			drv := jpeg.NewDriver(sys.Ctx.MMIO[0], sys.Ctx.TaskBufs[0], 4)
			drv.Submit(e, jpeg.Desc{
				Src: srcAddr, SrcLen: uint32(len(bitstream)), Dst: dstAddr,
			})
			drv.WaitAll(e, 5*vclock.Microsecond)

			// Post-process on the CPU: ~1ms of filtering.
			e.ComputeFor(1 * vclock.Millisecond)
		},
	}

	start := time.Now()
	res := sys.Run(prog)
	wall := time.Since(start)

	// Check the decode output really landed in simulated memory.
	out := make([]byte, img.W*img.H*3)
	sys.Ctx.Mem.ReadAt(mem.Addr(dstAddr), out)
	nonzero := 0
	for _, b := range out {
		if b != 0 {
			nonzero++
		}
	}

	fmt.Printf("simulated end-to-end time: %v\n", res.SimTime)
	fmt.Printf("host wall-clock time:      %v (slowdown %.1fx)\n",
		wall.Round(time.Microsecond), res.Slowdown())
	fmt.Printf("decoded pixels in memory:  %d/%d bytes non-zero\n", nonzero, len(out))
	fmt.Printf("NEX stats: %+v\n", res.NEXStats)
	fmt.Println("--- coarse-grained trace ---")
	rec.Dump(os.Stdout)
}
