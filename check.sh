#!/bin/sh
# check.sh — the repository's tier-1 gate plus the style/determinism
# lints and the race-mode concurrency checks. `make check` runs this
# (after `make lint`, whose steps the first three lines mirror so that
# running check.sh directly enforces the same bar).
set -eux

# Style/determinism gate: gofmt-clean tree, vet-clean, and zero simlint
# findings (internal/analysis: nondet-time, nondet-rand, map-order,
# stray-goroutine, unchecked-error).
test -z "$(gofmt -l .)"
go vet ./...
go run ./cmd/simlint

go build ./...
go test ./...

# Race-mode pass over every internal package. The sweep executor, the
# engines' shared memo caches, and the simserve worker pool are the only
# intended concurrency in the tree; racing everything also guards
# against new goroutines sneaking in past the stray-goroutine checker's
# allowlist. The deterministic-output tests
# (TestParallelOutputByteIdentical, TestRepeatedRunByteIdentical) run
# under race here too.
go test -race ./internal/...

# Checkpoint determinism smoke: the same experiment with and without
# -checkpoints must print byte-identical output (forked runs restore
# engine snapshots; any snapshot/replay drift shows up as a byte diff).
sh scripts/ckpt_smoke.sh

# End-to-end serving smoke: simd on an ephemeral port, a cheap job
# submitted twice, byte-identical cache hit on the resubmit (verified
# against /metrics), graceful SIGTERM drain and portfile removal.
sh scripts/serve_smoke.sh

# Crash-safety smoke: simd with -state-dir answers a job, dies by
# SIGKILL, restarts on the same state directory, and must serve the
# same spec byte-identically from its recovered journal without
# re-running the engine.
sh scripts/crash_smoke.sh
