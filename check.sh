#!/bin/sh
# check.sh — the repository's tier-1 gate plus the style/determinism
# lints and the race-mode concurrency checks. `make check` runs this
# (after `make lint`, whose steps the first three lines mirror so that
# running check.sh directly enforces the same bar).
set -eux

# Style/determinism gate: gofmt-clean tree, vet-clean, and zero simlint
# findings (internal/analysis; DESIGN.md §5 — five local checkers plus
# the whole-program snapshot-drift, fault-site-registry, lane-safety,
# and hotpath-alloc invariants).
test -z "$(gofmt -l .)"
go vet ./...
go run ./cmd/simlint

# Findings-cache gate: cold-populate a fresh cache, warm-replay it,
# assert identical findings and a >=3x warm speedup (DESIGN.md §5.5).
sh scripts/lint_cache_smoke.sh

go build ./...
go test ./...

# Race-mode pass over the full tree (cmd/ and examples/ included, not
# just internal/): the sweep executor, the engines' shared memo caches,
# the simserve worker pool, and now the parsim device-stepper lanes are
# the intended concurrency; racing everything guards against new
# goroutines sneaking in past the stray-goroutine checker's allowlist.
# The deterministic-output tests (TestParallelOutputByteIdentical,
# TestIntraByteIdentity, TestRepeatedRunByteIdentical) run under race
# here too.
go test -race ./...

# Conservative-parallel determinism smoke: table4 and a multi-device
# chrome trace must be byte-identical between -intra 1 and -intra 4
# (GOMAXPROCS pinned so stepper lanes are real on single-core CI).
sh scripts/intra_smoke.sh

# Checkpoint determinism smoke: the same experiment with and without
# -checkpoints must print byte-identical output (forked runs restore
# engine snapshots; any snapshot/replay drift shows up as a byte diff).
# Its final case re-runs with -checkpoints -intra 2, proving snapshots
# compose with parallel intra-run mode.
sh scripts/ckpt_smoke.sh

# End-to-end serving smoke: simd on an ephemeral port, a cheap job
# submitted twice, byte-identical cache hit on the resubmit (verified
# against /metrics), graceful SIGTERM drain and portfile removal.
sh scripts/serve_smoke.sh

# Crash-safety smoke: simd with -state-dir answers a job, dies by
# SIGKILL, restarts on the same state directory, and must serve the
# same spec byte-identically from its recovered journal without
# re-running the engine. The daemon runs with -intra 2, so recovery is
# exercised with device stepper lanes live.
sh scripts/crash_smoke.sh

# Cluster smoke: three simd shards behind simrouter over real sockets.
# A routed sweep must be byte-identical to a single-node simd, a second
# pass must be all cache hits (zero new engine runs, per the shards'
# counters), a shard killed with SIGKILL mid-batch must not lose the
# batch (hedged failover, zero determinism-probe mismatches, mark-down
# by health probes), and restarting the shard must re-admit it.
sh scripts/cluster_smoke.sh

# Wall-time regression gating is deliberately NOT part of this tier-1
# gate: wall clocks are machine- and load-dependent, so the benchmark
# baseline comparison is opt-in via `make bench-gate` (per-table
# tolerance against the committed BENCH_pr8.json; see
# scripts/bench_gate.sh).
