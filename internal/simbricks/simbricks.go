// Package simbricks implements the SimBricks-style co-simulation channel
// (paper §5, §A.2): simulators exchange timestamped messages over a
// shared-memory ring. Adapters wrap an accelerator simulator (and its
// view of the host) so that every register access, DMA, zero-cost DMA
// and interrupt crosses the channel as an encoded message.
//
// Marshaling through the ring is real work — that is precisely the
// overhead the paper's tight integration avoids (§A.2 reports the tight
// NEX+DSim coupling is 1.6x faster on average than going through the
// SimBricks channel). Virtual time is unaffected: the channel's sync
// latency corresponds to the device link latency that the interconnect
// model already accounts for.
//
// The FastForward protocol extension (§A.2) is represented by the
// adapter passing NextEvent through: an idle device reports no event and
// the host force-updates its clock on the next interaction instead of
// exchanging per-epoch sync messages.
package simbricks

import (
	"encoding/binary"

	"nexsim/internal/accel"
	"nexsim/internal/faults"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// message types on the channel.
const (
	msgRegRead = iota + 1
	msgRegReadResp
	msgRegWrite
	msgAdvance
	msgNextEvent
	msgNextEventResp
	msgDMA
	msgDMAResp
	msgZeroCostRead
	msgZeroCostReadResp
	msgZeroCostWrite
	msgIRQ
)

const headerSize = 1 + 8 + 8 + 8 + 4 // type | timestamp | addr | aux | len

// Channel is a shared-memory message ring between two simulators,
// backed by a bounded SPSC Ring safe for cross-goroutine use: in
// parallel intra-run mode (core.Config.IntraParallel) the device side
// marshals on its stepper goroutine and the host side decodes after a
// join, with the ring's atomic indices carrying the happens-before
// edges. Headers and payloads are marshaled through a grow-once scratch
// buffer, so the steady-state per-message cost is the copy itself —
// zero heap allocations (TestChannelSteadyStateAllocFree pins this).
type Channel struct {
	ring    *Ring
	scratch []byte

	// faults crosses the chan.send / chan.recv injection sites on every
	// message (nil = no-op): a fail fault drops the message by panicking
	// with the *faults.Injected (recovered into a transient error at the
	// run boundary), a delay shifts the message timestamp forward.
	faults *faults.Injector

	// Stats.
	Msgs  int64
	Bytes int64
}

// SetFaults installs the per-run fault injector on the channel's
// send/recv sites. Call before the run starts.
func (c *Channel) SetFaults(in *faults.Injector) { c.faults = in }

// NewChannel allocates a channel with the given ring capacity (default
// 256KB).
func NewChannel(size int) *Channel {
	return &Channel{ring: NewRing(size)}
}

// send encodes one message through the scratch buffer and publishes it
// on the ring. Encoding and the ring copy are the per-message cost that
// the tight integration avoids.
func (c *Channel) send(typ byte, ts vclock.Time, addr uint64, aux uint64, payload []byte) {
	if inj := c.faults.Hit(faults.SiteChanSend); inj != nil {
		if inj.Op == faults.OpFail {
			panic(inj)
		}
		ts = ts.Add(vclock.Duration(inj.Delay))
	}
	need := headerSize + len(payload)
	if need > len(c.scratch) {
		// Grow once to fit the largest message seen; never a
		// per-message allocation.
		c.scratch = make([]byte, 2*need)
	}
	if need+8 > c.ring.Cap() && c.ring.Len() == 0 {
		// Grow the ring once for the largest message seen. Only legal
		// while empty; roundTrip usage drains every message
		// synchronously, so an oversize message always finds the ring
		// empty.
		c.ring = NewRing(2 * need)
	}
	b := c.scratch
	b[0] = typ
	binary.LittleEndian.PutUint64(b[1:], uint64(ts))
	binary.LittleEndian.PutUint64(b[9:], addr)
	binary.LittleEndian.PutUint64(b[17:], aux)
	binary.LittleEndian.PutUint32(b[25:], uint32(len(payload)))
	copy(b[headerSize:], payload)
	c.ring.Push(b[:need])
	c.Msgs++
	c.Bytes += int64(need)
}

// recv consumes the next message from the ring. The payload view stays
// valid until the producer has pushed a full ring capacity of further
// bytes; with the synchronous roundTrip discipline that is always long
// enough for the caller to copy it out.
func (c *Channel) recv() (typ byte, ts vclock.Time, addr uint64, aux uint64, payload []byte) {
	b := c.ring.popRaw()
	typ = b[0]
	ts = vclock.Time(binary.LittleEndian.Uint64(b[1:]))
	if inj := c.faults.Hit(faults.SiteChanRecv); inj != nil {
		if inj.Op == faults.OpFail {
			panic(inj)
		}
		ts = ts.Add(vclock.Duration(inj.Delay))
	}
	addr = binary.LittleEndian.Uint64(b[9:])
	aux = binary.LittleEndian.Uint64(b[17:])
	n := binary.LittleEndian.Uint32(b[25:])
	payload = b[headerSize : headerSize+int(n)]
	return
}

// roundTrip sends a message and immediately receives it (the two
// simulators run in one process here, so the "other side" dequeues
// synchronously — SimBricks' polling consumer).
func (c *Channel) roundTrip(typ byte, ts vclock.Time, addr, aux uint64, payload []byte) (vclock.Time, uint64, uint64, []byte) {
	c.send(typ, ts, addr, aux, payload)
	_, rts, raddr, raux, rp := c.recv()
	return rts, raddr, raux, rp
}

// DeviceAdapter presents a Device across the channel.
type DeviceAdapter struct {
	dev accel.Device
	ch  *Channel
}

// WrapDevice returns the device as seen by the host through the channel.
func WrapDevice(d accel.Device, ch *Channel) *DeviceAdapter {
	return &DeviceAdapter{dev: d, ch: ch}
}

// Name implements accel.Device.
func (a *DeviceAdapter) Name() string { return a.dev.Name() + "+chan" }

// Unwrap exposes the inner device (for model-specific control paths like
// schema registration).
func (a *DeviceAdapter) Unwrap() accel.Device { return a.dev }

// RegRead implements accel.Device: request and response each cross the
// channel.
func (a *DeviceAdapter) RegRead(at vclock.Time, off mem.Addr) uint32 {
	ts, addr, _, _ := a.ch.roundTrip(msgRegRead, at, uint64(off), 0, nil)
	v := a.dev.RegRead(ts, mem.Addr(addr))
	rts, _, aux, _ := a.ch.roundTrip(msgRegReadResp, ts, 0, uint64(v), nil)
	_ = rts
	return uint32(aux)
}

// RegWrite implements accel.Device.
func (a *DeviceAdapter) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	ts, addr, aux, _ := a.ch.roundTrip(msgRegWrite, at, uint64(off), uint64(v), nil)
	a.dev.RegWrite(ts, mem.Addr(addr), uint32(aux))
}

// Advance implements accel.Device (the AdvanceUntil primitive carried as
// a sync message).
func (a *DeviceAdapter) Advance(t vclock.Time) {
	ts, _, _, _ := a.ch.roundTrip(msgAdvance, t, 0, 0, nil)
	a.dev.Advance(ts)
}

// NextEvent implements accel.Device; with the FastForward extension an
// idle device's "no event" response lets the host force-update the
// device clock instead of synchronizing every epoch.
func (a *DeviceAdapter) NextEvent() (vclock.Time, bool) {
	a.ch.roundTrip(msgNextEvent, 0, 0, 0, nil)
	at, ok := a.dev.NextEvent()
	aux := uint64(0)
	if ok {
		aux = 1
	}
	rts, _, raux, _ := a.ch.roundTrip(msgNextEventResp, at, 0, aux, nil)
	return rts, raux != 0
}

// Stats implements accel.Device.
func (a *DeviceAdapter) Stats() accel.DeviceStats { return a.dev.Stats() }

// SetHost wires through to the inner device, wrapping the host side of
// the channel too (DMAs, zero-cost DMAs and IRQs are messages as well).
func (a *DeviceAdapter) SetHost(h accel.Host) {
	type hostSetter interface{ SetHost(accel.Host) }
	a.dev.(hostSetter).SetHost(&hostAdapter{h: h, ch: a.ch})
}

// hostAdapter is the device's view of the host across the channel.
type hostAdapter struct {
	h  accel.Host
	ch *Channel
}

// DMA implements accel.Host: request and completion cross the channel.
func (a *hostAdapter) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	ts, raddr, aux, _ := a.ch.roundTrip(msgDMA, at, uint64(addr), uint64(kind)<<32|uint64(uint32(size)), nil)
	comp := a.h.DMA(ts, mem.AccessKind(aux>>32), mem.Addr(raddr), int(uint32(aux)))
	rts, _, _, _ := a.ch.roundTrip(msgDMAResp, comp, 0, 0, nil)
	return rts
}

// ZeroCostRead implements accel.Host: the data crosses the channel (the
// separate unsynchronized connection of §A.2).
func (a *hostAdapter) ZeroCostRead(addr mem.Addr, p []byte) {
	a.h.ZeroCostRead(addr, p)
	// The payload travels back through the ring.
	chunk := p
	for len(chunk) > 0 {
		n := len(chunk)
		if n > 32<<10 {
			n = 32 << 10
		}
		_, _, _, rp := a.ch.roundTrip(msgZeroCostReadResp, 0, uint64(addr), 0, chunk[:n])
		copy(chunk[:n], rp)
		chunk = chunk[n:]
		addr += mem.Addr(n)
	}
}

// ZeroCostWrite implements accel.Host.
func (a *hostAdapter) ZeroCostWrite(addr mem.Addr, p []byte) {
	chunk := p
	for len(chunk) > 0 {
		n := len(chunk)
		if n > 32<<10 {
			n = 32 << 10
		}
		_, raddr, _, rp := a.ch.roundTrip(msgZeroCostWrite, 0, uint64(addr), 0, chunk[:n])
		a.h.ZeroCostWrite(mem.Addr(raddr), rp)
		chunk = chunk[n:]
		addr += mem.Addr(n)
	}
}

// RaiseIRQ implements accel.Host (MSI-X issue message).
func (a *hostAdapter) RaiseIRQ(at vclock.Time, vector int) {
	ts, _, aux, _ := a.ch.roundTrip(msgIRQ, at, 0, uint64(vector), nil)
	a.h.RaiseIRQ(ts, int(aux))
}
