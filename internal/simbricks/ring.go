package simbricks

import (
	"runtime"
	"sync/atomic"
)

// Ring is a bounded single-producer single-consumer byte-message queue.
// One goroutine may Push while another Pops: the atomic head/tail
// counters carry the happens-before edges, so a message's bytes are
// fully visible to the consumer before it observes the message. This is
// the shared-memory ring of the SimBricks channel (§5): in parallel
// intra-run mode the device adapter produces on the stepper goroutine
// and the host engine consumes after a join, and the ring is the
// synchronization point.
//
// Records never straddle the end of the buffer: a producer that cannot
// fit a record before the end publishes a wrap marker and continues at
// offset 0. All records are 4-byte aligned so the marker always fits.
type Ring struct {
	buf []byte
	// head/tail are monotonically increasing byte counts; position in
	// the buffer is counter mod len(buf). head is written only by the
	// producer, tail only by the consumer.
	head atomic.Int64
	tail atomic.Int64
}

const ringWrap = ^uint32(0)

// NewRing builds a ring with the given capacity (rounded up to a
// multiple of 4; default 256KB). Capacity bounds the largest message:
// a record of header+payload larger than the capacity panics.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 256 << 10
	}
	size = (size + 3) &^ 3
	return &Ring{buf: make([]byte, size)}
}

// Cap returns the ring capacity in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// align4 rounds n up to a multiple of 4 so records and wrap markers
// stay aligned.
func align4(n int) int { return (n + 3) &^ 3 }

// Push appends one message, blocking (spinning with yields) while the
// ring is full. It must be called from a single producer goroutine.
func (r *Ring) Push(p []byte) {
	need := 4 + align4(len(p))
	if need+4 > len(r.buf) {
		panic("simbricks: message larger than ring capacity")
	}
	for {
		head := r.head.Load()
		tail := r.tail.Load()
		pos := int(head % int64(len(r.buf)))
		// A wrap consumes the rest of the buffer; account for the worst
		// case so head never laps tail.
		avail := len(r.buf) - int(head-tail)
		if rest := len(r.buf) - pos; rest < need {
			if avail < rest+need {
				runtime.Gosched()
				continue
			}
			putLen(r.buf[pos:], ringWrap)
			head += int64(rest)
			pos = 0
		} else if avail < need {
			runtime.Gosched()
			continue
		}
		putLen(r.buf[pos:], uint32(len(p)))
		copy(r.buf[pos+4:], p)
		r.head.Store(head + int64(need))
		return
	}
}

// Pop consumes one message, blocking (spinning with yields) while the
// ring is empty. The consume callback sees a view into the ring that is
// only valid for the duration of the call. It must be called from a
// single consumer goroutine.
func (r *Ring) Pop(consume func(p []byte)) {
	for {
		tail := r.tail.Load()
		if r.head.Load() == tail {
			runtime.Gosched()
			continue
		}
		pos := int(tail % int64(len(r.buf)))
		n := getLen(r.buf[pos:])
		if n == ringWrap {
			r.tail.Store(tail + int64(len(r.buf)-pos))
			continue
		}
		consume(r.buf[pos+4 : pos+4+int(n)])
		r.tail.Store(tail + int64(4+align4(int(n))))
		return
	}
}

// TryPop is Pop without blocking; it reports whether a message was
// consumed.
func (r *Ring) TryPop(consume func(p []byte)) bool {
	for {
		tail := r.tail.Load()
		if r.head.Load() == tail {
			return false
		}
		pos := int(tail % int64(len(r.buf)))
		n := getLen(r.buf[pos:])
		if n == ringWrap {
			r.tail.Store(tail + int64(len(r.buf)-pos))
			continue
		}
		consume(r.buf[pos+4 : pos+4+int(n)])
		r.tail.Store(tail + int64(4+align4(int(n))))
		return true
	}
}

// popRaw consumes one message and returns a view into the ring,
// blocking while the ring is empty. Unlike Pop's callback view, the
// returned slice stays readable until the producer has pushed a full
// ring capacity of further bytes past it — Channel relies on this under
// its synchronous roundTrip discipline.
func (r *Ring) popRaw() []byte {
	for {
		tail := r.tail.Load()
		if r.head.Load() == tail {
			runtime.Gosched()
			continue
		}
		pos := int(tail % int64(len(r.buf)))
		n := getLen(r.buf[pos:])
		if n == ringWrap {
			r.tail.Store(tail + int64(len(r.buf)-pos))
			continue
		}
		r.tail.Store(tail + int64(4+align4(int(n))))
		return r.buf[pos+4 : pos+4+int(n)]
	}
}

// Len reports the number of unread payload bytes (including framing).
func (r *Ring) Len() int { return int(r.head.Load() - r.tail.Load()) }

func putLen(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLen(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
