package simbricks

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"nexsim/internal/xrand"
)

// TestRingRoundTrip exercises single-goroutine push/pop including wrap
// records.
func TestRingRoundTrip(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 100; i++ {
		msg := []byte(fmt.Sprintf("msg-%03d-%s", i, "padpadpad"[:i%10]))
		r.Push(msg)
		var got []byte
		r.Pop(func(p []byte) { got = append(got[:0], p...) })
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d corrupted: %q != %q", i, got, msg)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not drained: %d bytes left", r.Len())
	}
}

// TestRingConcurrentRandomized runs a producer and a consumer goroutine
// with randomized message sizes and yields; under -race this pins the
// cross-goroutine safety of the ring (satellite: concurrent
// simbricks.Channel transport).
func TestRingConcurrentRandomized(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			const n = 4000
			// Small capacity forces frequent wraps and full-ring stalls.
			r := NewRing(256)
			rng := xrand.New(0xabc1 + uint64(trial)*977)
			sizes := make([]int, n)
			for i := range sizes {
				sizes[i] = rng.Intn(120) // 0..119 bytes, many wraps
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 128)
				for i := 0; i < n; i++ {
					msg := buf[:sizes[i]]
					for j := range msg {
						msg[j] = byte(i + j)
					}
					r.Push(msg)
				}
			}()
			for i := 0; i < n; i++ {
				var got []byte
				r.Pop(func(p []byte) { got = append(got[:0], p...) })
				if len(got) != sizes[i] {
					t.Fatalf("message %d: got %d bytes, want %d", i, len(got), sizes[i])
				}
				for j := range got {
					if got[j] != byte(i+j) {
						t.Fatalf("message %d byte %d corrupted", i, j)
					}
				}
			}
			wg.Wait()
			if r.Len() != 0 {
				t.Fatalf("ring not drained: %d bytes left", r.Len())
			}
		})
	}
}

// TestRingTryPop covers the non-blocking consumer path.
func TestRingTryPop(t *testing.T) {
	r := NewRing(64)
	if r.TryPop(func([]byte) {}) {
		t.Fatal("TryPop on empty ring succeeded")
	}
	r.Push([]byte("x"))
	var got []byte
	if !r.TryPop(func(p []byte) { got = append(got[:0], p...) }) {
		t.Fatal("TryPop on non-empty ring failed")
	}
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

// TestRingOversizePanics pins the bounded contract.
func TestRingOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize Push did not panic")
		}
	}()
	NewRing(64).Push(make([]byte, 64))
}

// TestChannelCrossGoroutineHandoff moves a channel between a producer
// phase on one goroutine and a consumer phase on another, the pattern
// parallel intra-run mode uses (device marshals on the stepper
// goroutine, host decodes after a join).
func TestChannelCrossGoroutineHandoff(t *testing.T) {
	ch := NewChannel(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			ch.send(msgDMA, 7, uint64(i), 42, []byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < 100; i++ {
		typ, ts, addr, aux, p := ch.recv()
		if typ != msgDMA || ts != 7 || addr != uint64(i) || aux != 42 ||
			len(p) != 2 || p[0] != byte(i) {
			t.Fatalf("message %d corrupted: typ=%d ts=%v addr=%d", i, typ, ts, addr)
		}
	}
	<-done
}
