package simbricks

import (
	"bytes"
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// echoDevice is a trivial device for channel-transparency tests.
type echoDevice struct {
	host accel.Host
	regs map[mem.Addr]uint32
	now  vclock.Time
}

func (d *echoDevice) Name() string { return "echo" }
func (d *echoDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	return d.regs[off]
}
func (d *echoDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.regs[off] = v
	if off == 0x100 {
		// Exercise the host path: DMA + zero-cost + IRQ.
		var buf [8]byte
		d.host.ZeroCostRead(mem.Addr(v), buf[:])
		d.host.ZeroCostWrite(mem.Addr(v)+0x1000, buf[:])
		d.host.DMA(at, mem.Read, mem.Addr(v), 8)
		d.host.RaiseIRQ(at, 3)
	}
}
func (d *echoDevice) Advance(t vclock.Time) {
	if t > d.now {
		d.now = t
	}
}
func (d *echoDevice) NextEvent() (vclock.Time, bool) { return vclock.Never, false }
func (d *echoDevice) Stats() accel.DeviceStats       { return accel.DeviceStats{} }
func (d *echoDevice) SetHost(h accel.Host)           { d.host = h }

type recHost struct {
	mem  *mem.Memory
	dmas int
	irqs int
}

func (h *recHost) DMA(at vclock.Time, k mem.AccessKind, a mem.Addr, s int) vclock.Time {
	h.dmas++
	return at.Add(100 * vclock.Nanosecond)
}
func (h *recHost) ZeroCostRead(a mem.Addr, p []byte)  { h.mem.ReadAt(a, p) }
func (h *recHost) ZeroCostWrite(a mem.Addr, p []byte) { h.mem.WriteAt(a, p) }
func (h *recHost) RaiseIRQ(at vclock.Time, v int)     { h.irqs++ }

func TestChannelTransparency(t *testing.T) {
	inner := &echoDevice{regs: make(map[mem.Addr]uint32)}
	ch := NewChannel(0)
	dev := WrapDevice(inner, ch)
	host := &recHost{mem: mem.New(0)}
	dev.SetHost(host)

	host.mem.WriteAt(0x2000, []byte("payload!"))
	dev.RegWrite(10, 0x4, 0xdead)
	if got := dev.RegRead(20, 0x4); got != 0xdead {
		t.Fatalf("RegRead through channel = %#x", got)
	}
	dev.RegWrite(30, 0x100, 0x2000) // triggers DMA + zero-cost + IRQ
	if host.dmas != 1 || host.irqs != 1 {
		t.Fatalf("dmas=%d irqs=%d", host.dmas, host.irqs)
	}
	var out [8]byte
	host.mem.ReadAt(0x3000, out[:])
	if !bytes.Equal(out[:], []byte("payload!")) {
		t.Fatalf("zero-cost write through channel corrupted: %q", out)
	}
	dev.Advance(1000)
	if inner.now != 1000 {
		t.Fatal("Advance not forwarded")
	}
	if _, ok := dev.NextEvent(); ok {
		t.Fatal("idle device reported an event")
	}
	if ch.Msgs == 0 || ch.Bytes == 0 {
		t.Fatal("no channel traffic recorded")
	}
}

func TestChannelCountsMessages(t *testing.T) {
	inner := &echoDevice{regs: make(map[mem.Addr]uint32)}
	ch := NewChannel(4096)
	dev := WrapDevice(inner, ch)
	dev.SetHost(&recHost{mem: mem.New(0)})
	before := ch.Msgs
	dev.RegWrite(0, 0x4, 1)
	if ch.Msgs != before+1 {
		t.Fatalf("RegWrite produced %d messages", ch.Msgs-before)
	}
	dev.RegRead(0, 0x4)
	if ch.Msgs != before+3 {
		t.Fatalf("RegRead produced %d messages", ch.Msgs-before-1)
	}
}

func TestLargeZeroCostChunks(t *testing.T) {
	inner := &echoDevice{regs: make(map[mem.Addr]uint32)}
	ch := NewChannel(0)
	dev := WrapDevice(inner, ch)
	host := &recHost{mem: mem.New(0)}
	dev.SetHost(host)

	big := make([]byte, 100<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	host.mem.WriteAt(0x10000, big)
	// Drive through the adapter-wrapped host directly.
	ha := &hostAdapter{h: host, ch: ch}
	got := make([]byte, len(big))
	ha.ZeroCostRead(0x10000, got)
	if !bytes.Equal(got, big) {
		t.Fatal("chunked zero-cost read corrupted")
	}
	ha.ZeroCostWrite(0x80000, big)
	back := make([]byte, len(big))
	host.mem.ReadAt(0x80000, back)
	if !bytes.Equal(back, big) {
		t.Fatal("chunked zero-cost write corrupted")
	}
}
