package simbricks

import (
	"bytes"
	"testing"

	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// benchHost is a minimal endpoint so the benchmarks measure only the
// channel's per-message encode/decode work.
type benchHost struct{ buf [64 << 10]byte }

func (h *benchHost) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	return at.Add(100)
}
func (h *benchHost) ZeroCostRead(addr mem.Addr, p []byte)  { copy(p, h.buf[:]) }
func (h *benchHost) ZeroCostWrite(addr mem.Addr, p []byte) { copy(h.buf[:], p) }
func (h *benchHost) RaiseIRQ(at vclock.Time, vector int)   {}

// BenchmarkChannelRegAccess measures the 2-message register round trip —
// the most frequent channel interaction (doorbells and status polls).
func BenchmarkChannelRegAccess(b *testing.B) {
	ch := NewChannel(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.roundTrip(msgRegWrite, vclock.Time(i), 0x40, uint64(i), nil)
		ch.roundTrip(msgRegReadResp, vclock.Time(i), 0, uint64(i), nil)
	}
}

// BenchmarkChannelDMA measures the DMA request + completion pair.
func BenchmarkChannelDMA(b *testing.B) {
	ch := NewChannel(0)
	h := &benchHost{}
	a := &hostAdapter{h: h, ch: ch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DMA(vclock.Time(i), mem.Read, 0x1000, 4096)
	}
}

// BenchmarkChannelZeroCostRead measures the unsynchronized data side
// channel moving a 4KB payload (chunked through the ring).
func BenchmarkChannelZeroCostRead(b *testing.B) {
	ch := NewChannel(0)
	h := &benchHost{}
	a := &hostAdapter{h: h, ch: ch}
	p := make([]byte, 4096)
	b.SetBytes(int64(len(p)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ZeroCostRead(0x2000, p)
	}
}

// BenchmarkChannelZeroCostWrite measures the write side at 32KB, the
// chunking threshold.
func BenchmarkChannelZeroCostWrite(b *testing.B) {
	ch := NewChannel(0)
	h := &benchHost{}
	a := &hostAdapter{h: h, ch: ch}
	p := make([]byte, 32<<10)
	b.SetBytes(int64(len(p)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ZeroCostWrite(0x3000, p)
	}
}

// TestChannelSteadyStateAllocFree pins the property the scratch-buffer
// reuse exists for: after warm-up, a message round trip performs zero
// heap allocations.
func TestChannelSteadyStateAllocFree(t *testing.T) {
	ch := NewChannel(0)
	h := &benchHost{}
	a := &hostAdapter{h: h, ch: ch}
	p := make([]byte, 4096)
	if avg := testing.AllocsPerRun(200, func() {
		ch.roundTrip(msgRegWrite, 1, 0x40, 7, nil)
		a.DMA(2, mem.Read, 0x1000, 4096)
		a.ZeroCostRead(0x2000, p)
		a.ZeroCostWrite(0x3000, p)
	}); avg != 0 {
		t.Fatalf("channel round trips allocate %.1f objects per message batch, want 0", avg)
	}
}

// TestChannelGrowsForOversizeMessage: a payload larger than the ring used
// to crash recv; now the scratch ring grows once and the message survives
// intact.
func TestChannelGrowsForOversizeMessage(t *testing.T) {
	ch := NewChannel(64)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	_, addr, _, rp := ch.roundTrip(msgZeroCostWrite, 1, 0xabc, 0, payload)
	if addr != 0xabc || !bytes.Equal(rp, payload) {
		t.Fatalf("oversize message corrupted: addr=%#x len=%d", addr, len(rp))
	}
}
