package workloads

import (
	"fmt"
	"sync"

	"nexsim/internal/accel/jpeg"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// JPEGConfig parameterizes the image-decoding application.
type JPEGConfig struct {
	Images       int // corpus size (paper: 50 from Flickr/Div2k; scaled default 24)
	Threads      int // worker threads, one accelerator each (1, 2, 4, 8)
	MinSize      int // smallest image edge
	MaxSize      int // largest image edge
	FilterPasses int // matrix_filter_2d passes per image (§6.4 uses heavier post-processing)
	Seed         uint64
	UseIRQ       bool

	// Compress wraps matrix_filter_2d in a CompressT block with the
	// given hypothetical acceleration factor (§6.4's what-if analysis).
	Compress float64
	// ProbeRealistic derives the acceleration factor per image with a
	// JumpT-instrumented memory-bound estimate instead of Compress.
	ProbeRealistic bool
}

func (c JPEGConfig) withDefaults() JPEGConfig {
	if c.Images == 0 {
		c.Images = 20
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.MinSize == 0 {
		c.MinSize = 64
	}
	if c.MaxSize == 0 {
		c.MaxSize = 120
	}
	if c.FilterPasses == 0 {
		c.FilterPasses = 4
	}
	return c
}

// JPEGBenches returns the paper's JPEG benchmarks.
func JPEGBenches() []Bench {
	mk := func(name string, cfg JPEGConfig) Bench {
		cfg = cfg.withDefaults()
		return Bench{
			Name:    name,
			Model:   core.AccelJPEG,
			Devices: cfg.Threads,
			Threads: cfg.Threads,
			Build:   func(ctx *core.Ctx) app.Program { return JPEGProgram(cfg, ctx) },
		}
	}
	return []Bench{
		mk("jpeg-decode", JPEGConfig{Images: 20, Threads: 1, Seed: 101}),
		mk("jpeg-mt.2", JPEGConfig{Images: 20, Threads: 2, Seed: 102}),
		mk("jpeg-mt.4", JPEGConfig{Images: 20, Threads: 4, Seed: 103}),
		mk("jpeg-mt.8", JPEGConfig{Images: 20, Threads: 8, Seed: 104}),
	}
}

// jpegImage is one staged corpus entry.
type jpegImage struct {
	src    mem.Addr
	srcLen int
	dst    mem.Addr
	w, h   int
}

// JPEGProgram builds the decode + post-process application: threads
// repeatedly fetch image tasks from a shared queue (paper §6.1), decode
// on their accelerator, and run matrix_filter_2d on the CPU.
func JPEGProgram(cfg JPEGConfig, ctx *core.Ctx) app.Program {
	cfg = cfg.withDefaults()
	return app.Program{
		Name: fmt.Sprintf("jpeg.%dx%d", cfg.Images, cfg.Threads),
		Main: func(e app.Env) {
			var corpus []jpegImage
			// Setup: generate and stage the corpus. SlipStream-ed, as the
			// paper fast-forwards application setup (§6.1).
			e.SlipStream(func() {
				corpus = stageJPEGCorpus(e, cfg, ctx)
				// Setup cost: loading the corpus into memory (~2
				// cycles/pixel of buffer handling; the images come from a
				// dataset, so no encoding happens in the application).
				var px int64
				for _, im := range corpus {
					px += int64(im.w * im.h)
				}
				e.Compute(isa.Segment(ctx.Clock.CyclesDur(px*2),
					ctx.Clock, isa.ComputeMix, px*3, 1.6, cfg.Seed))
			})

			queue := &app.Queue{}
			for i := range corpus {
				queue.Push(e, i)
			}
			queue.Close(e)

			var wg app.WaitGroup
			wg.Add(cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				t := t
				e.Spawn("jpegworker", func(we app.Env) {
					drv := jpeg.NewDriver(ctx.MMIO[t], ctx.TaskBufs[t], 16)
					if cfg.UseIRQ {
						drv.EnableIRQ(we)
					}
					for {
						v, ok := queue.Pop(we)
						if !ok {
							break
						}
						im := corpus[v.(int)]
						drv.Submit(we, jpeg.Desc{
							Src: im.src, SrcLen: uint32(im.srcLen), Dst: im.dst,
						})
						if cfg.UseIRQ {
							drv.WaitAllIRQ(we)
						} else {
							drv.WaitAll(we, 0)
						}
						postProcess(we, ctx.Clock, cfg, im.w, im.h)
					}
					wg.Done(we)
				})
			}
			wg.Wait(e)
		},
	}
}

// corpusCache memoizes the synthesized + encoded corpora per config:
// corpus generation is deterministic per seed and re-staged by every
// engine run of the same benchmark (DESIGN.md §1's substrate-cost note).
// The mutex makes it safe under the parallel sweep executor; entries are
// immutable once stored.
var corpusCache = struct {
	sync.Mutex
	m map[JPEGConfig][]corpusEntry
}{m: map[JPEGConfig][]corpusEntry{}}

type corpusEntry struct {
	data []byte
	w, h int
}

// stageJPEGCorpus synthesizes, encodes and stores the image corpus into
// the arena; returns the staged entries.
func stageJPEGCorpus(e app.Env, cfg JPEGConfig, ctx *core.Ctx) []jpegImage {
	key := cfg
	key.Compress, key.ProbeRealistic, key.UseIRQ = 0, false, false
	corpusCache.Lock()
	entries, ok := corpusCache.m[key]
	corpusCache.Unlock()
	if !ok {
		rng := xrand.New(cfg.Seed | 1)
		for i := 0; i < cfg.Images; i++ {
			w := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			h := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
			w, h = w&^7, h&^7
			img := synthImage(w, h, rng.Derive(fmt.Sprintf("img%d", i)))
			sub := jpeg.Sub420
			if rng.Intn(3) == 0 {
				sub = jpeg.Sub444
			}
			restart := 0
			if rng.Intn(4) == 0 {
				restart = 2 + rng.Intn(6) // some images carry DRI/RSTn markers
			}
			data := jpeg.EncodeRestart(img, 75+rng.Intn(18), sub, restart)
			entries = append(entries, corpusEntry{data: data, w: w, h: h})
		}
		corpusCache.Lock()
		corpusCache.m[key] = entries
		corpusCache.Unlock()
	}

	next := ctx.Arena
	var corpus []jpegImage
	for _, en := range entries {
		src := next
		next += mem.Addr(len(en.data)+4095) &^ 4095
		e.Mem().WriteAt(src, en.data)
		dst := next
		next += mem.Addr(en.w*en.h*3+4095) &^ 4095
		corpus = append(corpus, jpegImage{src: src, srcLen: len(en.data), dst: dst, w: en.w, h: en.h})
	}
	return corpus
}

// synthImage generates deterministic photo-like content (gradients +
// soft blobs) so the entropy coder has realistic work.
func synthImage(w, h int, rng *xrand.Stream) *jpeg.Image {
	img := jpeg.NewImage(w, h)
	type blob struct{ cx, cy, r, ch, amp int }
	blobs := make([]blob, 8)
	for i := range blobs {
		blobs[i] = blob{rng.Intn(w), rng.Intn(h), rng.Intn(w/2 + 1), rng.Intn(3), 40 + rng.Intn(160)}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 3
			img.Pix[i] = byte(x * 255 / w)
			img.Pix[i+1] = byte(y * 255 / h)
			img.Pix[i+2] = byte((x + y) * 255 / (w + h))
			for _, b := range blobs {
				dx, dy := x-b.cx, y-b.cy
				if d := dx*dx + dy*dy; d < b.r*b.r+1 {
					v := int(img.Pix[i+b.ch]) + b.amp*(b.r*b.r-d)/(b.r*b.r+1)
					if v > 255 {
						v = 255
					}
					img.Pix[i+b.ch] = byte(v)
				}
			}
		}
	}
	return img
}

// postProcess runs matrix_filter_2d, optionally inside the what-if
// time-warp blocks of §6.4.
func postProcess(e app.Env, clk vclock.Hz, cfg JPEGConfig, w, h int) {
	factor := cfg.Compress
	if cfg.ProbeRealistic {
		// JumpT block: run the instrumented filter outside virtual time,
		// estimate its memory-access floor, and derive a realistic
		// acceleration bound (compute time / memory time).
		e.JumpT(func() {
			macs := int64(w) * int64(h) * 3 * 9 * int64(cfg.FilterPasses)
			computeNs := float64(clk.CyclesDur(macs/8)) / float64(vclock.Nanosecond)
			// Each output pixel rereads its 3x3 neighbourhood: with a
			// 1ns access amortized over cache lines, the memory floor is
			// ~1ns per 16 accessed bytes.
			memAccesses := int64(w) * int64(h) * 3 * int64(cfg.FilterPasses)
			memNs := float64(memAccesses) / 16
			factor = computeNs / memNs
			if factor < 1 {
				factor = 1
			}
			// The instrumentation re-runs the filter; inside JumpT that
			// consumes no virtual time.
			matrixFilter2D(e, clk, w, h, cfg.FilterPasses)
		})
	}
	if factor > 1 {
		e.CompressT(factor, func() {
			matrixFilter2D(e, clk, w, h, cfg.FilterPasses)
		})
		return
	}
	matrixFilter2D(e, clk, w, h, cfg.FilterPasses)
}

// matrixFilter2D charges the CPU cost of the 2-D kernel post-processing
// step: a 3x3 convolution over the RGB raster per pass (§6.1, §6.4).
func matrixFilter2D(e app.Env, clk vclock.Hz, w, h, passes int) {
	macs := int64(w) * int64(h) * 3 * 9 * int64(passes)
	// ~8 MACs/cycle on the native host (SIMD).
	e.Compute(cyclesWork(clk, macs/8, isa.ComputeMix, int64(w*h*3), 2.3,
		uint64(w)<<20^uint64(h)))
}
