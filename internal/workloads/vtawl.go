package workloads

import (
	"fmt"
	"sync"

	"nexsim/internal/accel/vta"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// Layer is one convolution layer of a network: Cin x H x W input,
// Cout filters of KxK, given stride.
type Layer struct {
	Cin, H, W, Cout, K, Stride int
}

// outDims returns the output spatial dims (same padding).
func (l Layer) outDims() (int, int) { return l.H / l.Stride, l.W / l.Stride }

// Network is a named layer stack.
type Network struct {
	Name   string
	Input  int // input image edge
	Layers []Layer
}

// repeatLayer appends n copies of a residual-style 3x3 block.
func repeatLayer(ls []Layer, n, c, hw int) []Layer {
	for i := 0; i < n; i++ {
		ls = append(ls, Layer{Cin: c, H: hw, W: hw, Cout: c, K: 3, Stride: 1})
	}
	return ls
}

// Networks returns the model zoo of the evaluation (full-size layer
// tables; scaling happens in VTAProgram).
func Networks() []Network {
	resnet18 := Network{Name: "resnet18", Input: 224}
	ls := []Layer{{Cin: 3, H: 224, W: 224, Cout: 64, K: 7, Stride: 2}}
	ls = repeatLayer(ls, 4, 64, 56)
	ls = append(ls, Layer{Cin: 64, H: 56, W: 56, Cout: 128, K: 3, Stride: 2})
	ls = repeatLayer(ls, 3, 128, 28)
	ls = append(ls, Layer{Cin: 128, H: 28, W: 28, Cout: 256, K: 3, Stride: 2})
	ls = repeatLayer(ls, 3, 256, 14)
	ls = append(ls, Layer{Cin: 256, H: 14, W: 14, Cout: 512, K: 3, Stride: 2})
	ls = repeatLayer(ls, 3, 512, 7)
	resnet18.Layers = ls

	resnet34 := Network{Name: "resnet34", Input: 224}
	ls = []Layer{{Cin: 3, H: 224, W: 224, Cout: 64, K: 7, Stride: 2}}
	ls = repeatLayer(ls, 6, 64, 56)
	ls = append(ls, Layer{Cin: 64, H: 56, W: 56, Cout: 128, K: 3, Stride: 2})
	ls = repeatLayer(ls, 7, 128, 28)
	ls = append(ls, Layer{Cin: 128, H: 28, W: 28, Cout: 256, K: 3, Stride: 2})
	ls = repeatLayer(ls, 11, 256, 14)
	ls = append(ls, Layer{Cin: 256, H: 14, W: 14, Cout: 512, K: 3, Stride: 2})
	ls = repeatLayer(ls, 5, 512, 7)
	resnet34.Layers = ls

	// ResNet-50 bottlenecks: 1x1 reduce, 3x3, 1x1 expand per block.
	resnet50 := Network{Name: "resnet50", Input: 224}
	ls = []Layer{{Cin: 3, H: 224, W: 224, Cout: 64, K: 7, Stride: 2}}
	bottleneck := func(ls []Layer, n, cin, mid, hw, stride int) []Layer {
		for i := 0; i < n; i++ {
			s := 1
			if i == 0 {
				s = stride
			}
			ls = append(ls,
				Layer{Cin: cin, H: hw, W: hw, Cout: mid, K: 1, Stride: s},
				Layer{Cin: mid, H: hw / s, W: hw / s, Cout: mid, K: 3, Stride: 1},
				Layer{Cin: mid, H: hw / s, W: hw / s, Cout: mid * 4, K: 1, Stride: 1},
			)
			cin = mid * 4
		}
		return ls
	}
	ls = bottleneck(ls, 3, 64, 64, 56, 1)
	ls = bottleneck(ls, 4, 256, 128, 56, 2)
	ls = bottleneck(ls, 6, 512, 256, 28, 2)
	ls = bottleneck(ls, 3, 1024, 512, 14, 2)
	resnet50.Layers = ls

	yolo := Network{Name: "yolov3-tiny", Input: 416}
	yolo.Layers = []Layer{
		{Cin: 3, H: 416, W: 416, Cout: 16, K: 3, Stride: 1},
		{Cin: 16, H: 208, W: 208, Cout: 32, K: 3, Stride: 1},
		{Cin: 32, H: 104, W: 104, Cout: 64, K: 3, Stride: 1},
		{Cin: 64, H: 52, W: 52, Cout: 128, K: 3, Stride: 1},
		{Cin: 128, H: 26, W: 26, Cout: 256, K: 3, Stride: 1},
		{Cin: 256, H: 13, W: 13, Cout: 512, K: 3, Stride: 1},
		{Cin: 512, H: 13, W: 13, Cout: 1024, K: 3, Stride: 1},
		{Cin: 1024, H: 13, W: 13, Cout: 256, K: 1, Stride: 1},
		{Cin: 256, H: 13, W: 13, Cout: 512, K: 3, Stride: 1},
		{Cin: 512, H: 13, W: 13, Cout: 255, K: 1, Stride: 1},
		{Cin: 256, H: 13, W: 13, Cout: 128, K: 1, Stride: 1},
		{Cin: 384, H: 26, W: 26, Cout: 256, K: 3, Stride: 1},
		{Cin: 256, H: 26, W: 26, Cout: 255, K: 1, Stride: 1},
	}
	return []Network{resnet18, resnet34, resnet50, yolo}
}

// VTAConfig parameterizes an inference run.
type VTAConfig struct {
	Network string
	// SpatialScale and ChannelScale shrink the network so the gem5+RTL
	// baseline stays tractable (documented in EXPERIMENTS.md).
	SpatialScale int // divide H,W (default 4)
	ChannelScale int // divide Cin/Cout (default 4)
	Processes    int // independent inference processes (multi-VTA runs)
	Seed         uint64
	UseIRQ       bool
}

func (c VTAConfig) withDefaults() VTAConfig {
	if c.SpatialScale == 0 {
		c.SpatialScale = 4
	}
	if c.ChannelScale == 0 {
		c.ChannelScale = 4
	}
	if c.Processes == 0 {
		c.Processes = 1
	}
	return c
}

// VTABenches returns the deep-learning benchmarks.
func VTABenches() []Bench {
	mk := func(name string, cfg VTAConfig) Bench {
		cfg = cfg.withDefaults()
		return Bench{
			Name:    name,
			Model:   core.AccelVTA,
			Devices: cfg.Processes,
			Threads: cfg.Processes,
			Build:   func(ctx *core.Ctx) app.Program { return VTAProgram(cfg, ctx) },
		}
	}
	return []Bench{
		mk("vta-resnet18", VTAConfig{Network: "resnet18", Seed: 11}),
		mk("vta-resnet34", VTAConfig{Network: "resnet34", Seed: 12}),
		mk("vta-resnet50", VTAConfig{Network: "resnet50", Seed: 13}),
		// The x2 variant halves channels instead of quartering them, so
		// the compute:offload ratio resembles the real network's — the
		// §6.4 design-sweep workload (see EXPERIMENTS.md).
		mk("vta-resnet50-x2", VTAConfig{Network: "resnet50", Seed: 13, ChannelScale: 2}),
		mk("vta-yolov3-tiny", VTAConfig{Network: "yolov3-tiny", Seed: 14}),
		mk("vta-matmul", VTAConfig{Network: "matmul", Seed: 15}),
		mk("vta-resnet18-mp4", VTAConfig{Network: "resnet18", Processes: 4, Seed: 16}),
		mk("vta-resnet18-mp8", VTAConfig{Network: "resnet18", Processes: 8, Seed: 17}),
	}
}

// gemmOf lowers a (scaled) layer to a GEMM shape (im2col).
func gemmOf(l Layer, spatial, chans int) (m, n, k int) {
	oh, ow := l.outDims()
	oh, ow = max1(oh/spatial), max1(ow/spatial)
	cin := max16(l.Cin / chans)
	if l.Cin <= 3 {
		cin = l.Cin // input channels are not scalable
	}
	cout := max16(l.Cout / chans)
	m = roundUp16(oh * ow)
	k = cin * l.K * l.K
	n = cout
	// The compiler K-splits oversized operands; only the accumulator
	// footprint bounds N.
	for 2*16*n > vta.AccBufSize {
		n /= 2
	}
	return m, n, max1(k)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
func max16(v int) int {
	if v < 16 {
		return 16
	}
	return v
}
func roundUp16(v int) int { return (v + 15) &^ 15 }

// VTAProgram builds the inference application: for each layer, the CPU
// does im2col (charged compute), launches the GEMM on VTA, and waits.
func VTAProgram(cfg VTAConfig, ctx *core.Ctx) app.Program {
	cfg = cfg.withDefaults()
	var layers []Layer
	if cfg.Network == "matmul" {
		// A single large GEMM benchmark (Fig. 4's accelerator-bound case).
		layers = nil
	} else {
		found := false
		for _, n := range Networks() {
			if n.Name == cfg.Network {
				layers, found = n.Layers, true
				break
			}
		}
		if !found {
			panic("workloads: unknown network " + cfg.Network)
		}
	}

	return app.Program{
		Name: "vta-" + cfg.Network,
		Main: func(e app.Env) {
			var wg app.WaitGroup
			wg.Add(cfg.Processes)
			for p := 0; p < cfg.Processes; p++ {
				p := p
				e.Spawn("inference", func(we app.Env) {
					runInference(we, cfg, ctx, p, layers)
					wg.Done(we)
				})
			}
			wg.Wait(e)
		},
	}
}

func runInference(e app.Env, cfg VTAConfig, ctx *core.Ctx, proc int, layers []Layer) {
	rng := xrand.New(cfg.Seed ^ uint64(proc)<<16)
	// Per-process arena slice.
	arena := ctx.Arena + mem.Addr(proc)*(8<<20)
	drv := vta.NewDriver(ctx.MMIO[proc], ctx.TaskBufs[proc], arena, 16)
	if cfg.UseIRQ {
		drv.EnableIRQ(e)
	}
	progArena := arena + 4<<20

	drv.ProgArena = progArena
	dataBase := arena

	tasks := make([]vta.GemmTask, 0, len(layers)+1)
	if cfg.Network == "matmul" {
		tasks = append(tasks, vta.GemmTask{M: 192, N: 128, K: 384, Shift: 7})
	} else {
		for _, l := range layers {
			m, n, k := gemmOf(l, cfg.SpatialScale, cfg.ChannelScale)
			tasks = append(tasks, vta.GemmTask{M: m, N: n, K: k, Shift: 7, ReLU: true})
		}
	}

	// Setup: stage operands (fast-forwarded, as with gem5 checkpoints).
	e.SlipStream(func() {
		off := dataBase
		for i := range tasks {
			t := &tasks[i]
			t.A = off
			off += mem.Addr(t.M*t.K+4095) &^ 4095
			t.B = off
			off += mem.Addr(t.N*t.K+4095) &^ 4095
			t.C = off
			off += mem.Addr(t.M*t.N+4095) &^ 4095
			// Operand blocks are derived per *shape*, not per layer:
			// synthetic weights carry no timing information, and
			// shape-keyed blocks let repeated layers (ResNet's stacked
			// blocks) reuse one generated block and one functional
			// interpretation in the device's plan memo.
			a := randI8(rng.Derive(fmt.Sprintf("a%dx%d", t.M, t.K)), t.M*t.K)
			b := randI8(rng.Derive(fmt.Sprintf("b%dx%d", t.N, t.K)), t.N*t.K)
			e.Mem().WriteAt(t.A, a)
			e.Mem().WriteAt(t.B, b)
		}
	})

	for i, t := range tasks {
		// im2col + quantization + layout transform on the CPU: ~8
		// operations per A element at ~4 ops/cycle (the TVM runtime's
		// pre-processing).
		elems := int64(t.M) * int64(t.K)
		e.Compute(cyclesWork(ctx.Clock, 2*elems, isa.MemHeavyMix, elems, 1.55,
			uint64(i)<<8^cfg.Seed))
		prog, err := vta.Compile(t)
		if err != nil {
			panic("workloads: " + err.Error())
		}
		drv.Launch(e, prog)
		if cfg.UseIRQ {
			drv.WaitAllIRQ(e)
		} else {
			drv.WaitAll(e, 0)
		}
	}

	// Classifier head / NMS on the CPU.
	e.ComputeFor(20 * vclock.Microsecond)
}

// randI8Memo caches generated operand blocks across runs, already in the
// byte layout StoreOperands would produce. The output of randI8 is a
// pure function of (stream state, n); the same operands are regenerated
// by every repeated run, checkpoint replay, and engine comparison of a
// workload, and callers treat the result as read-only (it is copied into
// simulated memory). Bounded so pathological sweeps cannot grow it
// without limit.
var randI8Memo = struct {
	sync.Mutex
	m     map[randI8Key][]byte
	bytes int
}{m: make(map[randI8Key][]byte)}

type randI8Key struct {
	state uint64
	n     int
}

const randI8MemoMax = 64 << 20

// randI8 fills n bytes from a throwaway derived stream. Callers must not
// reuse rng afterwards: on a memo hit the stream is not advanced.
func randI8(rng *xrand.Stream, n int) []byte {
	key := randI8Key{state: rng.State(), n: n}
	randI8Memo.Lock()
	out, ok := randI8Memo.m[key]
	randI8Memo.Unlock()
	if ok {
		return out
	}
	out = make([]byte, n)
	for i := range out {
		// byte(x) for x in [-128,127] has the same bit pattern as the
		// int8 the functional core will reinterpret it as.
		out[i] = byte(rng.Intn(256) - 128)
	}
	randI8Memo.Lock()
	if randI8Memo.bytes+n <= randI8MemoMax {
		randI8Memo.m[key] = out
		randI8Memo.bytes += n
	}
	randI8Memo.Unlock()
	return out
}

// CPUInferenceProgram is the CPU-only fallback (the paper's Q1/Q2
// comparison: ResNet-50 on the Xeon vs on VTA). The conv work is charged
// at the CPU's native int8 GEMM rate.
func CPUInferenceProgram(cfg VTAConfig, ctx *core.Ctx) app.Program {
	cfg = cfg.withDefaults()
	var layers []Layer
	for _, n := range Networks() {
		if n.Name == cfg.Network {
			layers = n.Layers
		}
	}
	return app.Program{
		Name: "cpu-" + cfg.Network,
		Main: func(e app.Env) {
			for p := 0; p < cfg.Processes; p++ {
				for i, l := range layers {
					m, n, k := gemmOf(l, cfg.SpatialScale, cfg.ChannelScale)
					macs := int64(m) * int64(n) * int64(k)
					// ~20 int8 MACs/cycle with VNNI on the native host.
					e.Compute(cyclesWork(ctx.Clock, macs/20, isa.ComputeMix,
						int64(m*k+n*k), 2.2, uint64(i)))
				}
				e.ComputeFor(20 * vclock.Microsecond)
			}
		},
	}
}
