package workloads

import (
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/isa"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// CPUOnlyBenches are the accelerator benchmarks "with all calls to
// accelerators removed" (§6.5's breakdown of NEX vs gem5 error against
// true native execution): the same applications performing the offloaded
// work on the CPU.
func CPUOnlyBenches() []Bench {
	var out []Bench

	out = append(out, Bench{
		Name: "cpu-jpeg-decode", Model: core.AccelNone, Threads: 1,
		Build: func(ctx *core.Ctx) app.Program {
			return CPUJPEGProgram(JPEGConfig{Images: 20, Seed: 101}.withDefaults(), ctx)
		},
	})
	for _, netname := range []string{"resnet18", "resnet50"} {
		netname := netname
		out = append(out, Bench{
			Name: "cpu-vta-" + netname, Model: core.AccelNone, Threads: 1,
			Build: func(ctx *core.Ctx) app.Program {
				return CPUInferenceProgram(VTAConfig{Network: netname, Seed: 11}, ctx)
			},
		})
	}
	for _, pb := range protoBenches[:2] {
		pb := pb
		out = append(out, Bench{
			Name: "cpu-" + pb.name, Model: core.AccelNone, Threads: 1,
			Build: func(ctx *core.Ctx) app.Program {
				return CPUSerializeProgram(pb, ctx)
			},
		})
	}
	return out
}

// CPUJPEGProgram decodes and filters the image corpus entirely on the
// CPU: entropy decoding at ~2 cycles/bit plus IDCT/color at ~45
// cycles/pixel, then the same matrix_filter_2d post-processing.
func CPUJPEGProgram(cfg JPEGConfig, ctx *core.Ctx) app.Program {
	return app.Program{
		Name: "cpu-jpeg",
		Main: func(e app.Env) {
			rng := xrand.New(cfg.Seed | 1)
			type imgJob struct {
				bits int64
				w, h int
			}
			var jobs []imgJob
			e.SlipStream(func() {
				// Encode sizes only — the CPU path needs the workload
				// shape, not staged device buffers.
				for i := 0; i < cfg.Images; i++ {
					w := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
					h := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
					w, h = w&^7, h&^7
					// Entropy payload estimate: ~1.2 bits/pixel at our
					// qualities.
					bits := int64(w) * int64(h) * 12 / 10
					jobs = append(jobs, imgJob{bits: bits, w: w, h: h})
				}
				e.ComputeFor(50 * vclock.Microsecond)
			})
			for i, j := range jobs {
				decodeCycles := j.bits*2 + int64(j.w)*int64(j.h)*45
				e.Compute(cyclesWork(ctx.Clock, decodeCycles, isa.DefaultMix,
					int64(j.w*j.h*3), 1.75, cfg.Seed^uint64(i)))
				matrixFilter2D(e, ctx.Clock, j.w, j.h, cfg.FilterPasses)
			}
		},
	}
}
