// Package workloads defines the benchmark applications of the paper's
// evaluation (§6.1, Table 2): the VTA deep-learning stack (ResNet-18/34/
// 50, YOLOv3-tiny, matmul), the Protoacc serialization stack
// (HyperProtoBench-style bench0–5), the JPEG decoding stack (image
// corpus + post-processing, single- and multi-threaded), and the
// NPB-style OpenMP kernels used for NEX's configuration studies (§6.6).
//
// Every workload is an app.Program built against a core.Ctx, so the same
// unmodified program runs on every host/accelerator engine combination.
// Workload sizes are scaled down from the paper's (which simulate
// seconds of execution) so that the slowest baseline (gem5+RTL)
// completes in seconds of host time; scaling factors are recorded in
// EXPERIMENTS.md.
package workloads

import (
	"fmt"

	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/isa"
	"nexsim/internal/vclock"
)

// Bench is one catalogued benchmark.
type Bench struct {
	Name    string
	Model   core.AccelModel // required accelerator ("" = CPU-only)
	Devices int             // accelerator instances
	Threads int             // application threads (beyond main)
	// Build constructs the program against an assembled system.
	Build func(ctx *core.Ctx) app.Program
}

// Catalog returns all named benchmarks.
func Catalog() []Bench {
	var all []Bench
	all = append(all, VTABenches()...)
	all = append(all, ProtoaccBenches()...)
	all = append(all, JPEGBenches()...)
	all = append(all, NPBBenches(8)...)
	all = append(all, CPUOnlyBenches()...)
	all = append(all, Bench{
		// CPU companion of vta-resnet50-x2: the §6.4 sweep's baseline
		// (not part of CPUOnlyBenches — the §6.5 error study keeps its
		// original benchmark set).
		Name: "cpu-vta-resnet50-x2", Model: core.AccelNone, Threads: 1,
		Build: func(ctx *core.Ctx) app.Program {
			return CPUInferenceProgram(VTAConfig{Network: "resnet50", Seed: 13, ChannelScale: 2}, ctx)
		},
	})
	return all
}

// ByName finds a benchmark.
func ByName(name string) (Bench, error) {
	for _, b := range Catalog() {
		if b.Name == name {
			return b, nil
		}
	}
	return Bench{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// cyclesWork builds a compute segment from a native cycle count with a
// consistent instruction count (Instr = cycles x IPCNative), so the
// gem5-style model's deviation reflects only its timing model, not
// bookkeeping mismatches.
func cyclesWork(clk vclock.Hz, cycles int64, mix isa.Mix, ws int64, ipc float64, seed uint64) isa.Work {
	if cycles < 1 {
		cycles = 1
	}
	return isa.Work{
		Instr:      int64(float64(cycles) * ipc),
		Mix:        mix,
		WorkingSet: ws,
		IPCNative:  ipc,
		Seed:       seed,
		NativeDur:  clk.CyclesDur(cycles),
	}
}
