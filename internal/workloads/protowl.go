package workloads

import (
	"fmt"

	"nexsim/internal/accel"
	"nexsim/internal/accel/protoacc"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/xrand"
)

// protoBench parameterizes one HyperProtoBench-style workload: a message
// shape distribution sampled from a fleet profile. The six benches span
// the axes that matter for the serializer: message size, field count,
// string weight, and nesting depth.
type protoBench struct {
	name      string
	messages  int // batch size
	fields    int // scalar fields per message
	strFields int
	strLen    int // mean bytes per string field
	depth     int // nesting depth (submessages chained)
	seed      uint64
	useIRQ    bool
}

var protoBenches = []protoBench{
	{name: "protoacc-bench0", messages: 160, fields: 12, strFields: 6, strLen: 160, depth: 3, seed: 201},
	{name: "protoacc-bench1", messages: 512, fields: 4, strFields: 1, strLen: 48, depth: 1, seed: 202},
	{name: "protoacc-bench2", messages: 96, fields: 4, strFields: 3, strLen: 2048, depth: 1, seed: 203},
	{name: "protoacc-bench3", messages: 128, fields: 6, strFields: 1, strLen: 128, depth: 3, seed: 204},
	{name: "protoacc-bench4", messages: 128, fields: 12, strFields: 4, strLen: 512, depth: 2, seed: 205},
	{name: "protoacc-bench5", messages: 160, fields: 30, strFields: 6, strLen: 96, depth: 1, seed: 206},
}

// ProtoaccBenches returns the serialization benchmarks.
func ProtoaccBenches() []Bench {
	var out []Bench
	for _, pb := range protoBenches {
		pb := pb
		out = append(out, Bench{
			Name:    pb.name,
			Model:   core.AccelProtoacc,
			Devices: 1,
			Threads: 1,
			Build:   func(ctx *core.Ctx) app.Program { return ProtoaccProgram(pb, ctx) },
		})
	}
	return out
}

// buildSchema constructs the bench's message type.
func buildSchema(pb protoBench) *protoacc.MessageDesc {
	var build func(level int) *protoacc.MessageDesc
	build = func(level int) *protoacc.MessageDesc {
		d := &protoacc.MessageDesc{Name: fmt.Sprintf("%s.L%d", pb.name, level)}
		num := 1
		for i := 0; i < pb.fields; i++ {
			kind := protoacc.KindInt64
			switch i % 4 {
			case 1:
				kind = protoacc.KindSint64
			case 2:
				kind = protoacc.KindFixed64
			case 3:
				kind = protoacc.KindFixed32
			}
			d.Fields = append(d.Fields, protoacc.FieldDesc{Number: num, Kind: kind})
			num++
		}
		for i := 0; i < pb.strFields; i++ {
			d.Fields = append(d.Fields, protoacc.FieldDesc{Number: num, Kind: protoacc.KindBytes})
			num++
		}
		if level+1 < pb.depth {
			d.Fields = append(d.Fields, protoacc.FieldDesc{
				Number: num, Kind: protoacc.KindMessage, Sub: build(level + 1),
			})
		}
		return d
	}
	return build(0)
}

// fillRandom populates a message instance.
func fillRandom(d *protoacc.MessageDesc, rng *xrand.Stream, strLen int) *protoacc.Message {
	m := protoacc.NewMessage(d)
	for i, f := range d.Fields {
		switch f.Kind {
		case protoacc.KindBytes:
			n := strLen/2 + rng.Intn(strLen+1)
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(rng.Intn(256))
			}
			m.Values[i] = protoacc.Value{Bytes: buf, Set: true}
		case protoacc.KindMessage:
			m.Values[i] = protoacc.Value{Msg: fillRandom(f.Sub, rng, strLen), Set: true}
		default:
			m.Values[i] = protoacc.Value{Int: rng.Uint64() >> uint(rng.Intn(48)), Set: true}
		}
	}
	return m
}

// ProtoaccProgram builds the asynchronous serialization application: the
// CPU creates and fills messages (the costly part the paper points at),
// launches the batch, then waits for completion.
func ProtoaccProgram(pb protoBench, ctx *core.Ctx) app.Program {
	return app.Program{
		Name: pb.name,
		Main: func(e app.Env) {
			raw := ctx.Devices[0]
			if u, ok := raw.(interface{ Unwrap() accel.Device }); ok {
				raw = u.Unwrap()
			}
			dev := raw.(interface {
				RegisterSchema(uint32, *protoacc.MessageDesc)
			})
			schema := buildSchema(pb)
			dev.RegisterSchema(1, schema)
			drv := protoacc.NewDriver(ctx.MMIO[0], ctx.TaskBufs[0], 128)
			if pb.useIRQ {
				drv.EnableIRQ(e)
			}

			rng := xrand.New(pb.seed)
			type staged struct {
				root mem.Addr
				out  mem.Addr
				size int
			}
			var batch []staged

			// Message creation and content filling on the CPU,
			// interleaved with asynchronous launches (paper §6.1: the CPU
			// preprocesses and launches a series of tasks, then waits).
			next := ctx.Arena
			for i := 0; i < pb.messages; i++ {
				msg := fillRandom(schema, rng.Derive(fmt.Sprintf("m%d", i)), pb.strLen)
				lay := protoacc.Store(e.Mem(), next, msg)
				next += mem.Addr(lay.Total+4095) &^ 4095
				out := next
				wireSize := protoacc.SerializedSize(msg)
				next += mem.Addr(wireSize+4+4095) &^ 4095
				batch = append(batch, staged{root: lay.Root, out: out, size: wireSize})

				// Creation cost: ~150 cycles per field plus ~1 cycle/byte
				// of content filling at the native host.
				bytes := int64(lay.DataLen) + int64(lay.Fields)*8
				e.Compute(cyclesWork(ctx.Clock, int64(lay.Fields)*150+bytes,
					isa.MemHeavyMix, int64(lay.Total), 1.42, pb.seed^uint64(i)))
				s := batch[len(batch)-1]
				drv.Submit(e, protoacc.Desc{Root: s.root, Out: s.out, Schema: 1})
			}
			if pb.useIRQ {
				drv.WaitAllIRQ(e)
			} else {
				drv.WaitAll(e, 0)
			}
		},
	}
}

// WithIRQ returns a copy of a named bench configured for interrupt-driven
// completion (the §6.7 hybrid-synchronization study).
func WithIRQ(pb protoBench) protoBench {
	pb.useIRQ = true
	return pb
}

// CPUSerializeProgram is the CPU-only baseline: Marshal on the host at
// its native serialization rate (~1.3 GB/s plus per-field overhead).
func CPUSerializeProgram(pb protoBench, ctx *core.Ctx) app.Program {
	return app.Program{
		Name: pb.name + "-cpu",
		Main: func(e app.Env) {
			schema := buildSchema(pb)
			rng := xrand.New(pb.seed)
			for i := 0; i < pb.messages; i++ {
				msg := fillRandom(schema, rng.Derive(fmt.Sprintf("m%d", i)), pb.strLen)
				size := protoacc.SerializedSize(msg)
				fields := countFields(msg)
				// Creation cost (same as the accelerated path).
				bytes := int64(size)
				e.Compute(cyclesWork(ctx.Clock, int64(fields)*150+bytes,
					isa.MemHeavyMix, bytes, 1.42, pb.seed^uint64(i)))
				// Serialization itself: ~75 cycles/field + ~2.2 cycles/byte.
				e.Compute(cyclesWork(ctx.Clock, int64(fields)*75+bytes*11/5,
					isa.MemHeavyMix, bytes*2, 1.75, pb.seed^uint64(i)^0xabc))
			}
		},
	}
}

func countFields(m *protoacc.Message) int {
	n := 0
	for i := range m.Values {
		if !m.Values[i].Set {
			continue
		}
		n++
		if m.Values[i].Msg != nil {
			n += countFields(m.Values[i].Msg)
		}
	}
	return n
}

// ProtoBenchByName returns the bench parameters (for the tail-latency
// and sweep experiments).
func ProtoBenchByName(name string) (protoBench, bool) {
	for _, pb := range protoBenches {
		if pb.name == name {
			return pb, true
		}
	}
	return protoBench{}, false
}
