package workloads

import (
	"fmt"

	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/coro"
	"nexsim/internal/isa"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// npbKernel parameterizes an OpenMP-style NPB kernel skeleton: per-
// iteration compute segments (with per-thread skew, as real kernels
// have) separated by barriers — the communication structure that drives
// NEX's epoch-duration accuracy trade-off (Table 4) and the SP/LU
// divergence under the complementary scheduler (§A.1).
type npbKernel struct {
	name     string
	seg      vclock.Duration // mean compute segment per iteration
	iters    int
	barriers int     // barriers per iteration (0 = embarrassingly parallel)
	skew     float64 // relative per-thread/iteration duration spread
	memHeavy bool    // memory-bound instruction mix
	pipeline bool    // LU-style wavefront: neighbour handoff each iter
}

// npbKernels are class-W-scaled skeletons of the eight kernels.
var npbKernels = []npbKernel{
	{name: "ep", seg: 200 * vclock.Microsecond, iters: 20, barriers: 0, skew: 0.02},
	{name: "cg", seg: 15700 * vclock.Nanosecond, iters: 200, barriers: 1, skew: 0.10, memHeavy: true},
	{name: "mg", seg: 13900 * vclock.Nanosecond, iters: 150, barriers: 1, skew: 0.15, memHeavy: true},
	{name: "ft", seg: 29300 * vclock.Nanosecond, iters: 60, barriers: 2, skew: 0.08, memHeavy: true},
	{name: "is", seg: 21100 * vclock.Nanosecond, iters: 80, barriers: 2, skew: 0.12},
	{name: "bt", seg: 24700 * vclock.Nanosecond, iters: 100, barriers: 1, skew: 0.06},
	{name: "sp", seg: 11300 * vclock.Nanosecond, iters: 200, barriers: 1, skew: 0.10},
	{name: "lu", seg: 14900 * vclock.Nanosecond, iters: 150, barriers: 1, skew: 0.10, pipeline: true},
}

// NPBBenches returns the NPB-style kernels at the given thread count.
func NPBBenches(threads int) []Bench {
	var out []Bench
	for _, k := range npbKernels {
		k := k
		out = append(out, Bench{
			Name:    fmt.Sprintf("npb-%s.%d", k.name, threads),
			Model:   core.AccelNone,
			Threads: threads,
			Build: func(ctx *core.Ctx) app.Program {
				return NPBProgram(k.name, threads, ctx.Clock)
			},
		})
	}
	return out
}

// NPBProgram builds one kernel at a thread count (exported for the
// epoch/oversubscription studies that sweep thread counts directly).
func NPBProgram(kernel string, threads int, clk vclock.Hz) app.Program {
	var k npbKernel
	found := false
	for _, c := range npbKernels {
		if c.name == kernel {
			k, found = c, true
			break
		}
	}
	if !found {
		panic("workloads: unknown NPB kernel " + kernel)
	}
	return app.Program{
		Name: fmt.Sprintf("npb-%s.%d", kernel, threads),
		Main: func(e app.Env) {
			bar := &app.Barrier{N: threads}
			var wg app.WaitGroup
			wg.Add(threads)
			workers := make([]*workerCtl, threads)
			for i := 0; i < threads; i++ {
				workers[i] = &workerCtl{}
			}
			for i := 0; i < threads; i++ {
				i := i
				e.Spawn(kernel, func(we app.Env) {
					rng := xrand.New(uint64(i)<<32 ^ 0xdb)
					mix := isa.ComputeMix
					ws := int64(256 << 10)
					ipc := 1.55
					if k.memHeavy {
						mix = isa.MemHeavyMix
						ws = 8 << 20
						ipc = 1.2
					}
					for it := 0; it < k.iters; it++ {
						d := vclock.Duration(float64(k.seg) * rng.Jitter(k.skew))
						we.Compute(isa.Segment(d, clk, mix, ws, ipc,
							uint64(i)<<40^uint64(it)))
						if k.pipeline && i > 0 {
							// LU wavefront: wait for the left neighbour's
							// iteration before proceeding.
							workers[i-1].await(we, it+1)
						}
						if k.pipeline {
							workers[i].post(we, it+1)
						}
						for b := 0; b < k.barriers; b++ {
							bar.Wait(we)
						}
					}
					wg.Done(we)
				})
			}
			wg.Wait(e)
		},
	}
}

// workerCtl is a monotone progress counter with park/unpark waiting,
// used for LU's wavefront dependencies.
type workerCtl struct {
	progress int
	waiters  []waiter
}

type waiter struct {
	th    *coro.Thread
	least int
}

func (w *workerCtl) post(e app.Env, v int) {
	if v > w.progress {
		w.progress = v
	}
	kept := w.waiters[:0]
	for _, wt := range w.waiters {
		if w.progress >= wt.least {
			e.Unpark(wt.th)
		} else {
			kept = append(kept, wt)
		}
	}
	w.waiters = kept
}

func (w *workerCtl) await(e app.Env, least int) {
	for w.progress < least {
		w.waiters = append(w.waiters, waiter{th: e.Self(), least: least})
		e.Park()
	}
}
