package workloads

import (
	"testing"

	"nexsim/internal/core"
	"nexsim/internal/vclock"
)

func TestCatalogIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Catalog() {
		if b.Name == "" {
			t.Fatal("benchmark with empty name")
		}
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Build == nil {
			t.Fatalf("%s has no builder", b.Name)
		}
		if b.Model != core.AccelNone && b.Devices <= 0 {
			t.Fatalf("%s needs an accelerator but declares no devices", b.Name)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("catalog has only %d benchmarks", len(seen))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("definitely-not-a-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNetworkShapes(t *testing.T) {
	for _, n := range Networks() {
		if len(n.Layers) == 0 {
			t.Fatalf("%s has no layers", n.Name)
		}
		var macs int64
		for _, l := range n.Layers {
			if l.Cin <= 0 || l.Cout <= 0 || l.K <= 0 || l.Stride <= 0 {
				t.Fatalf("%s has malformed layer %+v", n.Name, l)
			}
			oh, ow := l.outDims()
			macs += int64(oh) * int64(ow) * int64(l.Cout) * int64(l.Cin) * int64(l.K*l.K)
		}
		if macs <= 0 {
			t.Fatalf("%s has no compute", n.Name)
		}
	}
	// Depth ordering: resnet50 > resnet34 > resnet18 in layer count.
	byName := map[string]int{}
	for _, n := range Networks() {
		byName[n.Name] = len(n.Layers)
	}
	if !(byName["resnet50"] > byName["resnet34"] && byName["resnet34"] > byName["resnet18"]) {
		t.Fatalf("layer counts out of order: %v", byName)
	}
}

func TestGemmOfRespectsAccBound(t *testing.T) {
	for _, n := range Networks() {
		for _, l := range n.Layers {
			m, nn, k := gemmOf(l, 4, 4)
			if m%16 != 0 {
				t.Fatalf("M=%d not tile-aligned", m)
			}
			if 2*16*nn > 32<<10 {
				t.Fatalf("N=%d exceeds accumulator bound", nn)
			}
			if k < 1 {
				t.Fatalf("K=%d", k)
			}
		}
	}
}

func TestNPBProgramUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NPBProgram("nope", 4, 3*vclock.GHz)
}

func TestCPUOnlyBenchesHaveNoDevices(t *testing.T) {
	for _, b := range CPUOnlyBenches() {
		if b.Model != core.AccelNone {
			t.Fatalf("%s declares an accelerator", b.Name)
		}
	}
}

func TestProtoBenchLookup(t *testing.T) {
	if _, ok := ProtoBenchByName("protoacc-bench0"); !ok {
		t.Fatal("bench0 missing")
	}
	if _, ok := ProtoBenchByName("protoacc-bench9"); ok {
		t.Fatal("phantom bench")
	}
}

// Integration sanity: every catalogued benchmark runs to completion on
// the cheapest engine combination and produces positive simulated time.
func TestEveryBenchmarkRuns(t *testing.T) {
	for _, b := range Catalog() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys := core.Build(core.Config{
				Host: core.HostNEX, Accel: core.AccelDSim,
				Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42,
			})
			r := sys.Run(b.Build(&sys.Ctx))
			if r.SimTime <= 0 {
				t.Fatal("no simulated time")
			}
		})
	}
}

func TestCorpusCacheDeterministic(t *testing.T) {
	cfg := JPEGConfig{Images: 4, Seed: 5}.withDefaults()
	run := func() vclock.Duration {
		sys := core.Build(core.Config{
			Host: core.HostReference, Accel: core.AccelDSim,
			Model: core.AccelJPEG, Devices: 1, Cores: 8, Seed: 42,
		})
		return sys.Run(JPEGProgram(cfg, &sys.Ctx)).SimTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("corpus-cached runs differ: %v vs %v", a, b)
	}
}
