package stats

import "sort"

// Histogram counts observations into fixed buckets. The serving layer
// (internal/simserve) uses it for per-benchmark wall-time distributions
// on /metrics; bounds are upper limits in ascending order with an
// implicit +Inf bucket at the end, the Prometheus convention, so the
// text rendering can emit cumulative `le=` lines directly.
//
// A Histogram is not safe for concurrent use; callers guard it (the
// serving layer records under its own lock).
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. It panics if bounds are empty or out of order, which would
// silently misbucket every observation.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: histogram bounds must be ascending")
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]int64, len(cp)+1)}
}

// GeometricBounds returns n upper bounds starting at first, each factor
// times the previous — the standard shape for latency buckets.
func GeometricBounds(first, factor float64, n int) []float64 {
	if n < 1 || first <= 0 || factor <= 1 {
		panic("stats: geometric bounds need n >= 1, first > 0, factor > 1")
	}
	out := make([]float64, n)
	v := first
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns, for each bound (and finally +Inf), the count of
// observations less than or equal to it.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var acc int64
	for i, c := range h.counts {
		acc += c
		out[i] = acc
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) from the buckets,
// returning the upper bound of the bucket containing it (the last
// finite bound when the quantile lands in the +Inf bucket). Zero when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var acc int64
	for i, c := range h.counts {
		acc += c
		if acc >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}
