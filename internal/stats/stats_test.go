package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nexsim/internal/vclock"
)

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", got)
	}
	if got := RelErr(5, 0); got != 0 {
		t.Fatalf("RelErr with zero base = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.1, 0.3, 0.2})
	if s.N != 3 || s.Min != 0.1 || s.Max != 0.3 || math.Abs(s.Avg-0.2) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := make([]vclock.Duration, 100)
	for i := range xs {
		xs[i] = vclock.Duration(i + 1)
	}
	if got := Percentile(xs, 90); got != 90 {
		t.Fatalf("p90 = %v", got)
	}
	if got := Percentile(xs, 100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs[:1], 50); got != 1 {
		t.Fatalf("p50 of singleton = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []vclock.Duration{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []uint32, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]vclock.Duration, len(raw))
		lo, hi := vclock.Duration(math.MaxInt64), vclock.Duration(0)
		for i, v := range raw {
			xs[i] = vclock.Duration(v)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		got := Percentile(xs, float64(p%101))
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatal("empty geomean not zero")
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Fatal("non-positive geomean not zero")
	}
}
