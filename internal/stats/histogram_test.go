package stats

import "testing"

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 8} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if h.Sum() != 14 {
		t.Fatalf("Sum = %v, want 14", h.Sum())
	}
	// Cumulative counts: <=1: {0.5, 1}, <=2: +{1.5}, <=4: +{3}, +Inf: +{8}.
	want := []int64{2, 3, 4, 5}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("Cumulative len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Cumulative[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want bucket bound 2", q)
	}
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(1); q != 8 {
		t.Errorf("Quantile(1) = %v, want last finite bound 8", q)
	}
}

func TestGeometricBounds(t *testing.T) {
	b := GeometricBounds(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("GeometricBounds = %v, want %v", b, want)
		}
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram() },
		func() { NewHistogram(2, 1) },
		func() { GeometricBounds(0, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid bounds")
				}
			}()
			f()
		}()
	}
}
