// Package stats provides the small statistical helpers the benchmark
// harness uses: relative errors, summaries across benchmarks, and
// percentiles for tail-latency analysis (§6.8).
package stats

import (
	"math"
	"sort"

	"nexsim/internal/vclock"
)

// RelErr returns |a-b| / b.
func RelErr(a, b vclock.Duration) float64 {
	if b == 0 {
		return 0
	}
	return math.Abs(float64(a)-float64(b)) / math.Abs(float64(b))
}

// Summary aggregates a set of error observations.
type Summary struct {
	N             int
	Avg, Max, Min float64
}

// Summarize computes avg/max/min of a sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x > s.Max {
			s.Max = x
		}
		if x < s.Min {
			s.Min = x
		}
	}
	s.Avg = sum / float64(len(xs))
	return s
}

// Percentile returns the p-th percentile (0..100) of the sample using
// nearest-rank; it does not modify xs.
func Percentile(xs []vclock.Duration, p float64) vclock.Duration {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]vclock.Duration, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(cp) {
		rank = len(cp)
	}
	return cp[rank-1]
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
