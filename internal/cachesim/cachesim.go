// Package cachesim implements set-associative cache latency simulators
// (L1, L2, LLC) that stack hierarchically through the memsys.Port
// interface (paper §4: "Multiple cache simulators can also be stacked,
// one for each level").
//
// The model is a write-back, write-allocate cache with true LRU
// replacement per set. Only timing-relevant state is kept (tags and dirty
// bits); data always lives in the simulated physical memory, so caches
// never need to be coherent with functional state.
package cachesim

import (
	"sync"

	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int             // total bytes
	LineSize   int             // bytes per line (power of two)
	Assoc      int             // ways per set
	HitLatency vclock.Duration // latency of a hit (and tag check on miss)
	// Pace is the issue interval between successive lines of one large
	// request (the cache's streaming bandwidth); defaults to one line
	// per 2ns (~32 B/ns).
	Pace vclock.Duration
}

// Cache is a single cache level backed by a parent Port.
type Cache struct {
	cfg    Config
	parent memsys.Port

	sets     []set
	slab     []line // backing store carved into per-set arrays on first touch
	setMask  mem.Addr
	lineBits uint
	epoch    uint64 // generation stamp; lines from older epochs are invalid

	lruClock int64

	// Stats.
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// line packs the tag, a recycling epoch, and the valid/dirty flags into
// one word so a set's line array is 16 bytes per way: streaming workloads
// touch every set of a large LLC once per run, so the footprint of this
// struct is the dominant allocation of a whole simulation. The epoch lets
// Recycle invalidate every line in O(1) — a line is live only when its
// stamped epoch equals the cache's current one — so a pooled hierarchy
// restarts cold without zeroing megabytes of slab.
type line struct {
	tagbits uint64 // lineAddr<<18 | epoch<<2 | dirty<<1 | valid
	lru     int64  // higher = more recent
}

const (
	lineValid = 1 << 0
	lineDirty = 1 << 1

	epochShift = 2
	epochBits  = 16
	epochMask  = 1<<epochBits - 1
	tagShift   = epochShift + epochBits
	// maxTag bounds the packable line address: 46 tag bits cover 2^52
	// bytes of simulated physical address space with 64-byte lines.
	maxTag = 1<<(64-tagShift) - 1
)

func (l *line) dirty() bool   { return l.tagbits&lineDirty != 0 }
func (l *line) tag() mem.Addr { return mem.Addr(l.tagbits >> tagShift) }

// live reports whether the line is valid in the cache's current epoch.
func (c *Cache) live(l *line) bool {
	return l.tagbits&lineValid != 0 && l.tagbits>>epochShift&epochMask == c.epoch
}

type set struct {
	lines []line
}

// New builds a cache level. It panics on malformed geometry so
// misconfigurations fail at construction, not mid-simulation.
func New(cfg Config, parent memsys.Port) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cachesim: line size must be a positive power of two")
	}
	if cfg.Assoc <= 0 {
		panic("cachesim: associativity must be positive")
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Assoc
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("cachesim: set count must be a positive power of two (size/line/assoc mismatch)")
	}
	if parent == nil {
		panic("cachesim: nil parent port")
	}
	if cfg.Pace == 0 {
		cfg.Pace = 2 * vclock.Nanosecond
	}
	// Reuse a recycled cache of identical geometry when one is pooled:
	// behaviorally indistinguishable from a fresh build (every line is
	// invalid in the new epoch, stats are zero), but the slab and set
	// arrays come for free.
	pool.Lock()
	if list := pool.m[cfg]; len(list) > 0 {
		c := list[len(list)-1]
		pool.m[cfg] = list[:len(list)-1]
		pool.Unlock()
		c.parent = parent
		return c
	}
	pool.Unlock()
	// Line arrays are allocated lazily on first touch of a set: a large
	// LLC has tens of thousands of sets, most of which a short simulation
	// never references, and every system build constructs a fresh
	// hierarchy.
	c := &Cache{cfg: cfg, parent: parent, sets: make([]set, nSets), setMask: mem.Addr(nSets - 1)}
	for bits := cfg.LineSize; bits > 1; bits >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access implements memsys.Port. A request spanning multiple lines pays
// one lookup per line; the completion time is that of the last line.
func (c *Cache) Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if size <= 0 {
		size = 1
	}
	done := at
	first := addr >> c.lineBits
	last := (addr + mem.Addr(size) - 1) >> c.lineBits
	t := at
	for ln := first; ln <= last; ln++ {
		d := c.accessLine(t, kind, ln)
		if d > done {
			done = d
		}
		// Consecutive lines of one request stream at the cache's
		// bandwidth, pipelined behind the first tag check.
		t = t.Add(c.cfg.Pace)
	}
	return done
}

// AccessOne is Access for a request contained in a single line — the
// common case for CPU-model loads and stores: one tag lookup, no
// streaming loop. Equivalent to Access(at, kind, addr, size) whenever
// addr..addr+size-1 stays within one line.
func (c *Cache) AccessOne(at vclock.Time, kind mem.AccessKind, addr mem.Addr) vclock.Time {
	return c.accessLine(at, kind, addr>>c.lineBits)
}

func (c *Cache) accessLine(at vclock.Time, kind mem.AccessKind, lineAddr mem.Addr) vclock.Time {
	s := &c.sets[lineAddr&c.setMask]
	if s.lines == nil {
		// Carve the set's line array from a chunked slab: lazy (a short
		// simulation touching few sets allocates little) without paying
		// one allocation per set when a streaming workload sweeps the
		// whole index space.
		if len(c.slab) < c.cfg.Assoc {
			n := 1024 * c.cfg.Assoc
			if max := len(c.sets) * c.cfg.Assoc; n > max {
				n = max
			}
			c.slab = make([]line, n)
		}
		s.lines = c.slab[:c.cfg.Assoc:c.cfg.Assoc]
		c.slab = c.slab[c.cfg.Assoc:]
	}
	tag := lineAddr // full line address as tag (set bits redundant but harmless)
	c.lruClock++

	// A hit must match address, epoch, and the valid bit in one compare;
	// only the dirty bit may differ.
	want := uint64(tag)<<tagShift | c.epoch<<epochShift | lineValid
	for i := range s.lines {
		l := &s.lines[i]
		if l.tagbits&^lineDirty == want {
			c.Hits++
			l.lru = c.lruClock
			if kind == mem.Write {
				l.tagbits |= lineDirty
			}
			return at.Add(c.cfg.HitLatency)
		}
	}

	// Miss: fetch the line from the parent (after the tag check), evict
	// the LRU victim, writing it back first if dirty.
	c.Misses++
	victim := 0
	for i := range s.lines {
		if !c.live(&s.lines[i]) {
			victim = i
			break
		}
		if s.lines[i].lru < s.lines[victim].lru {
			victim = i
		}
	}
	fetchStart := at.Add(c.cfg.HitLatency)
	v := &s.lines[victim]
	if c.live(v) {
		c.Evictions++
		if v.dirty() {
			c.Writebacks++
			// The writeback occupies the parent but does not delay the
			// demand fetch's completion beyond the parent's own queueing.
			c.parent.Access(fetchStart, mem.Write, v.tag()<<c.lineBits, c.cfg.LineSize)
		}
	}
	done := c.parent.Access(fetchStart, mem.Read, lineAddr<<c.lineBits, c.cfg.LineSize)
	if tag > maxTag {
		panic("cachesim: line address exceeds packed tag range")
	}
	tb := want
	if kind == mem.Write {
		tb |= lineDirty
	}
	*v = line{tagbits: tb, lru: c.lruClock}
	return done
}

// MissRate returns misses/(hits+misses), or 0 with no traffic.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Flush invalidates all lines, writing back dirty ones at time at; it
// returns the completion time of the last writeback.
func (c *Cache) Flush(at vclock.Time) vclock.Time {
	done := at
	for si := range c.sets {
		for li := range c.sets[si].lines {
			l := &c.sets[si].lines[li]
			if c.live(l) && l.dirty() {
				c.Writebacks++
				if d := c.parent.Access(at, mem.Write, l.tag()<<c.lineBits, c.cfg.LineSize); d > done {
					done = d
				}
			}
			l.tagbits = 0
		}
	}
	return done
}

// pool holds recycled caches per configuration. Building a hierarchy for
// every sweep point allocates (and zeroes) megabytes of line slab; a
// recycled cache reuses its slab and set arrays, made cold again by the
// epoch bump, so repeated Build/Release cycles stop paying that cost.
var pool = struct {
	sync.Mutex
	m map[Config][]*Cache
}{m: make(map[Config][]*Cache)}

// Recycle resets the cache to its just-built state (no live lines, zero
// stats) and returns it to the construction pool. Nothing is written
// back — the cache models timing only, and the caller is discarding the
// whole simulated system. The cache must not be used after Recycle.
func (c *Cache) Recycle() {
	c.epoch++
	if c.epoch > epochMask {
		// Epoch exhausted: stale lines from 2^16 generations ago could
		// alias the wrapped stamp, so retire this cache to the GC instead.
		return
	}
	c.parent = nil
	c.lruClock = 0
	c.Hits, c.Misses, c.Evictions, c.Writebacks = 0, 0, 0, 0
	pool.Lock()
	pool.m[c.cfg] = append(pool.m[c.cfg], c)
	pool.Unlock()
}

// Typical level configurations used across the evaluation, loosely
// modeled on the paper's Xeon Gold 6248R host.
var (
	L1D = Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 1333 * vclock.Picosecond}   // ~4 cycles @3GHz
	L2  = Config{Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 16, HitLatency: 4666 * vclock.Picosecond}    // ~14 cycles
	LLC = Config{Name: "LLC", Size: 32 << 20, LineSize: 64, Assoc: 16, HitLatency: 16666 * vclock.Picosecond} // ~50 cycles
)
