// Package cachesim implements set-associative cache latency simulators
// (L1, L2, LLC) that stack hierarchically through the memsys.Port
// interface (paper §4: "Multiple cache simulators can also be stacked,
// one for each level").
//
// The model is a write-back, write-allocate cache with true LRU
// replacement per set. Only timing-relevant state is kept (tags and dirty
// bits); data always lives in the simulated physical memory, so caches
// never need to be coherent with functional state.
package cachesim

import (
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int             // total bytes
	LineSize   int             // bytes per line (power of two)
	Assoc      int             // ways per set
	HitLatency vclock.Duration // latency of a hit (and tag check on miss)
	// Pace is the issue interval between successive lines of one large
	// request (the cache's streaming bandwidth); defaults to one line
	// per 2ns (~32 B/ns).
	Pace vclock.Duration
}

// Cache is a single cache level backed by a parent Port.
type Cache struct {
	cfg    Config
	parent memsys.Port

	sets     []set
	setMask  mem.Addr
	lineBits uint

	lruClock int64

	// Stats.
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

type line struct {
	tag   mem.Addr
	valid bool
	dirty bool
	lru   int64 // higher = more recent
}

type set struct {
	lines []line
}

// New builds a cache level. It panics on malformed geometry so
// misconfigurations fail at construction, not mid-simulation.
func New(cfg Config, parent memsys.Port) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cachesim: line size must be a positive power of two")
	}
	if cfg.Assoc <= 0 {
		panic("cachesim: associativity must be positive")
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Assoc
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("cachesim: set count must be a positive power of two (size/line/assoc mismatch)")
	}
	if parent == nil {
		panic("cachesim: nil parent port")
	}
	if cfg.Pace == 0 {
		cfg.Pace = 2 * vclock.Nanosecond
	}
	c := &Cache{cfg: cfg, parent: parent, sets: make([]set, nSets), setMask: mem.Addr(nSets - 1)}
	for i := range c.sets {
		c.sets[i].lines = make([]line, cfg.Assoc)
	}
	for bits := cfg.LineSize; bits > 1; bits >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access implements memsys.Port. A request spanning multiple lines pays
// one lookup per line; the completion time is that of the last line.
func (c *Cache) Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if size <= 0 {
		size = 1
	}
	done := at
	first := addr >> c.lineBits
	last := (addr + mem.Addr(size) - 1) >> c.lineBits
	t := at
	for ln := first; ln <= last; ln++ {
		d := c.accessLine(t, kind, ln)
		if d > done {
			done = d
		}
		// Consecutive lines of one request stream at the cache's
		// bandwidth, pipelined behind the first tag check.
		t = t.Add(c.cfg.Pace)
	}
	return done
}

func (c *Cache) accessLine(at vclock.Time, kind mem.AccessKind, lineAddr mem.Addr) vclock.Time {
	s := &c.sets[lineAddr&c.setMask]
	tag := lineAddr >> 0 // full line address as tag (set bits redundant but harmless)
	c.lruClock++

	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == tag {
			c.Hits++
			l.lru = c.lruClock
			if kind == mem.Write {
				l.dirty = true
			}
			return at.Add(c.cfg.HitLatency)
		}
	}

	// Miss: fetch the line from the parent (after the tag check), evict
	// the LRU victim, writing it back first if dirty.
	c.Misses++
	victim := 0
	for i := range s.lines {
		if !s.lines[i].valid {
			victim = i
			break
		}
		if s.lines[i].lru < s.lines[victim].lru {
			victim = i
		}
	}
	fetchStart := at.Add(c.cfg.HitLatency)
	v := &s.lines[victim]
	if v.valid {
		c.Evictions++
		if v.dirty {
			c.Writebacks++
			// The writeback occupies the parent but does not delay the
			// demand fetch's completion beyond the parent's own queueing.
			c.parent.Access(fetchStart, mem.Write, v.tag<<c.lineBits, c.cfg.LineSize)
		}
	}
	done := c.parent.Access(fetchStart, mem.Read, lineAddr<<c.lineBits, c.cfg.LineSize)
	*v = line{tag: tag, valid: true, dirty: kind == mem.Write, lru: c.lruClock}
	return done
}

// MissRate returns misses/(hits+misses), or 0 with no traffic.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Flush invalidates all lines, writing back dirty ones at time at; it
// returns the completion time of the last writeback.
func (c *Cache) Flush(at vclock.Time) vclock.Time {
	done := at
	for si := range c.sets {
		for li := range c.sets[si].lines {
			l := &c.sets[si].lines[li]
			if l.valid && l.dirty {
				c.Writebacks++
				if d := c.parent.Access(at, mem.Write, l.tag<<c.lineBits, c.cfg.LineSize); d > done {
					done = d
				}
			}
			l.valid = false
			l.dirty = false
		}
	}
	return done
}

// Typical level configurations used across the evaluation, loosely
// modeled on the paper's Xeon Gold 6248R host.
var (
	L1D = Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 1333 * vclock.Picosecond}   // ~4 cycles @3GHz
	L2  = Config{Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 16, HitLatency: 4666 * vclock.Picosecond}    // ~14 cycles
	LLC = Config{Name: "LLC", Size: 32 << 20, LineSize: 64, Assoc: 16, HitLatency: 16666 * vclock.Picosecond} // ~50 cycles
)
