package cachesim

import (
	"testing"
	"testing/quick"

	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

func tiny(parent memsys.Port) *Cache {
	return New(Config{
		Name: "t", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 10 * vclock.Nanosecond,
	}, parent)
}

func TestHitAfterMiss(t *testing.T) {
	c := tiny(memsys.Fixed{Latency: 100 * vclock.Nanosecond})
	d1 := c.Access(0, mem.Read, 0x1000, 8)
	if c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", c.Hits, c.Misses)
	}
	// Miss pays tag check + parent: 10ns + 100ns.
	if want := vclock.Time(110 * vclock.Nanosecond); d1 != want {
		t.Fatalf("miss latency = %v, want %v", vclock.Duration(d1), vclock.Duration(want))
	}
	d2 := c.Access(d1, mem.Read, 0x1008, 8) // same line
	if c.Hits != 1 {
		t.Fatalf("second access not a hit (hits=%d)", c.Hits)
	}
	if want := d1.Add(10 * vclock.Nanosecond); d2 != want {
		t.Fatalf("hit latency = %v, want hit latency only", d2.Sub(d1))
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(memsys.Fixed{}) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = 8 sets * 64B = 512).
	a, b, x := mem.Addr(0), mem.Addr(512), mem.Addr(1024)
	c.Access(0, mem.Read, a, 1)
	c.Access(0, mem.Read, b, 1)
	c.Access(0, mem.Read, a, 1) // refresh a; b is now LRU
	c.Access(0, mem.Read, x, 1) // evicts b
	c.Access(0, mem.Read, a, 1) // still a hit
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	before := c.Misses
	c.Access(0, mem.Read, b, 1) // must miss again
	if c.Misses != before+1 {
		t.Fatal("evicted line still hit")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	counter := &memsys.Counter{Inner: memsys.Fixed{}}
	c := tiny(counter)
	a, b, x := mem.Addr(0), mem.Addr(512), mem.Addr(1024)
	c.Access(0, mem.Write, a, 8) // dirty
	c.Access(0, mem.Read, b, 8)
	c.Access(0, mem.Read, x, 8) // evicts a (LRU), which is dirty
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	if counter.Writes != 1 {
		t.Fatalf("parent saw %d writes, want 1 writeback", counter.Writes)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	counter := &memsys.Counter{Inner: memsys.Fixed{}}
	c := tiny(counter)
	c.Access(0, mem.Read, 0, 8)
	c.Access(0, mem.Read, 512, 8)
	c.Access(0, mem.Read, 1024, 8)
	if counter.Writes != 0 {
		t.Fatal("clean eviction wrote back")
	}
}

func TestMultiLineRequest(t *testing.T) {
	c := tiny(memsys.Fixed{Latency: 100 * vclock.Nanosecond})
	// 256B spans 4 lines: 4 misses.
	c.Access(0, mem.Read, 0, 256)
	if c.Misses != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses)
	}
}

func TestHierarchyStacking(t *testing.T) {
	dram := memsys.Fixed{Latency: 100 * vclock.Nanosecond}
	l2 := New(Config{Name: "L2", Size: 4096, LineSize: 64, Assoc: 4, HitLatency: 5 * vclock.Nanosecond}, dram)
	l1 := New(Config{Name: "L1", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 1 * vclock.Nanosecond}, l2)

	// Cold: L1 miss -> L2 miss -> DRAM. 1 + 5 + 100 = 106ns.
	d := l1.Access(0, mem.Read, 0x40, 8)
	if want := vclock.Time(106 * vclock.Nanosecond); d != want {
		t.Fatalf("cold access = %v, want %v", vclock.Duration(d), vclock.Duration(want))
	}
	// L1 hit: 1ns.
	d2 := l1.Access(d, mem.Read, 0x44, 4)
	if got := d2.Sub(d); got != 1*vclock.Nanosecond {
		t.Fatalf("L1 hit = %v", got)
	}

	// Evict the line from tiny L1 but not from L2: same-set lines in L1
	// (8 sets * 64 = 512 stride), different sets in L2.
	l1.Access(d2, mem.Read, 0x40+512, 8)
	l1.Access(d2, mem.Read, 0x40+1024, 8)
	l2Misses := l2.Misses
	d3 := l1.Access(d2, mem.Read, 0x40, 8) // L1 miss, L2 hit: 1+5 = 6ns
	if got := d3.Sub(d2); got != 6*vclock.Nanosecond {
		t.Fatalf("L2 hit path = %v, want 6ns", got)
	}
	if l2.Misses != l2Misses {
		t.Fatal("L2 missed on a line it should hold")
	}
}

func TestFlush(t *testing.T) {
	counter := &memsys.Counter{Inner: memsys.Fixed{}}
	c := tiny(counter)
	c.Access(0, mem.Write, 0, 8)
	c.Access(0, mem.Write, 64, 8)
	c.Access(0, mem.Read, 128, 8)
	c.Flush(1000)
	if counter.Writes != 2 {
		t.Fatalf("flush wrote %d lines, want 2 dirty", counter.Writes)
	}
	before := c.Misses
	c.Access(2000, mem.Read, 0, 8)
	if c.Misses != before+1 {
		t.Fatal("line survived flush")
	}
}

func TestMissRate(t *testing.T) {
	c := tiny(memsys.Fixed{})
	if c.MissRate() != 0 {
		t.Fatal("miss rate with no traffic")
	}
	c.Access(0, mem.Read, 0, 8)
	c.Access(0, mem.Read, 0, 8)
	c.Access(0, mem.Read, 0, 8)
	c.Access(0, mem.Read, 0, 8)
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v, want 0.25", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 1024, LineSize: 60, Assoc: 2}, // line not power of two
		{Size: 1024, LineSize: 64, Assoc: 0}, // zero assoc
		{Size: 192, LineSize: 64, Assoc: 1},  // 3 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg, memsys.Fixed{})
		}()
	}
}

// Property: completion time never precedes issue time, and a repeated
// access to the same address is never slower than the first.
func TestLatencyProperties(t *testing.T) {
	f := func(addr uint32, sz uint8) bool {
		c := tiny(memsys.Fixed{Latency: 77 * vclock.Nanosecond})
		a := mem.Addr(addr)
		size := int(sz%128) + 1
		d1 := c.Access(0, mem.Read, a, size)
		if d1 < 0 {
			return false
		}
		d2 := c.Access(d1, mem.Read, a, size)
		return d2.Sub(d1) <= d1.Sub(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
