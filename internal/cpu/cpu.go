// Package cpu implements a gem5-style cycle-level CPU timing model.
//
// Compute segments (isa.Work) are expanded into synthetic instruction
// streams and simulated instruction by instruction: every instruction is
// issued through a superscalar front end, renamed onto a register
// scoreboard that tracks true dependencies, memory operations probe a
// real set-associative L1/L2 tag hierarchy, and branches run through a
// predictor. This is deliberately expensive — host cost is
// O(instructions) with per-instruction bookkeeping, four-plus orders of
// magnitude above NEX's native-time accounting — and its timing model
// systematically deviates from true native time the way gem5's does
// (configured "using publicly available information", §6.1, yet still
// 13% off on average, §6.5).
package cpu

import (
	"nexsim/internal/cachesim"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

// Config describes the modeled core.
type Config struct {
	Name  string
	Clock vclock.Hz

	// IssueWidth is the superscalar width (default 4).
	IssueWidth int

	// Latencies in cycles.
	ALULat, MulDivLat, L1Lat int64

	// LLCCycles / DRAMCycles are the probabilistic backing latencies
	// behind the modeled L2 (defaults 50 / 220).
	LLCCycles, DRAMCycles int64

	// LLCBytes bounds probabilistic LLC residency (default 32MB).
	LLCBytes int64

	// MispredictPenalty in cycles (default 16); PredictAccuracy is the
	// branch predictor hit rate (default 0.94).
	MispredictPenalty int64
	PredictAccuracy   float64

	// MLP divides miss penalties beyond L1 to model overlapped misses
	// (default 3).
	MLP float64
}

func (c Config) withDefaults() Config {
	if c.Clock == 0 {
		c.Clock = 3 * vclock.GHz
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.ALULat == 0 {
		c.ALULat = 1
	}
	if c.MulDivLat == 0 {
		c.MulDivLat = 4
	}
	if c.L1Lat == 0 {
		c.L1Lat = 4
	}
	if c.LLCCycles == 0 {
		c.LLCCycles = 50
	}
	if c.DRAMCycles == 0 {
		c.DRAMCycles = 220
	}
	if c.LLCBytes == 0 {
		c.LLCBytes = 32 << 20
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 16
	}
	if c.PredictAccuracy == 0 {
		c.PredictAccuracy = 0.94
	}
	if c.MLP == 0 {
		c.MLP = 3
	}
	return c
}

// fp is the fixed-point resolution of the cycle accumulators (1/8 cycle).
const fp = 8

// backing is the probabilistic memory level behind the modeled L2: an
// L2 miss hits the LLC with a probability derived from the working-set
// size, else DRAM. It implements memsys.Port under the tag-array caches.
type backing struct {
	llcHitP uint64 // out of 1<<16
	x       uint64 // dice state
	llcDur  vclock.Duration
	dramDur vclock.Duration
}

func (b *backing) Access(at vclock.Time, _ mem.AccessKind, _ mem.Addr, _ int) vclock.Time {
	b.x ^= b.x << 13
	b.x ^= b.x >> 7
	b.x ^= b.x << 17
	if b.x&0xffff < b.llcHitP {
		return at.Add(b.llcDur)
	}
	return at.Add(b.dramDur)
}

var _ memsys.Port = (*backing)(nil)

// Model is one simulated core's timing model. It satisfies the
// exacthost.ComputeModel interface.
type Model struct {
	cfg Config

	l1, l2 *cachesim.Cache
	back   *backing

	// Scoreboard: ready time per renamed register, in fp cycles. The
	// pool of 64 names models renaming: most sources were produced long
	// enough ago to be ready, so only genuinely tight dependency chains
	// serialize.
	regReady [64]int64

	// Stats.
	Instructions int64
	Cycles       int64
	Mispredicts  int64
}

// New builds a model.
func New(cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{cfg: cfg}
	m.back = &backing{
		x:       0x1234567,
		llcDur:  cfg.Clock.CyclesDur(int64(float64(cfg.LLCCycles) / cfg.MLP)),
		dramDur: cfg.Clock.CyclesDur(int64(float64(cfg.DRAMCycles) / cfg.MLP)),
	}
	m.l2 = cachesim.New(cachesim.Config{
		Name: "cpu-l2", Size: 1 << 20, LineSize: 64, Assoc: 16,
		HitLatency: cfg.Clock.CyclesDur(14 / int64(cfg.MLP)),
	}, m.back)
	m.l1 = cachesim.New(cachesim.Config{
		Name: "cpu-l1d", Size: 32 << 10, LineSize: 64, Assoc: 8,
		HitLatency: cfg.Clock.CyclesDur(1),
	}, m.l2)
	return m
}

// Clock returns the modeled core frequency.
func (m *Model) Clock() vclock.Hz { return m.cfg.Clock }

// L1 exposes the modeled L1 data cache (for tests and stats).
func (m *Model) L1() *cachesim.Cache { return m.l1 }

// Duration simulates the instruction stream of w and returns its modeled
// execution time. This call burns host CPU proportional to w.Instr.
func (m *Model) Duration(w isa.Work) vclock.Duration {
	if w.Instr <= 0 {
		return 0
	}
	cfg := m.cfg

	const diceMax = 1 << 16
	loadT := uint64(w.Mix.Load * diceMax)
	storeT := loadT + uint64(w.Mix.Store*diceMax)
	branchT := storeT + uint64(w.Mix.Branch*diceMax)
	muldivT := branchT + uint64(w.Mix.MulDiv*diceMax)
	predT := uint64(cfg.PredictAccuracy * diceMax)

	ws := w.WorkingSet
	if ws < 64 {
		ws = 64
	}
	wsLines := uint64(ws / 64)
	if wsLines == 0 {
		wsLines = 1
	}
	// Locality: most accesses hit a hot subset that fits in L1.
	hotLines := wsLines / 16
	if hotLines > 256 {
		hotLines = 256
	}
	if hotLines == 0 {
		hotLines = 1
	}
	const hotFrac = 60293 // 92%

	// LLC residency behind the L2 tag model.
	llcHit := 0.98
	if ws > cfg.LLCBytes {
		llcHit = 0.98 * float64(cfg.LLCBytes) / float64(ws)
	}
	m.back.llcHitP = uint64(llcHit * diceMax)

	issueCost := int64(fp / cfg.IssueWidth)
	aluLat := cfg.ALULat * fp
	mulLat := cfg.MulDivLat * fp
	minMemLat := cfg.L1Lat * fp
	mispredFP := cfg.MispredictPenalty * fp
	period := float64(cfg.Clock.Period())

	// The tag arrays and the probabilistic backing never *read* the
	// access timestamp — state evolution (LRU order, tags, dice) depends
	// only on the access sequence, and the returned completion is the
	// timestamp plus a chain of constant per-level durations. Memory
	// accesses therefore issue at time 0 and the return value IS the
	// latency, dropping the float64 time round-trip per access. The
	// handful of distinct latency values a hierarchy can produce (L1
	// hit, L2 hit, LLC, DRAM, ± writeback pacing) are memoized, so the
	// remaining division runs once per distinct value instead of once
	// per access. Both rewrites are cycle-exact: Time is integer
	// picoseconds, so comp.Sub(at) == comp(0), and the memo stores the
	// identical int64(float64(d)/period*fp) result it replaces.
	var latMemo [8]struct {
		d   vclock.Duration
		lat int64
	}
	memoN := 0

	// Front-end position and retirement horizon, in fp cycles. The
	// scoreboard is per-segment: each Duration call simulates an
	// independent stretch of code.
	m.regReady = [64]int64{}
	front := int64(0)
	maxRetire := int64(0)
	x := w.Seed | 1

	for i := int64(0); i < w.Instr; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dice := x & (diceMax - 1)

		// Two source registers and a destination, pseudo-random over the
		// rename pool.
		srcA := (x >> 17) & 63
		srcB := (x >> 23) & 63
		dst := (x >> 29) & 63

		issue := front
		if r := m.regReady[srcA]; r > issue {
			issue = r
		}
		if r := m.regReady[srcB]; r > issue {
			issue = r
		}

		var done int64
		switch {
		case dice < storeT: // load or store
			var line uint64
			if (x>>40)&(diceMax-1) < hotFrac {
				line = (x >> 17) % hotLines
			} else {
				line = (x >> 17) % wsLines
			}
			kind := mem.Read
			if dice >= loadT {
				kind = mem.Write
			}
			d := vclock.Duration(m.l1.AccessOne(0, kind, mem.Addr(line*64)))
			lat := int64(-1)
			for j := 0; j < memoN; j++ {
				if latMemo[j].d == d {
					lat = latMemo[j].lat
					break
				}
			}
			if lat < 0 {
				lat = int64(float64(d) / period * fp)
				if memoN < len(latMemo) {
					latMemo[memoN].d, latMemo[memoN].lat = d, lat
					memoN++
				}
			}
			if lat < minMemLat {
				lat = minMemLat
			}
			done = issue + lat
		case dice < branchT:
			done = issue + aluLat
			if (x>>24)&(diceMax-1) >= predT {
				m.Mispredicts++
				front = issue + mispredFP
			}
		case dice < muldivT:
			done = issue + mulLat
		default:
			done = issue + aluLat
		}

		m.regReady[dst] = done
		if done > maxRetire {
			maxRetire = done
		}
		// Program-order front end: one issue slot consumed.
		if issue+issueCost > front {
			front = issue + issueCost
		} else {
			front += issueCost
		}
	}

	total := maxRetire
	if front > total {
		total = front
	}
	cycles := total / fp
	m.Instructions += w.Instr
	m.Cycles += cycles
	return cfg.Clock.CyclesDur(cycles)
}

// IPC reports the cumulative modeled instructions per cycle.
func (m *Model) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// L1Misses reports the modeled L1 miss count.
func (m *Model) L1Misses() int64 { return m.l1.Misses }
