package cpu

import (
	"testing"

	"nexsim/internal/isa"
	"nexsim/internal/vclock"
)

func work(n int64, mix isa.Mix, ws int64) isa.Work {
	return isa.Work{Instr: n, Mix: mix, WorkingSet: ws, IPCNative: 1.5, Seed: 12345}
}

func TestDurationScalesWithInstructions(t *testing.T) {
	m := New(Config{})
	d1 := m.Duration(work(100_000, isa.DefaultMix, 32<<10))
	m2 := New(Config{})
	d2 := m2.Duration(work(200_000, isa.DefaultMix, 32<<10))
	ratio := float64(d2) / float64(d1)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2x instructions -> %.2fx time, want ~2x", ratio)
	}
}

func TestLargerWorkingSetIsSlower(t *testing.T) {
	small := New(Config{}).Duration(work(200_000, isa.DefaultMix, 16<<10))
	large := New(Config{}).Duration(work(200_000, isa.DefaultMix, 64<<20))
	if large <= small {
		t.Fatalf("64MB working set (%v) not slower than 16KB (%v)", large, small)
	}
	if float64(large)/float64(small) < 1.3 {
		t.Fatalf("cache pressure too weak: %v vs %v", large, small)
	}
}

func TestMemHeavyMixIsSlower(t *testing.T) {
	compute := New(Config{}).Duration(work(200_000, isa.ComputeMix, 8<<20))
	memory := New(Config{}).Duration(work(200_000, isa.MemHeavyMix, 8<<20))
	if memory <= compute {
		t.Fatalf("memory-heavy mix (%v) not slower than compute mix (%v)", memory, compute)
	}
}

func TestDeterministic(t *testing.T) {
	a := New(Config{}).Duration(work(50_000, isa.DefaultMix, 1<<20))
	b := New(Config{}).Duration(work(50_000, isa.DefaultMix, 1<<20))
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestIPCInPlausibleRange(t *testing.T) {
	m := New(Config{})
	m.Duration(work(500_000, isa.DefaultMix, 256<<10))
	ipc := m.IPC()
	if ipc < 0.4 || ipc > 4 {
		t.Fatalf("modeled IPC = %.2f implausible", ipc)
	}
}

func TestModeledTimeDiffersFromNative(t *testing.T) {
	// The whole point: the CPU model's timing is close to but not equal
	// to the declared native duration — gem5's systematic error (§6.5).
	w := work(1_000_000, isa.DefaultMix, 2<<20)
	native := w.NativeDuration(3 * vclock.GHz)
	modeled := New(Config{}).Duration(w)
	ratio := float64(modeled) / float64(native)
	if ratio == 1 {
		t.Fatal("model exactly matches native (suspicious)")
	}
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("model/native ratio %.2f outside plausible band", ratio)
	}
}

func TestZeroWork(t *testing.T) {
	if d := New(Config{}).Duration(isa.Work{}); d != 0 {
		t.Fatalf("zero work -> %v", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := New(Config{})
	m.Duration(work(100_000, isa.DefaultMix, 4<<20))
	if m.Instructions != 100_000 {
		t.Fatalf("Instructions = %d", m.Instructions)
	}
	if m.L1Misses() == 0 || m.Mispredicts == 0 {
		t.Fatalf("no misses/mispredicts recorded: %d/%d", m.L1Misses(), m.Mispredicts)
	}
}

func BenchmarkDuration1M(b *testing.B) {
	m := New(Config{})
	w := work(1_000_000, isa.DefaultMix, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Duration(w)
	}
}
