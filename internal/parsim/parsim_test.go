package parsim

import (
	"sync/atomic"
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// fakeDev records the Advance targets it saw and can panic on demand.
type fakeDev struct {
	name     string
	targets  []vclock.Time
	now      vclock.Time
	panicAt  vclock.Time // panic when advanced past this (0 = never)
	panicVal any
	steps    atomic.Int64
	mayIRQ   bool
}

func (d *fakeDev) Name() string                                    { return d.name }
func (d *fakeDev) RegRead(at vclock.Time, off mem.Addr) uint32     { return 0 }
func (d *fakeDev) RegWrite(at vclock.Time, off mem.Addr, v uint32) {}
func (d *fakeDev) NextEvent() (vclock.Time, bool)                  { return vclock.Never, false }
func (d *fakeDev) Stats() accel.DeviceStats                        { return accel.DeviceStats{} }
func (d *fakeDev) MayRaiseIRQ() bool                               { return d.mayIRQ }

func (d *fakeDev) Advance(t vclock.Time) {
	if t < d.now {
		return
	}
	d.now = t
	d.targets = append(d.targets, t)
	d.steps.Add(1)
	if d.panicAt > 0 && t >= d.panicAt {
		panic(d.panicVal)
	}
}

func TestGrantJoinMonotonic(t *testing.T) {
	devs := []accel.Device{&fakeDev{name: "d0"}, &fakeDev{name: "d1"}}
	c := New(devs, 2)
	defer c.Shutdown()
	for i := 1; i <= 100; i++ {
		tm := vclock.Time(i) * 10
		c.Grant(0, tm)
		c.Grant(1, tm)
	}
	c.JoinAll()
	for _, d := range devs {
		fd := d.(*fakeDev)
		if fd.now != 1000 {
			t.Fatalf("%s reached %v, want 1000", fd.name, fd.now)
		}
		last := vclock.Time(0)
		for _, tt := range fd.targets {
			if tt < last {
				t.Fatalf("%s saw non-monotonic target %v after %v", fd.name, tt, last)
			}
			last = tt
		}
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	devs := []accel.Device{
		&fakeDev{name: "d0"}, &fakeDev{name: "d1"},
		&fakeDev{name: "d2"}, &fakeDev{name: "d3"},
	}
	c := New(devs, 2)
	defer c.Shutdown()
	if c.Lanes() != 2 {
		t.Fatalf("lanes = %d, want 2", c.Lanes())
	}
	// d0,d2 share a lane; d1,d3 share the other.
	if c.byDev[0] != c.byDev[2] || c.byDev[1] != c.byDev[3] || c.byDev[0] == c.byDev[1] {
		t.Fatal("round-robin lane assignment broken")
	}
	// Granting device 0 advances every device on its lane (the lane's
	// horizon is shared).
	c.Grant(0, 50)
	c.Join(0)
	if devs[2].(*fakeDev).now != 50 {
		t.Fatalf("lane-mate not advanced: %v", devs[2].(*fakeDev).now)
	}
	if devs[1].(*fakeDev).now != 0 {
		t.Fatalf("other lane advanced: %v", devs[1].(*fakeDev).now)
	}
}

func TestLanesClamped(t *testing.T) {
	devs := []accel.Device{&fakeDev{name: "d0"}}
	c := New(devs, 8)
	defer c.Shutdown()
	if c.Lanes() != 1 {
		t.Fatalf("lanes = %d, want 1", c.Lanes())
	}
	if New(nil, 4) != nil {
		t.Fatal("crew over zero devices should be nil")
	}
}

func TestFaultReraisedAtJoin(t *testing.T) {
	boom := &struct{ msg string }{"injected"}
	d := &fakeDev{name: "d0", panicAt: 100, panicVal: boom}
	c := New([]accel.Device{d}, 1)
	defer c.Shutdown()
	c.Grant(0, 200)
	defer func() {
		r := recover()
		if r != boom {
			t.Fatalf("join re-raised %v, want the stepper's panic value", r)
		}
		// After the fault is consumed the crew still shuts down cleanly.
		c.Grant(0, 300)
		c.Shutdown()
	}()
	c.Join(0)
	t.Fatal("join did not re-panic")
}

func TestMayRaiseIRQUnwrapsAndDefaults(t *testing.T) {
	quiet := &fakeDev{name: "q", mayIRQ: false}
	loud := &fakeDev{name: "l", mayIRQ: true}
	if MayRaiseIRQ(quiet) {
		t.Fatal("quiet device reported IRQ-capable")
	}
	if !MayRaiseIRQ(loud) {
		t.Fatal("loud device reported quiet")
	}
	if !MayRaiseIRQ(bareDevice{}) {
		t.Fatal("unknown device must default to IRQ-capable (serial schedule)")
	}
	if MayRaiseIRQ(wrapped{quiet}) {
		t.Fatal("unwrap chain not followed")
	}
}

type bareDevice struct{}

func (bareDevice) Name() string                                    { return "bare" }
func (bareDevice) RegRead(at vclock.Time, off mem.Addr) uint32     { return 0 }
func (bareDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {}
func (bareDevice) Advance(t vclock.Time)                           {}
func (bareDevice) NextEvent() (vclock.Time, bool)                  { return vclock.Never, false }
func (bareDevice) Stats() accel.DeviceStats                        { return accel.DeviceStats{} }

type wrapped struct{ inner accel.Device }

func (w wrapped) Name() string                                    { return "w" }
func (w wrapped) RegRead(at vclock.Time, off mem.Addr) uint32     { return 0 }
func (w wrapped) RegWrite(at vclock.Time, off mem.Addr, v uint32) {}
func (w wrapped) Advance(t vclock.Time)                           {}
func (w wrapped) NextEvent() (vclock.Time, bool)                  { return vclock.Never, false }
func (w wrapped) Stats() accel.DeviceStats                        { return accel.DeviceStats{} }
func (w wrapped) Unwrap() accel.Device                            { return w.inner }

// TestConcurrentGrantsRandomized stresses grant/join interleavings
// under -race: random horizon bumps, random joins, with the invariant
// that after every join the device has reached the latest grant.
func TestConcurrentGrantsRandomized(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := xrand.New(0x9e77 + uint64(trial))
		devs := make([]accel.Device, 3)
		for i := range devs {
			devs[i] = &fakeDev{name: "d"}
		}
		c := New(devs, 1+trial%3)
		horizon := make([]vclock.Time, len(devs))
		for step := 0; step < 500; step++ {
			i := rng.Intn(len(devs))
			switch rng.Intn(3) {
			case 0, 1:
				horizon[i] += vclock.Time(1 + rng.Intn(50))
				c.Grant(i, horizon[i])
			case 2:
				c.Join(i)
				// Lane-mates share a horizon, so the device may be ahead
				// of its own grant — never behind it.
				if got := devs[i].(*fakeDev).now; got < horizon[i] {
					t.Fatalf("after join, device %d at %v, want >= %v", i, got, horizon[i])
				}
			}
		}
		c.JoinAll()
		c.Shutdown()
		c.Shutdown() // idempotent
	}
}
