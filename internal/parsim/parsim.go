// Package parsim runs accelerator engines on their own goroutines under
// conservative lookahead (core.Config.IntraParallel, DESIGN.md §10).
//
// The host engine grants each device a horizon — the earliest virtual
// time at which the host could next interact with it — and the device's
// stepper goroutine advances toward that horizon while the host keeps
// simulating. The host joins (waits for the stepper to reach its grant)
// before every observation of device state: an MMIO access, a NextEvent
// query, a checkpoint snapshot, or run teardown. Because a device's
// timing state is private in this codebase (each DMA port owns its LLC
// slice and DRAM channel — see core.Build) and devices in polling mode
// cannot raise interrupts, nothing the stepper does between grant and
// join is observable by the host, so the interleaving of host and
// device work cannot affect simulated state: every table, trace and
// checkpoint is byte-identical to the serial schedule. Devices whose
// driver has enabled interrupts report MayRaiseIRQ()==true and are
// advanced inline on the host goroutine instead (the serial schedule),
// which preserves byte-identity trivially.
//
// Grants compose: Advance(t1); Advance(t2 >= t1) is by the accel.Device
// contract equivalent to Advance(t2), so the host may coarsen or split
// horizons freely — parallel mode grants the same non-decreasing
// per-device target sequence the serial loop would, just from another
// goroutine.
package parsim

import (
	"sync"
	"sync/atomic"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/vclock"
)

// IRQCapable is the optional device predicate consulted before an
// asynchronous grant: a device that may raise an interrupt before the
// horizon must be advanced inline so delivery happens at the serial
// point. Devices that do not implement it are conservatively treated as
// capable.
type IRQCapable interface {
	MayRaiseIRQ() bool
}

// MayRaiseIRQ reports whether dev could raise an interrupt during an
// advance, unwrapping adapters. Unknown devices report true (inline
// advance, serial schedule).
func MayRaiseIRQ(dev accel.Device) bool {
	for {
		if c, ok := dev.(IRQCapable); ok {
			return c.MayRaiseIRQ()
		}
		u, ok := dev.(interface{ Unwrap() accel.Device })
		if !ok {
			return true
		}
		dev = u.Unwrap()
	}
}

// lane is one stepper goroutine driving a fixed subset of devices in
// device-index order.
type lane struct {
	devs []accel.Device

	mu      sync.Mutex
	cond    *sync.Cond
	granted vclock.Time // last horizon requested
	reached vclock.Time // horizon fully processed
	fault   any         // recovered stepper panic, re-raised at Join
	closed  bool

	busy atomic.Int64 // wall nanoseconds spent inside Advance
}

// Crew owns the stepper goroutines for one engine run.
type Crew struct {
	lanes  []*lane
	byDev  []*lane // device index -> lane
	closed bool
}

// New builds a crew of `lanes` stepper goroutines over the devices,
// assigned round-robin in device-index order. lanes is clamped to
// [1, len(devs)]. A nil return means no parallelism (no devices).
func New(devs []accel.Device, lanes int) *Crew {
	if len(devs) == 0 {
		return nil
	}
	if lanes < 1 {
		lanes = 1
	}
	if lanes > len(devs) {
		lanes = len(devs)
	}
	c := &Crew{byDev: make([]*lane, len(devs))}
	for i := 0; i < lanes; i++ {
		l := &lane{}
		l.cond = sync.NewCond(&l.mu)
		c.lanes = append(c.lanes, l)
	}
	for i, d := range devs {
		l := c.lanes[i%lanes]
		l.devs = append(l.devs, d)
		c.byDev[i] = l
	}
	for _, l := range c.lanes {
		go l.run() //simlint:allow stray-goroutine structured stepper, joined via Crew.Join/Shutdown
	}
	return c
}

// Lanes reports the number of stepper goroutines (the effective intra
// worker count recorded in Result.Intra alongside the host goroutine).
func (c *Crew) Lanes() int { return len(c.lanes) }

// run is the stepper goroutine body: wait for a new horizon, advance
// every device on the lane to it, publish completion.
func (l *lane) run() {
	for {
		l.mu.Lock()
		for l.granted == l.reached && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		t := l.granted
		dead := l.fault != nil
		l.mu.Unlock()

		var fault any
		if !dead {
			// A faulted lane's devices may hold arbitrary mid-panic
			// state; stop stepping them and only acknowledge grants
			// until the host observes the fault at a join.
			fault = l.advance(t)
		}

		l.mu.Lock()
		l.reached = t
		if fault != nil && l.fault == nil {
			l.fault = fault
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// advance catches every device on the lane up to t, converting a panic
// (e.g. an injected channel fault) into a stored fault for the host to
// re-raise at the join point.
func (l *lane) advance(t vclock.Time) (fault any) {
	defer func() {
		if r := recover(); r != nil {
			fault = r
		}
	}()
	start := time.Now() //simlint:allow nondet-time wall attribution only, never simulation state
	for _, d := range l.devs {
		d.Advance(t)
	}
	l.busy.Add(time.Since(start).Nanoseconds()) //simlint:allow nondet-time wall attribution only
	return nil
}

// Grant extends device i's horizon to t (no-op if t is not beyond the
// current grant). The stepper picks it up asynchronously.
func (c *Crew) Grant(i int, t vclock.Time) {
	l := c.byDev[i]
	l.mu.Lock()
	if t > l.granted {
		l.granted = t
		l.cond.Signal()
	}
	l.mu.Unlock()
}

// Join blocks until device i's lane has processed every grant, then
// re-raises any panic the stepper recovered (on the host goroutine,
// where the run's fault boundary expects it).
func (c *Crew) Join(i int) {
	c.byDev[i].join()
}

// JoinAll joins every lane.
func (c *Crew) JoinAll() {
	for _, l := range c.lanes {
		l.join()
	}
}

func (l *lane) join() {
	l.mu.Lock()
	for l.reached < l.granted && l.fault == nil {
		l.cond.Wait()
	}
	f := l.fault
	l.fault = nil
	if f != nil {
		// The lane is dead to further grants this run; mark it caught up
		// so Shutdown and later joins do not hang.
		l.reached = l.granted
	}
	l.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// DeviceWall reports cumulative wall time the steppers spent advancing
// devices.
func (c *Crew) DeviceWall() time.Duration {
	var n int64
	for _, l := range c.lanes {
		n += l.busy.Load()
	}
	return time.Duration(n)
}

// Shutdown joins and terminates the stepper goroutines. Any pending
// stepper fault is swallowed (Shutdown runs on teardown paths that have
// already decided the run's outcome). The crew must not be used
// afterwards.
func (c *Crew) Shutdown() {
	if c == nil || c.closed {
		return
	}
	c.closed = true
	for _, l := range c.lanes {
		l.mu.Lock()
		for l.reached < l.granted && l.fault == nil {
			l.cond.Wait()
		}
		l.closed = true
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}
