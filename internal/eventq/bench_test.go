package eventq

import (
	"testing"

	"nexsim/internal/vclock"
)

// BenchmarkPushPop measures the schedule+dispatch cycle that every
// engine's inner loop pays per event.
func BenchmarkPushPop(b *testing.B) {
	var q Queue
	for i := 0; i < b.N; i++ {
		q.At(q.Now()+vclock.Time(i%64), func(vclock.Time) {})
		if i%64 == 63 {
			for q.Step() {
			}
		}
	}
}

// BenchmarkLen measures Len with many pending events — O(1) since the
// live-count field; previously an O(n) scan of the heap.
func BenchmarkLen(b *testing.B) {
	var q Queue
	for i := 0; i < 4096; i++ {
		q.At(vclock.Time(i), func(vclock.Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q.Len() != 4096 {
			b.Fatal("wrong length")
		}
	}
}

// BenchmarkCancel measures schedule+cancel churn (timeout-style usage).
func BenchmarkCancel(b *testing.B) {
	var q Queue
	for i := 0; i < b.N; i++ {
		h := q.After(vclock.Duration(100), func(vclock.Time) {})
		h.Cancel()
		if i%1024 == 1023 {
			q.dropCancelled()
		}
	}
}
