package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nexsim/internal/vclock"
)

func TestFIFOAtSameTime(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(100, func(vclock.Time) { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	var fired []vclock.Time
	times := []vclock.Time{50, 10, 30, 10, 90, 0}
	for _, at := range times {
		at := at
		q.At(at, func(now vclock.Time) {
			if now != at {
				t.Errorf("fired at %v, scheduled for %v", now, at)
			}
			fired = append(fired, now)
		})
	}
	q.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.At(10, func(vclock.Time) { fired = true })
	if !h.Pending() {
		t.Fatal("handle not pending after scheduling")
	}
	h.Cancel()
	q.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after run", q.Len())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	var q Queue
	q.At(100, func(vclock.Time) {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.At(50, func(vclock.Time) {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var fired []vclock.Time
	for _, at := range []vclock.Time{10, 20, 30, 40} {
		at := at
		q.At(at, func(now vclock.Time) { fired = append(fired, now) })
	}
	q.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	if q.Now() != 25 {
		t.Fatalf("Now = %v, want 25", q.Now())
	}
	q.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4", fired)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var q Queue
	count := 0
	var step func(now vclock.Time)
	step = func(now vclock.Time) {
		count++
		if count < 5 {
			q.After(10, step)
		}
	}
	q.At(0, step)
	q.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if q.Now() != 40 {
		t.Fatalf("Now = %v, want 40", q.Now())
	}
}

func TestAdvanceTo(t *testing.T) {
	var q Queue
	q.AdvanceTo(500)
	if q.Now() != 500 {
		t.Fatalf("Now = %v", q.Now())
	}
	q.At(600, func(vclock.Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic advancing past pending event")
		}
	}()
	q.AdvanceTo(700)
}

func TestNextTime(t *testing.T) {
	var q Queue
	if _, ok := q.NextTime(); ok {
		t.Fatal("NextTime reported event on empty queue")
	}
	h := q.At(42, func(vclock.Time) {})
	if at, ok := q.NextTime(); !ok || at != 42 {
		t.Fatalf("NextTime = %v,%v", at, ok)
	}
	h.Cancel()
	if _, ok := q.NextTime(); ok {
		t.Fatal("NextTime reported cancelled event")
	}
}

// Property: dispatch order is a stable sort of (time, insertion order).
func TestDispatchOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		type rec struct {
			at  vclock.Time
			seq int
		}
		var scheduled, fired []rec
		for i := 0; i < int(n); i++ {
			at := vclock.Time(r.Intn(16))
			scheduled = append(scheduled, rec{at, i})
			i := i
			q.At(at, func(now vclock.Time) { fired = append(fired, rec{now, i}) })
		}
		sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].at < scheduled[j].at })
		q.Run()
		if len(fired) != len(scheduled) {
			return false
		}
		for i := range fired {
			if fired[i] != scheduled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
