package eventq

import (
	"fmt"
	"sort"

	"nexsim/internal/checkpoint"
	"nexsim/internal/vclock"
)

// Checkpointing: a queue's dynamic state is its clock, its sequence
// counter, and the (time, sequence) stamps of the pending events in
// dispatch order. The callbacks themselves are code, not data — the
// restoring engine re-supplies them through a rebind function keyed by
// dispatch position, the same way it registered them originally.
// Cancelled events are dropped from the snapshot (they are already
// unobservable), so two queues with equal pending sets encode
// identically regardless of cancellation history.

// SnapshotTo serializes the queue's dynamic state.
func (q *Queue) SnapshotTo(enc *checkpoint.Encoder) {
	enc.I64(int64(q.now))
	enc.U64(q.seq)
	pending := make([]*item, 0, q.live)
	for _, it := range q.h {
		if !it.cancel {
			pending = append(pending, it)
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].at != pending[j].at {
			return pending[i].at < pending[j].at
		}
		return pending[i].seq < pending[j].seq
	})
	enc.Int(len(pending))
	for _, it := range pending {
		enc.I64(int64(it.at))
		enc.U64(it.seq)
	}
}

// RestoreFrom rebuilds a snapshotted queue into an empty one. rebind is
// called once per pending event, in dispatch order, and must return the
// callback for the i-th event (stamped at/seq); the restored queue then
// dispatches identically to the snapshotted one.
func (q *Queue) RestoreFrom(dec *checkpoint.Decoder, rebind func(i int, at vclock.Time, seq uint64) Event) error {
	if len(q.h) != 0 || q.live != 0 {
		return fmt.Errorf("eventq: restore into a non-empty queue")
	}
	now := vclock.Time(dec.I64())
	seq := dec.U64()
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n < 0 || uint64(n) > seq {
		return fmt.Errorf("%w: %d pending events with seq %d", checkpoint.ErrCorrupt, n, seq)
	}
	items := make([]*item, n)
	var prevAt vclock.Time
	var prevSeq uint64
	for i := range items {
		at := vclock.Time(dec.I64())
		s := dec.U64()
		if dec.Err() != nil {
			return dec.Err()
		}
		if at < now {
			return fmt.Errorf("%w: pending event at %v before queue time %v", checkpoint.ErrCorrupt, at, now)
		}
		if i > 0 && (at < prevAt || (at == prevAt && s <= prevSeq)) {
			return fmt.Errorf("%w: pending events out of dispatch order", checkpoint.ErrCorrupt)
		}
		prevAt, prevSeq = at, s
		fn := rebind(i, at, s)
		if fn == nil {
			return fmt.Errorf("eventq: rebind returned no callback for event %d", i)
		}
		items[i] = &item{q: q, at: at, seq: s, fn: fn, index: i}
	}
	// The items arrive sorted by the heap's less ordering, and a sorted
	// array is a valid min-heap; no re-heapify needed.
	q.h = items
	q.now = now
	q.seq = seq
	q.live = n
	return nil
}
