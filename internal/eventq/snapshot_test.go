package eventq

import (
	"bytes"
	"fmt"
	"testing"

	"nexsim/internal/checkpoint"
	"nexsim/internal/vclock"
)

// TestSnapshotRestoreDifferential: run a queue halfway, snapshot, rebind
// into a fresh queue, and run both to completion — the dispatch logs
// must be identical.
func TestSnapshotRestoreDifferential(t *testing.T) {
	type stamp struct {
		at  vclock.Time
		seq uint64
	}
	mkLogger := func(log *[]string, tag int) Event {
		return func(now vclock.Time) {
			*log = append(*log, fmt.Sprintf("%d@%d", tag, now))
		}
	}

	var logA []string
	var qA Queue
	tags := map[stamp]int{}
	record := func(h Handle, tag int) {
		tags[stamp{h.item.at, h.item.seq}] = tag
	}
	record(qA.At(10, mkLogger(&logA, 1)), 1)
	record(qA.At(5, mkLogger(&logA, 2)), 2)
	record(qA.At(10, mkLogger(&logA, 3)), 3) // same time as tag 1: FIFO order
	c := qA.At(7, mkLogger(&logA, 4))
	record(qA.At(20, mkLogger(&logA, 5)), 5)
	c.Cancel()

	qA.RunUntil(6) // dispatches tag 2 only

	enc := checkpoint.NewEncoder()
	qA.SnapshotTo(enc)

	var logB []string
	logB = append(logB, logA...)
	var qB Queue
	dec, err := checkpoint.NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	err = qB.RestoreFrom(dec, func(i int, at vclock.Time, seq uint64) Event {
		tag, ok := tags[stamp{at, seq}]
		if !ok {
			t.Fatalf("rebind asked for unknown stamp (%d,%d)", at, seq)
		}
		return mkLogger(&logB, tag)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Done() {
		t.Fatal("blob not fully consumed")
	}
	if qB.Len() != qA.Len() || qB.Now() != qA.Now() {
		t.Fatalf("restored queue shape differs: len %d/%d now %d/%d",
			qB.Len(), qA.Len(), qB.Now(), qA.Now())
	}

	// New events scheduled after restore must interleave identically.
	qA.At(15, mkLogger(&logA, 6))
	qB.At(15, mkLogger(&logB, 6))
	qA.Run()
	qB.Run()
	if fmt.Sprint(logA) != fmt.Sprint(logB) {
		t.Fatalf("dispatch logs diverged:\n A %v\n B %v", logA, logB)
	}
}

// TestSnapshotDropsCancelled: cancellation history must not leak into
// the encoding.
func TestSnapshotDropsCancelled(t *testing.T) {
	nop := func(vclock.Time) {}
	var q1 Queue
	q1.At(5, nop)
	q1.At(9, nop)

	var q2 Queue
	q2.At(5, nop)
	h := q2.At(7, nop)
	_ = q2.At(9, nop)
	h.Cancel()
	// q2's seq counter differs (3 events scheduled), so encodings can't
	// match bit-for-bit — but the pending sets must: compare sans seq by
	// restoring both and checking dispatch equivalence.
	e1, e2 := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	q1.SnapshotTo(e1)
	q2.SnapshotTo(e2)
	d2, _ := checkpoint.NewDecoder(e2.Bytes())
	var q3 Queue
	if err := q3.RestoreFrom(d2, func(int, vclock.Time, uint64) Event { return nop }); err != nil {
		t.Fatal(err)
	}
	if q3.Len() != 2 {
		t.Fatalf("restored %d events, want 2 (cancelled dropped)", q3.Len())
	}
	// Two identical schedules DO encode identically.
	var q4 Queue
	q4.At(5, nop)
	q4.At(9, nop)
	e4 := checkpoint.NewEncoder()
	q4.SnapshotTo(e4)
	if !bytes.Equal(e1.Bytes(), e4.Bytes()) {
		t.Fatal("identical schedules encoded differently")
	}
}

func TestRestoreRejectsBadBlobs(t *testing.T) {
	nop := func(vclock.Time) {}

	// Non-empty target.
	var q Queue
	q.At(1, nop)
	enc := checkpoint.NewEncoder()
	q.SnapshotTo(enc)
	dec, _ := checkpoint.NewDecoder(enc.Bytes())
	if err := q.RestoreFrom(dec, func(int, vclock.Time, uint64) Event { return nop }); err == nil {
		t.Fatal("restore into non-empty queue accepted")
	}

	// Truncated blob.
	blob := enc.Bytes()
	dec, _ = checkpoint.NewDecoder(blob[:len(blob)-4])
	var q2 Queue
	if err := q2.RestoreFrom(dec, func(int, vclock.Time, uint64) Event { return nop }); err == nil {
		t.Fatal("truncated blob accepted")
	}

	// Nil rebind result.
	dec, _ = checkpoint.NewDecoder(blob)
	var q3 Queue
	if err := q3.RestoreFrom(dec, func(int, vclock.Time, uint64) Event { return nil }); err == nil {
		t.Fatal("nil callback accepted")
	}
}
