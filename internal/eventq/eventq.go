// Package eventq implements the deterministic discrete-event queue that
// drives every simulator engine in this repository.
//
// Events scheduled for the same virtual time fire in the order they were
// scheduled (FIFO per timestamp), which — together with single-threaded
// engines — makes every simulation run bit-reproducible.
package eventq

import (
	"container/heap"

	"nexsim/internal/vclock"
)

// Event is a callback scheduled at a point in virtual time.
type Event func(now vclock.Time)

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ item *item }

type item struct {
	q      *Queue
	at     vclock.Time
	seq    uint64
	fn     Event
	index  int // heap index, -1 when removed
	cancel bool
}

// Queue is a deterministic min-heap of timed events. The zero value is
// ready to use.
type Queue struct {
	h    itemHeap
	seq  uint64
	now  vclock.Time
	live int // pending (non-cancelled) events; keeps Len O(1)
}

// Now returns the time of the most recently dispatched event.
func (q *Queue) Now() vclock.Time { return q.now }

// Len reports the number of pending (non-cancelled) events in O(1).
func (q *Queue) Len() int { return q.live }

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return q.live == 0 }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before the last dispatched event) panics: it would violate causality.
func (q *Queue) At(at vclock.Time, fn Event) Handle {
	if at < q.now {
		panic("eventq: scheduling event in the past")
	}
	q.seq++
	it := &item{q: q, at: at, seq: q.seq, fn: fn}
	heap.Push(&q.h, it)
	q.live++
	return Handle{it}
}

// After schedules fn to run d after the current time.
func (q *Queue) After(d vclock.Duration, fn Event) Handle {
	return q.At(q.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	it := h.item
	if it == nil || it.cancel || it.index < 0 {
		return
	}
	it.cancel = true
	it.q.live--
}

// Pending reports whether the event is still scheduled.
func (h Handle) Pending() bool {
	return h.item != nil && !h.item.cancel && h.item.index >= 0
}

// NextTime returns the time of the earliest pending event, or
// (vclock.Never, false) if the queue is empty.
func (q *Queue) NextTime() (vclock.Time, bool) {
	q.dropCancelled()
	if len(q.h) == 0 {
		return vclock.Never, false
	}
	return q.h[0].at, true
}

// Step dispatches the single earliest event, advancing Now to its time.
// It reports whether an event was dispatched.
//
//simlint:hotpath one call per simulation event
func (q *Queue) Step() bool {
	q.dropCancelled()
	if len(q.h) == 0 {
		return false
	}
	it := heap.Pop(&q.h).(*item)
	it.index = -1
	q.live--
	q.now = it.at
	it.fn(it.at)
	return true
}

// RunUntil dispatches events in order until the next event would be
// strictly after limit, then sets Now to limit (if limit is beyond Now).
// Events exactly at limit are dispatched.
func (q *Queue) RunUntil(limit vclock.Time) {
	for {
		next, ok := q.NextTime()
		if !ok || next > limit {
			break
		}
		q.Step()
	}
	if limit > q.now {
		q.now = limit
	}
}

// Run dispatches events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// AdvanceTo moves Now forward to t without dispatching anything. It
// panics if events earlier than t are still pending, or if t is in the
// past — both would break causality.
func (q *Queue) AdvanceTo(t vclock.Time) {
	if t < q.now {
		panic("eventq: AdvanceTo into the past")
	}
	if next, ok := q.NextTime(); ok && next < t {
		panic("eventq: AdvanceTo past pending events")
	}
	q.now = t
}

func (q *Queue) dropCancelled() {
	for len(q.h) > 0 && q.h[0].cancel {
		it := heap.Pop(&q.h).(*item)
		it.index = -1
	}
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
