package experiments

import (
	"fmt"
	"io"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/stats"
	"nexsim/internal/workloads"
)

// speedBenches are the benchmarks measured for Fig. 3 (one per workload
// family plus the multi-accelerator configurations).
var speedBenches = []string{
	"vta-resnet18", "vta-resnet34", "vta-resnet50", "vta-yolov3-tiny",
	"vta-matmul", "vta-resnet18-mp4",
	"protoacc-bench0", "protoacc-bench1", "protoacc-bench2",
	"protoacc-bench3", "protoacc-bench4", "protoacc-bench5",
	"jpeg-decode", "jpeg-mt.2", "jpeg-mt.4", "jpeg-mt.8",
}

// combos of Table 1 / Fig. 4 in paper order (slow to fast).
var combos = []struct {
	name string
	host core.HostKind
	acc  core.AccelKind
}{
	{"gem5+RTL", core.HostGem5, core.AccelRTL},
	{"gem5+DSim", core.HostGem5, core.AccelDSim},
	{"NEX+RTL", core.HostNEX, core.AccelRTL},
	{"NEX+DSim", core.HostNEX, core.AccelDSim},
}

// runWall executes the benchmark once to warm process-wide caches
// (memoized functional tracks, staged corpora), then twice measured,
// returning the run with the smaller wall time (the standard
// noise-resistant estimator; simulated time is identical across
// repetitions by determinism).
func runWall(b workloads.Bench, host core.HostKind, acc core.AccelKind, o runOpts) core.Result {
	run(b, host, acc, o) // warmup
	r1 := run(b, host, acc, o)
	r2 := run(b, host, acc, o)
	if r2.WallTime < r1.WallTime {
		return r2
	}
	return r1
}

// Fig3 measures total simulation time per benchmark for the baseline and
// NEX+DSim, reporting the speedup (the paper's headline 6x-879x result;
// our substrate compresses the range — see EXPERIMENTS.md — but the
// ordering and compute-vs-DMA shape hold).
func Fig3(w io.Writer) error {
	// Enumerate: two jobs per benchmark, baseline and NEX+DSim.
	var jobs []func() core.Result
	for _, name := range speedBenches {
		b := benchByName(name)
		jobs = append(jobs,
			func() core.Result { return runWall(b, core.HostGem5, core.AccelRTL, runOpts{}) },
			func() core.Result { return runWall(b, core.HostNEX, core.AccelDSim, runOpts{}) })
	}
	res := runJobs(jobs)

	// Render in enumeration order.
	fmt.Fprintf(w, "%-20s %12s %14s %14s %9s\n",
		"benchmark", "simulated", "gem5+RTL wall", "NEX+DSim wall", "speedup")
	var speedups []float64
	for i, name := range speedBenches {
		slow, fast := res[2*i], res[2*i+1]
		sp := float64(slow.WallTime) / float64(fast.WallTime)
		speedups = append(speedups, sp)
		fmt.Fprintf(w, "%-20s %12s %14s %14s %8.1fx\n",
			name, fmtDur(fast.SimTime), fmtWall(slow.WallTime), fmtWall(fast.WallTime), sp)
	}
	s := stats.Summarize(speedups)
	fmt.Fprintf(w, "speedup range: %.1fx - %.1fx (geo mean %.1fx)\n",
		s.Min, s.Max, stats.GeoMean(speedups))
	return nil
}

// fig4Benches is the Fig. 4/5 subset (one per family + the
// accelerator-bound matmul).
var fig4Benches = []string{
	"vta-resnet18", "vta-matmul", "vta-yolov3-tiny",
	"protoacc-bench0", "protoacc-bench5", "jpeg-decode", "jpeg-mt.4",
}

// Fig4 breaks the speedup down across the four simulator combinations.
func Fig4(w io.Writer) error {
	var jobs []func() core.Result
	for _, name := range fig4Benches {
		b := benchByName(name)
		for _, c := range combos {
			c := c
			jobs = append(jobs, func() core.Result { return runWall(b, c.host, c.acc, runOpts{}) })
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-18s", "benchmark")
	for _, c := range combos {
		fmt.Fprintf(w, " %14s", c.name)
	}
	fmt.Fprintf(w, " | speedups vs gem5+RTL\n")
	for bi, name := range fig4Benches {
		walls := make([]time.Duration, len(combos))
		for ci := range combos {
			walls[ci] = res[bi*len(combos)+ci].WallTime
		}
		fmt.Fprintf(w, "%-18s", name)
		for _, wl := range walls {
			fmt.Fprintf(w, " %14s", fmtWall(wl))
		}
		fmt.Fprintf(w, " |")
		for i := 1; i < len(combos); i++ {
			fmt.Fprintf(w, " %s=%.1fx", combos[i].name, float64(walls[0])/float64(walls[i]))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5 reports each combination's simulated-time error relative to the
// gem5+RTL baseline.
func Fig5(w io.Writer) error {
	var jobs []func() core.Result
	for _, name := range fig4Benches {
		b := benchByName(name)
		for _, c := range combos {
			c := c
			jobs = append(jobs, func() core.Result { return run(b, c.host, c.acc, runOpts{}) })
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-18s", "benchmark")
	for _, c := range combos[1:] {
		fmt.Fprintf(w, " %12s", c.name)
	}
	fmt.Fprintln(w)
	for bi, name := range fig4Benches {
		base := res[bi*len(combos)] // combos[0] is the gem5+RTL baseline
		fmt.Fprintf(w, "%-18s", name)
		for ci := 1; ci < len(combos); ci++ {
			r := res[bi*len(combos)+ci]
			fmt.Fprintf(w, " %11.1f%%", 100*stats.RelErr(r.SimTime, base.SimTime))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table1Benches: the single-accelerator JPEG and VTA applications the
// paper computes Table 1's slowdown ranges from.
var table1Benches = []string{"jpeg-decode", "vta-resnet18", "vta-matmul"}

// Table1 reports each combination's slowdown (wall time / simulated
// time) range across the single-accelerator applications. Absolute
// slowdowns differ from the paper's (its baseline is real silicon; ours
// is a discrete-event substrate), but the column ordering — each mode
// strictly faster than the one to its left — is the claim.
func Table1(w io.Writer) error {
	var jobs []func() core.Result
	for _, c := range combos {
		c := c
		for _, name := range table1Benches {
			b := benchByName(name)
			jobs = append(jobs, func() core.Result { return runWall(b, c.host, c.acc, runOpts{}) })
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-12s", "combo")
	fmt.Fprintf(w, " %22s %22s\n", "slowdown range", "wall-time range")
	for ci, c := range combos {
		minS, maxS := 1e18, 0.0
		var minW, maxW time.Duration
		for i := range table1Benches {
			r := res[ci*len(table1Benches)+i]
			s := r.Slowdown()
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
			if i == 0 || r.WallTime < minW {
				minW = r.WallTime
			}
			if r.WallTime > maxW {
				maxW = r.WallTime
			}
		}
		fmt.Fprintf(w, "%-12s %9.0fx - %9.0fx %10s - %9s\n",
			c.name, minS, maxS, fmtWall(minW), fmtWall(maxW))
	}
	return nil
}

// TightVsChan compares the tight in-process NEX+DSim integration with
// the SimBricks-channel composition (§A.2: tight is 1.6x faster on
// average, up to 1.9x on matmul). Our in-process ring's per-message cost
// is far below a real cross-process shared-memory channel's
// (poll + cacheline ping-pong, ~600ns), so the ratio is modeled from the
// measured message count with that per-message cost; the raw measured
// walls are shown for transparency.
func TightVsChan(w io.Writer) error {
	const perMsg = 600 * time.Nanosecond
	benches := []string{"vta-resnet18", "vta-matmul", "vta-yolov3-tiny", "jpeg-decode"}

	type row struct {
		tight    core.Result
		chanWall time.Duration
		msgs     int64
	}
	var jobs []func() row
	for _, name := range benches {
		b := benchByName(name)
		jobs = append(jobs, func() row {
			tight := runWall(b, core.HostNEX, core.AccelDSim, runOpts{})
			// Channel run, capturing message counts.
			cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
				Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42, UseChannel: true,
				IntraParallel: intra}
			sys := core.Build(cfg)
			start := time.Now()
			sys.Run(b.Build(&sys.Ctx))
			chanWall := time.Since(start)
			var msgs int64
			for _, ch := range sys.Channels {
				msgs += ch.Msgs
			}
			return row{tight: tight, chanWall: chanWall, msgs: msgs}
		})
	}
	rows := runJobs(jobs)

	fmt.Fprintf(w, "%-18s %12s %12s %10s %8s\n",
		"benchmark", "tight wall", "chan wall", "messages", "modeled")
	var ratios []float64
	for i, name := range benches {
		r := rows[i]
		ratio := float64(r.tight.WallTime+time.Duration(r.msgs)*perMsg) / float64(r.tight.WallTime)
		ratios = append(ratios, ratio)
		fmt.Fprintf(w, "%-18s %12s %12s %10d %7.2fx\n",
			name, fmtWall(r.tight.WallTime), fmtWall(r.chanWall), r.msgs, ratio)
	}
	fmt.Fprintf(w, "channel overhead (modeled from message counts): avg %.2fx, max %.2fx\n",
		stats.Summarize(ratios).Avg, stats.Summarize(ratios).Max)
	return nil
}
