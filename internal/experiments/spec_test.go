package experiments

import (
	"bytes"
	"testing"

	"nexsim/internal/core"
	"nexsim/internal/vclock"
)

func TestSpecNormalizedFillsDefaults(t *testing.T) {
	n, err := Spec{Bench: "jpeg-decode"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Host != "nex" || n.Accel != "dsim" || n.Cores != 16 || n.Seed != 42 {
		t.Fatalf("defaults not filled: %+v", n)
	}
	if n.SyncMode != "lazy" || n.DMATarget != "llc" {
		t.Fatalf("enum defaults not filled: %+v", n)
	}
	if n.ClockMHz != 3000 || n.AccelClockMHz != 2000 {
		t.Fatalf("clock defaults not filled: %+v", n)
	}
	if n.LinkLatencyNS != 400 {
		t.Fatalf("jpeg link latency default = %d, want 400 (PCIe)", n.LinkLatencyNS)
	}
	p, err := Spec{Bench: "protoacc-bench0"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if p.LinkLatencyNS != 4 {
		t.Fatalf("protoacc link latency default = %d, want 4 (on-chip)", p.LinkLatencyNS)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Bench: "no-such-bench"},
		{Bench: "jpeg-decode", Host: "qemu"},
		{Bench: "jpeg-decode", Accel: "verilator"},
		{Bench: "jpeg-decode", SyncMode: "sometimes"},
		{Bench: "jpeg-decode", DMATarget: "l3"},
		{Bench: "jpeg-decode", Cores: -1},
	}
	for _, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("spec %+v validated, want error", s)
		}
		if _, err := RunSpec(s); err == nil {
			t.Errorf("RunSpec accepted invalid spec %+v", s)
		}
	}
	if _, err := RunSpecs([]Spec{{Bench: "jpeg-decode"}, {Bench: "nope"}}); err == nil {
		t.Error("RunSpecs accepted a batch with an invalid spec")
	}
}

// TestSpecIDCanonical pins content addressing: explicit defaults and
// omitted fields share one address, and any semantic difference
// changes it.
func TestSpecIDCanonical(t *testing.T) {
	implicit := Spec{Bench: "npb-ep.8"}
	explicit := Spec{Bench: "npb-ep.8", Host: "nex", Accel: "dsim",
		Cores: 16, Seed: 42, SyncMode: "lazy", DMATarget: "llc",
		ClockMHz: 3000, AccelClockMHz: 2000, LinkLatencyNS: 400}
	a, err := implicit.ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("explicit-default spec hashed differently:\n %s\n %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("ID length %d, want 64 hex chars", len(a))
	}
	c, err := Spec{Bench: "npb-ep.8", Seed: 7}.ID()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed produced the same content address")
	}
	j1, _ := implicit.CanonicalJSON()
	j2, _ := explicit.CanonicalJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", j1, j2)
	}
}

// TestRunSpecDeterministic locks the property that makes
// content-addressed result caching sound: the same spec yields the
// same result, and matches the legacy run() path it replaces.
func TestRunSpecDeterministic(t *testing.T) {
	spec := Spec{Bench: "npb-cg.8", EpochNS: 1000}
	r1, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SimTime != r2.SimTime || r1.NEXStats != r2.NEXStats {
		t.Fatalf("RunSpec not deterministic: %v/%v vs %v/%v",
			r1.SimTime, r1.NEXStats, r2.SimTime, r2.NEXStats)
	}
	legacy := run(benchByName("npb-cg.8"), core.HostNEX, core.AccelDSim,
		runOpts{nexEpoch: 1000 * vclock.Nanosecond})
	if r1.SimTime != legacy.SimTime {
		t.Fatalf("RunSpec (%v) diverges from legacy run path (%v)", r1.SimTime, legacy.SimTime)
	}
}

// TestRunSpecsOrderAndParallel checks batch results stay in spec order
// at any worker count.
func TestRunSpecsOrderAndParallel(t *testing.T) {
	specs := []Spec{
		{Bench: "npb-ep.8", Host: "reference"},
		{Bench: "npb-cg.8", Host: "reference"},
		{Bench: "npb-ep.8", Host: "nex", EpochNS: 1000},
	}
	serial, err := RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	old := Parallelism()
	SetParallelism(4)
	defer SetParallelism(old)
	par, err := RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].SimTime != par[i].SimTime {
			t.Fatalf("spec %d: serial %v != parallel %v", i, serial[i].SimTime, par[i].SimTime)
		}
	}
}
