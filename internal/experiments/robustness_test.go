package experiments

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/faults"
)

// chaosBase is the cheapest device-attached benchmark run: the channel
// sites (chan.send/chan.recv) only exist on a UseChannel spec and the
// dispatch site only on a spec with a device model, so the matrix needs
// a real accelerator workload, not an NPB kernel.
var chaosBase = Spec{Bench: "jpeg-decode", EpochNS: 1000, UseChannel: true}

// firedSnapshot copies the process-global fired counters; tests diff
// around a run because the counters are monotonic.
func firedSnapshot() map[string]int64 {
	sites, counts := faults.FiredBySite()
	m := make(map[string]int64, len(sites))
	for i, s := range sites {
		m[s] = counts[i]
	}
	return m
}

// firedDelta runs f and returns how many faults fired per site during it.
func firedDelta(f func()) map[string]int64 {
	before := firedSnapshot()
	f()
	after := firedSnapshot()
	d := map[string]int64{}
	for s, n := range after {
		if n > before[s] {
			d[s] = n - before[s]
		}
	}
	return d
}

func withFault(base Spec, f FaultSpec) Spec {
	s := base
	s.Faults = []FaultSpec{f}
	return s
}

// TestFaultMatrix is the chaos acceptance test: every injection site ×
// {fail, delay}, under fixed seeds. Exact outcomes are asserted per
// site class — engine-site failures surface as injected errors, store
// degradation never fails a run, delays keep runs deterministic — and
// the fired counters prove each site actually fired (a silently-skipped
// site would pass a weaker test).
func TestFaultMatrix(t *testing.T) {
	oldCk := CheckpointsEnabled()
	SetCheckpoints(true)
	ResetCheckpointStore()
	defer func() {
		SetCheckpoints(oldCk)
		ResetCheckpointStore()
	}()

	baseline, err := RunSpec(chaosBase)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range faults.Sites() {
		for _, op := range []string{"fail", "delay"} {
			t.Run(site+"/"+op, func(t *testing.T) {
				if site == faults.SiteStorePut {
					testStorePutFault(t, op, baseline)
					return
				}
				spec := withFault(chaosBase, FaultSpec{Site: site, Op: op})
				var r1, r2 core.Result
				var err1, err2 error
				d := firedDelta(func() {
					r1, err1 = RunSpec(spec)
					r2, err2 = RunSpec(spec)
				})
				if d[site] < 2 {
					t.Fatalf("site %s fired %d times across two runs, want 2", site, d[site])
				}
				switch {
				case op == "fail" && site != faults.SiteStoreGet:
					// Engine and worker sites: the fault aborts the run
					// with a structured, classifiable error.
					if !errors.Is(err1, faults.ErrInjected) {
						t.Fatalf("fail at %s: err = %v, want injected", site, err1)
					}
					if err2 == nil || err1.Error() != err2.Error() {
						t.Fatalf("injected failure not reproducible:\n %v\n %v", err1, err2)
					}
				case op == "fail": // store.get
					// Degraded cache: the run falls back to a straight run
					// and must produce the fault-free result.
					if err1 != nil || err2 != nil {
						t.Fatalf("store.get failure failed the run: %v / %v", err1, err2)
					}
					if r1.SimTime != baseline.SimTime {
						t.Fatalf("degraded-cache run %v != fault-free %v", r1.SimTime, baseline.SimTime)
					}
				default: // delay
					if err1 != nil || err2 != nil {
						t.Fatalf("delay at %s failed the run: %v / %v", site, err1, err2)
					}
					if r1.SimTime != r2.SimTime || r1.NEXStats != r2.NEXStats {
						t.Fatalf("delayed run not deterministic: %v vs %v", r1.SimTime, r2.SimTime)
					}
					if site == faults.SitePoolWorker || site == faults.SiteStoreGet {
						// Host-side stalls never feed simulation state.
						if r1.SimTime != baseline.SimTime {
							t.Fatalf("host-side delay changed simulated time: %v != %v",
								r1.SimTime, baseline.SimTime)
						}
					}
				}
			})
		}
	}

	// Faults off again: the chaos above must not have perturbed the
	// fault-free path (byte-identical tables).
	after, err := RunSpec(chaosBase)
	if err != nil {
		t.Fatal(err)
	}
	if after.SimTime != baseline.SimTime || after.NEXStats != baseline.NEXStats {
		t.Fatalf("fault-free run changed after chaos: %v vs %v", after.SimTime, baseline.SimTime)
	}
}

// testStorePutFault covers the prefix-publish site, which is only
// crossed by the sweep planner's warm phase — so it needs a batch whose
// specs share a prefix group (late-binding difference only).
func testStorePutFault(t *testing.T, op string, baseline core.Result) {
	ResetCheckpointStore()
	faulted := withFault(chaosBase, FaultSpec{Site: faults.SiteStorePut, Op: op})
	variant := chaosBase
	variant.AccelClockMHz = 2500 // late-binding: same prefix group
	var results []core.Result
	var err error
	d := firedDelta(func() {
		results, err = RunSpecs([]Spec{faulted, variant})
	})
	if err != nil {
		t.Fatal(err)
	}
	if d[faults.SiteStorePut] < 1 {
		t.Fatalf("store.put never fired (delta %v)", d)
	}
	// Whether the publish failed (group degrades to straight runs) or
	// was merely delayed (group forks from the late blob), results are
	// byte-identical to fault-free runs.
	if results[0].SimTime != baseline.SimTime {
		t.Fatalf("faulted-group run %v != fault-free %v", results[0].SimTime, baseline.SimTime)
	}
	want, err := RunSpec(variant)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].SimTime != want.SimTime {
		t.Fatalf("group sibling %v != its solo run %v", results[1].SimTime, want.SimTime)
	}
}

// TestFaultAttemptsWindowExpires pins the self-healing contract: a
// fault armed only for attempt 0 fails the first attempt and lets the
// retry succeed with the fault-free result.
func TestFaultAttemptsWindowExpires(t *testing.T) {
	baseline, err := RunSpec(chaosBase)
	if err != nil {
		t.Fatal(err)
	}
	spec := withFault(chaosBase, FaultSpec{Site: faults.SitePoolWorker, Attempts: 1})
	if _, err := RunSpecAttempt(spec, 0, 0); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("attempt 0: err = %v, want injected", err)
	}
	r, err := RunSpecAttempt(spec, 1, 0)
	if err != nil {
		t.Fatalf("attempt 1 (fault expired): %v", err)
	}
	if r.SimTime != baseline.SimTime || r.NEXStats != baseline.NEXStats {
		t.Fatalf("healed attempt %v != fault-free run %v", r.SimTime, baseline.SimTime)
	}
}

// TestFaultSpecAddressing: the fault plan is part of the spec's content
// address (a failing run is a reproducible spec), and normalization
// fills the plan's defaults.
func TestFaultSpecAddressing(t *testing.T) {
	plain, err := chaosBase.ID()
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := withFault(chaosBase, FaultSpec{Site: faults.SiteChanSend}).ID()
	if err != nil {
		t.Fatal(err)
	}
	if plain == faulted {
		t.Fatal("fault plan did not change the content address")
	}
	n, err := withFault(chaosBase, FaultSpec{Site: faults.SiteChanSend, Op: "delay"}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Faults[0].Hit != 1 || n.Faults[0].DelayPS == 0 {
		t.Fatalf("fault defaults not normalized: %+v", n.Faults[0])
	}
	bad := []Spec{
		withFault(chaosBase, FaultSpec{Site: "no.such.site"}),
		withFault(chaosBase, FaultSpec{Site: faults.SiteChanSend, Op: "explode"}),
		withFault(chaosBase, FaultSpec{Site: faults.SiteChanSend, Rate: 1.5}),
		withFault(chaosBase, FaultSpec{Site: faults.SiteChanSend, Hit: -1}),
	}
	for i, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("bad fault spec %d validated", i)
		}
	}
}

// TestBudgetExceeded pins the watchdog on both host engines: an
// over-budget run returns a structured core.ErrBudgetExceeded instead
// of wedging, on the epoch budget and on the wall budget.
func TestBudgetExceeded(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		wall time.Duration
	}{
		{"nex-epochs", Spec{Bench: "jpeg-decode", EpochNS: 1000, MaxEpochs: 1}, 0},
		{"reference-steps", Spec{Bench: "npb-ep.8", Host: "reference", MaxEpochs: 1}, 0},
		{"nex-wall", Spec{Bench: "jpeg-decode", EpochNS: 1000}, time.Nanosecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunSpecAttempt(tc.spec, 0, tc.wall)
			if !errors.Is(err, core.ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
		})
	}
}

// TestBudgetAbortNoGoroutineLeak: an aborted run's parked thread
// goroutines are reaped, so repeated aborts don't accumulate leaked
// goroutines (run with -race to catch unsynchronized teardown).
func TestBudgetAbortNoGoroutineLeak(t *testing.T) {
	spec := Spec{Bench: "jpeg-decode", EpochNS: 1000, MaxEpochs: 1}
	// One warm-up abort so any lazily-started machinery is resident
	// before the leak baseline is taken.
	if _, err := RunSpec(spec); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatal("warm-up run did not abort on budget")
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		if _, err := RunSpec(spec); !errors.Is(err, core.ErrBudgetExceeded) {
			t.Fatalf("run %d: no budget abort", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by budget aborts: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
