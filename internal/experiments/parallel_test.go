package experiments

import (
	"bytes"
	"testing"
)

// deterministicExps are the experiments whose tables contain only
// simulated-time results (no wall-clock columns), so their output must
// be byte-identical regardless of how many workers execute the jobs.
// (fig3/fig4/table1 et al. print measured wall times and can never be
// byte-stable across runs, parallel or not.)
var deterministicExps = []string{
	"fig5", "whatif", "vtasweep", "protosweep",
	"table4", "underprov", "compsched", "seedsweep",
}

// TestParallelOutputByteIdentical runs each deterministic experiment
// serially and with 4 workers and asserts the rendered tables match
// byte for byte — the sweep executor's core contract.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every deterministic experiment twice")
	}
	defer SetParallelism(1)
	for _, id := range deterministicExps {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var serial, par bytes.Buffer
			SetParallelism(1)
			if err := exp.Run(&serial); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			SetParallelism(4)
			if err := exp.Run(&par); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Errorf("output differs between serial and -parallel 4 runs\nserial:\n%s\nparallel:\n%s",
					serial.String(), par.String())
			}
		})
	}
}
