package experiments

import (
	"bytes"
	"testing"
)

// deterministicExps are the experiments whose tables contain only
// simulated-time results (no wall-clock columns), so their output must
// be byte-identical regardless of how many workers execute the jobs.
// (fig3/fig4/table1 et al. print measured wall times and can never be
// byte-stable across runs, parallel or not.)
var deterministicExps = []string{
	"fig5", "whatif", "vtasweep", "protosweep",
	"table4", "underprov", "compsched", "seedsweep",
}

// TestParallelOutputByteIdentical runs each deterministic experiment
// serially and with 4 workers and asserts the rendered tables match
// byte for byte — the sweep executor's core contract.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every deterministic experiment twice")
	}
	defer SetParallelism(1)
	for _, id := range deterministicExps {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var serial, par bytes.Buffer
			SetParallelism(1)
			if err := exp.Run(&serial); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			SetParallelism(4)
			if err := exp.Run(&par); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Errorf("output differs between serial and -parallel 4 runs\nserial:\n%s\nparallel:\n%s",
					serial.String(), par.String())
			}
		})
	}
}

// TestIntraOutputByteIdentical is the experiments-level face of the
// conservative-parallel contract (DESIGN.md §10): rendering a
// deterministic table with intra-run parallelism enabled produces the
// same bytes as the serial schedule. A subset of deterministicExps
// keeps the runtime bounded; the exhaustive per-engine matrix lives in
// internal/core's TestIntraByteIdentity.
func TestIntraOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each experiment twice")
	}
	defer SetIntra(1)
	for _, id := range []string{"fig5", "whatif", "protosweep"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var serial, par bytes.Buffer
			SetIntra(1)
			if err := exp.Run(&serial); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			SetIntra(3)
			if err := exp.Run(&par); err != nil {
				t.Fatalf("intra run: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), par.Bytes()) {
				t.Errorf("output differs between -intra 1 and -intra 3 runs\nserial:\n%s\nintra:\n%s",
					serial.String(), par.String())
			}
		})
	}
}

// TestIntraSpecIdentityAndResult pins two properties of the spec path:
// the content address is independent of the intra setting (intra is an
// execution knob, not spec content — cached results must be shared),
// and RunSpec returns identical simulated results either way.
func TestIntraSpecIdentityAndResult(t *testing.T) {
	defer SetIntra(1)
	s := Spec{Bench: "jpeg-mt.4"}
	SetIntra(1)
	id1, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	SetIntra(4)
	id2, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("spec ID changed with intra setting: %s vs %s", id1, id2)
	}
	if r1.SimTime != r2.SimTime || r1.NEXStats != r2.NEXStats {
		t.Errorf("spec result diverged under intra: %+v vs %+v", r1, r2)
	}
	if r2.Intra < 2 {
		t.Errorf("intra run reported Intra=%d, want >= 2", r2.Intra)
	}
}
