package experiments

import (
	"strings"
	"testing"

	"nexsim/internal/nex"
	"nexsim/internal/vclock"
)

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every table and figure of §6 must be present.
	for _, id := range []string{
		"table1", "table3", "table4", "fig3", "fig4", "fig5",
		"cpuonly", "underprov", "compsched", "hybrid", "tail",
		"whatif", "vtasweep", "protosweep", "tightvschan",
	} {
		if !seen[id] {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Smoke-run the cheap experiments so the harness itself stays covered by
// `go test ./...` (the full set runs via cmd/paperbench).
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"whatif", "protosweep", "ablation-tick", "ablation-iotlb"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := e.Run(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

func TestWhatIfOrdering(t *testing.T) {
	// The §6.4 invariant: hypothetical 10x >= realistic bound >= 1.
	var sb strings.Builder
	if err := WhatIf(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "CompressT") || !strings.Contains(out, "JumpT") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestVTASweepMonotoneInLatency(t *testing.T) {
	var sb strings.Builder
	if err := VTASweep(&sb); err != nil {
		t.Fatal(err)
	}
	// The naive 400ns attachment must be the slowest VTA configuration.
	out := sb.String()
	if !strings.Contains(out, "SLOWER than CPU") {
		t.Fatalf("expected the naive design to lose to the CPU:\n%s", out)
	}
}

func TestModeledSlowdownFormula(t *testing.T) {
	// 1000 epochs of 1us: wall = 1000*(13.6+0.45+1)us over 1ms sim = 15.05x.
	st := nex.Stats{Epochs: 1000, ThreadEpochs: 1000, Rounds: 1000}
	got := modeledSlowdown(st, vclock.Microsecond, vclock.Millisecond)
	if got < 14.5 || got > 15.5 {
		t.Fatalf("modeled slowdown = %.2f, want ~15", got)
	}
}
