package experiments

import (
	"fmt"
	"io"

	"nexsim/internal/core"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// WhatIf reproduces §6.4's early-stage what-if analysis: a multithreaded
// JPEG application with 8 decoders whose matrix_filter_2d post-processing
// dominates. CompressT explores a hypothetical 10x offload; a
// JumpT-instrumented probe derives a tighter memory-bound factor.
func WhatIf(w io.Writer) error {
	base := workloads.JPEGConfig{
		Images: 32, Threads: 8, FilterPasses: 16, Seed: 777,
	}
	runJpeg := func(cfg workloads.JPEGConfig) core.Result {
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: core.AccelJPEG, Devices: cfg.Threads, Cores: 16, Seed: 42,
			IntraParallel: intra,
		})
		prog := workloads.JPEGProgram(cfg, &sys.Ctx)
		return sys.Run(prog)
	}

	comp := base
	comp.Compress = 10
	probe := base
	probe.ProbeRealistic = true

	// Enumerate: baseline, CompressT, JumpT-probed.
	res := runJobs([]func() core.Result{
		func() core.Result { return runJpeg(base) },
		func() core.Result { return runJpeg(comp) },
		func() core.Result { return runJpeg(probe) },
	})
	baseline, compressed, probed := res[0], res[1], res[2]

	fmt.Fprintf(w, "baseline (8 JPEG decoders, heavy matrix_filter_2d): %s\n", fmtDur(baseline.SimTime))
	fmt.Fprintf(w, "CompressT 10x on matrix_filter_2d:                  %s (%.2fx overall)\n",
		fmtDur(compressed.SimTime),
		float64(baseline.SimTime)/float64(compressed.SimTime))
	fmt.Fprintf(w, "JumpT-probed realistic bound:                       %s (%.2fx overall)\n",
		fmtDur(probed.SimTime),
		float64(baseline.SimTime)/float64(probed.SimTime))
	return nil
}

// VTASweep reproduces §6.4's interactive design exploration on
// ResNet-50: CPU-only vs VTA at PCIe 400ns / 100ns / on-chip 4ns, and
// finally serving DMAs from an L2 instead of the LLC. The design points
// differ only in late-binding attachment parameters, so with
// checkpoints enabled the planner runs the shared host prefix once and
// forks the four points from its snapshot.
func VTASweep(w io.Writer) error {
	// The sweep uses a less channel-scaled ResNet-50 (channels /2 instead
	// of /4) so the compute:offload-overhead ratio resembles the real
	// network's; see EXPERIMENTS.md.
	const bench = "vta-resnet50-x2"

	points := []struct {
		name string
		spec Spec
	}{
		{"VTA @ PCIe 400ns, DMA from LLC", Spec{Bench: bench}},
		{"VTA @ PCIe 100ns, DMA from LLC", Spec{Bench: bench, LinkLatencyNS: 100}},
		{"VTA on-chip 4ns,  DMA from LLC", Spec{Bench: bench, Fabric: "onchip"}},
		{"VTA on-chip 4ns,  DMA from L2", Spec{Bench: bench, Fabric: "onchip", DMATarget: "l2"}},
	}

	// Enumerate: the CPU-only baseline plus one run per design point.
	specs := []Spec{{Bench: "cpu-" + bench}}
	for _, c := range points {
		specs = append(specs, c.spec)
	}
	res, err := RunSpecs(specs)
	if err != nil {
		return err
	}

	cpu := res[0]
	fmt.Fprintf(w, "%-34s %12s\n", "configuration", "inference")
	fmt.Fprintf(w, "%-34s %12s\n", "CPU only (no accelerator)", fmtDur(cpu.SimTime))
	for ci, c := range points {
		r := res[1+ci]
		verdict := "faster than CPU"
		if r.SimTime > cpu.SimTime {
			verdict = "SLOWER than CPU"
		}
		fmt.Fprintf(w, "%-34s %12s  (%s)\n", c.name, fmtDur(r.SimTime), verdict)
	}
	return nil
}

// ProtoSweep reproduces §6.4's Protoacc observation: the accelerator
// only delivers speedups when its memory access latency is very low.
func ProtoSweep(w io.Writer) error {
	pbName := "protoacc-bench0"
	lats := []vclock.Duration{
		2 * vclock.Nanosecond, 4 * vclock.Nanosecond, 16 * vclock.Nanosecond,
		64 * vclock.Nanosecond, 128 * vclock.Nanosecond, 256 * vclock.Nanosecond,
		400 * vclock.Nanosecond,
	}

	// Enumerate: the CPU-only serialization baseline plus one run per
	// memory latency (all sharing one prefix under the checkpoint
	// planner — the latency is a late-binding attachment parameter).
	specs := []Spec{{Bench: "cpu-" + pbName}}
	for _, lat := range lats {
		specs = append(specs, Spec{Bench: pbName,
			LinkLatencyNS: int64(lat / vclock.Nanosecond)})
	}
	res, err := RunSpecs(specs)
	if err != nil {
		return err
	}

	cpu := res[0]
	fmt.Fprintf(w, "%-30s %12s\n", "configuration", "batch e2e")
	fmt.Fprintf(w, "%-30s %12s\n", "CPU only (Marshal on Xeon)", fmtDur(cpu.SimTime))
	for li, lat := range lats {
		r := res[1+li]
		verdict := "wins"
		if r.SimTime >= cpu.SimTime {
			verdict = "loses"
		}
		fmt.Fprintf(w, "Protoacc @ mem latency %-7s %12s  (%s vs CPU)\n",
			fmtDur(lat), fmtDur(r.SimTime), verdict)
	}
	return nil
}
