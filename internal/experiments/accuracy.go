package experiments

import (
	"fmt"
	"io"

	"nexsim/internal/accel"
	"nexsim/internal/accel/protoacc"
	"nexsim/internal/core"
	"nexsim/internal/stats"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// table3Groups maps each accelerator family to its benchmarks (Table 3
// computes statistics "across all corresponding benchmarks").
var table3Groups = []struct {
	accel   string
	benches []string
}{
	{"VTA", []string{"vta-resnet18", "vta-resnet34", "vta-resnet50",
		"vta-yolov3-tiny", "vta-resnet18-mp4"}},
	{"Protoacc", []string{"protoacc-bench0", "protoacc-bench1", "protoacc-bench2",
		"protoacc-bench3", "protoacc-bench4", "protoacc-bench5"}},
	{"JPEG", []string{"jpeg-decode", "jpeg-mt.2", "jpeg-mt.4", "jpeg-mt.8"}},
}

// table3Boards are the FPGA stand-ins: the reference engine with the VTA
// clocked at the two board frequencies (the paper's 160MHz and 201MHz
// testbeds).
var table3Boards = []struct {
	name string
	clk  vclock.Hz
}{{"FPGA-1", 160 * vclock.MHz}, {"FPGA-2", 201 * vclock.MHz}}

// Table3 reports NEX+DSim's simulated-time error against (a) the
// exact-time reference engine (our stand-in for the FPGA testbeds, run
// at two "board" clock configurations for VTA) and (b) the gem5+RTL
// baseline, plus the range of simulated end-to-end latency.
func Table3(w io.Writer) error {
	// Enumerate: per board, a (reference, NEX+DSim) pair per VTA
	// benchmark; then per group, a (gem5+RTL, NEX+DSim) pair per
	// benchmark.
	var jobs []func() core.Result
	for _, board := range table3Boards {
		clk := board.clk
		for _, name := range table3Groups[0].benches {
			b := benchByName(name)
			jobs = append(jobs,
				func() core.Result { return runWithAccelClock(b, core.HostReference, core.AccelRTL, clk) },
				func() core.Result { return runWithAccelClock(b, core.HostNEX, core.AccelDSim, clk) })
		}
	}
	for _, g := range table3Groups {
		for _, name := range g.benches {
			b := benchByName(name)
			jobs = append(jobs,
				func() core.Result { return run(b, core.HostGem5, core.AccelRTL, runOpts{}) },
				func() core.Result { return run(b, core.HostNEX, core.AccelDSim, runOpts{}) })
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-10s %-9s %7s %7s %7s   %s\n",
		"baseline", "accel", "avg", "max", "min", "E2E latency (NEX+DSim)")

	// renderGroup consumes len(benches) (baseline, got) pairs starting at
	// res[off] and prints one summary row.
	renderGroup := func(off int, label, accelName string, n int) int {
		var errs []float64
		var lo, hi vclock.Duration
		for i := 0; i < n; i++ {
			base, got := res[off+2*i], res[off+2*i+1]
			errs = append(errs, stats.RelErr(got.SimTime, base.SimTime))
			if i == 0 || got.SimTime < lo {
				lo = got.SimTime
			}
			if got.SimTime > hi {
				hi = got.SimTime
			}
		}
		s := stats.Summarize(errs)
		fmt.Fprintf(w, "%-10s %-9s %6.1f%% %6.1f%% %6.1f%%   %s - %s\n",
			label, accelName, s.Avg*100, s.Max*100, s.Min*100, fmtDur(lo), fmtDur(hi))
		return off + 2*n
	}

	off := 0
	for _, board := range table3Boards {
		off = renderGroup(off, board.name, "VTA", len(table3Groups[0].benches))
	}
	for _, g := range table3Groups {
		off = renderGroup(off, "gem5+RTL", g.accel, len(g.benches))
	}
	return nil
}

// runWithAccelClock reruns a benchmark with a non-default accelerator
// clock (the FPGA boards run the same RTL slower than the 2GHz ASIC
// target).
func runWithAccelClock(b workloads.Bench, host core.HostKind, acc core.AccelKind, clk vclock.Hz) core.Result {
	cfg := core.Config{
		Host: host, Accel: acc, Model: b.Model, Devices: b.Devices,
		Cores: 16, Seed: 42, AccelClock: clk, IntraParallel: intra,
	}
	sys := core.Build(cfg)
	r := sys.Run(b.Build(&sys.Ctx))
	sys.Release()
	return r
}

// CPUOnly reruns the applications with accelerator calls removed and
// compares NEX's and gem5's simulated time against true native execution
// (the reference engine) — §6.5's error breakdown.
func CPUOnly(w io.Writer) error {
	benches := workloads.CPUOnlyBenches()
	var jobs []func() core.Result
	for _, b := range benches {
		b := b
		jobs = append(jobs,
			func() core.Result { return run(b, core.HostReference, core.AccelDSim, runOpts{}) },
			func() core.Result { return run(b, core.HostNEX, core.AccelDSim, runOpts{}) },
			func() core.Result { return run(b, core.HostGem5, core.AccelDSim, runOpts{}) })
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-22s %12s %10s %10s\n", "benchmark", "native", "NEX err", "gem5 err")
	var nexErrs, gemErrs []float64
	for i, b := range benches {
		native, nexR, gemR := res[3*i], res[3*i+1], res[3*i+2]
		ne := stats.RelErr(nexR.SimTime, native.SimTime)
		ge := stats.RelErr(gemR.SimTime, native.SimTime)
		nexErrs = append(nexErrs, ne)
		gemErrs = append(gemErrs, ge)
		fmt.Fprintf(w, "%-22s %12s %9.1f%% %9.1f%%\n",
			b.Name, fmtDur(native.SimTime), ne*100, ge*100)
	}
	ns, gs := stats.Summarize(nexErrs), stats.Summarize(gemErrs)
	fmt.Fprintf(w, "NEX:  avg %.1f%%, max %.1f%%\n", ns.Avg*100, ns.Max*100)
	fmt.Fprintf(w, "gem5: avg %.1f%%, max %.1f%%\n", gs.Avg*100, gs.Max*100)
	return nil
}

// Tail compares the 90th-percentile Protoacc task latency between
// NEX+DSim and gem5+RTL (§6.8). Task latencies come from the device's
// per-task log.
func Tail(w io.Writer) error {
	benches := []string{"protoacc-bench0", "protoacc-bench1", "protoacc-bench2",
		"protoacc-bench3", "protoacc-bench4", "protoacc-bench5"}
	var jobs []func() vclock.Duration
	for _, name := range benches {
		name := name
		jobs = append(jobs,
			func() vclock.Duration { return taskP90(name, core.HostGem5, core.AccelRTL) },
			func() vclock.Duration { return taskP90(name, core.HostNEX, core.AccelDSim) })
	}
	p90s := runJobs(jobs)

	fmt.Fprintf(w, "%-18s %12s %12s %9s\n", "benchmark", "gem5+RTL p90", "NEX+DSim p90", "rel err")
	var errs []float64
	for i, name := range benches {
		base, got := p90s[2*i], p90s[2*i+1]
		e := stats.RelErr(got, base)
		note := ""
		if base < vclock.Microsecond {
			// The paper excludes Protoacc-bench1 for the same reason: at
			// this scale CPU variance dominates relative error.
			note = "  (sub-1us: excluded from avg)"
		} else {
			errs = append(errs, e)
		}
		fmt.Fprintf(w, "%-18s %12s %12s %8.1f%%%s\n", name, fmtDur(base), fmtDur(got), e*100, note)
	}
	fmt.Fprintf(w, "avg p90 error: %.1f%%\n", stats.Summarize(errs).Avg*100)
	return nil
}

// taskP90 runs a Protoacc benchmark and extracts the p90 task latency.
func taskP90(name string, host core.HostKind, acc core.AccelKind) vclock.Duration {
	b := benchByName(name)
	cfg := core.Config{Host: host, Accel: acc, Model: b.Model,
		Devices: b.Devices, Cores: 16, Seed: 42, IntraParallel: intra}
	sys := core.Build(cfg)
	sys.Run(b.Build(&sys.Ctx))
	spans := protoTaskSpans(sys)
	lat := make([]vclock.Duration, 0, len(spans))
	for _, s := range spans {
		lat = append(lat, s.Done.Sub(s.Submit))
	}
	return stats.Percentile(lat, 90)
}

// protoTaskSpans extracts the Protoacc per-task latency log from a
// system's device.
func protoTaskSpans(sys *core.System) []protoacc.TaskSpan {
	raw := sys.Ctx.Devices[0]
	if u, ok := raw.(interface{ Unwrap() accel.Device }); ok {
		raw = u.Unwrap()
	}
	return raw.(interface{ Latencies() []protoacc.TaskSpan }).Latencies()
}

// SeedSweep characterizes the NEX error model's distribution: the same
// benchmark under ten calibration seeds, against the exact-time
// reference. The paper reports single numbers per benchmark; this sweep
// shows the spread a user should expect across hosts/calibrations.
func SeedSweep(w io.Writer) error {
	benches := []string{"vta-resnet18", "jpeg-decode", "protoacc-bench1"}
	const seeds = 10

	var jobs []func() core.Result
	for _, name := range benches {
		b := benchByName(name)
		jobs = append(jobs, func() core.Result {
			return run(b, core.HostReference, core.AccelDSim, runOpts{})
		})
		for seed := uint64(1); seed <= seeds; seed++ {
			seed := seed
			jobs = append(jobs, func() core.Result {
				return run(b, core.HostNEX, core.AccelDSim, runOpts{seed: seed})
			})
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-18s %8s %8s %8s   per-seed errors\n", "benchmark", "avg", "max", "min")
	for bi, name := range benches {
		off := bi * (seeds + 1)
		ref := res[off]
		var errs []float64
		line := ""
		for i := 1; i <= seeds; i++ {
			e := stats.RelErr(res[off+i].SimTime, ref.SimTime)
			errs = append(errs, e)
			line += fmt.Sprintf(" %.1f%%", e*100)
		}
		s := stats.Summarize(errs)
		fmt.Fprintf(w, "%-18s %7.1f%% %7.1f%% %7.1f%%  %s\n",
			name, s.Avg*100, s.Max*100, s.Min*100, line)
	}
	return nil
}
