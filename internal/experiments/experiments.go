// Package experiments regenerates every table and figure of the paper's
// evaluation (§6), mapping each to the modules that implement it (see
// DESIGN.md's per-experiment index). Each experiment prints a
// human-readable table; cmd/paperbench drives them and bench_test.go
// exposes one benchmark target per table/figure.
//
// Every experiment follows the same three-phase shape: it *enumerates*
// its independent simulation jobs up front, *runs* them through the
// sweep executor (serially by default; across workers after
// SetParallelism), and *renders* the table from the order-preserved
// results. Rendering never depends on execution order, so parallel runs
// produce byte-identical tables.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/nex"
	"nexsim/internal/sweep"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// parallelism is the worker count used to execute each experiment's
// enumerated jobs. 1 (the default) reproduces the historical serial
// harness exactly; cmd/paperbench raises it via -parallel.
var parallelism = 1

// SetParallelism sets the number of workers experiments fan their
// simulation jobs across. n <= 1 selects serial execution. Not safe to
// call while an experiment is running.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism reports the current worker count.
func Parallelism() int { return parallelism }

// intra is the intra-run worker count applied to every simulation the
// experiments launch (core.Config.IntraParallel): 1 (the default) keeps
// each run single-threaded, >= 2 lets one run's host and device engines
// execute concurrently. Results are byte-identical either way (the
// conservative-parallel contract, DESIGN.md §10), which is also why
// intra is deliberately NOT part of Spec: it is an execution knob, not
// part of a run's identity, so content addresses and cached results are
// shared across intra settings.
var intra = 1

// SetIntra sets the intra-run worker count for subsequently launched
// simulations. n <= 1 selects the serial schedule. Not safe to call
// while an experiment is running.
func SetIntra(n int) {
	if n < 1 {
		n = 1
	}
	intra = n
}

// Intra reports the current intra-run worker count.
func Intra() int { return intra }

// wallHostNS/wallDeviceNS accumulate every run's host/device wall-time
// split (core.Result.HostWall/DeviceWall) across the executeRun
// chokepoint, so cmd/paperbench can attribute where an experiment's
// wall time went. Atomic: sweep workers record concurrently.
var wallHostNS, wallDeviceNS int64

// noteWall records one completed run's wall split.
func noteWall(r core.Result) {
	atomic.AddInt64(&wallHostNS, int64(r.HostWall))
	atomic.AddInt64(&wallDeviceNS, int64(r.DeviceWall))
}

// TakeWallSplit returns the host and device wall time accumulated
// since the previous call, and resets the counters. Host wall is each
// run's full wall time; device wall is the time accelerator stepper
// lanes spent advancing concurrently with it (zero under -intra 1,
// where devices advance inline on the host goroutine).
func TakeWallSplit() (host, device time.Duration) {
	return time.Duration(atomic.SwapInt64(&wallHostNS, 0)),
		time.Duration(atomic.SwapInt64(&wallDeviceNS, 0))
}

// runJobs executes every enumerated job through the sweep executor and
// returns the results in job order. Every simulation an experiment runs
// goes through here; each job builds its own System, so jobs share no
// mutable state and any subset may run concurrently.
func runJobs[T any](jobs []func() T) []T {
	return sweep.Map(sweep.New(parallelism), jobs)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: simulation-mode comparison (slowdown ranges)", Table1},
		{"table3", "Table 3: NEX+DSim simulated-time error vs baselines", Table3},
		{"fig3", "Figure 3: simulation time and NEX+DSim speedup over gem5+RTL", Fig3},
		{"fig4", "Figure 4: speedup breakdown across simulator combinations", Fig4},
		{"fig5", "Figure 5: simulated-time error relative to gem5+RTL", Fig5},
		{"cpuonly", "§6.5: CPU-only error of NEX and gem5 vs native", CPUOnly},
		{"table4", "Table 4: NEX error and slowdown vs epoch duration", Table4},
		{"underprov", "§6.6: underprovisioned physical cores", Underprovision},
		{"compsched", "§6.6/§A.1: complementary scheduling accuracy", CompSched},
		{"hybrid", "§6.7: hybrid synchronization overhead", Hybrid},
		{"tail", "§6.8: 90th-percentile task latency error (Protoacc)", Tail},
		{"whatif", "§6.4: CompressT/JumpT what-if analysis (JPEG)", WhatIf},
		{"vtasweep", "§6.4: interactive VTA design exploration (ResNet-50)", VTASweep},
		{"protosweep", "§6.4: Protoacc memory-latency crossover", ProtoSweep},
		{"tightvschan", "§A.2: tight integration vs SimBricks channel", TightVsChan},
		{"ablation-tick", "Ablation: NEX tick mode (trap batching, §3.2)", AblationTick},
		{"ablation-sync", "Ablation: lazy vs eager synchronization (§3.1)", AblationSync},
		{"ablation-dsim", "Ablation: DSim LPN vs RTL-style accelerator simulation", AblationDSim},
		{"ablation-iotlb", "Extension (§7 future work): I/O TLB translation cost", AblationIOTLB},
		{"seedsweep", "Extension: NEX error distribution across calibration seeds", SeedSweep},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// runOpts parameterize a single simulation run.
type runOpts struct {
	fabric     *interconnect.Config
	dma        core.DMALevel
	cores      int
	nexEpoch   vclock.Duration
	nexVCores  int
	nexPCores  int
	nexMode    nex.SyncMode
	nexSyncInt vclock.Duration
	noTick     bool
	useChannel bool
	seed       uint64
	useIRQ     bool // rebuild accel workloads with IRQ-driven drivers
}

// run assembles and executes one benchmark under one combination.
func run(b workloads.Bench, host core.HostKind, acc core.AccelKind, o runOpts) core.Result {
	if o.seed == 0 {
		o.seed = 42
	}
	cores := o.cores
	if cores == 0 {
		cores = 16
	}
	cfg := core.Config{
		Host: host, Accel: acc,
		Model: b.Model, Devices: b.Devices,
		Cores: cores, Seed: o.seed,
		Fabric: o.fabric, DMATarget: o.dma,
		NEXNoTick:     o.noTick,
		UseChannel:    o.useChannel,
		IntraParallel: intra,
	}
	cfg.NEX.Epoch = o.nexEpoch
	cfg.NEX.VirtualCores = o.nexVCores
	cfg.NEX.PhysicalCores = o.nexPCores
	cfg.NEX.Mode = o.nexMode
	cfg.NEX.SyncInterval = o.nexSyncInt
	r, err := executeRun(b, cfg)
	if err != nil {
		// Unreachable: table runs carry no fault plan or budget.
		panic(err)
	}
	return r
}

// benchByName panics on unknown names (experiments reference a fixed
// catalog).
func benchByName(name string) workloads.Bench {
	b, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// fmtDur prints a virtual duration compactly.
func fmtDur(d vclock.Duration) string { return d.String() }

// fmtWall prints a wall duration compactly.
func fmtWall(d time.Duration) string { return d.Round(time.Microsecond).String() }

// sortedKeys is a tiny helper for deterministic map iteration.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
