package experiments

import (
	"fmt"
	"io"

	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/stats"
)

// AblationTick isolates NEX tick mode (§3.2): with tick-mode drivers,
// task-buffer writes are batched behind doorbells instead of each
// trapping; disabling it multiplies traps and the epoch-quantization
// error they carry.
//
// Tick and Sync enumerate their runs as Specs — the same structured
// run descriptions the simserve daemon accepts over HTTP — so the CLI
// tables and the service share one execution path (RunSpecs).
func AblationTick(w io.Writer) error {
	benches := []string{"protoacc-bench0", "jpeg-decode", "vta-resnet18"}

	// Enumerate: a (reference, tick, no-tick) triple per benchmark.
	var specs []Spec
	for _, name := range benches {
		specs = append(specs,
			Spec{Bench: name, Host: "reference"},
			Spec{Bench: name, Host: "nex"},
			Spec{Bench: name, Host: "nex", NoTick: true})
	}
	res, err := RunSpecs(specs)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s\n",
		"benchmark", "traps(tick)", "traps(no)", "err(tick)", "err(no)")
	for i, name := range benches {
		ref, withTick, noTick := res[3*i], res[3*i+1], res[3*i+2]
		fmt.Fprintf(w, "%-18s %12d %12d %11.1f%% %11.1f%%\n",
			name, withTick.NEXStats.Traps, noTick.NEXStats.Traps,
			100*stats.RelErr(withTick.SimTime, ref.SimTime),
			100*stats.RelErr(noTick.SimTime, ref.SimTime))
	}
	return nil
}

// AblationSync contrasts lazy and eager synchronization (§3.1): eager
// advances the accelerator complex every epoch, multiplying
// synchronization events for no accuracy benefit on these workloads.
func AblationSync(w io.Writer) error {
	benches := []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"}

	// Enumerate: a (reference, lazy, eager) triple per benchmark.
	var specs []Spec
	for _, name := range benches {
		specs = append(specs,
			Spec{Bench: name, Host: "reference"},
			Spec{Bench: name, Host: "nex", SyncMode: "lazy"},
			Spec{Bench: name, Host: "nex", SyncMode: "eager"})
	}
	res, err := RunSpecs(specs)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s\n",
		"benchmark", "syncs(lazy)", "syncs(eager)", "err(lazy)", "err(eager)")
	for i, name := range benches {
		ref, lazy, eager := res[3*i], res[3*i+1], res[3*i+2]
		fmt.Fprintf(w, "%-18s %12d %12d %11.1f%% %11.1f%%\n",
			name, lazy.NEXStats.Syncs, eager.NEXStats.Syncs,
			100*stats.RelErr(lazy.SimTime, ref.SimTime),
			100*stats.RelErr(eager.SimTime, ref.SimTime))
	}
	fmt.Fprintln(w, "(each eager sync is a lock-step accelerator advance; on the real")
	fmt.Fprintln(w, " system every one is a cross-simulator message exchange — the cost")
	fmt.Fprintln(w, " lazy synchronization eliminates)")
	return nil
}

// AblationDSim isolates the di-simulation split: DSim (LPN performance
// track) vs the cycle-stepped RTL-style models, same host engine. The
// accelerator simulators are indistinguishable in results but orders of
// magnitude apart in internal steps.
func AblationDSim(w io.Writer) error {
	benches := []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"}

	// Enumerate: a (DSim, RTL) wall-time pair per benchmark.
	var jobs []func() core.Result
	for _, name := range benches {
		b := benchByName(name)
		jobs = append(jobs,
			func() core.Result { return runWall(b, core.HostNEX, core.AccelDSim, runOpts{}) },
			func() core.Result { return runWall(b, core.HostNEX, core.AccelRTL, runOpts{}) })
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-18s %14s %14s %12s\n",
		"benchmark", "DSim wall", "RTL wall", "sim-time err")
	for i, name := range benches {
		dsim, rtl := res[2*i], res[2*i+1]
		fmt.Fprintf(w, "%-18s %14s %14s %11.1f%%\n",
			name, fmtWall(dsim.WallTime), fmtWall(rtl.WallTime),
			100*stats.RelErr(dsim.SimTime, rtl.SimTime))
	}
	return nil
}

// AblationIOTLB exercises the §7 future-work extension: translating
// accelerator DMAs through a per-device I/O TLB. Small TLBs with
// page-table walks lengthen DMA-bound benchmarks; generous TLBs cost
// almost nothing.
func AblationIOTLB(w io.Writer) error {
	benches := []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"}
	tlbs := []*interconnect.IOTLBConfig{
		nil, {Entries: 64}, {Entries: 8},
	}

	// Enumerate: one run per (benchmark, TLB configuration).
	var jobs []func() core.Result
	for _, name := range benches {
		b := benchByName(name)
		for _, tlb := range tlbs {
			tlb := tlb
			jobs = append(jobs, func() core.Result {
				sys := core.Build(core.Config{
					Host: core.HostNEX, Accel: core.AccelDSim, Model: b.Model,
					Devices: b.Devices, Cores: 16, Seed: 42, IOTLB: tlb,
					IntraParallel: intra,
				})
				return sys.Run(b.Build(&sys.Ctx))
			})
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-18s %12s %14s %14s\n",
		"benchmark", "no IOTLB", "64-entry", "8-entry")
	for i, name := range benches {
		off, big, small := res[3*i], res[3*i+1], res[3*i+2]
		fmt.Fprintf(w, "%-18s %12s %11s %.2fx %11s %.2fx\n",
			name, fmtDur(off.SimTime),
			fmtDur(big.SimTime), float64(big.SimTime)/float64(off.SimTime),
			fmtDur(small.SimTime), float64(small.SimTime)/float64(off.SimTime))
	}
	return nil
}
