package experiments

import (
	"fmt"
	"io"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/nex"
	"nexsim/internal/stats"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// npbSuite is the kernel set used for the NEX configuration studies.
var npbSuite = []string{"ep", "cg", "mg", "ft", "is", "bt", "sp", "lu"}

// npbRes is the result of one NPB job: either a native baseline (stats
// zero) or a NEX run.
type npbRes struct {
	sim vclock.Duration
	st  nex.Stats
}

// runNPB executes one NPB kernel under NEX with the given parameters and
// returns (simulated time, wall time, stats).
func runNPB(kernel string, threads int, ncfg nex.Config, seed uint64) (vclock.Duration, time.Duration, nex.Stats) {
	cfg := core.Config{Host: core.HostNEX, Cores: 16, Seed: seed, IntraParallel: intra}
	cfg.NEX = ncfg
	sys := core.Build(cfg)
	prog := workloads.NPBProgram(kernel, threads, sys.Ctx.Clock)
	r := sys.Run(prog)
	return r.SimTime, r.WallTime, r.NEXStats
}

// npbNative runs the same kernel on the exact-time reference engine with
// the given core count — the bare-metal ground truth.
func npbNative(kernel string, threads, cores int) vclock.Duration {
	cfg := core.Config{Host: core.HostReference, Cores: cores, Seed: 42, IntraParallel: intra}
	sys := core.Build(cfg)
	prog := workloads.NPBProgram(kernel, threads, sys.Ctx.Clock)
	return sys.Run(prog).SimTime
}

// Table4 sweeps the epoch duration and thread count over the NPB suite:
// slowdown falls with larger epochs, accuracy is best near 1us and
// degrades both below (pipeline-refill loss) and above (cross-epoch
// synchronization skew).
func Table4(w io.Writer) error {
	epochs := []vclock.Duration{
		500 * vclock.Nanosecond, 1 * vclock.Microsecond,
		2 * vclock.Microsecond, 4 * vclock.Microsecond,
	}
	threads := []int{1, 8, 16}

	// Enumerate: one native baseline per (thread count, kernel) — shared
	// across the epoch sweep — then one NEX run per (thread, epoch,
	// kernel) cell.
	var jobs []func() npbRes
	for _, t := range threads {
		t := t
		for _, k := range npbSuite {
			k := k
			jobs = append(jobs, func() npbRes { return npbRes{sim: npbNative(k, t, 16)} })
		}
	}
	for _, t := range threads {
		t := t
		for _, e := range epochs {
			e := e
			for _, k := range npbSuite {
				k := k
				jobs = append(jobs, func() npbRes {
					sim, _, st := runNPB(k, t, nex.Config{Epoch: e, VirtualCores: 16}, 42)
					return npbRes{sim: sim, st: st}
				})
			}
		}
	}
	res := runJobs(jobs)
	nat := res[:len(threads)*len(npbSuite)]
	sims := res[len(threads)*len(npbSuite):]

	fmt.Fprintf(w, "%-10s %-8s", "metric", "threads")
	for _, e := range epochs {
		fmt.Fprintf(w, " %10s", fmtDur(e))
	}
	fmt.Fprintln(w)

	type cell struct {
		slow float64
		err  float64
	}
	grid := make(map[int]map[vclock.Duration]cell)
	for ti, t := range threads {
		grid[t] = make(map[vclock.Duration]cell)
		for ei, e := range epochs {
			var errs, slows []float64
			for ki := range npbSuite {
				native := nat[ti*len(npbSuite)+ki].sim
				r := sims[(ti*len(epochs)+ei)*len(npbSuite)+ki]
				errs = append(errs, stats.RelErr(r.sim, native))
				slows = append(slows, modeledSlowdown(r.st, e, r.sim))
			}
			grid[t][e] = cell{slow: stats.Summarize(slows).Avg, err: stats.Summarize(errs).Avg}
		}
	}
	for _, t := range threads {
		fmt.Fprintf(w, "%-10s %-8d", "slowdown", t)
		for _, e := range epochs {
			fmt.Fprintf(w, " %9.1fx", grid[t][e].slow)
		}
		fmt.Fprintln(w)
	}
	for _, t := range threads {
		fmt.Fprintf(w, "%-10s %-8d", "avg error", t)
		for _, e := range epochs {
			fmt.Fprintf(w, " %9.1f%%", grid[t][e].err*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(slowdown is modeled from epoch/round counts with the real"+
		" system's per-epoch costs — see EXPERIMENTS.md; error is measured)")
	return nil
}

// modeledSlowdown converts the engine's measured event counters into
// the wall-clock slowdown NEX exhibits on real hardware (§7's 10-20x
// baseline overhead from per-epoch kernel crossings); see
// nex.Stats.ModeledWall.
func modeledSlowdown(st nex.Stats, epoch vclock.Duration, sim vclock.Duration) float64 {
	if sim <= 0 {
		return 0
	}
	st.Syncs = 0 // syncs are reported separately (Hybrid experiment)
	return float64(st.ModeledWall(epoch)) / float64(sim)
}

// Underprovision evaluates 16 virtual cores on 1, 4 and 16 physical
// cores (§6.6): fewer physical cores degrade accuracy (and, on the real
// system, speed — we report the epoch-round count that drives it).
func Underprovision(w io.Writer) error {
	physList := []int{16, 4, 1}

	// Enumerate: one native baseline per kernel (independent of the
	// physical-core sweep), then one NEX run per (phys, kernel).
	var jobs []func() npbRes
	for _, k := range npbSuite {
		k := k
		jobs = append(jobs, func() npbRes { return npbRes{sim: npbNative(k, 16, 16)} })
	}
	for _, phys := range physList {
		phys := phys
		for _, k := range npbSuite {
			k := k
			jobs = append(jobs, func() npbRes {
				sim, _, st := runNPB(k, 16, nex.Config{
					Epoch: 1 * vclock.Microsecond, VirtualCores: 16, PhysicalCores: phys,
				}, 42)
				return npbRes{sim: sim, st: st}
			})
		}
	}
	res := runJobs(jobs)
	nat := res[:len(npbSuite)]
	sims := res[len(npbSuite):]

	fmt.Fprintf(w, "%-10s %10s %10s %14s\n", "physcores", "avg err", "max err", "rounds/epochs")
	for pi, phys := range physList {
		var errs []float64
		var rounds, epochs int64
		for ki := range npbSuite {
			r := sims[pi*len(npbSuite)+ki]
			errs = append(errs, stats.RelErr(r.sim, nat[ki].sim))
			rounds += r.st.Rounds
			epochs += r.st.Epochs
		}
		s := stats.Summarize(errs)
		fmt.Fprintf(w, "%-10d %9.1f%% %9.1f%% %13.1fx\n",
			phys, s.Avg*100, s.Max*100, float64(rounds)/float64(epochs))
	}
	return nil
}

// CompSched evaluates the complementary scheduling policy in
// oversubscribed configurations against native Linux-like scheduling
// (the reference engine's CFS), highlighting the SP/LU divergence of
// §A.1.
func CompSched(w io.Writer) error {
	configs := []struct{ threads, cores int }{
		{2, 1}, {4, 2}, {8, 4}, {16, 4},
	}

	// Enumerate: a (native, NEX) pair per (kernel, config) cell.
	var jobs []func() npbRes
	for _, k := range npbSuite {
		k := k
		for _, c := range configs {
			c := c
			jobs = append(jobs,
				func() npbRes { return npbRes{sim: npbNative(k, c.threads, c.cores)} },
				func() npbRes {
					sim, _, st := runNPB(k, c.threads, nex.Config{
						Epoch: 1 * vclock.Microsecond, VirtualCores: c.cores,
					}, 42)
					return npbRes{sim: sim, st: st}
				})
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-8s", "kernel")
	for _, c := range configs {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%dT/%dC", c.threads, c.cores))
	}
	fmt.Fprintln(w)

	var others, spLu []float64
	for ki, k := range npbSuite {
		fmt.Fprintf(w, "%-8s", k)
		for ci := range configs {
			off := (ki*len(configs) + ci) * 2
			e := stats.RelErr(res[off+1].sim, res[off].sim)
			if k == "sp" || k == "lu" {
				spLu = append(spLu, e)
			} else {
				others = append(others, e)
			}
			fmt.Fprintf(w, " %9.1f%%", e*100)
		}
		fmt.Fprintln(w)
	}
	so, sl := stats.Summarize(others), stats.Summarize(spLu)
	fmt.Fprintf(w, "all but SP/LU: avg %.1f%%, max %.1f%%\n", so.Avg*100, so.Max*100)
	fmt.Fprintf(w, "SP and LU:     avg %.1f%%, max %.1f%% (complementary policy diverges from CFS)\n",
		sl.Avg*100, sl.Max*100)
	return nil
}

// Hybrid measures the cost of hybrid synchronization at 10us and 1us
// intervals relative to lazy synchronization (§6.7). The engine counts
// every periodic synchronization; the slowdown is modeled with the real
// system's cost structure (per-epoch scheduling plus a per-sync global
// pause + simulator message exchange), the same method as Table 4's
// slowdown column.
func Hybrid(w io.Writer) error {
	type variant struct {
		mode nex.SyncMode
		intv vclock.Duration
	}
	variants := []variant{
		{nex.Lazy, 0},
		{nex.Hybrid, 10 * vclock.Microsecond},
		{nex.Hybrid, 1 * vclock.Microsecond},
	}
	benches := []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"}

	// Enumerate: one run per (benchmark, variant).
	var jobs []func() core.Result
	for _, name := range benches {
		b := benchByName(name)
		for _, v := range variants {
			v := v
			jobs = append(jobs, func() core.Result {
				return run(b, core.HostNEX, core.AccelDSim, runOpts{
					nexMode: v.mode, nexSyncInt: v.intv})
			})
		}
	}
	res := runJobs(jobs)

	fmt.Fprintf(w, "%-16s %12s %16s %16s\n",
		"benchmark", "lazy slowdown", "hybrid 10us", "hybrid 1us")
	var r10, r1 []float64
	for bi, name := range benches {
		slows := make([]float64, len(variants))
		for vi := range variants {
			r := res[bi*len(variants)+vi]
			slows[vi] = modeledSlowdownSync(r.NEXStats, 1*vclock.Microsecond, r.SimTime)
		}
		f10 := slows[1] / slows[0]
		f1 := slows[2] / slows[0]
		r10 = append(r10, f10)
		r1 = append(r1, f1)
		fmt.Fprintf(w, "%-16s %12.1fx %10.1fx %.2fx %9.1fx %.2fx\n",
			name, slows[0], slows[1], f10, slows[2], f1)
	}
	s10, s1 := stats.Summarize(r10), stats.Summarize(r1)
	fmt.Fprintf(w, "hybrid@10us: avg %.2fx (max %.2fx); hybrid@1us: avg %.2fx (max %.2fx)\n",
		s10.Avg, s10.Max, s1.Avg, s1.Max)
	fmt.Fprintln(w, "(slowdowns modeled from measured epoch/sync counts; see EXPERIMENTS.md)")
	return nil
}

// modeledSlowdownSync includes the periodic-sync cost (see
// nex.Stats.ModeledWall).
func modeledSlowdownSync(st nex.Stats, epoch vclock.Duration, sim vclock.Duration) float64 {
	if sim <= 0 {
		return 0
	}
	return float64(st.ModeledWall(epoch)) / float64(sim)
}

func median3(xs []time.Duration) time.Duration {
	a, b, c := xs[0], xs[1], xs[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
