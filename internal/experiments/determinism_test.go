package experiments

import (
	"bytes"
	"testing"
)

// TestRepeatedRunByteIdentical is the runtime complement to simlint's
// static map-order checker: it renders one representative experiment
// (table4, the NEX epoch sweep) twice in-process serially and once under
// 4 workers, and asserts all three tables are byte-identical. A
// side-effecting map iteration or any other hidden per-process
// randomness would make the second in-process run differ even where a
// single run per process looks stable.
func TestRepeatedRunByteIdentical(t *testing.T) {
	defer SetParallelism(1)
	exp, err := ByID("table4")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) []byte {
		SetParallelism(workers)
		var buf bytes.Buffer
		if err := exp.Run(&buf); err != nil {
			t.Fatalf("run with %d workers: %v", workers, err)
		}
		return buf.Bytes()
	}
	first := render(1)
	second := render(1)
	if !bytes.Equal(first, second) {
		t.Errorf("repeated in-process serial runs differ:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	par := render(4)
	if !bytes.Equal(first, par) {
		t.Errorf("serial and -parallel 4 runs differ:\nserial:\n%s\nparallel:\n%s", first, par)
	}
}
