package experiments

import (
	"fmt"
	"time"

	"nexsim/internal/checkpoint"
	"nexsim/internal/core"
	"nexsim/internal/faults"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// defaultHostClock mirrors core.Build's host clock default.
const defaultHostClock = 3 * vclock.GHz

// Checkpointed sweep execution (prefix sharing): the points of a design
// sweep differ only in accelerator-side ("late-binding") parameters —
// accelerator engine, clock, fabric profile and latency, DMA level,
// channel integration — while the host-side prefix up to the first
// device interaction is identical. With checkpoints enabled, the
// planner groups runs by their normalized prefix, executes each group's
// prefix once, snapshots the engine at the divergence point, and forks
// every group member from the blob. Forked runs are byte-identical to
// straight-through runs (the engine-level differential tests pin this),
// so enabling checkpoints changes wall-clock time only.

// checkpointsOn gates the prefix-sharing planner. Like parallelism, it
// is set before experiments run (cmd/paperbench -checkpoints, simserve
// config), never while one is running.
var checkpointsOn = false

// ckptStore caches prefix blobs across runs and requests,
// content-addressed by the normalized prefix key. 256MB bounds the
// resident blobs; least-recently-forked prefixes evict first.
var ckptStore = checkpoint.NewStore(256 << 20)

// SetCheckpoints enables or disables checkpointed sweep execution. Not
// safe to call while an experiment is running.
func SetCheckpoints(on bool) { checkpointsOn = on }

// CheckpointsEnabled reports whether the prefix-sharing planner is on.
func CheckpointsEnabled() bool { return checkpointsOn }

// CheckpointStats reports the prefix store's hit/miss/eviction counters
// (exposed by simserve's /metrics).
func CheckpointStats() checkpoint.StoreStats { return ckptStore.Stats() }

// ResetCheckpointStore drops every cached prefix (tests). Any attached
// disk tier is dropped with it.
func ResetCheckpointStore() { ckptStore = checkpoint.NewStore(256 << 20) }

// SetCheckpointDisk attaches a persistent tier under dir to the prefix
// store: warmed prefixes are written through to disk and survive
// process restarts (simd -state-dir), where a fresh daemon's memory
// misses fall through to the recovered blobs. Set before experiments
// run, like SetCheckpoints.
func SetCheckpointDisk(dir string) error {
	d, err := checkpoint.NewDiskStore(dir)
	if err != nil {
		return err
	}
	ckptStore.AttachDisk(d)
	return nil
}

// chaosSleep implements an OpDelay fault at a host-side site (store
// access, pool worker pickup), where there is no virtual clock to
// shift: a wall-clock stall of the fault's DelayPS, clamped to 50ms so
// a chaotic spec cannot wedge a worker. The stall never feeds
// simulation state — simulated results are byte-identical with and
// without it.
func chaosSleep(delayPS int64) {
	d := time.Duration(delayPS/1000) * time.Nanosecond
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 0 {
		time.Sleep(d) //simlint:allow nondet-time bounded chaos stall, never simulation state
	}
}

// prefixShareable reports whether a run can fork from a shared prefix:
// a NEX host driving at least one accelerator, without trace recording
// (journal replay does not reproduce trace spans).
func prefixShareable(b workloads.Bench, cfg core.Config) bool {
	return cfg.Host == core.HostNEX && cfg.Trace == nil &&
		cfg.Model != core.AccelNone && b.Model != core.AccelNone
}

// prefixConfig strips the late-binding fields off a run's configuration,
// leaving the host-side prefix configuration every group member shares.
// Everything cleared here is unobservable before the first device
// interaction: the accelerator engine and clock only shape device
// behavior, and the fabric/DMA/channel attachment is only traversed by
// device interactions.
func prefixConfig(cfg core.Config) core.Config {
	cfg.Accel = core.AccelDSim
	cfg.AccelClock = 0
	cfg.Fabric = nil
	cfg.DMATarget = core.DMALLC
	cfg.UseChannel = false
	cfg.IOTLB = nil
	// The prefix run itself is never faulted or budgeted: the blob is
	// shared across specs (and attempts) whose plans differ, so its
	// content must not depend on them. No engine fault site can fire
	// before the first device interaction anyway — injection happens at
	// the wrapping store sites and in the forked continuation.
	cfg.Budget = core.Budget{}
	cfg.Faults = nil
	return cfg
}

// prefixKey is the content key of a run's shared prefix: the bench plus
// every host-side parameter, with core.Build's defaulting applied so
// implicit and explicit spellings share one key.
func prefixKey(bench string, cfg core.Config) string {
	clock := cfg.Clock
	if clock == 0 {
		clock = defaultHostClock
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 16
	}
	devices := cfg.Devices
	if cfg.Model != core.AccelNone && devices <= 0 {
		devices = 1
	}
	return fmt.Sprintf("%s|%v|%s|%d|%d|%d|%d|%t|%d|%d|%d|%d|%d",
		bench, cfg.Host, cfg.Model, devices, cores, cfg.Seed, clock,
		cfg.NEXNoTick, cfg.NEX.Epoch, cfg.NEX.VirtualCores,
		cfg.NEX.PhysicalCores, cfg.NEX.Mode, cfg.NEX.SyncInterval)
}

// warmPrefix runs (or joins) the group's shared prefix and returns its
// snapshot blob; nil means the program completed without touching a
// device (cached as a negative entry so the group falls back to
// straight runs without re-probing).
func warmPrefix(b workloads.Bench, cfg core.Config) ([]byte, error) {
	if inj := cfg.Faults.Hit(faults.SiteStorePut); inj != nil {
		if inj.Op == faults.OpFail {
			// Publish path down: the group degrades to straight runs —
			// correctness never depends on the cache.
			return nil, fmt.Errorf("experiments: prefix publish: %w", inj)
		}
		chaosSleep(inj.Delay)
	}
	key := prefixKey(b.Name, cfg)
	blob, _, err := ckptStore.GetOrCompute(key, func() ([]byte, error) {
		psys := core.Build(prefixConfig(cfg))
		defer psys.Release()
		if _, completed := psys.RunPrefix(b.Build(&psys.Ctx)); completed {
			return nil, nil
		}
		return psys.Checkpoint()
	})
	return blob, err
}

// executeRun is the chokepoint every experiment simulation goes
// through: fork from the shared prefix when one is already cached, run
// straight through otherwise. Prefixes are only *computed* by the sweep
// planner's warm phase (RunSpecs) for groups that actually share one —
// a solo run never pays for a snapshot nobody will fork. A restore
// failure (a program whose yield sequence diverges from the cached
// prefix) falls back to a straight run — correctness never depends on
// the cache.
//
// It is also the fault boundary: an OpFail fault firing at an engine
// site panics with its *faults.Injected, which the deferred recover
// here converts into an error after reaping the engine's parked
// threads (no goroutine leaks, under -race). A fault-free, unbudgeted
// configuration takes the exact code path it always did and cannot
// return an error.
func executeRun(b workloads.Bench, cfg core.Config) (res core.Result, err error) {
	var sys *core.System
	if cfg.Faults != nil {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if !faults.IsInjected(r) {
				panic(r)
			}
			if sys != nil {
				sys.Reap()
				sys.Release()
			}
			res, err = core.Result{}, fmt.Errorf("experiments: run aborted by %w", r.(error))
		}()
		if inj := cfg.Faults.Hit(faults.SitePoolWorker); inj != nil {
			if inj.Op == faults.OpFail {
				return core.Result{}, fmt.Errorf("experiments: %w", inj)
			}
			chaosSleep(inj.Delay)
		}
	}
	if checkpointsOn && prefixShareable(b, cfg) {
		useCache := true
		if inj := cfg.Faults.Hit(faults.SiteStoreGet); inj != nil {
			if inj.Op == faults.OpFail {
				useCache = false // degraded cache: fall back to a straight run
			} else {
				chaosSleep(inj.Delay)
			}
		}
		if useCache {
			if blob, ok := ckptStore.Get(prefixKey(b.Name, cfg)); ok && blob != nil {
				sys = core.Build(cfg)
				prog := b.Build(&sys.Ctx)
				if rerr := sys.RestoreCheckpoint(blob, prog); rerr == nil {
					r := sys.ResumeRun()
					if sys.BudgetExceeded() {
						sys.Reap()
						sys.Release()
						return core.Result{}, fmt.Errorf("%s/%s run aborted after %v simulated: %w",
							cfg.Host, cfg.Accel, r.SimTime, core.ErrBudgetExceeded)
					}
					sys.Release()
					noteWall(r)
					return r, nil
				}
				sys.Release() // fall back to a straight run on a fresh build
			}
		}
	}
	sys = core.Build(cfg)
	r, rerr := sys.TryRun(b.Build(&sys.Ctx))
	sys.Release()
	if rerr != nil {
		return core.Result{}, rerr
	}
	noteWall(r)
	return r, nil
}

// PrefixGroups partitions normalized specs into groups that share one
// simulation prefix (the sweep planner's grouping step). Non-shareable
// specs each form their own singleton group. Group order follows first
// appearance; indices within a group stay in spec order.
func PrefixGroups(norm []Spec) [][]int {
	var order []string
	groups := make(map[string][]int)
	for i, n := range norm {
		b, cfg := buildNormalized(n)
		key := fmt.Sprintf("solo|%d", i)
		if prefixShareable(b, cfg) {
			key = prefixKey(b.Name, cfg)
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	out := make([][]int, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out
}
