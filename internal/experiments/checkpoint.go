package experiments

import (
	"fmt"

	"nexsim/internal/checkpoint"
	"nexsim/internal/core"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// defaultHostClock mirrors core.Build's host clock default.
const defaultHostClock = 3 * vclock.GHz

// Checkpointed sweep execution (prefix sharing): the points of a design
// sweep differ only in accelerator-side ("late-binding") parameters —
// accelerator engine, clock, fabric profile and latency, DMA level,
// channel integration — while the host-side prefix up to the first
// device interaction is identical. With checkpoints enabled, the
// planner groups runs by their normalized prefix, executes each group's
// prefix once, snapshots the engine at the divergence point, and forks
// every group member from the blob. Forked runs are byte-identical to
// straight-through runs (the engine-level differential tests pin this),
// so enabling checkpoints changes wall-clock time only.

// checkpointsOn gates the prefix-sharing planner. Like parallelism, it
// is set before experiments run (cmd/paperbench -checkpoints, simserve
// config), never while one is running.
var checkpointsOn = false

// ckptStore caches prefix blobs across runs and requests,
// content-addressed by the normalized prefix key. 256MB bounds the
// resident blobs; least-recently-forked prefixes evict first.
var ckptStore = checkpoint.NewStore(256 << 20)

// SetCheckpoints enables or disables checkpointed sweep execution. Not
// safe to call while an experiment is running.
func SetCheckpoints(on bool) { checkpointsOn = on }

// CheckpointsEnabled reports whether the prefix-sharing planner is on.
func CheckpointsEnabled() bool { return checkpointsOn }

// CheckpointStats reports the prefix store's hit/miss/eviction counters
// (exposed by simserve's /metrics).
func CheckpointStats() checkpoint.StoreStats { return ckptStore.Stats() }

// ResetCheckpointStore drops every cached prefix (tests).
func ResetCheckpointStore() { ckptStore = checkpoint.NewStore(256 << 20) }

// prefixShareable reports whether a run can fork from a shared prefix:
// a NEX host driving at least one accelerator, without trace recording
// (journal replay does not reproduce trace spans).
func prefixShareable(b workloads.Bench, cfg core.Config) bool {
	return cfg.Host == core.HostNEX && cfg.Trace == nil &&
		cfg.Model != core.AccelNone && b.Model != core.AccelNone
}

// prefixConfig strips the late-binding fields off a run's configuration,
// leaving the host-side prefix configuration every group member shares.
// Everything cleared here is unobservable before the first device
// interaction: the accelerator engine and clock only shape device
// behavior, and the fabric/DMA/channel attachment is only traversed by
// device interactions.
func prefixConfig(cfg core.Config) core.Config {
	cfg.Accel = core.AccelDSim
	cfg.AccelClock = 0
	cfg.Fabric = nil
	cfg.DMATarget = core.DMALLC
	cfg.UseChannel = false
	cfg.IOTLB = nil
	return cfg
}

// prefixKey is the content key of a run's shared prefix: the bench plus
// every host-side parameter, with core.Build's defaulting applied so
// implicit and explicit spellings share one key.
func prefixKey(bench string, cfg core.Config) string {
	clock := cfg.Clock
	if clock == 0 {
		clock = defaultHostClock
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 16
	}
	devices := cfg.Devices
	if cfg.Model != core.AccelNone && devices <= 0 {
		devices = 1
	}
	return fmt.Sprintf("%s|%v|%s|%d|%d|%d|%d|%t|%d|%d|%d|%d|%d",
		bench, cfg.Host, cfg.Model, devices, cores, cfg.Seed, clock,
		cfg.NEXNoTick, cfg.NEX.Epoch, cfg.NEX.VirtualCores,
		cfg.NEX.PhysicalCores, cfg.NEX.Mode, cfg.NEX.SyncInterval)
}

// warmPrefix runs (or joins) the group's shared prefix and returns its
// snapshot blob; nil means the program completed without touching a
// device (cached as a negative entry so the group falls back to
// straight runs without re-probing).
func warmPrefix(b workloads.Bench, cfg core.Config) ([]byte, error) {
	key := prefixKey(b.Name, cfg)
	blob, _, err := ckptStore.GetOrCompute(key, func() ([]byte, error) {
		psys := core.Build(prefixConfig(cfg))
		defer psys.Release()
		if _, completed := psys.RunPrefix(b.Build(&psys.Ctx)); completed {
			return nil, nil
		}
		return psys.Checkpoint()
	})
	return blob, err
}

// executeRun is the chokepoint every experiment simulation goes
// through: fork from the shared prefix when one is already cached, run
// straight through otherwise. Prefixes are only *computed* by the sweep
// planner's warm phase (RunSpecs) for groups that actually share one —
// a solo run never pays for a snapshot nobody will fork. A restore
// failure (a program whose yield sequence diverges from the cached
// prefix) falls back to a straight run — correctness never depends on
// the cache.
func executeRun(b workloads.Bench, cfg core.Config) core.Result {
	if checkpointsOn && prefixShareable(b, cfg) {
		if blob, ok := ckptStore.Get(prefixKey(b.Name, cfg)); ok && blob != nil {
			sys := core.Build(cfg)
			prog := b.Build(&sys.Ctx)
			if rerr := sys.RestoreCheckpoint(blob, prog); rerr == nil {
				r := sys.ResumeRun()
				sys.Release()
				return r
			}
			sys.Release() // fall back to a straight run on a fresh build
		}
	}
	sys := core.Build(cfg)
	r := sys.Run(b.Build(&sys.Ctx))
	sys.Release()
	return r
}

// PrefixGroups partitions normalized specs into groups that share one
// simulation prefix (the sweep planner's grouping step). Non-shareable
// specs each form their own singleton group. Group order follows first
// appearance; indices within a group stay in spec order.
func PrefixGroups(norm []Spec) [][]int {
	var order []string
	groups := make(map[string][]int)
	for i, n := range norm {
		b, cfg := buildNormalized(n)
		key := fmt.Sprintf("solo|%d", i)
		if prefixShareable(b, cfg) {
			key = prefixKey(b.Name, cfg)
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	out := make([][]int, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out
}
