package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/faults"
	"nexsim/internal/interconnect"
	"nexsim/internal/nex"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// Spec is the structured description of one simulation run: which
// catalogued benchmark, which host and accelerator engines, and the
// configuration overrides the evaluation sweeps over. It is the shared
// entry point of the table experiments and the simserve daemon, and it
// is designed to round-trip through JSON: zero-valued fields mean "use
// the repository default", so a Spec naming only a bench is complete.
//
// Specs are content-addressable: ID() hashes the canonical encoding of
// the normalized spec, so two requests that differ only in spelling
// (explicit defaults vs omitted fields) share one address. Every engine
// is deterministic in the spec — same Spec, same Result — which is what
// makes address-keyed result caching sound.
type Spec struct {
	Bench string `json:"bench"`
	Host  string `json:"host,omitempty"`  // "reference" | "nex" | "gem5" (default "nex")
	Accel string `json:"accel,omitempty"` // "dsim" | "rtl" (default "dsim")

	Cores   int    `json:"cores,omitempty"`   // host cores (default 16)
	Devices int    `json:"devices,omitempty"` // accelerator instances (default: bench's)
	Seed    uint64 `json:"seed,omitempty"`    // calibration seed (default 42)

	ClockMHz      int64 `json:"clock_mhz,omitempty"`       // host clock (default 3000)
	AccelClockMHz int64 `json:"accel_clock_mhz,omitempty"` // accel clock (default 2000)

	// NEX overrides (ignored for other hosts).
	EpochNS        int64  `json:"epoch_ns,omitempty"`
	VirtualCores   int    `json:"virtual_cores,omitempty"`
	PhysicalCores  int    `json:"physical_cores,omitempty"`
	SyncMode       string `json:"sync_mode,omitempty"` // "lazy" | "eager" | "hybrid" (default "lazy")
	SyncIntervalNS int64  `json:"sync_interval_ns,omitempty"`
	NoTick         bool   `json:"no_tick,omitempty"`

	// Attachment overrides.
	Fabric        string `json:"fabric,omitempty"`          // "pcie" | "onchip" (default: model's)
	LinkLatencyNS int64  `json:"link_latency_ns,omitempty"` // fabric one-way latency
	DMATarget     string `json:"dma_target,omitempty"`      // "llc" | "l2" (default "llc")
	UseChannel    bool   `json:"use_channel,omitempty"`

	// Robustness overrides. MaxEpochs bounds the host engine (NEX epochs
	// or exact-host steps; 0 = unbounded) — an over-budget run aborts
	// with core.ErrBudgetExceeded instead of wedging its worker. Faults
	// is a deterministic fault plan evaluated by internal/faults: the
	// plan is part of the content-addressed spec, so re-submitting a
	// failing run re-fires the same fault at the same site crossing.
	// Both are omitempty, so fault-free specs keep their historical
	// content addresses.
	MaxEpochs int64       `json:"max_epochs,omitempty"`
	Faults    []FaultSpec `json:"faults,omitempty"`
}

// FaultSpec is the wire form of one fault in a spec's plan (lowered to
// faults.Fault). See internal/faults for the firing semantics.
type FaultSpec struct {
	Site     string  `json:"site"`               // one of faults.Sites()
	Op       string  `json:"op,omitempty"`       // "fail" (default) | "delay"
	Hit      int64   `json:"hit,omitempty"`      // fire on the nth site crossing (default: first)
	Attempts int     `json:"attempts,omitempty"` // armed only while attempt < this (0 = every attempt)
	Rate     float64 `json:"rate,omitempty"`     // probabilistic firing in [0,1] (0 = scheduled only)
	DelayPS  int64   `json:"delay_ps,omitempty"` // delay magnitude (default 1µs for delay ops)
}

// hostKinds / accelKinds / syncModes / dmaTargets map the spec's string
// enums onto engine constants. Strings (not ints) keep the JSON wire
// format self-describing.
var hostKinds = map[string]core.HostKind{
	"reference": core.HostReference,
	"nex":       core.HostNEX,
	"gem5":      core.HostGem5,
}

var accelKinds = map[string]core.AccelKind{
	"dsim": core.AccelDSim,
	"rtl":  core.AccelRTL,
}

var syncModes = map[string]nex.SyncMode{
	"lazy":   nex.Lazy,
	"eager":  nex.Eager,
	"hybrid": nex.Hybrid,
}

var dmaTargets = map[string]core.DMALevel{
	"llc": core.DMALLC,
	"l2":  core.DMAL2,
}

// fabricProfiles are the named interconnect attachments a spec can pick
// (latency is overridable via LinkLatencyNS on top of the profile).
var fabricProfiles = map[string]interconnect.Config{
	"pcie":   interconnect.PCIe400,
	"onchip": interconnect.OnChip4,
}

// defaultFabricName mirrors core.Build's per-accelerator attachment
// default.
func defaultFabricName(model core.AccelModel) string {
	if model == core.AccelProtoacc {
		return "onchip"
	}
	return "pcie"
}

// Normalized validates s and returns a copy with every defaulted field
// made explicit — the canonical form that ID() hashes and RunSpec
// executes. The zero-valued and the explicit-default spelling of the
// same run normalize identically.
func (s Spec) Normalized() (Spec, error) {
	b, err := workloads.ByName(s.Bench)
	if err != nil {
		return Spec{}, err
	}
	if s.Host == "" {
		s.Host = core.HostNEX.String()
	}
	if _, ok := hostKinds[s.Host]; !ok {
		return Spec{}, fmt.Errorf("experiments: unknown host %q (want reference, nex, or gem5)", s.Host)
	}
	if s.Accel == "" {
		s.Accel = core.AccelDSim.String()
	}
	if _, ok := accelKinds[s.Accel]; !ok {
		return Spec{}, fmt.Errorf("experiments: unknown accel %q (want dsim or rtl)", s.Accel)
	}
	if s.SyncMode == "" {
		s.SyncMode = "lazy"
	}
	if _, ok := syncModes[s.SyncMode]; !ok {
		return Spec{}, fmt.Errorf("experiments: unknown sync_mode %q (want lazy, eager, or hybrid)", s.SyncMode)
	}
	if s.DMATarget == "" {
		s.DMATarget = "llc"
	}
	if _, ok := dmaTargets[s.DMATarget]; !ok {
		return Spec{}, fmt.Errorf("experiments: unknown dma_target %q (want llc or l2)", s.DMATarget)
	}
	if s.Fabric == "" {
		s.Fabric = defaultFabricName(b.Model)
	}
	if _, ok := fabricProfiles[s.Fabric]; !ok {
		return Spec{}, fmt.Errorf("experiments: unknown fabric %q (want pcie or onchip)", s.Fabric)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"cores", int64(s.Cores)}, {"devices", int64(s.Devices)},
		{"clock_mhz", s.ClockMHz}, {"accel_clock_mhz", s.AccelClockMHz},
		{"epoch_ns", s.EpochNS}, {"virtual_cores", int64(s.VirtualCores)},
		{"physical_cores", int64(s.PhysicalCores)}, {"sync_interval_ns", s.SyncIntervalNS},
		{"link_latency_ns", s.LinkLatencyNS},
	} {
		if f.v < 0 {
			return Spec{}, fmt.Errorf("experiments: spec field %s must not be negative", f.name)
		}
	}
	if s.Cores == 0 {
		s.Cores = 16
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Devices == 0 {
		s.Devices = b.Devices
	}
	if s.ClockMHz == 0 {
		s.ClockMHz = int64(3 * vclock.GHz / vclock.MHz)
	}
	if s.AccelClockMHz == 0 {
		s.AccelClockMHz = int64(2 * vclock.GHz / vclock.MHz)
	}
	if s.LinkLatencyNS == 0 {
		s.LinkLatencyNS = int64(fabricProfiles[s.Fabric].LinkLatency / vclock.Nanosecond)
	}
	if s.MaxEpochs < 0 {
		return Spec{}, fmt.Errorf("experiments: spec field max_epochs must not be negative")
	}
	if len(s.Faults) > 0 {
		fs := make([]FaultSpec, len(s.Faults))
		copy(fs, s.Faults)
		for i := range fs {
			f := &fs[i]
			if !faults.KnownSite(f.Site) {
				return Spec{}, fmt.Errorf("experiments: fault %d: unknown site %q (want one of %v)", i, f.Site, faults.Sites())
			}
			if f.Op == "" {
				f.Op = faults.OpFail.String()
			}
			op, err := faults.ParseOp(f.Op)
			if err != nil {
				return Spec{}, fmt.Errorf("experiments: fault %d: %w", i, err)
			}
			if f.Hit < 0 || f.Attempts < 0 || f.DelayPS < 0 {
				return Spec{}, fmt.Errorf("experiments: fault %d: hit, attempts and delay_ps must not be negative", i)
			}
			if f.Rate < 0 || f.Rate > 1 {
				return Spec{}, fmt.Errorf("experiments: fault %d: rate must be in [0, 1]", i)
			}
			switch op {
			case faults.OpDelay:
				if f.DelayPS == 0 {
					f.DelayPS = int64(vclock.Microsecond)
				}
			default:
				f.DelayPS = 0 // meaningless for fail; canonicalize away
			}
			if f.Hit == 0 && f.Rate == 0 {
				f.Hit = 1
			}
		}
		s.Faults = fs
	}
	return s, nil
}

// faultPlan lowers the normalized wire plan into the injector's form.
func faultPlan(n Spec) []faults.Fault {
	plan := make([]faults.Fault, len(n.Faults))
	for i, f := range n.Faults {
		op, _ := faults.ParseOp(f.Op) // validated by Normalized
		// f.Site comes off the wire, so it cannot be a constant; it was
		// checked against faults.KnownSite by Normalized.
		plan[i] = faults.Fault{Site: f.Site, //simlint:allow fault-site-registry Site validated by Normalized
			Op: op, Hit: f.Hit,
			Attempts: f.Attempts, Rate: f.Rate, Delay: f.DelayPS}
	}
	return plan
}

// applyRobustness installs the spec's budget and fault plan on an
// engine configuration for one run attempt. wall is the caller's
// per-run wall budget (simserve's -run-budget; 0 = none). The injector
// seed derives from the spec seed, so the same spec re-fires the same
// schedule; attempt distinguishes retries.
func applyRobustness(cfg *core.Config, n Spec, attempt int, wall time.Duration) {
	cfg.Budget.MaxEpochs = n.MaxEpochs
	cfg.Budget.MaxWall = wall
	if len(n.Faults) > 0 {
		cfg.Faults = faults.NewInjector(n.Seed, attempt, faultPlan(n))
	}
}

// CanonicalJSON returns the canonical encoding of the normalized spec:
// a single deterministic JSON object (fixed field order, explicit
// defaults) suitable for hashing and for byte-compare caching.
func (s Spec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// ID returns the spec's content address: the hex SHA-256 of its
// canonical encoding.
func (s Spec) ID() (string, error) {
	data, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RunSpec executes one spec to completion and returns the engine
// result. It is the structured twin of the table experiments' internal
// run helper: the daemon submits Specs over HTTP, experiments enumerate
// them in code, and both execute through this one path.
func RunSpec(s Spec) (core.Result, error) { return RunSpecAttempt(s, 0, 0) }

// RunSpecAttempt executes one spec as run attempt number attempt, under
// an optional per-run wall budget. The attempt number feeds the fault
// injector: Attempts-windowed faults expire on later attempts (the
// self-healing retry path) and Rate draws differ per attempt. A
// fault-free spec ignores attempt entirely, so retrying a deterministic
// run cannot change its result.
func RunSpecAttempt(s Spec, attempt int, wall time.Duration) (core.Result, error) {
	n, err := s.Normalized()
	if err != nil {
		return core.Result{}, err
	}
	b, cfg := buildNormalized(n)
	applyRobustness(&cfg, n, attempt, wall)
	return executeRun(b, cfg)
}

// RunSpecs validates every spec up front, executes them through the
// sweep executor (respecting SetParallelism, like every experiment),
// and returns results in spec order.
func RunSpecs(specs []Spec) ([]core.Result, error) {
	norm := make([]Spec, len(specs))
	for i, s := range specs {
		n, err := s.Normalized()
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		norm[i] = n
	}
	if CheckpointsEnabled() {
		// Prefix-sharing plan: warm every multi-member group's shared
		// prefix first (one snapshot per group, fanned across the worker
		// pool), so the per-spec jobs below all fork from warm blobs
		// instead of racing to produce them.
		var warm []func() struct{}
		for _, g := range PrefixGroups(norm) {
			if len(g) < 2 {
				continue
			}
			b, cfg := buildNormalized(norm[g[0]])
			applyRobustness(&cfg, norm[g[0]], 0, 0)
			warm = append(warm, func() struct{} {
				// A warm failure is not fatal: the per-spec jobs fall
				// back to straight runs.
				_, _ = warmPrefix(b, cfg)
				return struct{}{}
			})
		}
		runJobs(warm)
	}
	jobs := make([]func() core.Result, len(norm))
	for i := range norm {
		n := norm[i]
		jobs[i] = func() core.Result { return runNormalized(n) }
	}
	return runJobs(jobs), nil
}

// buildNormalized translates one already-normalized spec into the bench
// and engine configuration it runs.
func buildNormalized(n Spec) (workloads.Bench, core.Config) {
	b := benchByName(n.Bench)
	cfg := core.Config{
		Host:       hostKinds[n.Host],
		Accel:      accelKinds[n.Accel],
		Model:      b.Model,
		Devices:    n.Devices,
		Cores:      n.Cores,
		Seed:       n.Seed,
		Clock:      vclock.Hz(n.ClockMHz) * vclock.MHz,
		AccelClock: vclock.Hz(n.AccelClockMHz) * vclock.MHz,
		DMATarget:  dmaTargets[n.DMATarget],
		NEXNoTick:  n.NoTick,
		UseChannel: n.UseChannel,
		// Execution knob, not spec content: intra-parallel runs are
		// byte-identical to serial, so the content address must not
		// fragment across intra settings.
		IntraParallel: intra,
	}
	profile := fabricProfiles[n.Fabric]
	lat := vclock.Duration(n.LinkLatencyNS) * vclock.Nanosecond
	if n.Fabric != defaultFabricName(b.Model) || lat != profile.LinkLatency {
		fab := profile.WithLatency(lat)
		cfg.Fabric = &fab
	}
	cfg.NEX.Epoch = vclock.Duration(n.EpochNS) * vclock.Nanosecond
	cfg.NEX.VirtualCores = n.VirtualCores
	cfg.NEX.PhysicalCores = n.PhysicalCores
	cfg.NEX.Mode = syncModes[n.SyncMode]
	cfg.NEX.SyncInterval = vclock.Duration(n.SyncIntervalNS) * vclock.Nanosecond
	return b, cfg
}

// runNormalized assembles and runs one already-normalized spec. It
// panics on a run error (injected fault or budget abort): the sweep
// paths that use it (RunSpecs, tables) run fault-free plans, where
// executeRun cannot fail.
func runNormalized(n Spec) core.Result {
	b, cfg := buildNormalized(n)
	applyRobustness(&cfg, n, 0, 0)
	r, err := executeRun(b, cfg)
	if err != nil {
		panic(err)
	}
	return r
}
