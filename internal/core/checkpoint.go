package core

import (
	"fmt"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/checkpoint"
)

// Checkpoint/fork support (sweep prefix sharing): a NEX-hosted system
// can run an application prefix up to the first device interaction,
// serialize the full engine + device state into a content-addressed
// blob, and later fork any number of continuations from it — each
// byte-identical to a straight-through run. The host side is captured
// by the NEX journal snapshot (thread states regenerate by replay);
// each device contributes its own section when it knows how to
// serialize itself, and is otherwise restored to its idle re-clocked
// state by the engine (sound because the prefix ends strictly before
// the first interaction with it).

// stateful is implemented by devices that serialize their own dynamic
// state (dsim.Base and everything embedding it).
type stateful interface {
	SnapshotTo(*checkpoint.Encoder)
	RestoreFrom(*checkpoint.Decoder) error
}

// unwrap peels channel adapters off a device for state access.
func unwrap(d accel.Device) accel.Device {
	type unwrapper interface{ Unwrap() accel.Device }
	for {
		u, ok := d.(unwrapper)
		if !ok {
			return d
		}
		d = u.Unwrap()
	}
}

// CanCheckpoint reports whether this system supports prefix
// checkpointing: a NEX host without trace recording.
func (s *System) CanCheckpoint() bool {
	return s.nexEng != nil && s.cfg.Trace == nil
}

// RunPrefix runs prog up to (but not including) the first device
// interaction. When the program reaches a device, it returns
// (zero Result, false) with the system halted and checkpointable; when
// the program completes without touching a device, it returns the full
// result and true. Non-checkpointable systems run to completion.
func (s *System) RunPrefix(prog app.Program) (Result, bool) {
	if !s.CanCheckpoint() {
		return s.Run(prog), true
	}
	start := time.Now() //simlint:allow nondet-time Result.WallTime is speed reporting, never simulation state
	r, completed := s.nexEng.RunPrefix(prog)
	if !completed {
		return Result{}, false
	}
	wall := time.Since(start) //simlint:allow nondet-time
	res := Result{SimTime: r.SimTime, WallTime: wall,
		Host: s.cfg.Host, Accel: s.cfg.Accel, NEXStats: r.Stats}
	for _, d := range s.binds {
		// RunPrefix never calls startCrew (only Run and ResumeRun do,
		// and both defer stopCrew), so no lane can be live here. The
		// open window the analysis reports is the flow-insensitive
		// summary of advanceDevices' crew-not-nil branch.
		res.Devices = append(res.Devices, d.Stats()) //simlint:allow lane-safety RunPrefix never starts a crew
	}
	return res, true
}

// Checkpoint serializes the halted system into a blob. Two systems that
// ran the same prefix produce byte-identical blobs, so the blob's
// checkpoint.Hash is a content address usable as a sharing key.
func (s *System) Checkpoint() ([]byte, error) {
	if s.nexEng == nil {
		return nil, fmt.Errorf("core: checkpointing requires a NEX host")
	}
	if s.cfg.Trace != nil {
		return nil, fmt.Errorf("core: checkpointing is incompatible with trace recording")
	}
	enc := checkpoint.NewEncoder()
	if err := s.nexEng.SnapshotTo(enc); err != nil {
		return nil, err
	}
	// Device sections are length-framed sub-blobs: a restore target that
	// cannot consume one (a different accelerator engine bound at the
	// divergence point) skips it — sound because the prefix ended
	// strictly before the first interaction with any device, so every
	// section is the device's idle state and the engine's re-clocking
	// reproduces it for opaque devices.
	enc.Int(len(s.binds))
	for _, d := range s.binds {
		if st, ok := unwrap(d).(stateful); ok {
			sub := checkpoint.NewEncoder()
			st.SnapshotTo(sub)
			enc.Bytes8(sub.Bytes())
		} else {
			enc.Bytes8(nil)
		}
	}
	return enc.Bytes(), nil
}

// RestoreCheckpoint rebuilds a checkpointed run into this freshly built
// system. prog must be the same program the snapshotted system ran.
func (s *System) RestoreCheckpoint(blob []byte, prog app.Program) error {
	if s.nexEng == nil {
		return fmt.Errorf("core: checkpointing requires a NEX host")
	}
	dec, err := checkpoint.NewDecoder(blob)
	if err != nil {
		return err
	}
	if err := s.nexEng.Restore(dec, prog); err != nil {
		return err
	}
	nd := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nd != len(s.binds) {
		return fmt.Errorf("%w: checkpoint has %d devices, system has %d", checkpoint.ErrCorrupt, nd, len(s.binds))
	}
	for i, d := range s.binds {
		section := dec.Bytes8()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(section) == 0 {
			continue
		}
		st, ok := unwrap(d).(stateful)
		if !ok {
			// Opaque target: the engine already re-clocked it; the
			// section describes the same idle state, so skip it.
			continue
		}
		sub, err := checkpoint.NewDecoder(section)
		if err != nil {
			return fmt.Errorf("device %d (%s): %w", i, d.Name(), err)
		}
		if err := st.RestoreFrom(sub); err != nil {
			return fmt.Errorf("device %d (%s): %w", i, d.Name(), err)
		}
		if !sub.Done() {
			return fmt.Errorf("%w: device %d (%s) section has trailing bytes", checkpoint.ErrCorrupt, i, d.Name())
		}
	}
	if !dec.Done() {
		return fmt.Errorf("%w: %d trailing bytes after restore", checkpoint.ErrCorrupt, dec.Remaining())
	}
	return nil
}

// ResumeRun continues a halted (prefix-run or restored) system to
// completion. The result matches what Run would have returned on a
// straight-through execution, except WallTime covers only the resumed
// portion.
func (s *System) ResumeRun() Result {
	start := time.Now() //simlint:allow nondet-time Result.WallTime is speed reporting, never simulation state
	r := s.nexEng.ResumeRun()
	wall := time.Since(start) //simlint:allow nondet-time
	res := Result{SimTime: r.SimTime, WallTime: wall,
		Host: s.cfg.Host, Accel: s.cfg.Accel, NEXStats: r.Stats}
	for _, d := range s.binds {
		res.Devices = append(res.Devices, d.Stats())
	}
	return res
}
