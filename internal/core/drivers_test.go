package core_test

import (
	"bytes"
	"testing"

	"nexsim/internal/accel/jpeg"
	"nexsim/internal/accel/protoacc"
	"nexsim/internal/accel/vta"
	"nexsim/internal/app"
	"nexsim/internal/core"
	"nexsim/internal/mem"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
	"nexsim/internal/xrand"
)

// TestJPEGDriverEndToEnd runs the full stack — driver, traps, fabric,
// DSim decode — under every host engine and verifies the decoded pixels
// land in simulated memory.
func TestJPEGDriverEndToEnd(t *testing.T) {
	img := jpeg.NewImage(64, 48)
	rng := xrand.New(3)
	for i := range img.Pix {
		img.Pix[i] = byte(rng.Intn(256))
	}
	data := jpeg.Encode(img, 85, jpeg.Sub444)
	want, _, err := jpeg.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	for _, host := range []core.HostKind{core.HostReference, core.HostNEX, core.HostGem5} {
		host := host
		t.Run(host.String(), func(t *testing.T) {
			sys := core.Build(core.Config{
				Host: host, Accel: core.AccelDSim, Model: core.AccelJPEG,
				Cores: 4, Seed: 1,
			})
			src := sys.Ctx.Arena
			dst := sys.Ctx.Arena + 1<<20
			sys.Run(app.Program{Main: func(e app.Env) {
				e.Mem().WriteAt(src, data)
				drv := jpeg.NewDriver(sys.Ctx.MMIO[0], sys.Ctx.TaskBufs[0], 4)
				drv.Submit(e, jpeg.Desc{Src: src, SrcLen: uint32(len(data)), Dst: dst})
				drv.WaitAll(e, 0)
			}})
			got := make([]byte, len(want.Pix))
			sys.Ctx.Mem.ReadAt(dst, got)
			if !bytes.Equal(got, want.Pix) {
				t.Fatal("decoded pixels differ from functional decode")
			}
		})
	}
}

// TestJPEGDriverIRQ exercises the interrupt path end to end under NEX
// hybrid synchronization.
func TestJPEGDriverIRQ(t *testing.T) {
	img := jpeg.NewImage(32, 32)
	data := jpeg.Encode(img, 80, jpeg.Sub420)

	cfg := core.Config{
		Host: core.HostNEX, Accel: core.AccelDSim, Model: core.AccelJPEG,
		Cores: 4, Seed: 1,
	}
	cfg.NEX.Mode = 2 // hybrid
	cfg.NEX.SyncInterval = 10 * vclock.Microsecond
	sys := core.Build(cfg)
	src := sys.Ctx.Arena
	done := false
	sys.Run(app.Program{Main: func(e app.Env) {
		e.Mem().WriteAt(src, data)
		drv := jpeg.NewDriver(sys.Ctx.MMIO[0], sys.Ctx.TaskBufs[0], 4)
		drv.EnableIRQ(e)
		drv.Submit(e, jpeg.Desc{Src: src, SrcLen: uint32(len(data)), Dst: src + 1<<20})
		drv.WaitAllIRQ(e)
		done = true
	}})
	if !done {
		t.Fatal("IRQ wait never completed")
	}
}

// TestVTADriverEndToEnd runs a compiled GEMM through the driver under
// NEX and checks the result against the CPU reference.
func TestVTADriverEndToEnd(t *testing.T) {
	task := vta.GemmTask{M: 32, N: 16, K: 24, Shift: 6, ReLU: true}
	rng := xrand.New(9)
	a := make([]int8, task.M*task.K)
	bm := make([]int8, task.N*task.K)
	for i := range a {
		a[i] = int8(rng.Intn(256) - 128)
	}
	for i := range bm {
		bm[i] = int8(rng.Intn(256) - 128)
	}

	sys := core.Build(core.Config{
		Host: core.HostNEX, Accel: core.AccelDSim, Model: core.AccelVTA,
		Cores: 4, Seed: 1,
	})
	task.A = sys.Ctx.Arena
	task.B = sys.Ctx.Arena + 1<<20
	task.C = sys.Ctx.Arena + 2<<20
	sys.Run(app.Program{Main: func(e app.Env) {
		vta.StoreOperands(e.Mem(), task, a, bm, nil)
		drv := vta.NewDriver(sys.Ctx.MMIO[0], sys.Ctx.TaskBufs[0], sys.Ctx.Arena+4<<20, 8)
		prog, err := vta.Compile(task)
		if err != nil {
			panic(err)
		}
		drv.Launch(e, prog)
		drv.WaitAll(e, 0)
	}})

	want := vta.ReferenceGemm(task, a, bm, nil)
	got := make([]byte, len(want))
	sys.Ctx.Mem.ReadAt(task.C, got)
	for i := range want {
		if int8(got[i]) != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, int8(got[i]), want[i])
		}
	}
}

// TestProtoaccBatchOutOfOrderSizes verifies the addressed-store design:
// wildly different task sizes in one batch must each land at their own
// output address even if they complete out of submission order.
func TestProtoaccBatchOutOfOrderSizes(t *testing.T) {
	big := &protoacc.MessageDesc{Name: "big", Fields: []protoacc.FieldDesc{
		{Number: 1, Kind: protoacc.KindBytes},
	}}
	small := &protoacc.MessageDesc{Name: "small", Fields: []protoacc.FieldDesc{
		{Number: 1, Kind: protoacc.KindInt64},
	}}

	sys := core.Build(core.Config{
		Host: core.HostReference, Accel: core.AccelDSim, Model: core.AccelProtoacc,
		Cores: 4, Seed: 1,
	})
	dev := sys.Ctx.Devices[0].(*protoacc.Device)
	dev.RegisterSchema(1, big)
	dev.RegisterSchema(2, small)

	bigMsg := protoacc.NewMessage(big)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	bigMsg.Values[0] = protoacc.Value{Bytes: payload, Set: true}
	smallMsg := protoacc.NewMessage(small)
	smallMsg.Values[0] = protoacc.Value{Int: 777, Set: true}

	var outBig, outSmall mem.Addr
	sys.Run(app.Program{Main: func(e app.Env) {
		layBig := protoacc.Store(e.Mem(), sys.Ctx.Arena, bigMsg)
		laySmall := protoacc.Store(e.Mem(), sys.Ctx.Arena+1<<20, smallMsg)
		outBig = sys.Ctx.Arena + 2<<20
		outSmall = sys.Ctx.Arena + 3<<20
		drv := protoacc.NewDriver(sys.Ctx.MMIO[0], sys.Ctx.TaskBufs[0], 16)
		drv.BatchSize = 2
		// The big task is submitted first but takes far longer; the small
		// one completes first.
		drv.Submit(e, protoacc.Desc{Root: layBig.Root, Out: outBig, Schema: 1})
		drv.Submit(e, protoacc.Desc{Root: laySmall.Root, Out: outSmall, Schema: 2})
		drv.WaitAll(e, 0)
	}})

	checkWire := func(addr mem.Addr, desc *protoacc.MessageDesc) *protoacc.Message {
		var lenb [4]byte
		sys.Ctx.Mem.ReadAt(addr, lenb[:])
		n := uint32(lenb[0]) | uint32(lenb[1])<<8 | uint32(lenb[2])<<16 | uint32(lenb[3])<<24
		wire := make([]byte, n)
		sys.Ctx.Mem.ReadAt(addr+4, wire)
		m, err := protoacc.Unmarshal(desc, wire)
		if err != nil {
			t.Fatalf("output at %#x invalid: %v", uint64(addr), err)
		}
		return m
	}
	gotBig := checkWire(outBig, big)
	if !bytes.Equal(gotBig.Values[0].Bytes, payload) {
		t.Fatal("big task's payload corrupted")
	}
	gotSmall := checkWire(outSmall, small)
	if gotSmall.Values[0].Int != 777 {
		t.Fatal("small task's value corrupted")
	}
}

// TestTraceRecordsAccelAndThreads checks the coarse-grained trace output
// on a full run.
func TestTraceRecordsAccelAndThreads(t *testing.T) {
	rec := trace.New()
	b, _ := benchAndBuild(t, "jpeg-decode")
	cfg := core.Config{
		Host: core.HostNEX, Accel: core.AccelDSim, Model: b.Model,
		Devices: b.Devices, Cores: 8, Seed: 42, Trace: rec,
	}
	sys := core.Build(cfg)
	sys.Run(b.Build(&sys.Ctx))
	totals := rec.Totals()
	if len(totals) == 0 {
		t.Fatal("no trace recorded")
	}
	var compute vclock.Duration
	for _, kinds := range totals {
		compute += kinds[trace.Compute]
	}
	if compute <= 0 {
		t.Fatal("no compute time attributed")
	}
}

// TestChannelModeMatchesTight verifies the SimBricks channel is
// semantically transparent end to end: identical simulated time.
func TestChannelModeMatchesTight(t *testing.T) {
	b, _ := benchAndBuild(t, "vta-matmul")
	runWith := func(ch bool) vclock.Duration {
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim, Model: b.Model,
			Devices: b.Devices, Cores: 8, Seed: 42, UseChannel: ch,
		})
		return sys.Run(b.Build(&sys.Ctx)).SimTime
	}
	tight, chan_ := runWith(false), runWith(true)
	if tight != chan_ {
		t.Fatalf("channel changed simulated time: %v vs %v", tight, chan_)
	}
}

// TestDMAL2FasterOrEqual checks the DMA-target knob plumbs through.
func TestDMAL2FasterOrEqual(t *testing.T) {
	b, _ := benchAndBuild(t, "vta-resnet18")
	runWith := func(lvl core.DMALevel) vclock.Duration {
		sys := core.Build(core.Config{
			Host: core.HostReference, Accel: core.AccelDSim, Model: b.Model,
			Devices: b.Devices, Cores: 8, Seed: 42, DMATarget: lvl,
		})
		return sys.Run(b.Build(&sys.Ctx)).SimTime
	}
	llc, l2 := runWith(core.DMALLC), runWith(core.DMAL2)
	if l2 > llc+llc/10 {
		t.Fatalf("L2-served DMA materially slower than LLC: %v vs %v", l2, llc)
	}
}

// benchAndBuild fetches a catalogued benchmark.
func benchAndBuild(t *testing.T, name string) (workloads.Bench, error) {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b, err
}

// TestMultiAccelContention: multiple accelerators DMA-ing concurrently
// contend in the shared LLC/DRAM (paper §7: "NEX does simulate
// contention among multiple accelerators"): per-task busy time grows
// when 8 devices run the same tasks simultaneously.
func TestMultiAccelContention(t *testing.T) {
	perTaskBusy := func(devices int) vclock.Duration {
		b, _ := benchAndBuild(t, "jpeg-decode")
		_ = b
		sys := core.Build(core.Config{
			Host: core.HostReference, Accel: core.AccelDSim,
			Model: core.AccelJPEG, Devices: devices, Cores: 16, Seed: 42,
		})
		img := jpeg.NewImage(96, 96)
		rng := xrand.New(5)
		for i := range img.Pix {
			img.Pix[i] = byte(rng.Intn(256)) // noisy: large bitstream, heavy DMA
		}
		data := jpeg.Encode(img, 92, jpeg.Sub444)
		src := sys.Ctx.Arena
		sys.Run(app.Program{Main: func(e app.Env) {
			e.Mem().WriteAt(src, data)
			var wg app.WaitGroup
			wg.Add(devices)
			for d := 0; d < devices; d++ {
				d := d
				e.Spawn("w", func(we app.Env) {
					drv := jpeg.NewDriver(sys.Ctx.MMIO[d], sys.Ctx.TaskBufs[d], 4)
					drv.Submit(we, jpeg.Desc{Src: src, SrcLen: uint32(len(data)),
						Dst: src + mem.Addr(1+d)<<20})
					drv.WaitAll(we, 0)
					wg.Done(we)
				})
			}
			wg.Wait(e)
		}})
		var busy vclock.Duration
		for _, dev := range sys.Ctx.Devices {
			busy += dev.Stats().BusyTime
		}
		return busy / vclock.Duration(devices)
	}
	single := perTaskBusy(1)
	eight := perTaskBusy(8)
	if eight <= single {
		t.Fatalf("no contention visible: 1 dev %v, 8 devs %v per task", single, eight)
	}
}
