package core_test

import (
	"testing"

	"nexsim/internal/checkpoint"
	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/workloads"
)

// buildSys assembles a system + program for one bench and config shaper.
func buildSys(t *testing.T, bench string, shape func(*core.Config)) (*core.System, func() core.Result, string) {
	t.Helper()
	b, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	return sys, func() core.Result { return sys.Run(prog) }, bench
}

// checkpointOf runs the prefix on a fresh system and returns its blob.
func checkpointOf(t *testing.T, bench string, shape func(*core.Config)) []byte {
	t.Helper()
	b, _ := workloads.ByName(bench)
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	if _, completed := sys.RunPrefix(prog); completed {
		t.Fatalf("%s: prefix ran to completion", bench)
	}
	blob, err := sys.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", bench, err)
	}
	return blob
}

// resumeFrom restores blob into a fresh system and runs it out.
func resumeFrom(t *testing.T, blob []byte, bench string, shape func(*core.Config)) core.Result {
	t.Helper()
	b, _ := workloads.ByName(bench)
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	if err := sys.RestoreCheckpoint(blob, prog); err != nil {
		t.Fatalf("%s: restore: %v", bench, err)
	}
	return sys.ResumeRun()
}

// sameRun compares everything except wall-clock.
func sameRun(t *testing.T, label string, got, want core.Result) {
	t.Helper()
	if got.SimTime != want.SimTime {
		t.Errorf("%s: SimTime %v, want %v", label, got.SimTime, want.SimTime)
	}
	if got.NEXStats != want.NEXStats {
		t.Errorf("%s: NEXStats diverged:\n got  %+v\n want %+v", label, got.NEXStats, want.NEXStats)
	}
	if len(got.Devices) != len(want.Devices) {
		t.Fatalf("%s: %d device stats, want %d", label, len(got.Devices), len(want.Devices))
	}
	for i := range got.Devices {
		if got.Devices[i] != want.Devices[i] {
			t.Errorf("%s: device %d stats diverged:\n got  %+v\n want %+v",
				label, i, got.Devices[i], want.Devices[i])
		}
	}
}

// TestCheckpointResumeMatchesRun is the end-to-end fork differential:
// prefix+checkpoint+restore+resume must equal a straight run on every
// accelerator family.
func TestCheckpointResumeMatchesRun(t *testing.T) {
	for _, bench := range []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"} {
		_, straight, _ := buildSys(t, bench, nil)
		want := straight()
		blob := checkpointOf(t, bench, nil)
		got := resumeFrom(t, blob, bench, nil)
		sameRun(t, bench, got, want)
	}
}

// TestCheckpointSharedAcrossLateBinding: one prefix blob (taken on the
// normalized configuration) must fork correctly into every late-binding
// variant — different accelerator engine, DMA level, fabric, channel.
func TestCheckpointSharedAcrossLateBinding(t *testing.T) {
	const bench = "vta-resnet18"
	blob := checkpointOf(t, bench, nil) // normalized: DSim, default fabric, LLC

	onchip := interconnect.OnChip4
	variants := []struct {
		name  string
		shape func(*core.Config)
	}{
		{"accel-rtl", func(c *core.Config) { c.Accel = core.AccelRTL }},
		{"dma-l2", func(c *core.Config) { c.DMATarget = core.DMAL2 }},
		{"fabric-onchip", func(c *core.Config) { c.Fabric = &onchip }},
		{"channel", func(c *core.Config) { c.UseChannel = true }},
	}
	for _, v := range variants {
		_, straight, _ := buildSys(t, bench, v.shape)
		want := straight()
		got := resumeFrom(t, blob, bench, v.shape)
		sameRun(t, v.name, got, want)
	}
}

// TestCheckpointContentAddressed: the blob is a sharing key — identical
// prefixes hash identically.
func TestCheckpointContentAddressed(t *testing.T) {
	a := checkpointOf(t, "vta-resnet18", nil)
	b := checkpointOf(t, "vta-resnet18", nil)
	if checkpoint.Hash(a) != checkpoint.Hash(b) {
		t.Fatal("identical prefixes produced different checkpoint hashes")
	}
	c := checkpointOf(t, "protoacc-bench0", nil)
	if checkpoint.Hash(a) == checkpoint.Hash(c) {
		t.Fatal("different prefixes collided")
	}
}

// restoreTarget builds a fresh system + program and returns a closure
// that attempts to restore a (possibly damaged) blob into it.
func restoreTarget(t *testing.T, bench string) func([]byte) error {
	t.Helper()
	b, _ := workloads.ByName(bench)
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	return func(blob []byte) error { return sys.RestoreCheckpoint(blob, prog) }
}

// TestRestoreCorruptBlob: restoring a damaged checkpoint must fail with
// an error, never panic or silently accept. Truncations, header damage
// and framing damage must all be detected.
func TestRestoreCorruptBlob(t *testing.T) {
	blob := checkpointOf(t, "vta-resnet18", nil)
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "WRONG!")
			return c
		}},
		{"truncated-header", func(b []byte) []byte { return b[:4] }},
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-one", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing-garbage", func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xDE, 0xAD)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			restore := restoreTarget(t, "vta-resnet18")
			if err := restore(tc.mangle(blob)); err == nil {
				t.Fatal("corrupt blob restored without error")
			}
		})
	}
}

// TestRestoreBitFlippedBlob sweeps single-bit flips across the blob:
// every attempt must return normally (error or not) — a panic anywhere
// fails the test. Flips in payload bytes may decode "successfully" into
// different-but-well-formed state; that is acceptable (integrity is the
// disk tier's checksum job), crashing is not.
func TestRestoreBitFlippedBlob(t *testing.T) {
	blob := checkpointOf(t, "vta-resnet18", nil)
	// Stride through the blob so the test stays fast on large snapshots.
	stride := len(blob)/97 + 1
	for off := 0; off < len(blob); off += stride {
		c := append([]byte(nil), blob...)
		c[off] ^= 0x10
		restore := restoreTarget(t, "vta-resnet18")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip at offset %d: restore panicked: %v", off, r)
				}
			}()
			_ = restore(c)
		}()
	}
}

func TestCheckpointRefusals(t *testing.T) {
	// Non-NEX host cannot checkpoint; RunPrefix degrades to a full run.
	b, _ := workloads.ByName("jpeg-decode")
	sys := core.Build(core.Config{Host: core.HostReference, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42})
	if sys.CanCheckpoint() {
		t.Fatal("reference host claims checkpoint support")
	}
	res, completed := sys.RunPrefix(b.Build(&sys.Ctx))
	if !completed || res.SimTime <= 0 {
		t.Fatal("non-checkpointable RunPrefix did not degrade to a full run")
	}
	if _, err := sys.Checkpoint(); err == nil {
		t.Fatal("reference host produced a checkpoint")
	}
}
