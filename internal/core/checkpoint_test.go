package core_test

import (
	"testing"

	"nexsim/internal/checkpoint"
	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/workloads"
)

// buildSys assembles a system + program for one bench and config shaper.
func buildSys(t *testing.T, bench string, shape func(*core.Config)) (*core.System, func() core.Result, string) {
	t.Helper()
	b, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	return sys, func() core.Result { return sys.Run(prog) }, bench
}

// checkpointOf runs the prefix on a fresh system and returns its blob.
func checkpointOf(t *testing.T, bench string, shape func(*core.Config)) []byte {
	t.Helper()
	b, _ := workloads.ByName(bench)
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	if _, completed := sys.RunPrefix(prog); completed {
		t.Fatalf("%s: prefix ran to completion", bench)
	}
	blob, err := sys.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", bench, err)
	}
	return blob
}

// resumeFrom restores blob into a fresh system and runs it out.
func resumeFrom(t *testing.T, blob []byte, bench string, shape func(*core.Config)) core.Result {
	t.Helper()
	b, _ := workloads.ByName(bench)
	cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42}
	if shape != nil {
		shape(&cfg)
	}
	sys := core.Build(cfg)
	prog := b.Build(&sys.Ctx)
	if err := sys.RestoreCheckpoint(blob, prog); err != nil {
		t.Fatalf("%s: restore: %v", bench, err)
	}
	return sys.ResumeRun()
}

// sameRun compares everything except wall-clock.
func sameRun(t *testing.T, label string, got, want core.Result) {
	t.Helper()
	if got.SimTime != want.SimTime {
		t.Errorf("%s: SimTime %v, want %v", label, got.SimTime, want.SimTime)
	}
	if got.NEXStats != want.NEXStats {
		t.Errorf("%s: NEXStats diverged:\n got  %+v\n want %+v", label, got.NEXStats, want.NEXStats)
	}
	if len(got.Devices) != len(want.Devices) {
		t.Fatalf("%s: %d device stats, want %d", label, len(got.Devices), len(want.Devices))
	}
	for i := range got.Devices {
		if got.Devices[i] != want.Devices[i] {
			t.Errorf("%s: device %d stats diverged:\n got  %+v\n want %+v",
				label, i, got.Devices[i], want.Devices[i])
		}
	}
}

// TestCheckpointResumeMatchesRun is the end-to-end fork differential:
// prefix+checkpoint+restore+resume must equal a straight run on every
// accelerator family.
func TestCheckpointResumeMatchesRun(t *testing.T) {
	for _, bench := range []string{"jpeg-decode", "vta-resnet18", "protoacc-bench0"} {
		_, straight, _ := buildSys(t, bench, nil)
		want := straight()
		blob := checkpointOf(t, bench, nil)
		got := resumeFrom(t, blob, bench, nil)
		sameRun(t, bench, got, want)
	}
}

// TestCheckpointSharedAcrossLateBinding: one prefix blob (taken on the
// normalized configuration) must fork correctly into every late-binding
// variant — different accelerator engine, DMA level, fabric, channel.
func TestCheckpointSharedAcrossLateBinding(t *testing.T) {
	const bench = "vta-resnet18"
	blob := checkpointOf(t, bench, nil) // normalized: DSim, default fabric, LLC

	onchip := interconnect.OnChip4
	variants := []struct {
		name  string
		shape func(*core.Config)
	}{
		{"accel-rtl", func(c *core.Config) { c.Accel = core.AccelRTL }},
		{"dma-l2", func(c *core.Config) { c.DMATarget = core.DMAL2 }},
		{"fabric-onchip", func(c *core.Config) { c.Fabric = &onchip }},
		{"channel", func(c *core.Config) { c.UseChannel = true }},
	}
	for _, v := range variants {
		_, straight, _ := buildSys(t, bench, v.shape)
		want := straight()
		got := resumeFrom(t, blob, bench, v.shape)
		sameRun(t, v.name, got, want)
	}
}

// TestCheckpointContentAddressed: the blob is a sharing key — identical
// prefixes hash identically.
func TestCheckpointContentAddressed(t *testing.T) {
	a := checkpointOf(t, "vta-resnet18", nil)
	b := checkpointOf(t, "vta-resnet18", nil)
	if checkpoint.Hash(a) != checkpoint.Hash(b) {
		t.Fatal("identical prefixes produced different checkpoint hashes")
	}
	c := checkpointOf(t, "protoacc-bench0", nil)
	if checkpoint.Hash(a) == checkpoint.Hash(c) {
		t.Fatal("different prefixes collided")
	}
}

func TestCheckpointRefusals(t *testing.T) {
	// Non-NEX host cannot checkpoint; RunPrefix degrades to a full run.
	b, _ := workloads.ByName("jpeg-decode")
	sys := core.Build(core.Config{Host: core.HostReference, Accel: core.AccelDSim,
		Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42})
	if sys.CanCheckpoint() {
		t.Fatal("reference host claims checkpoint support")
	}
	res, completed := sys.RunPrefix(b.Build(&sys.Ctx))
	if !completed || res.SimTime <= 0 {
		t.Fatal("non-checkpointable RunPrefix did not degrade to a full run")
	}
	if _, err := sys.Checkpoint(); err == nil {
		t.Fatal("reference host produced a checkpoint")
	}
}
