package core_test

import (
	"math"
	"testing"

	"nexsim/internal/core"
	"nexsim/internal/interconnect"
	"nexsim/internal/vclock"
	"nexsim/internal/workloads"
)

// runBench assembles and runs one benchmark on one combo.
func runBench(t *testing.T, name string, host core.HostKind, accel core.AccelKind) core.Result {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.Build(core.Config{
		Host: host, Accel: accel,
		Model: b.Model, Devices: b.Devices,
		Cores: 16, Seed: 42,
	})
	prog := b.Build(&sys.Ctx)
	return sys.Run(prog)
}

func TestJPEGAllCombos(t *testing.T) {
	ref := runBench(t, "jpeg-decode", core.HostReference, core.AccelRTL)
	if ref.SimTime <= 0 {
		t.Fatal("reference run produced no time")
	}
	combos := []struct {
		host core.HostKind
		acc  core.AccelKind
	}{
		{core.HostNEX, core.AccelDSim},
		{core.HostNEX, core.AccelRTL},
		{core.HostGem5, core.AccelDSim},
		{core.HostGem5, core.AccelRTL},
	}
	for _, c := range combos {
		r := runBench(t, "jpeg-decode", c.host, c.acc)
		err := relErr(r.SimTime, ref.SimTime)
		t.Logf("jpeg-decode %v+%v: sim=%v wall=%v err=%.1f%%",
			c.host, c.acc, r.SimTime, r.WallTime, err*100)
		if r.SimTime <= 0 {
			t.Fatalf("%v+%v: no sim time", c.host, c.acc)
		}
		if err > 0.5 {
			t.Fatalf("%v+%v: sim time %v vs reference %v (err %.0f%%)",
				c.host, c.acc, r.SimTime, ref.SimTime, err*100)
		}
	}
}

func TestVTAResnet18Combos(t *testing.T) {
	ref := runBench(t, "vta-resnet18", core.HostReference, core.AccelRTL)
	nexDSim := runBench(t, "vta-resnet18", core.HostNEX, core.AccelDSim)
	err := relErr(nexDSim.SimTime, ref.SimTime)
	t.Logf("vta-resnet18 ref=%v nex+dsim=%v err=%.1f%% wall ref=%v nex=%v",
		ref.SimTime, nexDSim.SimTime, err*100, ref.WallTime, nexDSim.WallTime)
	if err > 0.35 {
		t.Fatalf("NEX+DSim error vs reference too large: %.0f%%", err*100)
	}
}

func TestProtoaccCombos(t *testing.T) {
	ref := runBench(t, "protoacc-bench0", core.HostReference, core.AccelRTL)
	nexDSim := runBench(t, "protoacc-bench0", core.HostNEX, core.AccelDSim)
	err := relErr(nexDSim.SimTime, ref.SimTime)
	t.Logf("protoacc-bench0 ref=%v nex+dsim=%v err=%.1f%%", ref.SimTime, nexDSim.SimTime, err*100)
	if err > 0.35 {
		t.Fatalf("NEX+DSim error vs reference too large: %.0f%%", err*100)
	}
}

func TestNEXDSimFasterThanGem5RTL(t *testing.T) {
	slow := runBench(t, "vta-resnet18", core.HostGem5, core.AccelRTL)
	fast := runBench(t, "vta-resnet18", core.HostNEX, core.AccelDSim)
	t.Logf("gem5+rtl wall=%v, nex+dsim wall=%v, speedup=%.1fx",
		slow.WallTime, fast.WallTime,
		float64(slow.WallTime)/float64(fast.WallTime))
	if fast.WallTime >= slow.WallTime {
		t.Fatalf("NEX+DSim (%v) not faster than gem5+RTL (%v)",
			fast.WallTime, slow.WallTime)
	}
}

func TestMultiDeviceJPEG(t *testing.T) {
	single := runBench(t, "jpeg-decode", core.HostReference, core.AccelDSim)
	multi := runBench(t, "jpeg-mt.4", core.HostReference, core.AccelDSim)
	t.Logf("jpeg 1 thread: %v, 4 threads: %v", single.SimTime, multi.SimTime)
	if multi.SimTime >= single.SimTime {
		t.Fatal("4 accelerators not faster than 1")
	}
}

func TestDeterminism(t *testing.T) {
	a := runBench(t, "protoacc-bench1", core.HostNEX, core.AccelDSim)
	b := runBench(t, "protoacc-bench1", core.HostNEX, core.AccelDSim)
	if a.SimTime != b.SimTime {
		t.Fatalf("nondeterministic: %v vs %v", a.SimTime, b.SimTime)
	}
}

func TestInterconnectSweepChangesLatency(t *testing.T) {
	run := func(lat vclock.Duration) vclock.Duration {
		b, _ := workloads.ByName("vta-resnet18")
		fab := interconnect.PCIe400.WithLatency(lat)
		sys := core.Build(core.Config{
			Host: core.HostNEX, Accel: core.AccelDSim,
			Model: b.Model, Devices: b.Devices, Cores: 16, Seed: 42,
			Fabric: &fab,
		})
		return sys.Run(b.Build(&sys.Ctx)).SimTime
	}
	slow := run(400 * vclock.Nanosecond)
	fast := run(4 * vclock.Nanosecond)
	t.Logf("vta-resnet18 e2e: 400ns fabric %v, 4ns fabric %v", slow, fast)
	if fast >= slow {
		t.Fatal("lower interconnect latency did not reduce e2e time")
	}
}

func relErr(a, b vclock.Duration) float64 {
	return math.Abs(a.Seconds()-b.Seconds()) / b.Seconds()
}

func TestGem5Determinism(t *testing.T) {
	a := runBench(t, "jpeg-decode", core.HostGem5, core.AccelDSim)
	b := runBench(t, "jpeg-decode", core.HostGem5, core.AccelDSim)
	if a.SimTime != b.SimTime {
		t.Fatalf("gem5 nondeterministic: %v vs %v", a.SimTime, b.SimTime)
	}
}

func TestReferenceDeterminism(t *testing.T) {
	a := runBench(t, "vta-matmul", core.HostReference, core.AccelRTL)
	b := runBench(t, "vta-matmul", core.HostReference, core.AccelRTL)
	if a.SimTime != b.SimTime {
		t.Fatalf("reference nondeterministic: %v vs %v", a.SimTime, b.SimTime)
	}
}
