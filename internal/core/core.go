// Package core is the public façade of the simulator: it assembles a
// full-stack simulation from a host engine (reference, NEX, or the
// gem5-style cycle-level host), an accelerator engine (DSim or
// RTL-style) per device, the interconnect/cache/memory stack between
// them, and an application program — the four compositions of the
// paper's Table 1 plus the exact-time reference that stands in for the
// FPGA testbeds.
package core

import (
	"errors"
	"fmt"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/accel/jpeg"
	"nexsim/internal/accel/protoacc"
	"nexsim/internal/accel/vta"
	"nexsim/internal/app"
	"nexsim/internal/cachesim"
	"nexsim/internal/cpu"
	"nexsim/internal/dram"
	"nexsim/internal/exacthost"
	"nexsim/internal/faults"
	"nexsim/internal/interconnect"
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/nex"
	"nexsim/internal/simbricks"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
)

// HostKind selects the host simulator.
type HostKind int

const (
	// HostReference is the exact-time engine with native compute timing —
	// the stand-in for the real system / FPGA testbed.
	HostReference HostKind = iota
	// HostNEX is the NEX orchestrator.
	HostNEX
	// HostGem5 is the exact-time engine with the cycle-level CPU model.
	HostGem5
)

func (h HostKind) String() string {
	switch h {
	case HostReference:
		return "reference"
	case HostNEX:
		return "nex"
	default:
		return "gem5"
	}
}

// AccelKind selects the accelerator simulator.
type AccelKind int

const (
	AccelDSim AccelKind = iota
	AccelRTL
)

func (a AccelKind) String() string {
	if a == AccelDSim {
		return "dsim"
	}
	return "rtl"
}

// AccelModel names an accelerator type.
type AccelModel string

const (
	AccelNone     AccelModel = ""
	AccelJPEG     AccelModel = "jpeg"
	AccelVTA      AccelModel = "vta"
	AccelProtoacc AccelModel = "protoacc"
)

// DMALevel selects which cache level serves accelerator DMAs.
type DMALevel int

const (
	DMALLC DMALevel = iota
	DMAL2
)

// Config assembles one full-stack simulation.
type Config struct {
	Host  HostKind
	Accel AccelKind

	Model   AccelModel
	Devices int // accelerator instances (default 1 when Model != "")

	// Fabric is the host-accelerator interconnect (default: paper
	// defaults per accelerator — PCIe 400ns for JPEG/VTA, on-chip 4ns
	// for Protoacc).
	Fabric *interconnect.Config
	// DMATarget selects the cache level serving DMAs (default LLC).
	DMATarget DMALevel

	// IOTLB, when set, translates every accelerator DMA through a
	// per-device I/O TLB (the §7 future-work extension).
	IOTLB *interconnect.IOTLBConfig

	// Clock is the host core frequency (default 3GHz); AccelClock the
	// accelerator frequency (default 2GHz).
	Clock      vclock.Hz
	AccelClock vclock.Hz

	// Cores is the host core count available to the application.
	Cores int

	// NEX-specific options (ignored for other hosts).
	NEX nex.Config
	// NEXNoTick disables tick-mode drivers under NEX (every task-buffer
	// access traps) — the §3.2 ablation.
	NEXNoTick bool

	// UseChannel routes every host-device interaction through a
	// SimBricks-style message channel instead of the tight in-process
	// integration (§A.2's comparison).
	UseChannel bool

	// IntraParallel is the intra-run worker count (DESIGN.md §10): with
	// N >= 2, accelerator engines advance on up to N-1 stepper
	// goroutines under conservative lookahead while the host engine
	// runs on its own goroutine, synchronizing at deterministic
	// barriers. Every table, trace, and checkpoint is byte-identical to
	// the serial schedule. 0 or 1 = serial (the default).
	IntraParallel int

	// Budget bounds the run (watchdog): a run that exceeds it aborts
	// with a structured ErrBudgetExceeded from TryRun instead of
	// running (or hanging) forever. The zero value is unlimited.
	Budget Budget

	// Faults is the per-run deterministic fault injector (nil = none);
	// it is threaded through the engines' device-dispatch path and every
	// SimBricks channel.
	Faults *faults.Injector

	// Trace enables coarse-grained trace recording.
	Trace *trace.Recorder

	Seed uint64
}

// Budget is a per-run watchdog: MaxEpochs caps NEX scheduler epochs
// (the exact-time hosts apply it to event-queue steps, their closest
// analogue), MaxWall caps host wall-clock time. Zero fields are
// unlimited.
type Budget struct {
	MaxEpochs int64
	MaxWall   time.Duration
}

// ErrBudgetExceeded reports a run aborted by its Budget. The abort is
// cooperative and structured: the engine stops within one epoch (or
// step/wall check) of the bound, every thread goroutine is reaped, and
// TryRun returns an error wrapping this sentinel.
var ErrBudgetExceeded = errors.New("core: run budget exceeded")

// Ctx is handed to workload builders: where the devices live and how to
// reach memory.
type Ctx struct {
	Mem      *mem.Memory
	MMIO     []mem.Addr // per device instance
	TaskBufs []mem.Addr // per device instance (4KB each)
	// Arena is a large scratch region for workload data (program
	// streams, images, message graphs).
	Arena mem.Addr
	// Devices are the constructed accelerator simulators (for schema
	// registration etc.).
	Devices []accel.Device
	// Clock is the host clock.
	Clock vclock.Hz
}

// System is a fully assembled simulation.
type System struct {
	cfg   Config
	Ctx   Ctx
	binds []accel.Device
	// Channels holds the SimBricks channels when UseChannel is set.
	Channels []*simbricks.Channel
	runRef   func(prog app.Program) Result
	nexEng   *nex.Engine
	exactEng *exacthost.Engine
	gem5CPU  *cpu.Model
	caches   []*cachesim.Cache
}

// Result reports one completed run.
type Result struct {
	SimTime  vclock.Duration // simulated (virtual) time
	WallTime time.Duration   // host wall-clock time of the run
	Host     HostKind
	Accel    AccelKind
	NEXStats nex.Stats // populated for NEX hosts
	Devices  []accel.DeviceStats

	// Intra is the effective intra-run worker count: 1 + the number of
	// device stepper lanes that ran (1 = fully serial).
	Intra int
	// HostWall is wall time attributable to the host engine goroutine
	// (WallTime minus time spent blocked joining steppers is not
	// separable, so HostWall == WallTime); DeviceWall is the cumulative
	// stepper busy time, which overlaps HostWall when Intra > 1 and is
	// folded into WallTime when serial.
	HostWall   time.Duration
	DeviceWall time.Duration
}

// Slowdown is WallTime / SimTime.
func (r Result) Slowdown() float64 {
	if r.SimTime <= 0 {
		return 0
	}
	return float64(r.WallTime.Nanoseconds()) / r.SimTime.Nanoseconds()
}

// Build assembles a system.
func Build(cfg Config) *System {
	if cfg.Clock == 0 {
		cfg.Clock = 3 * vclock.GHz
	}
	if cfg.AccelClock == 0 {
		cfg.AccelClock = 2 * vclock.GHz
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 16
	}
	if cfg.Model != AccelNone && cfg.Devices <= 0 {
		cfg.Devices = 1
	}

	m := mem.New(0x1000_0000)
	sys := &System{cfg: cfg}
	sys.Ctx.Mem = m
	sys.Ctx.Clock = cfg.Clock

	intra := cfg.IntraParallel
	if intra < 1 {
		intra = 1
	}
	if intra > 1 {
		// Host and stepper goroutines touch disjoint byte ranges of the
		// functional memory concurrently; arm the page-table lock.
		m.SetConcurrent()
	}

	fabricCfg := sys.fabricConfig()

	// Build devices + bindings, then the host engine around them.
	type binding struct {
		dev     accel.Device
		mmio    mem.Addr
		taskBuf mem.Addr
		dmaPort memsys.Port
	}
	// Register accesses traverse the same fabric as DMAs: a read stalls
	// for the round trip, a write is posted.
	mmioReadCost := 2*fabricCfg.LinkLatency + 50*vclock.Nanosecond
	mmioWriteCost := fabricCfg.LinkLatency/4 + 60*vclock.Nanosecond

	var binds []binding
	for i := 0; i < cfg.Devices; i++ {
		mmio := mem.Addr(0x8000_0000 + uint64(i)*0x1_0000)
		tb := m.Alloc(fmt.Sprintf("taskbuf%d", i), 4096)
		// Banked memory-system stack: each device's DMA port owns a
		// private LLC slice and DRAM channel (CAT-style way
		// partitioning, §6.4's design sweep applies per bank). Host
		// task accesses never touch this stack (they carry a fixed
		// TaskAccessCost, and the gem5 CPU model has its own private
		// hierarchy), so banking keeps single-device runs structurally
		// identical while making each device's timing state private —
		// the property parallel intra-run mode (DESIGN.md §10) relies
		// on for serial↔parallel byte-identity.
		dramCtl := dram.New(dram.DDR4)
		llc := cachesim.New(cachesim.LLC, dramCtl)
		sys.caches = append(sys.caches, llc)
		var dmaTarget memsys.Port = llc
		if cfg.DMATarget == DMAL2 {
			l2 := cachesim.New(cachesim.L2, llc)
			sys.caches = append(sys.caches, l2)
			dmaTarget = l2
		}
		fabric := interconnect.New(fabricCfg, dmaTarget)
		if cfg.IOTLB != nil {
			fabric.EnableIOTLB(*cfg.IOTLB)
		}
		dev := newDevice(cfg.Model, cfg.Accel, cfg.AccelClock)
		if cfg.UseChannel {
			ch := simbricks.NewChannel(0)
			ch.SetFaults(cfg.Faults)
			sys.Channels = append(sys.Channels, ch)
			dev = simbricks.WrapDevice(dev, ch)
		}
		binds = append(binds, binding{dev: dev, mmio: mmio, taskBuf: tb.Base, dmaPort: fabric})
		sys.Ctx.MMIO = append(sys.Ctx.MMIO, mmio)
		sys.Ctx.TaskBufs = append(sys.Ctx.TaskBufs, tb.Base)
		sys.Ctx.Devices = append(sys.Ctx.Devices, dev)
	}
	arena := m.Alloc("arena", 64<<20)
	sys.Ctx.Arena = arena.Base

	switch cfg.Host {
	case HostNEX:
		ncfg := cfg.NEX
		// Tick-mode drivers are the default (task-buffer writes are
		// batched behind doorbells); the explicit-trap ablation sets
		// NEXNoTick.
		ncfg.TickMode = !cfg.NEXNoTick
		ncfg.Clock = cfg.Clock
		if ncfg.VirtualCores == 0 {
			ncfg.VirtualCores = cfg.Cores
		}
		ncfg.Memory = m
		ncfg.Trace = cfg.Trace
		ncfg.Seed = cfg.Seed
		ncfg.MaxEpochs = cfg.Budget.MaxEpochs
		ncfg.MaxWall = cfg.Budget.MaxWall
		ncfg.Faults = cfg.Faults
		ncfg.Intra = intra
		eng := nex.New(ncfg)
		for _, b := range binds {
			db := &nex.DeviceBinding{Device: b.dev, MMIOBase: b.mmio,
				MMIOSize: 0x1_0000, DMAPort: b.dmaPort,
				MMIOCost: mmioReadCost, MMIOWriteCost: mmioWriteCost}
			setHost(b.dev, eng.HostFor(db))
			eng.Attach(db)
		}
		sys.nexEng = eng
		sys.runRef = func(prog app.Program) Result {
			start := time.Now() //simlint:allow nondet-time Result.WallTime is speed reporting, never simulation state
			r := eng.Run(prog)
			wall := time.Since(start) //simlint:allow nondet-time
			lanes, devWall := eng.IntraStats()
			return Result{SimTime: r.SimTime, WallTime: wall,
				Host: cfg.Host, Accel: cfg.Accel, NEXStats: r.Stats,
				Intra: 1 + lanes, HostWall: wall, DeviceWall: devWall}
		}

	case HostReference, HostGem5:
		ecfg := exacthost.Config{
			Clock: cfg.Clock, Cores: cfg.Cores, Memory: m, Trace: cfg.Trace,
			MaxSteps: cfg.Budget.MaxEpochs, MaxWall: cfg.Budget.MaxWall,
			Intra: intra,
		}
		if cfg.Host == HostGem5 {
			model := cpu.New(cpu.Config{Clock: cfg.Clock})
			ecfg.Compute = model
			sys.gem5CPU = model
		}
		eng := exacthost.New(ecfg)
		sys.exactEng = eng
		for _, b := range binds {
			db := &exacthost.DeviceBinding{Device: b.dev, MMIOBase: b.mmio,
				MMIOSize: 0x1_0000, DMAPort: b.dmaPort,
				MMIOCost: mmioReadCost, MMIOWriteCost: mmioWriteCost}
			setHost(b.dev, eng.HostFor(db))
			eng.Attach(db)
		}
		sys.runRef = func(prog app.Program) Result {
			start := time.Now() //simlint:allow nondet-time Result.WallTime is speed reporting, never simulation state
			r := eng.Run(prog)
			wall := time.Since(start) //simlint:allow nondet-time
			lanes, devWall := eng.IntraStats()
			return Result{SimTime: r.SimTime, WallTime: wall,
				Host: cfg.Host, Accel: cfg.Accel,
				Intra: 1 + lanes, HostWall: wall, DeviceWall: devWall}
		}
	}

	// Helper closure needs binds; keep them for stats.
	sys.binds = make([]accel.Device, len(binds))
	for i, b := range binds {
		sys.binds[i] = b.dev
	}
	return sys
}

// Release returns the system's pooled resources (the cache hierarchy)
// for reuse by a future Build. Call it once, after the last Run result
// has been extracted; the system must not be used afterwards. Releasing
// is purely an allocation optimization — a Build that reuses recycled
// parts is behaviorally identical to a fresh one.
func (s *System) Release() {
	for _, c := range s.caches {
		c.Recycle()
	}
	s.caches = nil
}

// CPUModel returns the gem5-style CPU model (nil for other hosts).
func (s *System) CPUModel() *cpu.Model { return s.gem5CPU }

// NEXEngine returns the NEX engine (nil for other hosts).
func (s *System) NEXEngine() *nex.Engine { return s.nexEng }

// fabricConfig picks the paper's default attachment per accelerator.
func (s *System) fabricConfig() interconnect.Config {
	if s.cfg.Fabric != nil {
		return *s.cfg.Fabric
	}
	if s.cfg.Model == AccelProtoacc {
		return interconnect.OnChip4
	}
	return interconnect.PCIe400
}

// Run executes the program on the assembled system. A budget abort
// panics (use TryRun for the structured error); systems without a
// Budget never abort.
func (s *System) Run(prog app.Program) Result {
	r, err := s.TryRun(prog)
	if err != nil {
		panic(err)
	}
	return r
}

// TryRun executes the program and returns a structured error when the
// run exceeds its Budget. On abort every thread goroutine is reaped
// (nothing leaks) and the partial Result is discarded.
func (s *System) TryRun(prog app.Program) (Result, error) {
	r := s.runRef(prog)
	if s.BudgetExceeded() {
		s.Reap()
		return Result{}, fmt.Errorf("%s/%s run aborted after %v simulated: %w",
			s.cfg.Host, s.cfg.Accel, r.SimTime, ErrBudgetExceeded)
	}
	for _, d := range s.binds {
		// Every runRef closure runs its engine's Run, which defers
		// stopCrew: by the time it returns, all lanes are joined and
		// shut down.
		r.Devices = append(r.Devices, d.Stats()) //simlint:allow lane-safety runRef engines stop their crew before returning
	}
	return r, nil
}

// BudgetExceeded reports whether the engine aborted on its Budget.
func (s *System) BudgetExceeded() bool {
	if s.nexEng != nil {
		return s.nexEng.BudgetExceeded()
	}
	if s.exactEng != nil {
		return s.exactEng.BudgetExceeded()
	}
	return false
}

// Reap force-terminates every live thread goroutine of an abandoned
// run (budget aborts, injected-fault panics). Idempotent; the system
// must not be Run again afterwards.
func (s *System) Reap() {
	if s.nexEng != nil {
		s.nexEng.Reap()
	}
	if s.exactEng != nil {
		s.exactEng.Reap()
	}
}

func newDevice(model AccelModel, kind AccelKind, clk vclock.Hz) accel.Device {
	switch model {
	case AccelJPEG:
		if kind == AccelDSim {
			return jpeg.NewDevice(clk)
		}
		return jpeg.NewRTLDevice(clk)
	case AccelVTA:
		if kind == AccelDSim {
			return vta.NewDevice(clk)
		}
		return vta.NewRTLDevice(clk)
	case AccelProtoacc:
		if kind == AccelDSim {
			return protoacc.NewDevice(clk)
		}
		return protoacc.NewRTLDevice(clk)
	default:
		panic("core: unknown accelerator model " + string(model))
	}
}

func setHost(d accel.Device, h accel.Host) {
	type hostSetter interface{ SetHost(accel.Host) }
	d.(hostSetter).SetHost(h)
}
