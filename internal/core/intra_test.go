package core_test

import (
	"fmt"
	"testing"

	"nexsim/internal/core"
	"nexsim/internal/trace"
	"nexsim/internal/workloads"
)

// TestIntraByteIdentity is the tentpole's core guarantee: running with
// IntraParallel N >= 2 produces byte-identical simulation results —
// simulated time, device statistics, NEX statistics, and the full trace
// span stream — to the serial schedule, across all four Table-1
// host/accelerator combinations, the reference host, and multiple
// device counts.
func TestIntraByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is slow")
	}
	hosts := []struct {
		name string
		host core.HostKind
	}{
		{"reference", core.HostReference},
		{"nex", core.HostNEX},
		{"gem5", core.HostGem5},
	}
	accels := []core.AccelKind{core.AccelDSim, core.AccelRTL}

	for _, h := range hosts {
		for _, ak := range accels {
			if h.host == core.HostReference && ak == core.AccelRTL {
				continue // not a Table-1 combination; keep the matrix fast
			}
			for _, devs := range []int{1, 4} {
				name := fmt.Sprintf("%s-%s-x%d", h.name, ak, devs)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					var base core.Result
					var baseSpans []trace.Span
					for _, intra := range []int{1, 2, 4} {
						rec := trace.New()
						cfg := core.Config{
							Host: h.host, Accel: ak,
							Model: core.AccelJPEG, Devices: devs,
							IntraParallel: intra, Trace: rec, Seed: 7,
						}
						bench, err := workloads.ByName(fmt.Sprintf("jpeg-mt.%d", devs))
						if devs == 1 {
							bench, err = workloads.ByName("jpeg-decode")
						}
						if err != nil {
							t.Fatal(err)
						}
						sys := core.Build(cfg)
						r := sys.Run(bench.Build(&sys.Ctx))
						spans := rec.Spans()
						if intra == 1 {
							base, baseSpans = r, spans
							continue
						}
						if want := 1 + min(intra-1, devs); r.Intra != want {
							t.Errorf("intra=%d: core.Result.Intra = %d, want %d", intra, r.Intra, want)
						}
						if r.SimTime != base.SimTime {
							t.Errorf("intra=%d: SimTime %v != serial %v", intra, r.SimTime, base.SimTime)
						}
						if r.NEXStats != base.NEXStats {
							t.Errorf("intra=%d: NEXStats diverged:\n %+v\n %+v", intra, r.NEXStats, base.NEXStats)
						}
						if len(r.Devices) != len(base.Devices) {
							t.Fatalf("intra=%d: %d device stats, serial has %d", intra, len(r.Devices), len(base.Devices))
						}
						for i := range r.Devices {
							if r.Devices[i] != base.Devices[i] {
								t.Errorf("intra=%d: device %d stats diverged:\n %+v\n %+v",
									intra, i, r.Devices[i], base.Devices[i])
							}
						}
						if len(spans) != len(baseSpans) {
							t.Fatalf("intra=%d: %d trace spans, serial has %d", intra, len(spans), len(baseSpans))
						}
						for i := range spans {
							if spans[i] != baseSpans[i] {
								t.Errorf("intra=%d: trace span %d diverged:\n %+v\n %+v",
									intra, i, spans[i], baseSpans[i])
								break
							}
						}
					}
				})
			}
		}
	}
}

// TestIntraByteIdentityVTAProtoacc extends the differential matrix to
// the other two accelerator models (strictly-alternating VTA and the
// fully asynchronous Protoacc driver) on the fastest host.
func TestIntraByteIdentityVTAProtoacc(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is slow")
	}
	cases := []struct {
		bench string
		model core.AccelModel
		devs  int
	}{
		{"vta-matmul", core.AccelVTA, 1},
		{"protoacc-bench0", core.AccelProtoacc, 1},
	}
	for _, c := range cases {
		t.Run(c.bench, func(t *testing.T) {
			t.Parallel()
			bench, err := workloads.ByName(c.bench)
			if err != nil {
				t.Fatal(err)
			}
			var base core.Result
			for _, intra := range []int{1, 3} {
				cfg := core.Config{Host: core.HostNEX, Accel: core.AccelDSim, Model: c.model,
					Devices: c.devs, IntraParallel: intra, Seed: 11}
				sys := core.Build(cfg)
				r := sys.Run(bench.Build(&sys.Ctx))
				if intra == 1 {
					base = r
					continue
				}
				if r.SimTime != base.SimTime {
					t.Errorf("intra=%d: SimTime %v != serial %v", intra, r.SimTime, base.SimTime)
				}
				for i := range r.Devices {
					if r.Devices[i] != base.Devices[i] {
						t.Errorf("intra=%d: device %d stats diverged", intra, i)
					}
				}
			}
		})
	}
}

// TestIntraIRQPathStaysSerial pins the fallback: drivers that enable
// completion interrupts force inline (serial-schedule) advancement, and
// results still match serial exactly.
func TestIntraIRQPathStaysSerial(t *testing.T) {
	var base core.Result
	for _, intra := range []int{1, 2} {
		cfg := core.Config{Host: core.HostReference, Accel: core.AccelDSim, Model: core.AccelJPEG,
			Devices: 1, IntraParallel: intra, Seed: 3}
		sys := core.Build(cfg)
		prog := workloads.JPEGProgram(workloads.JPEGConfig{
			Images: 8, Threads: 1, Seed: 9, UseIRQ: true}, &sys.Ctx)
		r := sys.Run(prog)
		if intra == 1 {
			base = r
			continue
		}
		if r.SimTime != base.SimTime {
			t.Errorf("intra=%d (IRQ mode): SimTime %v != serial %v", intra, r.SimTime, base.SimTime)
		}
	}
}
