package interconnect

import (
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// IOTLBConfig models the I/O address translation the paper leaves as
// future work (§7: "NEX does not yet account for the cost of virtual
// memory address translation for accelerator DMAs, which involves I/O
// TLBs... adding I/O TLB modeling simply requires extending the current
// memory model"). This extends it: device-side DMAs are translated
// through a per-device IOTLB; misses pay a page-table walk through the
// memory target.
type IOTLBConfig struct {
	Entries  int             // TLB capacity (fully associative, LRU)
	PageBits uint            // page size = 1<<PageBits (default 12: 4KB)
	HitLat   vclock.Duration // translation hit latency (default 2ns)
	// WalkReads is the number of dependent page-table reads on a miss
	// (default 4: a 4-level walk); each traverses the memory target.
	WalkReads int
}

func (c IOTLBConfig) withDefaults() IOTLBConfig {
	if c.Entries <= 0 {
		c.Entries = 64
	}
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.HitLat == 0 {
		c.HitLat = 2 * vclock.Nanosecond
	}
	if c.WalkReads == 0 {
		c.WalkReads = 4
	}
	return c
}

// iotlb is the runtime state: a fully associative page map with LRU
// stamps.
type iotlb struct {
	cfg     IOTLBConfig
	entries map[mem.Addr]int64 // page -> last-use stamp
	clock   int64

	Hits, Misses int64
}

func newIOTLB(cfg IOTLBConfig) *iotlb {
	cfg = cfg.withDefaults()
	return &iotlb{cfg: cfg, entries: make(map[mem.Addr]int64)}
}

// translate charges translation for [addr, addr+size) at time at: every
// covered page is looked up; each miss performs a dependent page-table
// walk through the fabric's memory target. It returns the time at which
// the translated access may start.
func (t *iotlb) translate(f *Fabric, at vclock.Time, addr mem.Addr, size int) vclock.Time {
	if size <= 0 {
		size = 1
	}
	ready := at
	first := addr >> t.cfg.PageBits
	last := (addr + mem.Addr(size) - 1) >> t.cfg.PageBits
	for page := first; page <= last; page++ {
		t.clock++
		if _, ok := t.entries[page]; ok {
			t.Hits++
			t.entries[page] = t.clock
			if r := at.Add(t.cfg.HitLat); r > ready {
				ready = r
			}
			continue
		}
		t.Misses++
		// Dependent page-table walk: WalkReads serialized reads of page
		// table entries through the memory system (they hit caches like
		// any other access).
		walk := at
		pteBase := mem.Addr(0xF000_0000) + page*8 // modeled PTE locations
		for i := 0; i < t.cfg.WalkReads; i++ {
			walk = f.target.Access(walk, mem.Read, pteBase+mem.Addr(i)*4096, 8)
		}
		if walk > ready {
			ready = walk
		}
		// Insert with LRU eviction.
		if len(t.entries) >= t.cfg.Entries {
			var victim mem.Addr
			oldest := int64(1<<63 - 1)
			for p, stamp := range t.entries {
				if stamp < oldest {
					oldest, victim = stamp, p
				}
			}
			delete(t.entries, victim)
		}
		t.entries[page] = t.clock
	}
	return ready
}

// EnableIOTLB attaches an I/O TLB to the fabric: subsequent DMAs are
// translated before they traverse the link. Returns nothing; stats are
// exposed via IOTLBStats.
func (f *Fabric) EnableIOTLB(cfg IOTLBConfig) {
	f.tlb = newIOTLB(cfg)
}

// IOTLBStats reports (hits, misses) of the fabric's IOTLB, or zeros if
// none is attached.
func (f *Fabric) IOTLBStats() (hits, misses int64) {
	if f.tlb == nil {
		return 0, 0
	}
	return f.tlb.Hits, f.tlb.Misses
}
