package interconnect

import (
	"testing"

	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

func TestRoundTripLatency(t *testing.T) {
	f := New(Config{
		Name: "t", LinkLatency: 100 * vclock.Nanosecond,
		MaxOutstandingR: 16, MaxOutstandingW: 16,
	}, memsys.Fixed{Latency: 50 * vclock.Nanosecond})
	// 100 (there) + 50 (serve) + 100 (back) = 250ns. No bandwidth term.
	d := f.Access(0, mem.Read, 0x1000, 64)
	if want := vclock.Time(250 * vclock.Nanosecond); d != want {
		t.Fatalf("round trip = %v, want %v", vclock.Duration(d), vclock.Duration(want))
	}
}

func TestSegmentation(t *testing.T) {
	f := New(Config{
		Name: "t", LinkLatency: 10 * vclock.Nanosecond, MaxPayload: 512,
		BytesPerNs: 512, // 1ns per TLP wire time
	}, memsys.Fixed{})
	// 2KB = 4 TLPs, pipelined on the link: wire times serialize
	// (4 x 1ns), each pays link latency both ways.
	d := f.Access(0, mem.Read, 0, 2048)
	// Last TLP starts its wire at 3ns, arrives 3+1+10=14, returns 24.
	if want := vclock.Time(24 * vclock.Nanosecond); d != want {
		t.Fatalf("segmented DMA = %v, want %v", vclock.Duration(d), vclock.Duration(want))
	}
}

func TestOutstandingLimitThrottles(t *testing.T) {
	// Target is slow; only 2 reads may be in flight.
	f := New(Config{
		Name: "t", LinkLatency: 0, MaxOutstandingR: 2,
	}, memsys.Fixed{Latency: 100 * vclock.Nanosecond})
	d1 := f.Access(0, mem.Read, 0, 8)
	d2 := f.Access(0, mem.Read, 64, 8)
	d3 := f.Access(0, mem.Read, 128, 8)
	if d1 != vclock.Time(100*vclock.Nanosecond) || d2 != d1 {
		t.Fatalf("first two not parallel: %v %v", d1, d2)
	}
	if d3 != vclock.Time(200*vclock.Nanosecond) {
		t.Fatalf("third = %v, want delayed to 200ns", vclock.Duration(d3))
	}
	if f.StallTime != 100*vclock.Nanosecond {
		t.Fatalf("StallTime = %v, want 100ns", f.StallTime)
	}
}

func TestReadsAndWritesIndependentWindows(t *testing.T) {
	f := New(Config{
		Name: "t", LinkLatency: 0, MaxOutstandingR: 1, MaxOutstandingW: 1,
	}, memsys.Fixed{Latency: 100 * vclock.Nanosecond})
	f.Access(0, mem.Read, 0, 8)
	// A write at t=0 is not blocked by the outstanding read.
	d := f.Access(0, mem.Write, 64, 8)
	if d != vclock.Time(100*vclock.Nanosecond) {
		t.Fatalf("write blocked by read window: %v", vclock.Duration(d))
	}
}

func TestUnlimitedWindows(t *testing.T) {
	f := New(Config{Name: "t", LinkLatency: 1 * vclock.Nanosecond}, memsys.Fixed{})
	for i := 0; i < 100; i++ {
		f.Access(0, mem.Read, mem.Addr(i*64), 8)
	}
	if f.StallTime != 0 {
		t.Fatal("unlimited fabric stalled")
	}
	if f.Reads != 100 {
		t.Fatalf("Reads = %d", f.Reads)
	}
}

func TestWithLatencySweep(t *testing.T) {
	base := PCIe400
	fast := base.WithLatency(100 * vclock.Nanosecond)
	if base.LinkLatency != 400*vclock.Nanosecond {
		t.Fatal("WithLatency mutated the receiver")
	}
	if fast.LinkLatency != 100*vclock.Nanosecond {
		t.Fatal("WithLatency did not apply")
	}
	slow := New(base, memsys.Fixed{})
	quick := New(fast, memsys.Fixed{})
	ds := slow.Access(0, mem.Read, 0, 64)
	dq := quick.Access(0, mem.Read, 0, 64)
	if ds <= dq {
		t.Fatalf("lower latency not faster: %v vs %v", ds, dq)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := New(OnChip4, memsys.Fixed{})
	f.Access(0, mem.Read, 0, 100)
	f.Access(0, mem.Write, 0, 200)
	if f.Reads != 1 || f.Writes != 1 || f.Bytes != 300 {
		t.Fatalf("stats = %d/%d/%d", f.Reads, f.Writes, f.Bytes)
	}
}

func TestIOTLBHitAndMiss(t *testing.T) {
	f := New(Config{Name: "t", LinkLatency: 10 * vclock.Nanosecond},
		memsys.Fixed{Latency: 50 * vclock.Nanosecond})
	f.EnableIOTLB(IOTLBConfig{Entries: 4})

	// Cold access: 4-level walk (4 x 50ns serialized) before the DMA.
	cold := f.Access(0, mem.Read, 0x1000, 8)
	// Warm access to the same page: only the 2ns hit latency.
	base := cold
	warm := f.Access(base, mem.Read, 0x1008, 8)

	coldLat := cold.Sub(0)
	warmLat := warm.Sub(base)
	if coldLat <= warmLat {
		t.Fatalf("cold %v not slower than warm %v", coldLat, warmLat)
	}
	// 4 walk reads at 50ns each = 200ns extra.
	if coldLat-warmLat < 150*vclock.Nanosecond {
		t.Fatalf("walk penalty too small: %v", coldLat-warmLat)
	}
	hits, misses := f.IOTLBStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestIOTLBEviction(t *testing.T) {
	f := New(Config{Name: "t"}, memsys.Fixed{Latency: 10 * vclock.Nanosecond})
	f.EnableIOTLB(IOTLBConfig{Entries: 2})
	// Touch three pages; the first is evicted (LRU).
	f.Access(0, mem.Read, 0x1000, 8)
	f.Access(0, mem.Read, 0x2000, 8)
	f.Access(0, mem.Read, 0x3000, 8)
	f.Access(0, mem.Read, 0x1000, 8) // must miss again
	_, misses := f.IOTLBStats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4 (LRU eviction)", misses)
	}
}

func TestIOTLBSpanningPages(t *testing.T) {
	f := New(Config{Name: "t"}, memsys.Fixed{Latency: 10 * vclock.Nanosecond})
	f.EnableIOTLB(IOTLBConfig{Entries: 16})
	// 8KB DMA covers two pages: two translations.
	f.Access(0, mem.Read, 0x0, 8192)
	hits, misses := f.IOTLBStats()
	if hits+misses != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2 cold pages", hits, misses)
	}
}

func TestNoIOTLBByDefault(t *testing.T) {
	f := New(Config{Name: "t"}, memsys.Fixed{})
	if h, m := f.IOTLBStats(); h != 0 || m != 0 {
		t.Fatal("stats without a TLB")
	}
}
