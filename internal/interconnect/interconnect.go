// Package interconnect models the fabric between accelerators and the
// host memory system: a PCIe-style link (one-way latency, TLP
// segmentation, bounded outstanding reads/writes) or an on-chip port
// (nanosecond-scale latency), stacked on a cache or DRAM through the
// memsys.Port interface.
//
// The evaluation setup (paper §6.1) attaches JPEG and VTA over PCIe with
// a 400 ns one-way delay and Protoacc on-chip with 4 ns, all DMAs served
// by the LLC, and "a maximum of 16 concurrent read and write requests
// each" — these are the defaults here.
package interconnect

import (
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/vclock"
)

// Config describes one host-to-accelerator fabric.
type Config struct {
	Name            string
	LinkLatency     vclock.Duration // one-way propagation delay
	MaxPayload      int             // TLP payload bytes (0 = no segmentation)
	MaxOutstandingR int             // concurrent reads (0 = unlimited)
	MaxOutstandingW int             // concurrent writes (0 = unlimited)
	BytesPerNs      float64         // link bandwidth (0 = unlimited)
}

// PCIe400 is the paper's default PCIe attachment: 400ns one-way delay,
// 512B TLPs, 16 outstanding reads and writes, ~PCIe3 x8 bandwidth.
var PCIe400 = Config{
	Name:            "pcie-400ns",
	LinkLatency:     400 * vclock.Nanosecond,
	MaxPayload:      512,
	MaxOutstandingR: 16,
	MaxOutstandingW: 16,
	BytesPerNs:      8.0,
}

// OnChip4 is the paper's on-chip attachment for Protoacc: 4ns latency.
var OnChip4 = Config{
	Name:            "onchip-4ns",
	LinkLatency:     4 * vclock.Nanosecond,
	MaxPayload:      0,
	MaxOutstandingR: 16,
	MaxOutstandingW: 16,
	BytesPerNs:      64.0,
}

// WithLatency returns a copy of c with a different link latency — the
// single-knob sweep used in the paper's interactive design exploration
// (§6.4: 400ns -> 100ns -> 4ns).
func (c Config) WithLatency(d vclock.Duration) Config {
	c.LinkLatency = d
	return c
}

// Fabric connects an accelerator to the host memory system.
type Fabric struct {
	cfg    Config
	target memsys.Port

	rWin *memsys.Window
	wWin *memsys.Window
	busy vclock.Time // link serialization point
	tlb  *iotlb      // optional I/O address translation (EnableIOTLB)

	// Stats.
	Reads, Writes int64
	Bytes         int64
	StallTime     vclock.Duration // time requests spent waiting for a slot
}

// New builds a fabric over the given memory target.
func New(cfg Config, target memsys.Port) *Fabric {
	if target == nil {
		panic("interconnect: nil target port")
	}
	f := &Fabric{cfg: cfg, target: target}
	if cfg.MaxOutstandingR > 0 {
		f.rWin = memsys.NewWindow(cfg.MaxOutstandingR)
	}
	if cfg.MaxOutstandingW > 0 {
		f.wWin = memsys.NewWindow(cfg.MaxOutstandingW)
	}
	return f
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Access implements memsys.Port: a DMA issued by the accelerator at time
// at, returning when the response (read) or acknowledgement (write)
// arrives back at the accelerator.
func (f *Fabric) Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if size <= 0 {
		size = 1
	}
	if kind == mem.Read {
		f.Reads++
	} else {
		f.Writes++
	}
	f.Bytes += int64(size)

	if f.tlb != nil {
		at = f.tlb.translate(f, at, addr, size)
	}

	done := at
	// Segment into TLPs; each TLP independently claims an outstanding
	// slot and traverses the link.
	remaining := size
	segAddr := addr
	t := at
	for remaining > 0 {
		seg := remaining
		if f.cfg.MaxPayload > 0 && seg > f.cfg.MaxPayload {
			seg = f.cfg.MaxPayload
		}
		d := f.accessSeg(t, kind, segAddr, seg)
		if d > done {
			done = d
		}
		// Back-to-back TLPs of one DMA stream out pipelined behind the
		// link's serialization (handled in accessSeg via f.busy).
		segAddr += mem.Addr(seg)
		remaining -= seg
	}
	return done
}

func (f *Fabric) accessSeg(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	start := at
	win := f.rWin
	if kind == mem.Write {
		win = f.wWin
	}
	if win != nil {
		admitted := win.Admit(start)
		f.StallTime += admitted.Sub(start)
		start = admitted
	}
	// Wire time for the payload, serialized on the link.
	var wire vclock.Duration
	if f.cfg.BytesPerNs > 0 {
		wire = vclock.Duration(float64(size) / f.cfg.BytesPerNs * float64(vclock.Nanosecond))
	}
	if f.busy > start {
		start = f.busy
	}
	f.busy = start.Add(wire)

	// Request traverses the link, is served by the target, response
	// traverses back.
	arrive := start.Add(wire + f.cfg.LinkLatency)
	served := f.target.Access(arrive, kind, addr, size)
	done := served.Add(f.cfg.LinkLatency)
	if win != nil {
		win.Reserve(done)
	}
	return done
}
