// Package dram implements a DRAM controller latency model: per-bank
// row-buffer state (open-page policy), RAS/CAS timing, and channel
// bandwidth serialization. It sits at the bottom of a memsys stack.
package dram

import (
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Config describes the DRAM device and channel.
type Config struct {
	Name       string
	Banks      int             // number of banks (power of two)
	RowBytes   int             // bytes per row (power of two)
	CASLat     vclock.Duration // column access (row-buffer hit)
	RASLat     vclock.Duration // row activate (added on row miss)
	PreLat     vclock.Duration // precharge (added when closing an open row)
	BytesPerNs float64         // channel bandwidth
}

// DDR4 is a representative configuration (DDR4-2933-ish, matching the
// evaluation host's memory).
var DDR4 = Config{
	Name:       "DDR4",
	Banks:      16,
	RowBytes:   8192,
	CASLat:     14 * vclock.Nanosecond,
	RASLat:     14 * vclock.Nanosecond,
	PreLat:     14 * vclock.Nanosecond,
	BytesPerNs: 23.0, // ~23 GB/s per channel
}

// Controller is a single-channel DRAM controller.
type Controller struct {
	cfg      Config
	bankMask mem.Addr
	rowBits  uint

	openRow  []int64 // -1 = closed
	bankFree []vclock.Time
	chanFree vclock.Time

	// Stats.
	RowHits   int64
	RowMisses int64
	Requests  int64
}

// New builds a controller. It panics on malformed geometry.
func New(cfg Config) *Controller {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("dram: bank count must be a positive power of two")
	}
	if cfg.RowBytes <= 0 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		panic("dram: row size must be a positive power of two")
	}
	if cfg.BytesPerNs <= 0 {
		panic("dram: bandwidth must be positive")
	}
	c := &Controller{
		cfg:      cfg,
		bankMask: mem.Addr(cfg.Banks - 1),
		openRow:  make([]int64, cfg.Banks),
		bankFree: make([]vclock.Time, cfg.Banks),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	for bits := cfg.RowBytes; bits > 1; bits >>= 1 {
		c.rowBits++
	}
	return c
}

// Access implements memsys.Port.
func (c *Controller) Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if size <= 0 {
		size = 1
	}
	c.Requests++

	// Bank interleaving on row-aligned address bits.
	row := int64(addr >> c.rowBits)
	bank := int((addr >> c.rowBits) & c.bankMask)

	start := at
	if c.bankFree[bank] > start {
		start = c.bankFree[bank]
	}

	var access vclock.Duration
	switch {
	case c.openRow[bank] == row:
		c.RowHits++
		access = c.cfg.CASLat
	case c.openRow[bank] == -1:
		c.RowMisses++
		access = c.cfg.RASLat + c.cfg.CASLat
	default:
		c.RowMisses++
		access = c.cfg.PreLat + c.cfg.RASLat + c.cfg.CASLat
	}
	c.openRow[bank] = row

	// Data transfer serializes on the channel.
	xfer := vclock.Duration(float64(size) / c.cfg.BytesPerNs * float64(vclock.Nanosecond))
	xferStart := start.Add(access)
	if c.chanFree > xferStart {
		xferStart = c.chanFree
	}
	done := xferStart.Add(xfer)
	c.chanFree = done
	c.bankFree[bank] = start.Add(access)
	_ = kind // reads and writes share timing in this model
	return done
}

// RowHitRate reports row-buffer hits / total requests.
func (c *Controller) RowHitRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(c.Requests)
}
