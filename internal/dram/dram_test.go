package dram

import (
	"testing"

	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

func testCfg() Config {
	return Config{
		Name: "t", Banks: 4, RowBytes: 1024,
		CASLat: 10 * vclock.Nanosecond, RASLat: 20 * vclock.Nanosecond, PreLat: 15 * vclock.Nanosecond,
		BytesPerNs: 64,
	}
}

func TestRowBufferHit(t *testing.T) {
	c := New(testCfg())
	// First access: closed row -> RAS+CAS = 30ns + 1ns transfer (64B/64).
	d1 := c.Access(0, mem.Read, 0, 64)
	if want := vclock.Time(31 * vclock.Nanosecond); d1 != want {
		t.Fatalf("cold access = %v, want %v", vclock.Duration(d1), vclock.Duration(want))
	}
	if c.RowMisses != 1 {
		t.Fatalf("RowMisses = %d", c.RowMisses)
	}
	// Same row: CAS only.
	d2 := c.Access(d1, mem.Read, 64, 64)
	if got := d2.Sub(d1); got != 11*vclock.Nanosecond {
		t.Fatalf("row hit = %v, want 11ns", got)
	}
	if c.RowHits != 1 {
		t.Fatalf("RowHits = %d", c.RowHits)
	}
}

func TestRowConflict(t *testing.T) {
	c := New(testCfg())
	c.Access(0, mem.Read, 0, 64)
	// Same bank (banks interleave on row address), different row:
	// row addr +Banks keeps bank, changes row.
	conflictAddr := mem.Addr(4 * 1024) // row 4, bank 0
	issue := vclock.Time(0).Add(1000 * vclock.Nanosecond)
	done := c.Access(issue, mem.Read, conflictAddr, 64)
	// Pre + RAS + CAS = 45ns + 1ns transfer.
	if got := done.Sub(issue); got != 46*vclock.Nanosecond {
		t.Fatalf("conflict = %v, want 46ns", got)
	}
}

func TestBankParallelism(t *testing.T) {
	c := New(testCfg())
	// Two accesses at t=0 to different banks both start immediately; the
	// channel serializes only the 1ns transfers.
	d1 := c.Access(0, mem.Read, 0, 64)    // bank 0
	d2 := c.Access(0, mem.Read, 1024, 64) // bank 1
	if d2.Sub(d1) > 2*vclock.Nanosecond {
		t.Fatalf("banks serialized: d1=%v d2=%v", d1, d2)
	}
}

func TestChannelBandwidthSerializes(t *testing.T) {
	c := New(testCfg())
	// Large transfers from different banks must queue on the channel.
	d1 := c.Access(0, mem.Read, 0, 6400)    // 100ns transfer
	d2 := c.Access(0, mem.Read, 1024, 6400) // must wait for channel
	if d2 <= d1 {
		t.Fatalf("channel not serialized: d1=%v d2=%v", d1, d2)
	}
	if got := d2.Sub(d1); got != 100*vclock.Nanosecond {
		t.Fatalf("second transfer delayed by %v, want 100ns", got)
	}
}

func TestRowHitRate(t *testing.T) {
	c := New(testCfg())
	c.Access(0, mem.Read, 0, 64)
	c.Access(0, mem.Read, 64, 64)
	c.Access(0, mem.Read, 128, 64)
	c.Access(0, mem.Read, 192, 64)
	if got := c.RowHitRate(); got != 0.75 {
		t.Fatalf("RowHitRate = %v, want 0.75", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 3, RowBytes: 1024, BytesPerNs: 1},
		{Banks: 4, RowBytes: 1000, BytesPerNs: 1},
		{Banks: 4, RowBytes: 1024, BytesPerNs: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
