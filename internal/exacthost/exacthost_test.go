package exacthost

import (
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

const ms = vclock.Millisecond

func run(t *testing.T, cores int, main app.ThreadFunc) Result {
	t.Helper()
	e := New(Config{Cores: cores})
	return e.Run(app.Program{Name: "test", Main: main})
}

func TestSingleThreadCompute(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		e.ComputeFor(5 * ms)
		e.ComputeFor(3 * ms)
	})
	if res.SimTime != 8*ms {
		t.Fatalf("SimTime = %v, want 8ms", res.SimTime)
	}
}

func TestParallelThreadsOverlap(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(3)
		for i := 0; i < 3; i++ {
			e.Spawn("w", func(we app.Env) {
				we.ComputeFor(10 * ms)
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	if res.SimTime != 10*ms {
		t.Fatalf("SimTime = %v, want 10ms (parallel)", res.SimTime)
	}
}

func TestOversubscribedSerializes(t *testing.T) {
	res := run(t, 1, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		for i := 0; i < 2; i++ {
			e.Spawn("w", func(we app.Env) {
				we.ComputeFor(10 * ms)
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	if res.SimTime != 20*ms {
		t.Fatalf("SimTime = %v, want 20ms (1 core, 2 threads)", res.SimTime)
	}
}

func TestCFSSharesFairly(t *testing.T) {
	// 4 threads, 2 cores, equal work: everything finishes around 2x the
	// single-thread time, and no thread starves.
	res := run(t, 2, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(4)
		for i := 0; i < 4; i++ {
			e.Spawn("w", func(we app.Env) {
				for j := 0; j < 10; j++ {
					we.ComputeFor(1 * ms)
				}
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	if res.SimTime != 20*ms {
		t.Fatalf("SimTime = %v, want 20ms", res.SimTime)
	}
}

func TestSleep(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		e.Sleep(7 * ms)
	})
	if res.SimTime != 7*ms {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
}

func TestMutexSerializes(t *testing.T) {
	var mu app.Mutex
	res := run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		for i := 0; i < 2; i++ {
			e.Spawn("w", func(we app.Env) {
				mu.Lock(we)
				we.ComputeFor(5 * ms)
				mu.Unlock(we)
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	if res.SimTime != 10*ms {
		t.Fatalf("SimTime = %v, want 10ms (critical sections serialized)", res.SimTime)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	b := &app.Barrier{N: 3}
	var maxAfter vclock.Time
	res := run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(3)
		for i := 0; i < 3; i++ {
			d := vclock.Duration(i+1) * ms
			e.Spawn("w", func(we app.Env) {
				we.ComputeFor(d)
				b.Wait(we)
				if now := we.Now(); now > maxAfter {
					maxAfter = now
				}
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	// All threads pass the barrier at the slowest arrival: 3ms.
	if maxAfter != vclock.Time(3*ms) {
		t.Fatalf("barrier released at %v, want 3ms", maxAfter)
	}
	if res.SimTime != 3*ms {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	q := &app.Queue{}
	var got []int
	run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		e.Spawn("prod", func(we app.Env) {
			for i := 0; i < 5; i++ {
				we.ComputeFor(1 * ms)
				q.Push(we, i)
			}
			q.Close(we)
			wg.Done(we)
		})
		e.Spawn("cons", func(we app.Env) {
			for {
				v, ok := q.Pop(we)
				if !ok {
					break
				}
				got = append(got, v.(int))
			}
			wg.Done(we)
		})
		wg.Wait(e)
	})
	if len(got) != 5 {
		t.Fatalf("consumed %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestJumpTCostsNothing(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		e.ComputeFor(2 * ms)
		e.JumpT(func() {
			e.ComputeFor(100 * ms) // instrumentation outside virtual time
		})
		e.ComputeFor(3 * ms)
	})
	if res.SimTime != 5*ms {
		t.Fatalf("SimTime = %v, want 5ms", res.SimTime)
	}
}

func TestCompressTScales(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		e.CompressT(10, func() {
			e.ComputeFor(50 * ms)
		})
	})
	if res.SimTime != 5*ms {
		t.Fatalf("SimTime = %v, want 5ms (10x compression)", res.SimTime)
	}
}

func TestNestedCompressT(t *testing.T) {
	res := run(t, 4, func(e app.Env) {
		e.CompressT(2, func() {
			e.CompressT(5, func() {
				e.ComputeFor(100 * ms)
			})
		})
	})
	if res.SimTime != 10*ms {
		t.Fatalf("SimTime = %v, want 10ms (2*5 compression)", res.SimTime)
	}
}

// fakeDevice processes one "task" per doorbell write: busy for Busy time,
// then sets the status register and optionally raises an IRQ.
type fakeDevice struct {
	host    accel.Host
	busy    vclock.Duration
	irq     bool
	doneAt  vclock.Time
	pending bool
	status  uint32
	started int64
	dma     int // bytes to DMA per task
	dmaAddr mem.Addr
}

func (d *fakeDevice) Name() string { return "fake" }

func (d *fakeDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	if off == 0 {
		return d.status
	}
	return 0
}

func (d *fakeDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	if off == 0 { // doorbell
		d.started++
		d.status = 0
		end := at.Add(d.busy)
		if d.dma > 0 {
			end = d.host.DMA(at, mem.Read, d.dmaAddr, d.dma).Add(d.busy)
		}
		d.doneAt = end
		d.pending = true
	}
}

func (d *fakeDevice) Advance(t vclock.Time) {
	if d.pending && t >= d.doneAt {
		d.pending = false
		d.status = 1
		if d.irq {
			d.host.RaiseIRQ(d.doneAt, 5)
		}
	}
}

func (d *fakeDevice) NextEvent() (vclock.Time, bool) {
	if d.pending {
		return d.doneAt, true
	}
	return vclock.Never, false
}

func (d *fakeDevice) Stats() accel.DeviceStats {
	return accel.DeviceStats{TasksStarted: d.started}
}

func TestDevicePolling(t *testing.T) {
	e := New(Config{Cores: 4})
	dev := &fakeDevice{busy: 10 * ms}
	b := &DeviceBinding{Device: dev, MMIOBase: 0x8000_0000, MMIOSize: 4096,
		MMIOCost: 1 * vclock.Microsecond}
	dev.host = e.HostFor(b)
	e.Attach(b)

	res := e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1) // doorbell
		for env.MMIORead(0x8000_0000) == 0 {
			env.Sleep(1 * ms)
		}
	}})
	// Doorbell at 1us (after MMIO cost... write completes at 1us), device
	// busy 10ms; polling discovers it on the poll after 10ms.
	if res.SimTime < 10*ms || res.SimTime > 12*ms {
		t.Fatalf("SimTime = %v, want ~10-12ms", res.SimTime)
	}
	if dev.started != 1 {
		t.Fatalf("device started %d tasks", dev.started)
	}
}

func TestDeviceIRQ(t *testing.T) {
	e := New(Config{Cores: 4})
	dev := &fakeDevice{busy: 10 * ms, irq: true}
	b := &DeviceBinding{Device: dev, MMIOBase: 0x8000_0000, MMIOSize: 4096,
		MMIOCost: 1 * vclock.Microsecond}
	dev.host = e.HostFor(b)
	e.Attach(b)

	res := e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1)
		env.WaitIRQ(5)
		if env.MMIORead(0x8000_0000) != 1 {
			t.Error("status not set at IRQ time")
		}
	}})
	// The doorbell reaches the device when the MMIO transaction starts
	// (t=0); the device is busy 10ms; the IRQ wakes the thread at 10ms,
	// and the final status read adds one MMIO cost.
	want := vclock.Duration(10*ms + 1*vclock.Microsecond)
	if res.SimTime != want {
		t.Fatalf("SimTime = %v, want %v", res.SimTime, want)
	}
	if e.IRQs != 1 {
		t.Fatalf("IRQs = %d", e.IRQs)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() vclock.Duration {
		var mu app.Mutex
		q := &app.Queue{}
		e := New(Config{Cores: 2})
		return e.Run(app.Program{Main: func(env app.Env) {
			var wg app.WaitGroup
			wg.Add(4)
			for i := 0; i < 3; i++ {
				env.Spawn("w", func(we app.Env) {
					for j := 0; j < 20; j++ {
						mu.Lock(we)
						we.ComputeFor(100 * vclock.Microsecond)
						mu.Unlock(we)
						q.Push(we, j)
					}
					wg.Done(we)
				})
			}
			env.Spawn("drain", func(we app.Env) {
				for i := 0; i < 60; i++ {
					q.Pop(we)
				}
				wg.Done(we)
			})
			wg.Wait(env)
		}}).SimTime
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("zero sim time")
	}
}

func TestTaskBufferProtectionHookFires(t *testing.T) {
	e := New(Config{Cores: 1})
	region := e.Mem().Alloc("taskbuf", 4096)
	hooks := 0
	e.Mem().Protect(region, func(mem.AccessKind, mem.Addr, int) { hooks++ })
	e.Run(app.Program{Main: func(env app.Env) {
		var buf [8]byte
		env.TaskWrite(region.Base, buf[:])
		env.TaskRead(region.Base, buf[:])
	}})
	if hooks != 2 {
		t.Fatalf("protection hooks fired %d times, want 2", hooks)
	}
}

func TestCFSWakePlacement(t *testing.T) {
	// A thread that slept a long time must not starve currently running
	// threads on wake (its vruntime is aligned to the minimum, not kept
	// from the past): after waking it shares the single core roughly
	// fairly rather than monopolizing it.
	var sleeperDone, spinnerDone vclock.Time
	run(t, 1, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		e.Spawn("sleeper", func(we app.Env) {
			we.Sleep(50 * ms)
			for i := 0; i < 10; i++ {
				we.ComputeFor(1 * ms)
			}
			sleeperDone = we.Now()
			wg.Done(we)
		})
		e.Spawn("spinner", func(we app.Env) {
			for i := 0; i < 60; i++ {
				we.ComputeFor(1 * ms)
			}
			spinnerDone = we.Now()
			wg.Done(we)
		})
		wg.Wait(e)
	})
	// Total work 70ms on one core; both finish near the end — the woken
	// sleeper interleaves with the spinner rather than running behind it.
	if sleeperDone >= vclock.Time(70*ms) {
		t.Fatalf("sleeper finished last at %v (monopolized or starved)", sleeperDone)
	}
	if spinnerDone != vclock.Time(70*ms) {
		t.Fatalf("spinner done at %v, want 70ms", spinnerDone)
	}
}

func TestStickyIRQExact(t *testing.T) {
	// An interrupt raised before anyone waits must be latched.
	e := New(Config{Cores: 2})
	dev := &fakeDevice{busy: 1 * vclock.Microsecond, irq: true}
	b := &DeviceBinding{Device: dev, MMIOBase: 0x8000_0000, MMIOSize: 4096,
		MMIOCost: 1 * vclock.Microsecond}
	dev.host = e.HostFor(b)
	e.Attach(b)
	completed := false
	e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1)
		env.ComputeFor(10 * vclock.Microsecond) // IRQ fires while running
		env.WaitIRQ(5)                          // must consume the latch
		completed = true
	}})
	if !completed {
		t.Fatal("latched IRQ lost")
	}
}
