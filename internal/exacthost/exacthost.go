// Package exacthost implements an exact-time host engine: every thread
// event, interaction and interrupt is resolved at its precise virtual
// time, with a CFS-like scheduler when threads oversubscribe cores.
//
// It plays two roles in the evaluation:
//
//   - With the native compute model it is the *reference system* — the
//     stand-in for the paper's bare-metal / FPGA-testbed ground truth
//     that NEX's simulated time is compared against (Table 3).
//   - With the cycle-level CPU model from package cpu it is the
//     *gem5-style host*: same exact-time semantics, but compute segments
//     are simulated instruction by instruction, which is slow and whose
//     timing model deviates from native the way gem5's does (§6.5).
package exacthost

import (
	"fmt"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/coro"
	"nexsim/internal/eventq"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/parsim"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
)

// ComputeModel turns a Work descriptor into a modeled duration. The
// native model is a closed-form conversion; the gem5-style model
// simulates the instruction stream and burns host CPU doing so.
type ComputeModel interface {
	Duration(w isa.Work) vclock.Duration
}

// NativeModel models compute segments at their native duration.
type NativeModel struct {
	Clock vclock.Hz
}

// Duration implements ComputeModel.
func (m NativeModel) Duration(w isa.Work) vclock.Duration {
	return w.NativeDuration(m.Clock)
}

// DeviceBinding attaches a device to the engine: its MMIO window and the
// fabric its DMAs traverse.
type DeviceBinding struct {
	Device   accel.Device
	MMIOBase mem.Addr
	MMIOSize uint64
	DMAPort  memsys.Port     // interconnect + caches + memory
	MMIOCost vclock.Duration // CPU-side cost of one register read (round trip)
	// MMIOWriteCost is the cost of a posted register write (the CPU does
	// not wait for the device); default 120ns.
	MMIOWriteCost vclock.Duration

	idx int // position in Engine.devices, set by Attach
}

// Config parameterizes the engine.
type Config struct {
	Name    string
	Clock   vclock.Hz       // host core frequency
	Cores   int             // physical cores available to application threads
	Compute ComputeModel    // nil = NativeModel{Clock}
	Memory  *mem.Memory     // nil = fresh memory
	Trace   *trace.Recorder // optional
	// TaskAccessCost is the virtual cost of one task-buffer access
	// (uncached shared memory); default 90ns.
	TaskAccessCost vclock.Duration
	// Slice is the CFS scheduling slice when cores are oversubscribed;
	// default 3ms.
	Slice vclock.Duration
	// MaxSteps aborts the run after this many event-queue steps — the
	// exact engine's closest analogue of NEX's epoch budget (0 =
	// unlimited). MaxWall aborts after this much host wall-clock time
	// (0 = unlimited). An aborted engine sets BudgetExceeded; the
	// caller must Reap it.
	MaxSteps int64
	MaxWall  time.Duration
	// Intra >= 2 runs devices on up to Intra-1 stepper goroutines under
	// conservative lookahead (DESIGN.md §10); results stay byte-identical
	// to serial. Ignored (serial) when MaxSteps > 0: the serial loop
	// counts device-advance iterations against the step budget, and the
	// parallel loop must abort at the identical point.
	Intra int
}

// Engine is an exact-time host simulator instance.
type Engine struct {
	cfg     Config
	mem     *mem.Memory
	evq     eventq.Queue
	devices []*DeviceBinding
	devTime vclock.Time // all devices advanced to at least this time
	live    int
	irqWait map[int][]*coro.Thread // vector -> waiters
	irqPend map[int]int            // vector -> undelivered (sticky) interrupts
	nextTID int

	// CFS state.
	runq    []*tstate // runnable, waiting for a core, sorted by vruntime
	running int       // threads currently holding cores
	minvr   vclock.Duration

	// Watchdog budget state.
	threads   []*coro.Thread // every thread ever created (for Reap)
	steps     int64          // event-queue steps taken
	wallStart time.Time
	exceeded  bool

	// Parallel intra-run state (nil/zero when serial).
	crew     *parsim.Crew
	devWall  time.Duration
	ranLanes int

	// Statistics.
	Interactions int64
	IRQs         int64
}

// tstate is engine-private per-thread state.
type tstate struct {
	th        *coro.Thread
	vruntime  vclock.Duration
	pending   bool // pending unpark
	parked    bool
	remaining vclock.Duration // unfinished compute (sliced out)
	slip      bool            // inside a SlipStream region (fast-forward)
	compress  []float64       // stack of CompressT factors
	jumpt     int             // JumpT nesting depth
	seedCtr   uint64
}

func st(t *coro.Thread) *tstate { return t.Data.(*tstate) }

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Clock == 0 {
		cfg.Clock = 3 * vclock.GHz
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 16
	}
	if cfg.Compute == nil {
		cfg.Compute = NativeModel{Clock: cfg.Clock}
	}
	if cfg.Memory == nil {
		cfg.Memory = mem.New(0x1000_0000)
	}
	if cfg.TaskAccessCost == 0 {
		cfg.TaskAccessCost = 90 * vclock.Nanosecond
	}
	if cfg.Slice == 0 {
		cfg.Slice = 3 * vclock.Millisecond
	}
	return &Engine{
		cfg:     cfg,
		mem:     cfg.Memory,
		irqWait: make(map[int][]*coro.Thread),
		irqPend: make(map[int]int),
	}
}

// Mem returns the engine's simulated physical memory.
func (e *Engine) Mem() *mem.Memory { return e.mem }

// Attach registers a device binding. Must be called before Run.
func (e *Engine) Attach(b *DeviceBinding) {
	if b.MMIOCost == 0 {
		b.MMIOCost = 850 * vclock.Nanosecond // ~PCIe round trip + core cost
	}
	if b.MMIOWriteCost == 0 {
		b.MMIOWriteCost = 120 * vclock.Nanosecond // posted write
	}
	b.idx = len(e.devices)
	e.devices = append(e.devices, b)
}

// HostFor returns the accel.Host through which a device bound by b
// reaches this engine's memory system.
func (e *Engine) HostFor(b *DeviceBinding) accel.Host { return &hostShim{e: e, b: b} }

// Result summarizes a completed run.
type Result struct {
	SimTime vclock.Duration
	Threads int
}

// Run executes the program to completion (or until its budget is
// exceeded — check BudgetExceeded and Reap on abort) and returns the
// simulated time.
func (e *Engine) Run(prog app.Program) Result {
	if e.cfg.Intra >= 2 && len(e.devices) > 0 && e.cfg.MaxSteps == 0 {
		devs := make([]accel.Device, len(e.devices))
		for i, b := range e.devices {
			devs[i] = b.Device
		}
		e.crew = parsim.New(devs, e.cfg.Intra-1)
		e.ranLanes = e.crew.Lanes()
		defer func() {
			e.devWall = e.crew.DeviceWall()
			e.crew.Shutdown()
			e.crew = nil
		}()
	}
	main := e.newThread("main", prog.Main)
	e.wakeAt(main, 0)
	if e.cfg.MaxWall > 0 {
		e.wallStart = time.Now() //simlint:allow nondet-time watchdog wall budget, never simulation state
	}
	e.loop()
	return Result{SimTime: e.evq.Now().Sub(0), Threads: e.nextTID}
}

// IntraStats reports the stepper-lane count of the last Run (0 when it
// ran serially) and the cumulative wall time the steppers spent
// advancing devices.
func (e *Engine) IntraStats() (lanes int, deviceWall time.Duration) {
	return e.ranLanes, e.devWall
}

// overBudget reports whether the run blew its step or wall budget. The
// step bound is exact; the wall bound is amortized over 1024 steps.
func (e *Engine) overBudget() bool {
	e.steps++
	if e.cfg.MaxSteps > 0 && e.steps > e.cfg.MaxSteps {
		return true
	}
	if e.cfg.MaxWall > 0 && e.steps&1023 == 0 && time.Since(e.wallStart) > e.cfg.MaxWall { //simlint:allow nondet-time watchdog wall budget, never simulation state
		return true
	}
	return false
}

// BudgetExceeded reports whether the last Run aborted on its budget.
func (e *Engine) BudgetExceeded() bool { return e.exceeded }

// Reap force-terminates every live thread goroutine of an abandoned run
// (see coro.Kill). The engine must not be used afterwards.
func (e *Engine) Reap() {
	for _, th := range e.threads {
		th.Kill()
	}
	e.live = 0
}

// Now returns current virtual time.
func (e *Engine) Now() vclock.Time { return e.evq.Now() }

func (e *Engine) newThread(name string, fn app.ThreadFunc) *coro.Thread {
	id := e.nextTID
	e.nextTID++
	var th *coro.Thread
	th = coro.NewThread(id, fmt.Sprintf("%s#%d", name, id), func() {
		fn(&env{e: e, th: th})
	})
	th.Data = &tstate{th: th}
	e.threads = append(e.threads, th)
	e.live++
	return th
}

// wakeAt schedules th to contend for a core at time at.
func (e *Engine) wakeAt(th *coro.Thread, at vclock.Time) {
	e.evq.At(at, func(now vclock.Time) { e.dispatch(th, now) })
}

// dispatch gives th a core if one is free, otherwise queues it by
// vruntime. Called when a thread becomes runnable.
func (e *Engine) dispatch(th *coro.Thread, now vclock.Time) {
	s := st(th)
	// CFS-style wakeup placement: align vruntime with the current
	// minimum so long sleepers do not monopolize cores on wake.
	if s.vruntime < e.minvr {
		s.vruntime = e.minvr
	}
	if e.running < e.cfg.Cores {
		e.running++
		e.grantCore(th, now)
		return
	}
	e.enqueue(s)
}

func (e *Engine) enqueue(s *tstate) {
	i := len(e.runq)
	for j, o := range e.runq {
		if o.vruntime > s.vruntime {
			i = j
			break
		}
	}
	e.runq = append(e.runq, nil)
	copy(e.runq[i+1:], e.runq[i:])
	e.runq[i] = s
}

// grantCore is called when th holds a core: continue a sliced-out
// compute segment, or resume the coroutine.
func (e *Engine) grantCore(th *coro.Thread, now vclock.Time) {
	s := st(th)
	if s.vruntime > e.minvr {
		e.minvr = s.vruntime
	}
	if s.remaining > 0 {
		rem := s.remaining
		s.remaining = 0
		e.continueCompute(th, now, rem)
		return
	}
	e.runThread(th, now)
}

// grantNext hands a freed core to the lowest-vruntime waiter.
func (e *Engine) grantNext(now vclock.Time) {
	if e.running < e.cfg.Cores && len(e.runq) > 0 {
		next := e.runq[0]
		e.runq = e.runq[1:]
		e.running++
		e.grantCore(next.th, now)
	}
}

// releaseCore frees the current thread's core and reassigns it.
func (e *Engine) releaseCore(now vclock.Time) {
	e.running--
	e.grantNext(now)
}

// continueCompute runs (part of) a compute segment on the held core.
func (e *Engine) continueCompute(th *coro.Thread, now vclock.Time, d vclock.Duration) {
	chunk := d
	if len(e.runq) > 0 && chunk > e.cfg.Slice {
		chunk = e.cfg.Slice
	}
	end := now.Add(chunk)
	s := st(th)
	s.vruntime += chunk
	e.traceSpan(th.Name, trace.Compute, now, end)
	rem := d - chunk
	e.evq.At(end, func(tn vclock.Time) {
		if rem == 0 && len(e.runq) == 0 {
			e.runThread(th, tn) // keep the core
			return
		}
		// Yield the core: requeue ourselves (with any remainder) and let
		// the fairest waiter run.
		s.remaining = rem
		e.running--
		if e.running < e.cfg.Cores && len(e.runq) == 0 {
			e.running++
			e.grantCore(th, tn)
			return
		}
		e.enqueue(s)
		e.grantNext(tn)
	})
}

// runThread resumes th repeatedly until it blocks, yields its core, or
// exits. The caller guarantees th holds a core.
func (e *Engine) runThread(th *coro.Thread, now vclock.Time) {
	for {
		r := th.Resume()
		s := st(th)
		switch r.Op {
		case coro.OpExit:
			e.live--
			e.releaseCore(now)
			return

		case coro.OpAdvance:
			d := e.computeDuration(s, r.Work)
			if d == 0 {
				continue
			}
			e.continueCompute(th, now, d)
			return

		case coro.OpInteract:
			e.Interactions++
			e.advanceDevices(now)
			cost := r.Interact(now)
			if cost > 0 {
				// The thread stalls on the interaction, holding its core
				// (an MMIO read stalls the CPU).
				end := now.Add(cost)
				e.traceSpan(th.Name, trace.MMIO, now, end)
				s.vruntime += cost
				e.evq.At(end, func(tn vclock.Time) { e.runThread(th, tn) })
				return
			}
			continue

		case coro.OpPark:
			if s.pending {
				s.pending = false
				continue
			}
			s.parked = true
			e.releaseCore(now)
			return

		case coro.OpUnpark:
			e.unpark(r.Target, now)
			continue

		case coro.OpSleep:
			e.traceSpan(th.Name, trace.Blocked, now, now.Add(r.Dur))
			e.releaseCore(now)
			e.wakeAt(th, now.Add(r.Dur))
			return

		case coro.OpSpawn:
			body, ok := r.Body.(app.ThreadFunc)
			if !ok {
				panic("exacthost: spawn body is not an app.ThreadFunc")
			}
			nt := e.newThread(r.Name, body)
			th.Spawned = nt
			e.wakeAt(nt, now)
			continue

		case coro.OpWaitIRQ:
			if e.irqPend[r.Vector] > 0 {
				// A previously raised interrupt is still pending: consume
				// it without blocking (avoids the lost-wakeup race
				// between a status check and the wait).
				e.irqPend[r.Vector]--
				continue
			}
			s.parked = true
			e.irqWait[r.Vector] = append(e.irqWait[r.Vector], th)
			e.releaseCore(now)
			return

		case coro.OpWarp:
			e.handleWarp(s, r)
			continue

		case coro.OpTick:
			// Exact engine: tick points are ordinary interaction points
			// with no extra cost.
			e.advanceDevices(now)
			continue

		default:
			panic(fmt.Sprintf("exacthost: unknown op %v", r.Op))
		}
	}
}

func (e *Engine) computeDuration(s *tstate, w isa.Work) vclock.Duration {
	if s.jumpt > 0 {
		return 0 // JumpT: outside virtual time
	}
	var d vclock.Duration
	if s.slip {
		// SlipStream: fast-forward the segment without detailed
		// simulation, the way gem5 users checkpoint past setup phases
		// with the KVM CPU (§8) — native-time accounting only.
		d = w.NativeDuration(e.cfg.Clock)
	} else {
		d = e.cfg.Compute.Duration(w)
	}
	for _, f := range s.compress {
		d = vclock.Duration(float64(d) / f)
	}
	return d
}

func (e *Engine) handleWarp(s *tstate, r coro.Request) {
	switch r.Warp {
	case coro.CompressT:
		if r.Enter {
			s.compress = append(s.compress, r.Factor)
		} else {
			s.compress = s.compress[:len(s.compress)-1]
		}
	case coro.JumpT:
		if r.Enter {
			s.jumpt++
		} else {
			s.jumpt--
		}
	case coro.SlipStream:
		// Virtual time still flows normally, but detailed compute
		// simulation is skipped (KVM-style fast-forward).
		s.slip = r.Enter
	}
}

func (e *Engine) unpark(target *coro.Thread, now vclock.Time) {
	s := st(target)
	if !s.parked {
		s.pending = true
		return
	}
	s.parked = false
	e.wakeAt(target, now)
}

// RaiseIRQ delivers a device interrupt: exact engines deliver at the
// raise time (or now, if the raise time already passed).
func (e *Engine) RaiseIRQ(at vclock.Time, vector int) {
	e.IRQs++
	waiters := e.irqWait[vector]
	if len(waiters) == 0 {
		e.irqPend[vector]++ // latch until someone waits
		return
	}
	e.irqWait[vector] = waiters[1:]
	th := waiters[0]
	st(th).parked = false
	wake := at
	if now := e.evq.Now(); wake < now {
		wake = now
	}
	e.wakeAt(th, wake)
}

// advanceDevices catches all devices up to time t. In parallel mode
// devices that cannot raise interrupts are granted the horizon for
// their stepper lane instead of advancing inline; IRQ-capable devices
// keep the serial schedule (joined first so the inline Advance cannot
// race a still-draining grant from before the driver enabled IRQs).
func (e *Engine) advanceDevices(t vclock.Time) {
	if t < e.devTime {
		return
	}
	e.devTime = t
	if e.crew == nil {
		for _, b := range e.devices {
			b.Device.Advance(t)
		}
		return
	}
	for i, b := range e.devices {
		if parsim.MayRaiseIRQ(b.Device) {
			e.crew.Join(i)
			b.Device.Advance(t)
		} else {
			e.crew.Grant(i, t)
		}
	}
}

// joinDev quiesces one device's stepper lane before the host observes
// the device (an MMIO access, a stats read). No-op when serial.
func (e *Engine) joinDev(b *DeviceBinding) {
	if e.crew != nil {
		e.crew.Join(b.idx)
	}
}

func (e *Engine) minDeviceNext() (vclock.Time, bool) {
	best, any := vclock.Never, false
	for _, b := range e.devices {
		if at, ok := b.Device.NextEvent(); ok && at < best {
			best, any = at, true
		}
	}
	return best, any
}

// minInlineNext is minDeviceNext restricted to IRQ-capable devices (the
// ones advanced inline on the serial schedule). Async-granted devices
// are skipped: their steppers may be mid-advance, and their internal
// events cannot affect the host before the next joined observation.
func (e *Engine) minInlineNext() (vclock.Time, bool) {
	best, any := vclock.Never, false
	for i, b := range e.devices {
		if !parsim.MayRaiseIRQ(b.Device) {
			continue
		}
		e.crew.Join(i)
		if at, ok := b.Device.NextEvent(); ok && at < best {
			best, any = at, true
		}
	}
	return best, any
}

// loop is the main event loop: interleave thread events with device
// activity in exact time order.
func (e *Engine) loop() {
	for e.live > 0 {
		if e.overBudget() {
			e.exceeded = true
			return
		}
		tNext, okT := e.evq.NextTime()
		if e.crew == nil {
			// Serial mode: no lanes exist, so unjoined device reads are
			// single-threaded by construction.
			dNext, okD := e.minDeviceNext() //simlint:allow lane-safety crew==nil in this branch
			if okD && (!okT || dNext < tNext) {
				e.advanceDevices(dNext)
				continue
			}
			if !okT {
				panic("exacthost: deadlock — live threads but no pending events or device activity")
			}
			e.evq.Step()
			continue
		}
		// Parallel: IRQ-capable devices keep the exact serial
		// interleave (their Advance can insert thread wakeups); the
		// rest run ahead on their stepper lanes, bounded by the next
		// thread event — the earliest time the host could observe them.
		dNext, okD := e.minInlineNext()
		if okD && (!okT || dNext < tNext) {
			e.advanceDevices(dNext)
			continue
		}
		if okT {
			e.advanceDevices(tNext)
			e.evq.Step()
			continue
		}
		// No thread events, no inline device events: whatever remains
		// lives on the stepper lanes. Quiesce and re-check serially —
		// either a lane still has internal events (advance through
		// them) or the run is genuinely deadlocked, exactly as serial.
		e.crew.JoinAll()
		dNext, okD = e.minDeviceNext()
		if !okD {
			panic("exacthost: deadlock — live threads but no pending events or device activity")
		}
		e.advanceDevices(dNext)
	}
}

func (e *Engine) traceSpan(comp string, k trace.Kind, a, b vclock.Time) {
	e.cfg.Trace.Add(trace.Span{Component: comp, Kind: k, Start: a, End: b})
}

// binding finds the device binding covering an MMIO address.
func (e *Engine) binding(addr mem.Addr) *DeviceBinding {
	for _, b := range e.devices {
		if addr >= b.MMIOBase && uint64(addr) < uint64(b.MMIOBase)+b.MMIOSize {
			return b
		}
	}
	return nil
}

type hostShim struct {
	e *Engine
	b *DeviceBinding
}

func (h *hostShim) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if h.b.DMAPort == nil {
		return at
	}
	return h.b.DMAPort.Access(at, kind, addr, size)
}

func (h *hostShim) ZeroCostRead(addr mem.Addr, p []byte)  { h.e.mem.ReadAt(addr, p) }
func (h *hostShim) ZeroCostWrite(addr mem.Addr, p []byte) { h.e.mem.WriteAt(addr, p) }
func (h *hostShim) RaiseIRQ(at vclock.Time, vector int)   { h.e.RaiseIRQ(at, vector) }
