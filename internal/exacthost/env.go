package exacthost

import (
	"fmt"

	"nexsim/internal/app"
	"nexsim/internal/coro"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// env implements app.Env for one thread of an exact-time engine. Methods
// run on the thread's goroutine; the engine goroutine is blocked in
// Resume while they execute, so reads of engine state are safe.
type env struct {
	e  *Engine
	th *coro.Thread
}

func (v *env) Now() vclock.Time { return v.e.evq.Now() }

func (v *env) Clock() vclock.Hz { return v.e.cfg.Clock }

func (v *env) Compute(w isa.Work) {
	v.th.Yield(coro.Request{Op: coro.OpAdvance, Work: w})
}

func (v *env) ComputeFor(d vclock.Duration) {
	if d <= 0 {
		return
	}
	s := st(v.th)
	s.seedCtr++
	seed := uint64(v.th.ID)<<32 ^ s.seedCtr
	v.Compute(isa.Segment(d, v.e.cfg.Clock, isa.DefaultMix, 64<<10, 1.5, seed))
}

func (v *env) MMIORead(addr mem.Addr) uint32 {
	var out uint32
	v.th.Yield(coro.Request{Op: coro.OpInteract, Interact: func(at vclock.Time) vclock.Duration {
		b := v.e.binding(addr)
		if b == nil {
			panic(fmt.Sprintf("exacthost: MMIO read of unmapped address %#x", uint64(addr)))
		}
		// Parallel intra-run mode: quiesce this device's stepper lane
		// before observing it; other devices keep running.
		v.e.joinDev(b)
		out = b.Device.RegRead(at, addr-b.MMIOBase)
		return b.MMIOCost
	}})
	return out
}

func (v *env) MMIOWrite(addr mem.Addr, val uint32) {
	v.th.Yield(coro.Request{Op: coro.OpInteract, Interact: func(at vclock.Time) vclock.Duration {
		b := v.e.binding(addr)
		if b == nil {
			panic(fmt.Sprintf("exacthost: MMIO write of unmapped address %#x", uint64(addr)))
		}
		v.e.joinDev(b)
		b.Device.RegWrite(at, addr-b.MMIOBase, val)
		return b.MMIOWriteCost
	}})
}

func (v *env) TaskRead(addr mem.Addr, p []byte) {
	v.th.Yield(coro.Request{Op: coro.OpInteract, Interact: func(at vclock.Time) vclock.Duration {
		v.e.mem.ReadFaulting(addr, p)
		return v.e.cfg.TaskAccessCost
	}})
}

func (v *env) TaskWrite(addr mem.Addr, p []byte) {
	v.th.Yield(coro.Request{Op: coro.OpInteract, Interact: func(at vclock.Time) vclock.Duration {
		v.e.mem.WriteFaulting(addr, p)
		return v.e.cfg.TaskAccessCost
	}})
}

func (v *env) Mem() *mem.Memory { return v.e.mem }

func (v *env) Self() *coro.Thread { return v.th }

func (v *env) Park() {
	v.th.Yield(coro.Request{Op: coro.OpPark})
}

func (v *env) Unpark(t *coro.Thread) {
	v.th.Yield(coro.Request{Op: coro.OpUnpark, Target: t})
}

func (v *env) Spawn(name string, fn app.ThreadFunc) *coro.Thread {
	v.th.Yield(coro.Request{Op: coro.OpSpawn, Name: name, Body: fn})
	nt := v.th.Spawned
	v.th.Spawned = nil
	return nt
}

func (v *env) Sleep(d vclock.Duration) {
	if d <= 0 {
		return
	}
	v.th.Yield(coro.Request{Op: coro.OpSleep, Dur: d})
}

func (v *env) WaitIRQ(vec int) {
	v.th.Yield(coro.Request{Op: coro.OpWaitIRQ, Vector: vec})
}

func (v *env) CompressT(factor float64, fn func()) {
	if factor <= 0 {
		panic("exacthost: CompressT factor must be positive")
	}
	v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.CompressT, Factor: factor, Enter: true})
	defer v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.CompressT, Enter: false})
	fn()
}

func (v *env) SlipStream(fn func()) {
	v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.SlipStream, Enter: true})
	defer v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.SlipStream, Enter: false})
	fn()
}

func (v *env) JumpT(fn func()) {
	v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.JumpT, Enter: true})
	defer v.th.Yield(coro.Request{Op: coro.OpWarp, Warp: coro.JumpT, Enter: false})
	fn()
}

func (v *env) Tick() {
	v.th.Yield(coro.Request{Op: coro.OpTick})
}
