package dsim

import (
	"bytes"
	"testing"

	"nexsim/internal/lpn"
	"nexsim/internal/lpnlang"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// testHost is a minimal accel.Host: fixed-latency DMA over a real memory.
type testHost struct {
	mem  *mem.Memory
	lat  vclock.Duration
	dmas []vclock.Time // completion times, in issue order
	irqs []vclock.Time
}

func (h *testHost) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	done := at.Add(h.lat)
	h.dmas = append(h.dmas, done)
	return done
}
func (h *testHost) ZeroCostRead(addr mem.Addr, p []byte)  { h.mem.ReadAt(addr, p) }
func (h *testHost) ZeroCostWrite(addr mem.Addr, p []byte) { h.mem.WriteAt(addr, p) }
func (h *testHost) RaiseIRQ(at vclock.Time, v int)        { h.irqs = append(h.irqs, at) }

// copyDev is a toy DSim accelerator: on doorbell it reads n bytes from
// src, XORs them with 0x5A, and writes them to dst. The LPN models
// load -> process -> store with a DMA-response dependency on the load.
type copyDev struct {
	Base
	doneReg   uint32
	inTasks   *lpn.Place
	loadResp  *lpn.Place
	storeDone *lpn.Place
}

func newCopyDev(h *testHost) *copyDev {
	d := &copyDev{}
	b := lpnlang.NewBuilder("copy", 1*vclock.GHz)
	d.inTasks = b.Queue("tasks", 0)
	d.loadResp = b.Queue("loadResp", 0)
	procQ := b.Queue("procQ", 0)
	d.storeDone = b.Queue("storeDone", 0)

	// Load: issue the input DMA; processing waits for its response.
	b.Stage("load", d.inTasks, nil, b.Cycles(4),
		lpnlang.Effect(d.EmitDMA("LOAD", d.loadResp)))
	// Process: 2 cycles per byte (attr 0 carries the byte count).
	b.Stage("process", d.loadResp, procQ, b.CyclesAttr(10, 2, 0))
	// Store: issue the output DMA; completion fires the done register.
	b.Stage("store", procQ, nil, b.Cycles(4),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.EmitDMA("STORE", d.storeDone)(f, done)
		}))
	b.Stage("finish", d.storeDone, nil, nil,
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.doneReg = 1
			d.TaskCompleted(f.Time)
			d.Host.RaiseIRQ(f.Time, 1)
		}))
	d.Init("copydev", h, b.MustBuild())
	return d
}

func (d *copyDev) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	return d.doneReg
}

// RegWrite(0) = doorbell with packed (src>>?); use fixed layout for test:
// regs: 0 doorbell(n), 4 src, 8 dst — written before doorbell.
type copyTask struct {
	src, dst mem.Addr
	n        int
}

func (d *copyDev) start(at vclock.Time, t copyTask) {
	d.TaskStarted(at)
	d.doneReg = 0
	// Functional track first: compute results, record DMAs.
	rec := d.Recorder()
	in := rec.ReadDMA("LOAD", t.src, t.n)
	out := make([]byte, t.n)
	for i, v := range in {
		out[i] = v ^ 0x5A
	}
	rec.WriteDMA("STORE", t.dst, out)
	// Then hand the task to the performance track.
	d.Net.Inject(d.inTasks, lpn.Tok(at, int64(t.n)))
}

func (d *copyDev) RegWrite(at vclock.Time, off mem.Addr, v uint32) {}

func setup(lat vclock.Duration) (*testHost, *copyDev) {
	h := &testHost{mem: mem.New(0), lat: lat}
	return h, newCopyDev(h)
}

func TestFunctionalCorrectness(t *testing.T) {
	h, d := setup(100 * vclock.Nanosecond)
	src := mem.Addr(0x1000)
	dst := mem.Addr(0x2000)
	input := []byte("hello dsim")
	h.mem.WriteAt(src, input)

	d.start(0, copyTask{src: src, dst: dst, n: len(input)})
	d.Advance(vclock.Never - 1)

	got := make([]byte, len(input))
	h.mem.ReadAt(dst, got)
	want := make([]byte, len(input))
	for i, v := range input {
		want[i] = v ^ 0x5A
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if d.doneReg != 1 {
		t.Fatal("done register not set")
	}
}

func TestTimingDependsOnDMAResponse(t *testing.T) {
	// With a slower DMA, completion moves out by exactly the extra
	// response latency (x2: load + store).
	end := func(lat vclock.Duration) vclock.Time {
		h, d := setup(lat)
		h.mem.WriteAt(0x1000, make([]byte, 100))
		d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 100})
		d.Advance(vclock.Never - 1)
		if len(h.irqs) != 1 {
			t.Fatalf("irqs = %v", h.irqs)
		}
		return h.irqs[0]
	}
	fast := end(100 * vclock.Nanosecond)
	slow := end(400 * vclock.Nanosecond)
	if got := slow.Sub(fast); got != 600*vclock.Nanosecond {
		t.Fatalf("latency delta = %v, want 600ns (2 DMAs x 300ns)", got)
	}
}

func TestProcessingScalesWithSize(t *testing.T) {
	h, d := setup(10 * vclock.Nanosecond)
	h.mem.WriteAt(0x1000, make([]byte, 1000))
	d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 1000})
	d.Advance(vclock.Never - 1)
	big := h.irqs[0]

	h2, d2 := setup(10 * vclock.Nanosecond)
	h2.mem.WriteAt(0x1000, make([]byte, 100))
	d2.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 100})
	d2.Advance(vclock.Never - 1)
	small := h2.irqs[0]

	// 2 cycles/byte at 1GHz: 900 extra bytes = 1800ns.
	if got := big.Sub(small); got != 1800*vclock.Nanosecond {
		t.Fatalf("size scaling = %v, want 1800ns", got)
	}
}

func TestPipelinedTasks(t *testing.T) {
	// Two tasks injected back to back overlap in the pipeline: total
	// time is less than 2x a single task.
	h, d := setup(50 * vclock.Nanosecond)
	h.mem.WriteAt(0x1000, make([]byte, 200))
	single := func() vclock.Time {
		h2, d2 := setup(50 * vclock.Nanosecond)
		h2.mem.WriteAt(0x1000, make([]byte, 200))
		d2.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 200})
		d2.Advance(vclock.Never - 1)
		return h2.irqs[0]
	}()

	d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 200})
	d.start(0, copyTask{src: 0x1000, dst: 0x3000, n: 200})
	d.Advance(vclock.Never - 1)
	if len(h.irqs) != 2 {
		t.Fatalf("irqs = %d", len(h.irqs))
	}
	both := h.irqs[1]
	if both >= single*2 {
		t.Fatalf("no pipelining: 2 tasks took %v, single takes %v", both, single)
	}
}

func TestStatsTrackTasks(t *testing.T) {
	h, d := setup(10 * vclock.Nanosecond)
	h.mem.WriteAt(0x1000, make([]byte, 64))
	d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 64})
	d.Advance(vclock.Never - 1)
	s := d.Stats()
	if s.TasksStarted != 1 || s.TasksCompleted != 1 {
		t.Fatalf("tasks = %d/%d", s.TasksStarted, s.TasksCompleted)
	}
	if s.DMABytes != 128 {
		t.Fatalf("DMABytes = %d, want 128 (64 in + 64 out)", s.DMABytes)
	}
	if s.BusyTime <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestTrackMismatchPanics(t *testing.T) {
	// An LPN that emits a DMA the functional track never recorded must
	// fail loudly — the indistinguishability invariant is broken.
	h := &testHost{mem: mem.New(0)}
	d := &copyDev{}
	b := lpnlang.NewBuilder("bad", 1*vclock.GHz)
	in := b.Queue("in", 0)
	b.Stage("rogue", in, nil, b.Cycles(1), lpnlang.Effect(d.EmitDMA("GHOST", nil)))
	d.Init("bad", h, b.MustBuild())
	d.Net.Inject(in, lpn.Tok(0))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on track mismatch")
		}
	}()
	d.Advance(vclock.Never - 1)
}

func TestAdvanceClampsStaleTimestamps(t *testing.T) {
	h, d := setup(10 * vclock.Nanosecond)
	h.mem.WriteAt(0x1000, make([]byte, 8))
	d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 8})
	d.Advance(1000)
	before := d.Now()
	d.Advance(500) // stale
	if d.Now() != before {
		t.Fatal("stale Advance moved time backwards")
	}
}

func TestEmitDMABatch(t *testing.T) {
	// A stage that replays three recorded DMAs per firing; the response
	// token carries the last completion.
	h := &testHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	d := &copyDev{}
	b := lpnlang.NewBuilder("batch", 1*vclock.GHz)
	in := b.Queue("in", 0)
	resp := b.Queue("resp", 0)
	b.Stage("burst", in, nil, b.Cycles(1), lpnlang.Effect(d.EmitDMABatch("BURST", 3, resp)))
	d.Init("batch", h, b.MustBuild())

	rec := d.Recorder()
	h.mem.WriteAt(0x100, []byte{1, 2, 3, 4})
	rec.ReadDMA("BURST", 0x100, 4)
	rec.ReadDMA("BURST", 0x200, 4)
	rec.WriteDMA("BURST", 0x300, []byte{9, 9})

	d.Net.Inject(in, lpn.Tok(0))
	d.Advance(vclock.Never - 1)
	if len(h.dmas) != 3 {
		t.Fatalf("replayed %d DMAs, want 3", len(h.dmas))
	}
	if resp.Len() != 1 {
		t.Fatalf("resp tokens = %d", resp.Len())
	}
	// The write's payload landed.
	var out [2]byte
	h.mem.ReadAt(0x300, out[:])
	if out[0] != 9 || out[1] != 9 {
		t.Fatal("batched write payload missing")
	}
	if d.Pending("BURST") != 0 {
		t.Fatalf("pending = %d after drain", d.Pending("BURST"))
	}
}

func TestPendingCount(t *testing.T) {
	h := &testHost{mem: mem.New(0)}
	d := &copyDev{}
	b := lpnlang.NewBuilder("p", 1*vclock.GHz)
	in := b.Queue("in", 0)
	b.Stage("s", in, nil, b.Cycles(1), lpnlang.Effect(d.EmitDMA("T", nil)))
	d.Init("p", h, b.MustBuild())
	rec := d.Recorder()
	rec.ReadDMA("T", 0, 8)
	rec.ReadDMA("T", 8, 8)
	if d.Pending("T") != 2 {
		t.Fatalf("Pending = %d", d.Pending("T"))
	}
	d.Net.Inject(in, lpn.Tok(0))
	d.Advance(vclock.Never - 1)
	if d.Pending("T") != 1 {
		t.Fatalf("Pending after one replay = %d", d.Pending("T"))
	}
}
