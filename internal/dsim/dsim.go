// Package dsim implements the DSim di-simulator (paper §4): accelerator
// simulation on two decoupled tracks. The *performance track* is a
// Latency Petri Net that computes when things happen; the *functionality
// track* is the accelerator's functional simulator, which computes what
// the answers are. The two synchronize through tagged DMA FIFO queues
// (§4.3): the functional track runs first for each task, reading host
// memory through zero-cost DMAs and recording every DMA the accelerator
// would issue, tagged by hardware module; the LPN then replays those
// DMAs with accurate timestamps as its transitions fire.
//
// A DSim device is externally indistinguishable from the corresponding
// RTL simulation: same register semantics, same DMA sequence per tag,
// same results in memory — only the timestamps are computed from the LPN
// rather than from gate-level state. Accelerator models embed Base and
// provide their register frontend, functional model, and LPN.
package dsim

import (
	"fmt"

	"nexsim/internal/accel"
	"nexsim/internal/lpn"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// DMARec is one recorded DMA operation awaiting replay.
type DMARec struct {
	Kind mem.AccessKind
	Addr mem.Addr
	Size int
	Data []byte // write payload (delivered at emission time)
}

// dmaQueue is one tag's FIFO of recorded DMAs. Draining truncates and
// reuses the backing slice in place, so steady-state task churn neither
// deletes and re-creates map entries nor reallocates the queue.
type dmaQueue struct {
	recs []DMARec
	head int
}

// Base is the common machinery of a DSim device. Accelerator models embed
// it and implement RegRead/RegWrite on top (the paper's adapter base
// class with RegRead/RegWrite/ExecuteEvent/DmaComplete callbacks, §A.2).
type Base struct {
	DevName string
	Host    accel.Host //simlint:transient wiring to the owning engine, re-established at construction
	Net     *lpn.Net

	queues map[string]*dmaQueue
	// freeBufs recycles write-payload buffers: a payload is dead once its
	// DMA is replayed, so WriteDMA reuses it for a later recording.
	freeBufs [][]byte //simlint:transient recycling pool; contents dead between recordings
	now      vclock.Time

	stats     accel.DeviceStats
	busyStart vclock.Time
	inFlight  int
}

// Init prepares the base; call once after the LPN is built.
func (b *Base) Init(name string, host accel.Host, net *lpn.Net) {
	b.DevName = name
	b.Host = host
	b.Net = net
	b.queues = make(map[string]*dmaQueue)
}

// queue returns tag's FIFO, creating it on first use.
func (b *Base) queue(tag string) *dmaQueue {
	q := b.queues[tag]
	if q == nil {
		q = &dmaQueue{}
		b.queues[tag] = q
	}
	return q
}

// payloadBuf returns a recycled buffer of length n, or a fresh one.
func (b *Base) payloadBuf(n int) []byte {
	for i := len(b.freeBufs) - 1; i >= 0; i-- {
		if buf := b.freeBufs[i]; cap(buf) >= n {
			b.freeBufs[i] = b.freeBufs[len(b.freeBufs)-1]
			b.freeBufs = b.freeBufs[:len(b.freeBufs)-1]
			return buf[:n]
		}
	}
	return make([]byte, n)
}

// recycle returns a replayed write payload to the pool.
func (b *Base) recycle(buf []byte) {
	if cap(buf) > 0 && len(b.freeBufs) < 64 {
		b.freeBufs = append(b.freeBufs, buf)
	}
}

// Name implements accel.Device.
func (b *Base) Name() string { return b.DevName }

// Now returns the device's local virtual time.
func (b *Base) Now() vclock.Time { return b.now }

// Advance implements accel.Device: runs the LPN up to t. Host engines may
// call it with stale timestamps (EBS intra-epoch skew); it clamps.
func (b *Base) Advance(t vclock.Time) {
	if t < b.now {
		return
	}
	b.now = t
	fired := b.Net.Advance(t)
	b.stats.HostSteps += int64(fired)
}

// NextEvent implements accel.Device.
func (b *Base) NextEvent() (vclock.Time, bool) {
	return b.Net.NextEvent()
}

// Stats implements accel.Device.
func (b *Base) Stats() accel.DeviceStats { return b.stats }

// TaskStarted performs start-of-task bookkeeping; at is the doorbell
// time.
func (b *Base) TaskStarted(at vclock.Time) {
	b.stats.TasksStarted++
	if b.inFlight == 0 {
		b.busyStart = at
	}
	b.inFlight++
}

// TaskCompleted performs end-of-task bookkeeping; at is the completion
// timestamp from the LPN.
func (b *Base) TaskCompleted(at vclock.Time) {
	b.stats.TasksCompleted++
	b.inFlight--
	if b.inFlight == 0 {
		b.stats.BusyTime += at.Sub(b.busyStart)
	}
}

// Recorder is the functional track's view of host memory: reads happen
// immediately through zero-cost DMA; every operation is recorded into
// the tag's FIFO for timed replay by the LPN.
type Recorder struct{ b *Base }

// Recorder returns the functional-track recorder.
func (b *Base) Recorder() *Recorder { return &Recorder{b} }

// ReadDMA reads size bytes at addr through zero-cost DMA and records the
// read under tag.
func (r *Recorder) ReadDMA(tag string, addr mem.Addr, size int) []byte {
	buf := make([]byte, size)
	r.b.Host.ZeroCostRead(addr, buf)
	q := r.b.queue(tag)
	q.recs = append(q.recs, DMARec{Kind: mem.Read, Addr: addr, Size: size})
	return buf
}

// WriteDMA records a write under tag; the payload reaches host memory
// when the LPN emits the corresponding DMA. The payload buffer comes from
// the recycled-pool and returns there after replay.
func (r *Recorder) WriteDMA(tag string, addr mem.Addr, data []byte) {
	cp := r.b.payloadBuf(len(data))
	copy(cp, data)
	q := r.b.queue(tag)
	q.recs = append(q.recs, DMARec{Kind: mem.Write, Addr: addr, Size: len(data), Data: cp})
}

// Pending reports how many recorded DMAs remain unreplayed for tag.
func (b *Base) Pending(tag string) int {
	q := b.queues[tag]
	if q == nil {
		return 0
	}
	return len(q.recs) - q.head
}

func (b *Base) pop(tag string) DMARec {
	q := b.queues[tag]
	if q == nil || q.head >= len(q.recs) {
		panic(fmt.Sprintf("dsim %s: LPN emitted DMA for tag %q but the functional track recorded none — "+
			"performance and functionality tracks disagree", b.DevName, tag))
	}
	rec := q.recs[q.head]
	q.recs[q.head] = DMARec{} // release the payload reference
	q.head++
	if q.head == len(q.recs) {
		// Queue fully drained; truncate in place so the backing array is
		// reused by the next task instead of re-created map-entry by
		// map-entry.
		q.recs = q.recs[:0]
		q.head = 0
	}
	return rec
}

// EmitDMA returns an LPN effect that replays the next recorded DMA of
// tag when its transition fires. The DMA's timing is simulated by the
// host (interconnect + caches); if resp is non-nil, a token carrying the
// completion timestamp is injected there, so downstream transitions can
// depend on the DMA response (paper §4.3: "The LPN cannot predict the
// timing of later DMAs that depend on responses to earlier ones").
func (b *Base) EmitDMA(tag string, resp *lpn.Place) lpn.EffectFunc {
	return func(f *lpn.Firing, done vclock.Time) {
		rec := b.pop(tag)
		comp := b.Host.DMA(f.Time, rec.Kind, rec.Addr, rec.Size)
		b.stats.DMABytes += int64(rec.Size)
		if rec.Kind == mem.Write && rec.Data != nil {
			b.Host.ZeroCostWrite(rec.Addr, rec.Data)
			b.recycle(rec.Data)
		}
		if resp != nil {
			t := lpn.Tok(comp)
			if len(f.In) > 0 && len(f.In[0]) > 0 {
				t.Attrs = f.In[0][0].Attrs
			}
			b.Net.Inject(resp, t)
		}
	}
}

// EmitDMABatch returns an effect that replays n recorded DMAs per
// firing (for stages that issue bursts).
func (b *Base) EmitDMABatch(tag string, n int, resp *lpn.Place) lpn.EffectFunc {
	return func(f *lpn.Firing, done vclock.Time) {
		var last vclock.Time
		for i := 0; i < n; i++ {
			rec := b.pop(tag)
			comp := b.Host.DMA(f.Time, rec.Kind, rec.Addr, rec.Size)
			b.stats.DMABytes += int64(rec.Size)
			if rec.Kind == mem.Write && rec.Data != nil {
				b.Host.ZeroCostWrite(rec.Addr, rec.Data)
				b.recycle(rec.Data)
			}
			if comp > last {
				last = comp
			}
		}
		if resp != nil {
			b.Net.Inject(resp, lpn.Tok(last))
		}
	}
}
