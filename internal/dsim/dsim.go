// Package dsim implements the DSim di-simulator (paper §4): accelerator
// simulation on two decoupled tracks. The *performance track* is a
// Latency Petri Net that computes when things happen; the *functionality
// track* is the accelerator's functional simulator, which computes what
// the answers are. The two synchronize through tagged DMA FIFO queues
// (§4.3): the functional track runs first for each task, reading host
// memory through zero-cost DMAs and recording every DMA the accelerator
// would issue, tagged by hardware module; the LPN then replays those
// DMAs with accurate timestamps as its transitions fire.
//
// A DSim device is externally indistinguishable from the corresponding
// RTL simulation: same register semantics, same DMA sequence per tag,
// same results in memory — only the timestamps are computed from the LPN
// rather than from gate-level state. Accelerator models embed Base and
// provide their register frontend, functional model, and LPN.
package dsim

import (
	"fmt"

	"nexsim/internal/accel"
	"nexsim/internal/lpn"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// DMARec is one recorded DMA operation awaiting replay.
type DMARec struct {
	Kind mem.AccessKind
	Addr mem.Addr
	Size int
	Data []byte // write payload (delivered at emission time)
}

// Base is the common machinery of a DSim device. Accelerator models embed
// it and implement RegRead/RegWrite on top (the paper's adapter base
// class with RegRead/RegWrite/ExecuteEvent/DmaComplete callbacks, §A.2).
type Base struct {
	DevName string
	Host    accel.Host
	Net     *lpn.Net

	queues map[string][]DMARec
	qHead  map[string]int
	now    vclock.Time

	stats     accel.DeviceStats
	busyStart vclock.Time
	inFlight  int
}

// Init prepares the base; call once after the LPN is built.
func (b *Base) Init(name string, host accel.Host, net *lpn.Net) {
	b.DevName = name
	b.Host = host
	b.Net = net
	b.queues = make(map[string][]DMARec)
	b.qHead = make(map[string]int)
}

// Name implements accel.Device.
func (b *Base) Name() string { return b.DevName }

// Now returns the device's local virtual time.
func (b *Base) Now() vclock.Time { return b.now }

// Advance implements accel.Device: runs the LPN up to t. Host engines may
// call it with stale timestamps (EBS intra-epoch skew); it clamps.
func (b *Base) Advance(t vclock.Time) {
	if t < b.now {
		return
	}
	b.now = t
	fired := b.Net.Advance(t)
	b.stats.HostSteps += int64(fired)
}

// NextEvent implements accel.Device.
func (b *Base) NextEvent() (vclock.Time, bool) {
	return b.Net.NextEvent()
}

// Stats implements accel.Device.
func (b *Base) Stats() accel.DeviceStats { return b.stats }

// TaskStarted performs start-of-task bookkeeping; at is the doorbell
// time.
func (b *Base) TaskStarted(at vclock.Time) {
	b.stats.TasksStarted++
	if b.inFlight == 0 {
		b.busyStart = at
	}
	b.inFlight++
}

// TaskCompleted performs end-of-task bookkeeping; at is the completion
// timestamp from the LPN.
func (b *Base) TaskCompleted(at vclock.Time) {
	b.stats.TasksCompleted++
	b.inFlight--
	if b.inFlight == 0 {
		b.stats.BusyTime += at.Sub(b.busyStart)
	}
}

// Recorder is the functional track's view of host memory: reads happen
// immediately through zero-cost DMA; every operation is recorded into
// the tag's FIFO for timed replay by the LPN.
type Recorder struct{ b *Base }

// Recorder returns the functional-track recorder.
func (b *Base) Recorder() *Recorder { return &Recorder{b} }

// ReadDMA reads size bytes at addr through zero-cost DMA and records the
// read under tag.
func (r *Recorder) ReadDMA(tag string, addr mem.Addr, size int) []byte {
	buf := make([]byte, size)
	r.b.Host.ZeroCostRead(addr, buf)
	r.b.queues[tag] = append(r.b.queues[tag], DMARec{Kind: mem.Read, Addr: addr, Size: size})
	return buf
}

// WriteDMA records a write under tag; the payload reaches host memory
// when the LPN emits the corresponding DMA.
func (r *Recorder) WriteDMA(tag string, addr mem.Addr, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	r.b.queues[tag] = append(r.b.queues[tag], DMARec{Kind: mem.Write, Addr: addr, Size: len(data), Data: cp})
}

// Pending reports how many recorded DMAs remain unreplayed for tag.
func (b *Base) Pending(tag string) int {
	return len(b.queues[tag]) - b.qHead[tag]
}

func (b *Base) pop(tag string) DMARec {
	q := b.queues[tag]
	h := b.qHead[tag]
	if h >= len(q) {
		panic(fmt.Sprintf("dsim %s: LPN emitted DMA for tag %q but the functional track recorded none — "+
			"performance and functionality tracks disagree", b.DevName, tag))
	}
	rec := q[h]
	h++
	if h == len(q) {
		// Queue fully drained; reset to keep memory bounded.
		delete(b.queues, tag)
		delete(b.qHead, tag)
	} else {
		b.qHead[tag] = h
	}
	return rec
}

// EmitDMA returns an LPN effect that replays the next recorded DMA of
// tag when its transition fires. The DMA's timing is simulated by the
// host (interconnect + caches); if resp is non-nil, a token carrying the
// completion timestamp is injected there, so downstream transitions can
// depend on the DMA response (paper §4.3: "The LPN cannot predict the
// timing of later DMAs that depend on responses to earlier ones").
func (b *Base) EmitDMA(tag string, resp *lpn.Place) lpn.EffectFunc {
	return func(f *lpn.Firing, done vclock.Time) {
		rec := b.pop(tag)
		comp := b.Host.DMA(f.Time, rec.Kind, rec.Addr, rec.Size)
		b.stats.DMABytes += int64(rec.Size)
		if rec.Kind == mem.Write && rec.Data != nil {
			b.Host.ZeroCostWrite(rec.Addr, rec.Data)
		}
		if resp != nil {
			t := lpn.Tok(comp)
			if len(f.In) > 0 && len(f.In[0]) > 0 {
				t.Attrs = f.In[0][0].Attrs
			}
			b.Net.Inject(resp, t)
		}
	}
}

// EmitDMABatch returns an effect that replays n recorded DMAs per
// firing (for stages that issue bursts).
func (b *Base) EmitDMABatch(tag string, n int, resp *lpn.Place) lpn.EffectFunc {
	return func(f *lpn.Firing, done vclock.Time) {
		var last vclock.Time
		for i := 0; i < n; i++ {
			rec := b.pop(tag)
			comp := b.Host.DMA(f.Time, rec.Kind, rec.Addr, rec.Size)
			b.stats.DMABytes += int64(rec.Size)
			if rec.Kind == mem.Write && rec.Data != nil {
				b.Host.ZeroCostWrite(rec.Addr, rec.Data)
			}
			if comp > last {
				last = comp
			}
		}
		if resp != nil {
			b.Net.Inject(resp, lpn.Tok(last))
		}
	}
}
