package dsim

import (
	"fmt"
	"sort"

	"nexsim/internal/checkpoint"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Checkpointing: a DSim device's dynamic state is its clock, its task
// bookkeeping, the un-replayed tail of each tagged DMA FIFO, and the
// embedded LPN's marking. Queue tags are a map, so they are serialized
// in sorted order; drained prefixes (head > 0) are dropped so two
// devices with equal pending work encode identically regardless of how
// many tasks already churned through. The payload recycling pool is
// scratch, not state, and is never serialized.

// SnapshotTo serializes the device's dynamic state.
func (b *Base) SnapshotTo(enc *checkpoint.Encoder) {
	enc.String(b.DevName)
	enc.I64(int64(b.now))
	enc.I64(int64(b.busyStart))
	enc.Int(b.inFlight)
	enc.I64(b.stats.TasksStarted)
	enc.I64(b.stats.TasksCompleted)
	enc.I64(int64(b.stats.BusyTime))
	enc.I64(b.stats.DMABytes)
	enc.I64(b.stats.HostSteps)

	tags := make([]string, 0, len(b.queues))
	for tag, q := range b.queues {
		if q.head < len(q.recs) {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	enc.Int(len(tags))
	for _, tag := range tags {
		q := b.queues[tag]
		enc.String(tag)
		enc.Int(len(q.recs) - q.head)
		for _, rec := range q.recs[q.head:] {
			enc.U8(uint8(rec.Kind))
			enc.U64(uint64(rec.Addr))
			enc.Int(rec.Size)
			if rec.Kind == mem.Write && rec.Data != nil {
				enc.Bool(true)
				enc.Bytes8(rec.Data)
			} else {
				enc.Bool(false)
			}
		}
	}

	b.Net.SnapshotTo(enc)
}

// RestoreFrom overwrites the device's dynamic state from a snapshot
// taken on an identically constructed device (same name, same LPN
// structure). Existing queue contents are discarded.
func (b *Base) RestoreFrom(dec *checkpoint.Decoder) error {
	name := dec.String()
	now := vclock.Time(dec.I64())
	busyStart := vclock.Time(dec.I64())
	inFlight := dec.Int()
	var stats [5]int64
	for i := range stats {
		stats[i] = dec.I64()
	}
	nTags := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if name != b.DevName {
		return fmt.Errorf("dsim: restore of device %q into %q", name, b.DevName)
	}
	if inFlight < 0 || nTags < 0 || nTags > 1<<16 {
		return fmt.Errorf("%w: dsim %s: inFlight %d, %d tags", checkpoint.ErrCorrupt, b.DevName, inFlight, nTags)
	}
	queues := make(map[string]*dmaQueue, nTags)
	prevTag := ""
	for i := 0; i < nTags; i++ {
		tag := dec.String()
		nRecs := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if i > 0 && tag <= prevTag {
			return fmt.Errorf("%w: dsim %s: queue tags out of order", checkpoint.ErrCorrupt, b.DevName)
		}
		prevTag = tag
		if nRecs <= 0 || nRecs > 1<<24 {
			return fmt.Errorf("%w: dsim %s: %d records for tag %q", checkpoint.ErrCorrupt, b.DevName, nRecs, tag)
		}
		recs := make([]DMARec, nRecs)
		for j := range recs {
			recs[j].Kind = mem.AccessKind(dec.U8())
			recs[j].Addr = mem.Addr(dec.U64())
			recs[j].Size = dec.Int()
			if dec.Bool() {
				recs[j].Data = dec.Bytes8()
			}
			if err := dec.Err(); err != nil {
				return err
			}
		}
		queues[tag] = &dmaQueue{recs: recs}
	}
	if err := b.Net.RestoreFrom(dec); err != nil {
		return err
	}

	b.now = now
	b.busyStart = busyStart
	b.inFlight = inFlight
	b.stats.TasksStarted = stats[0]
	b.stats.TasksCompleted = stats[1]
	b.stats.BusyTime = vclock.Duration(stats[2])
	b.stats.DMABytes = stats[3]
	b.stats.HostSteps = stats[4]
	b.queues = queues
	return nil
}
