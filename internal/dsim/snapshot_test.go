package dsim

import (
	"bytes"
	"testing"

	"nexsim/internal/checkpoint"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// TestSnapshotRestoreDifferential: drive a device partway through two
// in-flight tasks (some DMAs replayed, some still queued), snapshot,
// restore into a fresh identically built device, then run both to
// completion and through a third task. DMA timings, IRQs, memory
// contents, stats and register state must all agree.
func TestSnapshotRestoreDifferential(t *testing.T) {
	const lat = 100 * vclock.Nanosecond
	src := mem.Addr(0x1000)
	dst := mem.Addr(0x2000)
	input := []byte("differential dsim")
	n := len(input)

	hA, dA := setup(lat)
	hA.mem.WriteAt(src, input)
	dA.start(0, copyTask{src: src, dst: dst, n: n})
	dA.start(0, copyTask{src: src, dst: dst + 0x100, n: n})
	// 150ns: the first LOAD has replayed (its queue head moved), the
	// rest are still pending — a genuinely mid-task snapshot.
	dA.Advance(vclock.Time(150 * vclock.Nanosecond))

	enc := checkpoint.NewEncoder()
	dA.SnapshotTo(enc)

	hB, dB := setup(lat)
	// The host memory image at the snapshot point is the host layer's
	// responsibility; mirror it here.
	mirror := func(addr mem.Addr) {
		buf := make([]byte, n)
		hA.mem.ReadAt(addr, buf)
		hB.mem.WriteAt(addr, buf)
	}
	mirror(src)
	mirror(dst)
	mirror(dst + 0x100)
	dB.doneReg = dA.doneReg

	dec, err := checkpoint.NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := dB.RestoreFrom(dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Done() {
		t.Fatalf("blob not fully consumed (err=%v)", dec.Err())
	}
	if dB.Now() != dA.Now() {
		t.Fatalf("restored clock %v, want %v", dB.Now(), dA.Now())
	}
	if dB.Pending("LOAD") != dA.Pending("LOAD") || dB.Pending("STORE") != dA.Pending("STORE") {
		t.Fatalf("restored queue depths differ: LOAD %d/%d STORE %d/%d",
			dB.Pending("LOAD"), dA.Pending("LOAD"), dB.Pending("STORE"), dA.Pending("STORE"))
	}

	preDMAs := len(hA.dmas)
	preIRQs := len(hA.irqs)
	end := 10 * vclock.Time(vclock.Microsecond)
	dA.Advance(end)
	dB.Advance(end)

	// A third task after the restore point must behave identically too.
	dA.start(end, copyTask{src: src, dst: dst + 0x200, n: n})
	dB.start(end, copyTask{src: src, dst: dst + 0x200, n: n})
	dA.Advance(2 * end)
	dB.Advance(2 * end)

	if got, want := hB.dmas, hA.dmas[preDMAs:]; len(got) != len(want) {
		t.Fatalf("DMA counts diverged: %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("DMA %d completion diverged: %v vs %v", i, got[i], want[i])
			}
		}
	}
	if got, want := hB.irqs, hA.irqs[preIRQs:]; len(got) != len(want) {
		t.Fatalf("IRQ counts diverged: %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("IRQ %d diverged: %v vs %v", i, got[i], want[i])
			}
		}
	}
	for _, off := range []mem.Addr{0, 0x100, 0x200} {
		a := make([]byte, n)
		b := make([]byte, n)
		hA.mem.ReadAt(dst+off, a)
		hB.mem.ReadAt(dst+off, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("output at +%#x diverged: %q vs %q", off, a, b)
		}
	}
	if dA.Stats() != dB.Stats() {
		t.Fatalf("stats diverged:\n A %+v\n B %+v", dA.Stats(), dB.Stats())
	}
	if dA.doneReg != dB.doneReg {
		t.Fatalf("doneReg diverged: %d vs %d", dA.doneReg, dB.doneReg)
	}
}

// TestSnapshotDropsDrainedQueues: replayed FIFO prefixes must not leak
// into the encoding — equal pending work encodes identically no matter
// how many tasks already churned through a queue's backing array.
func TestSnapshotDropsDrainedQueues(t *testing.T) {
	src := mem.Addr(0x1000)
	h1, d1 := setup(0)
	h1.mem.WriteAt(src, []byte{1, 2, 3, 4})

	// Device 1: one full task drained, then a fresh recording.
	d1.start(0, copyTask{src: src, dst: 0x2000, n: 4})
	d1.Advance(vclock.Time(vclock.Microsecond))
	d1.stats = d1.Stats() // keep as-is; stats must match device 2's below
	d1r := d1.Recorder()
	d1r.WriteDMA("STORE", 0x3000, []byte{9, 9})

	// Device 2: same pending record, no history; align the stats fields
	// that legitimately differ with history.
	h2, d2 := setup(0)
	h2.mem.WriteAt(src, []byte{1, 2, 3, 4})
	d2r := d2.Recorder()
	d2r.WriteDMA("STORE", 0x3000, []byte{9, 9})
	d2.now = d1.now
	d2.stats = d1.stats
	d2.Net.RestoreFrom(mustDec(t, encodeNet(d1)))

	e1, e2 := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	d1.SnapshotTo(e1)
	d2.SnapshotTo(e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("equal pending state encoded differently (drained prefix leaked)")
	}
}

func encodeNet(d *copyDev) []byte {
	enc := checkpoint.NewEncoder()
	d.Net.SnapshotTo(enc)
	return enc.Bytes()
}

func mustDec(t *testing.T, blob []byte) *checkpoint.Decoder {
	t.Helper()
	dec, err := checkpoint.NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestRestoreRejectsBadBlobs(t *testing.T) {
	h, d := setup(0)
	h.mem.WriteAt(0x1000, []byte{1, 2, 3})
	d.start(0, copyTask{src: 0x1000, dst: 0x2000, n: 3})
	enc := checkpoint.NewEncoder()
	d.SnapshotTo(enc)
	blob := enc.Bytes()

	// Wrong device: different name.
	_, other := setup(0)
	other.DevName = "otherdev"
	if err := other.RestoreFrom(mustDec(t, blob)); err == nil {
		t.Fatal("restore accepted mismatched device name")
	}

	// Truncated blob.
	_, fresh := setup(0)
	if err := fresh.RestoreFrom(mustDec(t, blob[:len(blob)-9])); err == nil {
		t.Fatal("restore accepted truncated blob")
	}
}
