package isa

import (
	"testing"

	"nexsim/internal/vclock"
)

func TestNativeDurationFromInstr(t *testing.T) {
	w := Work{Instr: 3000, IPCNative: 1.5}
	// 2000 cycles at 1GHz = 2us.
	if got := w.NativeDuration(1 * vclock.GHz); got != 2*vclock.Microsecond {
		t.Fatalf("NativeDuration = %v", got)
	}
}

func TestNativeDurOverrides(t *testing.T) {
	w := Work{Instr: 1, IPCNative: 1, NativeDur: 7 * vclock.Microsecond}
	if got := w.NativeDuration(3 * vclock.GHz); got != 7*vclock.Microsecond {
		t.Fatalf("NativeDuration = %v", got)
	}
}

func TestZeroIPCDefaultsToOne(t *testing.T) {
	w := Work{Instr: 1000}
	if got := w.NativeDuration(1 * vclock.GHz); got != vclock.Microsecond {
		t.Fatalf("NativeDuration = %v", got)
	}
}

func TestSegmentRoundTrips(t *testing.T) {
	for _, d := range []vclock.Duration{vclock.Microsecond, 333 * vclock.Nanosecond, 5 * vclock.Millisecond} {
		w := Segment(d, 3*vclock.GHz, DefaultMix, 1024, 1.5, 7)
		if got := w.NativeDuration(3 * vclock.GHz); got != d {
			t.Fatalf("Segment(%v) round trip = %v", d, got)
		}
		if w.Instr <= 0 {
			t.Fatal("segment without instructions")
		}
	}
}

func TestScale(t *testing.T) {
	w := Work{Instr: 1000, WorkingSet: 4096, NativeDur: vclock.Microsecond}
	s := w.Scale(0.5)
	if s.Instr != 500 || s.WorkingSet != 2048 || s.NativeDur != 500*vclock.Nanosecond {
		t.Fatalf("scaled = %+v", s)
	}
	if w.Instr != 1000 {
		t.Fatal("Scale mutated receiver")
	}
}

func TestMixesSumBelowOne(t *testing.T) {
	for _, m := range []Mix{DefaultMix, MemHeavyMix, ComputeMix} {
		if s := m.Load + m.Store + m.Branch + m.MulDiv; s >= 1 {
			t.Fatalf("mix %+v sums to %v", m, s)
		}
	}
}
