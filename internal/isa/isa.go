// Package isa models the software stack's computation as synthetic
// instruction streams.
//
// The functional behaviour of the simulated software always runs as
// ordinary Go code; what the host engines need from "the program" is its
// *timing shape*: how many instructions a compute segment executes, their
// mix, and the memory footprint. A Work value is that descriptor. The
// reference and NEX engines convert it straight to native duration
// (instructions / native IPC); the gem5-style engine expands it
// instruction by instruction through a pipeline + cache model, which is
// both why it is slow and why its timing differs from native — exactly
// the cost/accuracy contrast the paper measures (§6.5).
package isa

import (
	"nexsim/internal/vclock"
)

// Class is an instruction timing class.
type Class uint8

const (
	ALU Class = iota
	Load
	Store
	Branch
	MulDiv
)

// Mix gives the fraction of each non-ALU class in a stream; the
// remainder is plain ALU.
type Mix struct {
	Load   float64
	Store  float64
	Branch float64
	MulDiv float64
}

// DefaultMix is a typical integer-code mix.
var DefaultMix = Mix{Load: 0.25, Store: 0.10, Branch: 0.15, MulDiv: 0.02}

// MemHeavyMix models pointer-chasing / copy-heavy code (serializers).
var MemHeavyMix = Mix{Load: 0.35, Store: 0.20, Branch: 0.12, MulDiv: 0.01}

// ComputeMix models dense numeric kernels (filters, GEMM fallback).
var ComputeMix = Mix{Load: 0.20, Store: 0.08, Branch: 0.06, MulDiv: 0.08}

// Work describes one compute segment of the software stack.
type Work struct {
	Instr      int64   // dynamic instruction count
	Mix        Mix     // instruction class fractions
	WorkingSet int64   // bytes of memory the segment touches
	IPCNative  float64 // IPC this code achieves on the (real) native host
	Seed       uint64  // PRNG seed for deterministic stream expansion

	// NativeDur, when non-zero, is the segment's measured native
	// duration; it takes precedence over the Instr/IPCNative derivation
	// (as if the segment had been timed on the real host).
	NativeDur vclock.Duration
}

// NativeDuration is the segment's execution time on the native host at
// core frequency clk: NativeDur if set, else Instr / IPCNative cycles.
func (w Work) NativeDuration(clk vclock.Hz) vclock.Duration {
	if w.NativeDur > 0 {
		return w.NativeDur
	}
	if w.Instr <= 0 {
		return 0
	}
	ipc := w.IPCNative
	if ipc <= 0 {
		ipc = 1
	}
	cycles := float64(w.Instr) / ipc
	return vclock.Duration(cycles * float64(clk.Period()))
}

// Scale returns a copy of w with the instruction count (and proportional
// working set) scaled by f; used by workload generators.
func (w Work) Scale(f float64) Work {
	w.Instr = int64(float64(w.Instr) * f)
	w.WorkingSet = int64(float64(w.WorkingSet) * f)
	w.NativeDur = vclock.Duration(float64(w.NativeDur) * f)
	return w
}

// Segment is a convenience constructor: a segment that takes d of native
// time at clk with the given mix, working set and native IPC.
func Segment(d vclock.Duration, clk vclock.Hz, mix Mix, ws int64, ipc float64, seed uint64) Work {
	if ipc <= 0 {
		ipc = 1
	}
	cycles := float64(d) / float64(clk.Period())
	return Work{
		Instr:      int64(cycles * ipc),
		Mix:        mix,
		WorkingSet: ws,
		IPCNative:  ipc,
		Seed:       seed,
		NativeDur:  d,
	}
}
