package lpn

import (
	"testing"

	"nexsim/internal/vclock"
)

// TestBackpressureReleaseReenables: a producer blocked on a full
// downstream place must re-enter the enabled set the moment a consumer
// frees capacity — the invalidation flows through the capped place's
// watcher list, not through a rescan.
func TestBackpressureReleaseReenables(t *testing.T) {
	n := New("bp")
	in := n.AddPlace("in", 0)
	q := n.AddPlace("q", 1) // capacity 1: one token blocks the producer
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{
		Name: "produce", In: []Arc{{Place: in}}, Out: []OutArc{{Place: q}},
	})
	gate := n.AddPlace("gate", 0)
	n.AddTransition(&Transition{
		Name: "consume",
		In:   []Arc{{Place: q}, {Place: gate}},
		Out:  []OutArc{{Place: out}},
	})
	n.Inject(in, Tok(0))
	n.Inject(in, Tok(0))
	n.Advance(100)
	if q.Len() != 1 || in.Len() != 1 {
		t.Fatalf("q=%d in=%d, want producer blocked with 1 queued + 1 waiting", q.Len(), in.Len())
	}
	// Open the gate: consume drains q, freeing capacity, which must
	// re-enable the blocked producer within the same Advance.
	n.Inject(gate, Tok(150))
	n.Inject(gate, Tok(150))
	n.Advance(200)
	if out.Len() != 2 || in.Len() != 0 {
		t.Fatalf("out=%d in=%d, want both tokens through after release", out.Len(), in.Len())
	}
}

// TestGuardFlippedByExternalInject: a guard reading a place that is NOT
// one of the transition's input arcs, flipped by an Inject between
// Advance calls. Guards are re-probed on every engine entry, so the
// dependency needs no arc.
func TestGuardFlippedByExternalInject(t *testing.T) {
	n := New("flip")
	in := n.AddPlace("in", 0)
	ctrl := n.AddPlace("ctrl", 0)
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{
		Name: "gated", In: []Arc{{Place: in}}, Out: []OutArc{{Place: out}},
		Guard: func(*Firing) bool { return ctrl.Len() > 0 },
	})
	n.Inject(in, Tok(0))
	n.Advance(100)
	if out.Len() != 0 {
		t.Fatal("fired with closed guard")
	}
	if at, ok := n.NextEvent(); ok {
		t.Fatalf("NextEvent = %v with closed guard, want quiescent", at)
	}
	n.Inject(ctrl, Tok(0)) // flips the guard without touching the input arc
	n.Advance(200)
	if out.Len() != 1 {
		t.Fatal("guard flip via external Inject not observed")
	}
	// The fire time clamps to the clock at the flip's observation.
	if got := out.peek(0).TS; got != 100 {
		t.Fatalf("fire time = %v, want 100 (clock when re-enabled)", got)
	}
}

// TestWeightedArcIncrementalRefill: a weight-3 join receiving its tokens
// one Advance call at a time must stay disabled until the third arrives,
// then fire at the max timestamp of the group.
func TestWeightedArcIncrementalRefill(t *testing.T) {
	n := New("w")
	parts := n.AddPlace("parts", 0)
	whole := n.AddPlace("whole", 0)
	n.AddTransition(&Transition{
		Name: "join", In: []Arc{{Place: parts, Weight: 3}}, Out: []OutArc{{Place: whole}},
	})
	for i, ts := range []vclock.Time{5, 9, 7} {
		n.Inject(parts, Tok(ts))
		n.Advance(vclock.Time(20 + 10*i))
		if want := 0; i < 2 && whole.Len() != want {
			t.Fatalf("fired with only %d of 3 tokens", i+1)
		}
	}
	if whole.Len() != 1 {
		t.Fatal("join did not fire once third token arrived")
	}
	// Ready at max(5,9,7)=9, but the clock was already at 40 when the
	// third token landed... the third token arrived before Advance(40),
	// so the group was complete at clock 30; fire time clamps to 30.
	if got := whole.peek(0).TS; got != 30 {
		t.Fatalf("join TS = %v, want 30 (clock at third arrival)", got)
	}
}

// TestWeightedArcWithBackpressure combines weights with a capped output:
// the join must not fire while the output is full even though its inputs
// are satisfied, and must fire once the output drains.
func TestWeightedArcWithBackpressure(t *testing.T) {
	n := New("wbp")
	parts := n.AddPlace("parts", 0)
	mid := n.AddPlace("mid", 1)
	gate := n.AddPlace("gate", 0)
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{
		Name: "join", In: []Arc{{Place: parts, Weight: 2}}, Out: []OutArc{{Place: mid}},
	})
	n.AddTransition(&Transition{
		Name: "drain", In: []Arc{{Place: mid}, {Place: gate}}, Out: []OutArc{{Place: out}},
	})
	for i := 0; i < 4; i++ {
		n.Inject(parts, Tok(vclock.Time(i)))
	}
	n.Advance(50)
	if mid.Len() != 1 || parts.Len() != 2 {
		t.Fatalf("mid=%d parts=%d, want second join blocked by full mid", mid.Len(), parts.Len())
	}
	n.Inject(gate, Tok(60))
	n.Inject(gate, Tok(60))
	n.Advance(100)
	if out.Len() != 2 || parts.Len() != 0 {
		t.Fatalf("out=%d parts=%d, want both groups through", out.Len(), parts.Len())
	}
}

// TestSealRebuildAfterStructureChange: adding a transition after the net
// has run unseals it; the next Advance re-seals and the new transition
// participates.
func TestSealRebuildAfterStructureChange(t *testing.T) {
	n := New("reseal")
	in := n.AddPlace("in", 0)
	mid := n.AddPlace("mid", 0)
	n.AddTransition(&Transition{Name: "a", In: []Arc{{Place: in}}, Out: []OutArc{{Place: mid}}})
	n.Inject(in, Tok(0))
	n.Advance(10)
	if mid.Len() != 1 {
		t.Fatal("first stage did not fire")
	}
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{Name: "b", In: []Arc{{Place: mid}}, Out: []OutArc{{Place: out}}})
	n.Advance(20)
	if out.Len() != 1 {
		t.Fatal("transition added after sealing never fired")
	}
}

// TestReadyLenMemo: repeated ReadyLen queries between mutations hit the
// memo; a push at the queried instant invalidates it.
func TestReadyLenMemo(t *testing.T) {
	p := &Place{Name: "m"}
	p.Push(Token{TS: 5})
	p.Push(Token{TS: 15})
	for i := 0; i < 3; i++ {
		if got := p.ReadyLen(10); got != 1 {
			t.Fatalf("ReadyLen(10) = %d, want 1", got)
		}
	}
	p.Push(Token{TS: 10})
	if got := p.ReadyLen(10); got != 2 {
		t.Fatalf("ReadyLen(10) after push = %d, want 2", got)
	}
	p.Pop()
	if got := p.ReadyLen(10); got != 1 {
		t.Fatalf("ReadyLen(10) after pop = %d, want 1", got)
	}
	if got := p.ReadyLen(20); got != 2 {
		t.Fatalf("ReadyLen(20) = %d, want 2", got)
	}
}

// TestFiringScratchReuse: the engine hands every callback the same
// scratch Firing, so the fast path must not allocate per firing. The
// pipeline below has no OutFuncs or effects; after warm-up the only
// allocations permitted are place-slice growth, which the pre-sized
// token counts below avoid.
func TestFiringScratchReuse(t *testing.T) {
	n := New("scratch")
	in := n.AddPlace("in", 0)
	q1 := n.AddPlace("q1", 0)
	q2 := n.AddPlace("q2", 0)
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{Name: "t1", In: []Arc{{Place: in}}, Out: []OutArc{{Place: q1}}, Delay: Const(3)})
	n.AddTransition(&Transition{Name: "t2", In: []Arc{{Place: q1}}, Out: []OutArc{{Place: q2}}, Delay: Const(5)})
	n.AddTransition(&Transition{Name: "t3", In: []Arc{{Place: q2}}, Out: []OutArc{{Place: out}}, Delay: Const(7)})
	// Warm up: sizes the scratch and the place backing arrays.
	n.Inject(in, Tok(0))
	n.Advance(1000)
	base := out.Len()
	avg := testing.AllocsPerRun(50, func() {
		n.Inject(in, Tok(n.Now()))
		n.Advance(n.Now() + 1000)
	})
	// Token-slice growth inside places is amortized; allow a fraction.
	if avg > 1 {
		t.Fatalf("firing path allocates %.2f objects per task, want ~0", avg)
	}
	if out.Len() <= base {
		t.Fatal("warm loop did not fire")
	}
}
