package lpn

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the net in Graphviz DOT format: places as circles
// (annotated with their current token counts and capacities),
// transitions as boxes, arcs with weights. Developers sketching an
// accelerator microarchitecture as an LPN (§6.4) can render the sketch
// with `dot -Tsvg`.
func (n *Net) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	id := make(map[*Place]string, len(n.places))
	for i, p := range n.places {
		id[p] = fmt.Sprintf("p%d", i)
		label := fmt.Sprintf("%s\\n%d tok", p.Name, p.Len())
		if p.Cap > 0 {
			label += fmt.Sprintf(" / cap %d", p.Cap)
		}
		fmt.Fprintf(&b, "  %s [shape=ellipse label=\"%s\"];\n", id[p], label)
	}
	for i, tr := range n.transitions {
		tid := fmt.Sprintf("t%d", i)
		fmt.Fprintf(&b, "  %s [shape=box style=filled fillcolor=lightgray label=%q];\n",
			tid, tr.Name)
		for _, a := range tr.In {
			attr := ""
			if a.weight() > 1 {
				attr = fmt.Sprintf(" [label=\"%d\"]", a.weight())
			}
			fmt.Fprintf(&b, "  %s -> %s%s;\n", id[a.Place], tid, attr)
		}
		for _, o := range tr.Out {
			fmt.Fprintf(&b, "  %s -> %s;\n", tid, id[o.Place])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PlaceNames returns the registered place names, sorted (introspection
// for tools and tests).
func (n *Net) PlaceNames() []string {
	out := make([]string, len(n.places))
	for i, p := range n.places {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// TransitionNames returns the registered transition names, in firing
// priority order.
func (n *Net) TransitionNames() []string {
	out := make([]string, len(n.transitions))
	for i, t := range n.transitions {
		out[i] = t.Name
	}
	return out
}
