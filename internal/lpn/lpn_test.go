package lpn

import (
	"strings"
	"testing"
	"testing/quick"

	"nexsim/internal/vclock"
)

// buildPipeline builds a 3-stage pipeline: in -> s1 -> s2 -> out, with
// per-stage delays d1, d2, d3 and stage-2 queue capacity cap2. Each stage
// uses the canonical server-token self-loop so it processes one item at a
// time (occupancy = delay), which is how non-internally-pipelined hardware
// stages are modeled in LPNs.
func buildPipeline(d1, d2, d3 vclock.Duration, cap2 int) (*Net, *Place, *Place) {
	n := New("pipe")
	in := n.AddPlace("in", 0)
	q1 := n.AddPlace("q1", 0)
	q2 := n.AddPlace("q2", cap2)
	out := n.AddPlace("out", 0)
	stage := func(name string, from, to *Place, d vclock.Duration) {
		srv := n.AddPlace(name+".srv", 0)
		srv.Push(Tok(0))
		n.AddTransition(&Transition{
			Name: name,
			In:   []Arc{{Place: from}, {Place: srv}},
			Out: []OutArc{
				{Place: to},
				{Place: srv, Fn: func(f *Firing, done vclock.Time) []Token {
					return []Token{Tok(done)}
				}},
			},
			Delay: Const(d),
		})
	}
	stage("stage1", in, q1, d1)
	stage("stage2", q1, q2, d2)
	stage("stage3", q2, out, d3)
	return n, in, out
}

func TestSingleTokenLatency(t *testing.T) {
	n, in, out := buildPipeline(10, 20, 30, 0)
	n.Inject(in, Tok(0))
	n.Advance(vclock.Never - 1)
	if out.Len() != 1 {
		t.Fatalf("out.Len = %d", out.Len())
	}
	if got := out.peek(0).TS; got != 60 {
		t.Fatalf("completion TS = %v, want 60 (sum of stage delays)", got)
	}
}

func TestPipeliningOverlap(t *testing.T) {
	// With equal stage delays d, k tokens injected at time 0 finish at
	// d*3 + (k-1)*d — classic pipeline throughput, not k*3d.
	const d, k = 10, 5
	n, in, out := buildPipeline(d, d, d, 0)
	for i := 0; i < k; i++ {
		n.Inject(in, Tok(0, int64(i)))
	}
	n.Advance(vclock.Never - 1)
	if out.Len() != k {
		t.Fatalf("out.Len = %d", out.Len())
	}
	last := out.peek(k - 1).TS
	want := vclock.Time(3*d + (k-1)*d)
	if last != want {
		t.Fatalf("last completion = %v, want %v", last, want)
	}
}

func TestBackpressure(t *testing.T) {
	// Slow stage3 with a capacity-1 queue in front must throttle stage2.
	n, in, out := buildPipeline(1, 1, 100, 1)
	for i := 0; i < 3; i++ {
		n.Inject(in, Tok(0))
	}
	n.Advance(vclock.Never - 1)
	if out.Len() != 3 {
		t.Fatalf("out.Len = %d", out.Len())
	}
	// Stage3 is the bottleneck: completions separated by 100.
	want := []vclock.Time{102, 202, 302}
	for i, w := range want {
		if got := out.peek(i).TS; got != w {
			t.Errorf("completion[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestAdvanceRespectsBound(t *testing.T) {
	n, in, out := buildPipeline(10, 10, 10, 0)
	n.Inject(in, Tok(0))
	n.Advance(15) // only stage1 (fires at 0) and stage2 (fires at 10) run
	if out.Len() != 0 {
		t.Fatal("token completed before its time")
	}
	if n.Now() != 15 {
		t.Fatalf("Now = %v, want 15", n.Now())
	}
	n.Advance(100)
	if out.Len() != 1 {
		t.Fatal("token missing after full advance")
	}
}

func TestGuardBlocksFiring(t *testing.T) {
	n := New("guarded")
	in := n.AddPlace("in", 0)
	out := n.AddPlace("out", 0)
	open := false
	n.AddTransition(&Transition{
		Name: "gate", In: []Arc{{Place: in}}, Out: []OutArc{{Place: out}},
		Guard: func(*Firing) bool { return open },
	})
	n.Inject(in, Tok(0))
	n.Advance(100)
	if out.Len() != 0 {
		t.Fatal("guarded transition fired")
	}
	open = true
	n.Advance(200)
	if out.Len() != 1 {
		t.Fatal("transition did not fire after guard opened")
	}
}

func TestDelayDependsOnAttrs(t *testing.T) {
	n := New("attr")
	in := n.AddPlace("in", 0)
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{
		Name: "proc", In: []Arc{{Place: in}}, Out: []OutArc{{Place: out}},
		Delay: func(f *Firing) vclock.Duration {
			return vclock.Duration(f.Tok(0).Attrs[0]) * 3 // 3 ps per byte
		},
	})
	n.Inject(in, Tok(0, 100))
	n.Advance(vclock.Never - 1)
	if got := out.peek(0).TS; got != 300 {
		t.Fatalf("TS = %v, want 300", got)
	}
}

func TestWeightedArcJoin(t *testing.T) {
	// A join consuming 4 sub-results produces one aggregate.
	n := New("join")
	parts := n.AddPlace("parts", 0)
	whole := n.AddPlace("whole", 0)
	n.AddTransition(&Transition{
		Name: "join", In: []Arc{{Place: parts, Weight: 4}}, Out: []OutArc{{Place: whole}},
	})
	for i := 0; i < 7; i++ {
		n.Inject(parts, Tok(vclock.Time(i)))
	}
	n.Advance(vclock.Never - 1)
	if whole.Len() != 1 {
		t.Fatalf("whole.Len = %d, want 1 (only one full group)", whole.Len())
	}
	if parts.Len() != 3 {
		t.Fatalf("parts.Len = %d, want 3 leftover", parts.Len())
	}
	// Fire time is the max input timestamp of the group: 3.
	if got := whole.peek(0).TS; got != 3 {
		t.Fatalf("join TS = %v, want 3", got)
	}
}

func TestEffectSeesFireAndDoneTimes(t *testing.T) {
	n := New("fx")
	in := n.AddPlace("in", 0)
	out := n.AddPlace("out", 0)
	var fireAt, doneAt vclock.Time
	n.AddTransition(&Transition{
		Name: "dma", In: []Arc{{Place: in}}, Out: []OutArc{{Place: out}},
		Delay: Const(50),
		Effect: func(f *Firing, done vclock.Time) {
			fireAt, doneAt = f.Time, done
		},
	})
	n.Inject(in, Tok(7))
	n.Advance(vclock.Never - 1)
	if fireAt != 7 || doneAt != 57 {
		t.Fatalf("fire=%v done=%v, want 7/57", fireAt, doneAt)
	}
}

func TestExternalInjectionReenables(t *testing.T) {
	// Models a DMA-response dependency: a transition joins a request with
	// an externally injected response.
	n := New("dep")
	req := n.AddPlace("req", 0)
	resp := n.AddPlace("resp", 0)
	out := n.AddPlace("out", 0)
	n.AddTransition(&Transition{
		Name: "consume",
		In:   []Arc{{Place: req}, {Place: resp}},
		Out:  []OutArc{{Place: out}},
	})
	n.Inject(req, Tok(0))
	n.Advance(100)
	if out.Len() != 0 {
		t.Fatal("fired without response")
	}
	n.Inject(resp, Tok(150)) // host delivers DMA response at t=150
	n.Advance(200)
	if out.Len() != 1 || out.peek(0).TS != 150 {
		t.Fatalf("out.Len=%d TS=%v, want completion at 150", out.Len(), out.peek(0).TS)
	}
}

func TestValidate(t *testing.T) {
	n := New("bad")
	in := n.AddPlace("in", 0)
	n.AddTransition(&Transition{Name: "t", In: []Arc{{Place: in}}})
	if err := n.Validate(); err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}

	n2 := New("nosrc")
	n2.AddTransition(&Transition{Name: "t"})
	if err := n2.Validate(); err == nil {
		t.Fatal("transition without inputs accepted")
	}

	n3 := New("foreign")
	other := New("other")
	p := other.AddPlace("p", 0)
	n3.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p}}})
	if err := n3.Validate(); err == nil {
		t.Fatal("foreign place accepted")
	}

	n4 := New("dup")
	n4.AddPlace("p", 0)
	n4.AddPlace("p", 0)
	if err := n4.Validate(); err == nil {
		t.Fatal("duplicate place name accepted")
	}
}

// Property: token conservation — tokens injected equal tokens in the net
// for a pure pipeline (no weighted joins or multi-output transitions).
func TestTokenConservationProperty(t *testing.T) {
	f := func(k uint8, d1, d2 uint16) bool {
		n, in, _ := buildPipeline(vclock.Duration(d1), vclock.Duration(d2), 1, 0)
		count := int(k%32) + 1
		for i := 0; i < count; i++ {
			n.Inject(in, Tok(vclock.Time(i)))
		}
		n.Advance(vclock.Never - 1)
		return n.TokenCount() == count+3 // injected tokens + 3 server tokens
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion timestamps are monotonically non-decreasing in a
// FIFO pipeline.
func TestFIFOOrderingProperty(t *testing.T) {
	f := func(k uint8, seed uint16) bool {
		n, in, out := buildPipeline(5, 7, 3, 2)
		count := int(k%20) + 2
		for i := 0; i < count; i++ {
			n.Inject(in, Tok(vclock.Time(int(seed)%11*i)))
		}
		n.Advance(vclock.Never - 1)
		if out.Len() != count {
			return false
		}
		for i := 1; i < count; i++ {
			if out.peek(i).TS < out.peek(i-1).TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFiresCounter(t *testing.T) {
	n := New("count")
	in := n.AddPlace("in", 0)
	out := n.AddPlace("out", 0)
	tr := n.AddTransition(&Transition{Name: "t", In: []Arc{{Place: in}}, Out: []OutArc{{Place: out}}})
	for i := 0; i < 5; i++ {
		n.Inject(in, Tok(0))
	}
	n.Advance(10)
	if tr.Fires() != 5 {
		t.Fatalf("Fires = %d, want 5", tr.Fires())
	}
}

func TestDotExport(t *testing.T) {
	n, _, _ := buildPipeline(1, 2, 3, 4)
	dot := n.Dot()
	for _, want := range []string{"digraph", "stage1", "stage2", "stage3", "->", "cap 4"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestNameIntrospection(t *testing.T) {
	n, _, _ := buildPipeline(1, 1, 1, 0)
	if got := len(n.PlaceNames()); got != 7 { // 4 queues + 3 server places
		t.Fatalf("PlaceNames = %d", got)
	}
	tr := n.TransitionNames()
	if len(tr) != 3 || tr[0] != "stage1" {
		t.Fatalf("TransitionNames = %v", tr)
	}
}
