package lpn

import (
	"bytes"
	"fmt"
	"testing"

	"nexsim/internal/checkpoint"
	"nexsim/internal/vclock"
)

// TestSnapshotRestoreDifferential reuses the randomized differential
// harness: drive a net through the first half of a schedule, snapshot it
// mid-run, restore into a structurally identical fresh net, then drive
// both through the second half. Firing logs, clocks, NextEvent answers
// and final markings must agree exactly — restore-then-run is
// indistinguishable from straight-through.
func TestSnapshotRestoreDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		netA, placesA, logA := genNet(seed)
		netB, placesB, logB := genNet(seed)
		ops := genSchedule(seed, len(placesA))
		half := len(ops) / 2

		drive := func(n *Net, places []*Place, ops []op, answers *[]string) {
			for _, o := range ops {
				switch o.kind {
				case 0:
					if injectable(places[o.place]) {
						n.Inject(places[o.place], o.tok)
					}
				case 1:
					n.Advance(o.until)
				case 2:
					at, ok := n.NextEvent()
					*answers = append(*answers, fmt.Sprintf("%d/%v", at, ok))
				}
			}
		}

		var ansA, ansB []string
		drive(netA, placesA, ops[:half], &ansA)

		// Mid-run snapshot of A, restored into the fresh B.
		enc := checkpoint.NewEncoder()
		netA.SnapshotTo(enc)
		dec, err := checkpoint.NewDecoder(enc.Bytes())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := netB.RestoreFrom(dec); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if !dec.Done() {
			t.Fatalf("seed %d: blob not fully consumed", seed)
		}
		*logB = append([]string(nil), *logA...)
		ansB = append([]string(nil), ansA...)

		drive(netA, placesA, ops[half:], &ansA)
		drive(netB, placesB, ops[half:], &ansB)

		if fmt.Sprint(*logA) != fmt.Sprint(*logB) {
			t.Fatalf("seed %d: firing logs diverged after restore:\n A %v\n B %v", seed, *logA, *logB)
		}
		if fmt.Sprint(ansA) != fmt.Sprint(ansB) {
			t.Fatalf("seed %d: NextEvent answers diverged", seed)
		}
		if netA.Now() != netB.Now() {
			t.Fatalf("seed %d: clocks diverged: %v vs %v", seed, netA.Now(), netB.Now())
		}
		if fmt.Sprint(marking(placesA)) != fmt.Sprint(marking(placesB)) {
			t.Fatalf("seed %d: markings diverged:\n A %v\n B %v", seed, marking(placesA), marking(placesB))
		}
		for i := range netA.transitions {
			if netA.transitions[i].fires != netB.transitions[i].fires {
				t.Fatalf("seed %d: fire counts diverged at %s", seed, netA.transitions[i].Name)
			}
		}
	}
}

// TestSnapshotContentAddressed: equal markings encode identically, no
// matter how the net reached them.
func TestSnapshotContentAddressed(t *testing.T) {
	build := func() (*Net, *Place, *Place) {
		n := New("ca")
		a := n.AddPlace("a", 0)
		b := n.AddPlace("b", 0)
		n.AddTransition(&Transition{Name: "t", In: []Arc{{Place: a}},
			Out: []OutArc{{Place: b}}, Delay: Const(5)})
		return n, a, b
	}

	// Net 1: inject two, advance once.
	n1, a1, _ := build()
	n1.Inject(a1, Tok(0, 7))
	n1.Inject(a1, Tok(3, 9))
	n1.Advance(100)

	// Net 2: same tokens, advanced in two steps with probes in between.
	n2, a2, _ := build()
	n2.Inject(a2, Tok(0, 7))
	n2.Advance(1)
	n2.NextEvent()
	n2.Inject(a2, Tok(3, 9))
	n2.Advance(100)

	e1, e2 := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	n1.SnapshotTo(e1)
	n2.SnapshotTo(e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("equal logical states encoded differently")
	}
}

func TestRestoreRejectsStructuralMismatch(t *testing.T) {
	n1 := New("x")
	p := n1.AddPlace("p", 0)
	n1.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p}}})
	n1.Inject(p, Tok(1, 2))
	enc := checkpoint.NewEncoder()
	n1.SnapshotTo(enc)

	// Different place name.
	n2 := New("x")
	n2.AddPlace("q", 0)
	n2.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p}}})
	dec, _ := checkpoint.NewDecoder(enc.Bytes())
	if err := n2.RestoreFrom(dec); err == nil {
		t.Fatal("restore accepted mismatched place name")
	}

	// Different net name.
	n3 := New("y")
	n3.AddPlace("p", 0)
	n3.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p}}})
	dec, _ = checkpoint.NewDecoder(enc.Bytes())
	if err := n3.RestoreFrom(dec); err == nil {
		t.Fatal("restore accepted mismatched net name")
	}
}

func TestRestoreOverCapacityRejected(t *testing.T) {
	n1 := New("c")
	p1 := n1.AddPlace("p", 0) // unbounded source
	n1.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p1}}})
	for i := 0; i < 4; i++ {
		n1.Inject(p1, Tok(vclock.Time(i), int64(i)))
	}
	// t consumes them all when advanced; snapshot before advancing so the
	// marking holds 4 tokens.
	enc := checkpoint.NewEncoder()
	n1.SnapshotTo(enc)

	n2 := New("c")
	p2 := n2.AddPlace("p", 2) // capacity-bounded: 4 tokens cannot fit
	n2.AddTransition(&Transition{Name: "t", In: []Arc{{Place: p2}}})
	dec, _ := checkpoint.NewDecoder(enc.Bytes())
	if err := n2.RestoreFrom(dec); err == nil {
		t.Fatal("restore overflowed a capacity-bounded place")
	}
}
