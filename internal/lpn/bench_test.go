package lpn

import (
	"fmt"
	"testing"

	"nexsim/internal/vclock"
)

// benchChain builds a linear pipeline of n transitions. One injected
// token causes n firings; the rescan engine pays O(n) per firing (O(n²)
// per traversal) while the incremental engine pays O(log n).
func benchChain(n int, guardEvery int) (*Net, *Place, *Place) {
	net := New(fmt.Sprintf("chain-%d", n))
	first := net.AddPlace("p0", 0)
	prev := first
	for i := 0; i < n; i++ {
		next := net.AddPlace(fmt.Sprintf("p%d", i+1), 0)
		tr := &Transition{
			Name:  fmt.Sprintf("t%d", i),
			In:    []Arc{{Place: prev}},
			Out:   []OutArc{{Place: next}},
			Delay: Const(3),
		}
		if guardEvery > 0 && i%guardEvery == 0 {
			tr.Guard = func(f *Firing) bool { return f.Tok(0).Attrs[0] >= 0 }
		}
		net.AddTransition(tr)
		prev = next
	}
	return net, first, prev
}

// drain pushes one token through the whole chain and removes it at the
// end, so repeated calls run against steady-state place sizes.
func drain(net *Net, in, out *Place, adv func(vclock.Time) int) {
	net.Inject(in, Tok(net.Now(), 1))
	adv(net.Now() + vclock.Time(1<<40))
	out.Pop()
}

func benchAdvance(b *testing.B, sizes []int, guardEvery int) {
	for _, size := range sizes {
		b.Run(fmt.Sprintf("incremental/%d", size), func(b *testing.B) {
			net, in, out := benchChain(size, guardEvery)
			drain(net, in, out, net.Advance) // warm up scratch + seal
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drain(net, in, out, net.Advance)
			}
		})
		b.Run(fmt.Sprintf("reference/%d", size), func(b *testing.B) {
			net, in, out := benchChain(size, guardEvery)
			drain(net, in, out, net.scanAdvance)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drain(net, in, out, net.scanAdvance)
			}
		})
	}
}

// BenchmarkAdvance pushes one token through an n-stage pipeline (n
// firings per op) on the incremental engine vs the reference rescan.
func BenchmarkAdvance(b *testing.B) {
	benchAdvance(b, []int{8, 64, 256}, 0)
}

// BenchmarkAdvanceGuardHeavy guards every other transition. Guards can
// observe arbitrary state, so the incremental engine must re-probe all
// of them on every engine entry and after every firing — the worst case
// for invalidation-based scheduling.
func BenchmarkAdvanceGuardHeavy(b *testing.B) {
	benchAdvance(b, []int{64}, 2)
}

// BenchmarkNextEvent probes the next firing time of a quiescent-but-loaded
// 256-stage net: the reference engine rescans all transitions per call,
// the incremental engine answers from the heap top.
func BenchmarkNextEvent(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		net, in, _ := benchChain(256, 0)
		net.Inject(in, Tok(1<<30, 1)) // future token: net stays loaded
		net.NextEvent()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.NextEvent()
		}
	})
	b.Run("reference", func(b *testing.B) {
		net, in, _ := benchChain(256, 0)
		net.Inject(in, Tok(1<<30, 1))
		net.scanNextEvent()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.scanNextEvent()
		}
	})
}
