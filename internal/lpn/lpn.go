// Package lpn implements the Latency Petri Net (LPN) abstraction that
// DSim's performance track is built on (paper §4.1, following "Performance
// Interfaces for Hardware Accelerators", OSDI'24).
//
// An LPN is a timed Petri net that is "performance-equivalent" to a
// hardware circuit: places model queues and pipeline registers, tokens
// model in-flight work items (carrying scalar attributes such as byte
// counts), and transitions model processing stages whose delay may depend
// on the tokens they consume. Capacity limits on places model
// backpressure. The net computes *when* things happen, never *what* the
// data is — functionality lives in the functional track (package dsim).
//
// Simulation is event-driven: a transition fires at the earliest time all
// of its input tokens are available (and its guard holds, and its output
// places have room), so simulation cost scales with the number of work
// items, not with clock cycles.
package lpn

import (
	"fmt"

	"nexsim/internal/vclock"
)

// Token is a work item flowing through the net. TS is the time the token
// becomes available in its place. Attrs carry up to four scalar
// attributes (byte counts, block indices, tags...) used by delay
// functions and guards.
type Token struct {
	TS    vclock.Time
	Attrs [4]int64
}

// Tok constructs a token available at ts with the given attributes.
func Tok(ts vclock.Time, attrs ...int64) Token {
	t := Token{TS: ts}
	copy(t.Attrs[:], attrs)
	return t
}

// Place is a FIFO queue of tokens. Cap <= 0 means unbounded.
type Place struct {
	Name string
	Cap  int

	tokens []Token
	head   int
}

// Len reports the number of tokens currently in the place (available or
// not).
func (p *Place) Len() int { return len(p.tokens) - p.head }

// ReadyLen reports the number of tokens whose timestamp is at or before
// now, i.e. completions that are externally visible at that instant.
// (The engine fires transitions eagerly, so a place can hold tokens with
// future timestamps.)
func (p *Place) ReadyLen(now vclock.Time) int {
	n := 0
	for i := 0; i < p.Len(); i++ {
		if p.peek(i).TS <= now {
			n++
		}
	}
	return n
}

// Peek returns the i-th token from the front without removing it.
func (p *Place) Peek(i int) Token { return p.peek(i) }

// Pop removes and returns the front token. It panics on an empty place.
func (p *Place) Pop() Token { return p.pop() }

// Push appends a token. It panics if the place is at capacity — the
// engine's responsibility is to never fire a transition into a full
// place.
func (p *Place) Push(t Token) {
	if p.Cap > 0 && p.Len() >= p.Cap {
		panic("lpn: push into full place " + p.Name)
	}
	p.tokens = append(p.tokens, t)
}

// peek returns the i-th token from the front without removing it.
func (p *Place) peek(i int) Token { return p.tokens[p.head+i] }

func (p *Place) pop() Token {
	t := p.tokens[p.head]
	p.head++
	if p.head > 64 && p.head*2 >= len(p.tokens) {
		n := copy(p.tokens, p.tokens[p.head:])
		p.tokens = p.tokens[:n]
		p.head = 0
	}
	return t
}

// Firing is the context passed to delay functions, guards and effects. It
// exposes the tokens consumed by the transition, in input-arc order.
type Firing struct {
	// Time is the instant the transition fires (inputs satisfied).
	Time vclock.Time
	// In holds the consumed tokens grouped per input arc.
	In [][]Token
}

// Tok returns the first token consumed from input arc i.
func (f *Firing) Tok(i int) Token { return f.In[i][0] }

// Arc connects a place to a transition, consuming Weight tokens per
// firing (Weight 0 means 1).
type Arc struct {
	Place  *Place
	Weight int
}

func (a Arc) weight() int {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// OutFunc produces the tokens deposited on an output place when a
// transition fires; done is the completion time (fire time + delay).
type OutFunc func(f *Firing, done vclock.Time) []Token

// OutArc deposits tokens on a place after the transition's delay. If Fn
// is nil, one token with the completion timestamp (and the attributes of
// the first consumed token, if any) is deposited.
type OutArc struct {
	Place *Place
	Fn    OutFunc
}

// DelayFunc computes the service delay of a firing.
type DelayFunc func(f *Firing) vclock.Duration

// GuardFunc decides whether a transition may fire given the tokens it
// would consume.
type GuardFunc func(f *Firing) bool

// EffectFunc runs side effects when a transition fires — DSim uses this
// to emit tagged DMA requests (paper §4.3). done is fire time + delay.
type EffectFunc func(f *Firing, done vclock.Time)

// Transition is a processing stage.
type Transition struct {
	Name   string
	In     []Arc
	Out    []OutArc
	Delay  DelayFunc  // nil means zero delay
	Guard  GuardFunc  // nil means always enabled
	Effect EffectFunc // optional

	fires int64
}

// Fires reports how many times the transition has fired.
func (t *Transition) Fires() int64 { return t.fires }

// Const returns a DelayFunc with a fixed delay.
func Const(d vclock.Duration) DelayFunc {
	return func(*Firing) vclock.Duration { return d }
}

// PerCycle returns a DelayFunc of n cycles at frequency clk.
func PerCycle(clk vclock.Hz, n int64) DelayFunc {
	d := clk.CyclesDur(n)
	return func(*Firing) vclock.Duration { return d }
}

// Net is a complete Latency Petri Net.
type Net struct {
	Name        string
	places      []*Place
	transitions []*Transition
	now         vclock.Time
}

// New returns an empty net.
func New(name string) *Net { return &Net{Name: name} }

// AddPlace registers and returns a new place.
func (n *Net) AddPlace(name string, capacity int) *Place {
	p := &Place{Name: name, Cap: capacity}
	n.places = append(n.places, p)
	return p
}

// AddTransition registers a transition. Transitions are examined in
// registration order, which makes simulation deterministic.
func (n *Net) AddTransition(t *Transition) *Transition {
	n.transitions = append(n.transitions, t)
	return t
}

// Now returns the net's local virtual time.
func (n *Net) Now() vclock.Time { return n.now }

// Inject places a token directly (used for task arrival and for external
// responses such as DMA completions).
func (n *Net) Inject(p *Place, t Token) { p.Push(t) }

// readyTime computes the earliest time tr could fire, or (Never, false)
// if it cannot fire with the tokens currently present.
func (n *Net) readyTime(tr *Transition) (vclock.Time, bool) {
	ready := n.now
	for _, a := range tr.In {
		w := a.weight()
		if a.Place.Len() < w {
			return vclock.Never, false
		}
		for i := 0; i < w; i++ {
			if ts := a.Place.peek(i).TS; ts > ready {
				ready = ts
			}
		}
	}
	// Backpressure: every output place must have room for at least one
	// token. (Output token counts are usually 1; OutFuncs producing more
	// must leave headroom via place capacities.)
	for _, o := range tr.Out {
		if o.Place.Cap > 0 && o.Place.Len() >= o.Place.Cap {
			return vclock.Never, false
		}
	}
	if tr.Guard != nil {
		f := n.peekFiring(tr, ready)
		if !tr.Guard(f) {
			return vclock.Never, false
		}
	}
	return ready, true
}

func (n *Net) peekFiring(tr *Transition, at vclock.Time) *Firing {
	f := &Firing{Time: at, In: make([][]Token, len(tr.In))}
	for i, a := range tr.In {
		w := a.weight()
		toks := make([]Token, w)
		for j := 0; j < w; j++ {
			toks[j] = a.Place.peek(j)
		}
		f.In[i] = toks
	}
	return f
}

// NextEvent returns the earliest time any transition can fire, or
// (vclock.Never, false) if the net is quiescent.
func (n *Net) NextEvent() (vclock.Time, bool) {
	best, any := vclock.Never, false
	for _, tr := range n.transitions {
		if at, ok := n.readyTime(tr); ok && at < best {
			best, any = at, true
		}
	}
	return best, any
}

// Advance fires transitions in timestamp order until no transition can
// fire at or before `until`, then sets the net's clock to `until`. It
// returns the number of firings. External injections (DMA completions)
// between Advance calls can re-enable transitions.
func (n *Net) Advance(until vclock.Time) int {
	fired := 0
	for {
		// Deterministic choice: earliest ready time, tie-broken by
		// transition registration order.
		var chosen *Transition
		chosenAt := vclock.Never
		for _, tr := range n.transitions {
			if at, ok := n.readyTime(tr); ok && at < chosenAt {
				chosen, chosenAt = tr, at
			}
		}
		if chosen == nil || chosenAt > until {
			break
		}
		n.fire(chosen, chosenAt)
		fired++
	}
	if until > n.now {
		n.now = until
	}
	return fired
}

func (n *Net) fire(tr *Transition, at vclock.Time) {
	if at > n.now {
		n.now = at
	}
	f := &Firing{Time: at, In: make([][]Token, len(tr.In))}
	for i, a := range tr.In {
		w := a.weight()
		toks := make([]Token, w)
		for j := 0; j < w; j++ {
			toks[j] = a.Place.pop()
		}
		f.In[i] = toks
	}
	var d vclock.Duration
	if tr.Delay != nil {
		d = tr.Delay(f)
	}
	done := at.Add(d)
	for _, o := range tr.Out {
		if o.Fn != nil {
			for _, t := range o.Fn(f, done) {
				o.Place.Push(t)
			}
			continue
		}
		t := Token{TS: done}
		if len(f.In) > 0 && len(f.In[0]) > 0 {
			t.Attrs = f.In[0][0].Attrs
		}
		o.Place.Push(t)
	}
	if tr.Effect != nil {
		tr.Effect(f, done)
	}
	tr.fires++
}

// Quiescent reports whether no transition can currently fire.
func (n *Net) Quiescent() bool {
	_, ok := n.NextEvent()
	return !ok
}

// TokenCount returns the total number of tokens in the net.
func (n *Net) TokenCount() int {
	total := 0
	for _, p := range n.places {
		total += p.Len()
	}
	return total
}

// Validate performs structural checks: every transition must have at
// least one input arc, all arcs must reference places registered in this
// net, and names must be unique.
func (n *Net) Validate() error {
	known := make(map[*Place]bool, len(n.places))
	names := make(map[string]bool)
	for _, p := range n.places {
		known[p] = true
		if names[p.Name] {
			return fmt.Errorf("lpn %s: duplicate place name %q", n.Name, p.Name)
		}
		names[p.Name] = true
	}
	tnames := make(map[string]bool)
	for _, tr := range n.transitions {
		if tnames[tr.Name] {
			return fmt.Errorf("lpn %s: duplicate transition name %q", n.Name, tr.Name)
		}
		tnames[tr.Name] = true
		if len(tr.In) == 0 {
			return fmt.Errorf("lpn %s: transition %q has no input arcs (would fire forever)", n.Name, tr.Name)
		}
		for _, a := range tr.In {
			if !known[a.Place] {
				return fmt.Errorf("lpn %s: transition %q consumes from foreign place %q", n.Name, tr.Name, a.Place.Name)
			}
		}
		for _, o := range tr.Out {
			if !known[o.Place] {
				return fmt.Errorf("lpn %s: transition %q produces into foreign place %q", n.Name, tr.Name, o.Place.Name)
			}
		}
	}
	return nil
}
