// Package lpn implements the Latency Petri Net (LPN) abstraction that
// DSim's performance track is built on (paper §4.1, following "Performance
// Interfaces for Hardware Accelerators", OSDI'24).
//
// An LPN is a timed Petri net that is "performance-equivalent" to a
// hardware circuit: places model queues and pipeline registers, tokens
// model in-flight work items (carrying scalar attributes such as byte
// counts), and transitions model processing stages whose delay may depend
// on the tokens they consume. Capacity limits on places model
// backpressure. The net computes *when* things happen, never *what* the
// data is — functionality lives in the functional track (package dsim).
//
// Simulation is event-driven: a transition fires at the earliest time all
// of its input tokens are available (and its guard holds, and its output
// places have room), so simulation cost scales with the number of work
// items, not with clock cycles.
//
// # Incremental scheduling
//
// The engine is an incremental enabled-set scheduler. Seal (run by
// Validate, or lazily on first use) builds a place→transition adjacency;
// afterwards each transition's ready time is cached and recomputed only
// when an adjacent place changes — a token push or pop, capacity freed by
// a downstream pop, or an external Inject. Enabled transitions sit in a
// min-heap keyed by (ready time, registration order), so selecting the
// next firing is O(log T) instead of a full O(transitions × arcs) rescan,
// and a firing invalidates only the handful of transitions watching the
// places it touched. Guarded transitions are re-examined on every engine
// entry and after every firing, because guards may read state outside the
// net (the old engine re-evaluated them on every scan). The firing fast
// path is allocation-free: guard probes and firings share a per-net
// scratch Firing whose token slices are grown in place. The pre-rework
// full-rescan engine is kept as scanAdvance/scanNextEvent, an executable
// specification that the randomized differential test pins this scheduler
// against, firing for firing.
package lpn

import (
	"fmt"

	"nexsim/internal/vclock"
)

// Token is a work item flowing through the net. TS is the time the token
// becomes available in its place. Attrs carry up to four scalar
// attributes (byte counts, block indices, tags...) used by delay
// functions and guards.
type Token struct {
	TS    vclock.Time
	Attrs [4]int64
}

// Tok constructs a token available at ts with the given attributes.
func Tok(ts vclock.Time, attrs ...int64) Token {
	t := Token{TS: ts}
	copy(t.Attrs[:], attrs)
	return t
}

// Place is a FIFO queue of tokens. Cap <= 0 means unbounded.
type Place struct {
	Name string
	Cap  int

	tokens []Token
	head   int

	// Set by Seal: the owning net and the transitions whose readiness
	// depends on this place (consumers, plus producers into it when it
	// is capacity-bounded).
	net      *Net
	watchers []int32

	// gen counts mutations; the memo fields amortize ReadyLen for
	// polling callers that re-ask at the same instant between mutations.
	gen     uint64
	memoGen uint64
	memoNow vclock.Time
	memoCnt int
}

// Len reports the number of tokens currently in the place (available or
// not).
func (p *Place) Len() int { return len(p.tokens) - p.head }

// ReadyLen reports the number of tokens whose timestamp is at or before
// now, i.e. completions that are externally visible at that instant.
// (The engine fires transitions eagerly, so a place can hold tokens with
// future timestamps.) Repeated queries at the same instant between
// mutations are O(1) via a ready-count memo.
func (p *Place) ReadyLen(now vclock.Time) int {
	if p.memoGen == p.gen && p.memoNow == now && p.gen != 0 {
		return p.memoCnt
	}
	n := 0
	for i := 0; i < p.Len(); i++ {
		if p.peek(i).TS <= now {
			n++
		}
	}
	p.memoGen, p.memoNow, p.memoCnt = p.gen, now, n
	return n
}

// Peek returns the i-th token from the front without removing it.
func (p *Place) Peek(i int) Token { return p.peek(i) }

// Pop removes and returns the front token. It panics on an empty place.
func (p *Place) Pop() Token { return p.pop() }

// Push appends a token. It panics if the place is at capacity — the
// engine's responsibility is to never fire a transition into a full
// place.
func (p *Place) Push(t Token) {
	if p.Cap > 0 && p.Len() >= p.Cap {
		panic("lpn: push into full place " + p.Name)
	}
	p.tokens = append(p.tokens, t)
	p.touched()
}

// peek returns the i-th token from the front without removing it.
func (p *Place) peek(i int) Token { return p.tokens[p.head+i] }

func (p *Place) pop() Token {
	t := p.tokens[p.head]
	p.head++
	if p.head > 64 && p.head*2 >= len(p.tokens) {
		n := copy(p.tokens, p.tokens[p.head:])
		p.tokens = p.tokens[:n]
		p.head = 0
	}
	p.touched()
	return t
}

// touched records a mutation and invalidates the cached ready times of
// every transition adjacent to this place.
func (p *Place) touched() {
	p.gen++
	if p.net != nil && p.net.sealed {
		for _, w := range p.watchers {
			p.net.markDirty(w)
		}
	}
}

// Firing is the context passed to delay functions, guards and effects. It
// exposes the tokens consumed by the transition, in input-arc order.
//
// The Firing and its In slices are engine-owned scratch, valid only for
// the duration of the callback; copy tokens out if they must outlive it.
type Firing struct {
	// Time is the instant the transition fires (inputs satisfied).
	Time vclock.Time
	// In holds the consumed tokens grouped per input arc.
	In [][]Token
}

// Tok returns the first token consumed from input arc i.
func (f *Firing) Tok(i int) Token { return f.In[i][0] }

// Arc connects a place to a transition, consuming Weight tokens per
// firing (Weight 0 means 1).
type Arc struct {
	Place  *Place
	Weight int
}

func (a Arc) weight() int {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// OutFunc produces the tokens deposited on an output place when a
// transition fires; done is the completion time (fire time + delay). The
// returned slice is read synchronously, so callers may reuse a scratch
// slice across firings.
type OutFunc func(f *Firing, done vclock.Time) []Token

// OutArc deposits tokens on a place after the transition's delay. If Fn
// is nil, one token with the completion timestamp (and the attributes of
// the first consumed token, if any) is deposited. Plain deposits one
// attribute-free token at the completion time without calling Fn — the
// common server-release and credit-return shape, kept allocation-free
// because those arcs fire once per token through every stage.
type OutArc struct {
	Place *Place
	Fn    OutFunc
	Plain bool
}

// DelayFunc computes the service delay of a firing.
type DelayFunc func(f *Firing) vclock.Duration

// GuardFunc decides whether a transition may fire given the tokens it
// would consume. Guards must be side-effect free: the engine probes them
// an unspecified number of times per firing decision.
type GuardFunc func(f *Firing) bool

// EffectFunc runs side effects when a transition fires — DSim uses this
// to emit tagged DMA requests (paper §4.3). done is fire time + delay.
type EffectFunc func(f *Firing, done vclock.Time)

// Transition is a processing stage. Its structure (arcs, guard, delay,
// effect) must not change after the net is sealed.
type Transition struct {
	Name   string
	In     []Arc
	Out    []OutArc
	Delay  DelayFunc  // nil means zero delay
	Guard  GuardFunc  // nil means always enabled
	Effect EffectFunc // optional

	idx   int32
	fires int64
}

// Fires reports how many times the transition has fired.
func (t *Transition) Fires() int64 { return t.fires }

// Const returns a DelayFunc with a fixed delay.
func Const(d vclock.Duration) DelayFunc {
	return func(*Firing) vclock.Duration { return d }
}

// PerCycle returns a DelayFunc of n cycles at frequency clk.
func PerCycle(clk vclock.Hz, n int64) DelayFunc {
	d := clk.CyclesDur(n)
	return func(*Firing) vclock.Duration { return d }
}

// transState is the scheduler's cached view of one transition.
type transState struct {
	at    vclock.Time // cached ready time (valid when pos >= 0)
	pos   int32       // position in the enabled heap, -1 if absent
	dirty bool        // ready time must be recomputed
}

// Net is a complete Latency Petri Net.
type Net struct {
	Name        string
	places      []*Place
	transitions []*Transition
	now         vclock.Time

	// Incremental scheduler state (built by Seal). RestoreFrom unseals
	// the net and the next engine call rebuilds all of it from the
	// restored marking, so none of it is snapshot state.
	sealed  bool         //simlint:transient rebuilt: RestoreFrom unseals, next call re-Seals
	state   []transState //simlint:transient derived from marking by Seal
	heap    []int32      //simlint:transient enabled transitions min-keyed by (at, idx); derived by Seal
	dirty   []int32      //simlint:transient stale-ready worklist; derived by Seal
	guarded []int32      //simlint:transient guard re-check list; derived by Seal

	// Reusable firing scratch for guard probes and firings.
	inFire      bool      //simlint:transient only set inside one fire() call
	scratch     Firing    //simlint:transient per-firing scratch, dead between firings
	scratchBufs [][]Token //simlint:transient pooled buffers, contents dead between firings
}

// New returns an empty net.
func New(name string) *Net { return &Net{Name: name} }

// AddPlace registers and returns a new place. Adding to a sealed net
// unseals it; the next engine call re-seals.
func (n *Net) AddPlace(name string, capacity int) *Place {
	p := &Place{Name: name, Cap: capacity}
	n.places = append(n.places, p)
	n.sealed = false
	return p
}

// AddTransition registers a transition. Transitions are examined in
// registration order, which makes simulation deterministic. Adding to a
// sealed net unseals it; the next engine call re-seals.
func (n *Net) AddTransition(t *Transition) *Transition {
	n.transitions = append(n.transitions, t)
	n.sealed = false
	return t
}

// Now returns the net's local virtual time.
func (n *Net) Now() vclock.Time { return n.now }

// Inject places a token directly (used for task arrival and for external
// responses such as DMA completions). On a sealed net the push
// invalidates exactly the transitions watching p.
func (n *Net) Inject(p *Place, t Token) { p.Push(t) }

// Seal freezes the net's structure and builds the place→transition
// adjacency the incremental scheduler runs on: each place records the
// transitions that consume from it, plus the transitions that produce
// into it when it is capacity-bounded (a pop there frees backpressure).
// Validate calls Seal; Advance, NextEvent and Quiescent seal lazily, so
// explicit calls are never required.
func (n *Net) Seal() {
	seen := make(map[*Place]bool, len(n.places))
	reset := func(p *Place) {
		if !seen[p] {
			seen[p] = true
			p.net = n
			p.watchers = p.watchers[:0]
		}
	}
	for _, p := range n.places {
		reset(p)
	}
	n.guarded = n.guarded[:0]
	for i, tr := range n.transitions {
		tr.idx = int32(i)
		if tr.Guard != nil {
			n.guarded = append(n.guarded, int32(i))
		}
		for _, a := range tr.In {
			reset(a.Place)
			addWatcher(a.Place, int32(i))
		}
		for _, o := range tr.Out {
			reset(o.Place)
			if o.Place.Cap > 0 {
				addWatcher(o.Place, int32(i))
			}
		}
	}
	n.state = make([]transState, len(n.transitions))
	n.heap = n.heap[:0]
	n.dirty = n.dirty[:0]
	for i := range n.state {
		n.state[i] = transState{pos: -1, dirty: true}
		n.dirty = append(n.dirty, int32(i))
	}
	n.sealed = true
}

func addWatcher(p *Place, idx int32) {
	for _, w := range p.watchers {
		if w == idx {
			return
		}
	}
	p.watchers = append(p.watchers, idx)
}

func (n *Net) ensureSealed() {
	if !n.sealed {
		n.Seal()
	}
}

// markDirty queues transition i for a ready-time recompute.
func (n *Net) markDirty(i int32) {
	st := &n.state[i]
	if !st.dirty {
		st.dirty = true
		n.dirty = append(n.dirty, i)
	}
}

// markGuardedDirty re-queues every guarded transition: guards may read
// state outside the net, so they are re-probed on every engine entry and
// after every firing — exactly as often as the rescan engine did.
func (n *Net) markGuardedDirty() {
	for _, i := range n.guarded {
		n.markDirty(i)
	}
}

// flushDirty recomputes every queued transition and restores the heap
// invariant: enabled transitions are in the heap keyed by their current
// ready time, disabled ones are out.
func (n *Net) flushDirty() {
	for len(n.dirty) > 0 {
		i := n.dirty[len(n.dirty)-1]
		n.dirty = n.dirty[:len(n.dirty)-1]
		st := &n.state[i]
		if !st.dirty {
			continue
		}
		st.dirty = false
		at, ok := n.computeReady(n.transitions[i])
		if ok {
			st.at = at
			if st.pos >= 0 {
				n.heapFix(st.pos)
			} else {
				n.heapPush(i)
			}
		} else if st.pos >= 0 {
			n.heapRemove(st.pos)
		}
	}
}

// computeReady computes the earliest time tr could fire, or
// (Never, false) if it cannot fire with the tokens currently present.
func (n *Net) computeReady(tr *Transition) (vclock.Time, bool) {
	ready := n.now
	for _, a := range tr.In {
		w := a.weight()
		if a.Place.Len() < w {
			return vclock.Never, false
		}
		for i := 0; i < w; i++ {
			if ts := a.Place.peek(i).TS; ts > ready {
				ready = ts
			}
		}
	}
	// Backpressure: every output place must have room for at least one
	// token. (Output token counts are usually 1; OutFuncs producing more
	// must leave headroom via place capacities.)
	for _, o := range tr.Out {
		if o.Place.Cap > 0 && o.Place.Len() >= o.Place.Cap {
			return vclock.Never, false
		}
	}
	if tr.Guard != nil {
		if !tr.Guard(n.fillFiring(tr, ready, false)) {
			return vclock.Never, false
		}
	}
	return ready, true
}

// minReady returns the transition minimizing (ready time clamped to now,
// registration order) — the same deterministic choice the rescan engine
// makes — or ok=false if the net is quiescent.
func (n *Net) minReady() (*Transition, vclock.Time, bool) {
	n.flushDirty()
	for len(n.heap) > 0 {
		i := n.heap[0]
		st := &n.state[i]
		if st.at >= n.now {
			return n.transitions[i], st.at, true
		}
		// The clock moved past a cached ready time, so the effective
		// fire time clamps to now. Guarded transitions re-probe (the
		// guard observes the fire time); plain ones just re-key.
		if n.transitions[i].Guard != nil {
			n.markDirty(i)
			n.flushDirty()
			continue
		}
		st.at = n.now
		n.heapDown(0)
	}
	return nil, vclock.Never, false
}

// NextEvent returns the earliest time any transition can fire, or
// (vclock.Never, false) if the net is quiescent.
func (n *Net) NextEvent() (vclock.Time, bool) {
	n.ensureSealed()
	n.markGuardedDirty()
	_, at, ok := n.minReady()
	return at, ok
}

// Advance fires transitions in timestamp order until no transition can
// fire at or before `until`, then sets the net's clock to `until`. It
// returns the number of firings. External injections (DMA completions)
// between Advance calls can re-enable transitions.
//
//simlint:hotpath the per-work-item engine entry; cost scales with firings
func (n *Net) Advance(until vclock.Time) int {
	n.ensureSealed()
	fired := 0
	for {
		// Deterministic choice: earliest ready time, tie-broken by
		// transition registration order.
		n.markGuardedDirty()
		tr, at, ok := n.minReady()
		if !ok || at > until {
			break
		}
		n.fire(tr, at)
		fired++
	}
	if until > n.now {
		n.now = until
	}
	return fired
}

// fillFiring assembles the firing context for tr at time at in the
// per-net scratch, consuming the input tokens when consume is true and
// peeking them for a guard probe otherwise. Re-entrant engine calls (an
// effect advancing the net again) fall back to a fresh allocation so the
// in-flight scratch is left alone.
//
//simlint:hotpath runs for every guard probe and firing; scratch reuse is the point
func (n *Net) fillFiring(tr *Transition, at vclock.Time, consume bool) *Firing {
	nIn := len(tr.In)
	if n.inFire {
		// Re-entrant path: rare by construction (only effects that
		// advance the net again), so a fresh context is fine.
		f := &Firing{Time: at, In: make([][]Token, nIn)} //simlint:allow hotpath-alloc re-entrant fallback, not the steady state
		for i, a := range tr.In {
			buf := make([]Token, a.weight()) //simlint:allow hotpath-alloc re-entrant fallback, not the steady state
			fillArc(a.Place, buf, consume)
			f.In[i] = buf
		}
		return f
	}
	f := &n.scratch
	f.Time = at
	if cap(f.In) < nIn {
		f.In = make([][]Token, nIn) //simlint:allow hotpath-alloc grows to the widest transition once, then reused
	}
	for len(n.scratchBufs) < nIn {
		n.scratchBufs = append(n.scratchBufs, nil) //simlint:allow hotpath-alloc grows to the widest transition once, then reused
	}
	f.In = f.In[:nIn]
	for i, a := range tr.In {
		w := a.weight()
		buf := n.scratchBufs[i]
		if cap(buf) < w {
			buf = make([]Token, w) //simlint:allow hotpath-alloc grows to the widest arc once, then reused
		}
		buf = buf[:w]
		fillArc(a.Place, buf, consume)
		n.scratchBufs[i] = buf
		f.In[i] = buf
	}
	return f
}

func fillArc(p *Place, buf []Token, consume bool) {
	for j := range buf {
		if consume {
			buf[j] = p.pop()
		} else {
			buf[j] = p.peek(j)
		}
	}
}

//simlint:hotpath fires once per work item per stage; Token values stay on the stack
func (n *Net) fire(tr *Transition, at vclock.Time) {
	if at > n.now {
		n.now = at
	}
	f := n.fillFiring(tr, at, true)
	wasInFire := n.inFire
	n.inFire = true
	var d vclock.Duration
	if tr.Delay != nil {
		d = tr.Delay(f)
	}
	done := at.Add(d)
	for _, o := range tr.Out {
		if o.Plain {
			o.Place.Push(Token{TS: done})
			continue
		}
		if o.Fn != nil {
			for _, t := range o.Fn(f, done) {
				o.Place.Push(t)
			}
			continue
		}
		t := Token{TS: done}
		if len(f.In) > 0 && len(f.In[0]) > 0 {
			t.Attrs = f.In[0][0].Attrs
		}
		o.Place.Push(t)
	}
	if tr.Effect != nil {
		tr.Effect(f, done)
	}
	n.inFire = wasInFire
	tr.fires++
}

// ---- Enabled-set heap (min by cached ready time, ties by registration
// order, positions tracked for O(log n) updates) ------------------------

func (n *Net) heapLess(a, b int32) bool {
	sa, sb := &n.state[a], &n.state[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return a < b
}

func (n *Net) heapSwap(i, j int32) {
	h := n.heap
	h[i], h[j] = h[j], h[i]
	n.state[h[i]].pos = i
	n.state[h[j]].pos = j
}

func (n *Net) heapPush(i int32) {
	n.state[i].pos = int32(len(n.heap))
	n.heap = append(n.heap, i)
	n.heapUp(n.state[i].pos)
}

func (n *Net) heapUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !n.heapLess(n.heap[i], n.heap[parent]) {
			break
		}
		n.heapSwap(i, parent)
		i = parent
	}
}

func (n *Net) heapDown(i int32) {
	size := int32(len(n.heap))
	for {
		l := 2*i + 1
		if l >= size {
			return
		}
		min := l
		if r := l + 1; r < size && n.heapLess(n.heap[r], n.heap[l]) {
			min = r
		}
		if !n.heapLess(n.heap[min], n.heap[i]) {
			return
		}
		n.heapSwap(i, min)
		i = min
	}
}

func (n *Net) heapFix(pos int32) {
	n.heapUp(pos)
	n.heapDown(pos)
}

func (n *Net) heapRemove(pos int32) {
	last := int32(len(n.heap)) - 1
	idx := n.heap[pos]
	if pos != last {
		n.heapSwap(pos, last)
	}
	n.heap = n.heap[:last]
	n.state[idx].pos = -1
	if pos < last {
		n.heapFix(pos)
	}
}

// Quiescent reports whether no transition can currently fire.
func (n *Net) Quiescent() bool {
	_, ok := n.NextEvent()
	return !ok
}

// TokenCount returns the total number of tokens in the net.
func (n *Net) TokenCount() int {
	total := 0
	for _, p := range n.places {
		total += p.Len()
	}
	return total
}

// Validate performs structural checks — every transition must have at
// least one input arc, all arcs must reference places registered in this
// net, and names must be unique — then seals the net for the incremental
// scheduler.
func (n *Net) Validate() error {
	known := make(map[*Place]bool, len(n.places))
	names := make(map[string]bool)
	for _, p := range n.places {
		known[p] = true
		if names[p.Name] {
			return fmt.Errorf("lpn %s: duplicate place name %q", n.Name, p.Name)
		}
		names[p.Name] = true
	}
	tnames := make(map[string]bool)
	for _, tr := range n.transitions {
		if tnames[tr.Name] {
			return fmt.Errorf("lpn %s: duplicate transition name %q", n.Name, tr.Name)
		}
		tnames[tr.Name] = true
		if len(tr.In) == 0 {
			return fmt.Errorf("lpn %s: transition %q has no input arcs (would fire forever)", n.Name, tr.Name)
		}
		for _, a := range tr.In {
			if !known[a.Place] {
				return fmt.Errorf("lpn %s: transition %q consumes from foreign place %q", n.Name, tr.Name, a.Place.Name)
			}
		}
		for _, o := range tr.Out {
			if !known[o.Place] {
				return fmt.Errorf("lpn %s: transition %q produces into foreign place %q", n.Name, tr.Name, o.Place.Name)
			}
		}
	}
	n.Seal()
	return nil
}

// ---- Reference engine --------------------------------------------------
//
// scanAdvance and scanNextEvent are the pre-rework full-rescan engine,
// kept verbatim (including its per-probe allocations) as an executable
// specification. The randomized differential test runs identical nets
// through both engines and requires identical firing sequences, clocks
// and final marking; the micro-benchmarks measure the incremental
// scheduler's speedup against this loop.

// scanReadyTime computes the earliest time tr could fire by examining its
// arcs from scratch.
func (n *Net) scanReadyTime(tr *Transition) (vclock.Time, bool) {
	ready := n.now
	for _, a := range tr.In {
		w := a.weight()
		if a.Place.Len() < w {
			return vclock.Never, false
		}
		for i := 0; i < w; i++ {
			if ts := a.Place.peek(i).TS; ts > ready {
				ready = ts
			}
		}
	}
	for _, o := range tr.Out {
		if o.Place.Cap > 0 && o.Place.Len() >= o.Place.Cap {
			return vclock.Never, false
		}
	}
	if tr.Guard != nil {
		f := &Firing{Time: ready, In: make([][]Token, len(tr.In))}
		for i, a := range tr.In {
			toks := make([]Token, a.weight())
			for j := range toks {
				toks[j] = a.Place.peek(j)
			}
			f.In[i] = toks
		}
		if !tr.Guard(f) {
			return vclock.Never, false
		}
	}
	return ready, true
}

// scanNextEvent is NextEvent via a full transition rescan.
func (n *Net) scanNextEvent() (vclock.Time, bool) {
	best, any := vclock.Never, false
	for _, tr := range n.transitions {
		if at, ok := n.scanReadyTime(tr); ok && at < best {
			best, any = at, true
		}
	}
	return best, any
}

// scanAdvance is Advance via a full rescan per firing.
func (n *Net) scanAdvance(until vclock.Time) int {
	fired := 0
	for {
		var chosen *Transition
		chosenAt := vclock.Never
		for _, tr := range n.transitions {
			if at, ok := n.scanReadyTime(tr); ok && at < chosenAt {
				chosen, chosenAt = tr, at
			}
		}
		if chosen == nil || chosenAt > until {
			break
		}
		n.scanFire(chosen, chosenAt)
		fired++
	}
	if until > n.now {
		n.now = until
	}
	return fired
}

// scanFire fires tr with a freshly allocated Firing, as the engine did
// before the scratch-reuse rework.
func (n *Net) scanFire(tr *Transition, at vclock.Time) {
	if at > n.now {
		n.now = at
	}
	f := &Firing{Time: at, In: make([][]Token, len(tr.In))}
	for i, a := range tr.In {
		w := a.weight()
		toks := make([]Token, w)
		for j := 0; j < w; j++ {
			toks[j] = a.Place.pop()
		}
		f.In[i] = toks
	}
	var d vclock.Duration
	if tr.Delay != nil {
		d = tr.Delay(f)
	}
	done := at.Add(d)
	for _, o := range tr.Out {
		if o.Plain {
			o.Place.Push(Token{TS: done})
			continue
		}
		if o.Fn != nil {
			for _, t := range o.Fn(f, done) {
				o.Place.Push(t)
			}
			continue
		}
		t := Token{TS: done}
		if len(f.In) > 0 && len(f.In[0]) > 0 {
			t.Attrs = f.In[0][0].Attrs
		}
		o.Place.Push(t)
	}
	if tr.Effect != nil {
		tr.Effect(f, done)
	}
	tr.fires++
}
