package lpn

import (
	"fmt"

	"nexsim/internal/checkpoint"
	"nexsim/internal/vclock"
)

// Checkpointing: a net's dynamic state is its clock, each place's token
// queue, and each transition's fire count. The incremental scheduler's
// enabled-set/heap state is deliberately *not* serialized — it is a pure
// function of the marking, and RestoreFrom unseals the net so the next
// engine call rebuilds it deterministically via Seal, exactly as a
// freshly constructed net would. That keeps the blob a content address
// of the logical state (two nets with equal markings encode
// identically, regardless of scheduling history).

// SnapshotTo serializes the net's dynamic state.
func (n *Net) SnapshotTo(enc *checkpoint.Encoder) {
	enc.String(n.Name)
	enc.I64(int64(n.now))
	enc.Int(len(n.places))
	for _, p := range n.places {
		enc.String(p.Name)
		enc.Int(p.Len())
		for i := 0; i < p.Len(); i++ {
			tk := p.peek(i)
			enc.I64(int64(tk.TS))
			for _, a := range tk.Attrs {
				enc.I64(a)
			}
		}
	}
	enc.Int(len(n.transitions))
	for _, tr := range n.transitions {
		enc.String(tr.Name)
		enc.I64(tr.fires)
	}
}

// RestoreFrom overwrites the net's dynamic state from a snapshot taken
// on a structurally identical net (same places and transitions, in the
// same order — checked by name). The net is unsealed; the scheduler
// state is rebuilt on the next engine call and the restored net then
// behaves identically to the snapshotted one.
func (n *Net) RestoreFrom(dec *checkpoint.Decoder) error {
	name := dec.String()
	now := vclock.Time(dec.I64())
	np := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if name != n.Name {
		return fmt.Errorf("lpn: restore of net %q into %q", name, n.Name)
	}
	if np != len(n.places) {
		return fmt.Errorf("lpn %s: restore with %d places, net has %d", n.Name, np, len(n.places))
	}
	tokens := make([][]Token, np)
	for i := range tokens {
		pname := dec.String()
		nt := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if pname != n.places[i].Name {
			return fmt.Errorf("lpn %s: restore place %d is %q, net has %q", n.Name, i, pname, n.places[i].Name)
		}
		if nt < 0 || (n.places[i].Cap > 0 && nt > n.places[i].Cap) {
			return fmt.Errorf("%w: %d tokens in place %q", checkpoint.ErrCorrupt, nt, pname)
		}
		toks := make([]Token, nt)
		for j := range toks {
			toks[j].TS = vclock.Time(dec.I64())
			for k := range toks[j].Attrs {
				toks[j].Attrs[k] = dec.I64()
			}
		}
		tokens[i] = toks
	}
	ntr := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if ntr != len(n.transitions) {
		return fmt.Errorf("lpn %s: restore with %d transitions, net has %d", n.Name, ntr, len(n.transitions))
	}
	fires := make([]int64, ntr)
	for i := range fires {
		tname := dec.String()
		fires[i] = dec.I64()
		if dec.Err() == nil && tname != n.transitions[i].Name {
			return fmt.Errorf("lpn %s: restore transition %d is %q, net has %q", n.Name, i, tname, n.transitions[i].Name)
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}

	for i, p := range n.places {
		p.tokens = tokens[i]
		p.head = 0
		p.gen++ // invalidate the ready-count memo
	}
	for i, tr := range n.transitions {
		tr.fires = fires[i]
	}
	n.now = now
	n.sealed = false
	return nil
}
