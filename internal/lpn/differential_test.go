package lpn

import (
	"fmt"
	"testing"

	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// The randomized differential test: generate layered random nets —
// weighted arcs, capacity-bounded places, token-dependent delays and
// guards, OutFuncs, effects — and drive two structurally identical
// instances through the same schedule of injections, Advance bounds and
// NextEvent probes: one on the incremental enabled-set engine, one on
// the reference rescan engine. The firing logs (name, fire time, done
// time), clocks, NextEvent answers and final markings must agree
// exactly; determinism of the experiment tables rests on this.

// genNet builds a random layered net from seed. Transitions consume from
// lower layers and produce into higher ones, so every run quiesces. The
// returned log records each firing.
func genNet(seed uint64) (n *Net, places []*Place, log *[]string) {
	rng := xrand.New(seed).Derive("net")
	n = New(fmt.Sprintf("rand-%d", seed))
	log = new([]string)

	nPlaces := 4 + rng.Intn(8)
	places = make([]*Place, nPlaces)
	for i := range places {
		cap := 0
		if rng.Intn(3) == 0 {
			cap = 1 + rng.Intn(4)
		}
		places[i] = n.AddPlace(fmt.Sprintf("p%d", i), cap)
	}

	nTrans := 2 + rng.Intn(7)
	for t := 0; t < nTrans; t++ {
		// Inputs from places [0, nPlaces-2]; outputs strictly above the
		// highest input, so the flow graph is acyclic.
		// Arc places are deduplicated: the engine treats each arc
		// independently (per-arc token count and headroom checks), so two
		// arcs on one place would be an invalid net, not a scheduler case.
		nIn := 1 + rng.Intn(2)
		maxIn := 0
		used := map[int]bool{}
		var in []Arc
		for a := 0; a < nIn; a++ {
			pi := rng.Intn(nPlaces - 1)
			if used[pi] {
				continue
			}
			used[pi] = true
			if pi > maxIn {
				maxIn = pi
			}
			in = append(in, Arc{Place: places[pi], Weight: 1 + rng.Intn(2)})
		}
		var out []OutArc
		nOut := rng.Intn(3)
		usedOut := map[int]bool{}
		for o := 0; o < nOut; o++ {
			pi := maxIn + 1 + rng.Intn(nPlaces-maxIn-1)
			if usedOut[pi] {
				continue
			}
			usedOut[pi] = true
			oa := OutArc{Place: places[pi]}
			if rng.Intn(3) == 0 {
				// OutFunc producing 0..2 derived tokens. Capacity-bounded
				// targets keep the default single-token arc so the
				// engine's headroom check stays sufficient.
				if places[pi].Cap == 0 {
					k := rng.Intn(3)
					oa.Fn = func(f *Firing, done vclock.Time) []Token {
						toks := make([]Token, k)
						for i := range toks {
							toks[i] = Tok(done, f.Tok(0).Attrs[0]+int64(i))
						}
						return toks
					}
				}
			}
			out = append(out, oa)
		}
		tr := &Transition{Name: fmt.Sprintf("t%d", t), In: in, Out: out}
		switch rng.Intn(3) {
		case 0:
			tr.Delay = Const(vclock.Duration(1 + rng.Intn(50)))
		case 1:
			mul := vclock.Duration(1 + rng.Intn(5))
			tr.Delay = func(f *Firing) vclock.Duration {
				return mul * vclock.Duration(f.Tok(0).Attrs[0]%7+1)
			}
		}
		if rng.Intn(4) == 0 {
			mod := int64(2 + rng.Intn(3))
			tr.Guard = func(f *Firing) bool { return f.Tok(0).Attrs[0]%mod != 0 }
		}
		name := tr.Name
		tr.Effect = func(f *Firing, done vclock.Time) {
			*log = append(*log, fmt.Sprintf("%s@%d..%d/%d", name, f.Time, done, f.Tok(0).Attrs[0]))
		}
		n.AddTransition(tr)
	}
	return n, places, log
}

// op is one step of the driver schedule.
type op struct {
	kind  int // 0 inject, 1 advance, 2 next-event
	place int
	tok   Token
	until vclock.Time
}

func genSchedule(seed uint64, nPlaces int) []op {
	rng := xrand.New(seed).Derive("sched")
	var ops []op
	t := vclock.Time(0)
	for i := 0; i < 24+rng.Intn(24); i++ {
		switch rng.Intn(5) {
		case 0, 1, 2:
			ops = append(ops, op{
				kind:  0,
				place: rng.Intn(nPlaces),
				tok:   Tok(t+vclock.Time(rng.Intn(40)), int64(rng.Intn(9)), int64(rng.Intn(100))),
			})
		case 3:
			t += vclock.Time(rng.Intn(120))
			ops = append(ops, op{kind: 1, until: t})
		case 4:
			ops = append(ops, op{kind: 2})
		}
	}
	ops = append(ops, op{kind: 1, until: t + 100000})
	return ops
}

// injectable reports whether a place can accept one more token (the
// driver must not trip the full-place panic).
func injectable(p *Place) bool { return p.Cap <= 0 || p.Len() < p.Cap }

// marking renders a place's tokens for comparison.
func marking(places []*Place) []string {
	var out []string
	for _, p := range places {
		s := p.Name + ":"
		for i := 0; i < p.Len(); i++ {
			tk := p.peek(i)
			s += fmt.Sprintf("(%d;%d,%d)", tk.TS, tk.Attrs[0], tk.Attrs[1])
		}
		out = append(out, s)
	}
	return out
}

func runDifferential(t *testing.T, seed uint64) int {
	t.Helper()
	inc, incPlaces, incLog := genNet(seed)
	ref, refPlaces, refLog := genNet(seed)
	sched := genSchedule(seed, len(incPlaces))

	for i, o := range sched {
		switch o.kind {
		case 0:
			// Skip the injection on both nets unless both can take it
			// (identical state, so they always agree).
			if injectable(incPlaces[o.place]) && injectable(refPlaces[o.place]) {
				inc.Inject(incPlaces[o.place], o.tok)
				ref.Inject(refPlaces[o.place], o.tok)
			}
		case 1:
			fi := inc.Advance(o.until)
			fr := ref.scanAdvance(o.until)
			if fi != fr {
				t.Fatalf("seed %d op %d: Advance(%d) fired %d (incremental) vs %d (reference)",
					seed, i, o.until, fi, fr)
			}
		case 2:
			ai, oki := inc.NextEvent()
			ar, okr := ref.scanNextEvent()
			if ai != ar || oki != okr {
				t.Fatalf("seed %d op %d: NextEvent %v,%v (incremental) vs %v,%v (reference)",
					seed, i, ai, oki, ar, okr)
			}
		}
	}

	if inc.Now() != ref.Now() {
		t.Fatalf("seed %d: clock %v vs %v", seed, inc.Now(), ref.Now())
	}
	li, lr := *incLog, *refLog
	if len(li) != len(lr) {
		t.Fatalf("seed %d: %d firings (incremental) vs %d (reference)\ninc: %v\nref: %v",
			seed, len(li), len(lr), li, lr)
	}
	for i := range li {
		if li[i] != lr[i] {
			t.Fatalf("seed %d: firing %d diverges: %q vs %q", seed, i, li[i], lr[i])
		}
	}
	mi, mr := marking(incPlaces), marking(refPlaces)
	for i := range mi {
		if mi[i] != mr[i] {
			t.Fatalf("seed %d: final marking of %s diverges:\n  inc %s\n  ref %s",
				seed, incPlaces[i].Name, mi[i], mr[i])
		}
	}
	for i, tr := range inc.transitions {
		if tr.fires != ref.transitions[i].fires {
			t.Fatalf("seed %d: %s fired %d vs %d times", seed, tr.Name, tr.fires, ref.transitions[i].fires)
		}
	}
	return len(li)
}

// TestDifferentialIncrementalVsReference runs the differential check over
// 1200 generated nets with fixed seeds.
func TestDifferentialIncrementalVsReference(t *testing.T) {
	nets := 1200
	if testing.Short() {
		nets = 150
	}
	total := 0
	for seed := 0; seed < nets; seed++ {
		total += runDifferential(t, uint64(seed))
	}
	// Guard against a vacuous pass: the corpus must actually exercise the
	// firing path, not just quiescent nets.
	if total < nets {
		t.Fatalf("differential corpus fired only %d transitions over %d nets", total, nets)
	}
	t.Logf("%d nets, %d total firings agreed", nets, total)
}
