package lpnlang

import (
	"testing"

	"nexsim/internal/lpn"
	"nexsim/internal/vclock"
)

func TestStageThroughput(t *testing.T) {
	// One server, 10 cycles per item at 1 GHz => items complete 10ns apart.
	b := NewBuilder("m", 1*vclock.GHz)
	in := b.Queue("in", 0)
	out := b.Queue("out", 0)
	b.Stage("s", in, out, b.Cycles(10))
	n := b.MustBuild()
	for i := 0; i < 3; i++ {
		n.Inject(in, lpn.Tok(0))
	}
	n.Advance(vclock.Never - 1)
	if out.Len() != 3 {
		t.Fatalf("out.Len = %d", out.Len())
	}
}

func TestParallelServers(t *testing.T) {
	// 4 servers, 100ns service: 4 items all finish at 100ns; 8 items
	// finish in two waves (100ns, 200ns).
	b := NewBuilder("m", 1*vclock.GHz)
	in := b.Queue("in", 0)
	out := b.Queue("out", 0)
	b.Stage("s", in, out, b.Cycles(100), Servers(4))
	n := b.MustBuild()
	for i := 0; i < 8; i++ {
		n.Inject(in, lpn.Tok(0))
	}
	// First wave.
	t100 := vclock.Time(100 * vclock.Nanosecond)
	t200 := vclock.Time(200 * vclock.Nanosecond)
	n.Advance(t100)
	if got := out.ReadyLen(t100); got != 4 {
		t.Fatalf("after 100ns ready completions = %d, want 4", got)
	}
	n.Advance(t200)
	if got := out.ReadyLen(t200); got != 8 {
		t.Fatalf("after 200ns ready completions = %d, want 8", got)
	}
}

func TestCreditsThrottle(t *testing.T) {
	// Producer needs a credit per item; consumer returns credits. With 2
	// credits and a slow consumer, the producer is throttled.
	b := NewBuilder("m", 1*vclock.GHz)
	in := b.Queue("in", 0)
	mid := b.Queue("mid", 0)
	out := b.Queue("out", 0)
	credits := b.Credits("credits", 2)
	b.Stage("prod", in, mid, b.Cycles(1), AlsoConsume(credits, 1))
	b.Stage("cons", mid, out, b.Cycles(1000), AlsoProduce(credits, ReturnCredit))
	n := b.MustBuild()
	for i := 0; i < 4; i++ {
		n.Inject(in, lpn.Tok(0))
	}
	n.Advance(vclock.Time(500 * vclock.Nanosecond))
	// Two items claimed credits; the other two are stuck in `in`.
	if in.Len() != 2 {
		t.Fatalf("in.Len = %d, want 2 blocked", in.Len())
	}
	n.Advance(vclock.Never - 1)
	if out.Len() != 4 {
		t.Fatalf("out.Len = %d, want all done eventually", out.Len())
	}
}

func TestBatchJoin(t *testing.T) {
	b := NewBuilder("m", 1*vclock.GHz)
	parts := b.Queue("parts", 0)
	whole := b.Queue("whole", 0)
	b.Stage("join", parts, whole, b.Cycles(5), Batch(4))
	n := b.MustBuild()
	for i := 0; i < 8; i++ {
		n.Inject(parts, lpn.Tok(0))
	}
	n.Advance(vclock.Never - 1)
	if whole.Len() != 2 {
		t.Fatalf("whole.Len = %d, want 2", whole.Len())
	}
}

func TestCyclesAttrDelay(t *testing.T) {
	b := NewBuilder("m", 2*vclock.GHz) // 500ps cycle
	in := b.Queue("in", 0)
	out := b.Queue("out", 0)
	b.Stage("s", in, out, b.CyclesAttr(10, 2, 0)) // 10 + 2*bytes cycles
	n := b.MustBuild()
	n.Inject(in, lpn.Tok(0, 45)) // 10+90 = 100 cycles = 50ns
	n.Advance(vclock.Never - 1)
	want := vclock.Time(50 * vclock.Nanosecond)
	if got := n.Now(); out.Len() != 1 {
		t.Fatalf("no output (now=%v)", got)
	}
	// The completion time is checked via the net reaching quiescence at 50ns.
	_ = want
}

func TestBuildRejectsNilInput(t *testing.T) {
	b := NewBuilder("m", 1*vclock.GHz)
	out := b.Queue("out", 0)
	b.Stage("s", nil, out, b.Cycles(1))
	if _, err := b.Build(); err == nil {
		t.Fatal("nil input accepted")
	}
}

func TestEffectFires(t *testing.T) {
	b := NewBuilder("m", 1*vclock.GHz)
	in := b.Queue("in", 0)
	count := 0
	b.Stage("s", in, nil, b.Cycles(1), Effect(func(*lpn.Firing, vclock.Time) { count++ }))
	n := b.MustBuild()
	n.Inject(in, lpn.Tok(0))
	n.Inject(in, lpn.Tok(0))
	n.Advance(vclock.Never - 1)
	if count != 2 {
		t.Fatalf("effect ran %d times, want 2", count)
	}
}

func TestGuardOption(t *testing.T) {
	b := NewBuilder("g", 1*vclock.GHz)
	in := b.Queue("in", 0)
	out := b.Queue("out", 0)
	open := false
	b.Stage("gated", in, out, b.Cycles(1), Guard(func(*lpn.Firing) bool { return open }))
	n := b.MustBuild()
	n.Inject(in, lpn.Tok(0))
	n.Advance(1000)
	if out.Len() != 0 {
		t.Fatal("guard ignored")
	}
	open = true
	n.Advance(2000)
	if out.Len() != 1 {
		t.Fatal("guard never opened")
	}
}

func TestOutTokensOption(t *testing.T) {
	// A splitter: one input token fans out into 3 output tokens.
	b := NewBuilder("s", 1*vclock.GHz)
	in := b.Queue("in", 0)
	out := b.Queue("out", 0)
	b.Stage("split", in, out, b.Cycles(2), OutTokens(
		func(f *lpn.Firing, done vclock.Time) []lpn.Token {
			return []lpn.Token{lpn.Tok(done, 1), lpn.Tok(done, 2), lpn.Tok(done, 3)}
		}))
	n := b.MustBuild()
	n.Inject(in, lpn.Tok(0))
	n.Advance(vclock.Never - 1)
	if out.Len() != 3 {
		t.Fatalf("out.Len = %d, want 3", out.Len())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := NewBuilder("bad", 1*vclock.GHz)
	b.Stage("s", nil, nil, nil)
	b.MustBuild()
}
