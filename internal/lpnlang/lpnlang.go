// Package lpnlang is a builder DSL for assembling Latency Petri Nets
// module by module, mirroring how the paper's lpnlang Python package is
// used to prototype accelerator performance models (§4.1): an LPN is
// written stage by stage, following the accelerator's dataflow, much like
// RTL is assembled module by module.
//
// The central convenience over raw package lpn is the Stage abstraction:
// a processing unit with k parallel servers (k server tokens on a
// self-loop), an optional batch size, and a delay that may depend on the
// token being processed. Credit loops model end-to-end flow control.
package lpnlang

import (
	"fmt"

	"nexsim/internal/lpn"
	"nexsim/internal/vclock"
)

// Builder accumulates places and transitions for one accelerator model.
type Builder struct {
	net  *lpn.Net
	clk  vclock.Hz
	errs []error
}

// NewBuilder starts a model named name whose cycle delays are interpreted
// at clock frequency clk.
func NewBuilder(name string, clk vclock.Hz) *Builder {
	return &Builder{net: lpn.New(name), clk: clk}
}

// Clock returns the builder's clock frequency.
func (b *Builder) Clock() vclock.Hz { return b.clk }

// Queue declares a FIFO place with the given capacity (0 = unbounded).
func (b *Builder) Queue(name string, capacity int) *lpn.Place {
	return b.net.AddPlace(name, capacity)
}

// StageOpt configures a Stage.
type StageOpt func(*stageCfg)

type stageCfg struct {
	servers  int
	batch    int
	delay    lpn.DelayFunc
	guard    lpn.GuardFunc
	effect   lpn.EffectFunc
	outFn    lpn.OutFunc
	extraIn  []lpn.Arc
	extraOut []lpn.OutArc
}

// Servers sets the number of parallel processing units in the stage
// (default 1). A stage with k servers can have k items in flight.
func Servers(k int) StageOpt { return func(c *stageCfg) { c.servers = k } }

// Batch makes the stage consume n tokens per firing (a join).
func Batch(n int) StageOpt { return func(c *stageCfg) { c.batch = n } }

// Guard attaches a firing guard.
func Guard(g lpn.GuardFunc) StageOpt { return func(c *stageCfg) { c.guard = g } }

// Effect attaches a side effect (e.g. a DMA emission) to each firing.
func Effect(e lpn.EffectFunc) StageOpt { return func(c *stageCfg) { c.effect = e } }

// OutTokens overrides the tokens deposited on the stage's output place.
func OutTokens(fn lpn.OutFunc) StageOpt { return func(c *stageCfg) { c.outFn = fn } }

// AlsoConsume adds an extra input arc (e.g. a credit or a DMA response).
func AlsoConsume(p *lpn.Place, weight int) StageOpt {
	return func(c *stageCfg) { c.extraIn = append(c.extraIn, lpn.Arc{Place: p, Weight: weight}) }
}

// AlsoProduce adds an extra output arc (e.g. returning a credit).
func AlsoProduce(p *lpn.Place, fn lpn.OutFunc) StageOpt {
	return func(c *stageCfg) { c.extraOut = append(c.extraOut, lpn.OutArc{Place: p, Fn: fn}) }
}

// AlsoRelease adds an extra output arc depositing one attribute-free
// token at the firing's completion time — the credit-return shape of
// AlsoProduce(p, ReturnCredit), but allocation-free on the firing path.
func AlsoRelease(p *lpn.Place) StageOpt {
	return func(c *stageCfg) { c.extraOut = append(c.extraOut, lpn.OutArc{Place: p, Plain: true}) }
}

// Cycles returns a delay of n clock cycles at the builder's frequency.
func (b *Builder) Cycles(n int64) lpn.DelayFunc { return lpn.PerCycle(b.clk, n) }

// CyclesAttr returns a delay computed from the first consumed token:
// base + perUnit * attrs[attr] cycles.
func (b *Builder) CyclesAttr(base, perUnit int64, attr int) lpn.DelayFunc {
	clk := b.clk
	return func(f *lpn.Firing) vclock.Duration {
		return clk.CyclesDur(base + perUnit*f.Tok(0).Attrs[attr])
	}
}

// CyclesFunc returns a delay of fn(firing) cycles.
func (b *Builder) CyclesFunc(fn func(f *lpn.Firing) int64) lpn.DelayFunc {
	clk := b.clk
	return func(f *lpn.Firing) vclock.Duration { return clk.CyclesDur(fn(f)) }
}

// Stage adds a processing stage reading from `from` and writing to `to`
// (either may be shared with other stages). delay may be nil for a
// zero-delay stage. It returns the underlying transition.
func (b *Builder) Stage(name string, from, to *lpn.Place, delay lpn.DelayFunc, opts ...StageOpt) *lpn.Transition {
	cfg := stageCfg{servers: 1, batch: 1, delay: delay}
	for _, o := range opts {
		o(&cfg)
	}
	if from == nil {
		b.errs = append(b.errs, fmt.Errorf("stage %s: nil input place", name))
		return nil
	}
	in := []lpn.Arc{{Place: from, Weight: cfg.batch}}
	var out []lpn.OutArc
	if to != nil {
		out = append(out, lpn.OutArc{Place: to, Fn: cfg.outFn})
	}
	if cfg.servers > 0 {
		srv := b.net.AddPlace(name+".srv", 0)
		for i := 0; i < cfg.servers; i++ {
			srv.Push(lpn.Tok(0))
		}
		in = append(in, lpn.Arc{Place: srv})
		out = append(out, lpn.OutArc{Place: srv, Plain: true})
	}
	in = append(in, cfg.extraIn...)
	out = append(out, cfg.extraOut...)
	return b.net.AddTransition(&lpn.Transition{
		Name:   name,
		In:     in,
		Out:    out,
		Delay:  cfg.delay,
		Guard:  cfg.guard,
		Effect: cfg.effect,
	})
}

// Credits declares a credit pool with n initial credits. Stages that
// consume a credit (AlsoConsume) stall when the pool is empty; a
// downstream stage returns credits with ReturnCredit.
func (b *Builder) Credits(name string, n int) *lpn.Place {
	p := b.net.AddPlace(name, 0)
	for i := 0; i < n; i++ {
		p.Push(lpn.Tok(0))
	}
	return p
}

// ReturnCredit is an OutFunc depositing one credit available immediately
// at the firing's completion time.
func ReturnCredit(f *lpn.Firing, done vclock.Time) []lpn.Token {
	return []lpn.Token{lpn.Tok(done)}
}

// Build validates the net, seals it for the incremental enabled-set
// scheduler (lpn.Validate builds the place→transition adjacency), and
// returns it ready to simulate.
func (b *Builder) Build() (*lpn.Net, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.net.Validate(); err != nil {
		return nil, err
	}
	return b.net, nil
}

// MustBuild is Build, panicking on error; accelerator models use it at
// construction time since their structure is static. The returned net is
// sealed: adding further places or transitions would unseal it and force
// a re-seal on the next engine call.
func (b *Builder) MustBuild() *lpn.Net {
	n, err := b.Build()
	if err != nil {
		panic("lpnlang: " + err.Error())
	}
	return n
}
