package nex

import (
	"math"
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

const (
	us = vclock.Microsecond
	ms = vclock.Millisecond
)

// exactCfg returns a config with the error model disabled, for tests
// that check exact epoch arithmetic.
func exactCfg() Config {
	return Config{
		Epoch:      1 * us,
		CalSigma:   -1, // sentinel: see newExact
		RefillLoss: -1,
	}
}

func newExact(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.CalSigma == -1 {
		cfg.CalSigma = 1e-12
	}
	if cfg.RefillLoss == -1 {
		cfg.RefillLoss = 1 // 1ps: negligible
	}
	e := New(cfg)
	e.calBias = 1.0
	return e
}

func TestSingleThreadComputeEpochAccounting(t *testing.T) {
	e := newExact(t, exactCfg())
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.ComputeFor(10 * us)
	}})
	// 10us of compute at 1us epochs: exactly 10us (epochs tile segments).
	if res.SimTime < 10*us || res.SimTime > 10*us+us/100 {
		t.Fatalf("SimTime = %v, want ~10us", res.SimTime)
	}
	// 10 compute epochs plus the epoch in which the exit is observed.
	if res.Stats.Epochs != 11 {
		t.Fatalf("Epochs = %d, want 11", res.Stats.Epochs)
	}
}

func TestErrorModelProducesSmallBias(t *testing.T) {
	// With the default error model, simulated time deviates from native
	// by a few percent — the paper's single-thread NEX error band.
	e := New(Config{Epoch: 1 * us, Seed: 7})
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.ComputeFor(10 * ms)
	}})
	err := math.Abs(res.SimTime.Seconds()-(10*ms).Seconds()) / (10 * ms).Seconds()
	if err == 0 {
		t.Fatal("error model inert")
	}
	if err > 0.12 {
		t.Fatalf("single-thread error %.1f%% implausibly large", err*100)
	}
}

func TestErrorModelDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) vclock.Duration {
		e := New(Config{Epoch: 1 * us, Seed: seed})
		return e.Run(app.Program{Main: func(env app.Env) {
			env.ComputeFor(1 * ms)
		}}).SimTime
	}
	if run(1) != run(1) {
		t.Fatal("same seed differs")
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produce identical bias (suspicious)")
	}
}

func TestUnparkQuantizedToEpoch(t *testing.T) {
	// Thread B waits on a queue; A pushes at t=2.5us (mid-epoch). B must
	// resume at the NEXT epoch boundary, not at 2.5us — the EBS
	// cross-epoch synchronization skew.
	q := &app.Queue{}
	var popped vclock.Time
	e := newExact(t, exactCfg())
	e.Run(app.Program{Main: func(env app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		env.Spawn("consumer", func(we app.Env) {
			q.Pop(we)
			popped = we.Now()
			wg.Done(we)
		})
		env.Spawn("producer", func(we app.Env) {
			we.ComputeFor(2500 * vclock.Nanosecond)
			q.Push(we, 1)
			wg.Done(we)
		})
		wg.Wait(env)
	}})
	// Producer pushes at 2.5us inside epoch [2,3)us... but threads spawn
	// at the next epoch after main's first epoch, so just check epoch
	// alignment: the consumer's wake time is an epoch boundary strictly
	// after the push.
	if popped == 0 {
		t.Fatal("consumer never ran")
	}
	if rem := int64(popped) % int64(us); rem != 0 {
		t.Fatalf("consumer resumed mid-epoch at %v", popped)
	}
}

func TestMutexStillCorrectUnderEBS(t *testing.T) {
	var mu app.Mutex
	counter := 0
	e := newExact(t, exactCfg())
	e.Run(app.Program{Main: func(env app.Env) {
		var wg app.WaitGroup
		wg.Add(4)
		for i := 0; i < 4; i++ {
			env.Spawn("w", func(we app.Env) {
				for j := 0; j < 50; j++ {
					mu.Lock(we)
					c := counter
					we.ComputeFor(100 * vclock.Nanosecond)
					counter = c + 1
					mu.Unlock(we)
				}
				wg.Done(we)
			})
		}
		wg.Wait(env)
	}})
	if counter != 200 {
		t.Fatalf("counter = %d, want 200 (mutual exclusion broken)", counter)
	}
}

func TestEpochDurationSpeedAccuracyTradeoff(t *testing.T) {
	// Larger epochs => fewer epochs (lower engine cost). With barriers,
	// larger epochs => more error. This is Table 4's shape.
	barrierHeavy := func(epoch vclock.Duration) (vclock.Duration, int64) {
		b := &app.Barrier{N: 4}
		e := newExact(t, Config{Epoch: epoch, CalSigma: -1, RefillLoss: -1})
		e.calBias = 1.0
		res := e.Run(app.Program{Main: func(env app.Env) {
			var wg app.WaitGroup
			wg.Add(4)
			for i := 0; i < 4; i++ {
				env.Spawn("w", func(we app.Env) {
					for j := 0; j < 50; j++ {
						we.ComputeFor(3 * us)
						b.Wait(we)
					}
					wg.Done(we)
				})
			}
			wg.Wait(env)
		}})
		return res.SimTime, res.Stats.Epochs
	}
	t1, e1 := barrierHeavy(1 * us)
	t4, e4 := barrierHeavy(4 * us)
	if e4 >= e1 {
		t.Fatalf("larger epoch did not reduce epoch count: %d vs %d", e4, e1)
	}
	if t4 <= t1 {
		t.Fatalf("larger epoch did not increase simulated time under barriers: %v vs %v", t4, t1)
	}
}

func TestOversubscriptionUsesPolicy(t *testing.T) {
	e := newExact(t, Config{Epoch: 1 * us, VirtualCores: 2, CalSigma: -1, RefillLoss: -1})
	e.calBias = 1.0
	res := e.Run(app.Program{Main: func(env app.Env) {
		var wg app.WaitGroup
		wg.Add(4)
		for i := 0; i < 4; i++ {
			env.Spawn("w", func(we app.Env) {
				we.ComputeFor(100 * us)
				wg.Done(we)
			})
		}
		wg.Wait(env)
	}})
	// 4 threads, 2 virtual cores, 100us each: ~200us total.
	if res.SimTime < 195*us || res.SimTime > 215*us {
		t.Fatalf("SimTime = %v, want ~200us", res.SimTime)
	}
}

func TestJumpTZeroVirtualCost(t *testing.T) {
	e := newExact(t, exactCfg())
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.ComputeFor(5 * us)
		env.JumpT(func() { env.ComputeFor(100 * ms) })
		env.ComputeFor(5 * us)
	}})
	if res.SimTime > 11*us {
		t.Fatalf("SimTime = %v; JumpT leaked virtual time", res.SimTime)
	}
}

func TestCompressT(t *testing.T) {
	e := newExact(t, exactCfg())
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.CompressT(10, func() { env.ComputeFor(100 * us) })
	}})
	if res.SimTime < 10*us || res.SimTime > 11*us {
		t.Fatalf("SimTime = %v, want ~10us", res.SimTime)
	}
}

func TestSlipStreamReducesEpochs(t *testing.T) {
	run := func(slip bool) int64 {
		e := newExact(t, exactCfg())
		return e.Run(app.Program{Main: func(env app.Env) {
			body := func() { env.ComputeFor(5 * ms) }
			if slip {
				env.SlipStream(body)
			} else {
				body()
			}
		}}).Stats.Epochs
	}
	normal, slipped := run(false), run(true)
	if slipped >= normal/100 {
		t.Fatalf("SlipStream epochs = %d vs normal %d; expected ~1000x fewer", slipped, normal)
	}
}

// trapDevice counts register accesses and completes tasks after a fixed
// busy time; used to test trap quantization and sync modes.
type trapDevice struct {
	host    accel.Host
	busy    vclock.Duration
	now     vclock.Time
	doneAt  vclock.Time
	pending bool
	status  uint32
	irq     bool
	reads   int
}

func (d *trapDevice) Name() string { return "trapdev" }

func (d *trapDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	d.reads++
	return d.status
}

func (d *trapDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	d.status = 0
	d.pending = true
	d.doneAt = maxT(at, d.now).Add(d.busy)
}

func (d *trapDevice) Advance(t vclock.Time) {
	if t > d.now {
		d.now = t
	}
	if d.pending && d.now >= d.doneAt {
		d.pending = false
		d.status = 1
		if d.irq {
			d.host.RaiseIRQ(d.doneAt, 3)
		}
	}
}

func (d *trapDevice) NextEvent() (vclock.Time, bool) {
	if d.pending {
		return d.doneAt, true
	}
	return vclock.Never, false
}

func (d *trapDevice) Stats() accel.DeviceStats { return accel.DeviceStats{} }

func maxT(a, b vclock.Time) vclock.Time {
	if a > b {
		return a
	}
	return b
}

func attach(e *Engine, d *trapDevice) {
	b := &DeviceBinding{Device: d, MMIOBase: 0x8000_0000, MMIOSize: 4096,
		MMIOCost: 850 * vclock.Nanosecond}
	d.host = e.HostFor(b)
	e.Attach(b)
}

func TestTrapQuantization(t *testing.T) {
	e := newExact(t, exactCfg())
	dev := &trapDevice{busy: 20 * us}
	attach(e, dev)
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1)
		for env.MMIORead(0x8000_0000) == 0 {
			env.Sleep(2 * us)
		}
	}})
	if res.Stats.Traps == 0 {
		t.Fatal("no traps recorded")
	}
	// Polling loop: ~20us busy / 2us polls => ~7+ traps, and the total
	// time exceeds the exact 20us because every trap burns epoch
	// remainder + MMIO cost.
	if res.SimTime < 20*us {
		t.Fatalf("SimTime = %v < busy time", res.SimTime)
	}
	if res.SimTime > 45*us {
		t.Fatalf("SimTime = %v, trap overhead implausible", res.SimTime)
	}
}

func TestHybridDeliversIRQs(t *testing.T) {
	e := newExact(t, Config{Epoch: 1 * us, Mode: Hybrid, SyncInterval: 10 * us,
		CalSigma: -1, RefillLoss: -1})
	e.calBias = 1.0
	dev := &trapDevice{busy: 33 * us, irq: true}
	attach(e, dev)
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1)
		env.WaitIRQ(3)
	}})
	// Doorbell ~t=0, busy 33us, IRQ raised at ~33us, delivered at the
	// next 10us interval boundary: 40us.
	if res.SimTime < 33*us || res.SimTime > 52*us {
		t.Fatalf("SimTime = %v, want IRQ delivered at interval boundary after 33us", res.SimTime)
	}
	if res.Stats.IRQs != 1 {
		t.Fatalf("IRQs = %d", res.Stats.IRQs)
	}
	if res.Stats.Syncs == 0 {
		t.Fatal("hybrid mode performed no periodic syncs")
	}
}

func TestEagerSyncsEveryEpoch(t *testing.T) {
	e := newExact(t, Config{Epoch: 1 * us, Mode: Eager, CalSigma: -1, RefillLoss: -1})
	e.calBias = 1.0
	dev := &trapDevice{busy: 5 * us}
	attach(e, dev)
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.ComputeFor(10 * us)
	}})
	if res.Stats.Syncs < 9 {
		t.Fatalf("Syncs = %d, want one per epoch", res.Stats.Syncs)
	}
	_ = res
}

func TestTickModeReducesTraps(t *testing.T) {
	run := func(tick bool) int64 {
		e := newExact(t, Config{Epoch: 1 * us, TickMode: tick, CalSigma: -1, RefillLoss: -1})
		e.calBias = 1.0
		region := e.Mem().Alloc("taskbuf", 4096)
		return e.Run(app.Program{Main: func(env app.Env) {
			var buf [8]byte
			for i := 0; i < 16; i++ {
				env.TaskWrite(region.Base+mem.Addr(i*8), buf[:])
			}
			env.Tick()
		}}).Stats.Traps
	}
	noTick, withTick := run(false), run(true)
	if withTick != 1 {
		t.Fatalf("tick mode traps = %d, want 1", withTick)
	}
	if noTick != 17 {
		t.Fatalf("non-tick traps = %d, want 17 (16 writes + tick)", noTick)
	}
}

func TestUnderprovisioningAddsError(t *testing.T) {
	run := func(phys int) vclock.Duration {
		e := New(Config{Epoch: 1 * us, VirtualCores: 16, PhysicalCores: phys, Seed: 3})
		return e.Run(app.Program{Main: func(env app.Env) {
			var wg app.WaitGroup
			wg.Add(16)
			for i := 0; i < 16; i++ {
				env.Spawn("w", func(we app.Env) {
					we.ComputeFor(1 * ms)
					wg.Done(we)
				})
			}
			wg.Wait(env)
		}}).SimTime
	}
	full, under := run(16), run(1)
	errFull := math.Abs(full.Seconds()-0.001) / 0.001
	errUnder := math.Abs(under.Seconds()-0.001) / 0.001
	if errUnder <= errFull {
		t.Fatalf("underprovisioning did not increase error: %.2f%% vs %.2f%%",
			errUnder*100, errFull*100)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() vclock.Duration {
		var mu app.Mutex
		e := New(Config{Epoch: 1 * us, Seed: 42})
		return e.Run(app.Program{Main: func(env app.Env) {
			var wg app.WaitGroup
			wg.Add(3)
			for i := 0; i < 3; i++ {
				env.Spawn("w", func(we app.Env) {
					for j := 0; j < 30; j++ {
						mu.Lock(we)
						we.ComputeFor(500 * vclock.Nanosecond)
						mu.Unlock(we)
					}
					wg.Done(we)
				})
			}
			wg.Wait(env)
		}}).SimTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSleepQuantization(t *testing.T) {
	e := newExact(t, exactCfg())
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.Sleep(2500 * vclock.Nanosecond)
		env.ComputeFor(1 * us)
	}})
	// Sleep wakes at 2.5us; the next epoch starts there (idle jump), so
	// total ~3.5us.
	if res.SimTime < 3*us || res.SimTime > 4*us {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
	if res.Stats.IdleJumps == 0 {
		t.Fatal("sleep did not use the idle-jump path")
	}
}

func TestSlipStreamExitTruncatesEpoch(t *testing.T) {
	// Work after a SlipStream region must not wait for the 20ms slip
	// epoch to elapse — exiting forces an immediate reschedule (§3.4).
	e := newExact(t, exactCfg())
	res := e.Run(app.Program{Main: func(env app.Env) {
		env.SlipStream(func() { env.ComputeFor(100 * us) })
		env.ComputeFor(5 * us)
	}})
	if res.SimTime > 110*us {
		t.Fatalf("SimTime = %v; slip epoch leaked into post-region time", res.SimTime)
	}
}

func TestStickyIRQNoLostWakeup(t *testing.T) {
	// The interrupt fires while the thread is between its status check
	// and WaitIRQ; the latched interrupt must still wake it.
	e := newExact(t, Config{Epoch: 1 * us, Mode: Hybrid, SyncInterval: 5 * us,
		CalSigma: -1, RefillLoss: -1})
	e.calBias = 1.0
	dev := &trapDevice{busy: 3 * us, irq: true}
	attach(e, dev)
	completed := false
	e.Run(app.Program{Main: func(env app.Env) {
		env.MMIOWrite(0x8000_0000, 1)
		// Burn time past the device's completion so the IRQ is raised
		// and delivered before we wait.
		env.ComputeFor(40 * us)
		if env.MMIORead(0x8000_0000) != 1 {
			t.Error("device not done")
		}
		env.WaitIRQ(3) // must consume the latched interrupt, not hang
		completed = true
	}})
	if !completed {
		t.Fatal("WaitIRQ hung on a latched interrupt")
	}
}

func TestEagerModeMatchesLazyAccuracy(t *testing.T) {
	run := func(mode SyncMode) vclock.Duration {
		e := newExact(t, Config{Epoch: 1 * us, Mode: mode, CalSigma: -1, RefillLoss: -1})
		e.calBias = 1.0
		dev := &trapDevice{busy: 10 * us}
		attach(e, dev)
		return e.Run(app.Program{Main: func(env app.Env) {
			env.MMIOWrite(0x8000_0000, 1)
			for env.MMIORead(0x8000_0000) == 0 {
				env.Sleep(2 * us)
			}
		}}).SimTime
	}
	lazy, eager := run(Lazy), run(Eager)
	if lazy != eager {
		t.Fatalf("lazy %v != eager %v (sync mode must not change timing here)", lazy, eager)
	}
}
