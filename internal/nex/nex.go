// Package nex implements the NEX native-execution orchestrator (paper
// §3): an epoch-based host engine that advances application threads in
// fixed virtual-time epochs (EBS scheduling), traps on accelerator
// interactions, and synchronizes accelerator simulators lazily, eagerly,
// or with hybrid periodic synchronization.
//
// Where the paper runs real x86 threads under a sched-ext scheduler with
// ptrace-intercepted MMIO, this implementation runs simulated threads
// (package coro) whose compute segments carry their measured native
// durations. The engine's cost structure matches the real system's:
// O(1) host work per thread-epoch and per trap, independent of the
// instruction count — which is why it is orders of magnitude faster than
// the cycle-level host in package cpu, exactly as in the paper.
//
// The accuracy mechanics are also the paper's:
//
//   - traps resolve at their exact virtual time, but the trapping thread
//     resumes only at the next epoch boundary (§3.2 "tick mode" reduces
//     this), so every interaction loses part of an epoch;
//   - threads woken by other threads (locks, queues, barriers) become
//     runnable only at the next epoch boundary (§6.6's cross-epoch
//     synchronization error, growing with epoch duration);
//   - compute durations carry a systematic calibration bias (the paper's
//     δ constant is obtained by calibration and imperfect) plus a
//     per-epoch pipeline-refill loss that grows relatively as epochs
//     shrink (§6.6's hypothesis for the 500 ns anomaly);
//   - underprovisioned physical cores add interference error (§6.6).
package nex

import (
	"fmt"
	"sort"
	"time"

	"nexsim/internal/accel"
	"nexsim/internal/app"
	"nexsim/internal/coro"
	"nexsim/internal/faults"
	"nexsim/internal/mem"
	"nexsim/internal/memsys"
	"nexsim/internal/parsim"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

// SyncMode selects how accelerator simulators are synchronized (§3.1).
type SyncMode int

const (
	// Lazy advances accelerator simulators only when the application
	// interacts with them (default). Interrupts are not promptly
	// delivered; they surface at the next trap or idle period.
	Lazy SyncMode = iota
	// Eager advances accelerator simulators in lock-step at every epoch
	// boundary, like conventional full-stack simulators.
	Eager
	// Hybrid layers periodic synchronization (every SyncInterval) on top
	// of lazy synchronization; interrupts are delivered at interval
	// boundaries (§3.1, §6.7).
	Hybrid
)

func (m SyncMode) String() string {
	switch m {
	case Lazy:
		return "lazy"
	case Eager:
		return "eager"
	default:
		return "hybrid"
	}
}

// Policy is the complementary scheduling policy (§3.3, §A.1): when more
// threads are runnable than virtual cores, it picks which run this epoch.
type Policy interface {
	// Select returns up to vcores threads from runnable (which is in
	// thread-creation order) to execute in the coming epoch.
	Select(epoch int64, runnable []*coro.Thread, vcores int) []*coro.Thread
}

// DeviceBinding attaches an accelerator simulator to NEX.
type DeviceBinding struct {
	Device   accel.Device
	MMIOBase mem.Addr
	MMIOSize uint64
	DMAPort  memsys.Port
	MMIOCost vclock.Duration
	// MMIOWriteCost is the cost of a posted register write; default 120ns.
	MMIOWriteCost vclock.Duration

	idx int // position in Engine.devices, set by Attach
}

// Config parameterizes a NEX engine.
type Config struct {
	Name  string
	Clock vclock.Hz // simulated host core frequency

	// Epoch is the virtual-time epoch duration e (default 1µs, the
	// paper's sweet spot).
	Epoch vclock.Duration

	// VirtualCores is the simulated machine's core count (default 16).
	VirtualCores int

	// PhysicalCores models the host cores NEX may use (default =
	// VirtualCores). Underprovisioning (fewer physical than virtual)
	// degrades both speed and accuracy (§6.6).
	PhysicalCores int

	// Mode selects the synchronization mode; SyncInterval applies to
	// Hybrid (default 10µs).
	Mode         SyncMode
	SyncInterval vclock.Duration

	// TickMode makes task-buffer accesses non-trapping; drivers signal
	// batched synchronization points via Env.Tick (§3.2).
	TickMode bool

	// Policy is the complementary scheduling policy; nil selects the
	// default fair policy of §A.1.
	Policy Policy

	// SlipEpoch is the epoch duration inside SlipStream regions
	// (default 20ms).
	SlipEpoch vclock.Duration

	// Seed drives the deterministic error model (calibration bias,
	// interference). Same seed, same program → identical results.
	Seed uint64

	// CalSigma is the standard deviation of the systematic calibration
	// bias (default 0.025). RefillLoss is the per-epoch virtual-time
	// accounting loss (default 12ns).
	CalSigma   float64
	RefillLoss vclock.Duration

	// MaxEpochs aborts the run after this many scheduler epochs (0 =
	// unlimited). MaxWall aborts after this much host wall-clock time,
	// checked every few loop iterations (0 = unlimited). An aborted
	// engine sets BudgetExceeded; the caller must Reap it.
	MaxEpochs int64
	MaxWall   time.Duration

	// Intra >= 2 advances accelerator simulators on up to Intra-1
	// stepper goroutines under conservative lookahead (DESIGN.md §10);
	// results stay byte-identical to serial.
	Intra int

	// Faults is the per-run fault injector (nil = none). Device-bound
	// traps cross the device.dispatch site.
	Faults *faults.Injector

	Memory         *mem.Memory
	Trace          *trace.Recorder
	TaskAccessCost vclock.Duration
}

// Stats counts the engine work that determines NEX's real-world cost.
type Stats struct {
	Epochs       int64 // epochs in which application threads executed
	ThreadEpochs int64 // thread×epoch execution slots
	Rounds       int64 // physical-core rounds (≥ ThreadEpochs/PhysicalCores)
	Traps        int64 // MMIO/task-buffer/tick traps
	Syncs        int64 // accelerator synchronization events
	IRQs         int64 // interrupts delivered
	IdleJumps    int64 // multi-epoch jumps while all threads were idle
}

// Real-system per-event costs for ModeledWall, fitted once to the
// paper's single-thread Table 4 row (its slowdown is dominated by
// per-epoch kernel crossings, §7).
const (
	// PerEpochCost is the scheduler's fixed cost per epoch (timer
	// interrupt + kernel crossing).
	PerEpochCost = 13600 * vclock.Nanosecond
	// PerThreadEpochCost is the per-core bookkeeping per thread-epoch.
	PerThreadEpochCost = 450 * vclock.Nanosecond
	// PerSyncCost is a periodic synchronization: pausing all threads and
	// exchanging messages with every accelerator simulator.
	PerSyncCost = 30 * vclock.Microsecond
)

// ModeledWall estimates the wall-clock time this run would take on the
// real NEX (whose epochs execute native code and cross the kernel),
// given the engine's measured event counts: fixed per-epoch scheduling,
// per-thread-epoch management, one epoch of native execution per
// physical-core round, and the periodic synchronization exchanges.
func (s Stats) ModeledWall(epoch vclock.Duration) vclock.Duration {
	return vclock.Duration(s.Epochs)*PerEpochCost +
		vclock.Duration(s.ThreadEpochs)*PerThreadEpochCost +
		vclock.Duration(s.Rounds)*epoch +
		vclock.Duration(s.Syncs)*PerSyncCost
}

// Engine is one NEX orchestrator instance.
type Engine struct {
	cfg     Config
	mem     *mem.Memory      //simlint:transient wiring; memory content is checkpointed by core.System
	devices []*DeviceBinding //simlint:transient wiring; each device snapshots its own section
	devTime vclock.Time

	threads []*coro.Thread
	live    int
	nextTID int
	irqWait map[int][]*coro.Thread
	pending []pendingIRQ

	// Scheduler hot-path state: the loop would otherwise rescan every
	// thread ever created, twice per epoch (minWake + runnableAt).
	//
	// active holds the threads that may be runnable (neither exited nor
	// parked), in creation order. Entries go stale in place when a thread
	// parks or exits and are swept out once they outnumber the live ones
	// (amortized O(1)); unparking re-inserts compacted-out threads by ID.
	active    []*coro.Thread //simlint:transient cache over threads; rebuilt as replay re-creates them
	inactiveN int            //simlint:transient stale-entry count for the active cache
	// wakeMin caches minWake; it is invalidated only when the thread
	// holding the minimum moves its wake time up.
	wakeMin   vclock.Time //simlint:transient memo of minWake; recomputed on demand
	wakeValid bool        //simlint:transient validity bit of the wakeMin memo
	// runnableBuf is runnableAt's reusable scratch slice; its contents
	// are only live until the next epoch's scan.
	runnableBuf []*coro.Thread //simlint:transient per-epoch scratch, dead between epochs

	now      vclock.Time // current epoch start
	truncate bool        // a SlipStream exit requested epoch truncation
	finishT  vclock.Time // virtual time of the last thread activity
	nextSync vclock.Time // next hybrid periodic synchronization boundary
	epochIdx int64
	calBias  float64       //simlint:transient derived from cfg.Seed and CalSigma in New
	interfer float64       //simlint:transient derived from cfg in New (underprovisioning factor)
	rng      *xrand.Stream //simlint:transient re-seeded from cfg.Seed; journal replay re-walks the stream

	// Checkpoint machinery (snapshot.go). While recording, every thread
	// yield is journaled so a fresh engine can replay the prefix; while
	// haltArmed, the first device-bound request freezes the engine
	// mid-epoch into frame instead of being processed.
	recording bool //simlint:transient snapshot-machinery mode flag, set by RunPrefix itself
	haltArmed bool //simlint:transient snapshot-machinery mode flag, set by RunPrefix itself
	journal   []journalEntry
	frame     *haltFrame

	// Watchdog budget state: loopTicks counts loop iterations (for the
	// amortized wall check), wallStart anchors MaxWall, exceeded latches
	// a budget abort.
	loopTicks int64     //simlint:transient watchdog bookkeeping, never simulation state
	wallStart time.Time //simlint:transient watchdog wall anchor, never simulation state
	exceeded  bool      //simlint:transient watchdog latch, never simulation state

	// Parallel intra-run state (nil/zero when serial).
	crew     *parsim.Crew  //simlint:transient per-run lanes; Run builds and shuts them down
	devWall  time.Duration //simlint:transient wall-time attribution of the last run
	ranLanes int           //simlint:transient lane count of the last run

	Stats Stats
}

// haltFrame freezes the position inside an epoch's slot loop at the
// moment a prefix halt fired: the selected threads, which slot halted,
// the epoch bounds, and the yielded-but-unprocessed request.
type haltFrame struct {
	selected []*coro.Thread
	idx      int
	start    vclock.Time
	end      vclock.Time
	req      coro.Request
}

type pendingIRQ struct {
	at     vclock.Time
	vector int
}

// tstate is NEX's per-thread state.
type tstate struct {
	th       *coro.Thread
	wakeAt   vclock.Time // earliest epoch start the thread may run at
	parked   bool
	pending  bool
	deficit  vclock.Duration // remaining virtual time of current segment
	vruntime vclock.Duration
	compress []float64
	jumpt    int
	slip     bool
	seedCtr  uint64
	exited   bool
	inActive bool        // present in Engine.active (possibly stale)
	cursor   vclock.Time // thread-local virtual time (for Env.Now)
}

func st(t *coro.Thread) *tstate { return t.Data.(*tstate) }

// New builds a NEX engine.
func New(cfg Config) *Engine {
	if cfg.Clock == 0 {
		cfg.Clock = 3 * vclock.GHz
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1 * vclock.Microsecond
	}
	if cfg.VirtualCores <= 0 {
		cfg.VirtualCores = 16
	}
	if cfg.PhysicalCores <= 0 {
		cfg.PhysicalCores = cfg.VirtualCores
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = 10 * vclock.Microsecond
	}
	if cfg.SlipEpoch == 0 {
		cfg.SlipEpoch = 20 * vclock.Millisecond
	}
	if cfg.Policy == nil {
		cfg.Policy = NewFairPolicy()
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1 * vclock.Microsecond
	}
	if fp, ok := cfg.Policy.(*FairPolicy); ok {
		fp.SetEpoch(cfg.Epoch)
	}
	if cfg.Memory == nil {
		cfg.Memory = mem.New(0x1000_0000)
	}
	if cfg.TaskAccessCost == 0 {
		cfg.TaskAccessCost = 90 * vclock.Nanosecond
	}
	if cfg.CalSigma == 0 {
		cfg.CalSigma = 0.025
	}
	if cfg.RefillLoss == 0 {
		cfg.RefillLoss = 12 * vclock.Nanosecond
	}
	rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	e := &Engine{
		cfg:     cfg,
		mem:     cfg.Memory,
		irqWait: make(map[int][]*coro.Thread),
		rng:     rng,
	}
	// Systematic calibration bias: the δ calibration constant is close
	// but not perfect, so native-time accounting carries a small
	// engine-wide multiplicative error.
	e.calBias = rng.Derive("calibration").Jitter(cfg.CalSigma)
	// Underprovisioning interference: sharing physical cores disturbs
	// the microarchitectural state NEX cannot see.
	if cfg.PhysicalCores < cfg.VirtualCores {
		frac := 1 - float64(cfg.PhysicalCores)/float64(cfg.VirtualCores)
		e.interfer = 0.155 * frac * rng.Derive("interference").Jitter(0.2)
	}
	return e
}

// Mem returns the simulated physical memory.
func (e *Engine) Mem() *mem.Memory { return e.mem }

// Attach registers a device binding; must precede Run.
func (e *Engine) Attach(b *DeviceBinding) {
	if b.MMIOCost == 0 {
		b.MMIOCost = 850 * vclock.Nanosecond
	}
	if b.MMIOWriteCost == 0 {
		b.MMIOWriteCost = 120 * vclock.Nanosecond
	}
	b.idx = len(e.devices)
	e.devices = append(e.devices, b)
	// The NEX runtime protects the device's MMIO window so that any
	// faulting access first catches the accelerator complex up — the
	// mprotect/ptrace mechanism of §3.2 on the simulated substrate.
	r := e.mem.RegionAt(b.MMIOBase)
	if r != nil {
		e.mem.Protect(r, func(kind mem.AccessKind, addr mem.Addr, size int) {
			e.advanceDevices(e.now)
		})
	}
}

// HostFor returns the accel.Host for a binding.
func (e *Engine) HostFor(b *DeviceBinding) accel.Host { return &hostShim{e: e, b: b} }

// Result summarizes a run.
type Result struct {
	SimTime vclock.Duration
	Threads int
	Stats   Stats
}

// Run executes the program to completion (or until its budget is
// exceeded — check BudgetExceeded and Reap on abort).
func (e *Engine) Run(prog app.Program) Result {
	main := e.newThread("main", prog.Main)
	e.setWake(st(main), 0)
	e.nextSync = vclock.Time(e.cfg.SyncInterval)
	defer e.stopCrew()
	e.startCrew()
	e.startWatchdog()
	e.loop()
	return e.result()
}

// startCrew spawns the stepper lanes for parallel intra-run mode; no-op
// when serial.
func (e *Engine) startCrew() {
	if e.cfg.Intra < 2 || len(e.devices) == 0 || e.crew != nil {
		return
	}
	devs := make([]accel.Device, len(e.devices))
	for i, b := range e.devices {
		devs[i] = b.Device
	}
	e.crew = parsim.New(devs, e.cfg.Intra-1)
	e.ranLanes = e.crew.Lanes()
}

// stopCrew quiesces and terminates the stepper lanes, folding their
// busy time into the run's device-wall statistic.
func (e *Engine) stopCrew() {
	if e.crew == nil {
		return
	}
	e.devWall += e.crew.DeviceWall()
	e.crew.Shutdown()
	e.crew = nil
}

// IntraStats reports the stepper-lane count of the last Run (0 when it
// ran serially) and the cumulative wall time the steppers spent
// advancing devices.
func (e *Engine) IntraStats() (lanes int, deviceWall time.Duration) {
	return e.ranLanes, e.devWall
}

// startWatchdog anchors the wall-clock budget at run (or resume) start.
func (e *Engine) startWatchdog() {
	if e.cfg.MaxWall > 0 {
		e.wallStart = time.Now() //simlint:allow nondet-time watchdog wall budget, never simulation state
	}
}

// overBudget reports whether the run blew its epoch or wall budget. The
// epoch bound is exact (checked at every loop turn); the wall bound is
// amortized over 64 loop iterations to keep the hot path syscall-free.
func (e *Engine) overBudget() bool {
	if e.cfg.MaxEpochs > 0 && e.epochIdx >= e.cfg.MaxEpochs {
		return true
	}
	if e.cfg.MaxWall > 0 {
		e.loopTicks++
		if e.loopTicks&63 == 0 && time.Since(e.wallStart) > e.cfg.MaxWall { //simlint:allow nondet-time watchdog wall budget, never simulation state
			return true
		}
	}
	return false
}

// BudgetExceeded reports whether the last Run/ResumeRun aborted on its
// budget. An exceeded engine holds live parked thread goroutines until
// Reap is called.
func (e *Engine) BudgetExceeded() bool { return e.exceeded }

// Reap force-terminates every live thread goroutine of an abandoned run
// (see coro.Kill). The engine must not be used afterwards.
func (e *Engine) Reap() {
	for _, th := range e.threads {
		th.Kill()
	}
	e.live = 0
}

func (e *Engine) result() Result {
	return Result{SimTime: vclock.Duration(e.lastActivity()), Threads: e.nextTID, Stats: e.Stats}
}

// lastActivity returns the virtual time of the last thread activity; the
// engine's `now` may have been rounded up to an epoch boundary past it.
func (e *Engine) lastActivity() vclock.Time {
	if e.finishT > 0 {
		return e.finishT
	}
	return e.now
}

func (e *Engine) newThread(name string, fn app.ThreadFunc) *coro.Thread {
	id := e.nextTID
	e.nextTID++
	var th *coro.Thread
	th = coro.NewThread(id, fmt.Sprintf("%s#%d", name, id), func() {
		fn(&env{e: e, th: th})
	})
	th.Data = &tstate{th: th, wakeAt: vclock.Never, inActive: true}
	e.threads = append(e.threads, th)
	// New threads have the highest ID so far, so appending keeps the
	// active list in creation order.
	e.active = append(e.active, th)
	e.live++
	return th
}

// setWake is the single mutation point for a thread's wake time; it
// maintains the cached minimum so minWake rarely rescans.
//
//simlint:hotpath runs on every thread yield and wake
func (e *Engine) setWake(s *tstate, t vclock.Time) {
	old := s.wakeAt
	if t == old {
		return
	}
	s.wakeAt = t
	if !e.wakeValid {
		return
	}
	if t < e.wakeMin {
		e.wakeMin = t
		return
	}
	if old == e.wakeMin {
		// The thread holding the minimum moved later; the new minimum is
		// unknown until the next minWake.
		e.wakeValid = false
	}
}

// markInactive records that a thread on the active list parked or
// exited; the entry is swept lazily by maybeCompact.
func (e *Engine) markInactive() {
	e.inactiveN++
	e.maybeCompact()
}

// ensureActive puts an unparked thread back on the active list (or just
// rebalances the stale count if its entry was never swept).
func (e *Engine) ensureActive(s *tstate) {
	if s.inActive {
		if e.inactiveN > 0 {
			e.inactiveN--
		}
		return
	}
	i := sort.Search(len(e.active), func(j int) bool { return e.active[j].ID > s.th.ID })
	e.active = append(e.active, nil)
	copy(e.active[i+1:], e.active[i:])
	e.active[i] = s.th
	s.inActive = true
}

// maybeCompact sweeps stale entries once they outnumber live ones.
func (e *Engine) maybeCompact() {
	if e.inactiveN < 32 || e.inactiveN*2 < len(e.active) {
		return
	}
	kept := e.active[:0]
	for _, th := range e.active {
		s := st(th)
		if s.exited || s.parked {
			s.inActive = false
			continue
		}
		kept = append(kept, th)
	}
	e.active = kept
	e.inactiveN = 0
}

// epochEnd returns the end of the epoch starting at e.now, honoring
// SlipStream when every runnable thread is inside a SlipStream region.
func (e *Engine) epochLen(selected []*coro.Thread) vclock.Duration {
	if len(selected) == 0 {
		return e.cfg.Epoch
	}
	for _, th := range selected {
		if !st(th).slip {
			return e.cfg.Epoch
		}
	}
	return e.cfg.SlipEpoch
}

// roundUp returns the first epoch boundary at or after t.
func (e *Engine) roundUp(t vclock.Time) vclock.Time {
	ep := vclock.Time(e.cfg.Epoch)
	return (t + ep - 1) / ep * ep
}
