package nex

import (
	"testing"

	"nexsim/internal/app"
	"nexsim/internal/isa"
	"nexsim/internal/vclock"
)

// benchProgram builds a many-thread program exercising the epoch loop's
// hot paths: per-epoch scheduling over a large thread set, sleeps
// (minWake churn), and park/unpark pairs (active-list churn).
func benchProgram(threads, iters int) app.Program {
	return app.Program{
		Name: "epoch-loop-bench",
		Main: func(e app.Env) {
			var wg app.WaitGroup
			var mu app.Mutex
			wg.Add(threads)
			for t := 0; t < threads; t++ {
				e.Spawn("worker", func(e app.Env) {
					for i := 0; i < iters; i++ {
						e.Compute(isa.Work{
							Instr:     3000,
							IPCNative: 1,
							NativeDur: 800 * vclock.Nanosecond,
						})
						if i%8 == 0 {
							mu.Lock(e)
							e.ComputeFor(50 * vclock.Nanosecond)
							mu.Unlock(e)
						}
						if i%16 == 0 {
							e.Sleep(2 * vclock.Microsecond)
						}
					}
					wg.Done(e)
				})
			}
			wg.Wait(e)
		},
	}
}

// benchEpochLoop runs one engine to completion per iteration.
func benchEpochLoop(b *testing.B, threads int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng := New(Config{VirtualCores: 16, Seed: 42})
		r := eng.Run(benchProgram(threads, 64))
		if r.SimTime <= 0 {
			b.Fatal("no simulated time")
		}
	}
}

func BenchmarkEpochLoop_8Threads(b *testing.B)   { benchEpochLoop(b, 8) }
func BenchmarkEpochLoop_64Threads(b *testing.B)  { benchEpochLoop(b, 64) }
func BenchmarkEpochLoop_256Threads(b *testing.B) { benchEpochLoop(b, 256) }

// BenchmarkEpochLoop_MostlyParked measures the scheduler with a large
// population of long-parked threads — the case the active-list sweep and
// cached min-wake target: the per-epoch cost must track the runnable
// set, not the total thread count.
func BenchmarkEpochLoop_MostlyParked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := New(Config{VirtualCores: 16, Seed: 42})
		prog := app.Program{
			Name: "mostly-parked",
			Main: func(e app.Env) {
				const parked = 512
				var wg app.WaitGroup
				wg.Add(parked)
				var q app.Queue
				for t := 0; t < parked; t++ {
					e.Spawn("sleeper", func(e app.Env) {
						// Block until the main thread finishes its compute.
						if _, ok := q.Pop(e); !ok {
							// closed: nothing to do
						}
						wg.Done(e)
					})
				}
				// One busy thread drives thousands of epochs while the
				// 512 sleepers sit parked.
				for i := 0; i < 2000; i++ {
					e.ComputeFor(900 * vclock.Nanosecond)
				}
				q.Close(e)
				wg.Wait(e)
			},
		}
		if r := eng.Run(prog); r.SimTime <= 0 {
			b.Fatal("no simulated time")
		}
	}
}
