package nex

import (
	"bytes"
	"testing"

	"nexsim/internal/app"
	"nexsim/internal/checkpoint"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// snapProg is a prefix-rich device workload: threads compute, contend on
// a mutex, write a task buffer, and sleep before the main thread rings
// the device doorbell and polls it — exercising spawns, parking, IRQ-free
// wake paths, light/heavy task traps, and warps ahead of the halt point.
func snapProg(taskbuf mem.Addr, rounds int) app.Program {
	return app.Program{Main: func(env app.Env) {
		var mu app.Mutex
		var wg app.WaitGroup
		wg.Add(3)
		for i := 0; i < 3; i++ {
			env.Spawn("w", func(we app.Env) {
				for j := 0; j < rounds; j++ {
					mu.Lock(we)
					we.ComputeFor(700 * vclock.Nanosecond)
					mu.Unlock(we)
				}
				wg.Done(we)
			})
		}
		env.SlipStream(func() {
			env.ComputeFor(30 * us)
		})
		var buf [8]byte
		buf[0] = 0xa5
		for i := 0; i < 8; i++ {
			env.TaskWrite(taskbuf+mem.Addr(i*8), buf[:])
		}
		env.Sleep(3 * us)
		wg.Wait(env)
		env.MMIOWrite(0x8000_0000, 1)
		for env.MMIORead(0x8000_0000) == 0 {
			env.Sleep(2 * us)
		}
		env.ComputeFor(5 * us)
	}}
}

// snapRig builds an engine + device + task buffer for snapshot tests.
func snapRig(cfg Config) (*Engine, *trapDevice, mem.Addr) {
	e := New(cfg)
	dev := &trapDevice{busy: 20 * us}
	attach(e, dev)
	region := e.Mem().Alloc("taskbuf", 4096)
	return e, dev, region.Base
}

func snapCfg() Config {
	return Config{Epoch: 1 * us, Seed: 42, VirtualCores: 2}
}

func TestRunPrefixHaltsBeforeDeviceTouch(t *testing.T) {
	e, dev, taskbuf := snapRig(snapCfg())
	_, completed := e.RunPrefix(snapProg(taskbuf, 10))
	if completed {
		t.Fatal("prefix ran to completion despite device interaction")
	}
	if !e.Halted() {
		t.Fatal("engine not halted")
	}
	if dev.reads != 0 || dev.pending {
		t.Fatal("device was touched before the halt")
	}
}

func TestRunPrefixCompletesWithoutDevices(t *testing.T) {
	e := New(snapCfg())
	res, completed := e.RunPrefix(app.Program{Main: func(env app.Env) {
		env.ComputeFor(10 * us)
	}})
	if !completed {
		t.Fatal("device-free program did not complete")
	}
	if res.SimTime < 10*us {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
}

// TestPrefixResumeMatchesStraightRun is the fork-from-checkpoint
// differential: RunPrefix+ResumeRun on one engine must equal Run on an
// identically configured engine, field for field.
func TestPrefixResumeMatchesStraightRun(t *testing.T) {
	for _, mode := range []SyncMode{Lazy, Eager, Hybrid} {
		cfg := snapCfg()
		cfg.Mode = mode

		eA, devA, bufA := snapRig(cfg)
		want := eA.Run(snapProg(bufA, 10))

		eB, devB, bufB := snapRig(cfg)
		_, completed := eB.RunPrefix(snapProg(bufB, 10))
		if completed {
			t.Fatalf("mode %v: prefix completed", mode)
		}
		got := eB.ResumeRun()

		if got != want {
			t.Errorf("mode %v: resumed run diverged:\n got  %+v\n want %+v", mode, got, want)
		}
		if devA.reads != devB.reads {
			t.Errorf("mode %v: device reads %d != %d", mode, devB.reads, devA.reads)
		}
	}
}

// TestRestoreMatchesStraightRun is the cross-engine differential: a
// snapshot restored into a fresh engine must continue byte-identically.
func TestRestoreMatchesStraightRun(t *testing.T) {
	for _, mode := range []SyncMode{Lazy, Eager, Hybrid} {
		cfg := snapCfg()
		cfg.Mode = mode

		eA, devA, bufA := snapRig(cfg)
		want := eA.Run(snapProg(bufA, 10))

		eB, _, bufB := snapRig(cfg)
		if _, completed := eB.RunPrefix(snapProg(bufB, 10)); completed {
			t.Fatalf("mode %v: prefix completed", mode)
		}
		enc := checkpoint.NewEncoder()
		if err := eB.SnapshotTo(enc); err != nil {
			t.Fatalf("mode %v: snapshot: %v", mode, err)
		}

		eC, devC, bufC := snapRig(cfg)
		dec, err := checkpoint.NewDecoder(enc.Bytes())
		if err != nil {
			t.Fatalf("mode %v: decode: %v", mode, err)
		}
		if err := eC.Restore(dec, snapProg(bufC, 10)); err != nil {
			t.Fatalf("mode %v: restore: %v", mode, err)
		}
		if !dec.Done() {
			t.Fatalf("mode %v: snapshot bytes left over (err=%v)", mode, dec.Err())
		}
		got := eC.ResumeRun()

		if got != want {
			t.Errorf("mode %v: restored run diverged:\n got  %+v\n want %+v", mode, got, want)
		}
		if devA.reads != devC.reads {
			t.Errorf("mode %v: device reads %d != %d", mode, devC.reads, devA.reads)
		}
		// The restored memory image must match the straight run's.
		var a, c [64]byte
		eA.Mem().ReadAt(bufA, a[:])
		eC.Mem().ReadAt(bufC, c[:])
		if !bytes.Equal(a[:], c[:]) {
			t.Errorf("mode %v: task buffer contents diverged", mode)
		}
	}
}

// TestSnapshotContentAddressed: two engines running the same prefix must
// produce byte-identical blobs (the content hash is the sharing key).
func TestSnapshotContentAddressed(t *testing.T) {
	blob := func() []byte {
		e, _, buf := snapRig(snapCfg())
		if _, completed := e.RunPrefix(snapProg(buf, 10)); completed {
			t.Fatal("prefix completed")
		}
		enc := checkpoint.NewEncoder()
		if err := e.SnapshotTo(enc); err != nil {
			t.Fatal(err)
		}
		return enc.Bytes()
	}
	a, b := blob(), blob()
	if !bytes.Equal(a, b) {
		t.Fatal("identical prefixes produced different blobs")
	}
	if checkpoint.Hash(a) != checkpoint.Hash(b) {
		t.Fatal("hash mismatch")
	}
}

func TestSnapshotRequiresHalt(t *testing.T) {
	e := New(snapCfg())
	e.Run(app.Program{Main: func(env app.Env) { env.ComputeFor(1 * us) }})
	if err := e.SnapshotTo(checkpoint.NewEncoder()); err == nil {
		t.Fatal("snapshot of completed engine succeeded")
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	e, _, buf := snapRig(snapCfg())
	if _, completed := e.RunPrefix(snapProg(buf, 10)); completed {
		t.Fatal("prefix completed")
	}
	enc := checkpoint.NewEncoder()
	if err := e.SnapshotTo(enc); err != nil {
		t.Fatal(err)
	}

	cfg := snapCfg()
	cfg.Epoch = 2 * us // host-side parameter differs: not the same prefix
	e2, _, buf2 := snapRig(cfg)
	dec, err := checkpoint.NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(dec, snapProg(buf2, 10)); err == nil {
		t.Fatal("restore accepted mismatched config")
	}
}

func TestRestoreRejectsDivergentProgram(t *testing.T) {
	e, _, buf := snapRig(snapCfg())
	if _, completed := e.RunPrefix(snapProg(buf, 10)); completed {
		t.Fatal("prefix completed")
	}
	enc := checkpoint.NewEncoder()
	if err := e.SnapshotTo(enc); err != nil {
		t.Fatal(err)
	}

	e2, _, buf2 := snapRig(snapCfg())
	dec, err := checkpoint.NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// A different round count changes the yield sequence; replay must
	// detect the divergence rather than silently corrupt state.
	if err := e2.Restore(dec, snapProg(buf2, 25)); err == nil {
		t.Fatal("restore accepted a divergent program")
	}
}

func TestRestoreRejectsTruncatedBlob(t *testing.T) {
	e, _, buf := snapRig(snapCfg())
	if _, completed := e.RunPrefix(snapProg(buf, 10)); completed {
		t.Fatal("prefix completed")
	}
	enc := checkpoint.NewEncoder()
	if err := e.SnapshotTo(enc); err != nil {
		t.Fatal(err)
	}
	blob := enc.Bytes()

	e2, _, buf2 := snapRig(snapCfg())
	dec, err := checkpoint.NewDecoder(blob[:len(blob)-7])
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(dec, snapProg(buf2, 10)); err == nil {
		t.Fatal("restore accepted a truncated blob")
	}
}

// TestPrefixRecordingDoesNotPerturbStraightRuns: a run with recording
// that never halts (no devices) must produce the seed-identical result.
func TestPrefixRecordingDoesNotPerturbStraightRuns(t *testing.T) {
	prog := func() app.Program {
		return app.Program{Main: func(env app.Env) {
			var wg app.WaitGroup
			wg.Add(2)
			for i := 0; i < 2; i++ {
				env.Spawn("w", func(we app.Env) {
					we.ComputeFor(20 * us)
					wg.Done(we)
				})
			}
			wg.Wait(env)
		}}
	}
	eA := New(snapCfg())
	want := eA.Run(prog())
	eB := New(snapCfg())
	got, completed := eB.RunPrefix(prog())
	if !completed {
		t.Fatal("device-free prefix halted")
	}
	if got != want {
		t.Fatalf("RunPrefix-completed result diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestTickModeHalt: in tick mode the first synchronization point is the
// halt boundary (task-buffer writes stay light and prefix-safe).
func TestTickModeHalt(t *testing.T) {
	cfg := snapCfg()
	cfg.TickMode = true

	mk := func(e *Engine, taskbuf mem.Addr) app.Program {
		return app.Program{Main: func(env app.Env) {
			var buf [8]byte
			for i := 0; i < 16; i++ {
				env.TaskWrite(taskbuf+mem.Addr(i*8), buf[:])
			}
			env.Tick()
			env.ComputeFor(4 * us)
		}}
	}

	eA, _, bufA := snapRig(cfg)
	want := eA.Run(mk(eA, bufA))

	eB, _, bufB := snapRig(cfg)
	if _, completed := eB.RunPrefix(mk(eB, bufB)); completed {
		t.Fatal("tick-mode prefix completed without halting on the tick")
	}
	enc := checkpoint.NewEncoder()
	if err := eB.SnapshotTo(enc); err != nil {
		t.Fatal(err)
	}

	eC, _, bufC := snapRig(cfg)
	dec, err := checkpoint.NewDecoder(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := eC.Restore(dec, mk(eC, bufC)); err != nil {
		t.Fatal(err)
	}
	if got := eC.ResumeRun(); got != want {
		t.Fatalf("tick-mode restore diverged:\n got  %+v\n want %+v", got, want)
	}
}
