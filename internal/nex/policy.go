package nex

import (
	"sort"

	"nexsim/internal/coro"
	"nexsim/internal/vclock"
)

// FairPolicy is the default complementary scheduling policy of §A.1: a
// simplified CFS that tracks per-task vruntime and runs the
// least-serviced threads each epoch.
//
// It deliberately simplifies CFS the way the paper describes — and
// therefore diverges from the reference engine's CFS in the same ways:
//
//   - a task resuming from a non-runnable state has its vruntime reset to
//     a fixed baseline (zero) rather than aligned with the current
//     minimum, and
//   - the run length is always one epoch (the minimum granularity),
//     rather than derived from the number of runnable threads.
//
// These differences are what make barrier-heavy workloads (SP, LU)
// diverge from native Linux in §6.6/§A.1.
type FairPolicy struct {
	vr       map[int]vclock.Duration // thread id -> vruntime
	lastSeen map[int]int64           // thread id -> last epoch observed runnable
	epoch    vclock.Duration
}

// NewFairPolicy returns the default policy.
func NewFairPolicy() *FairPolicy {
	return &FairPolicy{
		vr:       make(map[int]vclock.Duration),
		lastSeen: make(map[int]int64),
	}
}

// Select implements Policy.
func (p *FairPolicy) Select(epoch int64, runnable []*coro.Thread, vcores int) []*coro.Thread {
	// A thread that was not runnable in the previous epoch is treated as
	// freshly woken: reset to the fixed baseline (over-prioritizing it,
	// unlike CFS's min-alignment).
	for _, th := range runnable {
		if last, ok := p.lastSeen[th.ID]; !ok || last < epoch-1 {
			p.vr[th.ID] = 0
		}
		p.lastSeen[th.ID] = epoch
	}
	picked := make([]*coro.Thread, len(runnable))
	copy(picked, runnable)
	sort.SliceStable(picked, func(i, j int) bool {
		vi, vj := p.vr[picked[i].ID], p.vr[picked[j].ID]
		if vi != vj {
			return vi < vj
		}
		return picked[i].ID < picked[j].ID
	})
	if len(picked) > vcores {
		picked = picked[:vcores]
	}
	// Charge one epoch of service to the selected threads. The engine
	// tells us the epoch duration via SetEpoch; fall back to a relative
	// unit otherwise.
	e := p.epoch
	if e == 0 {
		e = 1
	}
	for _, th := range picked {
		p.vr[th.ID] += e
	}
	return picked
}

// SetEpoch informs the policy of the engine's epoch duration.
func (p *FairPolicy) SetEpoch(e vclock.Duration) { p.epoch = e }
