package nex

import (
	"testing"

	"nexsim/internal/coro"
	"nexsim/internal/vclock"
)

func mkThreads(n int) []*coro.Thread {
	out := make([]*coro.Thread, n)
	for i := range out {
		out[i] = coro.NewThread(i, "t", func() {})
	}
	return out
}

func TestFairPolicySelectsLowestVruntime(t *testing.T) {
	p := NewFairPolicy()
	p.SetEpoch(vclock.Microsecond)
	ths := mkThreads(4)

	// Epoch 0: everyone fresh; the first two (by id) run.
	sel := p.Select(0, ths, 2)
	if len(sel) != 2 || sel[0].ID != 0 || sel[1].ID != 1 {
		t.Fatalf("epoch 0 selection: %v,%v", sel[0].ID, sel[1].ID)
	}
	// Epoch 1: 0 and 1 have accumulated vruntime; 2 and 3 must run.
	sel = p.Select(1, ths, 2)
	if sel[0].ID != 2 || sel[1].ID != 3 {
		t.Fatalf("epoch 1 selection: %v,%v", sel[0].ID, sel[1].ID)
	}
	// Epoch 2: all equal again; back to 0 and 1.
	sel = p.Select(2, ths, 2)
	if sel[0].ID != 0 || sel[1].ID != 1 {
		t.Fatalf("epoch 2 selection: %v,%v", sel[0].ID, sel[1].ID)
	}
}

func TestFairPolicyWakeResetsToBaseline(t *testing.T) {
	// A thread absent for several epochs returns with vruntime reset to
	// the fixed baseline — the §A.1 simplification that diverges from
	// CFS (which aligns to the current minimum).
	p := NewFairPolicy()
	p.SetEpoch(vclock.Microsecond)
	ths := mkThreads(3)

	// Run threads 0 and 1 for many epochs while 2 is "asleep".
	for e := int64(0); e < 10; e++ {
		p.Select(e, ths[:2], 2)
	}
	// Thread 2 wakes: baseline reset means it monopolizes the core over
	// the long-running threads.
	sel := p.Select(10, ths, 1)
	if sel[0].ID != 2 {
		t.Fatalf("woken thread not prioritized: got %d", sel[0].ID)
	}
}

func TestFairPolicyAllFitNoTruncation(t *testing.T) {
	p := NewFairPolicy()
	ths := mkThreads(3)
	if got := len(p.Select(0, ths, 8)); got != 3 {
		t.Fatalf("selected %d of 3", got)
	}
}
