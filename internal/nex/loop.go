package nex

import (
	"nexsim/internal/app"
	"nexsim/internal/coro"
	"nexsim/internal/faults"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/parsim"
	"nexsim/internal/trace"
	"nexsim/internal/vclock"
)

// loop drives the simulation epoch by epoch until all threads exit or —
// when a checkpoint halt is armed — until the prefix boundary freezes
// the engine mid-epoch (e.frame set; see snapshot.go).
func (e *Engine) loop() {
	for e.live > 0 {
		if e.overBudget() {
			// Structured abort: within one epoch of the bound (the epoch
			// check is exact), leaving threads parked for Reap.
			e.exceeded = true
			return
		}
		minWake := e.minWake()

		if minWake == vclock.Never {
			// Everyone is parked; progress can only come from an
			// undelivered interrupt or future device activity. (Device
			// activity before a thread wake needs no handling in the
			// normal path: hybrid/eager deliver it via the periodic
			// synchronization below, and lazy defers it by definition.)
			if len(e.pending) > 0 {
				e.deliverIRQs(e.roundUp(e.now))
				continue
			}
			devNext, okD := e.minDeviceNext()
			if !okD {
				panic("nex: deadlock — live threads, no wakes, idle devices")
			}
			e.advanceDevices(devNext)
			e.deliverIRQs(e.roundUp(devNext))
			continue
		}

		start := e.now
		if minWake > start {
			// Idle gap: no thread can run before minWake. Jump there
			// without charging per-epoch cost (the real NEX cores would
			// be parked in the scheduler's idle path).
			if minWake.Sub(start) >= e.cfg.Epoch {
				e.Stats.IdleJumps++
			}
			start = minWake
			// Hybrid synchronization still happens across the gap; a
			// single catch-up at the gap's end is equivalent for device
			// state and cheaper, but interrupts must be delivered at
			// their interval boundaries inside the gap.
			if e.cfg.Mode == Hybrid {
				for e.nextSync < start {
					e.advanceDevices(e.nextSync)
					e.Stats.Syncs++
					e.deliverIRQs(e.nextSync)
					e.nextSync += vclock.Time(e.cfg.SyncInterval)
				}
			}
		}
		e.now = start

		// One epoch of EBS execution.
		runnable := e.runnableAt(start)
		if len(runnable) == 0 {
			// A wake exists at minWake==start but the thread got
			// re-parked by IRQ delivery ordering; retry loop.
			continue
		}
		selected := runnable
		if len(runnable) > e.cfg.VirtualCores {
			selected = e.cfg.Policy.Select(e.epochIdx, runnable, e.cfg.VirtualCores)
			if len(selected) > e.cfg.VirtualCores {
				selected = selected[:e.cfg.VirtualCores]
			}
		}
		end := start.Add(e.epochLen(selected))

		for i, th := range selected {
			if e.runThreadEpoch(th, start, end) {
				// Prefix halt: the request e.frame.req was yielded but not
				// processed. Freeze the slot-loop position; ResumeRun picks
				// the epoch back up from here (possibly in another engine,
				// after Restore). selected aliases scratch, so copy it.
				e.frame.selected = append([]*coro.Thread(nil), selected...)
				e.frame.idx = i
				e.frame.start = start
				e.frame.end = end
				return
			}
			if e.live == 0 {
				break
			}
		}

		e.endEpoch(selected, start, end)
	}
}

// endEpoch applies SlipStream truncation, accounts the epoch's
// statistics, and performs the mode's epoch-boundary synchronization
// (§3.1).
func (e *Engine) endEpoch(selected []*coro.Thread, start, end vclock.Time) {
	if e.truncate {
		// A thread left a SlipStream region: shrink the epoch to the
		// furthest point actually executed and reschedule immediately.
		e.truncate = false
		newEnd := start
		for _, th := range selected {
			if c := st(th).cursor; c > newEnd {
				newEnd = c
			}
		}
		if newEnd < end {
			for _, th := range e.active {
				s := st(th)
				if !s.exited && !s.parked && s.wakeAt == end {
					e.setWake(s, newEnd)
				}
			}
			end = newEnd
		}
	}

	e.Stats.Epochs++
	e.Stats.ThreadEpochs += int64(len(selected))
	e.Stats.Rounds += int64((len(selected) + e.cfg.PhysicalCores - 1) / e.cfg.PhysicalCores)
	e.epochIdx++
	e.now = end

	// Epoch-boundary synchronization per mode (§3.1).
	switch e.cfg.Mode {
	case Eager:
		e.advanceDevices(end)
		e.Stats.Syncs++
		e.deliverIRQs(end)
	case Hybrid:
		if end >= e.nextSync {
			e.advanceDevices(end)
			e.Stats.Syncs++
			e.deliverIRQs(end)
			for e.nextSync <= end {
				e.nextSync += vclock.Time(e.cfg.SyncInterval)
			}
		}
	case Lazy:
		// Interrupts discovered during trap-driven catch-ups are
		// delivered at the epoch boundary; lazy mode never advances
		// devices on its own.
		if len(e.pending) > 0 {
			e.deliverIRQs(end)
		}
	}
}

// minWake returns the earliest wake time among live threads. The value
// is cached across epochs (setWake maintains it), so the scan over the
// active list only happens after the minimum-holding thread moved later.
//
//simlint:hotpath queried twice per epoch; the cache keeps it O(1)
func (e *Engine) minWake() vclock.Time {
	if !e.wakeValid {
		min := vclock.Never
		for _, th := range e.active {
			s := st(th)
			if s.exited || s.parked {
				continue
			}
			if s.wakeAt < min {
				min = s.wakeAt
			}
		}
		e.wakeMin = min
		e.wakeValid = true
	}
	return e.wakeMin
}

// runnableAt lists threads eligible to run in the epoch starting at t,
// in thread-creation order (deterministic). It scans only the active
// list (parked/exited threads are skipped wholesale) and reuses a
// scratch slice; callers must not retain the result past the next call.
func (e *Engine) runnableAt(t vclock.Time) []*coro.Thread {
	out := e.runnableBuf[:0]
	for _, th := range e.active {
		s := st(th)
		if !s.exited && !s.parked && s.wakeAt <= t {
			out = append(out, th)
		}
	}
	e.runnableBuf = out
	return out
}

// runThreadEpoch executes one thread's slot within [start, end). It
// reports whether a prefix halt fired (the thread yielded a device-bound
// request while haltArmed): the request is stashed un-processed in
// e.frame and the slot is left incomplete.
func (e *Engine) runThreadEpoch(th *coro.Thread, start, end vclock.Time) bool {
	s := st(th)
	cursor := start
	segStart := cursor
	for cursor < end {
		if s.deficit > 0 {
			step := s.deficit
			if avail := end.Sub(cursor); step > avail {
				step = avail
			}
			s.deficit -= step
			cursor = cursor.Add(step)
			s.vruntime += step
			if s.deficit > 0 {
				// Epoch exhausted mid-segment; continue next epoch.
				e.traceSpan(th.Name, trace.Compute, segStart, cursor)
				e.setWake(s, end)
				s.cursor = cursor
				return false
			}
			continue
		}

		s.cursor = cursor
		r := th.Resume()
		if e.recording {
			e.recordYield(th, r)
		}
		if e.haltArmed && e.deviceTouch(r) {
			e.frame = &haltFrame{req: r}
			return true
		}
		switch r.Op {
		case coro.OpExit:
			s.exited = true
			e.setWake(s, vclock.Never)
			e.markInactive()
			e.live--
			if cursor > e.finishT {
				e.finishT = cursor
			}
			e.traceSpan(th.Name, trace.Compute, segStart, cursor)
			return false

		case coro.OpAdvance:
			s.deficit = e.scaledDuration(s, r.Work)

		case coro.OpInteract:
			if r.Light {
				// Tick-mode task-buffer access: charged in-epoch, no trap.
				cost := r.Interact(cursor)
				cursor = cursor.Add(cost)
				s.vruntime += cost
				continue
			}
			e.Stats.Traps++
			cursor = e.dispatchFault(cursor)
			e.advanceDevices(cursor)
			cost := r.Interact(cursor)
			e.traceSpan(th.Name, trace.MMIO, cursor, cursor.Add(cost))
			// The trapping thread resumes at the epoch boundary (or when
			// the interaction completes, if later) — the paper's
			// mid-epoch trap inaccuracy (§3.2).
			wake := end
			if c := cursor.Add(cost); c > wake {
				wake = c
			}
			e.setWake(s, wake)
			return false

		case coro.OpPark:
			if s.pending {
				s.pending = false
				continue
			}
			s.parked = true
			e.setWake(s, vclock.Never)
			e.markInactive()
			e.traceSpan(th.Name, trace.Compute, segStart, cursor)
			return false

		case coro.OpUnpark:
			t2 := st(r.Target)
			if t2.parked {
				t2.parked = false
				e.setWake(t2, end) // runnable from the next epoch: EBS skew
				e.ensureActive(t2)
			} else {
				t2.pending = true
			}

		case coro.OpSleep:
			e.setWake(s, cursor.Add(r.Dur))
			e.traceSpan(th.Name, trace.Blocked, cursor, s.wakeAt)
			return false

		case coro.OpSpawn:
			body, ok := r.Body.(app.ThreadFunc)
			if !ok {
				panic("nex: spawn body is not an app.ThreadFunc")
			}
			nt := e.newThread(r.Name, body)
			e.setWake(st(nt), end)
			th.Spawned = nt
			if e.recording {
				// Patch the child's ID into the journal entry so replay can
				// check the recreated thread got the same identity.
				e.journal[len(e.journal)-1].aux = nt.ID
			}

		case coro.OpWaitIRQ:
			s.parked = true
			e.setWake(s, vclock.Never)
			e.markInactive()
			e.irqWait[r.Vector] = append(e.irqWait[r.Vector], th)
			return false

		case coro.OpWarp:
			wasSlip := s.slip
			e.handleWarp(s, r)
			if wasSlip && !s.slip {
				// Exiting SlipStream resets the epoch duration and forces
				// an immediate reschedule (§3.4): end this thread's slot
				// and truncate the (large) epoch at its cursor.
				e.setWake(s, cursor)
				s.cursor = cursor
				e.truncate = true
				return false
			}

		case coro.OpTick:
			e.Stats.Traps++
			cursor = e.dispatchFault(cursor)
			e.advanceDevices(cursor)
			wake := end
			if cursor > wake {
				wake = cursor
			}
			e.setWake(s, wake)
			return false
		}
	}
	// Used the whole epoch (e.g. finished a segment exactly at the
	// boundary): continue next epoch.
	e.setWake(s, end)
	s.cursor = end
	return false
}

// deviceTouch reports whether a yielded request is the accelerator-bound
// kind a prefix halt stops on: a trapping interaction addressed inside a
// device MMIO window, or a tick synchronization point with devices
// attached. Task-buffer traps (plain memory) don't qualify — they leave
// device state untouched.
func (e *Engine) deviceTouch(r coro.Request) bool {
	switch r.Op {
	case coro.OpTick:
		return len(e.devices) > 0
	case coro.OpInteract:
		return !r.Light && e.binding(mem.Addr(r.Addr)) != nil
	}
	return false
}

// resumePending processes the halt-point request, completing the slot
// that was interrupted by the prefix halt. The request is always a
// device-bound trap (see deviceTouch), so the slot ends right after it —
// exactly the two `return` paths of runThreadEpoch.
func (e *Engine) resumePending(th *coro.Thread, end vclock.Time, r coro.Request) {
	s := st(th)
	cursor := s.cursor
	switch r.Op {
	case coro.OpInteract:
		e.Stats.Traps++
		cursor = e.dispatchFault(cursor)
		e.advanceDevices(cursor)
		cost := r.Interact(cursor)
		e.traceSpan(th.Name, trace.MMIO, cursor, cursor.Add(cost))
		wake := end
		if c := cursor.Add(cost); c > wake {
			wake = c
		}
		e.setWake(s, wake)
	case coro.OpTick:
		e.Stats.Traps++
		cursor = e.dispatchFault(cursor)
		e.advanceDevices(cursor)
		wake := end
		if cursor > wake {
			wake = cursor
		}
		e.setWake(s, wake)
	default:
		panic("nex: resume of a non-device halt request")
	}
}

// dispatchFault crosses the device.dispatch injection site at a
// device-bound trap: a fail fault panics with the *faults.Injected
// (recovered into a transient error at the run boundary, which must
// then Reap the engine); a delay stalls the trap in virtual time.
func (e *Engine) dispatchFault(cursor vclock.Time) vclock.Time {
	inj := e.cfg.Faults.Hit(faults.SiteDeviceDispatch)
	if inj == nil {
		return cursor
	}
	if inj.Op == faults.OpFail {
		panic(inj)
	}
	return cursor.Add(vclock.Duration(inj.Delay))
}

// scaledDuration applies the engine's accuracy model to a compute
// segment: calibration bias, underprovisioning interference, per-epoch
// refill loss, and any active CompressT/JumpT warps.
func (e *Engine) scaledDuration(s *tstate, w isa.Work) vclock.Duration {
	if s.jumpt > 0 {
		return 0
	}
	d := w.NativeDuration(e.cfg.Clock)
	f := e.calBias * (1 + e.interfer)
	// Different code behaves differently under preemption: a small
	// deterministic per-segment component on top of the engine-wide
	// calibration bias (keyed by the segment's identity, not draw
	// order, so runs stay reproducible).
	if w.Seed != 0 && e.cfg.CalSigma > 1e-6 {
		z := w.Seed * 0x9e3779b97f4a7c15
		z ^= z >> 29
		f *= 1 + 0.02*(float64(int64(z%2048))-1024)/1024
	}
	// Refill loss: each epoch delivers slightly less useful native
	// execution than NEX credits, inflating simulated time by e/(e-r).
	if r := float64(e.cfg.RefillLoss); r > 0 {
		ep := float64(e.cfg.Epoch)
		f *= ep / (ep - r)
	}
	d = vclock.Duration(float64(d) * f)
	for _, c := range s.compress {
		d = vclock.Duration(float64(d) / c)
	}
	return d
}

func (e *Engine) handleWarp(s *tstate, r coro.Request) {
	switch r.Warp {
	case coro.CompressT:
		if r.Enter {
			s.compress = append(s.compress, r.Factor)
		} else {
			s.compress = s.compress[:len(s.compress)-1]
		}
	case coro.JumpT:
		if r.Enter {
			s.jumpt++
		} else {
			s.jumpt--
		}
	case coro.SlipStream:
		s.slip = r.Enter
	}
}

// advanceDevices catches the accelerator complex (including the
// dedicated DMA simulator, which our synchronous fabric models in
// lock-step) up to time t. In parallel intra-run mode devices that
// cannot raise interrupts are granted the horizon for their stepper
// lane — the host thread keeps executing epochs while they catch up —
// and are only waited for when the host next observes them (an MMIO
// access joins the lane in env.MMIORead/MMIOWrite). IRQ-capable
// devices keep the serial schedule: their Advance appends to e.pending,
// which the host consumes at delivery boundaries.
func (e *Engine) advanceDevices(t vclock.Time) {
	if t < e.devTime {
		return
	}
	e.devTime = t
	if e.crew == nil {
		for _, b := range e.devices {
			b.Device.Advance(t)
		}
		return
	}
	for i, b := range e.devices {
		if parsim.MayRaiseIRQ(b.Device) {
			e.crew.Join(i)
			b.Device.Advance(t)
		} else {
			e.crew.Grant(i, t)
		}
	}
}

// joinDev quiesces one device's stepper lane before the host observes
// the device. No-op when serial.
func (e *Engine) joinDev(b *DeviceBinding) {
	if e.crew != nil {
		e.crew.Join(b.idx)
	}
}

func (e *Engine) minDeviceNext() (vclock.Time, bool) {
	if e.crew != nil {
		// NextEvent on a mid-advance device is a race; quiesce first.
		e.crew.JoinAll()
	}
	best, any := vclock.Never, false
	for _, b := range e.devices {
		if at, ok := b.Device.NextEvent(); ok && at < best {
			best, any = at, true
		}
	}
	return best, any
}

// deliverIRQs wakes WaitIRQ threads for pending interrupts; they become
// runnable at the boundary time.
func (e *Engine) deliverIRQs(boundary vclock.Time) {
	if len(e.pending) == 0 {
		return
	}
	remaining := e.pending[:0]
	for _, p := range e.pending {
		waiters := e.irqWait[p.vector]
		if len(waiters) == 0 {
			// No waiter yet: keep the interrupt pending (drivers would
			// otherwise lose the wakeup between checking the status
			// register and blocking).
			remaining = append(remaining, p)
			continue
		}
		th := waiters[0]
		e.irqWait[p.vector] = waiters[1:]
		s := st(th)
		s.parked = false
		wake := boundary
		if p.at > wake {
			wake = p.at
		}
		e.setWake(s, wake)
		e.ensureActive(s)
		e.Stats.IRQs++
	}
	e.pending = remaining
}

func (e *Engine) traceSpan(comp string, k trace.Kind, a, b vclock.Time) {
	e.cfg.Trace.Add(trace.Span{Component: comp, Kind: k, Start: a, End: b})
}

type hostShim struct {
	e *Engine
	b *DeviceBinding
}

func (h *hostShim) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if h.b.DMAPort == nil {
		return at
	}
	return h.b.DMAPort.Access(at, kind, addr, size)
}

func (h *hostShim) ZeroCostRead(addr mem.Addr, p []byte)  { h.e.mem.ReadAt(addr, p) }
func (h *hostShim) ZeroCostWrite(addr mem.Addr, p []byte) { h.e.mem.WriteAt(addr, p) }
func (h *hostShim) RaiseIRQ(at vclock.Time, vector int) {
	h.e.pending = append(h.e.pending, pendingIRQ{at: at, vector: vector})
}
