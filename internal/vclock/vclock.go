// Package vclock provides the virtual-time primitives shared by every
// simulator in this repository.
//
// All simulated time is kept in picoseconds in a signed 64-bit integer,
// which covers about 106 days of simulated time — far beyond any
// full-stack simulation we run — while still resolving a single cycle of
// a 2 GHz accelerator (500 ps) or a 3 GHz CPU (~333 ps) exactly.
package vclock

import (
	"fmt"
	"time"
)

// Time is a point on the virtual timeline, in picoseconds since the start
// of the simulation. The zero value is the simulation start.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel time far beyond any reachable simulation point.
const Never Time = 1<<63 - 1

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// SatAdd returns t shifted forward by d, saturating at Never. Horizon
// arithmetic uses it so that an idle neighbor (Never) plus a link
// latency stays Never instead of wrapping negative.
func (t Time) SatAdd(d Duration) Time {
	if t == Never || d >= Duration(Never-t) {
		return Never
	}
	return t + Time(d)
}

// MinTime returns the earlier of two times. With Never as the identity
// it folds conservative horizons: min over neighbors of (time + link
// latency).
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Std converts a virtual duration to a time.Duration, saturating on
// overflow. Sub-nanosecond precision is truncated.
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d) * Nanosecond }

// Seconds reports d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds reports d as a float64 count of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return trimUnit(float64(d)/float64(Nanosecond), "ns")
	case d < Millisecond:
		return trimUnit(float64(d)/float64(Microsecond), "us")
	case d < Second:
		return trimUnit(float64(d)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(d)/float64(Second), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Hz is a clock frequency in cycles per second.
type Hz int64

// Common frequencies used across the evaluation.
const (
	MHz Hz = 1_000_000
	GHz Hz = 1_000_000_000
)

// Period returns the duration of one cycle at frequency f. It panics if f
// is not positive.
func (f Hz) Period() Duration {
	if f <= 0 {
		panic("vclock: non-positive frequency")
	}
	return Duration(int64(Second) / int64(f))
}

// Cycles converts a duration to a whole number of cycles at frequency f,
// rounding down.
func (f Hz) Cycles(d Duration) int64 {
	return int64(d) / int64(f.Period())
}

// CyclesDur returns the duration of n cycles at frequency f.
func (f Hz) CyclesDur(n int64) Duration {
	return Duration(n) * f.Period()
}

func (f Hz) String() string {
	switch {
	case f >= GHz && f%GHz == 0:
		return fmt.Sprintf("%dGHz", f/GHz)
	case f >= MHz && f%MHz == 0:
		return fmt.Sprintf("%dMHz", f/MHz)
	default:
		return fmt.Sprintf("%dHz", int64(f))
	}
}
