package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if got := t1.Sub(t0); got != 5*Microsecond {
		t.Fatalf("Sub = %v, want 5us", got)
	}
	if t1 <= t0 {
		t.Fatalf("Add did not advance time")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 50))
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeriod(t *testing.T) {
	tests := []struct {
		f    Hz
		want Duration
	}{
		{1 * GHz, Nanosecond},
		{2 * GHz, 500 * Picosecond},
		{160 * MHz, 6250 * Picosecond},
		{3 * GHz, 333 * Picosecond},
	}
	for _, tt := range tests {
		if got := tt.f.Period(); got != tt.want {
			t.Errorf("%v.Period() = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestPeriodPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Period(0) did not panic")
		}
	}()
	Hz(0).Period()
}

func TestCyclesRoundTrip(t *testing.T) {
	f := 2 * GHz
	for _, n := range []int64{0, 1, 17, 1_000_000} {
		d := f.CyclesDur(n)
		if got := f.Cycles(d); got != n {
			t.Errorf("Cycles(CyclesDur(%d)) = %d", n, got)
		}
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1ns"},
		{1500 * Nanosecond, "1.5us"},
		{Millisecond, "1ms"},
		{2300 * Millisecond, "2.3s"},
		{-Microsecond, "-1us"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.d), got, tt.want)
		}
	}
}

func TestStdConversion(t *testing.T) {
	if got := (3 * Millisecond).Std(); got != 3*time.Millisecond {
		t.Errorf("Std = %v", got)
	}
	if got := FromStd(2 * time.Microsecond); got != 2*Microsecond {
		t.Errorf("FromStd = %v", got)
	}
}

func TestHzString(t *testing.T) {
	if got := (2 * GHz).String(); got != "2GHz" {
		t.Errorf("got %q", got)
	}
	if got := (160 * MHz).String(); got != "160MHz" {
		t.Errorf("got %q", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := Time(100).SatAdd(50); got != Time(150) {
		t.Errorf("SatAdd = %v", got)
	}
	if got := Never.SatAdd(Nanosecond); got != Never {
		t.Errorf("Never.SatAdd = %v, want Never", got)
	}
	if got := Time(Never - 1).SatAdd(Microsecond); got != Never {
		t.Errorf("near-Never SatAdd = %v, want Never", got)
	}
	if got := Time(0).SatAdd(Duration(Never)); got != Never {
		t.Errorf("SatAdd(Never-width) = %v, want Never", got)
	}
}

func TestMinTime(t *testing.T) {
	if got := MinTime(Time(3), Time(7)); got != Time(3) {
		t.Errorf("MinTime = %v", got)
	}
	if got := MinTime(Never, Time(7)); got != Time(7) {
		t.Errorf("MinTime(Never, 7) = %v", got)
	}
	if got := MinTime(Never, Never); got != Never {
		t.Errorf("MinTime(Never, Never) = %v", got)
	}
}
