package memsys

import (
	"testing"

	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

func TestFixedLatency(t *testing.T) {
	p := Fixed{Latency: 25 * vclock.Nanosecond}
	if got := p.Access(100, mem.Read, 0, 64); got != vclock.Time(100).Add(25*vclock.Nanosecond) {
		t.Fatalf("Access = %v", got)
	}
}

func TestCounter(t *testing.T) {
	c := &Counter{Inner: Fixed{}}
	c.Access(0, mem.Read, 0, 10)
	c.Access(0, mem.Write, 0, 20)
	if c.Reads != 1 || c.Writes != 1 || c.Bytes != 30 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestWindowAdmitsUpToN(t *testing.T) {
	w := NewWindow(2)
	if at := w.Admit(100); at != 100 {
		t.Fatalf("first admit delayed to %v", at)
	}
	w.Reserve(500)
	if at := w.Admit(100); at != 100 {
		t.Fatalf("second admit delayed to %v", at)
	}
	w.Reserve(600)
	// Third must wait for the earliest completion (500).
	if at := w.Admit(100); at != 500 {
		t.Fatalf("third admit = %v, want 500", at)
	}
	w.Reserve(700)
	if n := w.InFlight(550); n != 2 {
		t.Fatalf("InFlight(550) = %d", n)
	}
}

func TestWindowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWindow(0)
}
