// Package memsys defines the request/response interface shared by every
// memory-system latency simulator in this repository (caches, DRAM,
// interconnects). Per the paper (§4), these simulators "expose identical
// request/response interfaces, so they can be hierarchically composed":
// an interconnect stacks on a cache, caches stack on each other, and the
// bottom of every stack is a DRAM or fixed-latency port.
//
// The interface is trace-driven: Access is handed the issue time of a
// request and returns its completion time, updating whatever internal
// state (tag arrays, bank timers, outstanding-request windows) the
// component keeps. This models latency and queueing exactly while keeping
// simulation cost at one call per request rather than one event per
// cycle.
package memsys

import (
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Port is a point where memory requests can be issued.
type Port interface {
	// Access issues a request at time `at` and returns its completion
	// time (>= at). Implementations must tolerate non-monotonic issue
	// times across callers but may assume per-caller monotonicity.
	Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time
}

// Fixed is a Port with a constant latency and unlimited bandwidth; it is
// the simplest memory model and also useful as a test double.
type Fixed struct {
	Latency vclock.Duration
}

// Access implements Port.
func (f Fixed) Access(at vclock.Time, _ mem.AccessKind, _ mem.Addr, _ int) vclock.Time {
	return at.Add(f.Latency)
}

// Counter wraps a Port and counts accesses by kind; engines use it to
// attribute traffic in coarse-grained traces.
type Counter struct {
	Inner  Port
	Reads  int64
	Writes int64
	Bytes  int64
}

// Access implements Port.
func (c *Counter) Access(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	if kind == mem.Read {
		c.Reads++
	} else {
		c.Writes++
	}
	c.Bytes += int64(size)
	return c.Inner.Access(at, kind, addr, size)
}

// Window models a bounded number of outstanding requests: a request
// issued when the window is full waits for the oldest in-flight request
// to complete. The zero value is unusable; use NewWindow.
type Window struct {
	busy []vclock.Time // completion times, ring buffer semantics via index
	next int
}

// NewWindow returns a window permitting n outstanding requests.
func NewWindow(n int) *Window {
	if n <= 0 {
		panic("memsys: window size must be positive")
	}
	return &Window{busy: make([]vclock.Time, n)}
}

// Admit returns the time at which a request issued at `at` can actually
// start, waiting for a slot if all are busy. Reserve must be called with
// the request's completion time afterwards.
func (w *Window) Admit(at vclock.Time) vclock.Time {
	// The slot that frees earliest is the one we will reuse (FIFO over a
	// fixed-size ring is sufficient because completion times through any
	// single component are non-decreasing for in-order engines; for the
	// rare out-of-order caller we scan for the minimum).
	min := w.busy[0]
	idx := 0
	for i, t := range w.busy {
		if t < min {
			min, idx = t, i
		}
	}
	w.next = idx
	if min > at {
		return min
	}
	return at
}

// Reserve marks the slot chosen by the last Admit as busy until done.
func (w *Window) Reserve(done vclock.Time) {
	w.busy[w.next] = done
}

// InFlight reports how many requests are outstanding at time at.
func (w *Window) InFlight(at vclock.Time) int {
	n := 0
	for _, t := range w.busy {
		if t > at {
			n++
		}
	}
	return n
}
