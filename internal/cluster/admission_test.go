package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestAdmission(clk *fakeClock, rate, burst float64, weights map[string]float64) *Admission {
	return NewAdmission(AdmissionConfig{
		RatePerSec: rate, BurstSec: burst, Weights: weights, Now: clk.now,
	})
}

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	if a := NewAdmission(AdmissionConfig{}); a != nil {
		t.Fatal("zero rate should build a nil (admit-all) gate")
	}
	var a *Admission
	ok, retry := a.Allow("anyone", 1_000_000)
	if !ok || retry != 0 {
		t.Fatalf("nil gate refused: ok=%v retry=%d", ok, retry)
	}
}

func TestAdmissionBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, 10, 4, nil) // depth 40
	if ok, _ := a.Allow("t", 40); !ok {
		t.Fatal("full burst refused")
	}
	ok, retry := a.Allow("t", 1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry < 1 {
		t.Fatalf("retry = %d, want >= 1", retry)
	}
	// Same state, same quote: the Retry-After is deterministic.
	if _, retry2 := a.Allow("t", 1); retry2 != retry {
		t.Fatalf("retry quote changed without time passing: %d vs %d", retry, retry2)
	}
	clk.advance(time.Second) // +10 tokens
	if ok, _ := a.Allow("t", 10); !ok {
		t.Fatal("refilled tokens refused")
	}
	if ok, _ := a.Allow("t", 1); ok {
		t.Fatal("bucket admitted beyond its refill")
	}
}

func TestAdmissionWeightedFairShares(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, 10, 4, map[string]float64{"gold": 3})
	// gold bursts 3x the default share.
	if ok, _ := a.Allow("gold", 120); !ok {
		t.Fatal("gold tenant refused its weighted burst")
	}
	if ok, _ := a.Allow("bronze", 120); ok {
		t.Fatal("weight-1 tenant admitted a weight-3 burst")
	}
	if ok, _ := a.Allow("bronze", 40); !ok {
		t.Fatal("weight-1 tenant refused its own burst")
	}
	// Tenants are isolated: gold's empty bucket does not affect bronze's
	// refill, and vice versa.
	clk.advance(time.Second)
	if ok, _ := a.Allow("gold", 30); !ok {
		t.Fatal("gold refill refused")
	}
	if ok, _ := a.Allow("bronze", 10); !ok {
		t.Fatal("bronze refill refused")
	}
}

func TestAdmissionOversizedBatchQuotesFullBucket(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, 10, 1, nil) // depth 10
	ok, retry := a.Allow("t", 100)         // can never pass whole
	if ok {
		t.Fatal("batch larger than the bucket admitted")
	}
	// Quote is time-to-full (1s from empty at 10/s), not time to 100
	// tokens that will never accumulate.
	if retry != 1 {
		t.Fatalf("retry = %d, want 1 (time to a full bucket)", retry)
	}
	clk.advance(time.Second)
	if ok, _ := a.Allow("t", 10); !ok {
		t.Fatal("full-bucket batch refused after the quoted wait")
	}
}

func TestAdmissionCounters(t *testing.T) {
	clk := newFakeClock()
	a := newTestAdmission(clk, 1, 1, nil) // depth 1
	a.Allow("", 1)                        // anonymous
	a.Allow("", 1)                        // rejected
	admitted, rejected := a.counters()
	if admitted[DefaultTenant] != 1 || rejected[DefaultTenant] != 1 {
		t.Fatalf("counters = %v / %v, want 1 admitted and 1 rejected for %q",
			admitted, rejected, DefaultTenant)
	}
}
