package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The replicated hot-set: consistent hashing gives each content address
// one home shard, which is right for the long tail but wrong for the
// head — a sweep every tenant re-runs should hit cache on *any* shard.
// The router (which sees all traffic, so hotness is its cheapest
// signal) counts submissions per content address with periodic decay,
// and every HotSetInterval pushes the top-K finished results to every
// live shard's POST /cluster/hotset endpoint. Shards verify each pushed
// entry against its content address before promoting it into their LRU
// (simserve.Server.Promote), so a buggy or malicious pusher can never
// poison a cache: determinism makes the result self-certifying.

// hotTracker counts per-address submission frequency with exponential
// decay (halved every decay round, sub-unity counts dropped), so the
// hot set follows the working set rather than all-time popularity.
type hotTracker struct {
	mu     sync.Mutex
	counts map[string]float64
}

func newHotTracker() *hotTracker {
	return &hotTracker{counts: map[string]float64{}}
}

// Note records one submission of the given content address.
func (h *hotTracker) Note(id string) {
	h.mu.Lock()
	h.counts[id]++
	h.mu.Unlock()
}

// TopK returns the k hottest addresses, hottest first; count ties break
// by address so the selection is deterministic.
func (h *hotTracker) TopK(k int) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.counts))
	for id := range h.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if h.counts[ids[i]] != h.counts[ids[j]] {
			return h.counts[ids[i]] > h.counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// Decay halves every count and drops the cold tail.
func (h *hotTracker) Decay() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, c := range h.counts {
		c /= 2
		if c < 0.5 {
			delete(h.counts, id)
		} else {
			h.counts[id] = c
		}
	}
}

// HotEntry is one pushed result on the /cluster/hotset wire: the
// canonical JobResult bytes plus the content address and failure flag
// the receiving shard re-verifies.
type HotEntry struct {
	ID     string          `json:"id"`
	Failed bool            `json:"failed"`
	Result json.RawMessage `json:"result"`
}

// hotsetPush is the POST /cluster/hotset body.
type hotsetPush struct {
	Entries []HotEntry `json:"entries"`
}

// hotsetLoop periodically replicates the hot set (stopped by Close).
func (r *Router) hotsetLoop() {
	ticker := time.NewTicker(r.cfg.HotSetInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.PushHotSet()
			r.hot.Decay()
		}
	}
}

// PushHotSet runs one digest exchange: resolve the current top-K
// addresses to finished results (fetched from whichever replica has
// them) and push the batch to every live shard. Addresses still running
// or unknown are skipped this round — they stay hot and are retried on
// the next exchange.
func (r *Router) PushHotSet() {
	ids := r.hot.TopK(r.cfg.HotSetK)
	var entries []HotEntry
	for _, id := range ids {
		if e, ok := r.fetchResult(id); ok {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return
	}
	body, err := json.Marshal(hotsetPush{Entries: entries})
	if err != nil {
		return
	}
	pushed := int64(0)
	for _, shard := range r.ring.Shards() {
		if !r.mem.Live(shard) {
			continue
		}
		resp, err := r.client(shard).Post(
			"http://"+shard+"/cluster/hotset", "application/json", bytes.NewReader(body))
		if err != nil {
			r.mem.ReportFailure(shard)
			continue
		}
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			pushed++
		}
	}
	r.mu.Lock()
	r.m.hotsetRounds++
	r.m.hotsetEntries += int64(len(entries))
	r.m.hotsetPushes += pushed
	r.mu.Unlock()
}

// fetchResult resolves one content address to its finished result by
// polling the address's replicas in preference order. ok is false while
// the job is still running or when no replica knows it.
func (r *Router) fetchResult(id string) (HotEntry, bool) {
	for _, shard := range r.ring.Order(id) {
		if !r.mem.Live(shard) {
			continue
		}
		resp, err := r.client(shard).Get(fmt.Sprintf("http://%s/jobs/%s", shard, id))
		if err != nil {
			r.mem.ReportFailure(shard)
			continue
		}
		var env struct {
			ID     string          `json:"id"`
			Status string          `json:"status"`
			Result json.RawMessage `json:"result"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&env)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			continue
		}
		switch env.Status {
		case "done", "failed":
			if len(env.Result) == 0 {
				continue
			}
			return HotEntry{ID: id, Failed: env.Status == "failed", Result: env.Result}, true
		}
	}
	return HotEntry{}, false
}
