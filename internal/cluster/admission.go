package cluster

import (
	"math"
	"sync"
	"time"
)

// AdmissionConfig parameterizes per-tenant token-bucket admission
// control. It sits above the shards' own 429 backpressure: the shards
// protect their queues from aggregate overload, the router protects
// tenants from each other. One admitted token corresponds to one spec
// (a batch of n specs costs n tokens), so a tenant's share is measured
// in simulation work, not in HTTP requests.
type AdmissionConfig struct {
	// RatePerSec is the steady-state token refill per weight unit
	// (specs/second). <= 0 disables admission control entirely.
	RatePerSec float64
	// BurstSec is the bucket depth in seconds of refill (default 4):
	// a weight-1 tenant can burst RatePerSec×BurstSec specs.
	BurstSec float64
	// Weights maps tenant names to relative shares; unlisted tenants
	// (including the anonymous default) get weight 1. A weight-3 tenant
	// refills and bursts 3× a weight-1 tenant — weighted fair shares
	// rather than a single global ceiling.
	Weights map[string]float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// DefaultTenant is the bucket unlabeled requests (no X-Tenant header)
// share.
const DefaultTenant = "anonymous"

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Admission is the router's tenant gate. A nil *Admission admits
// everything (admission control off).
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket

	// Per-tenant counters (read by metrics.go).
	admitted map[string]int64
	rejected map[string]int64
}

// NewAdmission builds the gate; returns nil (admit-all) when the rate
// is unset.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	if cfg.BurstSec <= 0 {
		cfg.BurstSec = 4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Admission{
		cfg:      cfg,
		buckets:  map[string]*bucket{},
		admitted: map[string]int64{},
		rejected: map[string]int64{},
	}
}

// weight returns a tenant's configured share (default 1).
func (a *Admission) weight(tenant string) float64 {
	if w, ok := a.cfg.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Allow charges n specs against tenant's bucket. On rejection it
// returns the whole seconds (at least 1) until the bucket will have
// refilled enough for the request to pass — a deterministic function of
// the bucket state, suitable for a Retry-After header.
func (a *Admission) Allow(tenant string, n int) (ok bool, retryAfterSec int) {
	if a == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	w := a.weight(tenant)
	rate := a.cfg.RatePerSec * w
	depth := rate * a.cfg.BurstSec
	b := a.buckets[tenant]
	now := a.cfg.Now()
	if b == nil {
		b = &bucket{tokens: depth, last: now}
		a.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > depth {
		b.tokens = depth
	}
	b.last = now
	need := float64(n)
	if need <= b.tokens {
		b.tokens -= need
		a.admitted[tenant] += int64(n)
		return true, 0
	}
	a.rejected[tenant] += int64(n)
	// A request larger than the bucket can ever hold would never pass;
	// quote the time to a full bucket (the best the tenant can do is
	// split the batch).
	deficit := need - b.tokens
	if need > depth {
		deficit = depth - b.tokens
	}
	sec := int(math.Ceil(deficit / rate))
	if sec < 1 {
		sec = 1
	}
	return false, sec
}

// counters snapshots per-tenant admitted/rejected spec counts.
func (a *Admission) counters() (admitted, rejected map[string]int64) {
	if a == nil {
		return nil, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	admitted = make(map[string]int64, len(a.admitted))
	for k, v := range a.admitted {
		admitted[k] = v
	}
	rejected = make(map[string]int64, len(a.rejected))
	for k, v := range a.rejected {
		rejected[k] = v
	}
	return admitted, rejected
}
