package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"nexsim/internal/simserve"
)

// In-process cluster harness: N simserve shards behind real loopback
// listeners plus one router, all in one process. The churn tests and
// the clustersweep bench use it to exercise the full HTTP forwarding
// path — real sockets, real connection pools — without spawning
// processes (that end-to-end variant is scripts/cluster_smoke.sh).

// LocalShard is one in-process simd: a simserve server behind a real
// TCP listener. Stop abruptly severs the listener and every open
// connection — from the router's point of view the shard is dead, even
// though the engine behind it is still draining — and Restart rebinds
// the same address, modelling a crashed-and-recovered node.
type LocalShard struct {
	// Addr is the shard's host:port, stable across Stop/Restart.
	Addr string
	// Server is the engine behind the listener (for counters and Close).
	Server *simserve.Server

	mu      sync.Mutex
	httpSrv *http.Server
}

// serve binds addr (host:port, or :0 for ephemeral) and serves the
// shard's handler until Stop.
func (s *LocalShard) serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Addr = ln.Addr().String()
	srv := &http.Server{Handler: s.Server.Handler()}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Stop kills the shard's HTTP face without warning: the listener and
// every established connection close immediately (http.Server.Close,
// not Shutdown). In-flight simulations keep running inside the engine —
// exactly what a network partition looks like from outside.
func (s *LocalShard) Stop() {
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// Restart rebinds the shard's original address. The engine (and its
// cache) survived the outage, like a daemon whose machine dropped off
// the network and came back.
func (s *LocalShard) Restart() error {
	s.mu.Lock()
	running := s.httpSrv != nil
	s.mu.Unlock()
	if running {
		return nil
	}
	return s.serve(s.Addr)
}

// LocalCluster is the whole assembly: shards, router, and the router's
// own listener.
type LocalCluster struct {
	Shards []*LocalShard
	Router *Router
	// RouterAddr is the router's host:port; clients POST /jobs here.
	RouterAddr string

	routerSrv *http.Server
}

// NewLocal starts n shards (each configured from scfg, with ShardID
// "shard0".."shardN-1") and a router over them. rcfg.Shards is filled
// in from the listeners; set the rest of rcfg as the test or bench
// needs. The router's background loops are started.
func NewLocal(n int, scfg simserve.Config, rcfg RouterConfig) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", n)
	}
	lc := &LocalCluster{}
	for i := 0; i < n; i++ {
		cfg := scfg
		cfg.ShardID = fmt.Sprintf("shard%d", i)
		srv, err := simserve.Open(cfg)
		if err != nil {
			lc.Close()
			return nil, err
		}
		sh := &LocalShard{Server: srv}
		if err := sh.serve("127.0.0.1:0"); err != nil {
			srv.Close()
			lc.Close()
			return nil, err
		}
		lc.Shards = append(lc.Shards, sh)
	}
	addrs := make([]string, len(lc.Shards))
	for i, sh := range lc.Shards {
		addrs[i] = sh.Addr
	}
	rcfg.Shards = addrs
	router, err := NewRouter(rcfg)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.RouterAddr = ln.Addr().String()
	lc.routerSrv = &http.Server{Handler: router.Handler()}
	go func() { _ = lc.routerSrv.Serve(ln) }()
	router.Start()
	return lc, nil
}

// Close tears the assembly down: router loops, router listener, shard
// listeners, then the engines (which drain their queues).
func (lc *LocalCluster) Close() {
	if lc.Router != nil {
		lc.Router.Close()
	}
	if lc.routerSrv != nil {
		_ = lc.routerSrv.Close()
	}
	for _, sh := range lc.Shards {
		sh.Stop()
		sh.Server.Close()
	}
}
