package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Shard liveness states. A shard starts Up (the static -shards list is
// trusted until proven dead), drops to Down after FailThreshold
// consecutive probe/forward failures, and climbs back through Probation
// — it must answer ReadmitOKs consecutive health probes before it
// takes traffic again, so a flapping shard can't oscillate into the
// ring on its first good poll.
const (
	StateUp        = "up"
	StateProbation = "probation"
	StateDown      = "down"
)

// MembershipConfig parameterizes liveness tracking.
type MembershipConfig struct {
	// Shards is the static member list (host:port, no scheme).
	Shards []string
	// ProbeInterval is the /healthz polling period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout caps one probe (default ProbeInterval, at most 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count that marks a shard
	// down (default 3). Forwarding errors count toward it too, so a dead
	// shard is usually marked down by the traffic that discovers it
	// rather than by the next poll.
	FailThreshold int
	// ReadmitOKs is the consecutive-success count a down shard must
	// answer before re-admission (default 2).
	ReadmitOKs int
	// Probe overrides the HTTP /healthz check (tests). It reports
	// whether the shard answered healthy.
	Probe func(shard string) bool
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > 2*time.Second {
			c.ProbeTimeout = 2 * time.Second
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitOKs <= 0 {
		c.ReadmitOKs = 2
	}
	return c
}

// shardHealth is one member's liveness record.
type shardHealth struct {
	state       string
	consecFails int
	consecOKs   int
	quarantined bool // down due to a determinism-probe mismatch
}

// Membership tracks which shards of the static list are currently
// taking traffic, driven by periodic /healthz probes plus failure
// reports from the forwarding path.
type Membership struct {
	cfg    MembershipConfig
	client *http.Client

	mu     sync.Mutex
	health map[string]*shardHealth

	// Lifecycle counters (read by metrics.go).
	marksDown   int64
	readmits    int64
	quarantines int64

	stop chan struct{}
	done chan struct{}
}

// NewMembership builds the tracker with every shard initially up.
// Start launches the probe loop; a tracker that is never started is
// driven purely by ReportFailure/ReportSuccess (tests).
func NewMembership(cfg MembershipConfig) *Membership {
	cfg = cfg.withDefaults()
	m := &Membership{
		cfg:    cfg,
		health: make(map[string]*shardHealth, len(cfg.Shards)),
		client: &http.Client{Timeout: cfg.ProbeTimeout},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		m.health[s] = &shardHealth{state: StateUp}
	}
	return m
}

// Start launches the background probe loop (stopped by Close).
func (m *Membership) Start() {
	go m.probeLoop()
}

// Close stops the probe loop (no-op if Start was never called — the
// loop drains on the stop channel either way).
func (m *Membership) Close() {
	select {
	case <-m.stop:
		return // already closed
	default:
	}
	close(m.stop)
}

func (m *Membership) probeLoop() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.ProbeAll()
		}
	}
}

// ProbeAll runs one health poll over every shard (also callable
// directly by tests and the smoke-script-friendly /probe endpoint).
func (m *Membership) ProbeAll() {
	for _, s := range m.cfg.Shards {
		if m.probe(s) {
			m.ReportSuccess(s)
		} else {
			m.ReportFailure(s)
		}
	}
}

func (m *Membership) probe(shard string) bool {
	if m.cfg.Probe != nil {
		return m.cfg.Probe(shard)
	}
	resp, err := m.client.Get("http://" + shard + "/healthz")
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Live reports whether shard currently takes traffic. Unknown shards
// are dead by definition.
func (m *Membership) Live(shard string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.health[shard]
	return ok && h.state == StateUp
}

// LiveCount reports how many members currently take traffic.
func (m *Membership) LiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.health {
		if h.state == StateUp {
			n++
		}
	}
	return n
}

// ReportSuccess records a healthy interaction (probe answer or
// successful forward). A down shard advances through probation and
// re-admits after ReadmitOKs consecutive successes.
func (m *Membership) ReportSuccess(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.health[shard]
	if !ok {
		return
	}
	h.consecFails = 0
	switch h.state {
	case StateUp:
	case StateDown, StateProbation:
		h.state = StateProbation
		h.consecOKs++
		if h.consecOKs >= m.cfg.ReadmitOKs {
			h.state = StateUp
			h.consecOKs = 0
			h.quarantined = false
			m.readmits++
		}
	}
}

// ReportFailure records a failed interaction. Up shards drop to down
// after FailThreshold consecutive failures; a probation shard drops
// back immediately (its recovery streak was broken).
func (m *Membership) ReportFailure(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.health[shard]
	if !ok {
		return
	}
	h.consecOKs = 0
	switch h.state {
	case StateUp:
		h.consecFails++
		if h.consecFails >= m.cfg.FailThreshold {
			h.state = StateDown
			h.consecFails = 0
			m.marksDown++
		}
	case StateProbation:
		h.state = StateDown
	case StateDown:
	}
}

// Quarantine marks a shard down immediately, bypassing the failure
// threshold. The forwarder calls this when a determinism probe catches
// the shard returning bytes that differ from a replica's — a node whose
// answers can't be trusted must stop answering, whatever its /healthz
// says. Re-admission runs the normal probation path.
func (m *Membership) Quarantine(shard string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.health[shard]
	if !ok {
		return
	}
	if h.state != StateDown {
		m.marksDown++
	}
	h.state = StateDown
	h.consecFails = 0
	h.consecOKs = 0
	h.quarantined = true
	m.quarantines++
}

// State reports a shard's current liveness state (metrics).
func (m *Membership) State(shard string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.health[shard]; ok {
		if h.quarantined && h.state != StateUp {
			return h.state + " (quarantined)"
		}
		return h.state
	}
	return "unknown"
}

// counters snapshots the lifecycle counters for /metrics.
func (m *Membership) counters() (marksDown, readmits, quarantines int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.marksDown, m.readmits, m.quarantines
}

// String summarizes states for logs.
func (m *Membership) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ""
	for _, s := range m.cfg.Shards {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", s, m.health[s].state)
	}
	return out
}
