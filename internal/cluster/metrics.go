package cluster

import (
	"fmt"
	"io"
	"sort"
)

// routerMetrics is the router's operational counter set, rendered as
// plain text on /metrics in the same `name value` / `name{label} value`
// format the shards use. All fields are guarded by the router lock;
// per-shard and per-tenant maps render in sorted key order.
type routerMetrics struct {
	requestsTotal int64 // POST /jobs requests handled
	specsTotal    int64 // specs routed (batch members counted singly)
	badRequests   int64 // malformed bodies / invalid specs
	noShards      int64 // requests refused because no shard was live
	shedded       int64 // requests refused 429 (shard backpressure exhausted)

	forwards      map[string]int64 // sub-batches sent, by shard
	forwardErrors map[string]int64 // transport/5xx failures, by shard
	failovers     int64            // groups re-routed after a dead/refusing shard

	hedgesLaunched  int64 // speculative duplicate sub-batches started
	hedgesWon       int64 // hedges whose answer was served
	hedgesWasted    int64 // duplicate answers that lost the race
	probeCompares   int64 // duplicate answers byte-compared
	probeMismatches int64 // determinism violations across shards

	admissionRejects int64 // requests refused by the tenant gate

	hotsetRounds  int64 // digest exchanges that pushed at least one entry
	hotsetEntries int64 // results included across all exchanges
	hotsetPushes  int64 // successful per-shard pushes
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		forwards:      map[string]int64{},
		forwardErrors: map[string]int64{},
	}
}

// renderMetrics writes the router /metrics page: counters, membership
// states, in-flight gauges, and per-tenant admission totals.
func (r *Router) renderMetrics(w io.Writer) {
	marksDown, readmits, quarantines := r.mem.counters()
	admitted, rejected := r.adm.counters()

	r.mu.Lock()
	m := r.m
	fmt.Fprintf(w, "simrouter_requests_total %d\n", m.requestsTotal)
	fmt.Fprintf(w, "simrouter_specs_total %d\n", m.specsTotal)
	fmt.Fprintf(w, "simrouter_bad_requests %d\n", m.badRequests)
	fmt.Fprintf(w, "simrouter_no_live_shards %d\n", m.noShards)
	fmt.Fprintf(w, "simrouter_shed_429 %d\n", m.shedded)
	fmt.Fprintf(w, "simrouter_failovers %d\n", m.failovers)
	fmt.Fprintf(w, "simrouter_hedges_launched %d\n", m.hedgesLaunched)
	fmt.Fprintf(w, "simrouter_hedges_won %d\n", m.hedgesWon)
	fmt.Fprintf(w, "simrouter_hedges_wasted %d\n", m.hedgesWasted)
	fmt.Fprintf(w, "simrouter_probe_compares %d\n", m.probeCompares)
	fmt.Fprintf(w, "simrouter_probe_mismatches %d\n", m.probeMismatches)
	fmt.Fprintf(w, "simrouter_admission_rejects %d\n", m.admissionRejects)
	fmt.Fprintf(w, "simrouter_hotset_rounds %d\n", m.hotsetRounds)
	fmt.Fprintf(w, "simrouter_hotset_entries %d\n", m.hotsetEntries)
	fmt.Fprintf(w, "simrouter_hotset_pushes %d\n", m.hotsetPushes)
	forwards := make(map[string]int64, len(m.forwards))
	for k, v := range m.forwards {
		forwards[k] = v
	}
	forwardErrors := make(map[string]int64, len(m.forwardErrors))
	for k, v := range m.forwardErrors {
		forwardErrors[k] = v
	}
	inflight := make(map[string]int, len(r.inflight))
	for k, v := range r.inflight {
		inflight[k] = v
	}
	r.mu.Unlock()

	fmt.Fprintf(w, "simrouter_marks_down %d\n", marksDown)
	fmt.Fprintf(w, "simrouter_readmits %d\n", readmits)
	fmt.Fprintf(w, "simrouter_quarantines %d\n", quarantines)

	for _, shard := range r.ring.Shards() {
		up := 0
		if r.mem.Live(shard) {
			up = 1
		}
		fmt.Fprintf(w, "simrouter_shard_up{shard=%q} %d\n", shard, up)
		fmt.Fprintf(w, "simrouter_shard_state{shard=%q,state=%q} 1\n", shard, r.mem.State(shard))
		fmt.Fprintf(w, "simrouter_shard_forwards{shard=%q} %d\n", shard, forwards[shard])
		fmt.Fprintf(w, "simrouter_shard_forward_errors{shard=%q} %d\n", shard, forwardErrors[shard])
		fmt.Fprintf(w, "simrouter_shard_inflight{shard=%q} %d\n", shard, inflight[shard])
	}

	for _, tenant := range sortedTenants(admitted, rejected) {
		fmt.Fprintf(w, "simrouter_tenant_admitted{tenant=%q} %d\n", tenant, admitted[tenant])
		fmt.Fprintf(w, "simrouter_tenant_rejected{tenant=%q} %d\n", tenant, rejected[tenant])
	}
}

// sortedTenants merges the key sets of both counter maps, sorted.
func sortedTenants(a, b map[string]int64) []string {
	seen := map[string]bool{}
	var tenants []string
	for t := range a {
		if !seen[t] {
			seen[t] = true
			tenants = append(tenants, t)
		}
	}
	for t := range b {
		if !seen[t] {
			seen[t] = true
			tenants = append(tenants, t)
		}
	}
	sort.Strings(tenants)
	return tenants
}
