package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"nexsim/internal/core"
	"nexsim/internal/experiments"
	"nexsim/internal/simserve"
	"nexsim/internal/vclock"
)

// postJobs submits specs to addr's job API and returns the HTTP status
// and decoded body.
func postJobs(t *testing.T, addr, tenant string, specs []experiments.Spec, wait bool) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(struct {
		Specs []experiments.Spec `json:"specs"`
		Wait  bool               `json:"wait"`
	}{specs, wait})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// results decodes a 200 envelope into per-spec result bytes.
func decodeResults(t *testing.T, data []byte) []json.RawMessage {
	t.Helper()
	var env struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding results: %v (%s)", err, data)
	}
	return env.Results
}

// scrapeCounter sums one plain (unlabeled) counter across the given
// /metrics endpoints.
func scrapeCounter(t *testing.T, name string, addrs ...string) int64 {
	t.Helper()
	var total int64
	for _, addr := range addrs {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("scraping %s: %v", addr, err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					t.Fatalf("bad counter line %q: %v", line, err)
				}
				total += v
			}
		}
	}
	return total
}

func shardAddrs(lc *LocalCluster) []string {
	addrs := make([]string, len(lc.Shards))
	for i, sh := range lc.Shards {
		addrs[i] = sh.Addr
	}
	return addrs
}

// The core cluster invariant end to end: a sweep routed across three
// shards returns byte-identical results to a single direct simd, and a
// repeat of the sweep is served from the shard caches without re-running
// any engine.
func TestRoutedSweepMatchesDirectAndHitsCache(t *testing.T) {
	specs := make([]experiments.Spec, 4)
	for i := range specs {
		specs[i] = experiments.Spec{Bench: "npb-ep.8", Seed: uint64(i + 1)}
	}

	direct := &LocalShard{Server: simserve.New(simserve.Config{})}
	if err := direct.serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { direct.Stop(); direct.Server.Close() }()
	code, _, body := postJobs(t, direct.Addr, "", specs, true)
	if code != http.StatusOK {
		t.Fatalf("direct sweep: HTTP %d: %s", code, body)
	}
	want := decodeResults(t, body)

	lc, err := NewLocal(3, simserve.Config{}, RouterConfig{HotSetInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	code, _, body = postJobs(t, lc.RouterAddr, "", specs, true)
	if code != http.StatusOK {
		t.Fatalf("routed sweep: HTTP %d: %s", code, body)
	}
	got := decodeResults(t, body)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("spec %d: routed result differs from direct\n direct: %s\n routed: %s", i, want[i], got[i])
		}
	}

	// Second pass: all cache hits, no new engine work anywhere.
	submittedBefore := scrapeCounter(t, "simserve_jobs_submitted", shardAddrs(lc)...)
	hitsBefore := scrapeCounter(t, "simserve_cache_hits", shardAddrs(lc)...)
	code, _, body = postJobs(t, lc.RouterAddr, "", specs, true)
	if code != http.StatusOK {
		t.Fatalf("routed repeat: HTTP %d: %s", code, body)
	}
	again := decodeResults(t, body)
	for i := range want {
		if !bytes.Equal(want[i], again[i]) {
			t.Fatalf("spec %d: cached routed result differs from direct", i)
		}
	}
	if after := scrapeCounter(t, "simserve_jobs_submitted", shardAddrs(lc)...); after != submittedBefore {
		t.Fatalf("repeat sweep ran %d fresh jobs, want 0", after-submittedBefore)
	}
	if after := scrapeCounter(t, "simserve_cache_hits", shardAddrs(lc)...); after != hitsBefore+int64(len(specs)) {
		t.Fatalf("repeat sweep hit cache %d times, want %d", after-hitsBefore, len(specs))
	}
}

// Membership churn mid-batch: the home shard of an in-flight spec is
// killed abruptly; the hedge/failover path completes the batch from a
// replica with the correct bytes, the router marks the dead shard down,
// and a restarted shard re-admits through probation.
func TestClusterChurnHedgeCompletesAndReadmits(t *testing.T) {
	slowRunner := func(s experiments.Spec, attempt int) (core.Result, error) {
		time.Sleep(150 * time.Millisecond)
		return core.Result{SimTime: vclock.Duration(s.Seed) * vclock.Microsecond}, nil
	}
	lc, err := NewLocal(3, simserve.Config{Runner: slowRunner}, RouterConfig{
		HedgeAfter:     40 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		FailThreshold:  2,
		ReadmitOKs:     2,
		HotSetInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	spec := experiments.Spec{Bench: "npb-ep.8", Seed: 7}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	home := NewRing(shardAddrs(lc), 0).Order(id)[0]
	var homeShard *LocalShard
	for _, sh := range lc.Shards {
		if sh.Addr == home {
			homeShard = sh
		}
	}
	if homeShard == nil {
		t.Fatalf("home shard %s not in cluster", home)
	}

	type reply struct {
		code int
		body []byte
	}
	done := make(chan reply, 1)
	go func() {
		code, _, body := postJobs(t, lc.RouterAddr, "", []experiments.Spec{spec}, true)
		done <- reply{code, body}
	}()

	// Kill the home shard while its run is still in flight.
	time.Sleep(60 * time.Millisecond)
	homeShard.Stop()

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("batch did not complete after shard death: HTTP %d: %s", r.code, r.body)
	}
	results := decodeResults(t, r.body)
	var jr simserve.JobResult
	if err := json.Unmarshal(results[0], &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ID != id || jr.Error != "" {
		t.Fatalf("hedged result wrong: id=%s error=%q", jr.ID, jr.Error)
	}
	if want := int64(7 * vclock.Microsecond); jr.SimTimePS != want {
		t.Fatalf("hedged result sim time = %d, want %d", jr.SimTimePS, want)
	}

	// The dead shard is marked down (by traffic and/or probes)...
	deadline := time.Now().Add(3 * time.Second)
	for {
		if !lc.Router.Membership().Live(home) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead shard %s never marked down (state %s)", home, lc.Router.Membership().State(home))
		}
		time.Sleep(10 * time.Millisecond)
	}
	marksDown, _, _ := lc.Router.Membership().counters()
	if marksDown < 1 {
		t.Fatalf("marksDown = %d, want >= 1", marksDown)
	}

	// ...the determinism probe saw no divergence...
	lc.Router.mu.Lock()
	mismatches := lc.Router.m.probeMismatches
	lc.Router.mu.Unlock()
	if mismatches != 0 {
		t.Fatalf("probeMismatches = %d, want 0", mismatches)
	}

	// ...and a restarted shard re-admits through probation.
	if err := homeShard.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		if lc.Router.Membership().Live(home) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard %s never re-admitted (state %s)", home, lc.Router.Membership().State(home))
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, readmits, _ := lc.Router.Membership().counters()
	if readmits < 1 {
		t.Fatalf("readmits = %d, want >= 1", readmits)
	}
}

// Per-tenant admission: one tenant exhausting its bucket is refused
// with a Retry-After while another tenant's bucket is untouched.
func TestTenantAdmissionIsolatesTenants(t *testing.T) {
	lc, err := NewLocal(1, simserve.Config{}, RouterConfig{
		HotSetInterval: time.Hour,
		Admission:      AdmissionConfig{RatePerSec: 1, BurstSec: 1}, // depth 1
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	spec := []experiments.Spec{{Bench: "npb-ep.8", Seed: 11}}
	code, _, body := postJobs(t, lc.RouterAddr, "team-a", spec, false)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", code, body)
	}
	code, hdr, body := postJobs(t, lc.RouterAddr, "team-a", spec, false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d: %s", code, body)
	}
	if retry, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	// A different tenant has its own bucket.
	code, _, body = postJobs(t, lc.RouterAddr, "team-b", spec, false)
	if code != http.StatusAccepted {
		t.Fatalf("other tenant: HTTP %d: %s", code, body)
	}
}

// Hot-set replication: after one routed run and one digest exchange,
// every shard serves the spec from its own cache.
func TestHotsetReplicationWarmsEveryShard(t *testing.T) {
	lc, err := NewLocal(3, simserve.Config{}, RouterConfig{
		HotSetK:        4,
		HotSetInterval: time.Hour, // driven manually below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	specs := []experiments.Spec{{Bench: "npb-ep.8", Seed: 21}}
	code, _, body := postJobs(t, lc.RouterAddr, "", specs, true)
	if code != http.StatusOK {
		t.Fatalf("routed run: HTTP %d: %s", code, body)
	}
	want := decodeResults(t, body)[0]

	lc.Router.PushHotSet()

	// The two non-home shards promoted the pushed result; the home shard
	// counted it as a duplicate of its own cache entry.
	if promoted := scrapeCounter(t, "simserve_hotset_promoted", shardAddrs(lc)...); promoted != 2 {
		t.Fatalf("hotset_promoted across shards = %d, want 2", promoted)
	}
	if dups := scrapeCounter(t, "simserve_hotset_duplicates", shardAddrs(lc)...); dups != 1 {
		t.Fatalf("hotset_duplicates across shards = %d, want 1", dups)
	}

	// Every shard now answers directly from cache, byte-identically.
	submitted := scrapeCounter(t, "simserve_jobs_submitted", shardAddrs(lc)...)
	for _, addr := range shardAddrs(lc) {
		code, _, body := postJobs(t, addr, "", specs, true)
		if code != http.StatusOK {
			t.Fatalf("shard %s: HTTP %d: %s", addr, code, body)
		}
		if got := decodeResults(t, body)[0]; !bytes.Equal(want, got) {
			t.Fatalf("shard %s served different bytes for the replicated result", addr)
		}
	}
	if after := scrapeCounter(t, "simserve_jobs_submitted", shardAddrs(lc)...); after != submitted {
		t.Fatalf("direct re-serves ran %d fresh jobs, want 0", after-submitted)
	}
}

// A router over a fully dead shard set refuses cleanly.
func TestRouterNoLiveShards(t *testing.T) {
	lc, err := NewLocal(1, simserve.Config{}, RouterConfig{
		ProbeInterval:  time.Hour, // no background probes; driven by traffic
		FailThreshold:  1,
		HotSetInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	lc.Shards[0].Stop()

	spec := []experiments.Spec{{Bench: "npb-ep.8", Seed: 31}}
	// First submit discovers the dead shard (transport error -> mark
	// down at threshold 1); it may fail with 502 or 503 depending on
	// when the mark lands. The second must be a clean 503.
	postJobs(t, lc.RouterAddr, "", spec, false)
	code, _, body := postJobs(t, lc.RouterAddr, "", spec, false)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead cluster: HTTP %d: %s", code, body)
	}
	if !strings.Contains(string(body), "no live shards") {
		t.Fatalf("dead cluster error = %s, want no-live-shards", body)
	}
}

// The router's metrics page renders the core counters (smoke, and a
// regression guard for the sorted render helpers).
func TestRouterMetricsRender(t *testing.T) {
	lc, err := NewLocal(2, simserve.Config{}, RouterConfig{HotSetInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	postJobs(t, lc.RouterAddr, "", []experiments.Spec{{Bench: "npb-ep.8", Seed: 41}}, true)

	resp, err := http.Get("http://" + lc.RouterAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"simrouter_requests_total 1",
		"simrouter_specs_total 1",
		"simrouter_probe_mismatches 0",
		fmt.Sprintf("simrouter_shard_up{shard=%q} 1", lc.Shards[0].Addr),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
