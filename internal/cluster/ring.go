// Package cluster promotes the single-process simd daemon into a
// multi-node serving tier: cmd/simrouter fronts N simd shards with a
// stateless consistent-hash router. Placement keys are
// experiments.Spec content addresses (the same SHA-256 that keys every
// shard's result cache), so a spec deterministically owns a home shard
// and repeated submissions of the same sweep land on warm caches.
//
// Determinism is the load-bearing property (DESIGN.md §5): a run is a
// pure function of its spec, so any shard's answer for a given content
// address is byte-identical to any other's. That makes replicas
// location-transparent — the router hedges slow or dead shards by
// re-forwarding to the next replica and treats the byte comparison of
// duplicate answers as a free cross-node determinism probe.
//
// The package splits along the router's concerns: ring.go (placement),
// membership.go (liveness), forwarder.go (request routing),
// hedger.go (retry/hedge races), hotset.go (hot-result replication),
// admission.go (per-tenant fair admission), metrics.go (/metrics).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per shard. 64 points per
// shard keeps the max/min ownership spread under ~30% for small
// clusters while the ring stays tiny (a 16-shard ring is 1024 points).
const defaultVNodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is an immutable consistent-hash ring over a static shard list
// with virtual nodes. Liveness is deliberately not the ring's business:
// Order returns the full preference order for a key and the caller
// (the forwarder) filters by membership state, so a shard bouncing in
// and out of the cluster never moves keys between the shards that
// stayed up.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

// NewRing builds a ring over the given shard names (trailing order is
// irrelevant; placement depends only on the name set). vnodes <= 0
// selects the default.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	names := append([]string(nil), shards...)
	sort.Strings(names)
	r := &Ring{shards: names}
	for si, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  pointHash(name, v),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring
		// is a pure function of the member set.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the member names in sorted order.
func (r *Ring) Shards() []string { return r.shards }

// pointHash positions one virtual node on the circle.
func pointHash(shard string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", shard, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a placement key on the circle. Keys are spec
// content addresses (already SHA-256 hex), but hashing again keeps the
// function total over arbitrary strings (tests, future key kinds).
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Order returns every shard in preference order for key: the owner of
// the first ring point at or clockwise of the key's hash, then each
// subsequent distinct shard in ring order. The full order (rather than
// a single pick) is what lets the forwarder fail over and hedge without
// re-hashing: replica i+1 for a key is simply Order(key)[i+1].
func (r *Ring) Order(key string) []string {
	if len(r.shards) == 0 {
		return nil
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]string, 0, len(r.shards))
	seen := make([]bool, len(r.shards))
	for i := 0; i < len(r.points) && len(order) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			order = append(order, r.shards[p.shard])
		}
	}
	return order
}

// BoundedPick chooses the first shard in the key's preference order
// that is both admitted by live and under the bounded-load ceiling
// c×⌈(total+1)/n⌉, where total is the summed in-flight load over the n
// live candidates ("consistent hashing with bounded loads"). If every
// candidate is over the ceiling — a uniformly hot cluster — the
// preferred shard wins, preserving cache locality. ok is false when no
// candidate is live.
func (r *Ring) BoundedPick(key string, c float64, live func(string) bool, load func(string) int) (string, bool) {
	order := r.Order(key)
	candidates := order[:0:0]
	total := 0
	for _, s := range order {
		if live == nil || live(s) {
			candidates = append(candidates, s)
			if load != nil {
				total += load(s)
			}
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	if c <= 1 || load == nil {
		return candidates[0], true
	}
	ceiling := int(c * float64(total+1) / float64(len(candidates)))
	if ceiling < 1 {
		ceiling = 1
	}
	for _, s := range candidates {
		if load(s) < ceiling {
			return s, true
		}
	}
	return candidates[0], true
}
