package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Hedged forwarding, reusing simserve's hedging shape (PR 7) one level
// up the stack: a sub-batch that is slow or whose shard died is
// re-routed to the next replica, the first answer wins, and when both
// sides eventually answer, the duplicate is byte-compared. On a single
// node that comparison catches nondeterministic engines; across nodes
// it is a free replica-verification probe — byte-identical results from
// any shard is the cluster's core invariant, so a mismatch quarantines
// the losing shard until it re-earns admission through probation.

// groupOutcome is one attempt's result for a whole sub-batch.
type groupOutcome struct {
	results []itemResult
	err     error
	// refused notes shard backpressure (HTTP 429): the shard is healthy
	// but full, which informs the error the client ultimately sees.
	refused bool
}

// routeItems forwards items to their shards (grouped, concurrently) and
// returns outcomes aligned with items. exclude carries shards already
// failed over from on this path.
func (r *Router) routeItems(ctx context.Context, items []specItem, wait bool, exclude map[string]bool) ([]itemResult, error) {
	groups, err := r.groupByShard(items, exclude)
	if err != nil {
		return nil, err
	}
	type groupRes struct {
		shard string
		out   groupOutcome
	}
	shards := sortedShardKeys(groups)
	ch := make(chan groupRes, len(shards))
	for _, shard := range shards {
		go func(shard string, group []specItem) {
			out := r.sendGroupHedged(ctx, shard, group, wait, exclude)
			ch <- groupRes{shard: shard, out: out}
		}(shard, groups[shard])
	}
	byIdx := make(map[int]itemResult, len(items))
	var firstErr error
	refused := false
	for range shards {
		gr := <-ch
		if gr.out.err != nil {
			if firstErr == nil {
				firstErr = gr.out.err
			}
			refused = refused || gr.out.refused
			continue
		}
		// Group outcomes are always aligned with the group's item order
		// (sendGroup builds them positionally; routeItems returns
		// aligned), so map back by position.
		for i, res := range gr.out.results {
			byIdx[groups[gr.shard][i].idx] = res
		}
	}
	if firstErr != nil {
		if refused {
			return nil, errShed
		}
		return nil, firstErr
	}
	aligned := make([]itemResult, len(items))
	for i, it := range items {
		res, ok := byIdx[it.idx]
		if !ok {
			// A shard answered with fewer entries than asked; treat the
			// gap as still-queued rather than failing the batch.
			res = itemResult{id: it.id, status: "queued"}
		}
		aligned[i] = res
	}
	return aligned, nil
}

// sendGroupHedged runs the primary attempt against shard with hedging
// and failover:
//
//   - primary transport error / 5xx / 429 → fail over to the next
//     replicas (exclude grows by this shard)
//   - primary slow (HedgeAfter, wait=true) → launch a duplicate on the
//     next replicas and race; first success answers the client
//   - both sides answer → byte-compare overlapping results (determinism
//     probe); a mismatch counts and quarantines the losing shard
func (r *Router) sendGroupHedged(ctx context.Context, shard string, group []specItem, wait bool, exclude map[string]bool) groupOutcome {
	primaryCh := make(chan groupOutcome, 1)
	go func() { primaryCh <- r.sendGroup(ctx, shard, group, wait) }()

	var timerC <-chan time.Time
	if r.cfg.HedgeAfter > 0 && wait {
		timer := time.NewTimer(r.cfg.HedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}

	var hedgeCh chan groupOutcome
	hedgeLaunched := false
	for {
		select {
		case out := <-primaryCh:
			if out.err == nil {
				if hedgeLaunched {
					go r.compareLate(hedgeCh, out.results)
				}
				return out
			}
			// Primary failed hard. If a hedge is in flight its answer is
			// authoritative; otherwise fail over synchronously.
			if hedgeLaunched {
				hedgeOut := <-hedgeCh
				if hedgeOut.err == nil {
					r.noteHedgeWin()
				}
				return hedgeOut
			}
			return r.failover(ctx, shard, group, wait, exclude, out)

		case <-timerC:
			timerC = nil
			hedgeLaunched = true
			hedgeCh = make(chan groupOutcome, 1)
			r.mu.Lock()
			r.m.hedgesLaunched++
			r.mu.Unlock()
			go func() {
				res, err := r.routeItems(ctx, group, wait, withExcluded(exclude, shard))
				hedgeCh <- groupOutcome{results: res, err: err}
			}()

		case out := <-hedgeCh:
			hedgeCh = nil
			hedgeLaunched = false
			if out.err == nil {
				r.noteHedgeWin()
				go r.compareLate(primaryCh, out.results)
				return out
			}
			// Hedge lost its own race (its replicas failed); keep waiting
			// on the primary.

		case <-ctx.Done():
			return groupOutcome{err: ctx.Err()}
		}
	}
}

// failover re-routes a group after its shard failed. The failed shard's
// refusal kind decides the client-visible error when no replica is
// left.
func (r *Router) failover(ctx context.Context, shard string, group []specItem, wait bool, exclude map[string]bool, out groupOutcome) groupOutcome {
	res, err := r.routeItems(ctx, group, wait, withExcluded(exclude, shard))
	if err != nil {
		return groupOutcome{err: err, refused: out.refused}
	}
	r.mu.Lock()
	r.m.failovers++
	r.mu.Unlock()
	return groupOutcome{results: res}
}

// withExcluded copies exclude plus shard (the original map may be
// shared across concurrent groups).
func withExcluded(exclude map[string]bool, shard string) map[string]bool {
	ex := make(map[string]bool, len(exclude)+1)
	for s := range exclude {
		ex[s] = true
	}
	ex[shard] = true
	return ex
}

// compareLate drains the losing side of a hedge race and byte-compares
// its results against the published winner's. The wait is bounded by
// the forward timeout; a loser that never answers was already reported
// failed by its own path.
func (r *Router) compareLate(ch <-chan groupOutcome, winner []itemResult) {
	timer := time.NewTimer(r.cfg.ForwardTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		r.mu.Lock()
		r.m.hedgesWasted++
		r.mu.Unlock()
		if out.err != nil {
			return
		}
		r.probeCompare(winner, out.results)
	case <-timer.C:
	}
}

// probeCompare verifies replica answers byte for byte: for every
// content address both sides finished, the result bytes must match.
// A divergence is a broken determinism invariant on some shard —
// counted, and the loser's serving shard is quarantined.
func (r *Router) probeCompare(winner, loser []itemResult) {
	byID := make(map[string]itemResult, len(winner))
	for _, res := range winner {
		if len(res.result) > 0 {
			byID[res.id] = res
		}
	}
	for _, res := range loser {
		won, ok := byID[res.id]
		if !ok || len(res.result) == 0 {
			continue
		}
		r.mu.Lock()
		r.m.probeCompares++
		mismatch := !bytes.Equal(won.result, res.result)
		if mismatch {
			r.m.probeMismatches++
		}
		r.mu.Unlock()
		if mismatch {
			r.mem.Quarantine(res.shard)
		}
	}
}

func (r *Router) noteHedgeWin() {
	r.mu.Lock()
	r.m.hedgesWon++
	r.mu.Unlock()
}

// sendGroup performs one sub-batch POST to one shard and parses the
// response into per-item outcomes.
func (r *Router) sendGroup(ctx context.Context, shard string, group []specItem, wait bool) groupOutcome {
	specs := make([]json.RawMessage, len(group))
	for i, it := range group {
		data, err := json.Marshal(it.spec)
		if err != nil {
			return groupOutcome{err: err}
		}
		specs[i] = data
	}
	body, err := json.Marshal(struct {
		Specs []json.RawMessage `json:"specs"`
		Wait  bool              `json:"wait"`
	}{specs, wait})
	if err != nil {
		return groupOutcome{err: err}
	}

	r.mu.Lock()
	r.inflight[shard]++
	r.m.forwards[shard]++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.inflight[shard]--
		r.mu.Unlock()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+shard+"/jobs", bytes.NewReader(body))
	if err != nil {
		return groupOutcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client(shard).Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client went away; that is not evidence against the shard.
			return groupOutcome{err: ctx.Err()}
		}
		r.noteForwardError(shard)
		r.mem.ReportFailure(shard)
		return groupOutcome{err: fmt.Errorf("shard %s: %w", shard, err)}
	}
	defer func() { _ = resp.Body.Close() }()

	switch resp.StatusCode {
	case http.StatusOK:
		var env struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || len(env.Results) != len(group) {
			r.noteForwardError(shard)
			return groupOutcome{err: fmt.Errorf("shard %s: malformed results (%v)", shard, err)}
		}
		r.mem.ReportSuccess(shard)
		results := make([]itemResult, len(group))
		for i, raw := range env.Results {
			status := "done"
			var probe struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(raw, &probe) == nil && probe.Error != "" {
				status = "failed"
			}
			results[i] = itemResult{id: group[i].id, status: status, result: raw, shard: shard}
		}
		return groupOutcome{results: results}

	case http.StatusAccepted:
		var env struct {
			Jobs []jobStatus `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || len(env.Jobs) != len(group) {
			r.noteForwardError(shard)
			return groupOutcome{err: fmt.Errorf("shard %s: malformed job statuses (%v)", shard, err)}
		}
		r.mem.ReportSuccess(shard)
		results := make([]itemResult, len(group))
		for i, js := range env.Jobs {
			results[i] = itemResult{id: js.ID, status: js.Status, shard: shard}
		}
		return groupOutcome{results: results}

	case http.StatusTooManyRequests:
		// The shard is healthy but full: backpressure, not failure.
		return groupOutcome{err: fmt.Errorf("shard %s: queue full", shard), refused: true}

	default:
		r.noteForwardError(shard)
		r.mem.ReportFailure(shard)
		return groupOutcome{err: fmt.Errorf("shard %s: HTTP %d", shard, resp.StatusCode)}
	}
}

func (r *Router) noteForwardError(shard string) {
	r.mu.Lock()
	r.m.forwardErrors[shard]++
	r.mu.Unlock()
}

// writeJSON / writeError mirror the shard-side response encoding so a
// routed error body is indistinguishable from a direct one.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	data, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		http.Error(w, msg, code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return
	}
}
