package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testShards(n int) []string {
	shards := make([]string, n)
	for i := range shards {
		shards[i] = fmt.Sprintf("127.0.0.1:%d", 8000+i)
	}
	return shards
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("spec-%d", i)
	}
	return keys
}

func TestRingOrderCoversAllShardsDeterministically(t *testing.T) {
	shards := testShards(5)
	r := NewRing(shards, 0)
	for _, key := range testKeys(50) {
		order := r.Order(key)
		if len(order) != len(shards) {
			t.Fatalf("Order(%q) returned %d shards, want %d", key, len(order), len(shards))
		}
		seen := map[string]bool{}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("Order(%q) repeats shard %s", key, s)
			}
			seen[s] = true
		}
		if again := r.Order(key); !reflect.DeepEqual(order, again) {
			t.Fatalf("Order(%q) is not deterministic: %v vs %v", key, order, again)
		}
	}
}

func TestRingPlacementIgnoresListOrder(t *testing.T) {
	shards := testShards(4)
	r1 := NewRing(shards, 64)
	reversed := []string{shards[3], shards[2], shards[1], shards[0]}
	r2 := NewRing(reversed, 64)
	for _, key := range testKeys(100) {
		if a, b := r1.Order(key)[0], r2.Order(key)[0]; a != b {
			t.Fatalf("placement depends on shard list order: %s vs %s for %q", a, b, key)
		}
	}
}

// A dead shard must only remap its own keys: every key homed elsewhere
// keeps its placement, which is what makes mark-down/re-admit churn
// cheap for the caches.
func TestRingStabilityUnderMemberLoss(t *testing.T) {
	shards := testShards(5)
	r := NewRing(shards, 64)
	dead := shards[2]
	live := func(s string) bool { return s != dead }
	moved := 0
	for _, key := range testKeys(500) {
		home, ok := r.BoundedPick(key, 0, nil, nil)
		if !ok {
			t.Fatal("BoundedPick failed with all shards live")
		}
		after, ok := r.BoundedPick(key, 0, live, nil)
		if !ok {
			t.Fatal("BoundedPick failed with one dead shard")
		}
		if home == dead {
			moved++
			if after == dead {
				t.Fatalf("key %q still placed on dead shard", key)
			}
			continue
		}
		if after != home {
			t.Fatalf("key %q moved %s -> %s though its home stayed live", key, home, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was homed on the dead shard; distribution is broken")
	}
}

// Virtual nodes must keep ownership roughly balanced: no shard of four
// should own less than half or more than double its fair share.
func TestRingDistribution(t *testing.T) {
	shards := testShards(4)
	r := NewRing(shards, 64)
	counts := map[string]int{}
	keys := testKeys(2000)
	for _, key := range keys {
		counts[r.Order(key)[0]]++
	}
	fair := len(keys) / len(shards)
	for _, s := range shards {
		if counts[s] < fair/2 || counts[s] > fair*2 {
			t.Errorf("shard %s owns %d of %d keys (fair share %d)", s, counts[s], len(keys), fair)
		}
	}
}

// Bounded loads spill a hot home shard to the next replica, and fall
// back to the home shard when everyone is over the ceiling.
func TestBoundedPickSpillsOverloadedShard(t *testing.T) {
	shards := testShards(3)
	r := NewRing(shards, 64)
	key := "hot-spec"
	order := r.Order(key)
	home, second := order[0], order[1]

	load := func(s string) int {
		if s == home {
			return 100
		}
		return 0
	}
	got, ok := r.BoundedPick(key, 1.25, nil, load)
	if !ok || got != second {
		t.Fatalf("BoundedPick = %s, %v; want spill to %s", got, ok, second)
	}

	// c <= 1 disables bounding: pure consistent hashing.
	got, ok = r.BoundedPick(key, 0, nil, load)
	if !ok || got != home {
		t.Fatalf("BoundedPick(c=0) = %s, %v; want home %s", got, ok, home)
	}

	// Uniformly hot: locality wins.
	flat := func(string) int { return 100 }
	got, ok = r.BoundedPick(key, 1.25, nil, flat)
	if !ok || got != home {
		t.Fatalf("BoundedPick(uniform load) = %s, %v; want home %s", got, ok, home)
	}
}
