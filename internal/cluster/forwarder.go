package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nexsim/internal/experiments"
)

// RouterConfig parameterizes the cluster router.
type RouterConfig struct {
	// Shards is the static simd shard list (host:port).
	Shards []string
	// VNodes is the virtual-node count per shard (default 64).
	VNodes int
	// LoadFactor is the bounded-load ceiling factor c (default 1.25): a
	// key skips its home shard while that shard carries more than
	// c×⌈(inflight+1)/liveShards⌉ in-flight sub-batches. <= 1 disables
	// load bounding (pure consistent hashing).
	LoadFactor float64
	// HedgeAfter launches a duplicate sub-batch on the next replica for
	// any wait=true forward still unanswered after this long; the first
	// answer wins and the loser is byte-compared as a determinism probe.
	// 0 disables hedging (failover on hard errors still applies).
	HedgeAfter time.Duration
	// ForwardTimeout caps one forwarded request (default 5m; it must
	// exceed the shards' wait timeout or long sweeps degrade to polls).
	ForwardTimeout time.Duration

	// Membership knobs (see MembershipConfig).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	ReadmitOKs    int
	Probe         func(shard string) bool // test override

	// HotSetK is the number of hottest content addresses replicated to
	// every shard each HotSetInterval (default 8; 0 disables the
	// exchange loop — PushHotSet can still be driven manually).
	HotSetK int
	// HotSetInterval is the digest-exchange period (default 5s).
	HotSetInterval time.Duration

	// Admission is the per-tenant token-bucket gate (zero RatePerSec
	// admits everything).
	Admission AdmissionConfig
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Minute
	}
	if c.HotSetK <= 0 {
		c.HotSetK = 8
	}
	if c.HotSetInterval <= 0 {
		c.HotSetInterval = 5 * time.Second
	}
	return c
}

// Routing failures the HTTP layer maps to status codes.
var (
	errNoLiveShards = errors.New("cluster: no live shards")
	errShed         = errors.New("cluster: all replicas at capacity")
	errExhausted    = errors.New("cluster: all replicas failed")
)

// Router is the stateless cluster front end: it owns no simulation
// state, only soft state (liveness, hotness, in-flight counts) that any
// replacement router rebuilds from traffic. Losing a router loses
// nothing but open connections.
type Router struct {
	cfg  RouterConfig
	ring *Ring
	mem  *Membership
	adm  *Admission
	hot  *hotTracker

	clients map[string]*http.Client // per-shard connection pools

	mu       sync.Mutex
	inflight map[string]int // outstanding sub-batches by shard
	m        *routerMetrics

	stop chan struct{}
}

// NewRouter builds a router over the static shard list. Call Start to
// launch the health-probe and hot-set loops, Close to stop them.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard required")
	}
	r := &Router{
		cfg:  cfg,
		ring: NewRing(cfg.Shards, cfg.VNodes),
		mem: NewMembership(MembershipConfig{
			Shards:        cfg.Shards,
			ProbeInterval: cfg.ProbeInterval,
			ProbeTimeout:  cfg.ProbeTimeout,
			FailThreshold: cfg.FailThreshold,
			ReadmitOKs:    cfg.ReadmitOKs,
			Probe:         cfg.Probe,
		}),
		adm:      NewAdmission(cfg.Admission),
		hot:      newHotTracker(),
		clients:  make(map[string]*http.Client, len(cfg.Shards)),
		inflight: make(map[string]int, len(cfg.Shards)),
		m:        newRouterMetrics(),
		stop:     make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		r.clients[s] = &http.Client{
			Timeout: cfg.ForwardTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return r, nil
}

// Start launches the background loops: periodic /healthz probing and
// the hot-set digest exchange.
func (r *Router) Start() {
	r.mem.Start()
	go r.hotsetLoop()
}

// Close stops the background loops. In-flight forwards complete on
// their own contexts.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.mem.Close()
}

// Membership exposes the liveness tracker (smoke tooling and tests).
func (r *Router) Membership() *Membership { return r.mem }

// client returns the shard's pooled HTTP client. The map is immutable
// after NewRouter, so reads need no lock.
func (r *Router) client(shard string) *http.Client { return r.clients[shard] }

// specItem is one routed spec: its position in the client's batch, its
// normalized form, and its content address (the placement key).
type specItem struct {
	idx  int
	spec experiments.Spec
	id   string
}

// itemResult is the routed outcome for one spec.
type itemResult struct {
	id     string
	status string          // simserve job status; "queued" when unknown
	result json.RawMessage // canonical JobResult bytes (wait=true, finished)
	shard  string          // shard that served it (determinism probe)
}

// --- HTTP surface ---

// submitRequest mirrors the simserve POST /jobs body.
type submitRequest struct {
	Specs []experiments.Spec `json:"specs"`
	Wait  bool               `json:"wait"`
}

// maxBatch mirrors the shard-side bound.
const maxBatch = 4096

// TenantHeader names the request header carrying the tenant identity
// for admission control.
const TenantHeader = "X-Tenant"

// Handler returns the router's HTTP routes — the same job API the
// shards serve, so clients are oblivious to whether they talk to one
// simd or a cluster.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("POST /jobs", r.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", r.handleJob)
	return mux
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if r.mem.LiveCount() == 0 {
		http.Error(w, "no live shards", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		return
	}
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.renderMetrics(w)
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	r.m.requestsTotal++
	r.mu.Unlock()

	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	var sr submitRequest
	if err := dec.Decode(&sr); err != nil {
		r.countBad()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(sr.Specs) == 0 {
		r.countBad()
		writeError(w, http.StatusBadRequest, "no specs submitted")
		return
	}
	if len(sr.Specs) > maxBatch {
		r.countBad()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d specs exceeds the %d-spec limit", len(sr.Specs), maxBatch))
		return
	}

	// Tenant gate first: an over-quota tenant must not cost normalization
	// work either.
	tenant := req.Header.Get(TenantHeader)
	if ok, retry := r.adm.Allow(tenant, len(sr.Specs)); !ok {
		r.mu.Lock()
		r.m.admissionRejects++
		r.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over admission quota; retry after %ds", tenantLabel(tenant), retry))
		return
	}

	items := make([]specItem, len(sr.Specs))
	for i, spec := range sr.Specs {
		n, err := spec.Normalized()
		if err != nil {
			r.countBad()
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
		id, err := n.ID()
		if err != nil {
			r.countBad()
			writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
			return
		}
		items[i] = specItem{idx: i, spec: n, id: id}
		r.hot.Note(id)
	}
	r.mu.Lock()
	r.m.specsTotal += int64(len(items))
	r.mu.Unlock()

	results, err := r.routeItems(req.Context(), items, sr.Wait, nil)
	if err != nil {
		switch {
		case errors.Is(err, errNoLiveShards):
			r.mu.Lock()
			r.m.noShards++
			r.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "no live shards")
		case errors.Is(err, errShed):
			r.mu.Lock()
			r.m.shedded++
			r.mu.Unlock()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(items[0].id)))
			writeError(w, http.StatusTooManyRequests, "cluster at capacity; resubmit")
		case errors.Is(err, req.Context().Err()):
			// Client went away; nothing to write.
		default:
			writeError(w, http.StatusBadGateway, fmt.Sprintf("forwarding failed: %v", err))
		}
		return
	}

	if sr.Wait && allFinished(results) {
		raws := make([]json.RawMessage, len(results))
		for i, res := range results {
			raws[i] = res.result
		}
		writeJSON(w, http.StatusOK, struct {
			Results []json.RawMessage `json:"results"`
		}{raws})
		return
	}
	statuses := make([]jobStatus, len(results))
	for i, res := range results {
		statuses[i] = jobStatus{ID: res.id, Status: res.status}
	}
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []jobStatus `json:"jobs"`
	}{statuses})
}

// jobStatus mirrors the shard-side async response entry.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

func allFinished(results []itemResult) bool {
	for _, res := range results {
		if len(res.result) == 0 {
			return false
		}
	}
	return true
}

// handleJob resolves a poll by content address: the id's replicas in
// preference order, so a result that landed on a hedge target is still
// found after its home shard forgets it.
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	for _, shard := range r.ring.Order(id) {
		if !r.mem.Live(shard) {
			continue
		}
		resp, err := r.client(shard).Get(fmt.Sprintf("http://%s/jobs/%s", shard, id))
		if err != nil {
			r.mem.ReportFailure(shard)
			continue
		}
		var body json.RawMessage
		derr := json.NewDecoder(resp.Body).Decode(&body)
		_ = resp.Body.Close()
		if derr != nil || resp.StatusCode == http.StatusNotFound {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		body = append(body, '\n')
		if _, err := w.Write(body); err != nil {
			return
		}
		return
	}
	writeError(w, http.StatusNotFound, "unknown job "+id)
}

func (r *Router) countBad() {
	r.mu.Lock()
	r.m.badRequests++
	r.mu.Unlock()
}

// tenantLabel names the bucket a request was charged to.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// retryAfterSecs derives a deterministic 1–3s Retry-After from a spec's
// content address: synchronized clients that all hit a full cluster
// with distinct specs spread their retries instead of re-stampeding in
// unison, while the same spec always backs off identically (tests stay
// byte-stable).
func retryAfterSecs(id string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id)) // fnv Write cannot fail
	return 1 + int(h.Sum64()%3)
}

// groupByShard buckets items onto their bounded-load placements,
// excluding shards the caller has already failed over from. Group order
// is deterministic (sorted by shard name).
func (r *Router) groupByShard(items []specItem, exclude map[string]bool) (map[string][]specItem, error) {
	live := func(s string) bool { return r.mem.Live(s) && !exclude[s] }
	load := func(s string) int {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.inflight[s]
	}
	groups := map[string][]specItem{}
	for _, it := range items {
		shard, ok := r.ring.BoundedPick(it.id, r.cfg.LoadFactor, live, load)
		if !ok {
			if r.mem.LiveCount() == 0 {
				return nil, errNoLiveShards
			}
			return nil, errExhausted
		}
		groups[shard] = append(groups[shard], it)
	}
	return groups, nil
}

// sortedShardKeys returns a group map's keys in stable order.
func sortedShardKeys(groups map[string][]specItem) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
