package cluster

import "testing"

func newTestMembership(shards ...string) *Membership {
	return NewMembership(MembershipConfig{
		Shards:        shards,
		FailThreshold: 3,
		ReadmitOKs:    2,
		Probe:         func(string) bool { return true }, // never dialed; reports drive the tests
	})
}

func TestMembershipMarkDownAfterConsecutiveFailures(t *testing.T) {
	m := newTestMembership("a", "b")
	for i := 0; i < 2; i++ {
		m.ReportFailure("a")
		if !m.Live("a") {
			t.Fatalf("shard down after %d failures, threshold is 3", i+1)
		}
	}
	// A success resets the streak.
	m.ReportSuccess("a")
	m.ReportFailure("a")
	m.ReportFailure("a")
	if !m.Live("a") {
		t.Fatal("failure streak survived an intervening success")
	}
	m.ReportFailure("a")
	if m.Live("a") {
		t.Fatal("shard still live after 3 consecutive failures")
	}
	marksDown, _, _ := m.counters()
	if marksDown != 1 {
		t.Fatalf("marksDown = %d, want 1", marksDown)
	}
	if m.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d, want 1", m.LiveCount())
	}
}

func TestMembershipReadmitThroughProbation(t *testing.T) {
	m := newTestMembership("a")
	for i := 0; i < 3; i++ {
		m.ReportFailure("a")
	}
	if m.State("a") != StateDown {
		t.Fatalf("state = %s, want down", m.State("a"))
	}

	// One good probe: probation, not yet serving.
	m.ReportSuccess("a")
	if m.State("a") != StateProbation || m.Live("a") {
		t.Fatalf("state = %s live=%v, want probation and not live", m.State("a"), m.Live("a"))
	}
	// A failure in probation breaks the streak back to down.
	m.ReportFailure("a")
	if m.State("a") != StateDown {
		t.Fatalf("state = %s, want down after broken probation", m.State("a"))
	}

	// Two consecutive successes re-admit.
	m.ReportSuccess("a")
	m.ReportSuccess("a")
	if !m.Live("a") {
		t.Fatalf("state = %s, want up after %d good probes", m.State("a"), 2)
	}
	_, readmits, _ := m.counters()
	if readmits != 1 {
		t.Fatalf("readmits = %d, want 1", readmits)
	}
}

func TestQuarantineBypassesFailureThreshold(t *testing.T) {
	m := newTestMembership("a", "b")
	m.Quarantine("a")
	if m.Live("a") {
		t.Fatal("quarantined shard still live")
	}
	if s := m.State("a"); s != "down (quarantined)" {
		t.Fatalf("State = %q, want quarantined down", s)
	}
	marksDown, _, quarantines := m.counters()
	if marksDown != 1 || quarantines != 1 {
		t.Fatalf("marksDown=%d quarantines=%d, want 1 and 1", marksDown, quarantines)
	}
	// Recovery runs the normal probation path and clears the flag.
	m.ReportSuccess("a")
	m.ReportSuccess("a")
	if !m.Live("a") || m.State("a") != StateUp {
		t.Fatalf("quarantined shard did not re-admit: state %s", m.State("a"))
	}
}

func TestProbeAllDrivesStateMachine(t *testing.T) {
	healthy := map[string]bool{"a": true, "b": true}
	m := NewMembership(MembershipConfig{
		Shards:        []string{"a", "b"},
		FailThreshold: 2,
		ReadmitOKs:    2,
		Probe:         func(s string) bool { return healthy[s] },
	})
	healthy["b"] = false
	m.ProbeAll()
	m.ProbeAll()
	if m.Live("b") || !m.Live("a") {
		t.Fatalf("after failed probes: a live=%v b live=%v, want true/false", m.Live("a"), m.Live("b"))
	}
	healthy["b"] = true
	m.ProbeAll()
	m.ProbeAll()
	if !m.Live("b") {
		t.Fatalf("b not re-admitted after recovery: state %s", m.State("b"))
	}
}
