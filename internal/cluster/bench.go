package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"nexsim/internal/experiments"
	"nexsim/internal/simserve"
)

// BenchClusterSweep is the paperbench "clustersweep" harness: it serves
// one cached design sweep twice — directly from a single simd engine
// and through a 3-shard router — and reports the wall-time cost of the
// routing tier on the cache-hit path, plus the property that pays for
// it: routed results are byte-identical to direct ones, from any shard.
// Everything runs in-process over real loopback sockets (the process-
// level variant is scripts/cluster_smoke.sh).
func BenchClusterSweep(w io.Writer) error {
	const shards = 3
	specs := make([]experiments.Spec, 8)
	for i := range specs {
		specs[i] = experiments.Spec{Bench: "npb-ep.8", Seed: uint64(i + 1)}
	}

	// Direct tier: one engine, no router.
	direct := &LocalShard{Server: simserve.New(simserve.Config{})}
	if err := direct.serve("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() { direct.Stop(); direct.Server.Close() }()
	directCold, directRes, err := timedSweep(direct.Addr, specs)
	if err != nil {
		return fmt.Errorf("direct cold: %w", err)
	}
	directWarm, directRes2, err := timedSweep(direct.Addr, specs)
	if err != nil {
		return fmt.Errorf("direct warm: %w", err)
	}

	// Routed tier: the same sweep through a consistent-hash router.
	lc, err := NewLocal(shards, simserve.Config{}, RouterConfig{})
	if err != nil {
		return err
	}
	defer lc.Close()
	routedCold, _, err := timedSweep(lc.RouterAddr, specs)
	if err != nil {
		return fmt.Errorf("routed cold: %w", err)
	}
	routedWarm, routedRes, err := timedSweep(lc.RouterAddr, specs)
	if err != nil {
		return fmt.Errorf("routed warm: %w", err)
	}

	identical := 0
	for i := range specs {
		if bytes.Equal(directRes[i], routedRes[i]) && bytes.Equal(directRes[i], directRes2[i]) {
			identical++
		}
	}

	fmt.Fprintf(w, "cached sweep of %d specs (npb-ep.8, seeds 1-%d): direct simd vs %d-shard router\n",
		len(specs), len(specs), shards)
	fmt.Fprintf(w, "%-8s %12s %12s\n", "tier", "cold", "warm")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "direct", roundMS(directCold), roundMS(directWarm))
	fmt.Fprintf(w, "%-8s %12s %12s\n", "routed", roundMS(routedCold), roundMS(routedWarm))
	fmt.Fprintf(w, "byte-identical results %d/%d; router warm overhead %s\n",
		identical, len(specs), roundMS(routedWarm-directWarm))
	if identical != len(specs) {
		return fmt.Errorf("cluster: routed results diverged from direct (%d/%d identical)", identical, len(specs))
	}
	return nil
}

// timedSweep submits specs as one wait=true batch to addr's job API and
// returns the wall time plus the per-spec result bytes.
func timedSweep(addr string, specs []experiments.Spec) (time.Duration, []json.RawMessage, error) {
	body, err := json.Marshal(struct {
		Specs []experiments.Spec `json:"specs"`
		Wait  bool               `json:"wait"`
	}{specs, true})
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	resp, err := http.Post("http://"+addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	var env struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	if len(env.Results) != len(specs) {
		return 0, nil, fmt.Errorf("got %d results for %d specs", len(env.Results), len(specs))
	}
	return elapsed, env.Results, nil
}

// roundMS renders a duration at 10µs resolution (stable column widths).
func roundMS(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
