// Package app defines the software-stack abstraction: simulated
// application programs written against an Env interface that every host
// engine (reference, NEX, gem5-style) implements.
//
// A program's *functional* behaviour is ordinary Go code — it moves real
// bytes through simulated memory, launches real tasks on simulated
// accelerators, and checks real results. Its *timing* behaviour is
// expressed through Env: Compute segments, MMIO and task-buffer
// interactions, synchronization, and sleeps. The same unmodified program
// therefore runs on every engine, which is what lets the harness compare
// engines' simulated time and wall-clock cost on identical software —
// the paper's core experimental method.
package app

import (
	"nexsim/internal/coro"
	"nexsim/internal/isa"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// ThreadFunc is the body of one simulated application thread.
type ThreadFunc func(e Env)

// Program is a complete simulated application.
type Program struct {
	Name string
	// Main is the initial thread; it may spawn others.
	Main ThreadFunc
}

// Env is the interface between application code and the host engine. All
// methods must be called from the thread's own goroutine.
type Env interface {
	// Now returns the current virtual time (the simulated
	// gettimeofday(), which NEX interposes via LD_PRELOAD in the paper).
	Now() vclock.Time

	// Clock returns the simulated host core frequency.
	Clock() vclock.Hz

	// Compute consumes CPU time described by w.
	Compute(w isa.Work)

	// ComputeFor is a convenience: a segment of d native time with a
	// default instruction mix.
	ComputeFor(d vclock.Duration)

	// MMIORead / MMIOWrite access an accelerator control register.
	// They trap into the runtime (NEX §3.2) and cost the interconnect
	// round trip in virtual time.
	MMIORead(addr mem.Addr) uint32
	MMIOWrite(addr mem.Addr, v uint32)

	// TaskRead / TaskWrite access shared task-buffer memory; like MMIO
	// they are interception points, but they cost only a memory access.
	TaskRead(addr mem.Addr, p []byte)
	TaskWrite(addr mem.Addr, p []byte)

	// Mem exposes the simulated physical memory for data buffers, whose
	// accesses need no interception (paper §3.2: "Data buffers passed
	// between the software and the accelerator require no special
	// handling").
	Mem() *mem.Memory

	// Self returns the current thread.
	Self() *coro.Thread

	// Park blocks the current thread until some other thread unparks it.
	// A pending unpark (delivered while runnable) makes the next Park
	// return immediately.
	Park()

	// Unpark makes t runnable. Unparking a running thread sets its
	// pending-wake flag.
	Unpark(t *coro.Thread)

	// Spawn starts a new application thread.
	Spawn(name string, fn ThreadFunc) *coro.Thread

	// Sleep blocks for d of virtual time.
	Sleep(d vclock.Duration)

	// WaitIRQ blocks until the engine delivers interrupt vector v.
	WaitIRQ(v int)

	// CompressT runs fn with its compute time divided by factor — the
	// what-if accelerator analysis of §3.4.
	CompressT(factor float64, fn func())

	// SlipStream runs fn as fast as the engine can while staying on the
	// virtual timeline (large epochs in NEX); used for setup phases.
	SlipStream(fn func())

	// JumpT runs fn outside virtual time entirely: it costs zero virtual
	// time regardless of the computation inside.
	JumpT(fn func())

	// Tick is NEX tick mode: a driver-inserted explicit synchronization
	// point that batches preceding task-buffer writes into one trap.
	Tick()
}

// Mutex is a virtual-time mutex. The zero value is unlocked. Not safe
// for use from multiple engines.
type Mutex struct {
	held    bool
	owner   *coro.Thread
	waiters []*coro.Thread
}

// Lock acquires the mutex, parking until available.
func (m *Mutex) Lock(e Env) {
	for m.held {
		m.waiters = append(m.waiters, e.Self())
		e.Park()
	}
	m.held = true
	m.owner = e.Self()
}

// Unlock releases the mutex and wakes one waiter (FIFO).
func (m *Mutex) Unlock(e Env) {
	if !m.held {
		panic("app: unlock of unlocked mutex")
	}
	m.held = false
	m.owner = nil
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		e.Unpark(w)
	}
}

// Barrier synchronizes n threads; the last arrival releases all.
type Barrier struct {
	N       int
	arrived int
	waiters []*coro.Thread
	// Generation counter so reuse across phases is safe.
	gen int
}

// Wait blocks until N threads have called Wait in this generation.
func (b *Barrier) Wait(e Env) {
	if b.N <= 0 {
		panic("app: barrier with non-positive N")
	}
	b.arrived++
	if b.arrived == b.N {
		b.arrived = 0
		b.gen++
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			e.Unpark(w)
		}
		return
	}
	gen := b.gen
	b.waiters = append(b.waiters, e.Self())
	for gen == b.gen {
		e.Park()
	}
}

// Queue is a FIFO channel between threads; Pop blocks when empty, and a
// closed queue returns ok=false once drained.
type Queue struct {
	items   []any
	waiters []*coro.Thread
	closed  bool
}

// Push appends v and wakes one waiting consumer.
func (q *Queue) Push(e Env, v any) {
	if q.closed {
		panic("app: push to closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne(e)
}

// Close marks the queue finished and wakes all waiting consumers.
func (q *Queue) Close(e Env) {
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		e.Unpark(w)
	}
}

// Pop removes the oldest item, blocking while the queue is empty and
// open. It returns ok=false when the queue is closed and drained.
func (q *Queue) Pop(e Env) (any, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, e.Self())
		e.Park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

func (q *Queue) wakeOne(e Env) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		e.Unpark(w)
	}
}

// WaitGroup tracks outstanding work across threads.
type WaitGroup struct {
	count   int
	waiters []*coro.Thread
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking waiters at zero.
func (wg *WaitGroup) Done(e Env) {
	wg.count--
	if wg.count < 0 {
		panic("app: negative WaitGroup counter")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			e.Unpark(w)
		}
	}
}

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(e Env) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, e.Self())
		e.Park()
	}
}
