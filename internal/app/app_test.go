package app_test

import (
	"testing"

	"nexsim/internal/app"
	"nexsim/internal/exacthost"
	"nexsim/internal/vclock"
)

// run executes a program on an exact-time engine (the simplest host).
func run(t *testing.T, cores int, main app.ThreadFunc) vclock.Duration {
	t.Helper()
	e := exacthost.New(exacthost.Config{Cores: cores})
	return e.Run(app.Program{Name: "t", Main: main}).SimTime
}

func TestBarrierReuseAcrossGenerations(t *testing.T) {
	b := &app.Barrier{N: 2}
	phases := make([][]vclock.Time, 2)
	run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(2)
		for i := 0; i < 2; i++ {
			i := i
			e.Spawn("w", func(we app.Env) {
				for p := 0; p < 3; p++ {
					we.ComputeFor(vclock.Duration(i+1) * vclock.Microsecond)
					b.Wait(we)
					phases[i] = append(phases[i], we.Now())
				}
				wg.Done(we)
			})
		}
		wg.Wait(e)
	})
	for p := 0; p < 3; p++ {
		if phases[0][p] != phases[1][p] {
			t.Fatalf("phase %d: threads released at %v vs %v", p, phases[0][p], phases[1][p])
		}
	}
}

func TestBarrierZeroNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := &app.Barrier{}
	b.Wait(nil) // panics before touching the env
}

func TestQueueCloseReleasesWaiters(t *testing.T) {
	q := &app.Queue{}
	drained := 0
	run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(3)
		for i := 0; i < 2; i++ {
			e.Spawn("consumer", func(we app.Env) {
				for {
					if _, ok := q.Pop(we); !ok {
						break
					}
					drained++
				}
				wg.Done(we)
			})
		}
		e.Spawn("producer", func(we app.Env) {
			we.ComputeFor(vclock.Microsecond)
			q.Push(we, 1)
			q.Push(we, 2)
			q.Close(we)
			wg.Done(we)
		})
		wg.Wait(e)
	})
	if drained != 2 {
		t.Fatalf("drained = %d", drained)
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := &app.Queue{}
	run(t, 1, func(e app.Env) { q.Close(e) })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.Push(nil, 1) // closed: panics before touching the env
}

func TestMutexFIFOOrder(t *testing.T) {
	var mu app.Mutex
	var order []int
	run(t, 8, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(4)
		mu.Lock(e)
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("w", func(we app.Env) {
				// Stagger arrival so the wait queue order is determined.
				we.ComputeFor(vclock.Duration(i+1) * vclock.Microsecond)
				mu.Lock(we)
				order = append(order, i)
				mu.Unlock(we)
				wg.Done(we)
			})
		}
		e.ComputeFor(10 * vclock.Microsecond)
		mu.Unlock(e)
		wg.Wait(e)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order %v, want FIFO", order)
		}
	}
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var mu app.Mutex
	mu.Unlock(nil) // panics before touching the env
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var wg app.WaitGroup
	wg.Done(nil) // panics before touching the env
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	// Wait on a zero counter returns immediately.
	d := run(t, 1, func(e app.Env) {
		var wg app.WaitGroup
		wg.Wait(e)
		e.ComputeFor(vclock.Microsecond)
	})
	if d != vclock.Microsecond {
		t.Fatalf("SimTime = %v", d)
	}
}

func TestPendingUnparkBeforePark(t *testing.T) {
	// An unpark delivered while the target is runnable must make its
	// next Park return immediately (no lost wakeup).
	run(t, 4, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(1)
		target := e.Spawn("sleeper", func(we app.Env) {
			we.ComputeFor(5 * vclock.Microsecond) // still running when unparked
			we.Park()                             // must not block forever
			wg.Done(we)
		})
		e.ComputeFor(1 * vclock.Microsecond)
		e.Unpark(target)
		wg.Wait(e)
	})
}

func TestNestedSpawn(t *testing.T) {
	depth := 0
	run(t, 8, func(e app.Env) {
		var wg app.WaitGroup
		wg.Add(1)
		e.Spawn("a", func(ae app.Env) {
			var wg2 app.WaitGroup
			wg2.Add(1)
			ae.Spawn("b", func(be app.Env) {
				depth = 2
				wg2.Done(be)
			})
			wg2.Wait(ae)
			wg.Done(ae)
		})
		wg.Wait(e)
	})
	if depth != 2 {
		t.Fatal("nested spawn did not run")
	}
}
