package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events), viewable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace emits the recorded spans as a Chrome trace-event JSON
// array: one track per component, one complete event per span, with
// virtual time on the timeline. Load the output in chrome://tracing or
// ui.perfetto.dev to inspect how execution weaves between CPU threads
// and accelerators.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	events := make([]chromeEvent, 0, len(spans))
	track := map[string]int{}
	for _, s := range spans {
		tid, ok := track[s.Component]
		if !ok {
			tid = len(track) + 1
			track[s.Component] = tid
		}
		name := s.Kind.String()
		if s.Label != "" {
			name += ":" + s.Label
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  s.Component,
			Ph:   "X",
			TS:   s.Start.Nanoseconds() / 1e3,
			Dur:  s.End.Sub(s.Start).Nanoseconds() / 1e3,
			PID:  1,
			TID:  tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
