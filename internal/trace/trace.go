// Package trace records the coarse-grained execution traces that
// NEX+DSim offers in place of detailed hardware-level traces (paper §1):
// how virtual time is spent as execution weaves between CPU threads and
// accelerators.
package trace

import (
	"fmt"
	"io"
	"sort"

	"nexsim/internal/vclock"
)

// Kind classifies a span.
type Kind int

const (
	Compute   Kind = iota // CPU thread executing
	Blocked               // CPU thread parked (lock, queue, IRQ wait)
	MMIO                  // CPU thread interacting with an accelerator
	AccelBusy             // accelerator processing a task
	DMASpan               // DMA transfer in flight
	WarpSpan              // CompressT/SlipStream/JumpT region
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Blocked:
		return "blocked"
	case MMIO:
		return "mmio"
	case AccelBusy:
		return "accel"
	case DMASpan:
		return "dma"
	case WarpSpan:
		return "warp"
	default:
		return "?"
	}
}

// Span is one attributed interval of virtual time.
type Span struct {
	Component string // thread or accelerator name
	Kind      Kind
	Start     vclock.Time
	End       vclock.Time
	Label     string // optional detail (e.g. task id)
}

// chunkSize is the span capacity of one storage chunk. Chunked storage
// makes Add amortized allocation-free after warmup: growth appends a new
// fixed-size chunk instead of reallocating and copying the whole span
// backlog, which dominated tracing cost on long runs.
const chunkSize = 1024

// Recorder accumulates spans in fixed-size chunks. A nil *Recorder is
// valid and records nothing, so tracing can be disabled without
// branching at call sites.
type Recorder struct {
	chunks [][]Span
	n      int
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records a span. No-op on a nil recorder or an empty interval.
//
//simlint:hotpath one call per traced engine event on recording runs
func (r *Recorder) Add(s Span) {
	if r == nil || s.End <= s.Start {
		return
	}
	if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1]) == chunkSize {
		r.chunks = append(r.chunks, make([]Span, 0, chunkSize)) //simlint:allow hotpath-alloc one chunk per 1024 spans, amortized by design
	}
	last := len(r.chunks) - 1
	r.chunks[last] = append(r.chunks[last], s)
	r.n++
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Spans returns all recorded spans ordered by start time.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.n)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Totals aggregates time per (component, kind).
func (r *Recorder) Totals() map[string]map[Kind]vclock.Duration {
	totals := make(map[string]map[Kind]vclock.Duration)
	if r == nil {
		return totals
	}
	for _, c := range r.chunks {
		for _, s := range c {
			m := totals[s.Component]
			if m == nil {
				m = make(map[Kind]vclock.Duration)
				totals[s.Component] = m
			}
			m[s.Kind] += s.End.Sub(s.Start)
		}
	}
	return totals
}

// Dump writes a human-readable summary of per-component time attribution.
func (r *Recorder) Dump(w io.Writer) {
	totals := r.Totals()
	var comps []string
	for c := range totals {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(w, "%-24s", c)
		kinds := totals[c]
		for k := Compute; k <= WarpSpan; k++ {
			if d, ok := kinds[k]; ok {
				fmt.Fprintf(w, " %s=%v", k, d)
			}
		}
		fmt.Fprintln(w)
	}
}
