package trace

import (
	"testing"

	"nexsim/internal/vclock"
)

// BenchmarkAdd measures the per-span recording cost on a long run —
// chunked storage appends into fixed-size blocks instead of repeatedly
// reallocating one giant slice.
func BenchmarkAdd(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(Span{
			Component: "thread",
			Kind:      Compute,
			Start:     vclock.Time(i),
			End:       vclock.Time(i + 1),
		})
	}
}

// BenchmarkTotals measures aggregation over a large recorded trace.
func BenchmarkTotals(b *testing.B) {
	r := New()
	for i := 0; i < 100_000; i++ {
		r.Add(Span{Component: "t", Kind: Kind(i % 3), Start: vclock.Time(i), End: vclock.Time(i + 1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Totals()) == 0 {
			b.Fatal("empty totals")
		}
	}
}
