package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nexsim/internal/vclock"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Span{Component: "x", Kind: Compute, Start: 0, End: 10})
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans: %v", got)
	}
	if got := r.Totals(); len(got) != 0 {
		t.Fatal("nil recorder returned totals")
	}
}

func TestEmptySpansDropped(t *testing.T) {
	r := New()
	r.Add(Span{Component: "x", Kind: Compute, Start: 10, End: 10})
	r.Add(Span{Component: "x", Kind: Compute, Start: 10, End: 5})
	if len(r.Spans()) != 0 {
		t.Fatal("degenerate spans recorded")
	}
}

func TestSpansSortedByStart(t *testing.T) {
	r := New()
	r.Add(Span{Component: "b", Kind: Compute, Start: 20, End: 30})
	r.Add(Span{Component: "a", Kind: Compute, Start: 0, End: 10})
	s := r.Spans()
	if len(s) != 2 || s[0].Component != "a" {
		t.Fatalf("spans = %+v", s)
	}
}

func TestTotalsAggregate(t *testing.T) {
	r := New()
	r.Add(Span{Component: "t0", Kind: Compute, Start: 0, End: 10})
	r.Add(Span{Component: "t0", Kind: Compute, Start: 20, End: 25})
	r.Add(Span{Component: "t0", Kind: Blocked, Start: 10, End: 20})
	r.Add(Span{Component: "acc", Kind: AccelBusy, Start: 0, End: 40})
	tot := r.Totals()
	if tot["t0"][Compute] != 15 {
		t.Fatalf("compute total = %v", tot["t0"][Compute])
	}
	if tot["t0"][Blocked] != 10 {
		t.Fatalf("blocked total = %v", tot["t0"][Blocked])
	}
	if tot["acc"][AccelBusy] != 40 {
		t.Fatalf("accel total = %v", tot["acc"][AccelBusy])
	}
}

func TestDumpFormat(t *testing.T) {
	r := New()
	r.Add(Span{Component: "main#0", Kind: Compute, Start: 0, End: vclock.Time(vclock.Millisecond)})
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "main#0") || !strings.Contains(out, "compute=1ms") {
		t.Fatalf("dump = %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Compute: "compute", Blocked: "blocked", MMIO: "mmio",
		AccelBusy: "accel", DMASpan: "dma", WarpSpan: "warp", Kind(99): "?",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := New()
	r.Add(Span{Component: "main#0", Kind: Compute, Start: 0, End: vclock.Time(vclock.Microsecond)})
	r.Add(Span{Component: "jpeg", Kind: AccelBusy, Start: 500, End: 1500, Label: "task0"})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] != "compute" {
		t.Fatalf("event 0 = %v", events[0])
	}
	if events[1]["name"] != "accel:task0" {
		t.Fatalf("event 1 name = %v", events[1]["name"])
	}
}
