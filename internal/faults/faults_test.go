package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if got := in.Hit(SiteChanSend); got != nil {
		t.Fatalf("nil injector fired %v", got)
	}
	if in.Attempt() != 0 {
		t.Fatalf("nil injector attempt = %d", in.Attempt())
	}
	if NewInjector(1, 0, nil) != nil {
		t.Fatal("empty plan should build a nil injector")
	}
}

func TestScheduledHitFiresExactlyOnce(t *testing.T) {
	in := NewInjector(42, 0, []Fault{{Site: SiteDeviceDispatch, Op: OpFail, Hit: 3}})
	var fired []int64
	for i := 0; i < 6; i++ {
		if inj := in.Hit(SiteDeviceDispatch); inj != nil {
			fired = append(fired, inj.HitN)
			if inj.Op != OpFail {
				t.Fatalf("op = %v, want fail", inj.Op)
			}
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at hits %v, want exactly [3]", fired)
	}
}

func TestDefaultHitIsFirstCrossing(t *testing.T) {
	in := NewInjector(42, 0, []Fault{{Site: SiteStoreGet, Op: OpDelay, Delay: 500}})
	inj := in.Hit(SiteStoreGet)
	if inj == nil || inj.HitN != 1 || inj.Delay != 500 {
		t.Fatalf("first crossing = %+v, want hit 1 delay 500", inj)
	}
	if in.Hit(SiteStoreGet) != nil {
		t.Fatal("hit-0 fault fired twice")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := NewInjector(7, 0, []Fault{{Site: SiteChanSend, Op: OpFail, Hit: 1}})
	if in.Hit(SiteChanRecv) != nil {
		t.Fatal("fault fired at the wrong site")
	}
	if in.Hit(SiteChanSend) == nil {
		t.Fatal("fault did not fire at its own site")
	}
}

func TestAttemptWindowExpires(t *testing.T) {
	plan := []Fault{{Site: SitePoolWorker, Op: OpFail, Hit: 1, Attempts: 2}}
	for attempt, want := range map[int]bool{0: true, 1: true, 2: false, 5: false} {
		in := NewInjector(9, attempt, plan)
		fired := in.Hit(SitePoolWorker) != nil
		if fired != want {
			t.Fatalf("attempt %d: fired=%v, want %v", attempt, fired, want)
		}
	}
}

func TestRateIsDeterministicPerSeedAndAttempt(t *testing.T) {
	plan := []Fault{{Site: SiteChanRecv, Op: OpFail, Rate: 0.3}}
	pattern := func(seed uint64, attempt int) string {
		in := NewInjector(seed, attempt, plan)
		out := ""
		for i := 0; i < 64; i++ {
			if in.Hit(SiteChanRecv) != nil {
				out += "X"
			} else {
				out += "."
			}
		}
		return out
	}
	a, b := pattern(123, 0), pattern(123, 0)
	if a != b {
		t.Fatalf("same seed+attempt produced different patterns:\n%s\n%s", a, b)
	}
	if pattern(123, 0) == pattern(123, 1) {
		t.Fatal("different attempts should draw different rate patterns")
	}
	if pattern(123, 0) == pattern(124, 0) {
		t.Fatal("different seeds should draw different rate patterns")
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	inj := &Injected{Site: SiteChanSend, Op: OpFail, HitN: 2, Attempt: 1}
	if !errors.Is(inj, ErrInjected) {
		t.Fatal("Injected must unwrap to ErrInjected")
	}
	wrapped := fmt.Errorf("run failed: %w", inj)
	if !IsInjected(wrapped) {
		t.Fatal("IsInjected must see through wrapping")
	}
	if IsInjected(errors.New("ordinary")) {
		t.Fatal("ordinary errors are not injected")
	}
	if IsInjected("a panic string") {
		t.Fatal("non-error panic values are not injected")
	}
}

func TestFiredCountersAdvance(t *testing.T) {
	before := FiredTotal()
	in := NewInjector(1, 0, []Fault{{Site: SiteStorePut, Op: OpFail, Hit: 1}})
	in.Hit(SiteStorePut)
	if FiredTotal() != before+1 {
		t.Fatalf("FiredTotal did not advance: %d -> %d", before, FiredTotal())
	}
	sites, counts := FiredBySite()
	found := false
	for i, s := range sites {
		if s == SiteStorePut && counts[i] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("FiredBySite missing store.put")
	}
}

func TestParseOp(t *testing.T) {
	if op, err := ParseOp("fail"); err != nil || op != OpFail {
		t.Fatalf("ParseOp(fail) = %v, %v", op, err)
	}
	if op, err := ParseOp("delay"); err != nil || op != OpDelay {
		t.Fatalf("ParseOp(delay) = %v, %v", op, err)
	}
	if _, err := ParseOp("explode"); err == nil {
		t.Fatal("ParseOp must reject unknown ops")
	}
}

func TestKnownSite(t *testing.T) {
	for _, s := range Sites() {
		if !KnownSite(s) {
			t.Fatalf("site %s not known to KnownSite", s)
		}
	}
	if KnownSite("chan.teleport") {
		t.Fatal("unknown site accepted")
	}
}
