// Package faults is the deterministic fault-injection layer: named
// injection sites threaded through the simulation stack (simbricks
// channel send/recv, NEX device dispatch, checkpoint store get/put,
// sweep pool workers) fire scheduled or seeded-probabilistic faults
// that reproduce byte-identically run to run.
//
// Determinism is the whole point. A fault schedule is part of the
// experiment spec (experiments.Spec.Faults), so a failing run is a
// *spec*: re-submitting it re-fires the same fault at the same hit of
// the same site, which is what makes chaos findings debuggable and lets
// the fault-matrix test assert exact outcomes. The package is
// simlint-clean — no wall clock, no global math/rand; probabilistic
// firing draws from xrand streams derived from the run's seed and the
// caller's attempt number.
//
// An Injector is created per run attempt. Engines and stores call
// Hit(site) at each site crossing; a nil Injector (the default
// everywhere) makes every crossing a no-op, so fault-free runs execute
// the exact instruction path they always did.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nexsim/internal/xrand"
)

// Injection sites. Each names one chokepoint in the stack; the DESIGN.md
// fault-model section documents where each is checked.
const (
	// SiteChanSend / SiteChanRecv: simbricks channel message encode and
	// decode — the co-simulation transport (a lost or delayed message).
	SiteChanSend = "chan.send"
	SiteChanRecv = "chan.recv"
	// SiteDeviceDispatch: a NEX device-bound trap (MMIO interaction or
	// tick synchronization point) — the accelerator dispatch path.
	SiteDeviceDispatch = "device.dispatch"
	// SiteStoreGet / SiteStorePut: checkpoint prefix-store lookups and
	// publishes — degraded cache I/O.
	SiteStoreGet = "store.get"
	SiteStorePut = "store.put"
	// SitePoolWorker: the sweep-pool worker picking up a run — a sick
	// worker (stall or crash) at job start.
	SitePoolWorker = "pool.worker"
)

// Sites returns every known injection site, sorted.
func Sites() []string {
	return []string{
		SiteChanRecv, SiteChanSend, SiteDeviceDispatch,
		SitePoolWorker, SiteStoreGet, SiteStorePut,
	}
}

// KnownSite reports whether name is a registered injection site.
func KnownSite(name string) bool {
	for _, s := range Sites() {
		if s == name {
			return true
		}
	}
	return false
}

// Op is what a firing fault does at its site.
type Op int

const (
	// OpFail aborts the operation: engine sites panic with the *Injected
	// (recovered into an error at the run boundary), store sites degrade
	// to a cache miss.
	OpFail Op = iota
	// OpDelay lets the operation proceed late: virtual-time sites shift
	// time forward by Delay picoseconds, host-side sites stall the
	// worker briefly.
	OpDelay
)

func (o Op) String() string {
	if o == OpDelay {
		return "delay"
	}
	return "fail"
}

// ParseOp maps the spec's wire spelling onto an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "fail":
		return OpFail, nil
	case "delay":
		return OpDelay, nil
	default:
		return 0, fmt.Errorf("faults: unknown op %q (want fail or delay)", s)
	}
}

// Fault is one scheduled (or probabilistic) fault in a run's plan.
type Fault struct {
	Site string
	Op   Op
	// Hit fires the fault on the nth crossing of Site (1-based). 0 with
	// Rate 0 means the first crossing; 0 with Rate > 0 means every
	// crossing is a candidate.
	Hit int64
	// Attempts arms the fault only while the caller's attempt number is
	// below it (so a retry beyond Attempts succeeds deterministically —
	// the self-healing path's test hook). 0 arms it on every attempt.
	Attempts int
	// Rate fires the fault probabilistically on each crossing, drawn
	// from a stream seeded by (seed, attempt, plan index) — reproducible
	// chaos. 0 means scheduled-only (Hit).
	Rate float64
	// Delay is the virtual delay in picoseconds for OpDelay (host-side
	// sites convert it to a bounded wall stall).
	Delay int64
}

// ErrInjected marks every injected failure; errors.Is(err, ErrInjected)
// classifies a failure as transient (retryable) rather than
// deterministic.
var ErrInjected = errors.New("injected fault")

// Injected is the error (and panic value, at engine sites) a firing
// OpFail fault produces.
type Injected struct {
	Site    string
	Op      Op
	HitN    int64 // which crossing of the site fired (1-based)
	Attempt int
	Delay   int64 // picoseconds, OpDelay only
}

// Error implements error.
func (e *Injected) Error() string {
	return fmt.Sprintf("faults: %s %s at hit %d (attempt %d)", e.Op, e.Site, e.HitN, e.Attempt)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *Injected) Unwrap() error { return ErrInjected }

// IsInjected reports whether v (an error or a recovered panic value) is
// an injected fault.
func IsInjected(v any) bool {
	err, ok := v.(error)
	return ok && errors.Is(err, ErrInjected)
}

// Injector evaluates a run attempt's fault plan at each site crossing.
// Methods are safe on a nil receiver (every call is a cheap no-op), so
// call sites never branch on configuration. An Injector is also safe
// for concurrent use — sites may be crossed from pool workers.
type Injector struct {
	attempt int

	mu     sync.Mutex
	counts map[string]int64
	bySite map[string][]plannedFault
}

type plannedFault struct {
	f   Fault
	rng *xrand.Stream // per-fault stream for Rate draws
}

// NewInjector builds the injector for one run attempt. seed should
// derive from the spec (same spec, same schedule); attempt distinguishes
// retries so Attempts-windowed faults can expire and Rate draws differ
// across attempts. A nil or empty plan returns nil — the no-op injector.
func NewInjector(seed uint64, attempt int, plan []Fault) *Injector {
	if len(plan) == 0 {
		return nil
	}
	root := xrand.New(seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	in := &Injector{
		attempt: attempt,
		counts:  make(map[string]int64),
		bySite:  make(map[string][]plannedFault),
	}
	for i, f := range plan {
		in.bySite[f.Site] = append(in.bySite[f.Site],
			plannedFault{f: f, rng: root.Derive(fmt.Sprintf("fault-%d-%s", i, f.Site))})
	}
	return in
}

// Attempt reports which run attempt this injector belongs to.
func (in *Injector) Attempt() int {
	if in == nil {
		return 0
	}
	return in.attempt
}

// Hit records one crossing of site and returns the fault that fires
// there, or nil. Exactly one fault fires per crossing (plan order wins
// ties). The per-site hit counter advances on every crossing, fired or
// not, so schedules stay stable as faults are added.
func (in *Injector) Hit(site string) *Injected {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[site]++
	n := in.counts[site]
	for i := range in.bySite[site] {
		pf := &in.bySite[site][i]
		if pf.f.Attempts > 0 && in.attempt >= pf.f.Attempts {
			continue
		}
		fire := false
		switch {
		case pf.f.Rate > 0:
			fire = pf.rng.Float64() < pf.f.Rate
		case pf.f.Hit == 0:
			fire = n == 1
		default:
			fire = n == pf.f.Hit
		}
		if !fire {
			continue
		}
		recordFired(site)
		return &Injected{Site: site, Op: pf.f.Op, HitN: n, Attempt: in.attempt, Delay: pf.f.Delay}
	}
	return nil
}

// Process-global observability counters: how many faults actually fired,
// by site. The fault-matrix test and /metrics read these; they are
// monotonic, so readers must diff.
var (
	firedMu     sync.Mutex
	firedBySite = map[string]int64{}
)

func recordFired(site string) {
	firedMu.Lock()
	firedBySite[site]++
	firedMu.Unlock()
}

// FiredTotal reports how many faults have fired process-wide.
func FiredTotal() int64 {
	firedMu.Lock()
	defer firedMu.Unlock()
	var t int64
	for _, n := range firedBySite {
		t += n
	}
	return t
}

// FiredBySite returns a copy of the per-site fired counters with keys
// sorted (deterministic rendering).
func FiredBySite() (sites []string, counts []int64) {
	firedMu.Lock()
	defer firedMu.Unlock()
	for s := range firedBySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	counts = make([]int64, len(sites))
	for i, s := range sites {
		counts[i] = firedBySite[s]
	}
	return sites, counts
}
