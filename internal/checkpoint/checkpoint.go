// Package checkpoint serializes deterministic engine snapshots to
// content-addressed blobs and keeps them in a bounded in-memory store.
//
// A checkpoint captures the state a deterministic engine needs to
// continue a run from a mid-execution halt point: the NEX scheduler
// state and resume journal (internal/nex), and per-device dynamic state
// (LPN markings, DSim DMA queues). Because every engine in this
// repository is deterministic, two runs that execute the same prefix
// produce byte-identical snapshot blobs — so the SHA-256 of a blob (or
// of the prefix's normalized spec) is a true content address, and a
// sweep whose points share a prefix can run it once, snapshot, and fork
// (the SimBricks checkpointing workflow, and LiveStack's snapshot/fork,
// on this repository's engines).
//
// The encoding is a fixed little-endian binary layout written through
// Encoder and read back through Decoder. It deliberately avoids
// encoding/gob and reflection: the byte layout must be a pure function
// of the logical state, with no map-iteration or type-registration
// order leaking in.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
)

// Magic identifies a checkpoint blob; Version gates layout changes.
const (
	Magic   = "NXCKPT"
	Version = 1
)

// ErrCorrupt reports a malformed or truncated blob.
var ErrCorrupt = errors.New("checkpoint: corrupt blob")

// Encoder writes the fixed little-endian checkpoint layout into a
// growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder whose buffer starts with the blob
// header (magic + version).
func NewEncoder() *Encoder {
	e := &Encoder{}
	e.buf = append(e.buf, Magic...)
	e.U32(Version)
	return e
}

// Bytes returns the encoded blob.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes8 appends a length-prefixed byte slice.
func (e *Encoder) Bytes8(p []byte) {
	e.U32(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads the layout back. Errors are sticky: after the first
// failure every subsequent read returns zero values, and Err reports
// the failure — callers validate once at the end of a section.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder validates the header and positions the decoder after it.
func NewDecoder(blob []byte) (*Decoder, error) {
	d := &Decoder{buf: blob}
	if len(blob) < len(Magic)+4 || string(blob[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d.off = len(Magic)
	if v := d.U32(); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	return d, nil
}

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Done reports whether the whole blob was consumed without error.
func (d *Decoder) Done() bool { return d.err == nil && d.off == len(d.buf) }

// Remaining reports how many bytes are left unconsumed.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, d.off)
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64-encoded int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes8 reads a length-prefixed byte slice (a copy-free view into the
// blob).
func (d *Decoder) Bytes8() []byte {
	n := int(d.U32())
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes8()) }

// Hash returns the blob's content address: the hex SHA-256 of its
// bytes. Identical prefixes hash identically because the encoding is a
// pure function of the engine state.
func Hash(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}
