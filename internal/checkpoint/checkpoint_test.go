package checkpoint

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(123456789)
	e.F64(3.14159)
	e.Bytes8([]byte{1, 2, 3})
	e.String("hello")
	e.Bytes8(nil)

	d, err := NewDecoder(e.Bytes())
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool mismatch")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bytes8(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes8 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes8(); len(got) != 0 {
		t.Errorf("nil Bytes8 = %v", got)
	}
	if !d.Done() {
		t.Errorf("Done = false: err=%v", d.Err())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func() []byte {
		e := NewEncoder()
		e.String("section")
		for i := 0; i < 100; i++ {
			e.I64(int64(i * 31))
			e.F64(float64(i) / 7)
		}
		return e.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical encodes differ")
	}
	if Hash(a) != Hash(b) {
		t.Fatalf("identical blobs hash differently")
	}
}

func TestDecoderCorrupt(t *testing.T) {
	if _, err := NewDecoder([]byte("BOGUS!")); err == nil {
		t.Errorf("bad magic accepted")
	}
	if _, err := NewDecoder(nil); err == nil {
		t.Errorf("empty blob accepted")
	}
	e := NewEncoder()
	e.U64(1)
	blob := e.Bytes()
	// Wrong version.
	bad := append([]byte(nil), blob...)
	bad[len(Magic)] = 99
	if _, err := NewDecoder(bad); err == nil {
		t.Errorf("bad version accepted")
	}
	// Truncation is a sticky error, not a panic.
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	_ = d.U64()
	_ = d.U64() // past the end
	if d.Err() == nil {
		t.Errorf("truncated read did not set Err")
	}
	_ = d.U32() // reads after error stay safe
	if d.Done() {
		t.Errorf("Done = true on failed decode")
	}
	// Absurd length prefix must not allocate or panic.
	e2 := NewEncoder()
	e2.U32(0xffffffff)
	d2, err := NewDecoder(e2.Bytes())
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if got := d2.Bytes8(); got != nil {
		t.Errorf("oversized Bytes8 returned data")
	}
	if d2.Err() == nil {
		t.Errorf("oversized Bytes8 did not set Err")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(100)
	blob := func(n int) []byte { return make([]byte, n) }
	s.Put("a", blob(40))
	s.Put("b", blob(40))
	s.Put("c", blob(40)) // evicts a
	if _, ok := s.Get("a"); ok {
		t.Errorf("a survived eviction")
	}
	if _, ok := s.Get("b"); !ok {
		t.Errorf("b evicted early")
	}
	// b is now most recently used; inserting d should evict c.
	s.Put("d", blob(40))
	if _, ok := s.Get("c"); ok {
		t.Errorf("c survived eviction despite being LRU")
	}
	if _, ok := s.Get("b"); !ok {
		t.Errorf("b evicted despite recent use")
	}
	st := s.Stats()
	if st.Entries != 2 || st.UsedBytes != 80 {
		t.Errorf("stats = %+v, want 2 entries / 80 bytes", st)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	// A blob over the whole budget is not cached.
	s.Put("huge", blob(200))
	if _, ok := s.Get("huge"); ok {
		t.Errorf("over-budget blob cached")
	}
}

func TestStoreNegativeEntry(t *testing.T) {
	s := NewStore(0)
	s.Put("done", nil)
	blob, ok := s.Get("done")
	if !ok {
		t.Fatalf("negative entry not found")
	}
	if blob != nil {
		t.Fatalf("negative entry has data")
	}
}

func TestStoreUpdateExisting(t *testing.T) {
	s := NewStore(100)
	s.Put("k", make([]byte, 60))
	s.Put("k", make([]byte, 30))
	if st := s.Stats(); st.Entries != 1 || st.UsedBytes != 30 {
		t.Errorf("stats after update = %+v", st)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s := NewStore(0)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		calls.Add(1)
		close(started)
		<-release
		return []byte("blob"), nil
	}

	var wg sync.WaitGroup
	var mineCount atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob, mine, err := s.GetOrCompute("k", compute)
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
			if string(blob) != "blob" {
				t.Errorf("blob = %q", blob)
			}
			if mine {
				mineCount.Add(1)
			}
		}()
	}
	<-started
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	if mineCount.Load() != 1 {
		t.Errorf("mine reported by %d callers, want 1", mineCount.Load())
	}
	// Subsequent calls hit the cache.
	if _, mine, _ := s.GetOrCompute("k", compute); mine {
		t.Errorf("cached key recomputed")
	}
}

func TestGetOrComputeErrorRetries(t *testing.T) {
	s := NewStore(0)
	var calls atomic.Int64
	_, _, err := s.GetOrCompute("k", func() ([]byte, error) {
		calls.Add(1)
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatalf("error swallowed")
	}
	// Failure is not cached: the next caller recomputes.
	blob, mine, err := s.GetOrCompute("k", func() ([]byte, error) {
		calls.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || !mine || string(blob) != "ok" {
		t.Fatalf("retry: blob=%q mine=%v err=%v", blob, mine, err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
}

func TestGetOrComputeConcurrentError(t *testing.T) {
	// Waiters behind a failing producer must not hang: one gets promoted
	// to retry.
	s := NewStore(0)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob, _, err := s.GetOrCompute("k", func() ([]byte, error) {
				if calls.Add(1) == 1 {
					return nil, fmt.Errorf("first fails")
				}
				return []byte("ok"), nil
			})
			if err == nil && string(blob) != "ok" {
				t.Errorf("blob = %q", blob)
			}
		}()
	}
	wg.Wait()
}
