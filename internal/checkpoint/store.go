package checkpoint

import (
	"container/list"
	"sync"
)

// Store is a byte-budget-bounded, LRU-evicting, in-memory checkpoint
// store with single-flight computation: concurrent requests for the
// same key block on one producer instead of each re-running the prefix.
//
// A key is any stable identifier for the prefix (the planner uses the
// SHA-256 of the prefix's canonical spec JSON). A stored blob may be
// nil: a nil entry is a *negative* checkpoint recording that the prefix
// ran to completion without reaching a snapshot point, so future
// requests skip straight to a full run instead of re-probing.
type Store struct {
	mu      sync.Mutex
	budget  int64 // max total blob bytes; <=0 means unbounded
	used    int64
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *entry
	flights map[string]*flight
	// disk is the optional persistent tier (AttachDisk): puts write
	// through, memory misses fall through and promote hits.
	disk *DiskStore

	hits, misses, evictions uint64
}

type entry struct {
	key  string
	blob []byte
}

type flight struct {
	done chan struct{}
	blob []byte
	ok   bool
}

// NewStore returns a store bounded to budgetBytes of blob payload
// (header and key overhead is not counted). budgetBytes <= 0 means
// unbounded.
func NewStore(budgetBytes int64) *Store {
	return &Store{
		budget:  budgetBytes,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// AttachDisk adds a persistent tier: every Put also lands on disk
// (atomically), and a memory miss falls through to disk, promoting a
// hit back into memory. Attach before concurrent use; a nil d detaches.
func (s *Store) AttachDisk(d *DiskStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disk = d
}

// Get returns the blob stored under key. ok distinguishes "no entry"
// from a stored negative (nil blob, ok=true) entry.
func (s *Store) Get(key string) (blob []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		if s.disk != nil {
			if blob, ok := s.disk.Get(key); ok {
				// Promote without re-writing disk (memPut, not put).
				s.memPut(key, blob)
				s.hits++
				return blob, true
			}
		}
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*entry).blob, true
}

// Put stores blob under key (nil records a negative entry) and evicts
// least-recently-used entries until the byte budget holds. A blob
// larger than the whole budget is not cached at all.
func (s *Store) Put(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(key, blob)
}

// put is Put without locking; callers hold s.mu. The disk tier sees
// every put, including blobs too large for the memory budget — disk
// write errors are deliberately swallowed (the tier is an optimization,
// and the Stats counters surface persistent trouble).
func (s *Store) put(key string, blob []byte) {
	if s.disk != nil {
		_ = s.disk.Put(key, blob)
	}
	s.memPut(key, blob)
}

// memPut inserts into the memory tier only; callers hold s.mu.
func (s *Store) memPut(key string, blob []byte) {
	if s.budget > 0 && int64(len(blob)) > s.budget {
		return
	}
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*entry)
		s.used += int64(len(blob)) - int64(len(ent.blob))
		ent.blob = blob
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(&entry{key: key, blob: blob})
		s.entries[key] = el
		s.used += int64(len(blob))
	}
	for s.budget > 0 && s.used > s.budget {
		back := s.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*entry)
		s.order.Remove(back)
		delete(s.entries, ent.key)
		s.used -= int64(len(ent.blob))
		s.evictions++
	}
}

// GetOrCompute returns the blob for key, computing it at most once
// across concurrent callers. When the key is absent and no computation
// is in flight, compute() runs on the calling goroutine and its result
// is published to every waiter and stored; mine reports whether this
// caller ran compute. When compute returns an error the result is not
// cached, and one waiting caller is promoted to retry.
//
// compute should produce only the checkpoint blob (run the prefix and
// snapshot) — not the full simulation — so waiters unblock as soon as
// the shared prefix is available.
func (s *Store) GetOrCompute(key string, compute func() ([]byte, error)) (blob []byte, mine bool, err error) {
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.hits++
			s.order.MoveToFront(el)
			b := el.Value.(*entry).blob
			s.mu.Unlock()
			return b, false, nil
		}
		if s.disk != nil {
			if b, ok := s.disk.Get(key); ok {
				s.memPut(key, b)
				s.hits++
				s.mu.Unlock()
				return b, false, nil
			}
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.ok {
				return f.blob, false, nil
			}
			// The producer failed; loop to retry (possibly becoming the
			// new producer).
			continue
		}
		s.misses++
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		b, cerr := compute()

		s.mu.Lock()
		delete(s.flights, key)
		if cerr == nil {
			s.put(key, b)
			f.blob, f.ok = b, true
		}
		s.mu.Unlock()
		close(f.done)
		if cerr != nil {
			return nil, true, cerr
		}
		return b, true, nil
	}
}

// StoreStats is a point-in-time snapshot of store counters. The Disk
// fields stay zero until AttachDisk.
type StoreStats struct {
	Entries   int
	UsedBytes int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Disk      DiskStats
}

// Stats returns current counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Entries:   len(s.entries),
		UsedBytes: s.used,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
	if s.disk != nil {
		st.Disk = s.disk.Stats()
	}
	return st
}
