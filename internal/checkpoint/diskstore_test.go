package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("prefix snapshot payload")
	if err := d.Put("spec-abc", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("spec-abc")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, blob)
	}
	// Negative entry round-trips as (nil, true).
	if err := d.Put("spec-neg", nil); err != nil {
		t.Fatal(err)
	}
	got, ok = d.Get("spec-neg")
	if !ok || got != nil {
		t.Fatalf("negative Get = %v, %v; want nil, true", got, ok)
	}
	// Absent key is a miss.
	if _, ok := d.Get("spec-missing"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	st := d.Stats()
	if st.Puts != 2 || st.Hits != 2 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskStoreOverwrite(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("k", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("k")
	if !ok || string(got) != "v2-longer" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
}

// TestDiskStoreCorruption feeds the store truncated, bit-flipped and
// bad-magic files: each must read as a miss (never a panic or bad
// blob), bump the corrupt counter, and be removed so the next Get is a
// plain miss.
func TestDiskStoreCorruption(t *testing.T) {
	blob := []byte("some checkpoint bytes that are long enough to damage")
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flipped", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "BOGUS!")
			return c
		}},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("victim", blob); err != nil {
				t.Fatal(err)
			}
			path := d.path("victim")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get("victim"); ok {
				t.Fatalf("corrupt file read as hit: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not removed: stat err = %v", err)
			}
			st := d.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
			// Second Get is now a clean miss, not another corruption.
			if _, ok := d.Get("victim"); ok {
				t.Fatal("removed file read as hit")
			}
			if st := d.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("stats after re-read = %+v", st)
			}
		})
	}
}

// TestDiskStoreWrongKeyFile simulates a hash collision / tampered file:
// a file whose embedded key differs from the requested one is corrupt.
func TestDiskStoreWrongKeyFile(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("real-key", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Copy real-key's file into the slot where "other-key" would live.
	data, err := os.ReadFile(d.path("real-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("other-key"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("other-key"); ok {
		t.Fatal("file with mismatched embedded key read as hit")
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
}

// TestDiskStoreSweepsTempFiles proves a crashed writer's temp file is
// cleaned up on open and never read as an entry.
func TestDiskStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "tmp-123456")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived open: stat err = %v", err)
	}
}

// TestDiskStoreSurvivesReopen is the crash-recovery core: entries
// written by one DiskStore are read back byte-identical by a fresh one
// over the same directory (a restarted simd).
func TestDiskStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xA5}, 4096)
	if err := d1.Put("persist", blob); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get("persist")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("reopened Get = %d bytes, %v; want %d bytes", len(got), ok, len(blob))
	}
}

// TestStoreDiskWriteThroughAndPromotion wires a DiskStore behind a
// Store: Puts land on disk, and after the memory tier is wiped (a new
// Store over the same directory), Get promotes the disk entry back.
func TestStoreDiskWriteThroughAndPromotion(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStore(1 << 20)
	s1.AttachDisk(d1)
	s1.Put("warm", []byte("checkpoint"))
	s1.Put("neg", nil)

	// "Restart": fresh memory tier over the same directory.
	d2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(1 << 20)
	s2.AttachDisk(d2)
	blob, ok := s2.Get("warm")
	if !ok || string(blob) != "checkpoint" {
		t.Fatalf("Get after restart = %q, %v", blob, ok)
	}
	blob, ok = s2.Get("neg")
	if !ok || blob != nil {
		t.Fatalf("negative Get after restart = %v, %v; want nil, true", blob, ok)
	}
	// Promotion means the second read comes from memory: disk hit count
	// stays put.
	before := s2.Stats().Disk.Hits
	if _, ok := s2.Get("warm"); !ok {
		t.Fatal("promoted entry lost")
	}
	if after := s2.Stats().Disk.Hits; after != before {
		t.Fatalf("promoted read still went to disk: hits %d -> %d", before, after)
	}
	// GetOrCompute also sees the disk tier via Get... actually it checks
	// memory first; an entry only on disk must not recompute.
	d3, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(1 << 20)
	s3.AttachDisk(d3)
	blob, mine, err := s3.GetOrCompute("warm", func() ([]byte, error) {
		return nil, fmt.Errorf("must not recompute")
	})
	if err != nil || !mine && string(blob) != "checkpoint" {
		t.Fatalf("GetOrCompute after restart = %q, mine=%v, err=%v", blob, mine, err)
	}
	if string(blob) != "checkpoint" {
		t.Fatalf("GetOrCompute blob = %q", blob)
	}
}

// TestStoreDiskKeepsOversizedBlob: a blob larger than the memory budget
// is rejected by the LRU but still persisted, so it remains readable.
func TestStoreDiskKeepsOversizedBlob(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(16) // tiny memory budget
	s.AttachDisk(d)
	big := bytes.Repeat([]byte{1}, 64)
	s.Put("big", big)
	got, ok := s.Get("big")
	if !ok || !bytes.Equal(got, big) {
		t.Fatalf("oversized blob lost: ok=%v len=%d", ok, len(got))
	}
}

// TestStoreConcurrentGetPutRace hammers the LRU (with a disk tier
// attached) from many goroutines; run under -race this pins down the
// locking discipline around eviction, promotion and write-through.
func TestStoreConcurrentGetPutRace(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(1 << 10) // small enough to force constant eviction
	s.AttachDisk(d)
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%32)
				switch i % 3 {
				case 0:
					s.Put(key, bytes.Repeat([]byte{byte(i)}, 64))
				case 1:
					if blob, ok := s.Get(key); ok && len(blob) != 0 && len(blob) != 1 && len(blob) != 64 {
						t.Errorf("blob len %d", len(blob))
						return
					}
				default:
					_, _, _ = s.GetOrCompute(key, func() ([]byte, error) {
						return []byte{byte(i)}, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.UsedBytes > 1<<10 {
		t.Fatalf("budget exceeded after churn: %d bytes", st.UsedBytes)
	}
}
