package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// DiskStore persists checkpoint blobs (and negative entries) as one
// file per key under a directory, so prefix snapshots survive process
// restarts (simd -state-dir) and can be shared across processes.
//
// Crash safety comes from atomic publication: every Put writes to a
// temporary file in the same directory and renames it into place, so a
// reader (including a restarted simd) only ever sees complete files. A
// kill -9 mid-write leaves at most a stray temp file, which Open
// removes. Integrity comes from content verification: each file embeds
// its key and the SHA-256 of its blob, and Get re-hashes on read —
// a torn, bit-flipped, or foreign file is a miss, never bad state.
//
// The file layout (little-endian, mirroring the checkpoint encoding):
//
//	"NXDSK1"                magic
//	u8   flag               0 = negative entry, 1 = blob follows
//	u32  len(key) | key
//	u32  len(blob) | blob   (absent for negative entries)
//	32B  sha256(blob)       (sha256 of empty for negative entries)
type DiskStore struct {
	dir string

	// Counters (guarded by the owning Store's lock when attached, or
	// externally synchronized otherwise).
	hits, misses, corrupt, puts uint64
}

const diskMagic = "NXDSK1"

// NewDiskStore opens (creating if needed) a blob directory and sweeps
// any temp files a crashed writer left behind.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: disk store: %w", err)
	}
	for _, de := range names {
		if !de.IsDir() && len(de.Name()) > 4 && de.Name()[:4] == "tmp-" {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps a key to its file: the hex SHA-256 of the key, so arbitrary
// key strings never escape into filenames.
func (d *DiskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// Put persists blob under key (nil blob records a negative entry)
// atomically. Write errors are returned but safe to ignore: the disk
// tier is an optimization, never a correctness dependency.
func (d *DiskStore) Put(key string, blob []byte) error {
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	if blob == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(key)))
	buf.Write(lb[:])
	buf.WriteString(key)
	if blob != nil {
		binary.LittleEndian.PutUint32(lb[:], uint32(len(blob)))
		buf.Write(lb[:])
		buf.Write(blob)
	}
	sum := sha256.Sum256(blob)
	buf.Write(sum[:])

	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: disk put: %w", err)
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("checkpoint: disk put: %w", werr)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: disk put: %w", err)
	}
	d.puts++
	return nil
}

// Get loads the entry for key. ok distinguishes "no usable entry" from
// a hit; a negative entry returns (nil, true). Corrupt or mismatched
// files (bad magic, wrong key, failed checksum, truncation) are removed
// and reported as misses — the caller recomputes.
func (d *DiskStore) Get(key string) (blob []byte, ok bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.misses++
		return nil, false
	}
	blob, ok = decodeDiskEntry(data, key)
	if !ok {
		d.corrupt++
		_ = os.Remove(d.path(key))
		return nil, false
	}
	d.hits++
	return blob, true
}

// decodeDiskEntry validates one disk file against its expected key.
func decodeDiskEntry(data []byte, key string) (blob []byte, ok bool) {
	if len(data) < len(diskMagic)+1+4 || string(data[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	off := len(diskMagic)
	flag := data[off]
	off++
	kl := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+kl > len(data) || string(data[off:off+kl]) != key {
		return nil, false
	}
	off += kl
	if flag == 1 {
		if off+4 > len(data) {
			return nil, false
		}
		bl := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+bl > len(data) {
			return nil, false
		}
		blob = append([]byte(nil), data[off:off+bl]...)
		off += bl
	}
	if off+sha256.Size != len(data) {
		return nil, false
	}
	sum := sha256.Sum256(blob)
	if !bytes.Equal(sum[:], data[off:]) {
		return nil, false
	}
	return blob, true
}

// DiskStats is a point-in-time snapshot of disk-tier counters.
type DiskStats struct {
	Hits    uint64
	Misses  uint64
	Corrupt uint64
	Puts    uint64
}

// Stats returns current counters.
func (d *DiskStore) Stats() DiskStats {
	return DiskStats{Hits: d.hits, Misses: d.misses, Corrupt: d.corrupt, Puts: d.puts}
}
