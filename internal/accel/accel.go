// Package accel defines the interface between host simulators (NEX, the
// gem5-style engine, the reference engine) and accelerator simulators
// (DSim models and RTL-style cycle models).
//
// The contract mirrors the paper's adapter design (§5, §A.2): the host
// drives the device with register reads/writes and AdvanceUntil-style
// catch-up calls; the device drives the host with timed DMAs, zero-cost
// (functional) DMAs, and interrupts.
package accel

import (
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Device is an accelerator simulator as seen by a host engine.
//
// All methods are called from the host's single-threaded event loop. The
// host guarantees that `at` arguments are non-decreasing per device.
type Device interface {
	// Name identifies the device in traces.
	Name() string

	// RegRead reads a control register at byte offset off, at virtual
	// time `at`. The device must first internally catch up to `at`.
	RegRead(at vclock.Time, off mem.Addr) uint32

	// RegWrite writes a control register. Doorbell registers launch
	// tasks.
	RegWrite(at vclock.Time, off mem.Addr, v uint32)

	// Advance runs the device up to time t (the host's AdvanceUntil).
	// During the call the device may issue DMAs and raise interrupts
	// through its Host, all timestamped <= t.
	Advance(t vclock.Time)

	// NextEvent returns the earliest future time at which the device will
	// act on its own (complete a stage, issue a DMA, raise an interrupt),
	// or (vclock.Never, false) when idle. Hosts use it to fast-forward
	// idle devices (the FastForward primitive of §A.2) and to advance
	// time when all CPU threads are blocked.
	NextEvent() (vclock.Time, bool)

	// Stats returns cumulative device statistics.
	Stats() DeviceStats
}

// DeviceStats is the common statistics block devices expose.
type DeviceStats struct {
	TasksStarted   int64
	TasksCompleted int64
	BusyTime       vclock.Duration // time with >=1 task in flight
	DMABytes       int64
	HostSteps      int64 // internal simulation steps (cycles or LPN firings)
}

// Host is the environment a host engine provides to a device.
type Host interface {
	// DMA issues a timed memory access on behalf of the device through
	// the configured interconnect + cache hierarchy and returns its
	// completion time. It affects virtual time (queueing, bandwidth) but
	// moves no data.
	DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time

	// ZeroCostRead / ZeroCostWrite move data between host memory and the
	// device functionally, without affecting virtual time (the paper's
	// zero-cost DMA, implemented on gem5 with functional accesses and
	// natively supported by NEX).
	ZeroCostRead(addr mem.Addr, p []byte)
	ZeroCostWrite(addr mem.Addr, p []byte)

	// RaiseIRQ delivers an interrupt from the device at virtual time at.
	// Delivery timing at the software level is host-policy (e.g. NEX
	// hybrid synchronization delivers at interval boundaries).
	RaiseIRQ(at vclock.Time, vector int)
}

// Binding couples a device with the fabric it is attached through; host
// engines own the mapping from MMIO addresses to bindings.
type Binding struct {
	Device   Device
	MMIOBase mem.Addr
	MMIOSize uint64
}

// Contains reports whether addr falls in the binding's MMIO window.
func (b *Binding) Contains(addr mem.Addr) bool {
	return addr >= b.MMIOBase && uint64(addr) < uint64(b.MMIOBase)+b.MMIOSize
}
