package jpeg

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// DecodeStats captures content-dependent quantities the performance
// models (LPN and RTL-style) charge cycles for.
type DecodeStats struct {
	Width, Height int
	MCUs          int
	BlocksPerMCU  int
	BitsRead      int64   // total entropy-coded bits
	MCUBits       []int64 // entropy bits consumed per MCU
	NonZeroCoeffs int64
}

type component struct {
	id     byte
	hs, vs int // sampling factors
	quant  int // DQT id
	dcTab  int
	acTab  int
	dcPrev int32
	plane  []byte // decoded plane at (W/hsMax*hs, H/vsMax*vs)
	pw, ph int
}

// Decoder holds parsed stream state; one Decoder decodes one image.
type Decoder struct {
	quant   [4][64]int32
	dc      [4]*huffTable
	ac      [4]*huffTable
	comps   []*component
	w, h    int
	restart int // MCUs per restart interval (0 = none)
	stats   DecodeStats
}

// decodeCache memoizes functional decodes process-wide. The decode is a
// pure function of the bitstream, and both the DSim and RTL-style models
// (and repeated harness runs) decode identical corpora; caching removes
// this substrate cost from wall-clock comparisons without touching
// timing (see DESIGN.md §1). Cached images and stats are shared
// read-only. The mutex makes the cache safe under the parallel sweep
// executor, which runs independent simulations on concurrent workers.
var decodeCache = struct {
	sync.Mutex
	m map[uint64]*decodeResult
}{m: map[uint64]*decodeResult{}}

type decodeResult struct {
	img   *Image
	stats *DecodeStats
	err   error
}

func fnv64(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Decode parses and decodes a baseline JFIF bitstream. Results are
// memoized per bitstream; callers must treat the returned image and
// stats as immutable.
func Decode(data []byte) (*Image, *DecodeStats, error) {
	key := fnv64(data) ^ uint64(len(data))<<48
	decodeCache.Lock()
	r, ok := decodeCache.m[key]
	decodeCache.Unlock()
	if ok {
		return r.img, r.stats, r.err
	}
	// Decode outside the lock; concurrent workers may decode the same
	// stream once each, but the result is identical and immutable.
	img, stats, err := decodeUncached(data)
	decodeCache.Lock()
	decodeCache.m[key] = &decodeResult{img: img, stats: stats, err: err}
	decodeCache.Unlock()
	return img, stats, err
}

// decodeUncached is the actual decoder.
func decodeUncached(data []byte) (*Image, *DecodeStats, error) {
	d := &Decoder{}
	if len(data) < 4 || data[0] != 0xff || data[1] != 0xd8 {
		return nil, nil, fmt.Errorf("jpeg: missing SOI")
	}
	pos := 2
	for pos+4 <= len(data) {
		if data[pos] != 0xff {
			return nil, nil, fmt.Errorf("jpeg: expected marker at %d", pos)
		}
		m := data[pos+1]
		if m == 0xd9 { // EOI
			break
		}
		l := int(binary.BigEndian.Uint16(data[pos+2:]))
		if l < 2 || pos+2+l > len(data) {
			return nil, nil, fmt.Errorf("jpeg: bad segment length %d for marker %#x", l, m)
		}
		seg := data[pos+4 : pos+2+l]
		switch m {
		case 0xdb:
			if err := d.parseDQT(seg); err != nil {
				return nil, nil, err
			}
		case 0xc0, 0xc1:
			if err := d.parseSOF(seg); err != nil {
				return nil, nil, err
			}
		case 0xc2:
			return nil, nil, fmt.Errorf("jpeg: progressive not supported")
		case 0xc4:
			if err := d.parseDHT(seg); err != nil {
				return nil, nil, err
			}
		case 0xdd: // DRI
			if len(seg) < 2 {
				return nil, nil, fmt.Errorf("jpeg: short DRI")
			}
			d.restart = int(binary.BigEndian.Uint16(seg))
		case 0xda:
			if err := d.parseSOS(seg); err != nil {
				return nil, nil, err
			}
			img, err := d.decodeScan(data[pos+2+l:])
			if err != nil {
				return nil, nil, err
			}
			return img, &d.stats, nil
		default:
			// APPn/COM/etc: skip.
		}
		pos += 2 + l
	}
	return nil, nil, fmt.Errorf("jpeg: no SOS found")
}

func (d *Decoder) parseDQT(seg []byte) error {
	for len(seg) >= 65 {
		pq := seg[0] >> 4
		tq := seg[0] & 15
		if pq != 0 {
			return fmt.Errorf("jpeg: 16-bit quant tables not supported")
		}
		if tq > 3 {
			return fmt.Errorf("jpeg: bad DQT id %d", tq)
		}
		for i := 0; i < 64; i++ {
			d.quant[tq][zigzag[i]] = int32(seg[1+i])
		}
		seg = seg[65:]
	}
	return nil
}

func (d *Decoder) parseSOF(seg []byte) error {
	if len(seg) < 6 {
		return fmt.Errorf("jpeg: truncated SOF")
	}
	if seg[0] != 8 {
		return fmt.Errorf("jpeg: only 8-bit precision supported")
	}
	d.h = int(binary.BigEndian.Uint16(seg[1:]))
	d.w = int(binary.BigEndian.Uint16(seg[3:]))
	if d.w <= 0 || d.h <= 0 || d.w > 1<<14 || d.h > 1<<14 {
		return fmt.Errorf("jpeg: implausible dimensions %dx%d", d.w, d.h)
	}
	n := int(seg[5])
	if len(seg) < 6+3*n {
		return fmt.Errorf("jpeg: truncated SOF components")
	}
	for i := 0; i < n; i++ {
		c := seg[6+i*3:]
		comp := &component{
			id: c[0], hs: int(c[1] >> 4), vs: int(c[1] & 15), quant: int(c[2]),
		}
		if comp.hs < 1 || comp.hs > 4 || comp.vs < 1 || comp.vs > 4 || comp.quant > 3 {
			return fmt.Errorf("jpeg: bad component descriptor")
		}
		d.comps = append(d.comps, comp)
	}
	return nil
}

func (d *Decoder) parseDHT(seg []byte) error {
	for len(seg) >= 17 {
		class := seg[0] >> 4
		id := seg[0] & 15
		if class > 1 || id > 3 {
			return fmt.Errorf("jpeg: bad DHT class/id %d/%d", class, id)
		}
		var bits [16]byte
		copy(bits[:], seg[1:17])
		total := 0
		for _, b := range bits {
			total += int(b)
		}
		if len(seg) < 17+total {
			return fmt.Errorf("jpeg: truncated DHT")
		}
		vals := make([]byte, total)
		copy(vals, seg[17:17+total])
		t := buildHuff(bits, vals)
		if class == 0 {
			d.dc[id] = t
		} else {
			d.ac[id] = t
		}
		seg = seg[17+total:]
	}
	return nil
}

func (d *Decoder) parseSOS(seg []byte) error {
	if len(seg) < 1 {
		return fmt.Errorf("jpeg: truncated SOS")
	}
	n := int(seg[0])
	if len(seg) < 1+2*n {
		return fmt.Errorf("jpeg: truncated SOS components")
	}
	for i := 0; i < n; i++ {
		cs := seg[1+i*2]
		td := seg[2+i*2] >> 4
		ta := seg[2+i*2] & 15
		if td > 3 || ta > 3 {
			return fmt.Errorf("jpeg: bad table selector")
		}
		for _, c := range d.comps {
			if c.id == cs {
				c.dcTab = int(td)
				c.acTab = int(ta)
			}
		}
	}
	return nil
}

func (d *Decoder) decodeScan(ecs []byte) (*Image, error) {
	if len(d.comps) == 0 || d.w == 0 {
		return nil, fmt.Errorf("jpeg: SOS before SOF")
	}
	// A scan needs its Huffman tables.
	for _, c := range d.comps {
		if d.dc[c.dcTab] == nil || d.ac[c.acTab] == nil {
			return nil, fmt.Errorf("jpeg: missing huffman table")
		}
	}
	hsMax, vsMax := 1, 1
	blocksPerMCU := 0
	for _, c := range d.comps {
		if c.hs > hsMax {
			hsMax = c.hs
		}
		if c.vs > vsMax {
			vsMax = c.vs
		}
		blocksPerMCU += c.hs * c.vs
	}
	mcuW, mcuH := 8*hsMax, 8*vsMax
	mcusX := (d.w + mcuW - 1) / mcuW
	mcusY := (d.h + mcuH - 1) / mcuH

	for _, c := range d.comps {
		c.pw = mcusX * 8 * c.hs
		c.ph = mcusY * 8 * c.vs
		c.plane = make([]byte, c.pw*c.ph)
	}

	r := &bitReader{data: ecs}
	d.stats.Width, d.stats.Height = d.w, d.h
	d.stats.MCUs = mcusX * mcusY
	d.stats.BlocksPerMCU = blocksPerMCU

	var zz [64]int32
	var coef, pix [64]float64
	mcuIdx := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if d.restart > 0 && mcuIdx > 0 && mcuIdx%d.restart == 0 {
				// Restart marker: byte-align, consume RSTn, reset DC
				// predictors.
				if err := r.syncRestart(); err != nil {
					return nil, err
				}
				for _, c := range d.comps {
					c.dcPrev = 0
				}
			}
			mcuIdx++
			before := r.BitsRead
			for _, c := range d.comps {
				for by := 0; by < c.vs; by++ {
					for bx := 0; bx < c.hs; bx++ {
						if err := d.decodeBlock(r, c, &zz); err != nil {
							return nil, err
						}
						// Dequantize + un-zigzag.
						q := &d.quant[c.quant]
						for i := range coef {
							coef[i] = 0
						}
						for i := 0; i < 64; i++ {
							if zz[i] != 0 {
								coef[zigzag[i]] = float64(zz[i] * q[zigzag[i]])
								d.stats.NonZeroCoeffs++
							}
						}
						idct8x8(&coef, &pix)
						// Store into the component plane.
						x0 := (mx*c.hs + bx) * 8
						y0 := (my*c.vs + by) * 8
						for y := 0; y < 8; y++ {
							row := (y0+y)*c.pw + x0
							for x := 0; x < 8; x++ {
								c.plane[row+x] = clamp8(int32(pix[y*8+x] + 128.5))
							}
						}
					}
				}
			}
			d.stats.MCUBits = append(d.stats.MCUBits, r.BitsRead-before)
		}
	}
	d.stats.BitsRead = r.BitsRead

	return d.compose(hsMax, vsMax), nil
}

func (d *Decoder) decodeBlock(r *bitReader, c *component, zz *[64]int32) error {
	for i := range zz {
		zz[i] = 0
	}
	// DC.
	s, err := d.dc[c.dcTab].decode(r)
	if err != nil {
		return err
	}
	diff, err := receiveExtend(r, int(s))
	if err != nil {
		return err
	}
	c.dcPrev += diff
	zz[0] = c.dcPrev
	// AC.
	for k := 1; k < 64; {
		rs, err := d.ac[c.acTab].decode(r)
		if err != nil {
			return err
		}
		run, size := int(rs>>4), int(rs&15)
		if size == 0 {
			if run == 15 { // ZRL
				k += 16
				continue
			}
			break // EOB
		}
		k += run
		if k > 63 {
			return fmt.Errorf("jpeg: coefficient index out of range")
		}
		v, err := receiveExtend(r, size)
		if err != nil {
			return err
		}
		zz[k] = v
		k++
	}
	return nil
}

// compose upsamples the component planes and converts to RGB24.
func (d *Decoder) compose(hsMax, vsMax int) *Image {
	img := NewImage(d.w, d.h)
	y, cb, cr := d.comps[0], d.comps[0], d.comps[0]
	if len(d.comps) >= 3 {
		cb, cr = d.comps[1], d.comps[2]
	}
	for py := 0; py < d.h; py++ {
		for px := 0; px < d.w; px++ {
			yy := int32(samplePlane(y, px, py, hsMax, vsMax))
			var cbv, crv int32 = 128, 128
			if len(d.comps) >= 3 {
				cbv = int32(samplePlane(cb, px, py, hsMax, vsMax))
				crv = int32(samplePlane(cr, px, py, hsMax, vsMax))
			}
			cbv -= 128
			crv -= 128
			i := (py*d.w + px) * 3
			img.Pix[i] = clamp8(yy + (359*crv)>>8)
			img.Pix[i+1] = clamp8(yy - ((88*cbv + 183*crv) >> 8))
			img.Pix[i+2] = clamp8(yy + (454*cbv)>>8)
		}
	}
	return img
}

// samplePlane reads a component plane at image coordinates, applying
// nearest-neighbour chroma upsampling.
func samplePlane(c *component, px, py, hsMax, vsMax int) byte {
	x := px * c.hs / hsMax
	y := py * c.vs / vsMax
	if x >= c.pw {
		x = c.pw - 1
	}
	if y >= c.ph {
		y = c.ph - 1
	}
	return c.plane[y*c.pw+x]
}
