package jpeg

import "math"

// cosTable[u][x] = cos((2x+1)uπ/16) * c(u), precomputed for the 1-D DCT.
var cosTable [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		c := 1.0
		if u == 0 {
			c = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			cosTable[u][x] = c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// fdct8x8 computes the forward 8x8 DCT of a level-shifted block
// (values in [-128,127]), producing unquantized coefficients.
func fdct8x8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s / 2
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			out[v*8+u] = s / 2
		}
	}
}

// idct8x8 computes the inverse 8x8 DCT of dequantized coefficients,
// producing level-shifted samples.
func idct8x8(in *[64]float64, out *[64]float64) {
	var tmp [64]float64
	// Rows.
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += in[v*8+u] * cosTable[u][x]
			}
			tmp[v*8+x] = s / 2
		}
	}
	// Columns.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += tmp[v*8+x] * cosTable[v][y]
			}
			out[y*8+x] = s / 2
		}
	}
}
