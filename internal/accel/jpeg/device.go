package jpeg

import (
	"encoding/binary"

	"nexsim/internal/accel"
	"nexsim/internal/dsim"
	"nexsim/internal/lpn"
	"nexsim/internal/lpnlang"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Register map (byte offsets from the device's MMIO base).
const (
	RegDoorbell  = 0x00 // W: physical address of a task descriptor
	RegStatus    = 0x04 // R: count of completed tasks (monotonic)
	RegBusy      = 0x08 // R: tasks in flight
	RegIRQEnable = 0x0c // W: 1 = raise IRQVector on task completion
)

// IRQVector is the interrupt vector the decoder raises on completion.
const IRQVector = 7

// DescSize is the size of a task descriptor in the task buffer:
// src (8) | srcLen (4) | dst (8) | pad (4).
const DescSize = 24

// Desc is a decode-task descriptor.
type Desc struct {
	Src    mem.Addr // bitstream address
	SrcLen uint32   // bitstream length
	Dst    mem.Addr // output RGB24 raster address
}

// EncodeDesc serializes a descriptor for the task buffer.
func EncodeDesc(d Desc) [DescSize]byte {
	var b [DescSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Src))
	binary.LittleEndian.PutUint32(b[8:], d.SrcLen)
	binary.LittleEndian.PutUint64(b[12:], uint64(d.Dst))
	return b
}

func decodeDesc(b []byte) Desc {
	return Desc{
		Src:    mem.Addr(binary.LittleEndian.Uint64(b[0:])),
		SrcLen: binary.LittleEndian.Uint32(b[8:]),
		Dst:    mem.Addr(binary.LittleEndian.Uint64(b[12:])),
	}
}

// rowInfo is the per-MCU-row work descriptor shared by both performance
// models.
type rowInfo struct {
	bits     int64 // entropy-coded bits in this row of MCUs
	blocks   int64 // 8x8 blocks
	inBytes  int64 // bitstream bytes fetched
	outBytes int64 // decoded RGB bytes written
}

// Timing parameters of the modeled decoder core (at the device clock):
// derived from the Ultra-Embedded core's structure — a bit-serial
// Huffman unit (~2 bits/cycle), two parallel IDCT engines (~42
// cycles/block), and an 8-byte/cycle memory interface.
const (
	huffBitsPerCycle = 2
	idctCyclesBlock  = 42
	idctUnits        = 2
	busBytesPerCycle = 8
	descFetchCycles  = 16
)

// Device is the DSim model of the JPEG decoder.
type Device struct {
	dsim.Base
	clk vclock.Hz

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	taskQ    *lpn.Place
	descResp *lpn.Place

	// FIFO of planned tasks, consumed by the dispatch stage. Head
	// cursors (not slice re-slicing) keep the backing arrays reusable
	// across tasks.
	planned     [][]rowInfo
	plannedHead int
	rowsLeft    []int // rows remaining per in-flight task, FIFO
	rowsHead    int

	// tokScratch is reused by the dispatch stage's OutFunc; the engine
	// consumes the returned slice synchronously.
	tokScratch []lpn.Token

	// DecodeErrors counts tasks whose bitstream failed to decode.
	DecodeErrors int64
}

// NewDevice builds a DSim JPEG decoder clocked at clk (the paper runs
// accelerators at 2GHz). Wire it to a host with SetHost before use.
func NewDevice(clk vclock.Hz) *Device {
	d := &Device{clk: clk}
	b := lpnlang.NewBuilder("jpegdec", clk)

	d.taskQ = b.Queue("tasks", 0)
	d.descResp = b.Queue("descResp", 0)
	rowQ := b.Queue("rows", 0)
	fetched := b.Queue("fetched", 0)
	huffed := b.Queue("huffed", 0)
	idcted := b.Queue("idcted", 0)
	stored := b.Queue("stored", 0)

	// Descriptor fetch.
	b.Stage("desc", d.taskQ, nil, b.Cycles(descFetchCycles),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.EmitDMA("DESC", d.descResp)(f, done)
		}))

	// Dispatch: expand the task into per-row tokens.
	b.Stage("dispatch", d.descResp, rowQ, b.Cycles(4),
		lpnlang.OutTokens(func(f *lpn.Firing, done vclock.Time) []lpn.Token {
			rows := d.planned[d.plannedHead]
			d.planned[d.plannedHead] = nil
			d.plannedHead++
			if d.plannedHead == len(d.planned) {
				d.planned, d.plannedHead = d.planned[:0], 0
			}
			out := d.tokScratch[:0]
			for _, r := range rows {
				out = append(out, lpn.Tok(done, r.bits, r.blocks, r.outBytes, r.inBytes))
			}
			d.tokScratch = out
			return out
		}))

	// Bitstream fetch: one LOAD DMA per row; downstream waits for the
	// DMA response (attrs ride along on the injected token).
	b.Stage("fetch", rowQ, nil, b.CyclesFunc(func(f *lpn.Firing) int64 {
		return 4 + f.Tok(0).Attrs[3]/busBytesPerCycle
	}), lpnlang.Effect(d.EmitDMA("BITS", fetched)))

	// Huffman decode: bit-serial, content-dependent.
	b.Stage("huffman", fetched, huffed, b.CyclesFunc(func(f *lpn.Firing) int64 {
		return f.Tok(0).Attrs[0] / huffBitsPerCycle
	}))

	// IDCT: two parallel block engines.
	b.Stage("idct", huffed, idcted, b.CyclesFunc(func(f *lpn.Firing) int64 {
		return f.Tok(0).Attrs[1] * idctCyclesBlock / idctUnits
	}), lpnlang.Servers(idctUnits))

	// Output writeback: one STORE DMA per row.
	b.Stage("store", idcted, nil, b.CyclesFunc(func(f *lpn.Firing) int64 {
		return f.Tok(0).Attrs[2] / busBytesPerCycle
	}), lpnlang.Effect(d.EmitDMA("OUT", stored)))

	// Row completion; the last row of a task completes it.
	b.Stage("finish", stored, nil, nil,
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.rowDone(f.Time)
		}))

	d.Init("jpeg", nil, b.MustBuild())
	return d
}

// SetHost wires the device to its host engine.
func (d *Device) SetHost(h accel.Host) { d.Host = h }

func (d *Device) rowDone(at vclock.Time) {
	d.rowsLeft[d.rowsHead]--
	if d.rowsLeft[d.rowsHead] > 0 {
		return
	}
	d.rowsHead++
	if d.rowsHead == len(d.rowsLeft) {
		d.rowsLeft, d.rowsHead = d.rowsLeft[:0], 0
	}
	d.completed++
	d.inFlight--
	d.TaskCompleted(at)
	if d.irqEnabled {
		d.Host.RaiseIRQ(at, IRQVector)
	}
}

// RegRead implements accel.Device.
func (d *Device) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *Device) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	}
}

// startTask runs the functionality track for the task and plans the
// performance track's tokens (paper §4.3: functional-first with
// zero-cost DMA, then LPN replay).
func (d *Device) startTask(at vclock.Time, descAddr mem.Addr) {
	d.TaskStarted(at)
	d.inFlight++
	rec := d.Recorder()

	// Descriptor fetch (recorded under DESC; replayed by the desc stage).
	descBytes := rec.ReadDMA("DESC", descAddr, DescSize)
	desc := decodeDesc(descBytes)

	// Functional decode of the full bitstream.
	bitstream := make([]byte, desc.SrcLen)
	d.Host.ZeroCostRead(desc.Src, bitstream)
	img, stats, err := Decode(bitstream)

	var rows []rowInfo
	if err != nil {
		// A malformed bitstream: the hardware signals completion with no
		// output after scanning the input once.
		d.DecodeErrors++
		rec.ReadDMA("BITS", desc.Src, int(desc.SrcLen))
		rec.WriteDMA("OUT", desc.Dst, nil)
		rows = []rowInfo{{bits: int64(desc.SrcLen) * 8, blocks: 1, inBytes: int64(desc.SrcLen), outBytes: 1}}
	} else {
		rows = d.planRows(rec, desc, img, stats, bitstream)
	}

	d.planned = append(d.planned, rows)
	d.rowsLeft = append(d.rowsLeft, len(rows))
	d.Net.Inject(d.taskQ, lpn.Tok(at, int64(len(rows))))
}

// planRows splits the decode into MCU-row work items and records their
// DMAs in pipeline order.
func (d *Device) planRows(rec *dsim.Recorder, desc Desc, img *Image, stats *DecodeStats, bitstream []byte) []rowInfo {
	// Derive MCU geometry from the stats.
	mcuPxH := 8
	if stats.BlocksPerMCU >= 6 {
		mcuPxH = 16
	}
	mcuPxW := mcuPxH // 4:2:0 and 4:4:4 are symmetric here
	mcusX := intCeil(stats.Width, mcuPxW)
	mcusY := intCeil(stats.Height, mcuPxH)

	// The bitstream region is fetched in per-row spans proportional to
	// each row's bit count (header bytes ride with the first row).
	total := int64(len(bitstream))
	var rows []rowInfo
	srcOff := int64(0)
	dstOff := int64(0)
	for ry := 0; ry < mcusY; ry++ {
		var bits int64
		for mx := 0; mx < mcusX; mx++ {
			idx := ry*mcusX + mx
			if idx < len(stats.MCUBits) {
				bits += stats.MCUBits[idx]
			}
		}
		inBytes := bits / 8
		if ry == mcusY-1 {
			inBytes = total - srcOff // remainder, including headers/EOI
		}
		if inBytes <= 0 {
			inBytes = 1
		}
		rowPxH := mcuPxH
		if (ry+1)*mcuPxH > stats.Height {
			rowPxH = stats.Height - ry*mcuPxH
		}
		outBytes := int64(stats.Width * rowPxH * 3)
		rec.ReadDMA("BITS", desc.Src+mem.Addr(srcOff), int(inBytes))
		rec.WriteDMA("OUT", desc.Dst+mem.Addr(dstOff),
			img.Pix[dstOff:dstOff+outBytes])
		rows = append(rows, rowInfo{
			bits:     bits,
			blocks:   int64(mcusX * stats.BlocksPerMCU),
			inBytes:  inBytes,
			outBytes: outBytes,
		})
		srcOff += inBytes
		dstOff += outBytes
	}
	return rows
}

func intCeil(a, b int) int { return (a + b - 1) / b }

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *Device) MayRaiseIRQ() bool { return d.irqEnabled }
