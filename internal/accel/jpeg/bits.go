package jpeg

import "fmt"

// bitWriter emits an entropy-coded segment with 0xFF byte stuffing.
type bitWriter struct {
	buf  []byte
	acc  uint32
	bits int
}

func (w *bitWriter) write(code uint32, n int) {
	if n == 0 {
		return
	}
	w.acc = w.acc<<uint(n) | (code & (1<<uint(n) - 1))
	w.bits += n
	for w.bits >= 8 {
		b := byte(w.acc >> uint(w.bits-8))
		w.buf = append(w.buf, b)
		if b == 0xff {
			w.buf = append(w.buf, 0x00) // byte stuffing
		}
		w.bits -= 8
	}
}

// flush pads the final partial byte with 1-bits (spec).
func (w *bitWriter) flush() {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.write(1<<uint(pad)-1, pad)
	}
}

// bitReader consumes an entropy-coded segment, removing stuffed zero
// bytes and stopping at markers. It counts consumed bits so performance
// models can charge cycles per bit.
type bitReader struct {
	data []byte
	pos  int
	acc  uint32
	bits int

	// BitsRead counts entropy-coded bits consumed (timing model input).
	BitsRead int64
}

func (r *bitReader) fill() error {
	for r.bits <= 24 {
		if r.pos >= len(r.data) {
			if r.bits > 0 {
				// Pad so trailing reads of the final partial byte work.
				r.acc <<= 8
				r.bits += 8
				continue
			}
			return fmt.Errorf("jpeg: entropy segment exhausted")
		}
		b := r.data[r.pos]
		if b == 0xff {
			if r.pos+1 < len(r.data) && r.data[r.pos+1] == 0x00 {
				r.pos += 2 // stuffed byte
			} else {
				// A marker: pad with ones; the scan is over.
				r.acc = r.acc<<8 | 0xff
				r.bits += 8
				continue
			}
		} else {
			r.pos++
		}
		r.acc = r.acc<<8 | uint32(b)
		r.bits += 8
	}
	return nil
}

// peek returns the next n bits without consuming.
func (r *bitReader) peek(n int) (uint32, error) {
	if r.bits < n {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	return (r.acc >> uint(r.bits-n)) & (1<<uint(n) - 1), nil
}

// take consumes n bits.
func (r *bitReader) take(n int) (uint32, error) {
	v, err := r.peek(n)
	if err != nil {
		return 0, err
	}
	r.bits -= n
	r.BitsRead += int64(n)
	return v, nil
}

// syncRestart byte-aligns the reader and consumes an RSTn marker
// (0xFFD0-0xFFD7) from the underlying stream.
func (r *bitReader) syncRestart() error {
	// Discard buffered bits back to the byte boundary; any bits already
	// pulled into the accumulator belong to the padding before the
	// marker.
	r.acc = 0
	r.bits = 0
	for r.pos+1 < len(r.data) {
		if r.data[r.pos] == 0xff && r.data[r.pos+1] >= 0xd0 && r.data[r.pos+1] <= 0xd7 {
			r.pos += 2
			return nil
		}
		r.pos++
	}
	return fmt.Errorf("jpeg: missing restart marker")
}

// huffTable is a canonical Huffman code table.
type huffTable struct {
	// Encoder view: code/size per symbol.
	code [256]uint32
	size [256]int
	// Decoder view: for each code length l (1..16), the smallest code of
	// that length, the largest, and the index of its first symbol.
	minCode [17]int32
	maxCode [17]int32
	valPtr  [17]int
	vals    []byte
}

// buildHuff constructs the table from BITS/HUFFVAL per Annex C.
func buildHuff(bits [16]byte, vals []byte) *huffTable {
	t := &huffTable{vals: vals}
	code := int32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		t.valPtr[l] = k
		t.minCode[l] = code
		n := int(bits[l-1])
		for i := 0; i < n; i++ {
			if k < len(vals) {
				sym := vals[k]
				t.code[sym] = uint32(code)
				t.size[sym] = l
			}
			code++
			k++
		}
		t.maxCode[l] = code - 1
		if n == 0 {
			t.maxCode[l] = -1
		}
		code <<= 1
	}
	return t
}

// decode reads one Huffman-coded symbol.
func (t *huffTable) decode(r *bitReader) (byte, error) {
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.take(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] && code >= t.minCode[l] {
			idx := t.valPtr[l] + int(code-t.minCode[l])
			if idx >= len(t.vals) {
				return 0, fmt.Errorf("jpeg: huffman index out of range")
			}
			return t.vals[idx], nil
		}
	}
	return 0, fmt.Errorf("jpeg: invalid huffman code")
}

// receiveExtend reads an s-bit magnitude value and sign-extends per F.2.2.1.
func receiveExtend(r *bitReader, s int) (int32, error) {
	if s == 0 {
		return 0, nil
	}
	v, err := r.take(s)
	if err != nil {
		return 0, err
	}
	x := int32(v)
	if x < 1<<uint(s-1) {
		x -= 1<<uint(s) - 1
	}
	return x, nil
}

// magnitude categorizes a coefficient per F.1.2.1.
func magnitude(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
