package jpeg

import (
	"nexsim/internal/app"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Driver is the software driver for the JPEG decoder, written against
// app.Env so the same code runs unmodified under every host engine. Per
// the paper (§3.2), the driver's descriptor writes go through the
// protected task buffer (trapping into the NEX runtime) and doorbells
// through MMIO.
type Driver struct {
	MMIOBase mem.Addr
	TaskBuf  mem.Addr // base of the descriptor ring
	Slots    int      // descriptor ring size

	slot      int
	submitted uint32
}

// NewDriver builds a driver over a device's MMIO window and a task
// buffer region.
func NewDriver(mmio mem.Addr, taskBuf mem.Addr, slots int) *Driver {
	if slots <= 0 {
		slots = 16
	}
	return &Driver{MMIOBase: mmio, TaskBuf: taskBuf, Slots: slots}
}

// EnableIRQ turns on completion interrupts.
func (dr *Driver) EnableIRQ(e app.Env) {
	e.MMIOWrite(dr.MMIOBase+RegIRQEnable, 1)
}

// Submit writes a descriptor into the next ring slot and rings the
// doorbell. It does not wait for completion.
func (dr *Driver) Submit(e app.Env, d Desc) {
	descAddr := dr.TaskBuf + mem.Addr(dr.slot*DescSize)
	dr.slot = (dr.slot + 1) % dr.Slots
	b := EncodeDesc(d)
	e.TaskWrite(descAddr, b[:])
	// No explicit tick: the doorbell MMIO below is itself the
	// synchronization point that flushes the descriptor write.
	e.MMIOWrite(dr.MMIOBase+RegDoorbell, uint32(descAddr))
	dr.submitted++
}

// Completed reads the device's completion counter.
func (dr *Driver) Completed(e app.Env) uint32 {
	return e.MMIORead(dr.MMIOBase + RegStatus)
}

// Submitted reports how many tasks this driver has issued.
func (dr *Driver) Submitted() uint32 { return dr.submitted }

// WaitAll polls the status register until every submitted task has
// completed, sleeping poll between checks.
func (dr *Driver) WaitAll(e app.Env, poll vclock.Duration) {
	for dr.Completed(e) < dr.submitted {
		if poll > 0 {
			e.Sleep(poll)
		}
		// poll <= 0 spins on the status register (the common driver
		// behaviour); each read costs the MMIO round trip.
	}
}

// WaitAllIRQ blocks on completion interrupts until every submitted task
// has completed. The device must have IRQs enabled.
func (dr *Driver) WaitAllIRQ(e app.Env) {
	for dr.Completed(e) < dr.submitted {
		e.WaitIRQ(IRQVector)
	}
}
