package jpeg

import "encoding/binary"

// Image is an RGB24 raster.
type Image struct {
	W, H int
	Pix  []byte // len = W*H*3
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// Subsampling selects the chroma layout of encoded images.
type Subsampling int

const (
	Sub444 Subsampling = iota // no chroma subsampling
	Sub420                    // 2x2 chroma subsampling
)

// Encode produces a baseline JFIF bitstream for img at the given quality
// (1..100), with the requested chroma subsampling. The encoder exists to
// generate real bitstreams for the decoder stack (the paper samples
// Flickr/Div2k images; we synthesize content instead — see workloads).
func Encode(img *Image, quality int, sub Subsampling) []byte {
	return EncodeRestart(img, quality, sub, 0)
}

// EncodeRestart is Encode with a DRI restart interval (MCUs between
// RSTn markers; 0 disables restarts).
func EncodeRestart(img *Image, quality int, sub Subsampling, restart int) []byte {
	lq := scaleQuant(stdLumaQuant, quality)
	cq := scaleQuant(stdChromaQuant, quality)
	dcL := buildHuff(stdDCLumaBits, stdDCLumaVals)
	acL := buildHuff(stdACLumaBits, stdACLumaVals)
	dcC := buildHuff(stdDCChromaBits, stdDCChromaVals)
	acC := buildHuff(stdACChromaBits, stdACChromaVals)

	var out []byte
	emit := func(b ...byte) { out = append(out, b...) }
	marker := func(m byte, payload []byte) {
		emit(0xff, m)
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(payload)+2))
		emit(l[:]...)
		out = append(out, payload...)
	}

	emit(0xff, 0xd8) // SOI

	// APP0 / JFIF.
	marker(0xe0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})

	// DQT: table 0 (luma), table 1 (chroma), in zig-zag order.
	dqt := make([]byte, 0, 130)
	dqt = append(dqt, 0x00)
	for i := 0; i < 64; i++ {
		dqt = append(dqt, byte(lq[zigzag[i]]))
	}
	dqt = append(dqt, 0x01)
	for i := 0; i < 64; i++ {
		dqt = append(dqt, byte(cq[zigzag[i]]))
	}
	marker(0xdb, dqt)

	// SOF0.
	hs, vs := 1, 1
	if sub == Sub420 {
		hs, vs = 2, 2
	}
	sof := []byte{
		8,
		byte(img.H >> 8), byte(img.H), byte(img.W >> 8), byte(img.W),
		3,
		1, byte(hs<<4 | vs), 0, // Y
		2, 0x11, 1, // Cb
		3, 0x11, 1, // Cr
	}
	marker(0xc0, sof)

	// DHT: four standard tables.
	dht := make([]byte, 0, 512)
	add := func(class, id byte, bits [16]byte, vals []byte) {
		dht = append(dht, class<<4|id)
		dht = append(dht, bits[:]...)
		dht = append(dht, vals...)
	}
	add(0, 0, stdDCLumaBits, stdDCLumaVals)
	add(1, 0, stdACLumaBits, stdACLumaVals)
	add(0, 1, stdDCChromaBits, stdDCChromaVals)
	add(1, 1, stdACChromaBits, stdACChromaVals)
	marker(0xc4, dht)

	// DRI (optional).
	if restart > 0 {
		marker(0xdd, []byte{byte(restart >> 8), byte(restart)})
	}

	// SOS.
	marker(0xda, []byte{3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0})

	// Convert to YCbCr planes at full resolution.
	yP, cbP, crP := toYCbCr(img)

	w := &bitWriter{}
	mcuW, mcuH := 8*hs, 8*vs
	mcusX := (img.W + mcuW - 1) / mcuW
	mcusY := (img.H + mcuH - 1) / mcuH
	var dcPrev [3]int32

	encodeBlock := func(block *[64]float64, q *[64]int32, dc, ac *huffTable, comp int) {
		var coef [64]float64
		fdct8x8(block, &coef)
		var zz [64]int32
		for i := 0; i < 64; i++ {
			v := coef[zigzag[i]] / float64(q[zigzag[i]])
			if v >= 0 {
				zz[i] = int32(v + 0.5)
			} else {
				zz[i] = int32(v - 0.5)
			}
		}
		// DC.
		diff := zz[0] - dcPrev[comp]
		dcPrev[comp] = zz[0]
		s := magnitude(diff)
		w.write(dc.code[s], dc.size[s])
		if s > 0 {
			d := diff
			if d < 0 {
				d += 1<<uint(s) - 1
			}
			w.write(uint32(d), s)
		}
		// AC.
		run := 0
		for k := 1; k < 64; k++ {
			if zz[k] == 0 {
				run++
				continue
			}
			for run >= 16 {
				w.write(ac.code[0xf0], ac.size[0xf0]) // ZRL
				run -= 16
			}
			s := magnitude(zz[k])
			sym := byte(run<<4 | s)
			w.write(ac.code[sym], ac.size[sym])
			v := zz[k]
			if v < 0 {
				v += 1<<uint(s) - 1
			}
			w.write(uint32(v), s)
			run = 0
		}
		if run > 0 {
			w.write(ac.code[0x00], ac.size[0x00]) // EOB
		}
	}

	sampleBlock := func(plane []byte, pw, ph, x0, y0, step int) [64]float64 {
		var b [64]float64
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				// Average step x step source samples (chroma subsampling).
				var sum, n int32
				for dy := 0; dy < step; dy++ {
					for dx := 0; dx < step; dx++ {
						sx, sy := x0+(x*step)+dx, y0+(y*step)+dy
						if sx >= pw {
							sx = pw - 1
						}
						if sy >= ph {
							sy = ph - 1
						}
						sum += int32(plane[sy*pw+sx])
						n++
					}
				}
				b[y*8+x] = float64(sum)/float64(n) - 128
			}
		}
		return b
	}

	mcuIdx := 0
	rstSeq := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if restart > 0 && mcuIdx > 0 && mcuIdx%restart == 0 {
				// Flush to a byte boundary, emit RSTn, reset predictors.
				w.flush()
				out = append(out, w.buf...)
				w.buf = w.buf[:0]
				emit(0xff, byte(0xd0+rstSeq%8))
				rstSeq++
				dcPrev = [3]int32{}
			}
			mcuIdx++
			// Luma blocks.
			for by := 0; by < vs; by++ {
				for bx := 0; bx < hs; bx++ {
					b := sampleBlock(yP, img.W, img.H, mx*mcuW+bx*8, my*mcuH+by*8, 1)
					encodeBlock(&b, &lq, dcL, acL, 0)
				}
			}
			// Chroma blocks (one each, possibly subsampled).
			step := hs // 1 for 4:4:4, 2 for 4:2:0
			cb := sampleBlock(cbP, img.W, img.H, mx*mcuW, my*mcuH, step)
			encodeBlock(&cb, &cq, dcC, acC, 1)
			cr := sampleBlock(crP, img.W, img.H, mx*mcuW, my*mcuH, step)
			encodeBlock(&cr, &cq, dcC, acC, 2)
		}
	}
	w.flush()
	out = append(out, w.buf...)
	emit(0xff, 0xd9) // EOI
	return out
}

func toYCbCr(img *Image) (y, cb, cr []byte) {
	n := img.W * img.H
	y = make([]byte, n)
	cb = make([]byte, n)
	cr = make([]byte, n)
	for i := 0; i < n; i++ {
		r := int32(img.Pix[i*3])
		g := int32(img.Pix[i*3+1])
		b := int32(img.Pix[i*3+2])
		y[i] = clamp8((77*r + 150*g + 29*b) >> 8)
		cb[i] = clamp8(((-43*r - 85*g + 128*b) >> 8) + 128)
		cr[i] = clamp8(((128*r - 107*g - 21*b) >> 8) + 128)
	}
	return
}
