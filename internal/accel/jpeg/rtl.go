package jpeg

import (
	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// RTLDevice is the cycle-level model of the JPEG decoder — the stand-in
// for Verilator running the core's Verilog (the paper's baseline
// accelerator simulator). While the accelerator is busy, every clock
// cycle is an explicit simulation step, which is why this model is
// orders of magnitude more expensive to run than the LPN-based DSim
// model, while being externally indistinguishable from it: same register
// semantics, same DMA sequence, same bytes in memory.
type RTLDevice struct {
	name string
	clk  vclock.Hz
	host accel.Host

	cycle int64 // current device cycle

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	// Pipeline units. Each holds the rows it has accepted and is busy
	// until a given cycle.
	fetchQ                                       []rtlRow // waiting for the fetch unit
	huffQ                                        []rtlRow // fetched, waiting for huffman
	idctQ                                        []rtlRow // huffman-decoded, waiting for idct+store
	fetchBusyUntil, huffBusyUntil, idctBusyUntil int64
	fetchCur, huffCur, idctCur                   *rtlRow

	rowsLeft []int // rows remaining per task, FIFO

	stats     accel.DeviceStats
	busyStart vclock.Time

	// DecodeErrors counts malformed bitstreams.
	DecodeErrors int64
}

type rtlRow struct {
	info    rowInfo
	src     mem.Addr
	dst     mem.Addr
	outData []byte
	last    bool // final row of its task
}

// NewRTLDevice builds the cycle-level decoder model.
func NewRTLDevice(clk vclock.Hz) *RTLDevice {
	return &RTLDevice{name: "jpeg-rtl", clk: clk}
}

// SetHost wires the device to its host engine.
func (d *RTLDevice) SetHost(h accel.Host) { d.host = h }

// Name implements accel.Device.
func (d *RTLDevice) Name() string { return d.name }

// Stats implements accel.Device.
func (d *RTLDevice) Stats() accel.DeviceStats { return d.stats }

func (d *RTLDevice) timeAt(cycle int64) vclock.Time {
	return vclock.Time(0).Add(d.clk.CyclesDur(cycle))
}

func (d *RTLDevice) cyclesAt(t vclock.Time) int64 {
	return d.clk.Cycles(t.Sub(0))
}

// RegRead implements accel.Device.
func (d *RTLDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *RTLDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	}
}

func (d *RTLDevice) busy() bool {
	return d.fetchCur != nil || d.huffCur != nil || d.idctCur != nil ||
		len(d.fetchQ) > 0 || len(d.huffQ) > 0 || len(d.idctQ) > 0
}

// Advance implements accel.Device: step the pipeline up to time t.
//
// Between unit events step() is a pure no-op: completions fire at a
// unit's busyUntil and an idle unit with queued rows issues in the same
// step it went idle. Jumping straight to the nearest busyUntil when no
// idle unit has work is therefore cycle-exact and skips the dead
// stepping in between.
func (d *RTLDevice) Advance(t vclock.Time) {
	target := d.cyclesAt(t)
	for d.cycle <= target {
		if !d.busy() {
			d.cycle = target + 1
			return
		}
		next := int64(1 << 62)
		consider := func(cur *rtlRow, busyUntil int64, queue []rtlRow) {
			if cur != nil {
				if busyUntil < next {
					next = busyUntil
				}
			} else if len(queue) > 0 {
				next = d.cycle
			}
		}
		consider(d.fetchCur, d.fetchBusyUntil, d.fetchQ)
		consider(d.huffCur, d.huffBusyUntil, d.huffQ)
		consider(d.idctCur, d.idctBusyUntil, d.idctQ)
		if next > d.cycle {
			if next > target {
				d.cycle = target + 1
				return
			}
			d.cycle = next
		}
		d.step()
		d.cycle++
	}
}

// NextEvent implements accel.Device.
func (d *RTLDevice) NextEvent() (vclock.Time, bool) {
	if !d.busy() {
		return vclock.Never, false
	}
	// The next externally visible action happens at the earliest unit
	// completion (or immediately, if a unit can accept new work).
	next := int64(1 << 62)
	consider := func(cur *rtlRow, busyUntil int64, queue []rtlRow) {
		if cur != nil {
			if busyUntil < next {
				next = busyUntil
			}
		} else if len(queue) > 0 {
			if d.cycle < next {
				next = d.cycle
			}
		}
	}
	consider(d.fetchCur, d.fetchBusyUntil, d.fetchQ)
	consider(d.huffCur, d.huffBusyUntil, d.huffQ)
	consider(d.idctCur, d.idctBusyUntil, d.idctQ)
	return d.timeAt(next), true
}

// step advances the pipeline by one clock cycle.
func (d *RTLDevice) step() {
	now := d.timeAt(d.cycle)

	// IDCT + store unit.
	if d.idctCur != nil && d.cycle >= d.idctBusyUntil {
		row := d.idctCur
		d.idctCur = nil
		// Output DMA at completion.
		done := d.host.DMA(now, mem.Write, row.dst, len(row.outData))
		d.stats.DMABytes += int64(len(row.outData))
		if row.outData != nil {
			d.host.ZeroCostWrite(row.dst, row.outData)
		}
		if row.last {
			d.rowsLeft = d.rowsLeft[1:]
			d.completed++
			d.inFlight--
			d.stats.TasksCompleted++
			if d.inFlight == 0 {
				d.stats.BusyTime += done.Sub(d.busyStart)
			}
			if d.irqEnabled {
				d.host.RaiseIRQ(done, IRQVector)
			}
		}
	}
	if d.idctCur == nil && len(d.idctQ) > 0 {
		row := d.idctQ[0]
		d.idctQ = d.idctQ[1:]
		d.idctCur = &row
		d.idctBusyUntil = d.cycle + row.info.blocks*idctCyclesBlock/idctUnits +
			row.info.outBytes/busBytesPerCycle
	}

	// Huffman unit.
	if d.huffCur != nil && d.cycle >= d.huffBusyUntil {
		d.idctQ = append(d.idctQ, *d.huffCur)
		d.huffCur = nil
	}
	if d.huffCur == nil && len(d.huffQ) > 0 {
		row := d.huffQ[0]
		d.huffQ = d.huffQ[1:]
		d.huffCur = &row
		d.huffBusyUntil = d.cycle + row.info.bits/huffBitsPerCycle
	}

	// Fetch unit.
	if d.fetchCur != nil && d.cycle >= d.fetchBusyUntil {
		d.huffQ = append(d.huffQ, *d.fetchCur)
		d.fetchCur = nil
	}
	if d.fetchCur == nil && len(d.fetchQ) > 0 {
		row := d.fetchQ[0]
		d.fetchQ = d.fetchQ[1:]
		d.fetchCur = &row
		comp := d.host.DMA(now, mem.Read, row.src, int(row.info.inBytes))
		d.stats.DMABytes += row.info.inBytes
		busy := d.cycle + 4 + row.info.inBytes/busBytesPerCycle
		if c := d.cyclesAt(comp); c > busy {
			busy = c
		}
		d.fetchBusyUntil = busy
	}
}

// startTask decodes the task functionally (an RTL simulator computes the
// same results through its gates; we reuse the functional codec) and
// enqueues its rows into the cycle-stepped pipeline.
func (d *RTLDevice) startTask(at vclock.Time, descAddr mem.Addr) {
	d.stats.TasksStarted++
	if d.inFlight == 0 {
		d.busyStart = at
	}
	d.inFlight++

	var descBytes [DescSize]byte
	d.host.DMA(at, mem.Read, descAddr, DescSize)
	d.host.ZeroCostRead(descAddr, descBytes[:])
	desc := decodeDesc(descBytes[:])

	bitstream := make([]byte, desc.SrcLen)
	d.host.ZeroCostRead(desc.Src, bitstream)
	img, stats, err := Decode(bitstream)

	var rows []rtlRow
	if err != nil {
		d.DecodeErrors++
		rows = []rtlRow{{
			info: rowInfo{bits: int64(desc.SrcLen) * 8, blocks: 1,
				inBytes: int64(desc.SrcLen), outBytes: 1},
			src: desc.Src, dst: desc.Dst, last: true,
		}}
	} else {
		rows = planRTLRows(desc, img, stats, bitstream)
	}
	d.rowsLeft = append(d.rowsLeft, len(rows))
	d.fetchQ = append(d.fetchQ, rows...)
	if d.cycle < d.cyclesAt(at) {
		d.cycle = d.cyclesAt(at)
	}
}

// planRTLRows mirrors Device.planRows but carries addresses and output
// data on each row (the RTL pipeline issues its own DMAs).
func planRTLRows(desc Desc, img *Image, stats *DecodeStats, bitstream []byte) []rtlRow {
	mcuPxH := 8
	if stats.BlocksPerMCU >= 6 {
		mcuPxH = 16
	}
	mcusX := intCeil(stats.Width, mcuPxH)
	mcusY := intCeil(stats.Height, mcuPxH)

	total := int64(len(bitstream))
	var rows []rtlRow
	srcOff := int64(0)
	dstOff := int64(0)
	for ry := 0; ry < mcusY; ry++ {
		var bits int64
		for mx := 0; mx < mcusX; mx++ {
			idx := ry*mcusX + mx
			if idx < len(stats.MCUBits) {
				bits += stats.MCUBits[idx]
			}
		}
		inBytes := bits / 8
		if ry == mcusY-1 {
			inBytes = total - srcOff
		}
		if inBytes <= 0 {
			inBytes = 1
		}
		rowPxH := mcuPxH
		if (ry+1)*mcuPxH > stats.Height {
			rowPxH = stats.Height - ry*mcuPxH
		}
		outBytes := int64(stats.Width * rowPxH * 3)
		rows = append(rows, rtlRow{
			info: rowInfo{bits: bits, blocks: int64(mcusX * stats.BlocksPerMCU),
				inBytes: inBytes, outBytes: outBytes},
			src:     desc.Src + mem.Addr(srcOff),
			dst:     desc.Dst + mem.Addr(dstOff),
			outData: img.Pix[dstOff : dstOff+outBytes],
			last:    ry == mcusY-1,
		})
		srcOff += inBytes
		dstOff += outBytes
	}
	return rows
}

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *RTLDevice) MayRaiseIRQ() bool { return d.irqEnabled }
