package jpeg

import (
	"math"
	"testing"

	"nexsim/internal/xrand"
)

// synthImage builds a deterministic test image with smooth gradients and
// some texture (so entropy coding has realistic work to do).
func synthImage(w, h int, seed uint64) *Image {
	img := NewImage(w, h)
	rng := xrand.New(seed)
	// Random low-frequency blobs + gradient.
	type blob struct{ cx, cy, r, ch, amp int }
	blobs := make([]blob, 6)
	for i := range blobs {
		blobs[i] = blob{rng.Intn(w), rng.Intn(h), rng.Intn(w/2 + 1), rng.Intn(3), 50 + rng.Intn(150)}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 3
			img.Pix[i] = byte(x * 255 / w)
			img.Pix[i+1] = byte(y * 255 / h)
			img.Pix[i+2] = byte((x + y) * 255 / (w + h))
			for _, b := range blobs {
				dx, dy := x-b.cx, y-b.cy
				if d := dx*dx + dy*dy; d < b.r*b.r+1 {
					v := int(img.Pix[i+b.ch]) + b.amp*(b.r*b.r-d)/(b.r*b.r+1)
					if v > 255 {
						v = 255
					}
					img.Pix[i+b.ch] = byte(v)
				}
			}
		}
	}
	return img
}

func psnr(a, b *Image) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestRoundTrip444(t *testing.T) {
	img := synthImage(64, 48, 1)
	data := Encode(img, 90, Sub444)
	dec, stats, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 64 || dec.H != 48 {
		t.Fatalf("size %dx%d", dec.W, dec.H)
	}
	if q := psnr(img, dec); q < 30 {
		t.Fatalf("PSNR = %.1f dB, want > 30", q)
	}
	if stats.MCUs != 8*6 {
		t.Fatalf("MCUs = %d, want 48", stats.MCUs)
	}
	if stats.BlocksPerMCU != 3 {
		t.Fatalf("BlocksPerMCU = %d", stats.BlocksPerMCU)
	}
}

func TestRoundTrip420(t *testing.T) {
	img := synthImage(64, 64, 2)
	data := Encode(img, 85, Sub420)
	dec, stats, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q := psnr(img, dec); q < 25 {
		t.Fatalf("PSNR = %.1f dB, want > 25", q)
	}
	if stats.BlocksPerMCU != 6 {
		t.Fatalf("BlocksPerMCU = %d, want 6 (4Y+Cb+Cr)", stats.BlocksPerMCU)
	}
	if stats.MCUs != 4*4 {
		t.Fatalf("MCUs = %d", stats.MCUs)
	}
}

func TestNonMultipleOf8Dimensions(t *testing.T) {
	img := synthImage(37, 23, 3)
	data := Encode(img, 80, Sub420)
	dec, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 37 || dec.H != 23 {
		t.Fatalf("size %dx%d", dec.W, dec.H)
	}
	if q := psnr(img, dec); q < 20 {
		t.Fatalf("PSNR = %.1f dB", q)
	}
}

func TestQualityAffectsSizeAndFidelity(t *testing.T) {
	img := synthImage(64, 64, 4)
	lo := Encode(img, 30, Sub420)
	hi := Encode(img, 95, Sub420)
	if len(hi) <= len(lo) {
		t.Fatalf("quality 95 (%dB) not larger than 30 (%dB)", len(hi), len(lo))
	}
	decLo, _, _ := Decode(lo)
	decHi, _, _ := Decode(hi)
	if psnr(img, decHi) <= psnr(img, decLo) {
		t.Fatal("higher quality not higher fidelity")
	}
}

func TestStatsPlausible(t *testing.T) {
	img := synthImage(64, 64, 5)
	data := Encode(img, 85, Sub420)
	_, stats, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.MCUBits) != stats.MCUs {
		t.Fatalf("MCUBits entries = %d, MCUs = %d", len(stats.MCUBits), stats.MCUs)
	}
	var sum int64
	for _, b := range stats.MCUBits {
		if b < 0 {
			t.Fatal("negative MCU bits")
		}
		sum += b
	}
	if sum != stats.BitsRead {
		t.Fatalf("MCU bits sum %d != total %d", sum, stats.BitsRead)
	}
	// Entropy-coded payload roughly matches the file size.
	if stats.BitsRead/8 > int64(len(data)) {
		t.Fatalf("bits read %d exceed file size %d", stats.BitsRead/8, len(data))
	}
	if stats.NonZeroCoeffs == 0 {
		t.Fatal("no coefficients decoded")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{0, 1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	img := synthImage(16, 16, 6)
	data := Encode(img, 80, Sub444)
	if _, _, err := Decode(data[:len(data)/3]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestDeterministicEncode(t *testing.T) {
	img := synthImage(32, 32, 7)
	a := Encode(img, 75, Sub420)
	b := Encode(img, 75, Sub420)
	if len(a) != len(b) {
		t.Fatal("nondeterministic encode")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic encode bytes")
		}
	}
}

func TestRestartMarkers(t *testing.T) {
	img := synthImage(96, 64, 21)
	for _, interval := range []int{1, 3, 8} {
		data := jpegEncodeRestart(img, 85, Sub420, interval)
		// The stream must actually contain RSTn markers.
		rst := 0
		for i := 0; i+1 < len(data); i++ {
			if data[i] == 0xff && data[i+1] >= 0xd0 && data[i+1] <= 0xd7 {
				rst++
			}
		}
		if rst == 0 {
			t.Fatalf("interval %d: no restart markers emitted", interval)
		}
		dec, _, err := Decode(data)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if q := psnr(img, dec); q < 25 {
			t.Fatalf("interval %d: PSNR = %.1f dB", interval, q)
		}
	}
}

// jpegEncodeRestart avoids the memoized Decode seeing identical streams
// across intervals.
func jpegEncodeRestart(img *Image, q int, sub Subsampling, interval int) []byte {
	return EncodeRestart(img, q, sub, interval)
}

func TestRestartStreamDiffersFromPlain(t *testing.T) {
	img := synthImage(48, 48, 22)
	plain := Encode(img, 80, Sub444)
	rst := EncodeRestart(img, 80, Sub444, 2)
	if len(rst) <= len(plain) {
		t.Fatal("restart stream not larger (markers missing?)")
	}
	a, _, _ := Decode(plain)
	b, _, _ := Decode(rst)
	// Same image content either way.
	if psnr(a, b) < 45 {
		t.Fatal("restart decode diverges from plain decode")
	}
}

// TestDecoderNeverPanicsOnCorruption flips and truncates bytes of a
// valid stream; the decoder must return an error or a valid image, never
// panic (devices feed it raw task-buffer input).
func TestDecoderNeverPanicsOnCorruption(t *testing.T) {
	img := synthImage(40, 40, 77)
	base := Encode(img, 80, Sub420)
	rng := xrand.New(123)
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), base...)
		switch trial % 3 {
		case 0: // single byte flip
			i := rng.Intn(len(data))
			data[i] ^= byte(1 + rng.Intn(255))
		case 1: // truncation
			data = data[:rng.Intn(len(data))]
		case 2: // multiple flips in the header region
			for k := 0; k < 4; k++ {
				i := rng.Intn(len(data) / 2)
				data[i] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			Decode(data)
		}()
	}
}
