package jpeg

import (
	"bytes"
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// devHost is a fixed-latency accel.Host over a real memory.
type devHost struct {
	mem  *mem.Memory
	lat  vclock.Duration
	irqs []vclock.Time
	dmas int
}

func (h *devHost) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	h.dmas++
	return at.Add(h.lat)
}
func (h *devHost) ZeroCostRead(addr mem.Addr, p []byte)  { h.mem.ReadAt(addr, p) }
func (h *devHost) ZeroCostWrite(addr mem.Addr, p []byte) { h.mem.WriteAt(addr, p) }
func (h *devHost) RaiseIRQ(at vclock.Time, v int)        { h.irqs = append(h.irqs, at) }

// stage writes a test image's bitstream + descriptor into memory and
// returns the descriptor address and expected pixels.
func stage(h *devHost, seed uint64) (mem.Addr, *Image, Desc) {
	img := synthImage(48, 32, seed)
	data := Encode(img, 85, Sub420)
	want, _, err := Decode(data)
	if err != nil {
		panic(err)
	}
	src := mem.Addr(0x10000)
	dst := mem.Addr(0x40000)
	descAddr := mem.Addr(0x1000)
	h.mem.WriteAt(src, data)
	desc := Desc{Src: src, SrcLen: uint32(len(data)), Dst: dst}
	b := EncodeDesc(desc)
	h.mem.WriteAt(descAddr, b[:])
	return descAddr, want, desc
}

func runTask(t *testing.T, dev accel.Device, h *devHost, descAddr mem.Addr) vclock.Time {
	t.Helper()
	dev.RegWrite(0, RegIRQEnable, 1)
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	// Drive the device to completion through NextEvent.
	for i := 0; i < 1_000_000; i++ {
		at, ok := dev.NextEvent()
		if !ok {
			break
		}
		dev.Advance(at)
	}
	if got := dev.RegRead(vclock.Time(1)<<40, RegStatus); got != 1 {
		t.Fatalf("status = %d, want 1 completed", got)
	}
	if len(h.irqs) != 1 {
		t.Fatalf("irqs = %d", len(h.irqs))
	}
	return h.irqs[0]
}

func TestDSimDeviceDecodesCorrectly(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 400 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, want, desc := stage(h, 11)
	runTask(t, dev, h, descAddr)

	got := make([]byte, len(want.Pix))
	h.mem.ReadAt(desc.Dst, got)
	if !bytes.Equal(got, want.Pix) {
		t.Fatal("device output differs from functional decode")
	}
}

func TestRTLDeviceDecodesCorrectly(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 400 * vclock.Nanosecond}
	dev := NewRTLDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, want, desc := stage(h, 11)
	runTask(t, dev, h, descAddr)

	got := make([]byte, len(want.Pix))
	h.mem.ReadAt(desc.Dst, got)
	if !bytes.Equal(got, want.Pix) {
		t.Fatal("RTL output differs from functional decode")
	}
}

func TestDSimIndistinguishableFromRTL(t *testing.T) {
	// Same task on both models: identical outputs, identical DMA counts,
	// and completion times within a modest relative envelope (the LPN
	// abstracts microarchitectural detail but models the same pipeline).
	run := func(mk func() accel.Device) (vclock.Time, int, []byte) {
		h := &devHost{mem: mem.New(0), lat: 400 * vclock.Nanosecond}
		dev := mk()
		switch d := dev.(type) {
		case *Device:
			d.SetHost(h)
		case *RTLDevice:
			d.SetHost(h)
		}
		descAddr, want, desc := stage(h, 23)
		done := runTask(t, dev, h, descAddr)
		out := make([]byte, len(want.Pix))
		h.mem.ReadAt(desc.Dst, out)
		return done, h.dmas, out
	}
	dsimDone, dsimDMAs, dsimOut := run(func() accel.Device { return NewDevice(2 * vclock.GHz) })
	rtlDone, rtlDMAs, rtlOut := run(func() accel.Device { return NewRTLDevice(2 * vclock.GHz) })

	if !bytes.Equal(dsimOut, rtlOut) {
		t.Fatal("functional outputs differ")
	}
	if dsimDMAs != rtlDMAs {
		t.Fatalf("DMA counts differ: dsim %d, rtl %d", dsimDMAs, rtlDMAs)
	}
	ratio := float64(dsimDone) / float64(rtlDone)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("completion times diverge: dsim %v, rtl %v (ratio %.2f)",
			dsimDone, rtlDone, ratio)
	}
}

func TestPipeliningAcrossTasks(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)

	// One task alone.
	descAddr, _, _ := stage(h, 31)
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	for {
		at, ok := dev.NextEvent()
		if !ok {
			break
		}
		dev.Advance(at)
	}
	single := dev.Now()

	// Two tasks back to back on a fresh device.
	h2 := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev2 := NewDevice(2 * vclock.GHz)
	dev2.SetHost(h2)
	da, _, _ := stage(h2, 31)
	dev2.RegWrite(0, RegDoorbell, uint32(da))
	dev2.RegWrite(0, RegDoorbell, uint32(da))
	for {
		at, ok := dev2.NextEvent()
		if !ok {
			break
		}
		dev2.Advance(at)
	}
	both := dev2.Now()
	if both >= single*2 {
		t.Fatalf("no pipelining: 2 tasks %v vs single %v", both, single)
	}
	if dev2.RegRead(both, RegStatus) != 2 {
		t.Fatal("second task did not complete")
	}
}

func TestMalformedBitstream(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	src := mem.Addr(0x10000)
	h.mem.WriteAt(src, []byte{0xde, 0xad, 0xbe, 0xef})
	descAddr := mem.Addr(0x1000)
	b := EncodeDesc(Desc{Src: src, SrcLen: 4, Dst: 0x40000})
	h.mem.WriteAt(descAddr, b[:])
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	for {
		at, ok := dev.NextEvent()
		if !ok {
			break
		}
		dev.Advance(at)
	}
	if dev.DecodeErrors != 1 {
		t.Fatalf("DecodeErrors = %d", dev.DecodeErrors)
	}
	if dev.RegRead(dev.Now(), RegStatus) != 1 {
		t.Fatal("malformed task did not complete")
	}
}

func TestDMALatencyAffectsCompletion(t *testing.T) {
	run := func(lat vclock.Duration) vclock.Time {
		h := &devHost{mem: mem.New(0), lat: lat}
		dev := NewDevice(2 * vclock.GHz)
		dev.SetHost(h)
		descAddr, _, _ := stage(h, 5)
		return runTask(t, dev, h, descAddr)
	}
	fast := run(4 * vclock.Nanosecond)
	slow := run(2 * vclock.Microsecond)
	if slow <= fast {
		t.Fatalf("higher DMA latency not slower: %v vs %v", slow, fast)
	}
}

func TestDeviceStats(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, want, _ := stage(h, 3)
	runTask(t, dev, h, descAddr)
	s := dev.Stats()
	if s.TasksStarted != 1 || s.TasksCompleted != 1 {
		t.Fatalf("tasks %d/%d", s.TasksStarted, s.TasksCompleted)
	}
	if s.DMABytes < int64(len(want.Pix)) {
		t.Fatalf("DMABytes = %d, want at least the output size %d", s.DMABytes, len(want.Pix))
	}
	if s.BusyTime <= 0 {
		t.Fatal("no busy time")
	}
}
