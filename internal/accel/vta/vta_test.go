package vta

import (
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
	"nexsim/internal/xrand"
)

type devHost struct {
	mem  *mem.Memory
	lat  vclock.Duration
	dmas int
	irqs []vclock.Time
}

func (h *devHost) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	h.dmas++
	return at.Add(h.lat)
}
func (h *devHost) ZeroCostRead(addr mem.Addr, p []byte)  { h.mem.ReadAt(addr, p) }
func (h *devHost) ZeroCostWrite(addr mem.Addr, p []byte) { h.mem.WriteAt(addr, p) }
func (h *devHost) RaiseIRQ(at vclock.Time, v int)        { h.irqs = append(h.irqs, at) }

func TestInstrEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpLoad, Buf: BufWeight, SRAMBase: 1024, DRAM: 0xdead00, Rows: 64, Cols: 576, Stride: 600, PopNext: true},
		{Op: OpGemm, M: 16, N: 64, K: 576, InBase: 5, WgtBase: 7, AccBase: 9, ResetAcc: true, PopPrev: true, PushPrev: true},
		{Op: OpAlu, Alu: AluShr, UseImm: true, Imm: 7, AccBase: 3, Len: 1024, PushNext: true},
		{Op: OpAlu, Alu: AluAdd, UseImm: false, SrcAcc: 512, AccBase: 0, Len: 256},
		{Op: OpStore, Buf: BufAcc, SRAMBase: 0, DRAM: 0xbeef00, Rows: 16, Cols: 64, Shift: 6, PopPrev: true, PushPrev: true},
		{Op: OpFinish},
	}
	for i, c := range cases {
		enc := c.Encode()
		dec, err := DecodeInstr(enc[:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if dec != c {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, dec, c)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeInstr(make([]byte, 10)); err == nil {
		t.Fatal("short instruction accepted")
	}
	bad := make([]byte, InstrSize)
	bad[0] = 99
	if _, err := DecodeInstr(bad); err == nil {
		t.Fatal("bad opcode accepted")
	}
}

func randI8(rng *xrand.Stream, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(256) - 128)
	}
	return out
}

// runGemm compiles and runs a GEMM on the given device, returning C.
func runGemm(t *testing.T, dev accel.Device, h *devHost, task GemmTask, a, b []int8, bias []int32) []int8 {
	t.Helper()
	StoreOperands(h.mem, task, a, b, bias)
	prog, err := Compile(task)
	if err != nil {
		t.Fatal(err)
	}
	progAddr := mem.Addr(0x40_0000)
	WriteProgram(h.mem, progAddr, prog)
	descAddr := mem.Addr(0x1000)
	db := EncodeDesc(Desc{Prog: progAddr, Count: uint32(len(prog))})
	h.mem.WriteAt(descAddr, db[:])

	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	for i := 0; ; i++ {
		at, ok := dev.NextEvent()
		if !ok {
			break
		}
		if i > 50_000_000 {
			t.Fatal("device did not quiesce")
		}
		dev.Advance(at)
	}
	if got := dev.RegRead(vclock.Time(1)<<40, RegStatus); got != 1 {
		t.Fatalf("status = %d", got)
	}
	out := make([]byte, task.M*task.N)
	h.mem.ReadAt(task.C, out)
	res := make([]int8, len(out))
	for i, v := range out {
		res[i] = int8(v)
	}
	return res
}

func gemmCase(seed uint64, m, n, k int, bias, relu bool) (GemmTask, []int8, []int8, []int32) {
	rng := xrand.New(seed)
	task := GemmTask{
		M: m, N: n, K: k,
		A: 0x10_0000, B: 0x20_0000, C: 0x30_0000,
		Shift: 6, ReLU: relu,
	}
	var bv []int32
	if bias {
		task.Bias = 0x28_0000
		bv = make([]int32, n)
		for i := range bv {
			bv[i] = int32(rng.Intn(2048) - 1024)
		}
	}
	a := randI8(rng.Derive("a"), m*k)
	b := randI8(rng.Derive("b"), n*k)
	return task, a, b, bv
}

func TestDSimGemmMatchesReference(t *testing.T) {
	task, a, b, bias := gemmCase(1, 64, 32, 48, false, true)
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	got := runGemm(t, dev, h, task, a, b, bias)
	want := ReferenceGemm(task, a, b, bias)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDSimGemmWithBias(t *testing.T) {
	task, a, b, bias := gemmCase(2, 32, 24, 40, true, false)
	h := &devHost{mem: mem.New(0), lat: 50 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	got := runGemm(t, dev, h, task, a, b, bias)
	want := ReferenceGemm(task, a, b, bias)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRTLGemmMatchesReference(t *testing.T) {
	task, a, b, bias := gemmCase(3, 64, 32, 48, true, true)
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewRTLDevice(2 * vclock.GHz)
	dev.SetHost(h)
	got := runGemm(t, dev, h, task, a, b, bias)
	want := ReferenceGemm(task, a, b, bias)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDSimAndRTLTimingAgree(t *testing.T) {
	task, a, b, bias := gemmCase(4, 128, 32, 64, false, true)
	run := func(dev accel.Device, h *devHost) vclock.Duration {
		runGemm(t, dev, h, task, a, b, bias)
		return dev.Stats().BusyTime
	}
	h1 := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	d1 := NewDevice(2 * vclock.GHz)
	d1.SetHost(h1)
	dsimBusy := run(d1, h1)

	h2 := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	d2 := NewRTLDevice(2 * vclock.GHz)
	d2.SetHost(h2)
	rtlBusy := run(d2, h2)

	if h1.dmas != h2.dmas {
		t.Fatalf("DMA counts differ: %d vs %d", h1.dmas, h2.dmas)
	}
	ratio := float64(dsimBusy) / float64(rtlBusy)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("busy times diverge: dsim %v rtl %v", dsimBusy, rtlBusy)
	}
}

func TestPipelineOverlapsLoadAndCompute(t *testing.T) {
	// With many tiles, total time should be much less than the sum of
	// serialized module times (load/compute/store overlap).
	task, a, b, bias := gemmCase(5, 256, 32, 64, false, false)
	h := &devHost{mem: mem.New(0), lat: 200 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	runGemm(t, dev, h, task, a, b, bias)
	busy := dev.Stats().BusyTime

	// Serial estimate: every op back to back, including each memory
	// instruction's DMA round trip.
	prog, _ := Compile(task)
	var serialCycles int64
	serial := vclock.Duration(0)
	for i := range prog {
		serialCycles += instrCycles(&prog[i])
		if prog[i].Op == OpLoad || prog[i].Op == OpStore {
			serial += 200 * vclock.Nanosecond
		}
	}
	serial += (2 * vclock.GHz).CyclesDur(serialCycles)
	if busy >= serial {
		t.Fatalf("no pipelining: busy %v >= serial %v", busy, serial)
	}
}

func TestCompileRejectsBadShapes(t *testing.T) {
	if _, err := Compile(GemmTask{M: 10, N: 16, K: 16}); err == nil {
		t.Fatal("non-multiple M accepted")
	}
	if _, err := Compile(GemmTask{M: 16, N: 1 << 12, K: 1 << 10}); err == nil {
		t.Fatal("oversized weights accepted")
	}
	if _, err := Compile(GemmTask{}); err == nil {
		t.Fatal("empty task accepted")
	}
}

func TestCoreAluOps(t *testing.T) {
	c := NewCore()
	for i := 0; i < 8; i++ {
		c.Acc[i] = int32(i*16 - 64)
	}
	if err := c.Alu(&Instr{Op: OpAlu, Alu: AluMax, UseImm: true, Imm: 0, Len: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if c.Acc[i] != 0 {
			t.Fatalf("relu failed at %d: %d", i, c.Acc[i])
		}
	}
	if c.Acc[7] != 48 {
		t.Fatalf("relu clobbered positive: %d", c.Acc[7])
	}
	// Pairwise add.
	c.Acc[100], c.Acc[101] = 5, 6
	c.Acc[0], c.Acc[1] = 1, 2
	if err := c.Alu(&Instr{Op: OpAlu, Alu: AluAdd, SrcAcc: 100, AccBase: 0, Len: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Acc[0] != 6 || c.Acc[1] != 8 {
		t.Fatalf("add: %d %d", c.Acc[0], c.Acc[1])
	}
}

func TestIRQRaised(t *testing.T) {
	task, a, b, bias := gemmCase(6, 16, 16, 16, false, false)
	h := &devHost{mem: mem.New(0), lat: 10 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	dev.RegWrite(0, RegIRQEnable, 1)
	runGemm(t, dev, h, task, a, b, bias)
	if len(h.irqs) != 1 {
		t.Fatalf("irqs = %d", len(h.irqs))
	}
}

func TestChunkedGemmMatchesReference(t *testing.T) {
	// K=4096 with N=64 exceeds the double-buffered weight SRAM
	// (2*64*4096 = 512KB > 256KB), forcing the K-streaming schedule.
	task, a, b, bias := gemmCase(7, 48, 64, 4096, false, true)
	prog, err := Compile(task)
	if err != nil {
		t.Fatal(err)
	}
	nLoads := 0
	for _, ins := range prog {
		if ins.Op == OpLoad && ins.Buf == BufWeight {
			nLoads++
		}
	}
	if nLoads < 2 {
		t.Fatalf("K=4096 compiled without weight streaming (%d weight loads)", nLoads)
	}
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	got := runGemm(t, dev, h, task, a, b, bias)
	want := ReferenceGemm(task, a, b, bias)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestChunkedGemmWithBiasOnRTL(t *testing.T) {
	task, a, b, bias := gemmCase(8, 48, 64, 4096, true, false)
	h := &devHost{mem: mem.New(0), lat: 100 * vclock.Nanosecond}
	dev := NewRTLDevice(2 * vclock.GHz)
	dev.SetHost(h)
	got := runGemm(t, dev, h, task, a, b, bias)
	want := ReferenceGemm(task, a, b, bias)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestDecodeInstrNeverPanics feeds arbitrary bytes to the instruction
// decoder.
func TestDecodeInstrNeverPanics(t *testing.T) {
	rng := xrand.New(7)
	buf := make([]byte, InstrSize)
	for trial := 0; trial < 1000; trial++ {
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			DecodeInstr(buf)
		}()
	}
}

// TestCoreRejectsOutOfRange: decoded-but-hostile instructions must be
// rejected by the functional core, not crash it.
func TestCoreRejectsOutOfRange(t *testing.T) {
	c := NewCore()
	cases := []Instr{
		{Op: OpLoad, Buf: BufInput, SRAMBase: InputBufSize - 1, Rows: 2, Cols: 64},
		{Op: OpLoad, Buf: BufWeight, SRAMBase: WeightBufSize, Rows: 1, Cols: 1},
		{Op: OpLoad, Buf: BufAcc, SRAMBase: AccBufSize, Rows: 1, Cols: 1},
		{Op: OpGemm, M: 16, N: 16, K: 1 << 14, InBase: 0, WgtBase: 0, AccBase: 0},
		{Op: OpAlu, Alu: AluAdd, UseImm: true, AccBase: AccBufSize - 1, Len: 16},
		{Op: OpAlu, Alu: AluAdd, SrcAcc: AccBufSize, AccBase: 0, Len: 16},
	}
	data := make([]byte, 1<<20)
	for i, ins := range cases {
		var err error
		switch ins.Op {
		case OpLoad:
			err = c.LoadBytes(&ins, data)
		case OpGemm:
			err = c.Gemm(&ins)
		case OpAlu:
			err = c.Alu(&ins)
		}
		if err == nil {
			t.Fatalf("case %d accepted out-of-range operands", i)
		}
	}
	if _, err := c.StoreBytes(&Instr{Op: OpStore, SRAMBase: AccBufSize, Rows: 1, Cols: 1}); err == nil {
		t.Fatal("out-of-range store accepted")
	}
}
