package vta

import (
	"nexsim/internal/app"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Driver is the TVM-runtime-like software driver: it JITs GEMM tasks to
// instruction streams in DRAM and launches them through the task buffer
// and MMIO doorbell.
type Driver struct {
	MMIOBase mem.Addr
	TaskBuf  mem.Addr
	Slots    int

	// ProgArena is the DRAM region instruction streams are written to.
	ProgArena mem.Addr

	slot      int
	progOff   mem.Addr
	submitted uint32
}

// NewDriver builds a driver; progArena must be large enough for all
// instruction streams launched.
func NewDriver(mmio, taskBuf, progArena mem.Addr, slots int) *Driver {
	if slots <= 0 {
		slots = 16
	}
	return &Driver{MMIOBase: mmio, TaskBuf: taskBuf, ProgArena: progArena, Slots: slots}
}

// EnableIRQ turns on completion interrupts.
func (dr *Driver) EnableIRQ(e app.Env) {
	e.MMIOWrite(dr.MMIOBase+RegIRQEnable, 1)
}

// Launch writes a compiled program into the arena and rings the
// doorbell. The caller has already placed operands in memory.
func (dr *Driver) Launch(e app.Env, prog []Instr) {
	progAddr := dr.ProgArena + dr.progOff
	dr.progOff += mem.Addr(len(prog) * InstrSize)
	WriteProgram(e.Mem(), progAddr, prog)

	descAddr := dr.TaskBuf + mem.Addr(dr.slot*DescSize)
	dr.slot = (dr.slot + 1) % dr.Slots
	b := EncodeDesc(Desc{Prog: progAddr, Count: uint32(len(prog))})
	e.TaskWrite(descAddr, b[:])
	e.MMIOWrite(dr.MMIOBase+RegDoorbell, uint32(descAddr))
	dr.submitted++
}

// Completed reads the completion counter.
func (dr *Driver) Completed(e app.Env) uint32 {
	return e.MMIORead(dr.MMIOBase + RegStatus)
}

// Submitted reports launched tasks.
func (dr *Driver) Submitted() uint32 { return dr.submitted }

// WaitAll polls until all launched tasks complete.
func (dr *Driver) WaitAll(e app.Env, poll vclock.Duration) {
	for dr.Completed(e) < dr.submitted {
		if poll > 0 {
			e.Sleep(poll)
		}
		// poll <= 0 spins on the status register (the common driver
		// behaviour); each read costs the MMIO round trip.
	}
}

// WaitAllIRQ waits on completion interrupts.
func (dr *Driver) WaitAllIRQ(e app.Env) {
	for dr.Completed(e) < dr.submitted {
		e.WaitIRQ(IRQVector)
	}
}
