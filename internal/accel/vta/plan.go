package vta

import (
	"encoding/binary"
	"fmt"
	"sync"

	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Timing parameters of the modeled VTA (per device clock cycle): a
// 16x16 GEMM PE array (one K-step per cycle per 16x16 output tile), a
// 16-lane vector ALU, and 16-byte/cycle SRAM fill/drain engines.
const (
	gemmTile        = 16
	aluLanes        = 16
	sramBytesPerCyc = 16
	opSetupCycles   = 8
	aluSetupCycles  = 4
)

// DescSize is the task-descriptor size: prog (8) | count (4) | pad (4).
const DescSize = 16

// Desc describes one VTA task (a launched instruction stream).
type Desc struct {
	Prog  mem.Addr
	Count uint32
}

// EncodeDesc serializes the descriptor.
func EncodeDesc(d Desc) [DescSize]byte {
	var b [DescSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Prog))
	binary.LittleEndian.PutUint32(b[8:], d.Count)
	return b
}

func decodeDesc(b []byte) Desc {
	return Desc{
		Prog:  mem.Addr(binary.LittleEndian.Uint64(b[0:])),
		Count: binary.LittleEndian.Uint32(b[8:]),
	}
}

// dmaOp is one memory operation an instruction performs.
type dmaOp struct {
	kind mem.AccessKind
	addr mem.Addr
	size int
	data []byte // store payload
}

// planOp is one instruction's work, precomputed by the functionality
// track.
type planOp struct {
	instr    Instr
	cycles   int64
	dmas     []dmaOp
	task     int64
	finish   bool        // OpFinish: completes the task
	minStart vclock.Time // earliest start (instruction fetch completion)
}

// instrCycles computes an instruction's occupancy in device cycles.
func instrCycles(i *Instr) int64 {
	switch i.Op {
	case OpLoad:
		bytes := int64(i.Rows) * int64(i.Cols)
		if i.Buf == BufAcc {
			bytes *= 4
		}
		return opSetupCycles + bytes/sramBytesPerCyc
	case OpGemm:
		mt := (int64(i.M) + gemmTile - 1) / gemmTile
		nt := (int64(i.N) + gemmTile - 1) / gemmTile
		return opSetupCycles + mt*nt*int64(i.K)
	case OpAlu:
		return aluSetupCycles + int64(i.Len)/aluLanes
	case OpStore:
		return opSetupCycles + int64(i.Rows)*int64(i.Cols)/sramBytesPerCyc
	default: // FINISH
		return 1
	}
}

// planCache memoizes the functionality track's store payloads per
// (program, input data) pair. The computed results are a pure function
// of those inputs, and the same task streams are executed by the DSim
// model, the RTL-style model, and repeated harness runs; memoizing
// removes redundant host compute without affecting any simulated timing
// (DESIGN.md §1). Cached payloads are shared read-only.
var planCache = struct {
	sync.Mutex
	m map[uint64][][]byte
}{m: make(map[uint64][][]byte)}

func fnv64(h uint64, data []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// buildPlan decodes and functionally executes an instruction stream,
// returning per-module op lists. read is the functional memory access
// (the caller decides whether it is recorded as a DMA trace).
func buildPlan(read func(addr mem.Addr, size int) []byte,
	core *Core, desc Desc, task int64) (loads, computes, stores []planOp, err error) {

	progBytes := read(desc.Prog, int(desc.Count)*InstrSize)

	// Pass 1: decode, gather LOAD data, and hash (program + inputs).
	type decoded struct {
		instr Instr
		data  []byte  // LOAD payload
		dmas  []dmaOp // LOAD/STORE address plan
	}
	key := fnv64(0, progBytes)
	ins := make([]decoded, desc.Count)
	sawFinish := false
	for idx := 0; idx < int(desc.Count); idx++ {
		i, derr := DecodeInstr(progBytes[idx*InstrSize:])
		if derr != nil {
			return nil, nil, nil, derr
		}
		d := decoded{instr: i}
		switch i.Op {
		case OpLoad:
			elemSize := 1
			if i.Buf == BufAcc {
				elemSize = 4
			}
			rowBytes := int(i.Cols) * elemSize
			data := make([]byte, int(i.Rows)*rowBytes)
			if i.Stride == 0 || int(i.Stride) == rowBytes {
				copy(data, read(mem.Addr(i.DRAM), len(data)))
				d.dmas = append(d.dmas, dmaOp{kind: mem.Read,
					addr: mem.Addr(i.DRAM), size: len(data)})
			} else {
				for r := 0; r < int(i.Rows); r++ {
					a := mem.Addr(i.DRAM) + mem.Addr(r*int(i.Stride))
					copy(data[r*rowBytes:], read(a, rowBytes))
					d.dmas = append(d.dmas, dmaOp{kind: mem.Read, addr: a, size: rowBytes})
				}
			}
			d.data = data
			key = fnv64(key, data)
		case OpFinish:
			sawFinish = true
		}
		ins[idx] = d
	}
	if !sawFinish {
		return nil, nil, nil, fmt.Errorf("vta: program lacks FINISH")
	}

	// Pass 2: produce store payloads — from the cache when this exact
	// (program, data) pair has run before, else by interpreting.
	planCache.Lock()
	cached, hit := planCache.m[key]
	planCache.Unlock()
	var payloads [][]byte
	if hit {
		payloads = cached
	} else {
		for idx := range ins {
			i := &ins[idx].instr
			switch i.Op {
			case OpLoad:
				if err := core.LoadBytes(i, ins[idx].data); err != nil {
					return nil, nil, nil, err
				}
			case OpGemm:
				if err := core.Gemm(i); err != nil {
					return nil, nil, nil, err
				}
			case OpAlu:
				if err := core.Alu(i); err != nil {
					return nil, nil, nil, err
				}
			case OpStore:
				out, serr := core.StoreBytes(i)
				if serr != nil {
					return nil, nil, nil, serr
				}
				payloads = append(payloads, out)
			}
		}
		planCache.Lock()
		planCache.m[key] = payloads
		planCache.Unlock()
	}

	// Assemble per-module op lists.
	storeIdx := 0
	for idx := range ins {
		i := ins[idx].instr
		op := planOp{instr: i, cycles: instrCycles(&i), task: task, dmas: ins[idx].dmas}
		switch i.Op {
		case OpLoad:
			loads = append(loads, op)
		case OpGemm, OpAlu:
			computes = append(computes, op)
		case OpStore:
			out := payloads[storeIdx]
			storeIdx++
			rowBytes := int(i.Cols)
			if i.Stride == 0 || int(i.Stride) == rowBytes {
				op.dmas = append(op.dmas, dmaOp{kind: mem.Write,
					addr: mem.Addr(i.DRAM), size: len(out), data: out})
			} else {
				for r := 0; r < int(i.Rows); r++ {
					a := mem.Addr(i.DRAM) + mem.Addr(r*int(i.Stride))
					op.dmas = append(op.dmas, dmaOp{kind: mem.Write, addr: a,
						size: rowBytes, data: out[r*rowBytes : (r+1)*rowBytes]})
				}
			}
			stores = append(stores, op)
		case OpFinish:
			op.finish = true
			computes = append(computes, op)
		}
	}
	return loads, computes, stores, nil
}
