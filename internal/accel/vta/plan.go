package vta

import (
	"encoding/binary"
	"fmt"
	"sync"

	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Timing parameters of the modeled VTA (per device clock cycle): a
// 16x16 GEMM PE array (one K-step per cycle per 16x16 output tile), a
// 16-lane vector ALU, and 16-byte/cycle SRAM fill/drain engines.
const (
	gemmTile        = 16
	aluLanes        = 16
	sramBytesPerCyc = 16
	opSetupCycles   = 8
	aluSetupCycles  = 4
)

// DescSize is the task-descriptor size: prog (8) | count (4) | pad (4).
const DescSize = 16

// Desc describes one VTA task (a launched instruction stream).
type Desc struct {
	Prog  mem.Addr
	Count uint32
}

// EncodeDesc serializes the descriptor.
func EncodeDesc(d Desc) [DescSize]byte {
	var b [DescSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Prog))
	binary.LittleEndian.PutUint32(b[8:], d.Count)
	return b
}

func decodeDesc(b []byte) Desc {
	return Desc{
		Prog:  mem.Addr(binary.LittleEndian.Uint64(b[0:])),
		Count: binary.LittleEndian.Uint32(b[8:]),
	}
}

// dmaOp is one memory operation an instruction performs.
type dmaOp struct {
	kind mem.AccessKind
	addr mem.Addr
	size int
	data []byte // store payload
}

// planOp is one instruction's work, precomputed by the functionality
// track.
type planOp struct {
	instr    Instr
	cycles   int64
	dmas     []dmaOp
	task     int64
	finish   bool        // OpFinish: completes the task
	minStart vclock.Time // earliest start (instruction fetch completion)
}

// instrCycles computes an instruction's occupancy in device cycles.
func instrCycles(i *Instr) int64 {
	switch i.Op {
	case OpLoad:
		bytes := int64(i.Rows) * int64(i.Cols)
		if i.Buf == BufAcc {
			bytes *= 4
		}
		return opSetupCycles + bytes/sramBytesPerCyc
	case OpGemm:
		mt := (int64(i.M) + gemmTile - 1) / gemmTile
		nt := (int64(i.N) + gemmTile - 1) / gemmTile
		return opSetupCycles + mt*nt*int64(i.K)
	case OpAlu:
		return aluSetupCycles + int64(i.Len)/aluLanes
	case OpStore:
		return opSetupCycles + int64(i.Rows)*int64(i.Cols)/sramBytesPerCyc
	default: // FINISH
		return 1
	}
}

// zeroCostReader is the slice of the host interface the plan cache
// needs.
type zeroCostReader interface {
	ZeroCostRead(addr mem.Addr, p []byte)
}

// vtaPlan is a memoized master copy of the per-module op lists for one
// (program bytes, input data) pair — program bytes include the DRAM
// placement, so the DMA address plan is pinned by the key. Masters carry
// task id 0 and no fetch gate; callers append value copies and stamp
// those (appendStamped), never the master.
type vtaPlan struct {
	loads, computes, stores []planOp
}

// fullPlanCache memoizes assembled plans. Distinct from planCache below:
// planCache shares functional interpretation across *placements* (its
// key skips DRAM fields), while this cache shares the whole decoded op
// list when placement also matches — the common case for repeated runs,
// checkpoint replays, and sweep points over one staged workload.
var fullPlanCache = struct {
	sync.Mutex
	m map[uint64]*vtaPlan
}{m: make(map[uint64]*vtaPlan)}

// planScratch holds the reusable buffers for the plan-cache hash pass.
type planScratch struct {
	prog, data []byte
}

func grown(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n+n/2+64)
	}
	return buf[:cap(buf)]
}

// cachedPlan returns the (shared, read-only) master plan for desc,
// building and caching it on first sight. The hash pass reads the
// program and every LOAD payload through scratch, so a cache hit
// allocates nothing proportional to the task.
func cachedPlan(host zeroCostReader, desc Desc, s planScratch) (*vtaPlan, planScratch, error) {
	progLen := int(desc.Count) * InstrSize
	s.prog = grown(s.prog, progLen)
	host.ZeroCostRead(desc.Prog, s.prog[:progLen])
	key := fnv64(0, s.prog[:progLen])
	for idx := 0; idx < int(desc.Count); idx++ {
		i, err := DecodeInstr(s.prog[idx*InstrSize : (idx+1)*InstrSize])
		if err != nil {
			return nil, s, err
		}
		if i.Op != OpLoad {
			continue
		}
		elemSize := 1
		if i.Buf == BufAcc {
			elemSize = 4
		}
		rowBytes := int(i.Cols) * elemSize
		if i.Stride == 0 || int(i.Stride) == rowBytes {
			n := int(i.Rows) * rowBytes
			s.data = grown(s.data, n)
			host.ZeroCostRead(mem.Addr(i.DRAM), s.data[:n])
			key = fnv64(key, s.data[:n])
		} else {
			s.data = grown(s.data, rowBytes)
			for r := 0; r < int(i.Rows); r++ {
				host.ZeroCostRead(mem.Addr(i.DRAM)+mem.Addr(r*int(i.Stride)), s.data[:rowBytes])
				key = fnv64(key, s.data[:rowBytes])
			}
		}
	}
	fullPlanCache.Lock()
	plan, hit := fullPlanCache.m[key]
	fullPlanCache.Unlock()
	if !hit {
		read := func(addr mem.Addr, size int) []byte {
			buf := make([]byte, size)
			host.ZeroCostRead(addr, buf)
			return buf
		}
		loads, computes, stores, err := buildPlan(read, desc, 0)
		if err != nil {
			return nil, s, err
		}
		plan = &vtaPlan{loads: loads, computes: computes, stores: stores}
		fullPlanCache.Lock()
		fullPlanCache.m[key] = plan
		fullPlanCache.Unlock()
	}
	return plan, s, nil
}

// appendStamped copies master ops onto dst, assigning the task id and
// gating each copy on the instruction-fetch completion time.
func appendStamped(dst, ops []planOp, task int64, fetchDone vclock.Time) []planOp {
	base := len(dst)
	dst = append(dst, ops...)
	for i := base; i < len(dst); i++ {
		dst[i].task = task
		if dst[i].minStart < fetchDone {
			dst[i].minStart = fetchDone
		}
	}
	return dst
}

// planCache memoizes the functionality track's store payloads per
// (program, input data) pair. The computed results are a pure function
// of those inputs, and the same task streams are executed by the DSim
// model, the RTL-style model, and repeated harness runs; memoizing
// removes redundant host compute without affecting any simulated timing
// (DESIGN.md §1). Cached payloads are shared read-only.
var planCache = struct {
	sync.Mutex
	m map[uint64][][]byte
}{m: make(map[uint64][][]byte)}

func fnv64(h uint64, data []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	// Mix eight bytes per multiply. The value is a process-local memo
	// key — never serialized or compared across runs — so word-chunked
	// FNV (different from canonical byte-at-a-time FNV-1a) is fine, and
	// it makes hashing megabytes of LOAD payloads cheap.
	for len(data) >= 8 {
		h ^= binary.LittleEndian.Uint64(data)
		h *= 1099511628211
		data = data[8:]
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// buildPlan decodes and functionally executes an instruction stream,
// returning per-module op lists. read is the functional memory access
// (the caller decides whether it is recorded as a DMA trace); it must
// return a fresh buffer the plan may retain. The functional core is
// only allocated when the (program, data) pair has not run before.
func buildPlan(read func(addr mem.Addr, size int) []byte,
	desc Desc, task int64) (loads, computes, stores []planOp, err error) {

	progBytes := read(desc.Prog, int(desc.Count)*InstrSize)

	// Pass 1: decode, gather LOAD data, and hash (program + inputs).
	type decoded struct {
		instr Instr
		data  []byte  // LOAD payload
		dmas  []dmaOp // LOAD/STORE address plan
	}
	// The store payloads are independent of where operands live in DRAM
	// (LoadBytes consumes the gathered data; compute reads SRAM offsets
	// only), so the memo key skips each instruction's DRAM field — layers
	// with identical schedules and operand data share one interpretation
	// even though their buffers sit at different arena offsets.
	key := uint64(0)
	ins := make([]decoded, desc.Count)
	sawFinish := false
	for idx := 0; idx < int(desc.Count); idx++ {
		ib := progBytes[idx*InstrSize : (idx+1)*InstrSize]
		key = fnv64(key, ib[:8])
		key = fnv64(key, ib[16:])
		i, derr := DecodeInstr(ib)
		if derr != nil {
			return nil, nil, nil, derr
		}
		d := decoded{instr: i}
		switch i.Op {
		case OpLoad:
			elemSize := 1
			if i.Buf == BufAcc {
				elemSize = 4
			}
			rowBytes := int(i.Cols) * elemSize
			var data []byte
			if i.Stride == 0 || int(i.Stride) == rowBytes {
				data = read(mem.Addr(i.DRAM), int(i.Rows)*rowBytes)
				d.dmas = append(d.dmas, dmaOp{kind: mem.Read,
					addr: mem.Addr(i.DRAM), size: len(data)})
			} else {
				data = make([]byte, int(i.Rows)*rowBytes)
				for r := 0; r < int(i.Rows); r++ {
					a := mem.Addr(i.DRAM) + mem.Addr(r*int(i.Stride))
					copy(data[r*rowBytes:], read(a, rowBytes))
					d.dmas = append(d.dmas, dmaOp{kind: mem.Read, addr: a, size: rowBytes})
				}
			}
			d.data = data
			key = fnv64(key, data)
		case OpFinish:
			sawFinish = true
		}
		ins[idx] = d
	}
	if !sawFinish {
		return nil, nil, nil, fmt.Errorf("vta: program lacks FINISH")
	}

	// Pass 2: produce store payloads — from the cache when this exact
	// (program, data) pair has run before, else by interpreting.
	planCache.Lock()
	cached, hit := planCache.m[key]
	planCache.Unlock()
	var payloads [][]byte
	if hit {
		payloads = cached
	} else {
		core := NewCore()
		for idx := range ins {
			i := &ins[idx].instr
			switch i.Op {
			case OpLoad:
				if err := core.LoadBytes(i, ins[idx].data); err != nil {
					return nil, nil, nil, err
				}
			case OpGemm:
				if err := core.Gemm(i); err != nil {
					return nil, nil, nil, err
				}
			case OpAlu:
				if err := core.Alu(i); err != nil {
					return nil, nil, nil, err
				}
			case OpStore:
				out, serr := core.StoreBytes(i)
				if serr != nil {
					return nil, nil, nil, serr
				}
				payloads = append(payloads, out)
			}
		}
		planCache.Lock()
		planCache.m[key] = payloads
		planCache.Unlock()
	}

	// Assemble per-module op lists.
	storeIdx := 0
	for idx := range ins {
		i := ins[idx].instr
		op := planOp{instr: i, cycles: instrCycles(&i), task: task, dmas: ins[idx].dmas}
		switch i.Op {
		case OpLoad:
			loads = append(loads, op)
		case OpGemm, OpAlu:
			computes = append(computes, op)
		case OpStore:
			out := payloads[storeIdx]
			storeIdx++
			rowBytes := int(i.Cols)
			if i.Stride == 0 || int(i.Stride) == rowBytes {
				op.dmas = append(op.dmas, dmaOp{kind: mem.Write,
					addr: mem.Addr(i.DRAM), size: len(out), data: out})
			} else {
				for r := 0; r < int(i.Rows); r++ {
					a := mem.Addr(i.DRAM) + mem.Addr(r*int(i.Stride))
					op.dmas = append(op.dmas, dmaOp{kind: mem.Write, addr: a,
						size: rowBytes, data: out[r*rowBytes : (r+1)*rowBytes]})
				}
			}
			stores = append(stores, op)
		case OpFinish:
			op.finish = true
			computes = append(computes, op)
		}
	}
	return loads, computes, stores, nil
}
