// Package vta implements the deep-learning accelerator stack of the
// paper's evaluation (§6.1, modeled on the Apache Versatile Tensor
// Accelerator [6]): a tensor ISA with explicit dependency queues between
// the load, compute and store modules, a functional interpreter, an
// event-driven DSim performance model (the compiled-LPN form: module
// timelines with dependency-token joins), an RTL-style cycle model, and
// a TVM-like driver/compiler that lowers GEMM and convolution layers to
// instruction streams.
package vta

import (
	"encoding/binary"
	"fmt"

	"nexsim/internal/mem"
)

// Opcode is a VTA instruction opcode.
type Opcode uint8

const (
	OpLoad Opcode = iota
	OpGemm
	OpAlu
	OpStore
	OpFinish
)

func (o Opcode) String() string {
	switch o {
	case OpLoad:
		return "LOAD"
	case OpGemm:
		return "GEMM"
	case OpAlu:
		return "ALU"
	case OpStore:
		return "STORE"
	default:
		return "FINISH"
	}
}

// Buffer identifies an on-chip SRAM.
type Buffer uint8

const (
	BufInput  Buffer = iota // int8 input activations
	BufWeight               // int8 weights
	BufAcc                  // int32 accumulators (also bias loads)
)

// AluOp is a vector ALU operation on the accumulator buffer.
type AluOp uint8

const (
	AluAdd AluOp = iota // acc[dst] += acc[src] or imm
	AluMax              // acc[dst] = max(acc[dst], acc[src] or imm)
	AluMin
	AluShr // arithmetic shift right by imm
)

// SRAM capacities (elements).
const (
	InputBufSize  = 64 << 10  // int8
	WeightBufSize = 256 << 10 // int8
	AccBufSize    = 32 << 10  // int32
)

// Instr is one decoded VTA instruction. Dependency flags follow VTA's
// 4-queue protocol: e.g. a GEMM with PopPrev waits for a token from the
// load module; a STORE with PushPrev hands one back to compute.
type Instr struct {
	Op Opcode

	// Dependency queue flags.
	PopPrev, PopNext, PushPrev, PushNext bool

	// LOAD/STORE fields.
	Buf      Buffer
	SRAMBase uint32 // element offset in the target buffer
	DRAM     uint64 // byte address in host memory
	Rows     uint16 // 2-D tile: rows
	Cols     uint16 // elements per row
	Stride   uint32 // DRAM row stride in bytes

	// GEMM fields: acc[M][N] += in[M][K] * wgt[N][K].
	M, N, K  uint16
	InBase   uint32 // input buffer element offset
	WgtBase  uint32 // weight buffer element offset
	AccBase  uint32 // accumulator element offset
	ResetAcc bool   // zero the destination first
	// ALU fields.
	Alu    AluOp
	UseImm bool
	Imm    int32
	SrcAcc uint32 // source accumulator offset (when !UseImm)
	Len    uint32 // elements
	// STORE extra: right-shift applied when narrowing acc to int8.
	Shift uint8
}

// InstrSize is the encoded instruction size in bytes.
const InstrSize = 48

// Encode serializes the instruction.
func (i *Instr) Encode() [InstrSize]byte {
	var b [InstrSize]byte
	b[0] = byte(i.Op)
	var flags byte
	if i.PopPrev {
		flags |= 1
	}
	if i.PopNext {
		flags |= 2
	}
	if i.PushPrev {
		flags |= 4
	}
	if i.PushNext {
		flags |= 8
	}
	if i.ResetAcc {
		flags |= 16
	}
	if i.UseImm {
		flags |= 32
	}
	b[1] = flags
	b[2] = byte(i.Buf)
	b[3] = byte(i.Alu)
	binary.LittleEndian.PutUint32(b[4:], i.SRAMBase)
	binary.LittleEndian.PutUint64(b[8:], i.DRAM)
	binary.LittleEndian.PutUint16(b[16:], i.Rows)
	binary.LittleEndian.PutUint16(b[18:], i.Cols)
	binary.LittleEndian.PutUint32(b[20:], i.Stride)
	binary.LittleEndian.PutUint16(b[24:], i.M)
	binary.LittleEndian.PutUint16(b[26:], i.N)
	binary.LittleEndian.PutUint16(b[28:], i.K)
	binary.LittleEndian.PutUint32(b[30:], i.InBase)
	binary.LittleEndian.PutUint32(b[34:], i.WgtBase)
	binary.LittleEndian.PutUint32(b[38:], i.AccBase)
	binary.LittleEndian.PutUint32(b[42:], i.Len)
	b[46] = byte(i.Shift)
	// Imm/SrcAcc share bytes 30..37 with the GEMM operand bases: an ALU
	// instruction has no GEMM fields.
	if i.Op == OpAlu {
		binary.LittleEndian.PutUint32(b[30:], uint32(i.Imm))
		binary.LittleEndian.PutUint32(b[34:], i.SrcAcc)
	}
	return b
}

// DecodeInstr parses one encoded instruction.
func DecodeInstr(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("vta: short instruction (%d bytes)", len(b))
	}
	var i Instr
	i.Op = Opcode(b[0])
	if i.Op > OpFinish {
		return Instr{}, fmt.Errorf("vta: bad opcode %d", b[0])
	}
	flags := b[1]
	i.PopPrev = flags&1 != 0
	i.PopNext = flags&2 != 0
	i.PushPrev = flags&4 != 0
	i.PushNext = flags&8 != 0
	i.ResetAcc = flags&16 != 0
	i.UseImm = flags&32 != 0
	i.Buf = Buffer(b[2])
	i.Alu = AluOp(b[3])
	i.SRAMBase = binary.LittleEndian.Uint32(b[4:])
	i.DRAM = binary.LittleEndian.Uint64(b[8:])
	i.Rows = binary.LittleEndian.Uint16(b[16:])
	i.Cols = binary.LittleEndian.Uint16(b[18:])
	i.Stride = binary.LittleEndian.Uint32(b[20:])
	i.M = binary.LittleEndian.Uint16(b[24:])
	i.N = binary.LittleEndian.Uint16(b[26:])
	i.K = binary.LittleEndian.Uint16(b[28:])
	if i.Op == OpAlu {
		i.Imm = int32(binary.LittleEndian.Uint32(b[30:]))
		i.SrcAcc = binary.LittleEndian.Uint32(b[34:])
	} else {
		i.InBase = binary.LittleEndian.Uint32(b[30:])
		i.WgtBase = binary.LittleEndian.Uint32(b[34:])
	}
	i.AccBase = binary.LittleEndian.Uint32(b[38:])
	i.Len = binary.LittleEndian.Uint32(b[42:])
	i.Shift = b[46]
	return i, nil
}

// WriteProgram encodes a program contiguously into memory at base and
// returns the byte length.
func WriteProgram(m *mem.Memory, base mem.Addr, prog []Instr) int {
	off := base
	for idx := range prog {
		b := prog[idx].Encode()
		m.WriteAt(off, b[:])
		off += InstrSize
	}
	return len(prog) * InstrSize
}
