package vta

import (
	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// RTLDevice is the cycle-level VTA model — the Verilator stand-in.
// Module semantics and the DMA/result sequence match the DSim model
// exactly; the difference is that every busy clock cycle is an explicit
// simulation step.
type RTLDevice struct {
	name string
	clk  vclock.Hz
	host accel.Host

	cycle int64

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	mods [3]rtlMod
	// Dependency queues: counts of available tokens (RTL queues carry no
	// timestamps; availability is implicit in cycle order).
	ld2cmp, cmp2ld, cmp2st, st2cmp int

	nextTask int64
	stats    accel.DeviceStats
	busyAt   vclock.Time

	scratch planScratch // reusable plan-hash buffers
}

type rtlMod struct {
	ops       []planOp
	cur       *planOp
	busyUntil int64
}

// NewRTLDevice builds the cycle-level VTA model.
func NewRTLDevice(clk vclock.Hz) *RTLDevice {
	return &RTLDevice{name: "vta-rtl", clk: clk}
}

// SetHost wires the device.
func (d *RTLDevice) SetHost(h accel.Host) { d.host = h }

// Name implements accel.Device.
func (d *RTLDevice) Name() string { return d.name }

// Stats implements accel.Device.
func (d *RTLDevice) Stats() accel.DeviceStats { return d.stats }

func (d *RTLDevice) timeAt(c int64) vclock.Time   { return vclock.Time(0).Add(d.clk.CyclesDur(c)) }
func (d *RTLDevice) cyclesAt(t vclock.Time) int64 { return d.clk.Cycles(t.Sub(0)) }

func (d *RTLDevice) busy() bool {
	for m := range d.mods {
		if d.mods[m].cur != nil || len(d.mods[m].ops) > 0 {
			return true
		}
	}
	return false
}

// RegRead implements accel.Device.
func (d *RTLDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *RTLDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	}
}

func (d *RTLDevice) startTask(at vclock.Time, descAddr mem.Addr) {
	d.stats.TasksStarted++
	if d.inFlight == 0 {
		d.busyAt = at
	}
	d.inFlight++
	task := d.nextTask
	d.nextTask++

	var descB [DescSize]byte
	d.host.ZeroCostRead(descAddr, descB[:])
	desc := decodeDesc(descB[:])
	d.host.DMA(at, mem.Read, descAddr, DescSize)
	fetchDone := d.host.DMA(at, mem.Read, desc.Prog, int(desc.Count)*InstrSize)
	d.stats.DMABytes += int64(DescSize + int(desc.Count)*InstrSize)

	plan, scratch, err := cachedPlan(d.host, desc, d.scratch)
	d.scratch = scratch
	if err != nil {
		panic("vta-rtl: " + err.Error())
	}
	// Copies of the master ops are stamped with this task's id and
	// gated on the instruction fetch; the shared master stays untouched.
	d.mods[0].ops = appendStamped(d.mods[0].ops, plan.loads, task, fetchDone)
	d.mods[1].ops = appendStamped(d.mods[1].ops, plan.computes, task, fetchDone)
	d.mods[2].ops = appendStamped(d.mods[2].ops, plan.stores, task, fetchDone)
	if c := d.cyclesAt(at); d.cycle < c {
		d.cycle = c
	}
}

// depsAvailable reports whether module m's next op can pop its tokens.
func (d *RTLDevice) depsAvailable(m int, op *planOp) bool {
	i := &op.instr
	switch m {
	case 0:
		return !i.PopNext || d.cmp2ld > 0
	case 1:
		if i.PopPrev && d.ld2cmp == 0 {
			return false
		}
		if i.PopNext && d.st2cmp == 0 {
			return false
		}
		return true
	default:
		return !i.PopPrev || d.cmp2st > 0
	}
}

// step advances every module one clock cycle.
func (d *RTLDevice) step() {
	now := d.timeAt(d.cycle)
	for m := range d.mods {
		ms := &d.mods[m]
		// Complete.
		if ms.cur != nil && d.cycle >= ms.busyUntil {
			op := ms.cur
			ms.cur = nil
			i := &op.instr
			switch m {
			case 0:
				if i.PushNext {
					d.ld2cmp++
				}
			case 1:
				if i.PushPrev {
					d.cmp2ld++
				}
				if i.PushNext {
					d.cmp2st++
				}
			case 2:
				if i.PushPrev {
					d.st2cmp++
				}
			}
			if op.finish {
				done := d.timeAt(d.cycle)
				d.completed++
				d.inFlight--
				d.stats.TasksCompleted++
				if d.inFlight == 0 {
					d.stats.BusyTime += done.Sub(d.busyAt)
				}
				if d.irqEnabled {
					d.host.RaiseIRQ(done, IRQVector)
				}
			}
		}
		// Issue.
		if ms.cur == nil && len(ms.ops) > 0 {
			op := &ms.ops[0]
			if d.cyclesAt(op.minStart) > d.cycle || !d.depsAvailable(m, op) {
				continue
			}
			cur := ms.ops[0]
			ms.ops = ms.ops[1:]
			i := &cur.instr
			switch m {
			case 0:
				if i.PopNext {
					d.cmp2ld--
				}
			case 1:
				if i.PopPrev {
					d.ld2cmp--
				}
				if i.PopNext {
					d.st2cmp--
				}
			case 2:
				if i.PopPrev {
					d.cmp2st--
				}
			}
			busy := d.cycle + cur.cycles
			for _, dma := range cur.dmas {
				comp := d.host.DMA(now, dma.kind, dma.addr, dma.size)
				d.stats.DMABytes += int64(dma.size)
				if dma.kind == mem.Write && dma.data != nil {
					d.host.ZeroCostWrite(dma.addr, dma.data)
				}
				if c := d.cyclesAt(comp); c > busy {
					busy = c
				}
			}
			ms.busyUntil = busy
			ms.cur = &cur
		}
	}
}

// Advance implements accel.Device.
//
// Between module events step() is a pure no-op: completions fire at a
// module's busyUntil, issues need an idle module whose head op is past
// minStart with its dependency tokens available, and tokens only change
// at those same events. Jumping straight to the nearest such cycle is
// therefore cycle-exact and skips the dead stepping in between.
func (d *RTLDevice) Advance(t vclock.Time) {
	target := d.cyclesAt(t)
	for d.cycle <= target {
		if !d.busy() {
			d.cycle = target + 1
			return
		}
		next := int64(1 << 62)
		for m := range d.mods {
			ms := &d.mods[m]
			if ms.cur != nil {
				if ms.busyUntil < next {
					next = ms.busyUntil
				}
			} else if len(ms.ops) > 0 {
				op := &ms.ops[0]
				if !d.depsAvailable(m, op) {
					continue // unblocks only at another module's completion
				}
				if c := d.cyclesAt(op.minStart); c < next {
					next = c
				}
			}
		}
		if next > d.cycle {
			if next > target {
				d.cycle = target + 1
				return
			}
			d.cycle = next
		}
		d.step()
		d.cycle++
	}
}

// NextEvent implements accel.Device.
func (d *RTLDevice) NextEvent() (vclock.Time, bool) {
	if !d.busy() {
		return vclock.Never, false
	}
	next := int64(1 << 62)
	for m := range d.mods {
		ms := &d.mods[m]
		if ms.cur != nil {
			if ms.busyUntil < next {
				next = ms.busyUntil
			}
		} else if len(ms.ops) > 0 {
			c := d.cyclesAt(ms.ops[0].minStart)
			if c < d.cycle {
				c = d.cycle
			}
			if c < next {
				next = c
			}
		}
	}
	if next < d.cycle {
		next = d.cycle
	}
	return d.timeAt(next), true
}

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *RTLDevice) MayRaiseIRQ() bool { return d.irqEnabled }
