package vta

import (
	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Register map.
const (
	RegDoorbell  = 0x00
	RegStatus    = 0x04
	RegBusy      = 0x08
	RegIRQEnable = 0x0c
)

// IRQVector is the completion interrupt vector.
const IRQVector = 11

// Device is the DSim model of VTA. Its performance track is the
// compiled form of the accelerator's LPN: the three module timelines
// (load, compute, store) advance op by op, joining on dependency-queue
// tokens exactly as the LPN transitions would — the paper's lpnlang
// similarly compiles LPNs into specialized C++ simulators (§4.1).
type Device struct {
	name string
	clk  vclock.Hz
	host accel.Host
	now  vclock.Time

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	mods [3]modState // load, compute, store

	// Dependency queues carry completion timestamps.
	ld2cmp, cmp2ld, cmp2st, st2cmp []vclock.Time

	nextTask int64
	stats    accel.DeviceStats
	busyAt   vclock.Time

	scratch planScratch // reusable plan-hash buffers
}

type modState struct {
	ops  []planOp
	free vclock.Time // module available from
}

// NewDevice builds the DSim VTA at clock clk.
func NewDevice(clk vclock.Hz) *Device {
	return &Device{name: "vta", clk: clk}
}

// SetHost wires the device.
func (d *Device) SetHost(h accel.Host) { d.host = h }

// Name implements accel.Device.
func (d *Device) Name() string { return d.name }

// Stats implements accel.Device.
func (d *Device) Stats() accel.DeviceStats { return d.stats }

// Now returns the device-local time.
func (d *Device) Now() vclock.Time { return d.now }

// RegRead implements accel.Device.
func (d *Device) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *Device) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	}
}

func (d *Device) startTask(at vclock.Time, descAddr mem.Addr) {
	d.stats.TasksStarted++
	if d.inFlight == 0 {
		d.busyAt = at
	}
	d.inFlight++
	task := d.nextTask
	d.nextTask++

	var descB [DescSize]byte
	d.host.ZeroCostRead(descAddr, descB[:])
	desc := decodeDesc(descB[:])

	// Timed fetch of descriptor + instruction stream; all of the task's
	// ops start after the fetch response.
	d.host.DMA(at, mem.Read, descAddr, DescSize)
	fetchDone := d.host.DMA(at, mem.Read, desc.Prog, int(desc.Count)*InstrSize)
	d.stats.DMABytes += int64(DescSize + int(desc.Count)*InstrSize)

	plan, scratch, err := cachedPlan(d.host, desc, d.scratch)
	d.scratch = scratch
	if err != nil {
		panic("vta: " + err.Error())
	}
	// Copies of the master ops are stamped with this task's id and
	// gated on the instruction fetch; the shared master stays untouched.
	d.mods[0].ops = appendStamped(d.mods[0].ops, plan.loads, task, fetchDone)
	d.mods[1].ops = appendStamped(d.mods[1].ops, plan.computes, task, fetchDone)
	d.mods[2].ops = appendStamped(d.mods[2].ops, plan.stores, task, fetchDone)
}

// depsReady returns the earliest time the op's dependency pops are
// satisfied, or (Never, false) if a required token has not been pushed.
func (d *Device) depsReady(module int, op *planOp) (vclock.Time, bool) {
	t := op.minStart
	need := func(q []vclock.Time) bool {
		if len(q) == 0 {
			return false
		}
		if q[0] > t {
			t = q[0]
		}
		return true
	}
	i := &op.instr
	switch module {
	case 0: // load: next = compute
		if i.PopNext && !need(d.cmp2ld) {
			return vclock.Never, false
		}
	case 1: // compute: prev = load, next = store
		if i.PopPrev && !need(d.ld2cmp) {
			return vclock.Never, false
		}
		if i.PopNext && !need(d.st2cmp) {
			return vclock.Never, false
		}
	case 2: // store: prev = compute
		if i.PopPrev && !need(d.cmp2st) {
			return vclock.Never, false
		}
	}
	return t, true
}

// nextStart computes when module m's next op could start.
func (d *Device) nextStart(m int) (vclock.Time, bool) {
	ms := &d.mods[m]
	if len(ms.ops) == 0 {
		return vclock.Never, false
	}
	t, ok := d.depsReady(m, &ms.ops[0])
	if !ok {
		return vclock.Never, false
	}
	if ms.free > t {
		t = ms.free
	}
	return t, true
}

// execute runs module m's next op starting at time start.
func (d *Device) execute(m int, start vclock.Time) {
	ms := &d.mods[m]
	op := ms.ops[0]
	ms.ops = ms.ops[1:]
	i := &op.instr

	// Consume dependency tokens.
	switch m {
	case 0:
		if i.PopNext {
			d.cmp2ld = d.cmp2ld[1:]
		}
	case 1:
		if i.PopPrev {
			d.ld2cmp = d.ld2cmp[1:]
		}
		if i.PopNext {
			d.st2cmp = d.st2cmp[1:]
		}
	case 2:
		if i.PopPrev {
			d.cmp2st = d.cmp2st[1:]
		}
	}

	finish := start.Add(d.clk.CyclesDur(op.cycles))
	for _, dma := range op.dmas {
		comp := d.host.DMA(start, dma.kind, dma.addr, dma.size)
		d.stats.DMABytes += int64(dma.size)
		if dma.kind == mem.Write && dma.data != nil {
			d.host.ZeroCostWrite(dma.addr, dma.data)
		}
		if comp > finish {
			finish = comp
		}
	}
	ms.free = finish
	d.stats.HostSteps++

	// Push dependency tokens.
	switch m {
	case 0:
		if i.PushNext {
			d.ld2cmp = append(d.ld2cmp, finish)
		}
	case 1:
		if i.PushPrev {
			d.cmp2ld = append(d.cmp2ld, finish)
		}
		if i.PushNext {
			d.cmp2st = append(d.cmp2st, finish)
		}
	case 2:
		if i.PushPrev {
			d.st2cmp = append(d.st2cmp, finish)
		}
	}

	if op.finish {
		d.completed++
		d.inFlight--
		d.stats.TasksCompleted++
		if d.inFlight == 0 {
			d.stats.BusyTime += finish.Sub(d.busyAt)
		}
		if d.irqEnabled {
			d.host.RaiseIRQ(finish, IRQVector)
		}
	}
}

// Advance implements accel.Device: run module ops whose start times fall
// at or before t, in global start-time order.
func (d *Device) Advance(t vclock.Time) {
	if t > d.now {
		d.now = t
	}
	for {
		best, bestM := vclock.Never, -1
		for m := 0; m < 3; m++ {
			if s, ok := d.nextStart(m); ok && s < best {
				best, bestM = s, m
			}
		}
		if bestM < 0 || best > t {
			return
		}
		d.execute(bestM, best)
	}
}

// NextEvent implements accel.Device.
func (d *Device) NextEvent() (vclock.Time, bool) {
	best, any := vclock.Never, false
	for m := 0; m < 3; m++ {
		if s, ok := d.nextStart(m); ok && s < best {
			best, any = s, true
		}
	}
	return best, any
}

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *Device) MayRaiseIRQ() bool { return d.irqEnabled }
