package vta

import (
	"fmt"

	"nexsim/internal/mem"
)

// GemmTask describes a quantized dense GEMM for the compiler:
// C[M][N] = clamp((A[M][K] · B[N][K]ᵀ + bias) >> Shift), optionally
// ReLU'd. This is the primitive TVM lowers convolutions to (im2col).
type GemmTask struct {
	M, N, K int
	A       mem.Addr // int8 A[M][K], row-major
	B       mem.Addr // int8 B[N][K], row-major
	Bias    mem.Addr // int32 bias block (16 replicated rows of N), 0 = none
	C       mem.Addr // int8 C[M][N], row-major
	Shift   uint8
	ReLU    bool
}

const tileRows = 16 // output rows per tile (one acc half holds 16*N)

// Compile lowers a GEMM into a VTA instruction stream with
// double-buffered loads and the dependency flags that let the load,
// compute and store modules pipeline (the VTA 4-queue protocol).
func Compile(t GemmTask) ([]Instr, error) {
	if t.M <= 0 || t.N <= 0 || t.K <= 0 {
		return nil, fmt.Errorf("vta: empty gemm %dx%dx%d", t.M, t.N, t.K)
	}
	if t.M%tileRows != 0 {
		return nil, fmt.Errorf("vta: M=%d must be a multiple of %d", t.M, tileRows)
	}
	if 2*tileRows*t.N > AccBufSize {
		return nil, fmt.Errorf("vta: N=%d too large for double-buffered accumulator", t.N)
	}

	// K-chunking: when the operands exceed SRAM, the schedule streams K
	// in chunks, reloading weight and input slices per chunk (what the
	// TVM schedule does for large layers). When everything fits,
	// weights stay resident for the whole task.
	kc := t.K
	if m := InputBufSize / (2 * tileRows); kc > m {
		kc = m
	}
	if m := WeightBufSize / (2 * t.N); kc > m {
		kc = m
	}
	if kc < 1 {
		return nil, fmt.Errorf("vta: N=%d too large for weight SRAM", t.N)
	}
	chunks := (t.K + kc - 1) / kc
	if chunks > 1 {
		return compileChunked(t, kc, chunks)
	}

	var prog []Instr
	// Weights stay resident for the whole task.
	prog = append(prog, Instr{
		Op: OpLoad, Buf: BufWeight, SRAMBase: 0,
		DRAM: uint64(t.B), Rows: uint16(t.N), Cols: uint16(t.K),
	})

	tiles := t.M / tileRows
	for ti := 0; ti < tiles; ti++ {
		half := uint32(ti % 2)
		inBase := half * uint32(tileRows*t.K)
		accBase := half * uint32(tileRows*t.N)

		// Input tile; the last load of the tile's group pushes to compute.
		load := Instr{
			Op: OpLoad, Buf: BufInput, SRAMBase: inBase,
			DRAM: uint64(t.A) + uint64(ti*tileRows*t.K),
			Rows: tileRows, Cols: uint16(t.K),
			PopNext: ti >= 2, // wait until compute freed this half
		}
		if t.Bias == 0 {
			load.PushNext = true
			prog = append(prog, load)
		} else {
			prog = append(prog, load)
			prog = append(prog, Instr{
				Op: OpLoad, Buf: BufAcc, SRAMBase: accBase,
				DRAM: uint64(t.Bias), Rows: tileRows, Cols: uint16(t.N),
				PushNext: true,
			})
		}

		// GEMM; frees the load half when done, waits for the store half
		// to drain before overwriting it.
		prog = append(prog, Instr{
			Op: OpGemm, M: tileRows, N: uint16(t.N), K: uint16(t.K),
			InBase: inBase, WgtBase: 0, AccBase: accBase,
			ResetAcc: t.Bias == 0,
			PopPrev:  true,
			PopNext:  ti >= 2,
			// Free the input half only when a later load will reclaim it,
			// so dependency tokens balance exactly per task.
			PushPrev: ti < tiles-2,
		})

		// Quantization and activation.
		if t.Shift > 0 {
			prog = append(prog, Instr{
				Op: OpAlu, Alu: AluShr, UseImm: true, Imm: int32(t.Shift),
				AccBase: accBase, Len: uint32(tileRows * t.N),
			})
		}
		if t.ReLU {
			prog = append(prog, Instr{
				Op: OpAlu, Alu: AluMax, UseImm: true, Imm: 0,
				AccBase: accBase, Len: uint32(tileRows * t.N),
			})
		}
		// The last compute op of the tile releases the store.
		prog[len(prog)-1].PushNext = true

		prog = append(prog, Instr{
			Op: OpStore, Buf: BufAcc, SRAMBase: accBase,
			DRAM: uint64(t.C) + uint64(ti*tileRows*t.N),
			Rows: tileRows, Cols: uint16(t.N),
			PopPrev:  true,
			PushPrev: true,
		})
	}

	// Drain outstanding store→compute tokens so FINISH orders after the
	// final stores: stores pushed `tiles` tokens and the GEMMs of tiles
	// 2..n-1 consumed tiles-2 of them.
	outstanding := tiles
	if outstanding > 2 {
		outstanding = 2
	}
	for i := 0; i < outstanding; i++ {
		prog = append(prog, Instr{Op: OpAlu, Alu: AluAdd, UseImm: true, Len: 0, PopNext: true})
	}
	prog = append(prog, Instr{Op: OpFinish})
	return prog, nil
}

// compileChunked emits the K-streaming schedule: per output tile, the K
// dimension is processed in chunks with double-buffered weight and input
// slices, accumulating into the tile's accumulator half.
func compileChunked(t GemmTask, kc, chunks int) ([]Instr, error) {
	tiles := t.M / tileRows
	groups := tiles * chunks
	var prog []Instr
	g := 0
	for ti := 0; ti < tiles; ti++ {
		accBase := uint32(ti%2) * uint32(tileRows*t.N)
		for ci := 0; ci < chunks; ci++ {
			k0 := ci * kc
			kn := kc
			if k0+kn > t.K {
				kn = t.K - k0
			}
			half := uint32(g % 2)
			inBase := half * uint32(tileRows*kc)
			wgtBase := half * uint32(t.N*kc)

			// Weight slice: N rows of kn, strided by K.
			prog = append(prog, Instr{
				Op: OpLoad, Buf: BufWeight, SRAMBase: wgtBase,
				DRAM: uint64(t.B) + uint64(k0),
				Rows: uint16(t.N), Cols: uint16(kn), Stride: uint32(t.K),
				PopNext: g >= 2,
			})
			// Input slice: tile rows of kn, strided by K.
			load := Instr{
				Op: OpLoad, Buf: BufInput, SRAMBase: inBase,
				DRAM: uint64(t.A) + uint64(ti*tileRows*t.K+k0),
				Rows: tileRows, Cols: uint16(kn), Stride: uint32(t.K),
			}
			if ci == 0 && t.Bias != 0 {
				prog = append(prog, load)
				prog = append(prog, Instr{
					Op: OpLoad, Buf: BufAcc, SRAMBase: accBase,
					DRAM: uint64(t.Bias), Rows: tileRows, Cols: uint16(t.N),
					PushNext: true,
				})
			} else {
				load.PushNext = true
				prog = append(prog, load)
			}

			prog = append(prog, Instr{
				Op: OpGemm, M: tileRows, N: uint16(t.N), K: uint16(kn),
				InBase: inBase, WgtBase: wgtBase, AccBase: accBase,
				ResetAcc: ci == 0 && t.Bias == 0,
				PopPrev:  true,
				PopNext:  ci == 0 && ti >= 2, // acc half drained by tile ti-2's store
				PushPrev: g < groups-2,
			})
			g++
		}

		if t.Shift > 0 {
			prog = append(prog, Instr{
				Op: OpAlu, Alu: AluShr, UseImm: true, Imm: int32(t.Shift),
				AccBase: accBase, Len: uint32(tileRows * t.N),
			})
		}
		if t.ReLU {
			prog = append(prog, Instr{
				Op: OpAlu, Alu: AluMax, UseImm: true, Imm: 0,
				AccBase: accBase, Len: uint32(tileRows * t.N),
			})
		}
		prog[len(prog)-1].PushNext = true
		prog = append(prog, Instr{
			Op: OpStore, Buf: BufAcc, SRAMBase: accBase,
			DRAM: uint64(t.C) + uint64(ti*tileRows*t.N),
			Rows: tileRows, Cols: uint16(t.N),
			PopPrev:  true,
			PushPrev: true,
		})
	}
	outstanding := tiles
	if outstanding > 2 {
		outstanding = 2
	}
	for i := 0; i < outstanding; i++ {
		prog = append(prog, Instr{Op: OpAlu, Alu: AluAdd, UseImm: true, Len: 0, PopNext: true})
	}
	prog = append(prog, Instr{Op: OpFinish})
	return prog, nil
}

// StoreOperands writes A, B (and bias) into simulated memory in the
// layout Compile expects. bias may be nil.
func StoreOperands(m *mem.Memory, t GemmTask, a, b []int8, bias []int32) {
	writeI8 := func(addr mem.Addr, v []int8) {
		buf := make([]byte, len(v))
		for i, x := range v {
			buf[i] = byte(x)
		}
		m.WriteAt(addr, buf)
	}
	if len(a) != t.M*t.K || len(b) != t.N*t.K {
		panic("vta: operand shape mismatch")
	}
	writeI8(t.A, a)
	writeI8(t.B, b)
	if t.Bias != 0 && bias != nil {
		// Replicate the N-vector across tileRows rows, int32 LE.
		buf := make([]byte, 4*tileRows*t.N)
		for r := 0; r < tileRows; r++ {
			for j, v := range bias {
				off := 4 * (r*t.N + j)
				buf[off] = byte(v)
				buf[off+1] = byte(v >> 8)
				buf[off+2] = byte(v >> 16)
				buf[off+3] = byte(v >> 24)
			}
		}
		m.WriteAt(t.Bias, buf)
	}
}

// ReferenceGemm computes the expected C for a GemmTask on the CPU — the
// software fallback and the test oracle.
func ReferenceGemm(t GemmTask, a, b []int8, bias []int32) []int8 {
	out := make([]int8, t.M*t.N)
	for mi := 0; mi < t.M; mi++ {
		for ni := 0; ni < t.N; ni++ {
			var sum int32
			if bias != nil {
				sum = bias[ni]
			}
			for ki := 0; ki < t.K; ki++ {
				sum += int32(a[mi*t.K+ki]) * int32(b[ni*t.K+ki])
			}
			sum >>= uint(t.Shift)
			if t.ReLU && sum < 0 {
				sum = 0
			}
			if sum > 127 {
				sum = 127
			}
			if sum < -128 {
				sum = -128
			}
			out[mi*t.N+ni] = int8(sum)
		}
	}
	return out
}
