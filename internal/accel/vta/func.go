package vta

import (
	"fmt"
)

// Core is the functional model of the VTA datapath: the three SRAMs and
// the semantics of each instruction. It is the functionality track of
// the di-simulated device and also the reference the tests compare
// hardware results against.
type Core struct {
	Input  []int8  // InputBufSize
	Weight []int8  // WeightBufSize
	Acc    []int32 // AccBufSize
}

// NewCore allocates the SRAMs.
func NewCore() *Core {
	return &Core{
		Input:  make([]int8, InputBufSize),
		Weight: make([]int8, WeightBufSize),
		Acc:    make([]int32, AccBufSize),
	}
}

// LoadBytes fills a buffer region from raw DRAM bytes (the data of a
// LOAD DMA). For BufAcc the data is int32 little-endian.
func (c *Core) LoadBytes(i *Instr, data []byte) error {
	n := int(i.Rows) * int(i.Cols)
	switch i.Buf {
	case BufInput:
		if int(i.SRAMBase)+n > len(c.Input) {
			return fmt.Errorf("vta: input load out of range")
		}
		for j := 0; j < n; j++ {
			c.Input[int(i.SRAMBase)+j] = int8(data[j])
		}
	case BufWeight:
		if int(i.SRAMBase)+n > len(c.Weight) {
			return fmt.Errorf("vta: weight load out of range")
		}
		for j := 0; j < n; j++ {
			c.Weight[int(i.SRAMBase)+j] = int8(data[j])
		}
	case BufAcc:
		if int(i.SRAMBase)+n > len(c.Acc) {
			return fmt.Errorf("vta: acc load out of range")
		}
		for j := 0; j < n; j++ {
			c.Acc[int(i.SRAMBase)+j] = int32(uint32(data[4*j]) |
				uint32(data[4*j+1])<<8 | uint32(data[4*j+2])<<16 | uint32(data[4*j+3])<<24)
		}
	default:
		return fmt.Errorf("vta: bad load buffer %d", i.Buf)
	}
	return nil
}

// Gemm executes acc[M][N] += in[M][K] * wgt[N][K].
func (c *Core) Gemm(i *Instr) error {
	m, n, k := int(i.M), int(i.N), int(i.K)
	if int(i.InBase)+m*k > len(c.Input) ||
		int(i.WgtBase)+n*k > len(c.Weight) ||
		int(i.AccBase)+m*n > len(c.Acc) {
		return fmt.Errorf("vta: gemm operand out of range")
	}
	if i.ResetAcc {
		for j := 0; j < m*n; j++ {
			c.Acc[int(i.AccBase)+j] = 0
		}
	}
	for mi := 0; mi < m; mi++ {
		inRow := c.Input[int(i.InBase)+mi*k : int(i.InBase)+mi*k+k]
		accRow := c.Acc[int(i.AccBase)+mi*n:]
		for ni := 0; ni < n; ni++ {
			wgtRow := c.Weight[int(i.WgtBase)+ni*k : int(i.WgtBase)+ni*k+k : int(i.WgtBase)+ni*k+k]
			var s0, s1, s2, s3 int32
			ki := 0
			for ; ki+8 <= k; ki += 8 {
				w := wgtRow[ki : ki+8 : ki+8]
				r := inRow[ki : ki+8 : ki+8]
				s0 += int32(r[0])*int32(w[0]) + int32(r[4])*int32(w[4])
				s1 += int32(r[1])*int32(w[1]) + int32(r[5])*int32(w[5])
				s2 += int32(r[2])*int32(w[2]) + int32(r[6])*int32(w[6])
				s3 += int32(r[3])*int32(w[3]) + int32(r[7])*int32(w[7])
			}
			sum := s0 + s1 + s2 + s3
			for ; ki < k; ki++ {
				sum += int32(inRow[ki]) * int32(wgtRow[ki])
			}
			accRow[ni] += sum
		}
	}
	return nil
}

// Alu executes a vector operation over the accumulator buffer.
func (c *Core) Alu(i *Instr) error {
	n := int(i.Len)
	dst := int(i.AccBase)
	if dst+n > len(c.Acc) {
		return fmt.Errorf("vta: alu dst out of range")
	}
	src := int(i.SrcAcc)
	if !i.UseImm && src+n > len(c.Acc) {
		return fmt.Errorf("vta: alu src out of range")
	}
	for j := 0; j < n; j++ {
		a := c.Acc[dst+j]
		b := i.Imm
		if !i.UseImm {
			b = c.Acc[src+j]
		}
		switch i.Alu {
		case AluAdd:
			a += b
		case AluMax:
			if b > a {
				a = b
			}
		case AluMin:
			if b < a {
				a = b
			}
		case AluShr:
			sh := uint(b & 31)
			a >>= sh
		default:
			return fmt.Errorf("vta: bad alu op %d", i.Alu)
		}
		c.Acc[dst+j] = a
	}
	return nil
}

// StoreBytes narrows an accumulator tile to int8 (with the instruction's
// right shift and saturation) and returns the DRAM bytes of the STORE
// DMA.
func (c *Core) StoreBytes(i *Instr) ([]byte, error) {
	n := int(i.Rows) * int(i.Cols)
	if int(i.SRAMBase)+n > len(c.Acc) {
		return nil, fmt.Errorf("vta: store out of range")
	}
	out := make([]byte, n)
	for j := 0; j < n; j++ {
		v := c.Acc[int(i.SRAMBase)+j] >> uint(i.Shift)
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		out[j] = byte(int8(v))
	}
	return out, nil
}
