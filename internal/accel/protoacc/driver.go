package protoacc

import (
	"nexsim/internal/app"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Driver is the asynchronous Protoacc software driver: the CPU
// preprocesses and launches a series of serialization tasks, then waits
// for the batch to finish (paper §6.1: "Protoacc is used asynchronously
// with the CPU"). It includes the physical-address translation layer the
// paper added — our Store layout already uses physical addresses, so the
// translation is the Store step itself.
type Driver struct {
	MMIOBase mem.Addr
	TaskBuf  mem.Addr
	Slots    int

	// BatchSize is how many descriptors are queued per doorbell
	// (default 8). Larger batches amortize the MMIO/trap cost — the
	// asynchronous usage the paper describes.
	BatchSize int

	slot      int
	queued    uint32
	submitted uint32
	inited    bool
}

// NewDriver builds a driver.
func NewDriver(mmio mem.Addr, taskBuf mem.Addr, slots int) *Driver {
	if slots <= 0 {
		slots = 64
	}
	return &Driver{MMIOBase: mmio, TaskBuf: taskBuf, Slots: slots, BatchSize: 8}
}

// init programs the descriptor ring registers once.
func (dr *Driver) init(e app.Env) {
	if dr.inited {
		return
	}
	dr.inited = true
	e.MMIOWrite(dr.MMIOBase+RegRingBase, uint32(dr.TaskBuf))
	e.MMIOWrite(dr.MMIOBase+RegRingSize, uint32(dr.Slots))
}

// EnableIRQ turns on completion interrupts.
func (dr *Driver) EnableIRQ(e app.Env) {
	e.MMIOWrite(dr.MMIOBase+RegIRQEnable, 1)
}

// Submit queues one serialization task; every BatchSize tasks a single
// doorbell launches the batch. Call Flush (or WaitAll) to launch a
// partial batch.
func (dr *Driver) Submit(e app.Env, d Desc) {
	dr.init(e)
	descAddr := dr.TaskBuf + mem.Addr(dr.slot*DescSize)
	dr.slot = (dr.slot + 1) % dr.Slots
	b := EncodeDesc(d)
	e.TaskWrite(descAddr, b[:])
	dr.queued++
	dr.submitted++
	if int(dr.queued) >= dr.BatchSize {
		dr.Flush(e)
	}
}

// Flush launches all queued descriptors with one doorbell.
func (dr *Driver) Flush(e app.Env) {
	if dr.queued == 0 {
		return
	}
	e.MMIOWrite(dr.MMIOBase+RegBatch, dr.queued)
	dr.queued = 0
}

// Completed reads the completion counter.
func (dr *Driver) Completed(e app.Env) uint32 {
	return e.MMIORead(dr.MMIOBase + RegStatus)
}

// Submitted reports issued tasks.
func (dr *Driver) Submitted() uint32 { return dr.submitted }

// WaitAll flushes pending submissions and polls until everything
// completes.
func (dr *Driver) WaitAll(e app.Env, poll vclock.Duration) {
	dr.Flush(e)
	for dr.Completed(e) < dr.submitted {
		if poll > 0 {
			e.Sleep(poll)
		}
		// poll <= 0 spins on the status register (the common driver
		// behaviour); each read costs the MMIO round trip.
	}
}

// WaitAllIRQ flushes and waits on completion interrupts.
func (dr *Driver) WaitAllIRQ(e app.Env) {
	dr.Flush(e)
	for dr.Completed(e) < dr.submitted {
		e.WaitIRQ(IRQVector)
	}
}
