// Package protoacc implements the Protoacc protobuf-serialization
// accelerator stack of the paper's evaluation (§6.1, modeled on Google's
// Protoacc [31]): a protocol-buffers wire-format serializer (the
// functionality track), descriptor-driven message model, an LPN
// performance model with parallel field-serialization units, an
// RTL-style cycle model, and the asynchronous software driver.
//
// Only the serializer is modeled — the paper does the same ("we only
// consider Protoacc's serializer... deserialization is sequential and
// thus not interesting").
package protoacc

import (
	"encoding/binary"
	"fmt"

	"nexsim/internal/mem"
)

// WireType is a protobuf wire type.
type WireType int

const (
	WireVarint WireType = 0
	WireI64    WireType = 1
	WireBytes  WireType = 2
	WireI32    WireType = 5
)

// FieldKind is the schema-level type of a field.
type FieldKind int

const (
	KindInt64  FieldKind = iota // varint
	KindSint64                  // zigzag varint
	KindFixed64
	KindFixed32
	KindBytes   // length-delimited
	KindMessage // nested message
)

// Wire returns the field kind's wire type.
func (k FieldKind) Wire() WireType {
	switch k {
	case KindInt64, KindSint64:
		return WireVarint
	case KindFixed64:
		return WireI64
	case KindFixed32:
		return WireI32
	default:
		return WireBytes
	}
}

// FieldDesc describes one field of a message type.
type FieldDesc struct {
	Number int
	Kind   FieldKind
	Sub    *MessageDesc // for KindMessage
}

// MessageDesc is a message type: an ordered field list (a miniature
// protobuf descriptor, which in the real stack comes from the protobuf
// compiler).
type MessageDesc struct {
	Name   string
	Fields []FieldDesc
}

// Value is a field value in an in-memory message.
type Value struct {
	Int   uint64   // scalar kinds (pre-zigzag for sint)
	Bytes []byte   // KindBytes
	Msg   *Message // KindMessage
	Set   bool
}

// Message is an in-memory message instance: the "object representation"
// Protoacc serializes from. Values are indexed parallel to the
// descriptor's fields.
type Message struct {
	Desc   *MessageDesc
	Values []Value
}

// NewMessage allocates an empty instance of a type.
func NewMessage(d *MessageDesc) *Message {
	return &Message{Desc: d, Values: make([]Value, len(d.Fields))}
}

// zigzag encodes a signed value for sint fields.
func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// putVarint appends a base-128 varint.
func putVarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// varintLen reports the encoded size of a varint.
func varintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Marshal serializes a message to the protobuf wire format. This is the
// CPU reference implementation (what the Xeon baseline runs) and also
// the accelerator's functional model.
func Marshal(m *Message) []byte {
	return appendMessage(nil, m)
}

func appendMessage(dst []byte, m *Message) []byte {
	for i, f := range m.Desc.Fields {
		v := &m.Values[i]
		if !v.Set {
			continue
		}
		key := uint64(f.Number)<<3 | uint64(f.Kind.Wire())
		dst = putVarint(dst, key)
		switch f.Kind {
		case KindInt64:
			dst = putVarint(dst, v.Int)
		case KindSint64:
			dst = putVarint(dst, zigzag(int64(v.Int)))
		case KindFixed64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v.Int)
			dst = append(dst, b[:]...)
		case KindFixed32:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v.Int))
			dst = append(dst, b[:]...)
		case KindBytes:
			dst = putVarint(dst, uint64(len(v.Bytes)))
			dst = append(dst, v.Bytes...)
		case KindMessage:
			sub := appendMessage(nil, v.Msg)
			dst = putVarint(dst, uint64(len(sub)))
			dst = append(dst, sub...)
		}
	}
	return dst
}

// SerializedSize computes the wire size without serializing.
func SerializedSize(m *Message) int {
	n := 0
	for i, f := range m.Desc.Fields {
		v := &m.Values[i]
		if !v.Set {
			continue
		}
		n += varintLen(uint64(f.Number)<<3 | uint64(f.Kind.Wire()))
		switch f.Kind {
		case KindInt64:
			n += varintLen(v.Int)
		case KindSint64:
			n += varintLen(zigzag(int64(v.Int)))
		case KindFixed64:
			n += 8
		case KindFixed32:
			n += 4
		case KindBytes:
			n += varintLen(uint64(len(v.Bytes))) + len(v.Bytes)
		case KindMessage:
			sub := SerializedSize(v.Msg)
			n += varintLen(uint64(sub)) + sub
		}
	}
	return n
}

// Unmarshal parses wire-format data against a descriptor; used by tests
// to verify serializer correctness end to end.
func Unmarshal(d *MessageDesc, data []byte) (*Message, error) {
	m := NewMessage(d)
	pos := 0
	for pos < len(data) {
		key, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("protoacc: bad key at %d", pos)
		}
		pos += n
		num := int(key >> 3)
		wire := WireType(key & 7)
		idx := -1
		for i, f := range d.Fields {
			if f.Number == num {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("protoacc: unknown field %d", num)
		}
		f := d.Fields[idx]
		v := &m.Values[idx]
		v.Set = true
		switch wire {
		case WireVarint:
			x, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("protoacc: bad varint")
			}
			pos += n
			if f.Kind == KindSint64 {
				v.Int = uint64(int64(x>>1) ^ -int64(x&1))
			} else {
				v.Int = x
			}
		case WireI64:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("protoacc: short fixed64")
			}
			v.Int = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		case WireI32:
			if pos+4 > len(data) {
				return nil, fmt.Errorf("protoacc: short fixed32")
			}
			v.Int = uint64(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		case WireBytes:
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || pos+n+int(l) > len(data) {
				return nil, fmt.Errorf("protoacc: bad length")
			}
			pos += n
			payload := data[pos : pos+int(l)]
			pos += int(l)
			if f.Kind == KindMessage {
				sub, err := Unmarshal(f.Sub, payload)
				if err != nil {
					return nil, err
				}
				v.Msg = sub
			} else {
				v.Bytes = append([]byte(nil), payload...)
			}
		default:
			return nil, fmt.Errorf("protoacc: wire type %d unsupported", wire)
		}
	}
	return m, nil
}

// MemLayout flattens a message into simulated physical memory using
// Protoacc's object layout: a contiguous block per message with scalar
// slots and pointers to out-of-line byte arrays and submessages. The
// accelerator walks this layout with DMAs.
type MemLayout struct {
	Root     mem.Addr
	Total    int   // bytes occupied
	Pointers int   // pointer fields chased
	Fields   int   // set fields across the tree
	DataLen  int64 // out-of-line byte-array payload
}

// Store writes the message tree into memory starting at base and
// returns its layout. The slot layout per message: for each field, 16
// bytes (tag word + value/pointer word).
func Store(m *mem.Memory, base mem.Addr, msg *Message) MemLayout {
	lay := MemLayout{Root: base}
	next := base
	var place func(msg *Message) mem.Addr
	place = func(msg *Message) mem.Addr {
		at := next
		next += mem.Addr(16 * len(msg.Desc.Fields))
		for i, f := range msg.Desc.Fields {
			v := &msg.Values[i]
			slot := at + mem.Addr(16*i)
			tag := uint64(f.Number)<<8 | uint64(f.Kind)
			if !v.Set {
				m.WriteU64(slot, 0)
				continue
			}
			lay.Fields++
			m.WriteU64(slot, tag|1<<63)
			switch f.Kind {
			case KindBytes:
				ptr := next
				next += mem.Addr((len(v.Bytes)+15)/16*16 + 16)
				m.WriteU64(slot+8, uint64(ptr)|uint64(len(v.Bytes))<<40)
				m.WriteAt(ptr, v.Bytes)
				lay.Pointers++
				lay.DataLen += int64(len(v.Bytes))
			case KindMessage:
				sub := place(v.Msg)
				m.WriteU64(slot+8, uint64(sub))
				lay.Pointers++
			default:
				m.WriteU64(slot+8, v.Int)
			}
		}
		return at
	}
	place(msg)
	lay.Total = int(next - base)
	return lay
}
