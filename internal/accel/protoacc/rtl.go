package protoacc

import (
	"fmt"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// RTLDevice is the cycle-level model of the Protoacc serializer — the
// stand-in for Verilator running its RTL. Every busy clock cycle is an
// explicit simulation step; register semantics, DMA sequence and output
// bytes are identical to the DSim model.
type RTLDevice struct {
	name string
	clk  vclock.Hz
	host accel.Host

	cycle int64

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	schemas map[uint32]*MessageDesc

	// Pipeline state. nodeTab holds every block; objQ indexes the
	// currently fetchable ones (pointer chasing releases children).
	nodeTab  []rtlObj
	objQ     []int
	objCur   [objFetchUnits]*rtlObj
	objBusy  [objFetchUnits]int64
	fieldQ   []rtlField
	fieldCur [fieldUnits]*rtlField
	fieldBsy [fieldUnits]int64
	storeQ   []rtlStore
	storeCur *rtlStore
	storeBsy int64

	ringBase mem.Addr
	ringSize int
	ringIdx  int

	remaining map[int64]int64
	outOf     map[int64]rtlStore
	nextTask  int64

	stats     accel.DeviceStats
	busyStart vclock.Time

	// TaskLatency mirrors the DSim device's per-task latency log.
	TaskLatency []TaskSpan
	submitTime  map[int64]vclock.Time

	scratch []byte // reusable plan-hash buffer
}

type rtlObj struct {
	task     int64
	addr     mem.Addr
	size     int
	fields   []rtlField
	children []int // nodeTab indices released by this block's response
}

type rtlField struct {
	task      int64
	encBytes  int64
	dataBytes int64
	dataAddr  mem.Addr
	dataDone  int64 // cycle the LOAD_DATA response arrived (set when issued)
}

type rtlStore struct {
	task int64
	addr mem.Addr
	data []byte
}

// NewRTLDevice builds the cycle-level serializer model.
func NewRTLDevice(clk vclock.Hz) *RTLDevice {
	return &RTLDevice{
		name:       "protoacc-rtl",
		clk:        clk,
		schemas:    make(map[uint32]*MessageDesc),
		remaining:  make(map[int64]int64),
		outOf:      make(map[int64]rtlStore),
		submitTime: make(map[int64]vclock.Time),
	}
}

// SetHost wires the device to its host engine.
func (d *RTLDevice) SetHost(h accel.Host) { d.host = h }

// RegisterSchema mirrors Device.RegisterSchema.
func (d *RTLDevice) RegisterSchema(id uint32, desc *MessageDesc) { d.schemas[id] = desc }

// Latencies returns the per-task latency log.
func (d *RTLDevice) Latencies() []TaskSpan { return d.TaskLatency }

// Name implements accel.Device.
func (d *RTLDevice) Name() string { return d.name }

// Stats implements accel.Device.
func (d *RTLDevice) Stats() accel.DeviceStats { return d.stats }

func (d *RTLDevice) timeAt(c int64) vclock.Time   { return vclock.Time(0).Add(d.clk.CyclesDur(c)) }
func (d *RTLDevice) cyclesAt(t vclock.Time) int64 { return d.clk.Cycles(t.Sub(0)) }

func (d *RTLDevice) busy() bool {
	if len(d.objQ) > 0 || len(d.fieldQ) > 0 || len(d.storeQ) > 0 || d.storeCur != nil {
		return true
	}
	for i := range d.objCur {
		if d.objCur[i] != nil {
			return true
		}
	}
	for i := range d.fieldCur {
		if d.fieldCur[i] != nil {
			return true
		}
	}
	return false
}

// Advance implements accel.Device.
//
// Between unit events step() is a pure no-op: completions fire at a
// unit's busy-until cycle and an idle unit with queued work issues in
// the same step it went idle. Jumping straight to the nearest
// busy-until when no idle unit has work is therefore cycle-exact and
// skips the dead stepping in between.
func (d *RTLDevice) Advance(t vclock.Time) {
	target := d.cyclesAt(t)
	for d.cycle <= target {
		if !d.busy() {
			d.cycle = target + 1
			return
		}
		next := int64(1 << 62)
		use := func(c int64) {
			if c < next {
				next = c
			}
		}
		for i := range d.objCur {
			if d.objCur[i] != nil {
				use(d.objBusy[i])
			} else if len(d.objQ) > 0 {
				use(d.cycle)
			}
		}
		for i := range d.fieldCur {
			if d.fieldCur[i] != nil {
				use(d.fieldBsy[i])
			} else if len(d.fieldQ) > 0 {
				use(d.cycle)
			}
		}
		if d.storeCur != nil {
			use(d.storeBsy)
		} else if len(d.storeQ) > 0 {
			use(d.cycle)
		}
		if next > d.cycle {
			if next > target {
				d.cycle = target + 1
				return
			}
			d.cycle = next
		}
		d.step()
		d.cycle++
	}
}

// NextEvent implements accel.Device.
func (d *RTLDevice) NextEvent() (vclock.Time, bool) {
	if !d.busy() {
		return vclock.Never, false
	}
	next := int64(1 << 62)
	use := func(c int64) {
		if c < next {
			next = c
		}
	}
	for i := range d.objCur {
		if d.objCur[i] != nil {
			use(d.objBusy[i])
		}
	}
	for i := range d.fieldCur {
		if d.fieldCur[i] != nil {
			use(d.fieldBsy[i])
		}
	}
	if d.storeCur != nil {
		use(d.storeBsy)
	}
	if len(d.objQ) > 0 || len(d.fieldQ) > 0 || len(d.storeQ) > 0 {
		use(d.cycle)
	}
	if next < d.cycle {
		next = d.cycle
	}
	return d.timeAt(next), true
}

// step advances all pipeline units one clock cycle.
func (d *RTLDevice) step() {
	now := d.timeAt(d.cycle)

	// Store unit.
	if d.storeCur != nil && d.cycle >= d.storeBsy {
		s := d.storeCur
		d.storeCur = nil
		done := d.host.DMA(now, mem.Write, s.addr, len(s.data))
		d.stats.DMABytes += int64(len(s.data))
		d.host.ZeroCostWrite(s.addr, s.data)
		d.completed++
		d.inFlight--
		d.stats.TasksCompleted++
		d.TaskLatency = append(d.TaskLatency, TaskSpan{Submit: d.submitTime[s.task], Done: done})
		delete(d.submitTime, s.task)
		if d.inFlight == 0 {
			d.stats.BusyTime += done.Sub(d.busyStart)
		}
		if d.irqEnabled {
			d.host.RaiseIRQ(done, IRQVector)
		}
	}
	if d.storeCur == nil && len(d.storeQ) > 0 {
		s := d.storeQ[0]
		d.storeQ = d.storeQ[1:]
		d.storeCur = &s
		d.storeBsy = d.cycle + 4 + int64(len(s.data))/outWriteBytesCyc
	}

	// Field units.
	for i := range d.fieldCur {
		if d.fieldCur[i] != nil && d.cycle >= d.fieldBsy[i] {
			f := d.fieldCur[i]
			d.fieldCur[i] = nil
			d.workDone(f.task, d.cycle)
		}
		if d.fieldCur[i] == nil && len(d.fieldQ) > 0 {
			f := d.fieldQ[0]
			d.fieldQ = d.fieldQ[1:]
			d.fieldCur[i] = &f
			busy := d.cycle + scalarBaseCycles + f.encBytes
			if f.dataBytes > 0 {
				comp := d.host.DMA(now, mem.Read, f.dataAddr, int(f.dataBytes))
				d.stats.DMABytes += f.dataBytes
				busy = d.cycle + scalarBaseCycles + f.dataBytes/dataCopyBytesCyc
				if c := d.cyclesAt(comp); c > busy {
					busy = c
				}
			}
			d.fieldBsy[i] = busy
		}
	}

	// Object fetch units: completing a block releases its fields and
	// its submessage children (pointer chasing).
	for i := range d.objCur {
		if d.objCur[i] != nil && d.cycle >= d.objBusy[i] {
			o := d.objCur[i]
			d.objCur[i] = nil
			d.fieldQ = append(d.fieldQ, o.fields...)
			d.objQ = append(d.objQ, o.children...)
			d.workDone(o.task, d.cycle)
		}
		if d.objCur[i] == nil && len(d.objQ) > 0 {
			idx := d.objQ[0]
			d.objQ = d.objQ[1:]
			o := d.nodeTab[idx]
			d.objCur[i] = &o
			comp := d.host.DMA(now, mem.Read, o.addr, o.size)
			d.stats.DMABytes += int64(o.size)
			busy := d.cycle + descFetchCycles
			if c := d.cyclesAt(comp); c > busy {
				busy = c
			}
			d.objBusy[i] = busy
		}
	}
}

func (d *RTLDevice) workDone(task, cycle int64) {
	d.remaining[task]--
	if d.remaining[task] > 0 {
		return
	}
	delete(d.remaining, task)
	s := d.outOf[task]
	delete(d.outOf, task)
	d.storeQ = append(d.storeQ, s)
}

// RegRead implements accel.Device.
func (d *RTLDevice) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *RTLDevice) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	case RegRingBase:
		d.ringBase = mem.Addr(v)
	case RegRingSize:
		d.ringSize = int(v)
	case RegBatch:
		for i := uint32(0); i < v; i++ {
			d.startTask(at, d.ringBase+mem.Addr(d.ringIdx*DescSize))
			d.ringIdx = (d.ringIdx + 1) % d.ringSize
		}
	}
}

func (d *RTLDevice) startTask(at vclock.Time, descAddr mem.Addr) {
	d.stats.TasksStarted++
	if d.inFlight == 0 {
		d.busyStart = at
	}
	d.inFlight++
	task := d.nextTask
	d.nextTask++
	d.submitTime[task] = at

	var descBytes [DescSize]byte
	d.host.ZeroCostRead(descAddr, descBytes[:])
	desc := decodeDesc(descBytes[:])
	schema := d.schemas[desc.Schema]
	if schema == nil {
		panic(fmt.Sprintf("protoacc-rtl: unregistered schema %d", desc.Schema))
	}

	plan, scratch := cachedPlan(d.host, desc.Root, desc.Out, schema, d.scratch)
	d.scratch = scratch

	total := int64(len(plan.nodes)) + 1
	for _, n := range plan.nodes {
		total += int64(len(n.fields))
	}
	d.remaining[task] = total
	d.outOf[task] = rtlStore{task: task, addr: desc.Out, data: plan.out}

	// The descriptor pseudo-node chains to the root; message nodes chain
	// to their submessages. Only the descriptor is initially fetchable.
	base := len(d.nodeTab) + 1
	d.nodeTab = append(d.nodeTab, rtlObj{
		task: task, addr: descAddr, size: DescSize, children: []int{base},
	})
	for _, n := range plan.nodes {
		var fs []rtlField
		for _, f := range n.fields {
			fs = append(fs, rtlField{task: task, encBytes: f.encBytes,
				dataBytes: f.dataBytes, dataAddr: f.dataAddr})
		}
		o := rtlObj{task: task, addr: n.addr, size: n.size, fields: fs}
		for _, c := range n.children {
			o.children = append(o.children, base+c)
		}
		d.nodeTab = append(d.nodeTab, o)
	}
	d.objQ = append(d.objQ, base-1)
	if c := d.cyclesAt(at); d.cycle < c {
		d.cycle = c
	}
}

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *RTLDevice) MayRaiseIRQ() bool { return d.irqEnabled }
