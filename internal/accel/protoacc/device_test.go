package protoacc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"nexsim/internal/accel"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

type devHost struct {
	mem  *mem.Memory
	lat  vclock.Duration
	dmas int
	irqs []vclock.Time
}

func (h *devHost) DMA(at vclock.Time, kind mem.AccessKind, addr mem.Addr, size int) vclock.Time {
	h.dmas++
	return at.Add(h.lat)
}
func (h *devHost) ZeroCostRead(addr mem.Addr, p []byte)  { h.mem.ReadAt(addr, p) }
func (h *devHost) ZeroCostWrite(addr mem.Addr, p []byte) { h.mem.WriteAt(addr, p) }
func (h *devHost) RaiseIRQ(at vclock.Time, v int)        { h.irqs = append(h.irqs, at) }

// protoDevice is the common surface of both models.
type protoDevice interface {
	accel.Device
	RegisterSchema(id uint32, d *MessageDesc)
}

func stageTask(h *devHost, dev protoDevice) (mem.Addr, *Message, Desc) {
	d := testDesc()
	msg := fillMessage(d)
	dev.RegisterSchema(1, d)
	Store(h.mem, 0x10000, msg)
	desc := Desc{Root: 0x10000, Out: 0x80000, Schema: 1}
	b := EncodeDesc(desc)
	h.mem.WriteAt(0x1000, b[:])
	return 0x1000, msg, desc
}

func drain(dev accel.Device) {
	for i := 0; i < 10_000_000; i++ {
		at, ok := dev.NextEvent()
		if !ok {
			return
		}
		dev.Advance(at)
	}
	panic("device did not quiesce")
}

func readWire(h *devHost, out mem.Addr) []byte {
	var lenb [4]byte
	h.mem.ReadAt(out, lenb[:])
	n := binary.LittleEndian.Uint32(lenb[:])
	wire := make([]byte, n)
	h.mem.ReadAt(out+4, wire)
	return wire
}

func TestDSimSerializesCorrectly(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 40 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, msg, desc := stageTask(h, dev)
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	drain(dev)

	if got := dev.RegRead(dev.Now(), RegStatus); got != 1 {
		t.Fatalf("status = %d", got)
	}
	wire := readWire(h, desc.Out)
	if !bytes.Equal(wire, Marshal(msg)) {
		t.Fatal("device wire output differs from Marshal")
	}
	// And it round-trips.
	back, err := Unmarshal(msg.Desc, wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Values[0].Int != msg.Values[0].Int {
		t.Fatal("round trip corrupted")
	}
}

func TestRTLSerializesCorrectly(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 40 * vclock.Nanosecond}
	dev := NewRTLDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, msg, desc := stageTask(h, dev)
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	drain(dev)
	if got := dev.RegRead(vclock.Time(1)<<40, RegStatus); got != 1 {
		t.Fatalf("status = %d", got)
	}
	if !bytes.Equal(readWire(h, desc.Out), Marshal(msg)) {
		t.Fatal("RTL wire output differs from Marshal")
	}
}

func TestDSimAndRTLAgree(t *testing.T) {
	run := func(mk func(h *devHost) protoDevice) ([]byte, vclock.Time, int) {
		h := &devHost{mem: mem.New(0), lat: 40 * vclock.Nanosecond}
		dev := mk(h)
		descAddr, _, desc := stageTask(h, dev)
		dev.RegWrite(0, RegDoorbell, uint32(descAddr))
		drain(dev)
		if len(h.irqs) == 0 {
			// IRQs disabled; use busy time end as completion proxy.
		}
		return readWire(h, desc.Out), vclock.Time(int64(dev.Stats().BusyTime)), h.dmas
	}
	dsimWire, dsimBusy, dsimDMAs := run(func(h *devHost) protoDevice {
		d := NewDevice(2 * vclock.GHz)
		d.SetHost(h)
		return d
	})
	rtlWire, rtlBusy, rtlDMAs := run(func(h *devHost) protoDevice {
		d := NewRTLDevice(2 * vclock.GHz)
		d.SetHost(h)
		return d
	})
	if !bytes.Equal(dsimWire, rtlWire) {
		t.Fatal("outputs differ")
	}
	if dsimDMAs != rtlDMAs {
		t.Fatalf("DMA counts differ: %d vs %d", dsimDMAs, rtlDMAs)
	}
	ratio := float64(dsimBusy) / float64(rtlBusy)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("busy times diverge: dsim %v rtl %v", dsimBusy, rtlBusy)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// Protoacc chases pointers: its completion time must grow with
	// memory latency — the mechanism behind the paper's finding that
	// Protoacc only wins when memory latency < 4ns.
	run := func(lat vclock.Duration) vclock.Duration {
		h := &devHost{mem: mem.New(0), lat: lat}
		dev := NewDevice(2 * vclock.GHz)
		dev.SetHost(h)
		descAddr, _, _ := stageTask(h, dev)
		dev.RegWrite(0, RegDoorbell, uint32(descAddr))
		drain(dev)
		return dev.Stats().BusyTime
	}
	fast := run(4 * vclock.Nanosecond)
	slow := run(400 * vclock.Nanosecond)
	if slow < fast*2 {
		t.Fatalf("latency insensitive: %v vs %v", slow, fast)
	}
}

func TestBatchOfTasks(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 20 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	d := testDesc()
	dev.RegisterSchema(1, d)
	const n = 8
	for i := 0; i < n; i++ {
		msg := fillMessage(d)
		base := mem.Addr(0x10000 + i*0x4000)
		Store(h.mem, base, msg)
		desc := Desc{Root: base, Out: mem.Addr(0x100000 + i*0x1000), Schema: 1}
		b := EncodeDesc(desc)
		descAddr := mem.Addr(0x1000 + i*DescSize)
		h.mem.WriteAt(descAddr, b[:])
		dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	}
	drain(dev)
	if got := dev.RegRead(dev.Now(), RegStatus); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
	if len(dev.TaskLatency) != n {
		t.Fatalf("TaskLatency entries = %d", len(dev.TaskLatency))
	}
	for _, s := range dev.TaskLatency {
		if s.Done <= s.Submit {
			t.Fatal("non-positive task latency")
		}
	}
	// All outputs valid.
	for i := 0; i < n; i++ {
		wire := readWire(h, mem.Addr(0x100000+i*0x1000))
		if _, err := Unmarshal(d, wire); err != nil {
			t.Fatalf("task %d output invalid: %v", i, err)
		}
	}
}

func TestIRQOnCompletion(t *testing.T) {
	h := &devHost{mem: mem.New(0), lat: 20 * vclock.Nanosecond}
	dev := NewDevice(2 * vclock.GHz)
	dev.SetHost(h)
	descAddr, _, _ := stageTask(h, dev)
	dev.RegWrite(0, RegIRQEnable, 1)
	dev.RegWrite(0, RegDoorbell, uint32(descAddr))
	drain(dev)
	if len(h.irqs) != 1 {
		t.Fatalf("irqs = %d", len(h.irqs))
	}
}
