package protoacc

import (
	"bytes"
	"testing"
	"testing/quick"

	"nexsim/internal/mem"
	"nexsim/internal/xrand"
)

func testDesc() *MessageDesc {
	inner := &MessageDesc{
		Name: "Inner",
		Fields: []FieldDesc{
			{Number: 1, Kind: KindInt64},
			{Number: 2, Kind: KindBytes},
		},
	}
	return &MessageDesc{
		Name: "Outer",
		Fields: []FieldDesc{
			{Number: 1, Kind: KindInt64},
			{Number: 2, Kind: KindSint64},
			{Number: 3, Kind: KindFixed64},
			{Number: 4, Kind: KindFixed32},
			{Number: 5, Kind: KindBytes},
			{Number: 6, Kind: KindMessage, Sub: inner},
		},
	}
}

func fillMessage(d *MessageDesc) *Message {
	m := NewMessage(d)
	m.Values[0] = Value{Int: 12345, Set: true}
	neg := int64(-99)
	m.Values[1] = Value{Int: uint64(neg), Set: true}
	m.Values[2] = Value{Int: 0xdeadbeefcafe, Set: true}
	m.Values[3] = Value{Int: 0x1234, Set: true}
	m.Values[4] = Value{Bytes: []byte("payload bytes here"), Set: true}
	sub := NewMessage(d.Fields[5].Sub)
	sub.Values[0] = Value{Int: 7, Set: true}
	sub.Values[1] = Value{Bytes: []byte("inner"), Set: true}
	m.Values[5] = Value{Msg: sub, Set: true}
	return m
}

func TestMarshalRoundTrip(t *testing.T) {
	d := testDesc()
	m := fillMessage(d)
	wire := Marshal(m)
	got, err := Unmarshal(d, wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0].Int != 12345 {
		t.Errorf("int64 = %d", got.Values[0].Int)
	}
	if int64(got.Values[1].Int) != -99 {
		t.Errorf("sint64 = %d", int64(got.Values[1].Int))
	}
	if got.Values[2].Int != 0xdeadbeefcafe {
		t.Errorf("fixed64 = %#x", got.Values[2].Int)
	}
	if !bytes.Equal(got.Values[4].Bytes, []byte("payload bytes here")) {
		t.Errorf("bytes = %q", got.Values[4].Bytes)
	}
	if got.Values[5].Msg == nil || got.Values[5].Msg.Values[0].Int != 7 {
		t.Error("nested message lost")
	}
	if !bytes.Equal(got.Values[5].Msg.Values[1].Bytes, []byte("inner")) {
		t.Error("nested bytes lost")
	}
}

func TestSerializedSizeMatches(t *testing.T) {
	m := fillMessage(testDesc())
	if got, want := SerializedSize(m), len(Marshal(m)); got != want {
		t.Fatalf("SerializedSize = %d, Marshal = %d", got, want)
	}
}

func TestUnsetFieldsSkipped(t *testing.T) {
	d := testDesc()
	m := NewMessage(d)
	m.Values[0] = Value{Int: 1, Set: true}
	wire := Marshal(m)
	got, err := Unmarshal(d, wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[4].Set {
		t.Fatal("unset field appeared")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool {
		z := zigzag(v)
		back := int64(z>>1) ^ -int64(z&1)
		return back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		enc := putVarint(nil, v)
		if len(enc) != varintLen(v) {
			return false
		}
		var dec uint64
		shift := 0
		for _, b := range enc {
			dec |= uint64(b&0x7f) << shift
			shift += 7
		}
		return dec == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreLayout(t *testing.T) {
	m := fillMessage(testDesc())
	pm := mem.New(0)
	lay := Store(pm, 0x1000, m)
	if lay.Fields != 8 { // 6 outer + 2 inner
		t.Fatalf("Fields = %d, want 8", lay.Fields)
	}
	if lay.Pointers != 3 { // 2 byte arrays + 1 submessage
		t.Fatalf("Pointers = %d, want 3", lay.Pointers)
	}
	if lay.DataLen != int64(len("payload bytes here")+len("inner")) {
		t.Fatalf("DataLen = %d", lay.DataLen)
	}
	if lay.Total <= 0 {
		t.Fatal("empty layout")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	d := testDesc()
	if _, err := Unmarshal(d, []byte{0xff}); err == nil {
		t.Fatal("bad key accepted")
	}
	// Field 9 does not exist.
	if _, err := Unmarshal(d, putVarint(nil, 9<<3|0)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestUnmarshalNeverPanics corrupts valid wire bytes; Unmarshal must
// error or succeed, never panic.
func TestUnmarshalNeverPanics(t *testing.T) {
	d := testDesc()
	base := Marshal(fillMessage(d))
	rng := xrand.New(99)
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), base...)
		switch trial % 3 {
		case 0:
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		case 1:
			data = data[:rng.Intn(len(data))]
		case 2:
			for k := 0; k < 3; k++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			Unmarshal(d, data)
		}()
	}
}
