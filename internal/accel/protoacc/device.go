package protoacc

import (
	"encoding/binary"
	"fmt"

	"nexsim/internal/accel"
	"nexsim/internal/dsim"
	"nexsim/internal/lpn"
	"nexsim/internal/lpnlang"
	"nexsim/internal/mem"
	"nexsim/internal/vclock"
)

// Register map (byte offsets).
const (
	RegDoorbell  = 0x00 // W: physical address of a single task descriptor
	RegStatus    = 0x04 // R: completed-task counter
	RegBusy      = 0x08 // R: tasks in flight
	RegIRQEnable = 0x0c
	RegRingBase  = 0x10 // W: descriptor ring base address
	RegRingSize  = 0x14 // W: descriptor ring capacity (slots)
	RegBatch     = 0x18 // W: launch the next N ring descriptors
)

// IRQVector is the completion interrupt vector.
const IRQVector = 9

// DescSize is the task-descriptor size: root (8) | out (8) | schema (4) |
// pad (4).
const DescSize = 24

// Desc describes one serialization task.
type Desc struct {
	Root   mem.Addr // root message block (Store layout)
	Out    mem.Addr // output buffer: u32 length followed by wire bytes
	Schema uint32   // schema id registered on the device
}

// EncodeDesc serializes a descriptor.
func EncodeDesc(d Desc) [DescSize]byte {
	var b [DescSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(d.Root))
	binary.LittleEndian.PutUint64(b[8:], uint64(d.Out))
	binary.LittleEndian.PutUint32(b[16:], d.Schema)
	return b
}

func decodeDesc(b []byte) Desc {
	return Desc{
		Root:   mem.Addr(binary.LittleEndian.Uint64(b[0:])),
		Out:    mem.Addr(binary.LittleEndian.Uint64(b[8:])),
		Schema: binary.LittleEndian.Uint32(b[16:]),
	}
}

// Timing parameters of the modeled serializer (Protoacc-like): several
// parallel field-serialization units, a memory unit for object and data
// fetches, and a streaming output writer.
const (
	fieldUnits       = 4
	objFetchUnits    = 2
	scalarBaseCycles = 6  // key + varint encode
	dataCopyBytesCyc = 8  // streaming copy bytes/cycle
	outWriteBytesCyc = 16 // output writer bytes/cycle
	descFetchCycles  = 8
	dispatchCycles   = 2
)

// nodeRec is one memory block in the device's fetch table (a task
// descriptor or a message block). Node-token attribute 0 indexes this
// table.
type nodeRec struct {
	task     int64
	addr     mem.Addr
	size     int
	fields   []planField
	children []int
}

// outRec is a task's pending output store.
type outRec struct {
	addr mem.Addr
	data []byte
}

// Device is the DSim model of the Protoacc serializer. Its LPN chains
// dependent memory accesses — a submessage block is fetched only after
// its parent's DMA response delivers the pointer — which is what makes
// Protoacc memory-latency bound (§6.4).
type Device struct {
	dsim.Base
	clk vclock.Hz

	completed  uint32
	inFlight   uint32
	irqEnabled bool

	schemas map[uint32]*MessageDesc

	ringBase mem.Addr
	ringSize int
	ringIdx  int

	nodeQ  *lpn.Place
	storeQ *lpn.Place

	nodeTab   []nodeRec
	outTab    map[int64]outRec
	remaining map[int64]int64 // taskID -> outstanding nodes+fields
	nextTask  int64

	// TaskLatency records per-task (submit, complete) pairs for tail
	// latency analysis (§6.8).
	TaskLatency []TaskSpan
	submitTime  map[int64]vclock.Time

	extraDMABytes int64
	scratch       []byte // reusable plan-hash buffer
}

// TaskSpan is one task's lifetime.
type TaskSpan struct {
	Submit, Done vclock.Time
}

// Latencies returns the per-task latency log (for §6.8 tail analysis).
func (d *Device) Latencies() []TaskSpan { return d.TaskLatency }

// NewDevice builds the DSim Protoacc model at clock clk.
func NewDevice(clk vclock.Hz) *Device {
	d := &Device{
		clk:        clk,
		schemas:    make(map[uint32]*MessageDesc),
		outTab:     make(map[int64]outRec),
		remaining:  make(map[int64]int64),
		submitTime: make(map[int64]vclock.Time),
	}
	b := lpnlang.NewBuilder("protoacc", clk)

	// Token attribute layouts:
	//   nodeQ/objResp:  [nodeTab index, 0, 0, task]
	//   fieldQ:         [encBytes, 0, 0, task]
	//   dataQ/dataResp: [encBytes, dataBytes, dataAddr, task]
	//   storeQ/done:    [outBytes, 0, 0, task]
	d.nodeQ = b.Queue("nodes", 0)
	objResp := b.Queue("objResp", 0)
	fieldQ := b.Queue("fields", 0)
	dataQ := b.Queue("dataFields", 0)
	dataResp := b.Queue("dataResp", 0)
	fieldDone := b.Queue("fieldDone", 0)
	d.storeQ = b.Queue("store", 0)
	storeDone := b.Queue("storeDone", 0)

	// Object/descriptor block fetch: an addressed DMA whose response
	// gates dispatch. The fetch unit is occupied until the response
	// returns (it chases one pointer at a time), which is what makes
	// Protoacc's throughput memory-latency bound (§6.4).
	b.Stage("fetchObj", d.nodeQ, nil,
		func(f *lpn.Firing) vclock.Duration {
			t := f.Tok(0)
			rec := d.nodeTab[t.Attrs[0]]
			comp := d.Host.DMA(f.Time, mem.Read, rec.addr, rec.size)
			d.extraDMABytes += int64(rec.size)
			return comp.Sub(f.Time) + d.clk.CyclesDur(descFetchCycles)
		},
		lpnlang.Servers(objFetchUnits),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			t := f.Tok(0)
			d.Net.Inject(objResp, lpn.Tok(done, t.Attrs[0], 0, 0, t.Attrs[3]))
		}))

	// Dispatch a fetched block: release its fields and chase its
	// submessage pointers (child nodes become fetchable only now).
	b.Stage("dispatch", objResp, nil, b.Cycles(dispatchCycles),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			t := f.Tok(0)
			rec := d.nodeTab[t.Attrs[0]]
			for _, fi := range rec.fields {
				if fi.dataBytes > 0 {
					d.Net.Inject(dataQ, lpn.Tok(done, fi.encBytes, fi.dataBytes,
						int64(fi.dataAddr), rec.task))
				} else {
					d.Net.Inject(fieldQ, lpn.Tok(done, fi.encBytes, 0, 0, rec.task))
				}
			}
			for _, c := range rec.children {
				d.Net.Inject(d.nodeQ, lpn.Tok(done, int64(c), 0, 0, rec.task))
			}
			d.workDone(rec.task, f.Time)
		}))

	// Shared pool of field-serialization units.
	pool := b.Credits("fieldUnits", fieldUnits)

	// Scalar fields: encode immediately.
	b.Stage("serialize", fieldQ, fieldDone,
		b.CyclesFunc(func(f *lpn.Firing) int64 {
			return scalarBaseCycles + f.Tok(0).Attrs[0]
		}),
		lpnlang.Servers(0),
		lpnlang.AlsoConsume(pool, 1),
		lpnlang.AlsoRelease(pool))

	// Data-bearing fields: fetch the payload first (content filling);
	// the load unit blocks on its response, like the object fetchers.
	b.Stage("loadData", dataQ, nil,
		func(f *lpn.Firing) vclock.Duration {
			t := f.Tok(0)
			comp := d.Host.DMA(f.Time, mem.Read, mem.Addr(t.Attrs[2]), int(t.Attrs[1]))
			d.extraDMABytes += t.Attrs[1]
			return comp.Sub(f.Time) + d.clk.CyclesDur(4)
		},
		lpnlang.Servers(objFetchUnits),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			t := f.Tok(0)
			d.Net.Inject(dataResp, lpn.Tok(done, t.Attrs[0], t.Attrs[1], t.Attrs[2], t.Attrs[3]))
		}))
	b.Stage("serializeData", dataResp, fieldDone,
		b.CyclesFunc(func(f *lpn.Firing) int64 {
			return scalarBaseCycles + f.Tok(0).Attrs[1]/dataCopyBytesCyc
		}),
		lpnlang.Servers(0),
		lpnlang.AlsoConsume(pool, 1),
		lpnlang.AlsoRelease(pool))

	// Field completion accounting.
	b.Stage("account", fieldDone, nil, nil,
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.workDone(f.Tok(0).Attrs[3], f.Time)
		}))

	// Output writer: the task's assembled wire bytes stream to memory.
	b.Stage("store", d.storeQ, nil,
		b.CyclesFunc(func(f *lpn.Firing) int64 {
			return 4 + f.Tok(0).Attrs[0]/outWriteBytesCyc
		}),
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			t := f.Tok(0)
			task := t.Attrs[3]
			out := d.outTab[task]
			delete(d.outTab, task)
			comp := d.Host.DMA(f.Time, mem.Write, out.addr, len(out.data))
			d.extraDMABytes += int64(len(out.data))
			d.Host.ZeroCostWrite(out.addr, out.data)
			d.Net.Inject(storeDone, lpn.Tok(comp, t.Attrs[0], 0, 0, task))
		}))

	// Task completion.
	b.Stage("finish", storeDone, nil, nil,
		lpnlang.Effect(func(f *lpn.Firing, done vclock.Time) {
			d.taskDone(f.Tok(0).Attrs[3], f.Time)
		}))

	d.Init("protoacc", nil, b.MustBuild())
	return d
}

// SetHost wires the device to its host engine.
func (d *Device) SetHost(h accel.Host) { d.Host = h }

// Stats implements accel.Device, including the bytes moved by the
// addressed DMA effects.
func (d *Device) Stats() accel.DeviceStats {
	s := d.Base.Stats()
	s.DMABytes += d.extraDMABytes
	return s
}

// RegisterSchema makes a message type available to the device under id
// (standing in for Protoacc's descriptor-table pointers).
func (d *Device) RegisterSchema(id uint32, desc *MessageDesc) {
	d.schemas[id] = desc
}

// workDone decrements a task's outstanding node+field count; at zero the
// output store is scheduled.
func (d *Device) workDone(task int64, at vclock.Time) {
	d.remaining[task]--
	if d.remaining[task] > 0 {
		return
	}
	delete(d.remaining, task)
	d.Net.Inject(d.storeQ, lpn.Tok(at, int64(len(d.outTab[task].data)), 0, 0, task))
}

func (d *Device) taskDone(task int64, at vclock.Time) {
	d.completed++
	d.inFlight--
	d.TaskCompleted(at)
	d.TaskLatency = append(d.TaskLatency, TaskSpan{Submit: d.submitTime[task], Done: at})
	delete(d.submitTime, task)
	if d.irqEnabled {
		d.Host.RaiseIRQ(at, IRQVector)
	}
}

// RegRead implements accel.Device.
func (d *Device) RegRead(at vclock.Time, off mem.Addr) uint32 {
	d.Advance(at)
	switch off {
	case RegStatus:
		return d.completed
	case RegBusy:
		return d.inFlight
	default:
		return 0
	}
}

// RegWrite implements accel.Device.
func (d *Device) RegWrite(at vclock.Time, off mem.Addr, v uint32) {
	d.Advance(at)
	switch off {
	case RegDoorbell:
		d.startTask(at, mem.Addr(v))
	case RegIRQEnable:
		d.irqEnabled = v != 0
	case RegRingBase:
		d.ringBase = mem.Addr(v)
	case RegRingSize:
		d.ringSize = int(v)
	case RegBatch:
		// Asynchronous batch launch: the CPU queued v descriptors in the
		// ring; one doorbell starts them all (Protoacc's batch protocol).
		for i := uint32(0); i < v; i++ {
			d.startTask(at, d.ringBase+mem.Addr(d.ringIdx*DescSize))
			d.ringIdx = (d.ringIdx + 1) % d.ringSize
		}
	}
}

// startTask runs the functionality track (walk the object graph,
// serialize) and plans the performance track's addressed DMA chain.
func (d *Device) startTask(at vclock.Time, descAddr mem.Addr) {
	d.TaskStarted(at)
	if d.inFlight == 0 {
		// No in-flight tokens reference the fetch table when the device
		// is idle; truncate in place so it does not grow across tasks.
		d.nodeTab = d.nodeTab[:0]
	}
	d.inFlight++
	task := d.nextTask
	d.nextTask++
	d.submitTime[task] = at

	var descBytes [DescSize]byte
	d.Host.ZeroCostRead(descAddr, descBytes[:])
	desc := decodeDesc(descBytes[:])
	schema := d.schemas[desc.Schema]
	if schema == nil {
		panic(fmt.Sprintf("protoacc: unregistered schema %d", desc.Schema))
	}

	plan, scratch := cachedPlan(d.Host, desc.Root, desc.Out, schema, d.scratch)
	d.scratch = scratch

	// Table entries: the descriptor pseudo-node chains to the root
	// message node; message nodes chain to their submessages.
	base := len(d.nodeTab) + 1 // message nodes start after the desc node
	d.nodeTab = append(d.nodeTab, nodeRec{
		task: task, addr: descAddr, size: DescSize, children: []int{base},
	})
	total := int64(1) // the descriptor node itself
	for _, n := range plan.nodes {
		rec := nodeRec{task: task, addr: n.addr, size: n.size, fields: n.fields}
		for _, c := range n.children {
			rec.children = append(rec.children, base+c)
		}
		d.nodeTab = append(d.nodeTab, rec)
		total += 1 + int64(len(n.fields))
	}
	d.remaining[task] = total
	d.outTab[task] = outRec{addr: desc.Out, data: plan.out}

	// Only the descriptor fetch is initially runnable; everything else
	// is discovered by chasing pointers.
	d.Net.Inject(d.nodeQ, lpn.Tok(at, int64(base-1), 0, 0, task))
}

// MayRaiseIRQ reports whether an Advance may deliver an interrupt to the
// host (parsim's async-grant eligibility predicate): only once the
// driver has enabled interrupts via the IRQ-enable register.
func (d *Device) MayRaiseIRQ() bool { return d.irqEnabled }
