package protoacc

import (
	"encoding/binary"

	"nexsim/internal/mem"
)

// planNode is one message block to fetch.
type planNode struct {
	addr   mem.Addr
	size   int
	fields []planField
	// children are the submessage nodes discovered in this block: the
	// hardware cannot fetch them before this block's response arrives
	// (pointer chasing — the latency dependence §6.4's sweep exposes).
	children []int
}

// planField is one set field's work.
type planField struct {
	encBytes  int64
	dataBytes int64
	dataAddr  mem.Addr
}

// taskPlan is everything both performance models need to execute one
// serialization task.
type taskPlan struct {
	nodes []planNode
	out   []byte // u32 length + wire bytes
}

// buildPlan walks the Store memory layout (via readObj/readData, so the
// caller chooses whether reads are recorded as DMAs), reconstructs the
// message, serializes it, and returns the per-node/per-field plan in the
// preorder the hardware processes blocks.
func buildPlan(readObj, readData func(addr mem.Addr, size int) []byte,
	root mem.Addr, outAddr mem.Addr, schema *MessageDesc) taskPlan {

	var nodes []planNode
	var visit func(addr mem.Addr, desc *MessageDesc) (*Message, int)
	visit = func(addr mem.Addr, desc *MessageDesc) (*Message, int) {
		blockLen := 16 * len(desc.Fields)
		block := readObj(addr, blockLen)
		msg := NewMessage(desc)
		node := planNode{addr: addr, size: blockLen}
		type subref struct {
			idx  int
			addr mem.Addr
		}
		var subs []subref
		for i, f := range desc.Fields {
			tag := binary.LittleEndian.Uint64(block[16*i:])
			if tag&(1<<63) == 0 {
				continue
			}
			val := binary.LittleEndian.Uint64(block[16*i+8:])
			v := &msg.Values[i]
			v.Set = true
			fi := planField{}
			switch f.Kind {
			case KindBytes:
				ptr := mem.Addr(val & (1<<40 - 1))
				length := int(val >> 40)
				v.Bytes = readData(ptr, length)
				fi.dataBytes = int64(length)
				fi.dataAddr = ptr
				fi.encBytes = int64(varintLen(uint64(length)) + length + 1)
			case KindMessage:
				subs = append(subs, subref{i, mem.Addr(val)})
				continue // submessages are their own nodes
			default:
				v.Int = val
				fi.encBytes = int64(varintLen(val) + 1)
			}
			node.fields = append(node.fields, fi)
		}
		nodes = append(nodes, node)
		self := len(nodes) - 1
		for _, s := range subs {
			sub, childIdx := visit(s.addr, desc.Fields[s.idx].Sub)
			msg.Values[s.idx].Msg = sub
			nodes[self].children = append(nodes[self].children, childIdx)
		}
		return msg, self
	}
	msg, _ := visit(root, schema)

	wire := Marshal(msg)
	out := make([]byte, 4+len(wire))
	binary.LittleEndian.PutUint32(out, uint32(len(wire)))
	copy(out[4:], wire)
	return taskPlan{nodes: nodes, out: out}
}
