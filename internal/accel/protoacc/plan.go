package protoacc

import (
	"encoding/binary"
	"sync"

	"nexsim/internal/mem"
)

// planCache memoizes the entire task plan per (root address, schema,
// object graph content) hash. The node table and the wire output are
// pure functions of those inputs — the blocks embed every submessage and
// data pointer, so hashing the root address plus all fetched bytes pins
// the full layout — and the same staged batches are serialized by the
// LPN model, the RTL-style model, repeated harness runs, and every point
// of a latency sweep; memoizing removes redundant host compute without
// affecting any simulated timing. Cached plans are shared read-only.
var planCache = struct {
	sync.Mutex
	m map[uint64]*taskPlan
}{m: make(map[uint64]*taskPlan)}

func fnv64(h uint64, data []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	// Word-chunked FNV: the value is a process-local memo key, never
	// serialized or compared across runs.
	for len(data) >= 8 {
		h ^= binary.LittleEndian.Uint64(data)
		h *= 1099511628211
		data = data[8:]
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	h ^= v
	h *= 1099511628211
	return h
}

// descFP fingerprints a schema's wire-relevant structure (field numbers
// and kinds, recursively): block bytes alone do not determine the wire
// encoding.
func descFP(d *MessageDesc) uint64 {
	h := fnvU64(0, uint64(len(d.Fields)))
	for _, f := range d.Fields {
		h = fnvU64(h, uint64(f.Number)<<8|uint64(f.Kind))
		if f.Sub != nil {
			h = fnvU64(h, descFP(f.Sub))
		}
	}
	return h
}

// planNode is one message block to fetch.
type planNode struct {
	addr   mem.Addr
	size   int
	fields []planField
	// children are the submessage nodes discovered in this block: the
	// hardware cannot fetch them before this block's response arrives
	// (pointer chasing — the latency dependence §6.4's sweep exposes).
	children []int
}

// planField is one set field's work.
type planField struct {
	encBytes  int64
	dataBytes int64
	dataAddr  mem.Addr
}

// taskPlan is everything both performance models need to execute one
// serialization task.
type taskPlan struct {
	nodes []planNode
	out   []byte // u32 length + wire bytes
}

// zeroCostReader is the slice of accel.Host the plan cache needs.
type zeroCostReader interface {
	ZeroCostRead(addr mem.Addr, p []byte)
}

// cachedPlan returns the (shared, read-only) plan for the layout rooted
// at root, building and caching it on first sight. scratch is the
// caller's reusable hash buffer, returned possibly grown.
func cachedPlan(host zeroCostReader, root, outAddr mem.Addr,
	schema *MessageDesc, scratch []byte) (*taskPlan, []byte) {

	readS := func(addr mem.Addr, size int, buf []byte) []byte {
		if cap(buf) < size {
			buf = make([]byte, size+size/2+64)
		}
		host.ZeroCostRead(addr, buf[:size])
		return buf
	}
	key, scratch := hashPlan(readS, root, schema, scratch)
	planCache.Lock()
	plan, hit := planCache.m[key]
	planCache.Unlock()
	if !hit {
		read := func(addr mem.Addr, size int) []byte {
			buf := make([]byte, size)
			host.ZeroCostRead(addr, buf)
			return buf
		}
		p := buildPlan(read, read, root, outAddr, schema)
		plan = &p
		planCache.Lock()
		planCache.m[key] = plan
		planCache.Unlock()
	}
	return plan, scratch
}

// hashPlan computes the plan-cache key for the layout rooted at root: the
// root address, the schema fingerprint, and every block and data byte the
// plan walk would fetch, hashed in walk order. It reads through scratch
// so a cache hit allocates nothing proportional to the message.
func hashPlan(read func(addr mem.Addr, size int, scratch []byte) []byte,
	root mem.Addr, schema *MessageDesc, scratch []byte) (uint64, []byte) {

	key := fnvU64(descFP(schema), uint64(root))
	var visit func(addr mem.Addr, desc *MessageDesc)
	visit = func(addr mem.Addr, desc *MessageDesc) {
		blockLen := 16 * len(desc.Fields)
		scratch = read(addr, blockLen, scratch)
		key = fnv64(key, scratch[:blockLen])
		type subref struct {
			addr mem.Addr
			desc *MessageDesc
		}
		type dataref struct {
			addr mem.Addr
			size int
		}
		var subs []subref
		var datas []dataref
		for i, f := range desc.Fields {
			tag := binary.LittleEndian.Uint64(scratch[16*i:])
			if tag&(1<<63) == 0 {
				continue
			}
			val := binary.LittleEndian.Uint64(scratch[16*i+8:])
			switch f.Kind {
			case KindBytes:
				datas = append(datas, dataref{mem.Addr(val & (1<<40 - 1)), int(val >> 40)})
			case KindMessage:
				subs = append(subs, subref{mem.Addr(val), f.Sub})
			}
		}
		// The block bytes are fully consumed above, so the scratch can be
		// reused for the data payloads and the child blocks.
		for _, d := range datas {
			scratch = read(d.addr, d.size, scratch)
			key = fnv64(key, scratch[:d.size])
		}
		for _, s := range subs {
			visit(s.addr, s.desc)
		}
	}
	visit(root, schema)
	return key, scratch
}

// buildPlan walks the Store memory layout (via readObj/readData, so the
// caller chooses whether reads are recorded as DMAs), reconstructs the
// message, serializes it, and returns the per-node/per-field plan in the
// preorder the hardware processes blocks.
func buildPlan(readObj, readData func(addr mem.Addr, size int) []byte,
	root mem.Addr, outAddr mem.Addr, schema *MessageDesc) taskPlan {

	var nodes []planNode
	var visit func(addr mem.Addr, desc *MessageDesc) (*Message, int)
	visit = func(addr mem.Addr, desc *MessageDesc) (*Message, int) {
		blockLen := 16 * len(desc.Fields)
		block := readObj(addr, blockLen)
		msg := NewMessage(desc)
		node := planNode{addr: addr, size: blockLen}
		type subref struct {
			idx  int
			addr mem.Addr
		}
		var subs []subref
		for i, f := range desc.Fields {
			tag := binary.LittleEndian.Uint64(block[16*i:])
			if tag&(1<<63) == 0 {
				continue
			}
			val := binary.LittleEndian.Uint64(block[16*i+8:])
			v := &msg.Values[i]
			v.Set = true
			fi := planField{}
			switch f.Kind {
			case KindBytes:
				ptr := mem.Addr(val & (1<<40 - 1))
				length := int(val >> 40)
				v.Bytes = readData(ptr, length)
				fi.dataBytes = int64(length)
				fi.dataAddr = ptr
				fi.encBytes = int64(varintLen(uint64(length)) + length + 1)
			case KindMessage:
				subs = append(subs, subref{i, mem.Addr(val)})
				continue // submessages are their own nodes
			default:
				v.Int = val
				fi.encBytes = int64(varintLen(val) + 1)
			}
			node.fields = append(node.fields, fi)
		}
		nodes = append(nodes, node)
		self := len(nodes) - 1
		for _, s := range subs {
			sub, childIdx := visit(s.addr, desc.Fields[s.idx].Sub)
			msg.Values[s.idx].Msg = sub
			nodes[self].children = append(nodes[self].children, childIdx)
		}
		return msg, self
	}
	msg, _ := visit(root, schema)

	wire := Marshal(msg)
	out := make([]byte, 4+len(wire))
	binary.LittleEndian.PutUint32(out, uint32(len(wire)))
	copy(out[4:], wire)
	return taskPlan{nodes: nodes, out: out}
}
