package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// snapshotDriftChecker enforces the checkpoint/fork subsystem's central
// contract (DESIGN.md §7): a snapshot blob is a pure function of the
// logical engine state. The classic way that contract rots is adding a
// field to an engine struct and forgetting its encoder line — the blob
// still decodes, the byte-identity tests only catch it if the new field
// actually diverges inside the tested prefix window, and the bug
// surfaces weeks later as an unexplainable fork mismatch.
//
// The rule: every field of a struct that declares a checkpoint encoder
// method (any method taking a *checkpoint.Encoder) must either be
// referenced somewhere in that method's transitive call closure — i.e.
// it plausibly feeds the encoding — or carry an explicit
// //simlint:transient annotation stating why it is scratch, derived, or
// regenerated on restore (journal replay, Seal, pool refill).
//
// "Referenced in the closure" is a deliberate over-approximation: a
// field read for an unrelated purpose inside a helper also counts. That
// direction of error is safe — the checker stays quiet — and keeps it
// free of false positives on encoder methods that stage state through
// locals before writing.
var snapshotDriftChecker = &Checker{
	ID:        "snapshot-drift",
	Doc:       "struct fields missing from a checkpoint encoder method and not //simlint:transient",
	RunModule: runSnapshotDrift,
}

func runSnapshotDrift(p *ModulePass) {
	encType := checkpointEncoderType(p.Module)
	if encType == nil {
		return // module does not use internal/checkpoint
	}
	graph := p.Module.Graph()
	for _, pkg := range p.Scope {
		for _, f := range pkg.Files {
			dirs := parseDirectives(p.Module.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					return true
				}
				enc := encoderMethod(named, encType)
				if enc == nil {
					return true
				}
				covered := coveredFields(graph, enc, named)
				checkStructFields(p, pkg, dirs, st, named, enc, covered)
				return true
			})
		}
	}
}

// checkpointEncoderType resolves the *types.Named for checkpoint.Encoder
// if the module's checkpoint package has been loaded.
func checkpointEncoderType(m *Module) *types.Named {
	pkg := m.PackageByPath(m.Path + "/internal/checkpoint")
	if pkg == nil {
		return nil
	}
	obj, ok := pkg.Types.Scope().Lookup("Encoder").(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// encoderMethod returns the first method declared on named (value or
// pointer receiver) that takes a *checkpoint.Encoder parameter, or nil.
func encoderMethod(named *types.Named, encType *types.Named) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		for j := 0; j < sig.Params().Len(); j++ {
			ptr, ok := sig.Params().At(j).Type().(*types.Pointer)
			if !ok {
				continue
			}
			if types.Identical(ptr.Elem(), encType) {
				return m
			}
		}
	}
	return nil
}

// coveredFields walks the transitive call closure of the encoder method
// and collects every field of the receiver struct referenced anywhere in
// it (selector expressions resolving to the field object).
func coveredFields(graph *Graph, enc *types.Func, named *types.Named) map[*types.Var]bool {
	fieldSet := map[*types.Var]bool{}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			fieldSet[st.Field(i)] = true
		}
	}
	covered := map[*types.Var]bool{}
	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || visited[fn] {
			return
		}
		visited[fn] = true
		fi := graph.Lookup(fn)
		if fi == nil {
			return
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v, ok := fi.Pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() && fieldSet[v] {
				covered[v] = true
			}
			return true
		})
		for _, cs := range fi.Calls {
			visit(cs.Callee)
		}
	}
	visit(enc)
	return covered
}

// checkStructFields reports every field of the struct that is neither
// covered by the encoder closure nor annotated //simlint:transient.
func checkStructFields(p *ModulePass, pkg *Package, dirs *fileDirectives,
	st *ast.StructType, named *types.Named, enc *types.Func, covered map[*types.Var]bool) {
	for _, field := range st.Fields.List {
		if transientField(p.Module.Fset, dirs, field) {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded field: its object is keyed by the type expression.
			if v := embeddedFieldVar(named, field); v != nil && !covered[v] {
				p.Report(field.Pos(),
					fmt.Sprintf("embedded field %s of %s is not referenced by (%s).%s; a restored %s will silently drift",
						v.Name(), named.Obj().Name(), named.Obj().Name(), enc.Name(), named.Obj().Name()),
					"encode the field (or its owner's section), or annotate //simlint:transient with the regeneration story")
			}
			continue
		}
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok || covered[v] {
				continue
			}
			p.Report(name.Pos(),
				fmt.Sprintf("field %s of %s is not referenced by (%s).%s; a restored %s will silently drift",
					v.Name(), named.Obj().Name(), named.Obj().Name(), enc.Name(), named.Obj().Name()),
				"encode the field, or annotate //simlint:transient with the regeneration story (replay, Seal, pool)")
		}
	}
}

// embeddedFieldVar resolves the field object of an embedded struct
// field by position (embedded fields have no name identifier for
// Info.Defs to key on).
func embeddedFieldVar(named *types.Named, field *ast.Field) *types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		v := st.Field(i)
		if v.Embedded() && v.Pos() >= field.Pos() && v.Pos() <= field.End() {
			return v
		}
	}
	return nil
}
