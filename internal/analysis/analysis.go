// Package analysis implements simlint, the repository's determinism and
// correctness static-analysis suite (driven by cmd/simlint and `make
// lint`).
//
// The whole value of this reproduction rests on deterministic,
// byte-identical experiment tables: a stray time.Now, an unseeded
// math/rand draw, a side-effecting range over a map, or a goroutine
// spawned outside internal/sweep silently breaks reproducibility in ways
// the unit tests may not catch. Each checker here enforces one of those
// rules mechanically, using go/types so matches are symbol-accurate
// rather than textual (aliased imports, shadowed identifiers, and
// same-named functions from other packages neither fool it nor false-
// positive it).
//
// Findings can be suppressed at legitimate sites with an inline
// directive on the offending line or the line above:
//
//	//simlint:allow nondet-time wall-clock speed reporting is the point here
//
// The directive names one checker (or a comma-separated list) and an
// optional free-form reason. Whole-file allowlists for intrinsically
// wall-clock code (cmd/paperbench, examples/, internal/experiments/
// speed.go) live in defaultAllow below.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic raised by a checker.
type Finding struct {
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
	Fix     string `json:"fix,omitempty"` // suggested remediation
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Checker, f.Message)
}

// Checker is one named analysis pass.
type Checker struct {
	ID  string
	Doc string
	Run func(p *Pass)
}

// Checkers returns the full suite in stable order.
func Checkers() []*Checker {
	return []*Checker{
		nondetTimeChecker,
		nondetRandChecker,
		mapOrderChecker,
		strayGoroutineChecker,
		uncheckedErrorChecker,
	}
}

// checkerByID resolves a checker name; nil if unknown.
func checkerByID(id string) *Checker {
	for _, c := range Checkers() {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// defaultAllow maps a checker ID to module-relative path prefixes (or
// exact files) that are exempt wholesale. These are the sites whose job
// is the thing the checker forbids: wall-clock speed reporting for
// nondet-time, the parallel sweep executor for stray-goroutine, and the
// serving layer (internal/simserve, cmd/simd), which measures wall time
// and juggles goroutines around the engines without feeding either back
// into simulation state. Test
// files (*_test.go) are exempt from every checker and are not analyzed
// at all.
var defaultAllow = map[string][]string{
	"nondet-time": {
		"cmd/paperbench/",               // reports measured wall time per experiment
		"cmd/nexsim/",                   // -wall flag reports run wall time
		"examples/",                     // demos print sim-vs-wall comparisons
		"internal/experiments/speed.go", // §6.3 speed tables measure wall clock
		"internal/simserve/",            // serving metrics/timeouts are wall-clock by nature
		"cmd/simd/",                     // daemon shutdown deadlines
	},
	"nondet-rand": {
		"internal/simserve/", // serving-side jitter/sampling, never simulation state
		"cmd/simd/",
	},
	"stray-goroutine": {
		"internal/sweep/",    // the one sanctioned home of parallelism
		"internal/simserve/", // request handling + waiting on pool jobs
		"cmd/simd/",          // HTTP serve loop + signal-driven shutdown
	},
}

// Pass is the per-package context handed to a checker's Run.
type Pass struct {
	Checker *Checker
	Module  *Module
	Pkg     *Package

	suppress map[string]map[int]bool // file -> line -> suppressed for this checker
	findings *[]Finding
}

// relFile converts a token.Pos to a module-relative slash path.
func (p *Pass) relFile(pos token.Pos) string {
	file := p.Module.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.Module.Root, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// allowed reports whether file (module-relative) is allowlisted for the
// current checker.
func (p *Pass) allowed(file string) bool {
	if strings.HasSuffix(file, "_test.go") {
		return true
	}
	for _, prefix := range defaultAllow[p.Checker.ID] {
		if file == prefix || strings.HasPrefix(file, prefix) {
			return true
		}
	}
	return false
}

// Report records a finding unless the site is allowlisted or carries a
// //simlint:allow suppression on its own line or the line above.
func (p *Pass) Report(pos token.Pos, msg, fix string) {
	position := p.Module.Fset.Position(pos)
	file := p.relFile(pos)
	if p.allowed(file) {
		return
	}
	if lines := p.suppress[file]; lines[position.Line] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Checker: p.Checker.ID,
		Message: msg,
		Fix:     fix,
	})
}

// suppressions scans a file's comments for //simlint:allow directives and
// returns, per checker ID, the set of source lines the directive covers
// (its own line and the one below it).
func suppressions(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//simlint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, id := range strings.Split(fields[0], ",") {
				if out[id] == nil {
					out[id] = map[int]bool{}
				}
				out[id][line] = true
				out[id][line+1] = true
			}
		}
	}
	return out
}

// AnalyzePackage runs the given checkers (all of them when nil) over one
// package and returns sorted findings.
func AnalyzePackage(m *Module, pkg *Package, checkers []*Checker) []Finding {
	if checkers == nil {
		checkers = Checkers()
	}
	// Collect suppressions once per file, then slice them per checker.
	perFile := map[string]map[string]map[int]bool{}
	for _, f := range pkg.Files {
		rel := filepath.ToSlash(mustRel(m.Root, m.Fset.Position(f.Pos()).Filename))
		perFile[rel] = suppressions(m.Fset, f)
	}
	var findings []Finding
	for _, c := range checkers {
		sup := map[string]map[int]bool{}
		for file, byChecker := range perFile {
			if lines := byChecker[c.ID]; lines != nil {
				sup[file] = lines
			}
		}
		pass := &Pass{Checker: c, Module: m, Pkg: pkg, suppress: sup, findings: &findings}
		c.Run(pass)
	}
	sortFindings(findings)
	return findings
}

// AnalyzeModule loads the module rooted at root and runs the named
// checkers (all when names is empty) over every package.
func AnalyzeModule(root string, names []string) ([]Finding, error) {
	m, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	checkers, err := resolveCheckers(names)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range m.Pkgs {
		findings = append(findings, AnalyzePackage(m, pkg, checkers)...)
	}
	sortFindings(findings)
	return findings, nil
}

// AnalyzeFixtureDir analyzes the single package in dir (typically a
// testdata fixture, which the module walk deliberately skips) against
// the named checkers. root must be the surrounding module so the
// fixture's module-internal imports resolve.
func AnalyzeFixtureDir(root, dir string, names []string) ([]Finding, error) {
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	checkers, err := resolveCheckers(names)
	if err != nil {
		return nil, err
	}
	pkg, err := m.LoadExtraDir(dir, "fixture")
	if err != nil {
		return nil, err
	}
	findings := AnalyzePackage(m, pkg, checkers)
	sortFindings(findings)
	return findings, nil
}

func resolveCheckers(names []string) ([]*Checker, error) {
	if len(names) == 0 {
		return Checkers(), nil
	}
	var out []*Checker
	for _, n := range names {
		c := checkerByID(n)
		if c == nil {
			return nil, fmt.Errorf("unknown checker %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
}

func mustRel(base, target string) string {
	rel, err := filepath.Rel(base, target)
	if err != nil {
		return target
	}
	return rel
}

// inspectFuncs walks every function body in the package (declarations
// and literals), calling fn with the function node and its body. Nested
// literals are visited with their own (innermost) body.
func inspectFuncs(pkg *Package, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}
