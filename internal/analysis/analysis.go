// Package analysis implements simlint, the repository's determinism and
// correctness static-analysis suite (driven by cmd/simlint and `make
// lint`).
//
// The whole value of this reproduction rests on deterministic,
// byte-identical experiment tables: a stray time.Now, an unseeded
// math/rand draw, a side-effecting range over a map, or a goroutine
// spawned outside internal/sweep silently breaks reproducibility in ways
// the unit tests may not catch. Each checker here enforces one of those
// rules mechanically, using go/types so matches are symbol-accurate
// rather than textual (aliased imports, shadowed identifiers, and
// same-named functions from other packages neither fool it nor false-
// positive it).
//
// The suite has two kinds of checkers. Local checkers (nondet-time,
// nondet-rand, map-order, stray-goroutine, unchecked-error) examine one
// package at a time. Whole-program checkers (snapshot-drift,
// fault-site-registry, lane-safety, hotpath-alloc) run once over the
// full module with the call graph (callgraph.go): they encode the
// cross-module contracts the checkpoint/fork, fault-injection and
// parallel intra-run subsystems rely on, where the bug is precisely
// that two far-apart places silently disagree.
//
// Findings can be suppressed at legitimate sites with an inline
// directive on the offending line or the line above:
//
//	//simlint:allow nondet-time wall-clock speed reporting is the point here
//
// The directive names one checker (or a comma-separated list) and an
// optional free-form reason. Whole-file allowlists for intrinsically
// wall-clock code (cmd/paperbench, examples/, internal/experiments/
// speed.go) live in defaultAllow below. See directives.go for the
// //simlint:transient and //simlint:hotpath annotations the
// whole-program checkers consume.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic raised by a checker.
type Finding struct {
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
	Fix     string `json:"fix,omitempty"` // suggested remediation
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Checker, f.Message)
}

// Key is the finding's stable identity for baseline comparison: position
// plus checker, without the message text (messages may be reworded).
func (f Finding) Key() string {
	return fmt.Sprintf("%s:%d:%d:%s", f.File, f.Line, f.Col, f.Checker)
}

// Checker is one named analysis pass. Exactly one of Run (local,
// per-package) and RunModule (whole-program) is set.
type Checker struct {
	ID        string
	Doc       string
	Run       func(p *Pass)
	RunModule func(p *ModulePass)
}

// Global reports whether the checker needs the whole module (call
// graph, cross-package facts) rather than one package at a time.
func (c *Checker) Global() bool { return c.RunModule != nil }

// Checkers returns the full suite in stable order: the five local
// determinism checkers from the original suite, then the four
// whole-program invariant checkers.
func Checkers() []*Checker {
	return []*Checker{
		nondetTimeChecker,
		nondetRandChecker,
		mapOrderChecker,
		strayGoroutineChecker,
		uncheckedErrorChecker,
		snapshotDriftChecker,
		faultSiteChecker,
		laneSafetyChecker,
		hotpathAllocChecker,
	}
}

// checkerByID resolves a checker name; nil if unknown.
func checkerByID(id string) *Checker {
	for _, c := range Checkers() {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// defaultAllow maps a checker ID to module-relative path prefixes (or
// exact files) that are exempt wholesale. These are the sites whose job
// is the thing the checker forbids: wall-clock speed reporting for
// nondet-time, the parallel sweep executor for stray-goroutine, and the
// serving layer (internal/simserve, cmd/simd), which measures wall time
// and juggles goroutines around the engines without feeding either back
// into simulation state. Test
// files (*_test.go) are exempt from every checker and are not analyzed
// at all.
var defaultAllow = map[string][]string{
	"nondet-time": {
		"cmd/paperbench/",               // reports measured wall time per experiment
		"cmd/nexsim/",                   // -wall flag reports run wall time
		"examples/",                     // demos print sim-vs-wall comparisons
		"internal/experiments/speed.go", // §6.3 speed tables measure wall clock
		"internal/simserve/",            // serving metrics/timeouts are wall-clock by nature
		"cmd/simd/",                     // daemon shutdown deadlines
		"internal/cluster/",             // probe intervals, hedge timers, admission refill
		"cmd/simrouter/",                // router shutdown deadlines
	},
	"nondet-rand": {
		"internal/simserve/", // serving-side jitter/sampling, never simulation state
		"cmd/simd/",
		"internal/cluster/", // routing-side jitter, never simulation state
		"cmd/simrouter/",
	},
	"stray-goroutine": {
		"internal/sweep/",    // the one sanctioned home of parallelism
		"internal/simserve/", // request handling + waiting on pool jobs
		"cmd/simd/",          // HTTP serve loop + signal-driven shutdown
		"internal/cluster/",  // concurrent forwarding, probe + hot-set loops
		"cmd/simrouter/",     // HTTP serve loop + signal-driven shutdown
	},
}

// Pass is the per-package context handed to a local checker's Run.
type Pass struct {
	Checker *Checker
	Module  *Module
	Pkg     *Package

	suppress map[string]map[int]bool // file -> line -> suppressed for this checker
	findings *[]Finding
}

// relFile converts a token.Pos to a module-relative slash path.
func relFile(m *Module, pos token.Pos) string {
	file := m.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func (p *Pass) relFile(pos token.Pos) string { return relFile(p.Module, pos) }

// allowedFile reports whether file (module-relative) is allowlisted for
// the checker.
func allowedFile(checkerID, file string) bool {
	if strings.HasSuffix(file, "_test.go") {
		return true
	}
	for _, prefix := range defaultAllow[checkerID] {
		if file == prefix || strings.HasPrefix(file, prefix) {
			return true
		}
	}
	return false
}

// allowed reports whether file (module-relative) is allowlisted for the
// current checker.
func (p *Pass) allowed(file string) bool {
	return allowedFile(p.Checker.ID, file)
}

// Report records a finding unless the site is allowlisted or carries a
// //simlint:allow suppression on its own line or the line above.
func (p *Pass) Report(pos token.Pos, msg, fix string) {
	position := p.Module.Fset.Position(pos)
	file := p.relFile(pos)
	if p.allowed(file) {
		return
	}
	if lines := p.suppress[file]; lines[position.Line] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Checker: p.Checker.ID,
		Message: msg,
		Fix:     fix,
	})
}

// ModulePass is the whole-program context handed to a global checker's
// RunModule. Scope is the set of packages findings may be reported in
// (the full module in a normal run, a single fixture package in fixture
// mode); the checker may *read* any loaded package — the call graph
// spans them all — but must anchor findings inside Scope.
type ModulePass struct {
	Checker *Checker
	Module  *Module
	Scope   []*Package

	inScope  map[*Package]bool
	suppress map[string]map[int]bool // file -> line -> suppressed
	findings *[]Finding
}

// InScope reports whether findings may be anchored in pkg.
func (p *ModulePass) InScope(pkg *Package) bool { return p.inScope[pkg] }

// Report records a finding if pos lies inside a Scope package's files
// and the site is neither allowlisted nor suppressed inline.
func (p *ModulePass) Report(pos token.Pos, msg, fix string) {
	position := p.Module.Fset.Position(pos)
	file := relFile(p.Module, pos)
	if !p.scopeFile(position.Filename) {
		return
	}
	if allowedFile(p.Checker.ID, file) {
		return
	}
	if lines := p.suppress[file]; lines[position.Line] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Checker: p.Checker.ID,
		Message: msg,
		Fix:     fix,
	})
}

// scopeFile reports whether the absolute filename belongs to a Scope
// package.
func (p *ModulePass) scopeFile(abs string) bool {
	for _, pkg := range p.Scope {
		for _, fn := range pkg.Filenames {
			if fn == abs {
				return true
			}
		}
	}
	return false
}

// AnalyzeScope runs the given checkers (all of them when nil) over the
// scope packages: local checkers per package, whole-program checkers
// once with the scope as their reporting boundary. Returns sorted
// findings.
func AnalyzeScope(m *Module, scope []*Package, checkers []*Checker) []Finding {
	if checkers == nil {
		checkers = Checkers()
	}
	// Collect suppressions once per scope file, then slice per checker.
	perFile := map[string]map[string]map[int]bool{}
	for _, pkg := range scope {
		for _, f := range pkg.Files {
			rel := filepath.ToSlash(mustRel(m.Root, m.Fset.Position(f.Pos()).Filename))
			perFile[rel] = suppressions(m.Fset, f)
		}
	}
	sliceSup := func(id string) map[string]map[int]bool {
		sup := map[string]map[int]bool{}
		for file, byChecker := range perFile {
			if lines := byChecker[id]; lines != nil {
				sup[file] = lines
			}
		}
		return sup
	}

	var findings []Finding
	for _, c := range checkers {
		if c.Global() {
			inScope := make(map[*Package]bool, len(scope))
			for _, pkg := range scope {
				inScope[pkg] = true
			}
			p := &ModulePass{
				Checker: c, Module: m, Scope: scope,
				inScope: inScope, suppress: sliceSup(c.ID), findings: &findings,
			}
			c.RunModule(p)
			continue
		}
		for _, pkg := range scope {
			pass := &Pass{Checker: c, Module: m, Pkg: pkg, suppress: sliceSup(c.ID), findings: &findings}
			c.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}

// AnalyzePackage runs the given checkers (all of them when nil) over one
// package and returns sorted findings.
func AnalyzePackage(m *Module, pkg *Package, checkers []*Checker) []Finding {
	return AnalyzeScope(m, []*Package{pkg}, checkers)
}

// AnalyzeModule loads the module rooted at root and runs the named
// checkers (all when names is empty) over every package.
func AnalyzeModule(root string, names []string) ([]Finding, error) {
	m, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	checkers, err := resolveCheckers(names)
	if err != nil {
		return nil, err
	}
	return AnalyzeScope(m, m.Pkgs, checkers), nil
}

// AnalyzeFixtureDir analyzes the single package in dir (typically a
// testdata fixture, which the module walk deliberately skips) against
// the named checkers. root must be the surrounding module so the
// fixture's module-internal imports resolve. Pass a non-nil *Module to
// reuse an already-loaded module (and its type-checked dependencies)
// across several fixture dirs; pass nil to load a fresh one.
func AnalyzeFixtureDir(root, dir string, names []string) ([]Finding, error) {
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeFixtureDirIn(m, dir, names)
}

// AnalyzeFixtureDirIn is AnalyzeFixtureDir against an existing module
// loader, so a multi-fixture run type-checks each dependency package
// exactly once (the caching importer is shared).
func AnalyzeFixtureDirIn(m *Module, dir string, names []string) ([]Finding, error) {
	checkers, err := resolveCheckers(names)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	// A unique synthetic import path per fixture dir: the loader caches
	// by import path, and a shared module may host many fixtures.
	ip := "fixture/" + filepath.ToSlash(mustRel(m.Root, abs))
	pkg, err := m.LoadExtraDir(abs, ip)
	if err != nil {
		return nil, err
	}
	return AnalyzeScope(m, []*Package{pkg}, checkers), nil
}

// AnalyzeFixtureTree analyzes every fixture package directly under dir
// (or dir itself, when it holds Go files) against the named checkers.
// All fixtures share one module loader, so each module-internal
// dependency is parsed and type-checked exactly once for the whole
// tree rather than once per fixture.
func AnalyzeFixtureTree(root, dir string, names []string) ([]Finding, error) {
	dirs, err := fixturePackageDirs(dir)
	if err != nil {
		return nil, err
	}
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, d := range dirs {
		fs, err := AnalyzeFixtureDirIn(m, d, names)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// fixturePackageDirs returns dir itself if it holds Go files, otherwise
// its immediate subdirectories that do (sorted).
func fixturePackageDirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var subs []string
	for _, e := range ents {
		if e.IsDir() {
			subs = append(subs, filepath.Join(dir, e.Name()))
		} else if strings.HasSuffix(e.Name(), ".go") {
			return []string{dir}, nil
		}
	}
	var dirs []string
	for _, s := range subs {
		sub, err := os.ReadDir(s)
		if err != nil {
			return nil, err
		}
		for _, e := range sub {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, s)
				break
			}
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no Go fixture packages under %s", dir)
	}
	return dirs, nil
}

func resolveCheckers(names []string) ([]*Checker, error) {
	if len(names) == 0 {
		return Checkers(), nil
	}
	var out []*Checker
	for _, n := range names {
		c := checkerByID(n)
		if c == nil {
			return nil, fmt.Errorf("unknown checker %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
}

func mustRel(base, target string) string {
	rel, err := filepath.Rel(base, target)
	if err != nil {
		return target
	}
	return rel
}

// inspectFuncs walks every function body in the package (declarations
// and literals), calling fn with the function node and its body. Nested
// literals are visited with their own (innermost) body.
func inspectFuncs(pkg *Package, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}
