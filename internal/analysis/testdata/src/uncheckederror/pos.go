package fixture

import (
	"bufio"
	"os"
)

// Save drops both the write and the deferred close error.
func Save(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // WANT unchecked-error
	f.Write(data)   // WANT unchecked-error
}

// FlushAll ignores a flush that can really fail.
func FlushAll(w *bufio.Writer) {
	w.Flush() // WANT unchecked-error
}
