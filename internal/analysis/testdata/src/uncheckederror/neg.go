package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Render writes only to never-failing in-memory writers (allowlisted)
// and through the fmt print family.
func Render(rows []string) string {
	var b strings.Builder
	var scratch bytes.Buffer
	for _, r := range rows {
		b.WriteString(r)
		scratch.WriteByte('\n')
		fmt.Fprintln(&b, scratch.String())
	}
	return b.String()
}

// Remove discards explicitly — deliberate and greppable.
func Remove(path string) {
	_ = os.Remove(path)
}

// Checked handles its error.
func Checked(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("remove: %w", err)
	}
	return nil
}
