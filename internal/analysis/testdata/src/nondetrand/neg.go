package fixture

import "math/rand"

// SeededRoll draws from an explicit, reproducible source; constructors
// and *rand.Rand methods are legal.
func SeededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// SeededPerm is likewise pinned to its seed.
func SeededPerm(seed int64, n int) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}
