package fixture

import "math/rand"

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6) // WANT nondet-rand
}

// Noise seeds and draws from the global source.
func Noise() float64 {
	rand.Seed(42)             // WANT nondet-rand
	return rand.NormFloat64() // WANT nondet-rand
}

// ShuffleIDs perturbs every other global-source consumer.
func ShuffleIDs(ids []int) {
	rand.Shuffle(len(ids), func(i, j int) { // WANT nondet-rand
		ids[i], ids[j] = ids[j], ids[i]
	})
}
