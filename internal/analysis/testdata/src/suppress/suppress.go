package fixture

import (
	"math/rand"
	"time"
)

// Stamp is annotated on the offending line itself.
func Stamp() time.Time {
	return time.Now() //simlint:allow nondet-time annotated wall-clock site
}

// Roll is annotated on the line above the offending one.
func Roll() int {
	//simlint:allow nondet-rand seeding strategy documented elsewhere
	return rand.Intn(6)
}

// Unsuppressed still fires: suppressions are per-line, not per-file.
func Unsuppressed() time.Time {
	return time.Now() // WANT nondet-time
}
