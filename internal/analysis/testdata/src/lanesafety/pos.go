package fixture

import (
	"nexsim/internal/accel"
	"nexsim/internal/parsim"
	"nexsim/internal/vclock"
)

// Direct observes the device while the lane it granted still runs.
func Direct(c *parsim.Crew, d accel.Device, t vclock.Time) uint32 {
	c.Grant(0, t)
	v := d.RegRead(t, 0) // WANT lane-safety
	c.Join(0)
	return v
}

// Indirect hides the observation one call down; the callee summary
// carries it back to the open window here.
func Indirect(c *parsim.Crew, d accel.Device, t vclock.Time) {
	c.Grant(0, t)
	peek(d) // WANT lane-safety
	c.JoinAll()
}

func peek(d accel.Device) {
	_, _ = d.NextEvent()
}

// AfterHelper calls a helper whose summary ends with the window open, so
// the observation after it races even though no Grant appears here.
func AfterHelper(c *parsim.Crew, d accel.Device, t vclock.Time) accel.DeviceStats {
	openLane(c, t)
	st := d.Stats() // WANT lane-safety
	c.JoinAll()
	return st
}

func openLane(c *parsim.Crew, t vclock.Time) {
	c.Grant(0, t)
}
