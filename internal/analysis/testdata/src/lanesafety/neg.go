package fixture

import (
	"nexsim/internal/accel"
	"nexsim/internal/parsim"
	"nexsim/internal/vclock"
)

// Guarded joins the lane before reading: the contract holding.
func Guarded(c *parsim.Crew, d accel.Device, t vclock.Time) uint32 {
	c.Grant(0, t)
	c.Join(0)
	return d.RegRead(t, 0)
}

// DeferClose: the deferred Shutdown runs after the body, but the
// explicit JoinAll already closed the window before the read.
func DeferClose(c *parsim.Crew, d accel.Device, t vclock.Time) uint32 {
	defer c.Shutdown()
	c.Grant(0, t)
	c.JoinAll()
	return d.RegRead(t, 0)
}

// gatedPeek's observation is declared race-free at its site, so it does
// not taint callers' summaries (the allow is load-bearing: remove it and
// ViaAllowed fires).
func gatedPeek(d accel.Device, t vclock.Time) uint32 {
	return d.RegRead(t, 0) //simlint:allow lane-safety fixture: caller guarantees the device is off-lane
}

// ViaAllowed stays clean because the observation it reaches is allowed
// at its source.
func ViaAllowed(c *parsim.Crew, d accel.Device, t vclock.Time) uint32 {
	c.Grant(0, t)
	v := gatedPeek(d, t)
	c.JoinAll()
	return v
}

// NoCrew never grants, so interface reads are plain single-threaded
// calls.
func NoCrew(d accel.Device, t vclock.Time) uint32 {
	return d.RegRead(t, 0)
}
