package fixture

import "nexsim/internal/faults"

// CrossOK uses the registered constant and a literal that matches a
// registered value (legal: the value, not the spelling, is the contract).
func CrossOK(in *faults.Injector) {
	in.Hit(faults.SiteDeviceDispatch)
	in.Hit("chan.send")
}

// PlanOK schedules against registered sites only.
func PlanOK() []faults.Fault {
	return []faults.Fault{
		{Site: faults.SiteStoreGet},
		{Site: "store.put"},
	}
}
