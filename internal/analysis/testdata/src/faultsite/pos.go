package fixture

import "nexsim/internal/faults"

// Cross hits a typo'd site (never fires, never fails) and a runtime
// string (unverifiable at compile time).
func Cross(in *faults.Injector, site string) {
	in.Hit("devce.dispatch") // WANT fault-site-registry
	in.Hit(site)             // WANT fault-site-registry
}

// Plan schedules a fault against an unregistered site name.
func Plan() []faults.Fault {
	return []faults.Fault{
		{Site: "nope.site"}, // WANT fault-site-registry
	}
}
