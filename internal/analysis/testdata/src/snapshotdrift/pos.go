package fixture

import "nexsim/internal/checkpoint"

// Engine mimics an engine with a checkpoint encoder that covers some
// fields directly, one through a helper, and forgot one.
type Engine struct {
	ticks   uint64
	acc     int64
	budget  int64  // WANT snapshot-drift
	scratch []byte //simlint:transient refilled by the pool on restore
}

func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(e.ticks)
	e.encodeAcc(enc)
}

// encodeAcc covers acc one call down: the checker walks the encoder's
// transitive closure, not just its own body.
func (e *Engine) encodeAcc(enc *checkpoint.Encoder) {
	enc.I64(e.acc)
}

type base struct {
	id uint32
}

// Wide embeds base but its encoder never touches it.
type Wide struct {
	base // WANT snapshot-drift
	n    uint64
}

func (w *Wide) Save(enc *checkpoint.Encoder) {
	enc.U64(w.n)
}
