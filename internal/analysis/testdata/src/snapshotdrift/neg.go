package fixture

import "nexsim/internal/checkpoint"

// Clean covers every field: two encoded, one annotated transient.
type Clean struct {
	ticks uint64
	data  []byte
	tmp   int //simlint:transient recomputed by Seal on restore
}

func (c *Clean) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(c.ticks)
	enc.Bytes8(c.data)
}

// NoSnap declares no encoder method, so the contract does not apply.
type NoSnap struct {
	x int
	y string
}
