package fixture

import "time"

// Budget uses only pure duration arithmetic — no clock reads.
func Budget(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) + 5*time.Second
}

// FromUnix constructs a fixed instant deterministically.
func FromUnix(sec int64) time.Time {
	return time.Unix(sec, 0)
}

// Format formats without consulting the clock.
func Format(t time.Time) string {
	return t.Format(time.RFC3339)
}
