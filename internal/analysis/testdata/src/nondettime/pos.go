package fixture

import (
	"time"

	wall "time"
)

// Epoch reads the host clock directly.
func Epoch() time.Time {
	return time.Now() // WANT nondet-time
}

// Elapsed sleeps on and measures wall time.
func Elapsed(t0 time.Time) time.Duration {
	time.Sleep(time.Millisecond) // WANT nondet-time
	return time.Since(t0)        // WANT nondet-time
}

// AliasNow proves the checker resolves symbols, not import spellings.
func AliasNow() wall.Time {
	return wall.Now() // WANT nondet-time
}
