package fixture

type span struct {
	a, b int
}

type ring struct {
	buf []span
	n   int
}

// push is hot but allocation-free: value struct literal, append to a
// field buffer (its amortization is the owner's story, not this
// function's), index and len operations only.
//
//simlint:hotpath fixture: flat per-event cost
func (r *ring) push(a, b int) {
	s := span{a: a, b: b}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	}
	r.n++
}

// Cold allocates freely: without the //simlint:hotpath annotation none
// of this is the checker's business.
func Cold(n int) []int {
	out := make([]int, 0)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
