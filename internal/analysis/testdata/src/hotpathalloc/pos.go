package fixture

import "fmt"

type pair struct {
	a, b int
}

// Fire is the fake inner loop: every allocating construct the checker
// knows about, plus the shapes it must leave alone (value struct
// literal, append to a capacity-presized local).
//
//simlint:hotpath fixture: pretend per-event cost matters here
func Fire(n int, sink func(string)) int {
	xs := []int{1, 2, 3}   // WANT hotpath-alloc
	seen := map[int]bool{} // WANT hotpath-alloc
	p := &pair{a: n}       // WANT hotpath-alloc
	buf := make([]byte, n) // WANT hotpath-alloc
	var out []int
	out = append(out, n)         // WANT hotpath-alloc
	s := fmt.Sprintf("%d", n)    // WANT hotpath-alloc
	f := func() int { return n } // WANT hotpath-alloc
	sink(s)

	scratch := make([]int, 0, 8) // WANT hotpath-alloc
	scratch = append(scratch, n) // no finding: capacity pre-sized above

	v := pair{a: n, b: n} // no finding: value struct literals are stack values
	seen[v.a] = true
	return xs[0] + len(buf) + out[0] + p.b + f() + scratch[0]
}
