package fixture

// Poll has a single communication clause; with a default it is a
// deterministic readiness check, not a race between channels.
func Poll(c chan int) (int, bool) {
	select {
	case v := <-c:
		return v, true
	default:
		return 0, false
	}
}

// Handoff is a plain blocking receive.
func Handoff(c chan int) int {
	return <-c
}
