package fixture

// Fire spawns a goroutine inside what should be a single-threaded
// engine.
func Fire(done chan struct{}) {
	go func() { // WANT stray-goroutine
		done <- struct{}{}
	}()
}

// Race picks whichever channel is ready first — scheduler-dependent.
func Race(a, b chan int) int {
	select { // WANT stray-goroutine
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
