// Package fixture demonstrates the exact failure mode snapshot-drift
// exists for: a miniature copy of a nex-style engine whose encoder was
// written first, with one field (debugHits) added later and forgotten.
// TestDeliberateDrift asserts the checker names precisely that field.
package fixture

import "nexsim/internal/checkpoint"

type miniEngine struct {
	now       uint64
	inactiveN uint32
	calBias   float64
	debugHits int64 // WANT snapshot-drift
	scratch   []int //simlint:transient per-epoch runnable buffer, rebuilt each loop
}

func (e *miniEngine) encodeState(enc *checkpoint.Encoder) {
	enc.U64(e.now)
	enc.U32(e.inactiveN)
	enc.F64(e.calBias)
}
