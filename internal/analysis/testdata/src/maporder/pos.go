package fixture

import (
	"fmt"
	"strings"

	"nexsim/internal/eventq"
	"nexsim/internal/vclock"
)

// Keys collects map keys in iteration order and never sorts them.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // WANT map-order
		keys = append(keys, k)
	}
	return keys
}

// Dump prints rows straight out of the map.
func Dump(m map[string]int) {
	for k, v := range m { // WANT map-order
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Render builds output in map order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m { // WANT map-order
		b.WriteString(k)
	}
	return b.String()
}

// Schedule feeds the deterministic event queue in map order, so FIFO
// tie-breaking differs run to run.
func Schedule(q *eventq.Queue, wake map[string]vclock.Time) {
	for _, at := range wake { // WANT map-order
		q.At(at, func(vclock.Time) {})
	}
}
