package fixture

import (
	"fmt"
	"sort"
)

// SortedKeys is the sanctioned shape: collect, sort, then use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DumpSorted renders through the sorted-keys idiom.
func DumpSorted(m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// Total aggregates commutatively; order cannot show in the result.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
