package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module. Every package is
// checked from source with the stdlib "source" importer so simlint needs
// no compiled export data and no dependencies outside the standard
// library.
type Module struct {
	Fset *token.FileSet
	Root string // absolute path of the module root (directory of go.mod)
	Path string // module path declared in go.mod
	Pkgs []*Package

	cache map[string]*Package
	std   types.Importer

	graph      *Graph // lazily built module call graph (callgraph.go)
	graphStale bool   // a package loaded since the last Graph build
}

// Package is one type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Filenames  []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// NewModule prepares a module loader rooted at root without eagerly
// type-checking anything; packages load (and cache) on demand as they
// are imported or requested.
func NewModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Fset:  token.NewFileSet(),
		Root:  root,
		Path:  modPath,
		cache: map[string]*Package{},
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)
	return m, nil
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, vendor, and hidden directories). Test files are
// excluded from analysis: they are exempt from the determinism rules and
// keeping them out avoids type-checking external test packages.
func LoadModule(root string) (*Module, error) {
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	root = m.Root

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		ip := m.Path
		if dir != root {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return nil, err
			}
			ip = m.Path + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.load(ip, dir)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", ip, err)
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// LoadExtraDir type-checks one package directory outside the normal
// module walk (used for the testdata fixture corpus). The package may
// import module packages by their real import paths.
func (m *Module) LoadExtraDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return m.load(importPath, dir)
}

// Import implements types.Importer: module-internal paths are loaded from
// source out of the module tree; everything else (the stdlib) goes
// through the source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		dir := m.Root
		if path != m.Path {
			dir = filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/")))
		}
		pkg, err := m.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

func (m *Module) load(importPath, dir string) (*Package, error) {
	if p, ok := m.cache[importPath]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		fn := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Filenames = append(pkg.Filenames, fn)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(importPath, m.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	m.cache[importPath] = pkg
	m.graphStale = true
	return pkg, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}
