package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// nondetRandChecker flags draws from math/rand's process-global source.
// The global source is shared mutable state: any new draw anywhere in
// the program perturbs every other consumer's sequence, and rand.Seed is
// deprecated no-op territory. Every random stream in this repository
// must come from internal/xrand (named, derivable, stable) or an
// explicit rand.New(rand.NewSource(seed)) — both of which this checker
// deliberately leaves alone.
var nondetRandChecker = &Checker{
	ID:  "nondet-rand",
	Doc: "math/rand global-source draws instead of seeded internal/xrand streams",
	Run: runNondetRand,
}

// globalSourceFuncs are the math/rand package-level functions that read
// or mutate the global source. Constructors (New, NewSource, NewZipf)
// and methods on an explicit *rand.Rand are fine.
var globalSourceFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
	// math/rand/v2 additions (the v2 global source is auto-seeded and
	// therefore nondeterministic by construction).
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func runNondetRand(p *Pass) {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		forEachPkgFuncUse(p, path, func(sel *ast.SelectorExpr, fn *types.Func) {
			// Only package-level functions touch the global source;
			// methods (fn has a receiver) operate on explicit sources.
			if fn.Type().(*types.Signature).Recv() != nil || !globalSourceFuncs[fn.Name()] {
				return
			}
			p.Report(sel.Pos(),
				fmt.Sprintf("global-source rand.%s is nondeterministic across runs", fn.Name()),
				"derive a named stream from internal/xrand, or use rand.New(rand.NewSource(seed))")
		})
	}
}
