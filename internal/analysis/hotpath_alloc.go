package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAllocChecker keeps the simulator's per-event cost flat
// (DESIGN.md §5.4). The paper's speed claims rest on the inner loop —
// event pop, device advance, LPN fire, trace append — doing zero
// steady-state allocation; a single composite literal or fmt call in one
// of those paths shows up directly in events/second and, worse, creates
// GC pressure that de-correlates the calibrated timing model.
//
// Functions opt in with //simlint:hotpath. Inside an annotated function
// the checker flags the allocating constructs that past tuning passes
// actually removed:
//
//   - allocating composite literals: slice and map literals, and
//     address-taken struct literals (&T{...}); plain value struct
//     literals are stack values and stay legal
//   - make / new calls
//   - fmt.* calls (alloc for interface boxing, plus formatting cost)
//   - append to a slice declared in the function without a capacity
//     (3-arg make) — the amortized-growth pattern PR 2 removed from
//     the LPN firing path
//   - function literals that capture enclosing variables (closure
//     allocation at runtime)
//
// The checker is syntactic and per-function by design: escape analysis
// would remove some of these, but on a hot path the reviewable rule is
// "none of these constructs, or an explicit //simlint:allow with the
// amortization argument".
var hotpathAllocChecker = &Checker{
	ID:        "hotpath-alloc",
	Doc:       "allocating constructs inside //simlint:hotpath functions",
	RunModule: runHotpathAlloc,
}

func runHotpathAlloc(p *ModulePass) {
	for _, fi := range p.Module.Graph().Funcs() {
		if !fi.Hotpath || !p.InScope(fi.Pkg) {
			continue
		}
		checkHotpathBody(p, fi)
	}
}

func checkHotpathBody(p *ModulePass, fi *FuncInfo) {
	pkg := fi.Pkg
	fname := fi.Obj.Name()

	// Slices declared in this function with an explicit capacity
	// (3-arg make); append to these is amortized by construction.
	capped := cappedLocals(pkg, fi.Decl.Body)

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			// Value struct literals are stack values; only slice and map
			// literals allocate on their own.
			switch pkg.Info.Types[v].Type.Underlying().(type) {
			case *types.Slice:
				reportHotpathLit(p, v, "slice literal", fname)
				return false
			case *types.Map:
				reportHotpathLit(p, v, "map literal", fname)
				return false
			}
			return true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					reportHotpathLit(p, lit, "&-taken composite literal", fname)
					return false
				}
			}
			return true
		case *ast.CallExpr:
			reportHotpathCall(p, pkg, fname, v, capped)
			return true
		case *ast.FuncLit:
			if capturesOuter(pkg, v) {
				p.Report(v.Pos(),
					fmt.Sprintf("closure captures enclosing variables inside hotpath function %s (allocates at runtime)", fname),
					"hoist the closure to a method or package function, or pass state explicitly")
			}
			return false // don't descend: the literal may legitimately allocate lazily
		}
		return true
	})
}

func reportHotpathLit(p *ModulePass, lit *ast.CompositeLit, what, fname string) {
	p.Report(lit.Pos(),
		fmt.Sprintf("%s allocates inside hotpath function %s", what, fname),
		"hoist to a struct field or pool, or annotate //simlint:allow hotpath-alloc with the amortization argument")
}

// reportHotpathCall flags make/new, fmt.*, and uncapped-append calls.
func reportHotpathCall(p *ModulePass, pkg *Package, fname string, call *ast.CallExpr, capped map[*types.Var]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				p.Report(call.Pos(),
					fmt.Sprintf("%s allocates inside hotpath function %s", id.Name, fname),
					"hoist the allocation out of the hot loop or reuse a pooled buffer")
			}
		case "append":
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				if v := slinkLocal(pkg, call.Args[0]); v != nil && !capped[v] {
					p.Report(call.Pos(),
						fmt.Sprintf("append to function-local slice %s without pre-sized capacity inside hotpath function %s", v.Name(), fname),
						"make the slice with an explicit capacity, or append to a reused field buffer")
				}
			}
		}
		return
	}
	if fn := calleeOf(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Report(call.Pos(),
			fmt.Sprintf("fmt.%s call inside hotpath function %s (interface boxing allocates)", fn.Name(), fname),
			"move formatting off the hot path, or annotate //simlint:allow hotpath-alloc if it only runs on error exits")
	}
}

// cappedLocals finds slice variables assigned a 3-arg make in the body.
func cappedLocals(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	capped := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
				if v := identVar(pkg, lhs); v != nil {
					capped[v] = true
				}
			}
		}
		return true
	})
	return capped
}

// slinkLocal resolves an append target to a function-local slice
// variable; nil for fields, globals, and non-identifier targets (those
// are someone else's amortization story).
func slinkLocal(pkg *Package, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v := identVar(pkg, id)
	if v == nil || v.IsField() || v.Parent() == nil {
		return nil
	}
	// Package-level variables live in the package scope whose parent is
	// the universe; locals are nested deeper.
	if v.Parent() == v.Pkg().Scope() {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	return v
}

func identVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// capturesOuter reports whether a function literal references variables
// declared outside itself (a capturing closure, which allocates).
func capturesOuter(pkg *Package, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		// Declared outside the literal's extent → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}
