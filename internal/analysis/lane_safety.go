package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// laneSafetyChecker guards the conservative-parallel contract
// (DESIGN.md §10). When parsim.Crew lanes are running, each device
// advances on its own goroutine and its banked state (registers, event
// queue, statistics counters) is owned by the lane. Host code may only
// observe a device through the accel.Device interface after the lane has
// been joined; an unjoined read is a data race that the race detector
// only catches if the interleaving cooperates, and worse, it can
// silently de-determinize a run that the byte-identity tests then flag
// hours of debugging later.
//
// The analysis is an interprocedural reaches-without-join walk over the
// module call graph. Crew.Grant opens a lane window; Crew.Join, JoinAll,
// and Shutdown close it. Observations are calls through the accel.Device
// *interface* (RegRead, RegWrite, NextEvent, Stats) — concrete-receiver
// calls are excluded on purpose: a device's own methods touching its own
// state from inside its lane is the design working as intended. Advance
// and Name are excluded: Advance is the lane entry point itself and Name
// is immutable identity.
//
// Each function gets a memoized summary: whether it observes a device
// before any closing call (assuming a window is open at entry), and its
// net effect on the window at exit (open / close / neutral). The
// per-function walk is linear in AST order with deferred calls at the
// end — so `defer crew.Shutdown()` correctly closes the window before
// any post-return observation by the caller.
var laneSafetyChecker = &Checker{
	ID:        "lane-safety",
	Doc:       "device interface reads between Crew.Grant and Join/JoinAll race with the lane",
	RunModule: runLaneSafety,
}

// window effect of a call, or of a whole function (its summary).
type laneEffect int

const (
	laneNeutral laneEffect = iota // no grant/join activity
	laneOpen                      // leaves a lane window open
	laneClose                     // last effect closes the window
)

type laneSummary struct {
	observes bool // observes a device before any closing call
	end      laneEffect
	done     bool // memo complete (false while on the walk stack: cycle guard)
}

type laneChecker struct {
	p         *ModulePass
	graph     *Graph
	crew      *types.Named // parsim.Crew
	device    *types.Named // accel.Device (interface)
	summaries map[*types.Func]*laneSummary
	dirs      map[*Package][]*fileDirectives // parsed lazily, aligned with Pkg.Files
}

func runLaneSafety(p *ModulePass) {
	lc := &laneChecker{
		p:         p,
		graph:     p.Module.Graph(),
		crew:      moduleNamedType(p.Module, "/internal/parsim", "Crew"),
		device:    moduleNamedType(p.Module, "/internal/accel", "Device"),
		summaries: map[*types.Func]*laneSummary{},
		dirs:      map[*Package][]*fileDirectives{},
	}
	if lc.crew == nil || lc.device == nil {
		return // module has no parallel lanes
	}
	for _, fi := range lc.graph.Funcs() {
		if !p.InScope(fi.Pkg) {
			continue
		}
		lc.checkFunc(fi)
	}
}

// checkFunc walks one in-scope function body start-to-finish, reporting
// device observations made while a lane window this function (or a
// callee) opened is still open.
func (lc *laneChecker) checkFunc(fi *FuncInfo) {
	open := false
	for _, cs := range fi.Calls {
		switch lc.classify(cs.Callee) {
		case callGrant:
			open = true
		case callJoin:
			open = false
		case callObserve:
			if open {
				lc.report(fi, cs, true)
			}
		case callOther:
			sum := lc.summarize(cs.Callee)
			if open && sum.observes {
				lc.report(fi, cs, false)
			}
			switch sum.end {
			case laneOpen:
				open = true
			case laneClose:
				open = false
			}
		}
	}
}

// summarize computes (and memoizes) a callee's lane summary. Functions
// outside the loaded module, bodiless functions, and cycle back-edges
// summarize as neutral and non-observing — the conservative direction
// for a checker that must run clean on the real tree.
func (lc *laneChecker) summarize(fn *types.Func) *laneSummary {
	if fn == nil {
		return &laneSummary{done: true}
	}
	if s, ok := lc.summaries[fn]; ok {
		return s // done, or a cycle back-edge (zero value: neutral)
	}
	s := &laneSummary{}
	lc.summaries[fn] = s
	fi := lc.graph.Lookup(fn)
	if fi == nil {
		s.done = true
		return s
	}
	closed := false // a closing call has happened since entry
	for _, cs := range fi.Calls {
		switch lc.classify(cs.Callee) {
		case callGrant:
			s.end = laneOpen
			closed = false
		case callJoin:
			s.end = laneClose
			closed = true
		case callObserve:
			// An observation the author annotated //simlint:allow
			// lane-safety is declared race-free at its site (typically a
			// crew==nil guard the linear walk cannot see); it must not
			// taint callers' summaries either.
			if !closed && !lc.allowedAt(fi, cs.Pos) {
				s.observes = true
			}
		case callOther:
			sub := lc.summarize(cs.Callee)
			if !closed && sub.observes && !lc.allowedAt(fi, cs.Pos) {
				s.observes = true
			}
			switch sub.end {
			case laneOpen:
				s.end = laneOpen
				closed = false
			case laneClose:
				s.end = laneClose
				closed = true
			}
		}
	}
	s.done = true
	return s
}

type callKind int

const (
	callOther callKind = iota
	callGrant
	callJoin
	callObserve
)

// classify buckets a callee: Crew window operations, Device interface
// observations, or anything else.
func (lc *laneChecker) classify(fn *types.Func) callKind {
	if fn == nil {
		return callOther
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return callOther
	}
	recv := sig.Recv().Type()
	if named, ok := derefNamed(recv); ok && named.Obj() == lc.crew.Obj() {
		switch fn.Name() {
		case "Grant":
			return callGrant
		case "Join", "JoinAll", "Shutdown":
			return callJoin
		}
		return callOther
	}
	// Interface dispatch through accel.Device: the method object's
	// receiver is the interface type itself.
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		if devIface, ok := lc.device.Underlying().(*types.Interface); ok && types.Identical(iface, devIface) {
			switch fn.Name() {
			case "RegRead", "RegWrite", "NextEvent", "Stats":
				return callObserve
			}
		}
	}
	return callOther
}

func (lc *laneChecker) report(fi *FuncInfo, cs CallSite, direct bool) {
	what := "a device observation"
	if cs.Callee != nil {
		if direct {
			what = "Device." + cs.Callee.Name()
		} else {
			what = fmt.Sprintf("call to %s (which observes a device before any join)", cs.Callee.Name())
		}
	}
	lc.p.Report(cs.Pos,
		fmt.Sprintf("%s reached in %s while a parsim lane window is open (no Join/JoinAll since Grant); races with the lane goroutine",
			what, fi.Obj.Name()),
		"join the lane first (Crew.Join/JoinAll), or annotate //simlint:allow lane-safety with why no crew can be live here")
}

// allowedAt reports whether the line holding pos (in fi's package)
// carries a //simlint:allow lane-safety directive.
func (lc *laneChecker) allowedAt(fi *FuncInfo, pos token.Pos) bool {
	pkg := fi.Pkg
	dirs, ok := lc.dirs[pkg]
	if !ok {
		dirs = make([]*fileDirectives, len(pkg.Files))
		for i, f := range pkg.Files {
			dirs[i] = parseDirectives(lc.p.Module.Fset, f)
		}
		lc.dirs[pkg] = dirs
	}
	for i, f := range pkg.Files {
		if pos >= f.FileStart && pos < f.FileEnd {
			line := lc.p.Module.Fset.Position(pos).Line
			return dirs[i].allow["lane-safety"][line]
		}
	}
	return false
}

// moduleNamedType resolves a named type declared in a module-internal
// package, or nil when the package is not loaded or lacks the name.
func moduleNamedType(m *Module, pkgSuffix, name string) *types.Named {
	pkg := m.PackageByPath(m.Path + pkgSuffix)
	if pkg == nil {
		// Fixture modules may place it elsewhere; search loaded packages
		// whose path ends with the suffix.
		for _, p := range m.AllLoaded() {
			if strings.HasSuffix(p.ImportPath, pkgSuffix) {
				pkg = p
				break
			}
		}
		if pkg == nil {
			return nil
		}
	}
	tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	return named
}
