package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// nondetTimeChecker flags wall-clock reads and timer construction from
// package time. Simulated time lives in internal/vclock; wall-clock
// values differ run to run and must never feed simulation state. The
// legitimate wall-time-reporting sites (speed tables, cmd binaries,
// examples) are allowlisted in defaultAllow or annotated inline.
var nondetTimeChecker = &Checker{
	ID:  "nondet-time",
	Doc: "wall-clock reads (time.Now/Since/...) outside the speed-reporting allowlist",
	Run: runNondetTime,
}

// wallClockFuncs are the package-time functions whose results depend on
// the host clock or scheduler. Pure constructors and arithmetic
// (time.Duration, time.Unix, d.Round) stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runNondetTime(p *Pass) {
	forEachPkgFuncUse(p, "time", func(sel *ast.SelectorExpr, fn *types.Func) {
		if !wallClockFuncs[fn.Name()] {
			return
		}
		p.Report(sel.Pos(),
			fmt.Sprintf("nondeterministic wall-clock call time.%s; simulation state must use internal/vclock", fn.Name()),
			"use vclock.Time/vclock.Duration, or annotate a genuine speed-reporting site with //simlint:allow nondet-time")
	})
}

// forEachPkgFuncUse visits every selector expression in the package that
// resolves (via go/types, so through import aliases too) to a function
// or method of the given package.
func forEachPkgFuncUse(p *Pass, pkgPath string, visit func(sel *ast.SelectorExpr, fn *types.Func)) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
				return true
			}
			visit(sel, fn)
			return true
		})
	}
}
