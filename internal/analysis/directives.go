package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suite understands three source directives, all parsed from
// ordinary comments so they survive gofmt and need no build tags:
//
//	//simlint:allow <checker>[,<checker>...] [reason]
//	    suppress findings of the named checkers on this line and the
//	    next one (trailing on the offending line, or alone above it).
//
//	//simlint:transient [reason]
//	    on a struct field (trailing, or the line above): the field is
//	    deliberately absent from the type's checkpoint encoding because
//	    it is scratch, derived, or regenerated on restore. Consumed by
//	    the snapshot-drift checker.
//
//	//simlint:hotpath [reason]
//	    on a function declaration (last doc-comment line, or the line
//	    above): the function is a tuned allocation-free hot path; the
//	    hotpath-alloc checker flags allocating constructs in its body.
type fileDirectives struct {
	allow     map[string]map[int]bool // checker ID -> covered lines
	transient map[int]bool            // lines covered by //simlint:transient
	hotpath   map[int]bool            // lines covered by //simlint:hotpath
}

// parseDirectives scans one file's comments for simlint directives.
// Every directive covers its own line and the line below it, so both
// the trailing-comment and line-above forms work.
func parseDirectives(fset *token.FileSet, f *ast.File) *fileDirectives {
	d := &fileDirectives{
		allow:     map[string]map[int]bool{},
		transient: map[int]bool{},
		hotpath:   map[int]bool{},
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//simlint:")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			switch {
			case strings.HasPrefix(text, "allow"):
				fields := strings.Fields(strings.TrimPrefix(text, "allow"))
				if len(fields) == 0 {
					continue
				}
				for _, id := range strings.Split(fields[0], ",") {
					if d.allow[id] == nil {
						d.allow[id] = map[int]bool{}
					}
					d.allow[id][line] = true
					d.allow[id][line+1] = true
				}
			case strings.HasPrefix(text, "transient"):
				d.transient[line] = true
				d.transient[line+1] = true
			case strings.HasPrefix(text, "hotpath"):
				d.hotpath[line] = true
				d.hotpath[line+1] = true
			}
		}
	}
	return d
}

// suppressions returns the //simlint:allow line sets of one file,
// keyed by checker ID (the shape Pass.Report consumes).
func suppressions(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	return parseDirectives(fset, f).allow
}

// hotpathFunc reports whether decl carries a //simlint:hotpath
// directive: in its doc comment, or on the line above the declaration.
func hotpathFunc(fset *token.FileSet, dirs *fileDirectives, decl *ast.FuncDecl) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if strings.HasPrefix(c.Text, "//simlint:hotpath") {
				return true
			}
		}
	}
	return dirs.hotpath[fset.Position(decl.Pos()).Line]
}

// transientField reports whether the struct field at pos carries a
// //simlint:transient directive (trailing or on the line above).
func transientField(fset *token.FileSet, dirs *fileDirectives, field *ast.Field) bool {
	if field.Doc != nil {
		for _, c := range field.Doc.List {
			if strings.HasPrefix(c.Text, "//simlint:transient") {
				return true
			}
		}
	}
	if field.Comment != nil {
		for _, c := range field.Comment.List {
			if strings.HasPrefix(c.Text, "//simlint:transient") {
				return true
			}
		}
	}
	return dirs.transient[fset.Position(field.Pos()).Line]
}
