package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The module call graph backs the whole-program checkers: snapshot-drift
// follows an encoder method into its helpers, lane-safety walks
// grant/join windows across function boundaries, and hotpath-alloc finds
// its //simlint:hotpath roots. Nodes are declared functions and methods
// of loaded module packages; call sites are recorded in source order,
// with deferred calls appended at the end (where they execute). Function
// literals are inlined into their enclosing declaration at the position
// they appear — a deliberate approximation: most literals here run at
// their definition site (sort comparators, sync.OnceFunc bodies), and
// treating them as part of the enclosing body keeps the walk linear.

// CallSite is one call expression inside a function body, in the order
// the linear walk visits it.
type CallSite struct {
	Pos    token.Pos
	Call   *ast.CallExpr
	Callee *types.Func // nil for builtins and non-function callees
	Defer  bool        // appeared under a defer statement
}

// FuncInfo is one call-graph node: a declared function or method with
// its body's call sites and directive flags.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Calls   []CallSite
	Hotpath bool // carries //simlint:hotpath
}

// Graph is the module-wide call graph over every loaded package.
type Graph struct {
	module *Module
	funcs  map[*types.Func]*FuncInfo
	order  []*FuncInfo // deterministic iteration order (file, then pos)
}

// Funcs returns every node in deterministic source order.
func (g *Graph) Funcs() []*FuncInfo { return g.order }

// Lookup resolves a function object to its node; nil when the function
// has no body in a loaded package (stdlib, interface methods).
func (g *Graph) Lookup(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return g.funcs[fn]
}

// Graph builds (or returns the cached) call graph over every package
// loaded so far. Loading more packages invalidates the cache; the next
// call rebuilds.
func (m *Module) Graph() *Graph {
	if m.graph != nil && !m.graphStale {
		return m.graph
	}
	g := &Graph{module: m, funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range m.AllLoaded() {
		for _, f := range pkg.Files {
			dirs := parseDirectives(m.Fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Obj:     obj,
					Decl:    fd,
					Pkg:     pkg,
					Hotpath: hotpathFunc(m.Fset, dirs, fd),
				}
				fi.Calls = collectCalls(pkg, fd.Body)
				g.funcs[obj] = fi
				g.order = append(g.order, fi)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		a := m.Fset.Position(g.order[i].Decl.Pos())
		b := m.Fset.Position(g.order[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	m.graph = g
	m.graphStale = false
	return g
}

// collectCalls walks a body in source order collecting call sites.
// Deferred calls are moved to the end of the list — that is when they
// run — in reverse (LIFO) order.
func collectCalls(pkg *Package, body *ast.BlockStmt) []CallSite {
	var normal, deferred []CallSite
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.DeferStmt:
				// The call's arguments evaluate now; the call itself runs
				// at return. Record argument sub-calls in place, the
				// deferred call at the end.
				for _, arg := range v.Call.Args {
					walk(arg, inDefer)
				}
				site := CallSite{Pos: v.Call.Pos(), Call: v.Call, Callee: calleeOf(pkg, v.Call), Defer: true}
				deferred = append(deferred, site)
				// A deferred func literal's body also runs at return.
				if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
					deferred = append(deferred, collectCalls(pkg, lit.Body)...)
				}
				return false
			case *ast.CallExpr:
				// Arguments (and the callee expression) first, then the
				// call itself — matching evaluation order closely enough
				// for a linear approximation.
				ast.Inspect(v.Fun, func(y ast.Node) bool {
					if inner, ok := y.(*ast.CallExpr); ok && inner != v {
						walk(inner, inDefer)
						return false
					}
					if lit, ok := y.(*ast.FuncLit); ok {
						normal = append(normal, collectCalls(pkg, lit.Body)...)
						return false
					}
					return true
				})
				for _, arg := range v.Args {
					walk(arg, inDefer)
				}
				site := CallSite{Pos: v.Pos(), Call: v, Callee: calleeOf(pkg, v)}
				normal = append(normal, site)
				return false
			case *ast.FuncLit:
				// Inline the literal's body at its definition point.
				normal = append(normal, collectCalls(pkg, v.Body)...)
				return false
			}
			return true
		})
	}
	walk(body, false)
	for i := len(deferred) - 1; i >= 0; i-- {
		normal = append(normal, deferred[i])
	}
	return normal
}

// calleeOf resolves a call expression's static callee function or
// method, through selectors and parenthesization; nil for builtins,
// conversions and calls of function-typed values.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// AllLoaded returns every package type-checked so far (the explicit
// module walk plus import dependencies and fixture packages), sorted by
// import path for deterministic graph construction.
func (m *Module) AllLoaded() []*Package {
	paths := make([]string, 0, len(m.cache))
	for p := range m.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, m.cache[p])
	}
	return out
}

// PackageByPath returns the loaded package with the given import path,
// or nil.
func (m *Module) PackageByPath(path string) *Package { return m.cache[path] }
