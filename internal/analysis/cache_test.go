package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTinyModule lays down a minimal module with one deliberate
// nondet-time finding, returning its root.
func writeTinyModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tinymod\n\ngo 1.21\n",
		"a.go": `package tinymod

import "time"

// Stamp has the one deliberate finding of this module.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"sub/b.go": `package sub

// Twice exists so the module has a second package (its own cache entry).
func Twice(x int) int { return 2 * x }
`,
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func sameFindings(a, b []Finding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheWarmAndInvalidate exercises the full cache lifecycle: a cold
// run populates it, an identical rerun is warm and byte-equal, an edit
// invalidates exactly as content hashing dictates, and reverting the
// edit is warm again (content addressing, not timestamps).
func TestCacheWarmAndInvalidate(t *testing.T) {
	root := writeTinyModule(t)
	cache, err := OpenCache(filepath.Join(root, ".lintcache"))
	if err != nil {
		t.Fatal(err)
	}

	cold, warm, err := AnalyzeModuleCached(root, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("first run reported warm against an empty cache")
	}
	if len(cold) != 1 || cold[0].Checker != "nondet-time" {
		t.Fatalf("cold run findings = %v, want one nondet-time finding", cold)
	}

	rerun, warm, err := AnalyzeModuleCached(root, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("identical rerun was not served warm")
	}
	if !sameFindings(cold, rerun) {
		t.Fatalf("warm findings diverge from cold:\ncold: %v\nwarm: %v", cold, rerun)
	}

	// Edit: the finding goes away, and so must the warm hit.
	aGo := filepath.Join(root, "a.go")
	orig, err := os.ReadFile(aGo)
	if err != nil {
		t.Fatal(err)
	}
	clean := `package tinymod

// Stamp no longer reads the wall clock.
func Stamp() int64 { return 42 }
`
	if err := os.WriteFile(aGo, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, warm, err := AnalyzeModuleCached(root, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("run after an edit was served warm (stale cache)")
	}
	if len(edited) != 0 {
		t.Fatalf("edited module still has findings: %v", edited)
	}

	// Revert: the original entries are still in the cache, keyed by
	// content — reverting must hit warm without re-analysis.
	if err := os.WriteFile(aGo, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	reverted, warm, err := AnalyzeModuleCached(root, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("reverted module was not served warm (cache should be content-addressed)")
	}
	if !sameFindings(cold, reverted) {
		t.Fatalf("reverted warm findings diverge: %v vs %v", cold, reverted)
	}
}

// TestCacheCheckerSetKeying asserts entries from a full run do not
// answer for a restricted -c run (and vice versa): the checker set is
// part of the action ID.
func TestCacheCheckerSetKeying(t *testing.T) {
	root := writeTinyModule(t)
	cache, err := OpenCache(filepath.Join(root, ".lintcache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, warm, err := AnalyzeModuleCached(root, nil, cache); err != nil || warm {
		t.Fatalf("full cold run: warm=%v err=%v", warm, err)
	}
	fs, warm, err := AnalyzeModuleCached(root, []string{"map-order"}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("restricted checker set was served from the full run's entries")
	}
	if len(fs) != 0 {
		t.Fatalf("map-order-only run has findings: %v", fs)
	}
	if _, warm, err := AnalyzeModuleCached(root, nil, cache); err != nil || !warm {
		t.Fatalf("full rerun after restricted run: warm=%v err=%v (full entries should survive)", warm, err)
	}
}

// TestCacheDepInvalidation asserts an edit in a dependency invalidates
// its importers: action IDs chain through module-internal imports.
func TestCacheDepInvalidation(t *testing.T) {
	root := writeTinyModule(t)
	// Make the root package import sub, so sub's hash feeds root's ID.
	aGo := filepath.Join(root, "a.go")
	importer := `package tinymod

import (
	"time"

	"tinymod/sub"
)

// Stamp has the one deliberate finding of this module.
func Stamp() int64 { return time.Now().UnixNano() * int64(sub.Twice(1)) }
`
	if err := os.WriteFile(aGo, []byte(importer), 0o644); err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(filepath.Join(root, ".lintcache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, warm, err := AnalyzeModuleCached(root, nil, cache); err != nil || warm {
		t.Fatalf("cold run: warm=%v err=%v", warm, err)
	}
	// A semantically neutral edit to the dependency must still demote
	// the run to cold: the cache cannot know it was neutral.
	bGo := filepath.Join(root, "sub", "b.go")
	neutral := `package sub

// Twice exists so the module has a second package (comment edited).
func Twice(x int) int { return 2 * x }
`
	if err := os.WriteFile(bGo, []byte(neutral), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, warm, err := AnalyzeModuleCached(root, nil, cache); err != nil || warm {
		t.Fatalf("run after dependency edit: warm=%v err=%v (importer entries must invalidate)", warm, err)
	}
}

// BenchmarkFixtureTreeShared measures a full fixture-corpus run with the
// hoisted shared module loader: every module-internal dependency is
// type-checked once for the whole tree.
func BenchmarkFixtureTreeShared(b *testing.B) {
	root := moduleRootForBench(b)
	dir := filepath.Join(root, "internal/analysis/testdata/src")
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeFixtureTree(root, dir, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixtureTreePerDir is the pre-hoist baseline: a fresh module
// loader (and a fresh type-check of every dependency) per fixture dir.
func BenchmarkFixtureTreePerDir(b *testing.B) {
	root := moduleRootForBench(b)
	dirs, err := fixturePackageDirs(filepath.Join(root, "internal/analysis/testdata/src"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, d := range dirs {
			if _, err := AnalyzeFixtureDir(root, d, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func moduleRootForBench(b *testing.B) string {
	b.Helper()
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	root := wd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			return root
		}
		parent := filepath.Dir(root)
		if parent == root {
			b.Fatal("no go.mod above", wd)
		}
		root = parent
	}
}
